package rqs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/sim"
)

// One benchmark per experiment of EXPERIMENTS.md. Each E-bench runs the
// full experiment (schedule, protocol run, or computation) per iteration;
// the E11 benches measure steady-state protocol throughput.

func BenchmarkE1Fig1Violation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, results := expt.E1Fig1(); results[0].Violation == "" {
			b.Fatal("greedy algorithm unexpectedly atomic")
		}
	}
}

func BenchmarkE2Fig2Intersections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E2Fig2()
	}
}

func BenchmarkE3Fig3Verify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E3Fig3()
	}
}

func BenchmarkE4Fig4Executions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E4Fig4()
	}
}

func BenchmarkE5StorageLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E5StorageLatency()
	}
}

func BenchmarkE6Theorem3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, outcomes := expt.E6Theorem3(); outcomes[0].Violation == "" {
			b.Fatal("broken system unexpectedly atomic")
		}
	}
}

func BenchmarkE7ConsensusLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E7ConsensusLatency()
	}
}

func BenchmarkE8Theorem6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, outcomes := expt.E8Theorem6(); !outcomes[0].AgreementViolated {
			b.Fatal("broken system unexpectedly safe")
		}
	}
}

func BenchmarkE9MinimalN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E9MinimalN()
	}
}

func BenchmarkE10ViewChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E10ViewChange()
	}
}

func BenchmarkE11ThroughputStorageWrite(b *testing.B) {
	c := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond})
	defer c.Stop()
	w := c.Writer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write("v")
	}
}

func BenchmarkE11ThroughputStorageRead(b *testing.B) {
	c := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond})
	defer c.Stop()
	c.Writer().Write("v")
	r := c.Reader()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Read()
	}
}

func BenchmarkE11ThroughputStorageReadN8(b *testing.B) {
	system, err := NewThresholdRQS(ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	c := NewStorage(system, StorageOptions{Timeout: 500 * time.Microsecond})
	defer c.Stop()
	c.Writer().Write("v")
	r := c.Reader()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Read()
	}
}

func BenchmarkE11ThroughputConsensusDecision(b *testing.B) {
	// Consensus is single-shot: each iteration stands up a cluster,
	// decides, and tears it down — throughput includes deployment cost.
	// BenchmarkSMRPipelined shows what pipelining slots over one shared
	// deployment saves relative to this.
	for i := 0; i < b.N; i++ {
		c, err := NewConsensus(Example7RQS(), ConsensusOptions{Learners: 1})
		if err != nil {
			b.Fatal(err)
		}
		c.Proposers[0].Propose("v")
		if _, ok := c.Learners[0].Wait(10 * time.Second); !ok {
			b.Fatal("no decision")
		}
		c.Stop()
	}
}

func BenchmarkE11ThroughputMWMRWrite(b *testing.B) {
	c := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond})
	defer c.Stop()
	w := c.MWWriter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write("v")
	}
}

func BenchmarkE11ThroughputMWMRRead(b *testing.B) {
	c := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond})
	defer c.Stop()
	c.MWWriter().Write("v")
	r := c.MWReader()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Read()
	}
}

// The many-client load benchmarks run C closed-loop clients against
// one deployment through sim.RunManyClients (the same harness behind
// `rqs-bench -load` and the perf gate's load/* entries): ns/op
// aggregates across clients, so ops/sec = 1e9 / ns_per_op. This is
// the throughput number the single-client E11 benches cannot produce:
// it includes the server-side contention that batching amortizes.

// BenchmarkStorageManyClients is C concurrent SWMR readers (each on its
// own client port) against one storage deployment — the read-mostly
// many-user regime of the ROADMAP north star.
func BenchmarkStorageManyClients(b *testing.B) {
	for _, c := range sim.LoadConcurrencies {
		b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
			cl := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond, Clients: c + 1})
			defer cl.Stop()
			cl.Writer().Write("v")
			sim.RunManyClients(b, c, func() func() error {
				r := cl.Reader()
				return func() error { r.Read(); return nil }
			})
		})
	}
}

// BenchmarkMWMRManyWriters is C concurrent multi-writer clients
// contending on the MWMR register (tags keep them ordered).
func BenchmarkMWMRManyWriters(b *testing.B) {
	for _, c := range sim.LoadConcurrencies {
		b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
			cl := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond, Clients: c})
			defer cl.Stop()
			sim.RunManyClients(b, c, func() func() error {
				w := cl.MWWriter()
				return func() error { w.Write("v"); return nil }
			})
		})
	}
}

// BenchmarkKVManyClients is C concurrent KV clients over a
// two-shard-group keyed deployment: uniform Puts and zipfian (s=1.2)
// Gets over a 1k-key table (the perf gate's load/kv-* entries run the
// 10k-key variant). Matches the CI bench-smoke pattern so every PR
// exercises one kv load cell.
func BenchmarkKVManyClients(b *testing.B) {
	table := sim.KeyTable(1024)
	for _, c := range sim.LoadConcurrencies {
		b.Run(fmt.Sprintf("put/c%d", c), func(b *testing.B) {
			cl := NewKV(Example7RQS(), KVOptions{Groups: 2, Clients: c})
			defer cl.Stop()
			var seed int64
			sim.RunManyClients(b, c, func() func() error {
				seed++
				kv := cl.Client()
				keys := sim.NewUniformKeys(seed, table)
				return func() error { _, err := kv.Put(keys(), "v"); return err }
			})
		})
		b.Run(fmt.Sprintf("get-zipf/c%d", c), func(b *testing.B) {
			cl := NewKV(Example7RQS(), KVOptions{Groups: 2, Clients: c + 1})
			defer cl.Stop()
			pre := cl.Client()
			for _, key := range table {
				if _, err := pre.Put(key, "v"); err != nil {
					b.Fatal(err)
				}
			}
			var seed int64
			sim.RunManyClients(b, c, func() func() error {
				seed++
				kv := cl.Client()
				keys := sim.NewZipfKeys(seed, 1.2, table)
				return func() error { _, _, err := kv.Get(keys()); return err }
			})
		})
	}
}

// BenchmarkTCPStorageManyClients is BenchmarkStorageManyClients over
// real loopback TCP in shared-session mode: all C logical clients are
// colocated on one client host, so the socket count per process pair
// stays O(1) while throughput scales with C. The perf gate's load/tcp-*
// entries enforce the C=64 and C=256 points; the C=256 swarm is the
// fan-in regime the per-link credit windows exist for, so it runs here
// too (beyond the standard concurrency ladder).
func BenchmarkTCPStorageManyClients(b *testing.B) {
	for _, c := range append(append([]int{}, sim.LoadConcurrencies...), 256) {
		b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
			cl, err := sim.NewTCPStorageCluster(Example7RQS(), sim.TCPStorageOptions{Clients: c + 1})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Stop()
			cl.Writer().Write("v")
			sim.RunManyClients(b, c, func() func() error {
				r := cl.Reader()
				return func() error { r.Read(); return nil }
			})
		})
	}
}

// BenchmarkSMRPipelinedManyClients is C concurrent clients deciding
// commands through one shared pipelined SMR deployment (Append is safe
// for concurrent use; slots commit independently).
func BenchmarkSMRPipelinedManyClients(b *testing.B) {
	for _, c := range sim.LoadConcurrencies {
		b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
			cl, err := NewSMR(Example7RQS(), SMROptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Stop()
			if _, _, ok := cl.Decide("warm", 10*time.Second); !ok {
				b.Fatal("warm-up decision failed")
			}
			sim.RunManyClients(b, c, func() func() error {
				return func() error {
					if _, _, ok := cl.Decide("cmd", 10*time.Second); !ok {
						return fmt.Errorf("decision did not commit")
					}
					return nil
				}
			})
		})
	}
}

// BenchmarkSMRPipelined measures per-decision cost when many log slots
// share one consensus deployment (one key generation, one cluster),
// against the per-slot-setup baseline that stands a full cluster up
// for every decision (the E11 consensus bench). ns/op is ns/decision
// in every case; the window is how many proposals are in flight at
// once through the slot multiplexer.
func BenchmarkSMRPipelined(b *testing.B) {
	for _, window := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("pipelined/window-%d", window), func(b *testing.B) {
			c, err := NewSMR(Example7RQS(), SMROptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop()
			// Warm the per-role hosts before timing.
			if _, _, ok := c.Decide("warm", 10*time.Second); !ok {
				b.Fatal("warm-up decision failed")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += window {
				n := window
				if rem := b.N - i; rem < n {
					n = rem
				}
				slots := make([]int, n)
				for j := 0; j < n; j++ {
					slots[j] = c.Append("cmd")
				}
				for _, s := range slots {
					if _, ok := c.Wait(s, 10*time.Second); !ok {
						b.Fatalf("slot %d did not commit", s)
					}
				}
			}
		})
	}
	b.Run("per-slot-setup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := NewConsensus(Example7RQS(), ConsensusOptions{Learners: 1})
			if err != nil {
				b.Fatal(err)
			}
			c.Proposers[0].Propose("v")
			if _, ok := c.Learners[0].Wait(10 * time.Second); !ok {
				b.Fatal("no decision")
			}
			c.Stop()
		}
	})
}

func BenchmarkE12Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E12Availability()
	}
}

// Micro-benchmarks of the core primitives.

func BenchmarkCoreVerifyExample7(b *testing.B) {
	r := Example7RQS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreVerifyThreshold8(b *testing.B) {
	r, err := NewThresholdRQS(ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreContainedQuorum(b *testing.B) {
	r, err := NewThresholdRQS(ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	responded := core.NewSet(0, 1, 2, 3, 4, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.ContainedQuorum(responded, Class2); !ok {
			b.Fatal("no quorum")
		}
	}
}

// Guard against accidental API breakage of the facade used above.
var _ = sim.StorageOptions{}

// Ablation benches: the design choices DESIGN.md calls out.

// BenchmarkA1QC2Ablation measures the class-2 read scenario (1-round
// write through the class-1 quorum, then s6 gone) with and without the
// paper's class-2-quorum-id scheme: 2 rounds with it, 3 without.
func BenchmarkA1QC2Ablation(b *testing.B) {
	run := func(b *testing.B, disable bool, wantRounds int) {
		for i := 0; i < b.N; i++ {
			c := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond, Clients: 2})
			w := c.Writer()
			r := c.ReaderOpts(ReaderOptions{DisableQC2: disable})
			w.Write("v")
			c.CrashServers(NewSet(5))
			if res := r.Read(); res.Rounds != wantRounds {
				c.Stop()
				b.Fatalf("rounds = %d, want %d", res.Rounds, wantRounds)
			}
			c.Stop()
		}
	}
	b.Run("with-qc2-scheme", func(b *testing.B) { run(b, false, 2) })
	b.Run("ablated", func(b *testing.B) { run(b, true, 3) })
}

// BenchmarkA2RegularVsAtomicReads compares the cost of the two read
// semantics of Section 6 in steady state.
func BenchmarkA2RegularVsAtomicReads(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts ReaderOptions
	}{
		{"atomic", ReaderOptions{}},
		{"regular", ReaderOptions{Semantics: RegularReads}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := NewStorage(Example7RQS(), StorageOptions{Timeout: 500 * time.Microsecond, Clients: 2})
			defer c.Stop()
			c.Writer().Write("v")
			r := c.ReaderOpts(mode.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Read()
			}
		})
	}
}

// BenchmarkA3SMRLogThroughput commits slots through the smr layer.
func BenchmarkA3SMRLogThroughput(b *testing.B) {
	system := Example7RQS()
	nA := system.N()
	topo := consensus.Topology{
		Acceptors: system.Universe(),
		Proposers: []ProcessID{nA},
		Learners:  NewSet(nA + 1),
	}
	ring, signers, err := consensus.GenKeys(system.Universe())
	if err != nil {
		b.Fatal(err)
	}
	net := NewNetwork(nA + 2)
	var replicas []*LogReplica
	for _, id := range system.Universe().Members() {
		replicas = append(replicas, NewLogReplica(system, topo, net.Port(id), ring, signers[id], ElectionConfig{}))
	}
	prop := NewLogProposer(system, topo, net.Port(nA), ring, ElectionConfig{})
	logHost := NewLog(system, topo, net.Port(nA+1), 0)
	defer func() {
		net.Close()
		for _, r := range replicas {
			r.Stop()
		}
		prop.Stop()
		logHost.Stop()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prop.Propose(i, "cmd")
		if _, ok := logHost.Wait(i, 10*time.Second); !ok {
			b.Fatalf("slot %d did not commit", i)
		}
	}
}
