package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The perf regression gate: `rqs-bench -check BENCH_RESULTS.json` runs
// the perf suite and fails if any hot-path entry regressed beyond the
// tolerance relative to the committed baseline, turning the bench
// smoke into an enforced perf trajectory (ROADMAP item).

// compareBench returns one message per baseline entry that regressed —
// fresh ns/op > base ns/op × (1+tolerance), or fresh allocs/op beyond
// the same proportional bound plus a two-alloc jitter slack (timers and
// pools occasionally shift a count by one) — or disappeared from the
// fresh run. New entries only present in fresh are fine — they become
// the baseline when BENCH_RESULTS.json is regenerated.
func compareBench(base, fresh []BenchResult, tolerance float64) []string {
	freshBy := make(map[string]BenchResult, len(fresh))
	for _, r := range fresh {
		freshBy[r.Name] = r
	}
	var problems []string
	for _, b := range base {
		f, ok := freshBy[b.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from fresh run (baseline %.0f ns/op)", b.Name, b.NsPerOp))
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		if f.NsPerOp > b.NsPerOp*(1+tolerance) {
			problems = append(problems,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
					b.Name, f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1), 100*tolerance))
		}
		if allowed := int64(float64(b.AllocsPerOp)*(1+tolerance)) + 2; f.AllocsPerOp > allowed {
			problems = append(problems,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d allocs/op (allowed %d at tolerance %.0f%%)",
					b.Name, f.AllocsPerOp, b.AllocsPerOp, allowed, 100*tolerance))
		}
	}
	sort.Strings(problems)
	return problems
}

// checkBench runs the suite and compares it against the committed
// baseline, printing a verdict per entry and failing on regressions.
func checkBench(baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base []BenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	fresh, err := perfSuite()
	if err != nil {
		return err
	}
	baseBy := make(map[string]BenchResult, len(base))
	for _, r := range base {
		baseBy[r.Name] = r
	}
	for _, f := range fresh {
		if b, ok := baseBy[f.Name]; ok && b.NsPerOp > 0 {
			fmt.Printf("%-40s %10.0f ns/op  baseline %10.0f  (%+.1f%%)\n",
				f.Name, f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1))
		} else {
			fmt.Printf("%-40s %10.0f ns/op  (new, no baseline)\n", f.Name, f.NsPerOp)
		}
	}
	if problems := compareBench(base, fresh, tolerance); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "REGRESSION:", p)
		}
		return fmt.Errorf("%d hot-path regression(s) beyond %.0f%% tolerance", len(problems), 100*tolerance)
	}
	fmt.Printf("perf gate passed: %d entries within %.0f%% of baseline\n", len(base), 100*tolerance)
	return nil
}
