package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The perf regression gate: `rqs-bench -check BENCH_RESULTS.json` runs
// the perf suite and fails if any hot-path entry regressed beyond the
// tolerance relative to the committed baseline, turning the bench
// smoke into an enforced perf trajectory (ROADMAP item).

// nsRegressed and allocsRegressed are the gate's two bounds: fresh
// ns/op beyond base × (1+tolerance), and fresh allocs/op beyond the
// same proportional bound plus a two-alloc jitter slack (timers and
// pools occasionally shift a count by one).
func nsRegressed(base, fresh BenchResult, tolerance float64) bool {
	return base.NsPerOp > 0 && fresh.NsPerOp > base.NsPerOp*(1+tolerance)
}

func allocsRegressed(base, fresh BenchResult, tolerance float64) bool {
	return fresh.AllocsPerOp > int64(float64(base.AllocsPerOp)*(1+tolerance))+2
}

// compareBench returns one message per baseline entry that regressed
// on either bound, or disappeared from the fresh run. New entries only
// present in fresh are fine — they become the baseline when
// BENCH_RESULTS.json is regenerated.
func compareBench(base, fresh []BenchResult, tolerance float64) []string {
	freshBy := make(map[string]BenchResult, len(fresh))
	for _, r := range fresh {
		freshBy[r.Name] = r
	}
	var problems []string
	for _, b := range base {
		f, ok := freshBy[b.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from fresh run (baseline %.0f ns/op)", b.Name, b.NsPerOp))
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		if nsRegressed(b, f, tolerance) {
			problems = append(problems,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
					b.Name, f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1), 100*tolerance))
		}
		if allocsRegressed(b, f, tolerance) {
			allowed := int64(float64(b.AllocsPerOp)*(1+tolerance)) + 2
			problems = append(problems,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d allocs/op (allowed %d at tolerance %.0f%%)",
					b.Name, f.AllocsPerOp, b.AllocsPerOp, allowed, 100*tolerance))
		}
	}
	sort.Strings(problems)
	return problems
}

// checkBench runs the suite and compares it against the committed
// baseline, printing a verdict per entry and failing on regressions.
func checkBench(baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base []BenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	specs, err := perfSuiteSpecs()
	if err != nil {
		return err
	}
	baseBy := make(map[string]BenchResult, len(base))
	for _, r := range base {
		baseBy[r.Name] = r
	}
	// Measure each entry, re-sampling before declaring a regression:
	// a single unlucky sample (GC pause, scheduler quantum stolen by a
	// colocated process) must not fail the gate, while a structural
	// regression survives every re-sample. The elementwise minimum
	// across samples is what gets compared — see specSamples.
	fresh := make([]BenchResult, 0, len(specs))
	for _, s := range specs {
		f, err := measureSpec(s, specSamples(s.name))
		if err != nil {
			return err
		}
		if b, ok := baseBy[s.name]; ok {
			for retry := 0; retry < 2 && (nsRegressed(b, f, tolerance) || allocsRegressed(b, f, tolerance)); retry++ {
				r, err := measureSpec(s, 1)
				if err != nil {
					return err
				}
				f = minResult(f, r)
				fmt.Printf("%-40s re-sampled: %.0f ns/op, %d allocs/op\n", s.name, f.NsPerOp, f.AllocsPerOp)
			}
		}
		fresh = append(fresh, f)
	}
	for _, f := range fresh {
		if b, ok := baseBy[f.Name]; ok && b.NsPerOp > 0 {
			fmt.Printf("%-40s %10.0f ns/op  baseline %10.0f  (%+.1f%%)\n",
				f.Name, f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1))
		} else {
			fmt.Printf("%-40s %10.0f ns/op  (new, no baseline)\n", f.Name, f.NsPerOp)
		}
	}
	if problems := compareBench(base, fresh, tolerance); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "REGRESSION:", p)
		}
		return fmt.Errorf("%d hot-path regression(s) beyond %.0f%% tolerance", len(problems), 100*tolerance)
	}
	fmt.Printf("perf gate passed: %d entries within %.0f%% of baseline\n", len(base), 100*tolerance)
	return nil
}
