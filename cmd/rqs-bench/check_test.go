package main

import (
	"strings"
	"testing"
)

func TestCompareBench(t *testing.T) {
	base := []BenchResult{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 1000},
		{Name: "c", NsPerOp: 50},
	}
	fresh := []BenchResult{
		{Name: "a", NsPerOp: 124},  // +24%: inside 25% tolerance
		{Name: "b", NsPerOp: 1300}, // +30%: regression
		{Name: "d", NsPerOp: 5},    // new entry: fine
		// "c" missing: flagged
	}
	problems := compareBench(base, fresh, 0.25)
	if len(problems) != 2 {
		t.Fatalf("got %d problems %v, want 2", len(problems), problems)
	}
	if !strings.HasPrefix(problems[0], "b:") || !strings.Contains(problems[0], "+30.0%") {
		t.Errorf("unexpected regression line %q", problems[0])
	}
	if !strings.HasPrefix(problems[1], "c:") || !strings.Contains(problems[1], "missing") {
		t.Errorf("unexpected missing line %q", problems[1])
	}
}

func TestCompareBenchCleanRun(t *testing.T) {
	base := []BenchResult{{Name: "a", NsPerOp: 100}}
	fresh := []BenchResult{{Name: "a", NsPerOp: 80}} // improvement
	if problems := compareBench(base, fresh, 0.25); len(problems) != 0 {
		t.Errorf("improvement flagged as regression: %v", problems)
	}
}

func TestCompareBenchAllocs(t *testing.T) {
	base := []BenchResult{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 40},
		{Name: "b", NsPerOp: 100, AllocsPerOp: 40},
		{Name: "c", NsPerOp: 100, AllocsPerOp: 0},
	}
	fresh := []BenchResult{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 80}, // +100%: regression
		{Name: "b", NsPerOp: 100, AllocsPerOp: 51}, // within 25% + slack
		{Name: "c", NsPerOp: 100, AllocsPerOp: 2},  // inside the jitter slack
	}
	problems := compareBench(base, fresh, 0.25)
	if len(problems) != 1 {
		t.Fatalf("got %d problems %v, want 1", len(problems), problems)
	}
	if !strings.HasPrefix(problems[0], "a:") || !strings.Contains(problems[0], "allocs/op") {
		t.Errorf("unexpected alloc regression line %q", problems[0])
	}
}

func TestCompareBenchZeroBaseline(t *testing.T) {
	// A zero/corrupt baseline entry must not divide-by-zero or flag.
	base := []BenchResult{{Name: "a", NsPerOp: 0}}
	fresh := []BenchResult{{Name: "a", NsPerOp: 80}}
	if problems := compareBench(base, fresh, 0.25); len(problems) != 0 {
		t.Errorf("zero baseline flagged: %v", problems)
	}
}

func TestCheckBenchMissingBaseline(t *testing.T) {
	if err := checkBench("does-not-exist.json", 0.25); err == nil {
		t.Error("missing baseline file should error")
	}
}
