package main

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/sim"
)

// rqs-bench -load: the closed-loop many-client load harness. It runs
// C ∈ {1, 8, 64} concurrent clients against one deployment on both
// transports and reports ops/sec and allocs/op — the throughput axis
// the single-client experiment tables cannot show. The in-memory
// mid/high-concurrency points also run inside the perf suite
// (`-json` / `-check`) as load/* entries, so regressions against the
// committed BENCH_RESULTS.json fail CI like latency regressions do.

// memStorageLoad is a many-client workload over the in-memory
// transport: read selects C SWMR readers (after one seed write),
// otherwise C MWMR writers.
func memStorageLoad(r *core.RQS, c int, read bool) func(b *testing.B) {
	return func(b *testing.B) {
		cl := sim.NewStorageCluster(r, sim.StorageOptions{Timeout: 500 * time.Microsecond, Clients: c + 1})
		defer cl.Stop()
		if read {
			cl.Writer().Write("v")
		}
		sim.RunManyClients(b, c, func() func() error {
			if read {
				rd := cl.Reader()
				return func() error { rd.Read(); return nil }
			}
			w := cl.MWWriter()
			return func() error { w.Write("v"); return nil }
		})
	}
}

// memStorageAuthLoad is the mwmr-write load point with authenticated
// tags: every write pays one writer signature over 〈ts, writer, key,
// value-digest〉 plus quorum-many countersignature verifications on the
// acks, and the read phase before it verifies each server's
// countersigned tag. The HMAC point is the deployment default priced
// by the load/mwmr-write-auth-c64 gate (bounded against the unsigned
// write number); the ed25519 point prices the transferable-signature
// mode for the PERF.md overhead table.
func memStorageAuthLoad(r *core.RQS, c int, mode auth.Mode) func(b *testing.B) {
	return func(b *testing.B) {
		dep := sim.AuthDeployment(mode, r, c+1)
		cl := sim.NewStorageCluster(r, sim.StorageOptions{
			Timeout: 500 * time.Microsecond, Clients: c + 1, Auth: dep,
		})
		defer cl.Stop()
		sim.RunManyClients(b, c, func() func() error {
			w := cl.MWWriter()
			return func() error { w.Write("v"); return nil }
		})
	}
}

// memStorageDurableLoad is the mwmr-write load point over durable
// servers: every server burst pays one batched WAL append + fdatasync
// before its acks leave (group commit riding the burst drain), so the
// fsync cost amortizes over up to 64 concurrent writes. noSync drops
// the fdatasync while keeping the log writes — the pair prices the
// fsync tax separately from the serialization/IO overhead.
func memStorageDurableLoad(r *core.RQS, c int, noSync bool) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "rqs-bench-wal-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cl := sim.NewStorageCluster(r, sim.StorageOptions{
			Timeout: 500 * time.Microsecond, Clients: c + 1,
			DataDir: dir, WALNoSync: noSync,
		})
		defer cl.Stop()
		sim.RunManyClients(b, c, func() func() error {
			w := cl.MWWriter()
			return func() error { w.Write("v"); return nil }
		})
	}
}

// kvLoadKeys is the keyspace size of the kv load points: large enough
// that the per-key register map and its sharding actually matter,
// small enough that preloading stays a fraction of the measured run.
const kvLoadKeys = 10000

// kvLoad is C concurrent KV clients over a two-shard-group in-memory
// deployment. Writes draw keys uniformly over the 10k-key table; reads
// draw them zipfian (s=1.2) over the same table, preloaded with one
// Put per key — the skewed-read regime where the head keys resolve on
// the one-round fast path while the tail still exercises the lazily
// created register states.
func kvLoad(r *core.RQS, c int, read bool) func(b *testing.B) {
	return func(b *testing.B) {
		cl := sim.NewKVCluster(r, sim.KVOptions{Groups: 2, Clients: c + 1})
		defer cl.Stop()
		table := sim.KeyTable(kvLoadKeys)
		if read {
			pre := cl.Client()
			for _, key := range table {
				if _, err := pre.Put(key, "v"); err != nil {
					b.Fatal(err)
				}
			}
		}
		var seed int64
		sim.RunManyClients(b, c, func() func() error {
			seed++
			kv := cl.Client()
			if read {
				keys := sim.NewZipfKeys(seed, 1.2, table)
				return func() error { _, _, err := kv.Get(keys()); return err }
			}
			keys := sim.NewUniformKeys(seed, table)
			return func() error { _, err := kv.Put(keys(), "v"); return err }
		})
	}
}

// smrLoad is C concurrent clients deciding commands through one shared
// pipelined SMR deployment.
func smrLoad(r *core.RQS, c int) func(b *testing.B) {
	return func(b *testing.B) {
		cl, err := sim.NewSMRCluster(r, sim.SMROptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Stop()
		if _, _, ok := cl.Decide("warm", 10*time.Second); !ok {
			b.Fatal("warm-up decision failed")
		}
		sim.RunManyClients(b, c, func() func() error {
			return func() error {
				if _, _, ok := cl.Decide("cmd", 10*time.Second); !ok {
					return fmt.Errorf("decision did not commit")
				}
				return nil
			}
		})
	}
}

// tcpStorageLoad is memStorageLoad over real TCP sockets, in
// shared-session mode: all C logical clients are colocated on ONE
// client host (one socket per server, O(1) per process pair), the
// deployment shape the session layer was built for.
func tcpStorageLoad(r *core.RQS, c int, read bool) func(b *testing.B) {
	return func(b *testing.B) {
		cl, err := sim.NewTCPStorageCluster(r, sim.TCPStorageOptions{Clients: c + 1})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Stop()
		if read {
			cl.Writer().Write("v")
		}
		sim.RunManyClients(b, c, func() func() error {
			if read {
				rd := cl.Reader()
				return func() error { rd.Read(); return nil }
			}
			w := cl.MWWriter()
			return func() error { w.Write("v"); return nil }
		})
	}
}

// runLoadMatrix executes the full load matrix and prints one row per
// (transport, workload, C) point.
func runLoadMatrix() error {
	example7 := core.Example7RQS()
	type point struct {
		transport, workload string
		c                   int
		fn                  func(b *testing.B)
	}
	var points []point
	for _, c := range sim.LoadConcurrencies {
		points = append(points,
			point{"memory", "storage-read", c, memStorageLoad(example7, c, true)},
			point{"memory", "mwmr-write", c, memStorageLoad(example7, c, false)},
			point{"memory", "mwmr-write-hmac", c, memStorageAuthLoad(example7, c, auth.ModeHMAC)},
			point{"memory", "mwmr-write-ed25519", c, memStorageAuthLoad(example7, c, auth.ModeEd25519)},
			point{"memory", "durable-write", c, memStorageDurableLoad(example7, c, false)},
			point{"memory", "durable-nosync", c, memStorageDurableLoad(example7, c, true)},
			point{"memory", "smr-decide", c, smrLoad(example7, c)},
			point{"memory", "kv-put", c, kvLoad(example7, c, false)},
			point{"memory", "kv-get-zipf", c, kvLoad(example7, c, true)},
			point{"tcp", "storage-read", c, tcpStorageLoad(example7, c, true)},
			point{"tcp", "mwmr-write", c, tcpStorageLoad(example7, c, false)},
		)
	}
	// The C=256 fan-in swarm runs beyond the standard ladder on the TCP
	// read path only: 256 colocated logical clients against one shared
	// session per server is the regime the per-link credit windows and
	// the arena-backed burst receive are built for (also gated as
	// load/tcp-storage-read-c256 in the perf suite).
	points = append(points, point{"tcp", "storage-read", 256, tcpStorageLoad(example7, 256, true)})
	fmt.Printf("%-8s %-14s %4s %12s %12s %10s\n", "transport", "workload", "C", "ops/sec", "ns/op", "allocs/op")
	for _, p := range points {
		r := testing.Benchmark(p.fn)
		if r.N == 0 {
			return fmt.Errorf("load point %s/%s/c%d failed", p.transport, p.workload, p.c)
		}
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		fmt.Printf("%-8s %-14s %4d %12.0f %12.0f %10d\n",
			p.transport, p.workload, p.c, 1e9/nsPerOp, nsPerOp, r.AllocsPerOp())
	}
	return nil
}
