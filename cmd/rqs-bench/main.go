// Command rqs-bench regenerates the experiment tables E1-E12 of
// EXPERIMENTS.md: the paper's figures, best-case latency claims, and
// lower-bound schedules, each as an executable experiment.
//
// Usage:
//
//	rqs-bench                           # run everything
//	rqs-bench -e E5,E7                  # run selected experiments
//	rqs-bench -list                     # list available experiments
//	rqs-bench -json BENCH_RESULTS.json  # machine-readable perf suite
//	rqs-bench -check BENCH_RESULTS.json # fail on >25% hot-path regressions
//	rqs-bench -load                     # many-client load matrix, both transports
//
// Any mode accepts -cpuprofile/-memprofile to write pprof profiles, so
// a perf-gate regression in CI can be diagnosed from artifacts instead
// of reproduced locally.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/expt"
)

func main() {
	// Durable load points block in fdatasync. With a single P the
	// runtime cannot hand the P off until sysmon retakes it (20µs-10ms
	// adaptive), so every disk flush stalls the whole scheduler; a
	// second P keeps the protocol running while a flush is in flight.
	// Measured on a 1-CPU host: ~4× durable-write throughput.
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rqs-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rqs-bench", flag.ContinueOnError)
	var (
		exps      = fs.String("e", "all", "comma-separated experiment ids (E1..E12) or 'all'")
		list      = fs.Bool("list", false, "list experiments and exit")
		jsonPath  = fs.String("json", "", "run the perf suite and write BENCH_RESULTS-style JSON to this path ('-' for stdout)")
		checkPath = fs.String("check", "", "run the perf suite and fail on regressions against this baseline JSON (the committed BENCH_RESULTS.json)")
		tolerance = fs.Float64("tolerance", 0.25, "allowed ns/op regression fraction for -check (0.25 = 25%)")
		load      = fs.Bool("load", false, "run the many-client closed-loop load matrix (C ∈ {1,8,64}, both transports) and print ops/sec")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU pprof profile of the run to this path")
		memProf   = fs.String("memprofile", "", "write a heap pprof profile at the end of the run to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rqs-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects out of the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rqs-bench: memprofile:", err)
			}
		}()
	}
	if *jsonPath != "" {
		return writeBenchJSON(*jsonPath)
	}
	if *checkPath != "" {
		return checkBench(*checkPath, *tolerance)
	}
	if *load {
		return runLoadMatrix()
	}

	runners := map[string]func() *expt.Table{
		"E1":  func() *expt.Table { t, _ := expt.E1Fig1(); return t },
		"E2":  expt.E2Fig2,
		"E3":  expt.E3Fig3,
		"E4":  expt.E4Fig4,
		"E5":  expt.E5StorageLatency,
		"E6":  func() *expt.Table { t, _ := expt.E6Theorem3(); return t },
		"E7":  expt.E7ConsensusLatency,
		"E8":  func() *expt.Table { t, _ := expt.E8Theorem6(); return t },
		"E9":  expt.E9MinimalN,
		"E10": expt.E10ViewChange,
		"E12": expt.E12Availability,
	}
	order := make([]string, 0, len(runners))
	for id := range runners {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool {
		return atoi(order[i][1:]) < atoi(order[j][1:])
	})

	if *list {
		fmt.Println(strings.Join(order, " "))
		fmt.Println("E11 is the throughput suite: run `go test -bench=E11 -benchmem .`")
		return nil
	}

	selected := order
	if *exps != "all" {
		selected = nil
		for _, id := range strings.Split(*exps, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := runners[id]; !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, id)
		}
	}
	for _, id := range selected {
		fmt.Println(runners[id]().Format())
	}
	return nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}
