package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelected(t *testing.T) {
	// The cheap, purely computational experiments.
	if err := run([]string{"-e", "E2,E3,E9,E12"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestAtoi(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{{"1", 1}, {"12", 12}, {"3x", 3}, {"", 0}}
	for _, tt := range tests {
		if got := atoi(tt.in); got != tt.want {
			t.Errorf("atoi(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}
