package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transport"
)

// BenchResult is one entry of BENCH_RESULTS.json: a machine-readable
// record of an operation's cost so the perf trajectory can be tracked
// across PRs (compare the committed file against a fresh -json run).
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// perfSuite is the fixed operation set behind `rqs-bench -json`: the
// quorum-engine primitives on both the scan path (general adversary)
// and the O(1) threshold path, plus the end-to-end storage hot paths
// that the E11 throughput benches measure.
func perfSuite() ([]BenchResult, error) {
	example7 := core.Example7RQS()
	threshold8, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		return nil, err
	}

	trackerRound := func(r *core.RQS) func(b *testing.B) {
		return func(b *testing.B) {
			tr := r.NewTracker()
			members := r.Universe().Members()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				for _, p := range members {
					if tr.Add(p) {
						tr.Contained(core.Class3)
					}
				}
				tr.ContainedAll(core.Class2)
			}
		}
	}
	containedQuorum := func(r *core.RQS, responded core.Set) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := r.ContainedQuorum(responded, core.Class2); !ok {
					b.Fatal("no quorum")
				}
			}
		}
	}
	storageOp := func(r *core.RQS, read bool) func(b *testing.B) {
		return func(b *testing.B) {
			c := sim.NewStorageCluster(r, sim.StorageOptions{Timeout: 500 * time.Microsecond})
			defer c.Stop()
			w := c.Writer()
			w.Write("v")
			rd := c.Reader()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if read {
					rd.Read()
				} else {
					w.Write("v")
				}
			}
		}
	}
	broadcast := func(b *testing.B) {
		net := transport.NewNetwork(8)
		defer net.Close()
		src := net.Port(7)
		dst := core.FullSet(7)
		sink := make(chan struct{})
		for id := 0; id < 7; id++ {
			go func(p transport.Port) {
				for range p.Inbox() {
				}
				sink <- struct{}{}
			}(net.Port(id))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			transport.Broadcast(src, dst, i)
		}
		b.StopTimer()
		net.Close()
		for id := 0; id < 7; id++ {
			<-sink
		}
	}

	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"core/contained-quorum/threshold8", containedQuorum(threshold8, core.NewSet(0, 1, 2, 3, 4, 5))},
		{"core/contained-quorum/example7", containedQuorum(example7, core.NewSet(0, 1, 2, 3, 4))},
		{"core/tracker-round/threshold8", trackerRound(threshold8)},
		{"core/tracker-round/example7", trackerRound(example7)},
		{"storage/write/example7", storageOp(example7, false)},
		{"storage/read/example7", storageOp(example7, true)},
		{"storage/read/threshold8", storageOp(threshold8, true)},
		{"transport/broadcast-7", broadcast},
	}

	out := make([]BenchResult, 0, len(suite))
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		if r.N == 0 {
			return nil, fmt.Errorf("benchmark %s failed", s.name)
		}
		out = append(out, BenchResult{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// writeBenchJSON runs the perf suite and writes it to path (stdout when
// path is "-").
func writeBenchJSON(path string) error {
	results, err := perfSuite()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
