package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// BenchResult is one entry of BENCH_RESULTS.json: a machine-readable
// record of an operation's cost so the perf trajectory can be tracked
// across PRs (compare the committed file against a fresh -json run).
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// perfSuite is the fixed operation set behind `rqs-bench -json`: the
// quorum-engine primitives on both the scan path (general adversary)
// and the O(1) threshold path, plus the end-to-end storage hot paths
// that the E11 throughput benches measure.
func perfSuite() ([]BenchResult, error) {
	example7 := core.Example7RQS()
	threshold8, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		return nil, err
	}

	trackerRound := func(r *core.RQS) func(b *testing.B) {
		return func(b *testing.B) {
			tr := r.NewTracker()
			members := r.Universe().Members()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				for _, p := range members {
					if tr.Add(p) {
						tr.Contained(core.Class3)
					}
				}
				tr.ContainedAll(core.Class2)
			}
		}
	}
	containedQuorum := func(r *core.RQS, responded core.Set) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := r.ContainedQuorum(responded, core.Class2); !ok {
					b.Fatal("no quorum")
				}
			}
		}
	}
	mwmrOp := func(r *core.RQS, read bool) func(b *testing.B) {
		return func(b *testing.B) {
			c := sim.NewStorageCluster(r, sim.StorageOptions{Timeout: 500 * time.Microsecond})
			defer c.Stop()
			w := c.MWWriter()
			w.Write("v")
			rd := c.MWReader()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if read {
					rd.Read()
				} else {
					w.Write("v")
				}
			}
		}
	}
	// smrPipelined is the amortized per-decision cost over one shared
	// consensus deployment with `window` slots in flight (compare the
	// consensus/per-slot-setup entry, which pays key generation and
	// cluster setup per decision).
	smrPipelined := func(r *core.RQS, window int) func(b *testing.B) {
		return func(b *testing.B) {
			c, err := sim.NewSMRCluster(r, sim.SMROptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop()
			if _, _, ok := c.Decide("warm", 10*time.Second); !ok {
				b.Fatal("warm-up decision failed")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += window {
				n := window
				if rem := b.N - i; rem < n {
					n = rem
				}
				slots := make([]int, n)
				for j := 0; j < n; j++ {
					slots[j] = c.Append("cmd")
				}
				for _, s := range slots {
					if _, ok := c.Wait(s, 10*time.Second); !ok {
						b.Fatalf("slot %d did not commit", s)
					}
				}
			}
		}
	}
	perSlotSetup := func(r *core.RQS) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := sim.NewConsensusCluster(r, sim.ConsensusOptions{Learners: 1})
				if err != nil {
					b.Fatal(err)
				}
				c.Proposers[0].Propose("v")
				if _, ok := c.Learners[0].Wait(10 * time.Second); !ok {
					b.Fatal("no decision")
				}
				c.Stop()
			}
		}
	}
	storageOp := func(r *core.RQS, read bool) func(b *testing.B) {
		return func(b *testing.B) {
			c := sim.NewStorageCluster(r, sim.StorageOptions{Timeout: 500 * time.Microsecond})
			defer c.Stop()
			w := c.Writer()
			w.Write("v")
			rd := c.Reader()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if read {
					rd.Read()
				} else {
					w.Write("v")
				}
			}
		}
	}
	broadcast := func(b *testing.B) {
		net := transport.NewNetwork(8)
		defer net.Close()
		src := net.Port(7)
		dst := core.FullSet(7)
		sink := make(chan struct{})
		for id := 0; id < 7; id++ {
			go func(p transport.Port) {
				for range p.Inbox() {
				}
				sink <- struct{}{}
			}(net.Port(id))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			transport.Broadcast(src, dst, i)
		}
		b.StopTimer()
		net.Close()
		for id := 0; id < 7; id++ {
			<-sink
		}
	}

	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"core/contained-quorum/threshold8", containedQuorum(threshold8, core.NewSet(0, 1, 2, 3, 4, 5))},
		{"core/contained-quorum/example7", containedQuorum(example7, core.NewSet(0, 1, 2, 3, 4))},
		{"core/tracker-round/threshold8", trackerRound(threshold8)},
		{"core/tracker-round/example7", trackerRound(example7)},
		{"storage/write/example7", storageOp(example7, false)},
		{"storage/read/example7", storageOp(example7, true)},
		{"storage/read/threshold8", storageOp(threshold8, true)},
		{"storage/mwmr-write/example7", mwmrOp(example7, false)},
		{"storage/mwmr-read/example7", mwmrOp(example7, true)},
		{"smr/pipelined-decision-w16/example7", smrPipelined(example7, 16)},
		{"smr/per-slot-setup-decision/example7", perSlotSetup(example7)},
		// Closed-loop throughput entries (the -load matrix's in-memory
		// mid/high-concurrency points): ns/op aggregates over all
		// clients, so these gate ops/sec under contention the same way
		// the entries above gate single-client latency.
		{"load/storage-read-c8/example7", memStorageLoad(example7, 8, true)},
		{"load/storage-read-c64/example7", memStorageLoad(example7, 64, true)},
		{"load/mwmr-write-c8/example7", memStorageLoad(example7, 8, false)},
		{"load/mwmr-write-c64/example7", memStorageLoad(example7, 64, false)},
		// Durable-write throughput: the same C=64 write load with every
		// server running over a write-ahead log — one batched
		// append+fdatasync per 64-envelope burst before the acks leave.
		// The nosync variant prices the fdatasync separately from the
		// record serialization and file writes. Gated like the volatile
		// write number: group commit must keep the fsync tax amortized.
		{"load/storage-write-durable-c64/example7", memStorageDurableLoad(example7, 64, false)},
		{"load/storage-write-durable-nosync-c64/example7", memStorageDurableLoad(example7, 64, true)},
		{"load/smr-decide-c8/example7", smrLoad(example7, 8)},
		// Keyed KV throughput: uniform Puts and zipfian (s=1.2) Gets
		// over a 10k-key table on two shard groups — the per-key state
		// map, consistent-hash routing, and tracker pooling all gate
		// here.
		{"load/kv-put-c8/example7", kvLoad(example7, 8, false)},
		{"load/kv-put-c64/example7", kvLoad(example7, 64, false)},
		{"load/kv-get-zipf-c8/example7", kvLoad(example7, 8, true)},
		{"load/kv-get-zipf-c64/example7", kvLoad(example7, 64, true)},
		// TCP points of the load matrix, in shared-session mode (all C
		// clients colocated on one host). Gating these makes the C=64
		// session-multiplexing win an enforced floor exactly like the
		// in-memory throughput numbers.
		{"load/tcp-storage-read-c1/example7", tcpStorageLoad(example7, 1, true)},
		{"load/tcp-storage-read-c8/example7", tcpStorageLoad(example7, 8, true)},
		{"load/tcp-storage-read-c64/example7", tcpStorageLoad(example7, 64, true)},
		{"load/tcp-mwmr-write-c64/example7", tcpStorageLoad(example7, 64, false)},
		{"transport/broadcast-7", broadcast},
		{"transport/tcp-roundtrip", tcpRoundTrip},
		{"transport/tcp-roundtrip-gob-baseline", gobRoundTrip},
		{"transport/tcp-throughput", tcpThroughput},
		{"transport/memory-roundtrip", memRoundTrip},
	}

	out := make([]BenchResult, 0, len(suite))
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		if r.N == 0 {
			return nil, fmt.Errorf("benchmark %s failed", s.name)
		}
		out = append(out, BenchResult{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// wirePayload is the protocols' hot message shape, shared by the wire
// benchmarks below (mirroring BenchmarkTCPVsMemory in the transport
// package, whose numbers these entries track across PRs).
func wirePayload() storage.WriteReq {
	return storage.WriteReq{
		TS:    12345,
		Val:   "benchmark-value",
		Sets:  []core.Set{core.NewSet(0, 1, 2, 3), core.NewSet(1, 2, 4, 5)},
		Round: 2,
	}
}

func tcpNodePair(b *testing.B) (*transport.TCPNode, *transport.TCPNode) {
	transport.Register(storage.WriteReq{})
	addrs := map[core.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	n0, err := transport.NewTCPNode(0, addrs)
	if err != nil {
		b.Fatal(err)
	}
	addrs[0] = n0.Addr()
	n1, err := transport.NewTCPNode(1, addrs)
	if err != nil {
		n0.Close()
		b.Fatal(err)
	}
	addrs[1] = n1.Addr()
	return n0, n1
}

// tcpRoundTrip measures one framed-transport round trip.
func tcpRoundTrip(b *testing.B) {
	n0, n1 := tcpNodePair(b)
	defer n0.Close()
	defer n1.Close()
	go func() {
		for env := range n1.Inbox() {
			n1.Send(env.From, env.Payload)
		}
	}()
	payload := wirePayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.Send(1, payload)
		<-n0.Inbox()
	}
}

// tcpThroughput measures one-way framed-transport streaming.
func tcpThroughput(b *testing.B) {
	n0, n1 := tcpNodePair(b)
	defer n0.Close()
	defer n1.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-n1.Inbox()
		}
	}()
	payload := wirePayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.Send(1, payload)
	}
	<-done
}

// memRoundTrip is the in-memory reference point for the TCP numbers.
func memRoundTrip(b *testing.B) {
	net := transport.NewNetwork(2)
	defer net.Close()
	p0, p1 := net.Port(0), net.Port(1)
	go func() {
		for env := range p1.Inbox() {
			p1.Send(env.From, env.Payload)
		}
	}()
	payload := wirePayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p0.Send(1, payload)
		<-p0.Inbox()
	}
}

// gobRoundTrip is the seed's wire scheme — mutex-guarded gob.Encoder
// per direction, decode goroutine feeding an inbox channel — kept as
// the baseline the framed codec is measured against in
// BENCH_RESULTS.json.
func gobRoundTrip(b *testing.B) {
	gob.Register(storage.WriteReq{})
	type gobNode struct {
		mu    sync.Mutex
		enc   *gob.Encoder
		inbox chan transport.Envelope
	}
	nodes := [2]*gobNode{
		{inbox: make(chan transport.Envelope, 4096)},
		{inbox: make(chan transport.Envelope, 4096)},
	}
	var lns [2]net.Listener
	var conns []net.Conn
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		defer ln.Close()
	}
	for i := range lns {
		i := i
		go func() {
			conn, err := lns[i].Accept()
			if err != nil {
				return
			}
			dec := gob.NewDecoder(conn)
			for {
				var env transport.Envelope
				if dec.Decode(&env) != nil {
					return
				}
				nodes[i].inbox <- env
			}
		}()
		conn, err := net.Dial("tcp", lns[1-i].Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		conns = append(conns, conn)
		nodes[i].enc = gob.NewEncoder(conn)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	send := func(g *gobNode, env *transport.Envelope) error {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.enc.Encode(env)
	}
	go func() {
		for env := range nodes[1].inbox {
			if send(nodes[1], &env) != nil {
				return
			}
		}
	}()
	env := transport.Envelope{From: 0, To: 1, Payload: wirePayload()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send(nodes[0], &env); err != nil {
			b.Fatal(err)
		}
		<-nodes[0].inbox
	}
}

// writeBenchJSON runs the perf suite and writes it to path (stdout when
// path is "-").
func writeBenchJSON(path string) error {
	results, err := perfSuite()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
