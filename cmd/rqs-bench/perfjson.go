package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// BenchResult is one entry of BENCH_RESULTS.json: a machine-readable
// record of an operation's cost so the perf trajectory can be tracked
// across PRs (compare the committed file against a fresh -json run).
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchSpec is one entry of the perf suite: a gate name and the
// benchmark body measured under it.
type benchSpec struct {
	name string
	fn   func(b *testing.B)
}

// specSamples is how many times a suite entry is sampled per
// measurement, keeping the elementwise minimum (see measureSpec). The
// wire microbenches complete an op in ~1µs, so a single unlucky
// scheduling quantum inside their one sampled run shifts the mean by
// 2-5× — enough to trip the gate with no code change at all. Minima
// are robust to that: noise only ever adds time, so min-of-N compares
// the structural cost of the path. Every entry takes at least two
// samples: a single-sample BASELINE is just as dangerous as a
// single-sample check — one lucky-fast draw at -json time becomes a
// bar no honest re-measurement can clear. The µs-scale wire entries,
// where one stolen quantum distorts the most, take a third.
func specSamples(name string) int {
	if strings.HasPrefix(name, "transport/") {
		return 3
	}
	return 2
}

// measureSpec samples a suite entry `samples` times and returns the
// elementwise minimum (ns, allocs, bytes) across runs.
func measureSpec(s benchSpec, samples int) (BenchResult, error) {
	var best BenchResult
	for i := 0; i < samples; i++ {
		r := testing.Benchmark(s.fn)
		if r.N == 0 {
			return BenchResult{}, fmt.Errorf("benchmark %s failed", s.name)
		}
		res := BenchResult{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if i == 0 {
			best = res
			continue
		}
		best = minResult(best, res)
	}
	return best, nil
}

// minResult is the elementwise minimum of two samples of the same
// entry — the gate's noise-robust estimator of structural cost.
func minResult(a, b BenchResult) BenchResult {
	out := a
	if b.NsPerOp < out.NsPerOp {
		out.NsPerOp = b.NsPerOp
		out.Iterations = b.Iterations
	}
	if b.AllocsPerOp < out.AllocsPerOp {
		out.AllocsPerOp = b.AllocsPerOp
	}
	if b.BytesPerOp < out.BytesPerOp {
		out.BytesPerOp = b.BytesPerOp
	}
	return out
}

// perfSuite measures the fixed operation set behind `rqs-bench -json`:
// the quorum-engine primitives on both the scan path (general
// adversary) and the O(1) threshold path, plus the end-to-end storage
// hot paths that the E11 throughput benches measure.
func perfSuite() ([]BenchResult, error) {
	specs, err := perfSuiteSpecs()
	if err != nil {
		return nil, err
	}
	out := make([]BenchResult, 0, len(specs))
	for _, s := range specs {
		r, err := measureSpec(s, specSamples(s.name))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// perfSuiteSpecs builds the suite without running it, so checkBench
// can re-sample individual entries before declaring a regression.
func perfSuiteSpecs() ([]benchSpec, error) {
	example7 := core.Example7RQS()
	threshold8, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		return nil, err
	}

	trackerRound := func(r *core.RQS) func(b *testing.B) {
		return func(b *testing.B) {
			tr := r.NewTracker()
			members := r.Universe().Members()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				for _, p := range members {
					if tr.Add(p) {
						tr.Contained(core.Class3)
					}
				}
				tr.ContainedAll(core.Class2)
			}
		}
	}
	containedQuorum := func(r *core.RQS, responded core.Set) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := r.ContainedQuorum(responded, core.Class2); !ok {
					b.Fatal("no quorum")
				}
			}
		}
	}
	mwmrOp := func(r *core.RQS, read bool) func(b *testing.B) {
		return func(b *testing.B) {
			c := sim.NewStorageCluster(r, sim.StorageOptions{Timeout: 500 * time.Microsecond})
			defer c.Stop()
			w := c.MWWriter()
			w.Write("v")
			rd := c.MWReader()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if read {
					rd.Read()
				} else {
					w.Write("v")
				}
			}
		}
	}
	// smrPipelined is the amortized per-decision cost over one shared
	// consensus deployment with `window` slots in flight (compare the
	// consensus/per-slot-setup entry, which pays key generation and
	// cluster setup per decision).
	smrPipelined := func(r *core.RQS, window int) func(b *testing.B) {
		return func(b *testing.B) {
			c, err := sim.NewSMRCluster(r, sim.SMROptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop()
			if _, _, ok := c.Decide("warm", 10*time.Second); !ok {
				b.Fatal("warm-up decision failed")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += window {
				n := window
				if rem := b.N - i; rem < n {
					n = rem
				}
				slots := make([]int, n)
				for j := 0; j < n; j++ {
					slots[j] = c.Append("cmd")
				}
				for _, s := range slots {
					if _, ok := c.Wait(s, 10*time.Second); !ok {
						b.Fatalf("slot %d did not commit", s)
					}
				}
			}
		}
	}
	perSlotSetup := func(r *core.RQS) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := sim.NewConsensusCluster(r, sim.ConsensusOptions{Learners: 1})
				if err != nil {
					b.Fatal(err)
				}
				c.Proposers[0].Propose("v")
				if _, ok := c.Learners[0].Wait(10 * time.Second); !ok {
					b.Fatal("no decision")
				}
				c.Stop()
			}
		}
	}
	storageOp := func(r *core.RQS, read bool) func(b *testing.B) {
		return func(b *testing.B) {
			c := sim.NewStorageCluster(r, sim.StorageOptions{Timeout: 500 * time.Microsecond})
			defer c.Stop()
			w := c.Writer()
			w.Write("v")
			rd := c.Reader()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if read {
					rd.Read()
				} else {
					w.Write("v")
				}
			}
		}
	}
	broadcast := func(b *testing.B) {
		net := transport.NewNetwork(8)
		defer net.Close()
		src := net.Port(7)
		dst := core.FullSet(7)
		sink := make(chan struct{})
		for id := 0; id < 7; id++ {
			go func(p transport.Port) {
				for range p.Inbox() {
				}
				sink <- struct{}{}
			}(net.Port(id))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			transport.Broadcast(src, dst, i)
		}
		b.StopTimer()
		net.Close()
		for id := 0; id < 7; id++ {
			<-sink
		}
	}

	suite := []benchSpec{
		{"core/contained-quorum/threshold8", containedQuorum(threshold8, core.NewSet(0, 1, 2, 3, 4, 5))},
		{"core/contained-quorum/example7", containedQuorum(example7, core.NewSet(0, 1, 2, 3, 4))},
		{"core/tracker-round/threshold8", trackerRound(threshold8)},
		{"core/tracker-round/example7", trackerRound(example7)},
		{"storage/write/example7", storageOp(example7, false)},
		{"storage/read/example7", storageOp(example7, true)},
		{"storage/read/threshold8", storageOp(threshold8, true)},
		{"storage/mwmr-write/example7", mwmrOp(example7, false)},
		{"storage/mwmr-read/example7", mwmrOp(example7, true)},
		{"smr/pipelined-decision-w16/example7", smrPipelined(example7, 16)},
		{"smr/per-slot-setup-decision/example7", perSlotSetup(example7)},
		// Closed-loop throughput entries (the -load matrix's in-memory
		// mid/high-concurrency points): ns/op aggregates over all
		// clients, so these gate ops/sec under contention the same way
		// the entries above gate single-client latency.
		{"load/storage-read-c8/example7", memStorageLoad(example7, 8, true)},
		{"load/storage-read-c64/example7", memStorageLoad(example7, 64, true)},
		{"load/mwmr-write-c8/example7", memStorageLoad(example7, 8, false)},
		{"load/mwmr-write-c64/example7", memStorageLoad(example7, 64, false)},
		// The authenticated C=64 write load (HMAC, the deployment
		// default): same closed loop as mwmr-write-c64 but every write
		// signs its tag and verifies quorum-many countersigned acks on
		// both phases. Gating it next to the unsigned number keeps the
		// signing overhead a bounded, visible tax rather than a silent
		// regression channel.
		{"load/mwmr-write-auth-c64/example7", memStorageAuthLoad(example7, 64, auth.ModeHMAC)},
		// Durable-write throughput: the same C=64 write load with every
		// server running over a write-ahead log — one batched
		// append+fdatasync per 64-envelope burst before the acks leave.
		// The nosync variant prices the fdatasync separately from the
		// record serialization and file writes. Gated like the volatile
		// write number: group commit must keep the fsync tax amortized.
		{"load/storage-write-durable-c64/example7", memStorageDurableLoad(example7, 64, false)},
		{"load/storage-write-durable-nosync-c64/example7", memStorageDurableLoad(example7, 64, true)},
		{"load/smr-decide-c8/example7", smrLoad(example7, 8)},
		// Keyed KV throughput: uniform Puts and zipfian (s=1.2) Gets
		// over a 10k-key table on two shard groups — the per-key state
		// map, consistent-hash routing, and tracker pooling all gate
		// here.
		{"load/kv-put-c8/example7", kvLoad(example7, 8, false)},
		{"load/kv-put-c64/example7", kvLoad(example7, 64, false)},
		{"load/kv-get-zipf-c8/example7", kvLoad(example7, 8, true)},
		{"load/kv-get-zipf-c64/example7", kvLoad(example7, 64, true)},
		// TCP points of the load matrix, in shared-session mode (all C
		// clients colocated on one host). Gating these makes the C=64
		// session-multiplexing win an enforced floor exactly like the
		// in-memory throughput numbers.
		{"load/tcp-storage-read-c1/example7", tcpStorageLoad(example7, 1, true)},
		{"load/tcp-storage-read-c8/example7", tcpStorageLoad(example7, 8, true)},
		{"load/tcp-storage-read-c64/example7", tcpStorageLoad(example7, 64, true)},
		// The C=256 fan-in point: one server-side session carrying a
		// 256-client swarm. This is where per-frame decode allocation
		// and head-of-line blocking on the shared peerLink dominate, so
		// it gates the zero-copy receive path and the per-link credit
		// windows together.
		{"load/tcp-storage-read-c256/example7", tcpStorageLoad(example7, 256, true)},
		{"load/tcp-mwmr-write-c64/example7", tcpStorageLoad(example7, 64, false)},
		{"transport/broadcast-7", broadcast},
		{"transport/tcp-roundtrip", tcpRoundTrip},
		{"transport/tcp-throughput", tcpThroughput},
		{"transport/memory-roundtrip", memRoundTrip},
	}
	return suite, nil
}

// wirePayload is the protocols' hot message shape, shared by the wire
// benchmarks below (mirroring BenchmarkTCPVsMemory in the transport
// package, whose numbers these entries track across PRs).
func wirePayload() storage.WriteReq {
	return storage.WriteReq{
		TS:    12345,
		Val:   "benchmark-value",
		Sets:  []core.Set{core.NewSet(0, 1, 2, 3), core.NewSet(1, 2, 4, 5)},
		Round: 2,
	}
}

func tcpNodePair(b *testing.B) (*transport.TCPNode, *transport.TCPNode) {
	transport.Register(storage.WriteReq{})
	addrs := map[core.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	n0, err := transport.NewTCPNode(0, addrs)
	if err != nil {
		b.Fatal(err)
	}
	addrs[0] = n0.Addr()
	n1, err := transport.NewTCPNode(1, addrs)
	if err != nil {
		n0.Close()
		b.Fatal(err)
	}
	addrs[1] = n1.Addr()
	return n0, n1
}

// tcpRoundTrip measures one framed-transport round trip. The echoer
// replies with its own payload rather than the received one — received
// payloads alias a receive arena that must be released before the next
// burst can recycle it, and the send path encodes asynchronously.
func tcpRoundTrip(b *testing.B) {
	n0, n1 := tcpNodePair(b)
	defer n0.Close()
	defer n1.Close()
	go func() {
		reply := wirePayload()
		for env := range n1.Inbox() {
			env.Release()
			n1.Send(env.From, reply)
		}
	}()
	payload := wirePayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.Send(1, payload)
		env := <-n0.Inbox()
		env.Release()
	}
}

// tcpThroughput measures one-way framed-transport streaming.
func tcpThroughput(b *testing.B) {
	n0, n1 := tcpNodePair(b)
	defer n0.Close()
	defer n1.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			env := <-n1.Inbox()
			env.Release()
		}
	}()
	payload := wirePayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.Send(1, payload)
	}
	<-done
}

// memRoundTrip is the in-memory reference point for the TCP numbers.
func memRoundTrip(b *testing.B) {
	net := transport.NewNetwork(2)
	defer net.Close()
	p0, p1 := net.Port(0), net.Port(1)
	go func() {
		for env := range p1.Inbox() {
			p1.Send(env.From, env.Payload)
		}
	}()
	payload := wirePayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p0.Send(1, payload)
		<-p0.Inbox()
	}
}

// writeBenchJSON runs the perf suite and writes it to path (stdout when
// path is "-").
func writeBenchJSON(path string) error {
	results, err := perfSuite()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
