// Command rqs-chaos runs the scripted fault-injection scenario matrix:
// named chaos scenarios (partitions, flapping links, Byzantine stale
// tags with and without authenticated clients, replayed read acks,
// equivocating acceptors, kill -9 restarts, heavy-tailed latency,
// reorder/duplication storms, wire blackholes) against the SWMR, MWMR,
// SMR and keyed KV
// workloads on the in-memory and TCP transports, property-checking
// every run with histcheck and asserting liveness through
// per-operation deadlines.
//
// Usage:
//
//	rqs-chaos -matrix                 # the full applicable matrix
//	rqs-chaos -matrix -seed 42        # same matrix, different fault pattern
//	rqs-chaos -scenario wire-blackhole -transport tcp -workload mwmr
//	rqs-chaos -list                   # list scenarios and their cells
//	rqs-chaos -matrix -artifact fail.json  # dump failing runs' seed+history
//
// Fault randomness derives entirely from -seed, so a failing cell is
// replayed by rerunning with the seed the failure reported. Exit status
// is 1 if any run fails: a liveness deadline missed, a history rejected
// by histcheck, or a negative control that failed to produce its
// violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/histcheck"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rqs-chaos:", err)
		os.Exit(1)
	}
}

var errRunsFailed = fmt.Errorf("scenario runs failed")

func run(args []string) error {
	fs := flag.NewFlagSet("rqs-chaos", flag.ContinueOnError)
	var (
		matrix    = fs.Bool("matrix", false, "run every applicable scenario × transport × workload cell")
		scenario  = fs.String("scenario", "", "run one named scenario (see -list)")
		transport = fs.String("transport", "", "restrict to one transport: memory or tcp")
		workload  = fs.String("workload", "", "restrict to one workload: swmr, mwmr, smr or kv")
		seed      = fs.Int64("seed", 1, "fault-script seed; a run replays its faults from it")
		list      = fs.Bool("list", false, "list scenarios and their applicable cells, then exit")
		artifact  = fs.String("artifact", "", "write failing runs (seed, violation, history dump) as JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		listScenarios(fs.Output())
		return nil
	}
	if !*matrix && *scenario == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -matrix or -scenario")
	}

	scenarios := sim.Scenarios()
	if *scenario != "" {
		sc, ok := sim.FindScenario(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (see -list)", *scenario)
		}
		scenarios = []*sim.Scenario{sc}
	}
	transports, err := selectTransports(*transport)
	if err != nil {
		return err
	}
	workloads, err := selectWorkloads(*workload)
	if err != nil {
		return err
	}

	out := fs.Output()
	var results []*sim.RunResult
	failed := 0
	for _, sc := range scenarios {
		for _, tr := range transports {
			for _, wl := range workloads {
				if !sc.Applies(tr, wl) {
					continue
				}
				res := sim.RunScenario(sc, tr, wl, *seed)
				results = append(results, res)
				verdict := "ok  "
				if !res.Passed() {
					verdict = "FAIL"
					failed++
				}
				authrej := ""
				if n := res.Auth.RejectedAcks + res.Auth.RejectedWrites; n > 0 {
					authrej = fmt.Sprintf(" authrej=%d", n)
				}
				fmt.Fprintf(out, "%s %-28s %-6s %-4s seed=%-4d %7s  ops=%d drop=%d delay=%d dup=%d%s\n",
					verdict, res.Scenario, res.Transport, res.Workload, res.Seed,
					res.Elapsed.Round(time.Millisecond), len(res.Ops),
					res.Stats.Dropped, res.Stats.Delayed, res.Stats.Duped, authrej)
				if !res.Passed() {
					fmt.Fprintf(out, "     ^ %s\n", res.Failure())
				}
			}
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("no applicable scenario/transport/workload cells selected")
	}
	fmt.Fprintf(out, "%d runs, %d failed\n", len(results), failed)

	if *artifact != "" && failed > 0 {
		if err := writeArtifact(*artifact, results); err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
		fmt.Fprintf(out, "failure artifact written to %s\n", *artifact)
	}
	if failed > 0 {
		return errRunsFailed
	}
	return nil
}

func selectTransports(s string) ([]sim.Transport, error) {
	switch s {
	case "":
		return []sim.Transport{sim.MemoryTransport, sim.TCPTransport}, nil
	case "memory":
		return []sim.Transport{sim.MemoryTransport}, nil
	case "tcp":
		return []sim.Transport{sim.TCPTransport}, nil
	}
	return nil, fmt.Errorf("unknown transport %q (memory or tcp)", s)
}

func selectWorkloads(s string) ([]sim.Workload, error) {
	switch s {
	case "":
		return []sim.Workload{sim.SWMRWorkload, sim.MWMRWorkload, sim.SMRWorkload, sim.KVWorkload}, nil
	case "swmr":
		return []sim.Workload{sim.SWMRWorkload}, nil
	case "mwmr":
		return []sim.Workload{sim.MWMRWorkload}, nil
	case "smr":
		return []sim.Workload{sim.SMRWorkload}, nil
	case "kv":
		return []sim.Workload{sim.KVWorkload}, nil
	}
	return nil, fmt.Errorf("unknown workload %q (swmr, mwmr, smr or kv)", s)
}

func listScenarios(out interface{ Write([]byte) (int, error) }) {
	for _, sc := range sim.Scenarios() {
		var cells []string
		for _, tr := range []sim.Transport{sim.MemoryTransport, sim.TCPTransport} {
			for _, wl := range []sim.Workload{sim.SWMRWorkload, sim.MWMRWorkload, sim.SMRWorkload, sim.KVWorkload} {
				if sc.Applies(tr, wl) {
					cells = append(cells, fmt.Sprintf("%s/%s", tr, wl))
				}
			}
		}
		tag := ""
		if sc.ExpectViolation {
			tag = " [negative control]"
		}
		fmt.Fprintf(out, "%s%s\n    %s\n    cells: %s\n",
			sc.Name, tag, sc.Description, strings.Join(cells, " "))
	}
}

// artifactRun is the JSON shape of one failing run: enough to replay
// (scenario, cell, seed) and diagnose (failure, full history dump).
type artifactRun struct {
	Scenario        string          `json:"scenario"`
	Transport       string          `json:"transport"`
	Workload        string          `json:"workload"`
	Seed            int64           `json:"seed"`
	ExpectViolation bool            `json:"expect_violation"`
	Failure         string          `json:"failure"`
	ElapsedMS       int64           `json:"elapsed_ms"`
	History         []histcheck.Op  `json:"history"`
	ProxyStats      *proxyStatsJSON `json:"proxy_stats,omitempty"`
}

type proxyStatsJSON struct {
	BytesForwarded  uint64 `json:"bytes_forwarded"`
	BytesBlackholed uint64 `json:"bytes_blackholed"`
	ConnsOpened     uint64 `json:"conns_opened"`
	ConnsCut        uint64 `json:"conns_cut"`
}

func writeArtifact(path string, results []*sim.RunResult) error {
	var failing []artifactRun
	for _, res := range results {
		if res.Passed() {
			continue
		}
		ar := artifactRun{
			Scenario:        res.Scenario,
			Transport:       string(res.Transport),
			Workload:        string(res.Workload),
			Seed:            res.Seed,
			ExpectViolation: res.ExpectViolation,
			Failure:         res.Failure(),
			ElapsedMS:       res.Elapsed.Milliseconds(),
			History:         res.Ops,
		}
		if res.ProxyStats != nil {
			ar.ProxyStats = &proxyStatsJSON{
				BytesForwarded:  res.ProxyStats.BytesForwarded,
				BytesBlackholed: res.ProxyStats.BytesBlackholed,
				ConnsOpened:     res.ProxyStats.ConnsOpened,
				ConnsCut:        res.ProxyStats.ConnsCut,
			}
		}
		failing = append(failing, ar)
	}
	data, err := json.MarshalIndent(failing, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
