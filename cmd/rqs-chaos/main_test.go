package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/histcheck"
	"repro/internal/sim"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no -matrix/-scenario should error")
	}
}

func TestRunUnknownSelections(t *testing.T) {
	if err := run([]string{"-scenario", "no-such"}); err == nil {
		t.Error("unknown scenario should error")
	}
	if err := run([]string{"-matrix", "-transport", "carrier-pigeon"}); err == nil {
		t.Error("unknown transport should error")
	}
	if err := run([]string{"-matrix", "-workload", "quantum"}); err == nil {
		t.Error("unknown workload should error")
	}
	// A valid scenario restricted to a cell outside its matrix selects
	// no runs at all.
	if err := run([]string{"-scenario", "wire-blackhole", "-transport", "memory"}); err == nil {
		t.Error("empty cell selection should error")
	}
}

func TestRunSingleScenario(t *testing.T) {
	err := run([]string{
		"-scenario", "byzantine-stale-tag",
		"-transport", "memory", "-workload", "mwmr", "-seed", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPassingRunWritesNoArtifact pins that -artifact stays untouched
// while the matrix is green (CI uploads the file only when it exists).
func TestPassingRunWritesNoArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos-fail.json")
	err := run([]string{
		"-scenario", "byzantine-stale-tag-weak",
		"-transport", "memory", "-workload", "mwmr",
		"-seed", "3", "-artifact", path,
	})
	if err != nil {
		t.Fatalf("negative control should pass: %v", err)
	}
	if _, statErr := os.Stat(path); !errors.Is(statErr, os.ErrNotExist) {
		t.Error("passing matrix should write no artifact")
	}
}

// TestWriteArtifact pins the replay payload of a failing run: scenario
// identity, seed, failure text and the full history dump.
func TestWriteArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos-fail.json")
	failing := &sim.RunResult{
		Scenario:        "byzantine-stale-tag-weak",
		Transport:       sim.MemoryTransport,
		Workload:        sim.MWMRWorkload,
		Seed:            3,
		ExpectViolation: true, // no Violation recorded → the run failed
		Ops: []histcheck.Op{
			{Kind: histcheck.Write, Client: "mwwriter0", TS: 1},
			{Kind: histcheck.Read, Client: "settle0", TS: 0},
		},
	}
	passing := &sim.RunResult{Scenario: "asymmetric-partition"}
	if failing.Passed() || !passing.Passed() {
		t.Fatal("fixture verdicts are wrong")
	}
	if err := writeArtifact(path, []*sim.RunResult{passing, failing}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var runs []artifactRun
	if err := json.Unmarshal(data, &runs); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(runs) != 1 {
		t.Fatalf("artifact has %d runs, want 1 (passing runs excluded)", len(runs))
	}
	if runs[0].Seed != 3 || runs[0].Failure == "" || len(runs[0].History) != 2 {
		t.Errorf("artifact lacks replay info: %+v", runs[0])
	}
}
