// Command rqs-demo runs the RQS atomic storage over real TCP, one process
// per role — the closest thing to the paper's deployment of commodity
// storage servers.
//
// Start the six Example 7 servers, then drive writes and reads:
//
//	rqs-demo -role server -id 0 &
//	... (ids 1..5) ...
//	rqs-demo -role write -value hello
//	rqs-demo -role read
//
// All processes default to localhost ports 7700+id; override with
// -addrs host:port,host:port,... (servers first, then one client slot).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rqs-demo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rqs-demo", flag.ContinueOnError)
	var (
		role    = fs.String("role", "", "server | write | read")
		id      = fs.Int("id", 0, "server id (role=server)")
		value   = fs.String("value", "hello", "value to write (role=write)")
		addrsCS = fs.String("addrs", "", "comma-separated addresses; default localhost:7700+i")
		timeout = fs.Duration("timeout", 50*time.Millisecond, "round timer (2Δ)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	system := core.Example7RQS()
	n := system.N()
	transport.Register(storage.WriteReq{})
	transport.Register(storage.WriteAck{})
	transport.Register(storage.ReadReq{})
	transport.Register(storage.ReadAck{})

	addrs := make(map[core.ProcessID]string, n+1)
	if *addrsCS != "" {
		for i, a := range strings.Split(*addrsCS, ",") {
			addrs[i] = strings.TrimSpace(a)
		}
	} else {
		for i := 0; i <= n; i++ {
			addrs[i] = fmt.Sprintf("127.0.0.1:%d", 7700+i)
		}
	}

	switch *role {
	case "server":
		if *id < 0 || *id >= n {
			return fmt.Errorf("server id must be 0..%d", n-1)
		}
		node, err := transport.NewTCPNode(*id, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		srv := storage.NewServer(node, storage.Hooks{})
		srv.Start()
		defer srv.Stop()
		fmt.Printf("server %d (s%d) listening on %s — ^C to stop\n", *id, *id+1, node.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		return nil

	case "write":
		node, err := transport.NewTCPNode(n, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		// A fresh writer process must resume past the highest timestamp
		// already in the storage (SWMR: timestamps never repeat).
		cur := storage.NewReader(system, node, *timeout).Read()
		w := storage.NewWriter(system, node, *timeout)
		w.SetTimestamp(cur.TS)
		res := w.Write(*value)
		fmt.Printf("wrote %q with timestamp %d in %d round(s)\n", *value, res.TS, res.Rounds)
		return nil

	case "read":
		node, err := transport.NewTCPNode(n, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		r := storage.NewReader(system, node, *timeout)
		res := r.Read()
		val := res.Val
		if val == storage.NoValue {
			val = "⊥"
		}
		fmt.Printf("read %q (timestamp %d) in %d round(s)\n", val, res.TS, res.Rounds)
		return nil
	}
	return fmt.Errorf("unknown -role %q (want server, write or read)", *role)
}
