// Command rqs-demo runs the RQS storage over real TCP, one process per
// role — the closest thing to the paper's deployment of commodity
// storage servers. Each server hosts both registers: the SWMR atomic
// storage of Section 3 and the multi-writer (MWMR) variant.
//
// Start the six Example 7 servers, then drive writes and reads:
//
//	rqs-demo -role server -id 0 &
//	... (ids 1..5) ...
//	rqs-demo -role write -value hello
//	rqs-demo -role read
//
// # Multi-writer demo
//
// The MWMR register accepts concurrent writers: each writer process
// takes its own client slot (-id picks one of the four slots 6..9;
// default 6) and its slot ID becomes the writer ID inside its tags, so
// writes from different slots never collide:
//
//	rqs-demo -role mwmr-write -id 6 -value from-w6 &
//	rqs-demo -role mwmr-write -id 7 -value from-w7 &
//	rqs-demo -role mwmr-read  -id 8
//
// A multi-writer write always uses two round-trips (read phase to
// discover the maximum tag, then the write); an uncontended read
// completes in one.
//
// # Keyed KV demo
//
// The same servers host a full keyspace of per-key MWMR registers (the
// single-register roles above all live at key ""). The kv roles drive
// it with Get/Put/CAS:
//
//	rqs-demo -role kv-put -key user:42 -value alice
//	rqs-demo -role kv-get -key user:42
//	rqs-demo -role kv-cas -key user:42 -expect-ts 1 -expect-writer 6 -value bob
//
// kv-get prints the version (ts, writer) that committed the value;
// kv-cas installs its value only if the key's version still equals
// (-expect-ts, -expect-writer) — at most one concurrent CAS per
// version succeeds. The zero version (0, 0) CASes against an unwritten
// key.
//
// All processes default to localhost ports 7700+id; override with
// -addrs host:port,host:port,... (servers first, then the client
// slots).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
)

// clientSlots is how many client process IDs (above the n servers) the
// default address map reserves, so several concurrent MWMR writers can
// run out of the box.
const clientSlots = 4

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rqs-demo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rqs-demo", flag.ContinueOnError)
	var (
		role    = fs.String("role", "", "server | write | read | mwmr-write | mwmr-read | kv-put | kv-get | kv-cas")
		id      = fs.Int("id", -1, "process id: server id for -role server, client slot otherwise")
		value   = fs.String("value", "hello", "value to write (role=write, mwmr-write, kv-put, kv-cas)")
		key     = fs.String("key", "demo", "key to operate on (kv roles)")
		expTS   = fs.Int64("expect-ts", 0, "expected version timestamp (role=kv-cas)")
		expWr   = fs.Int("expect-writer", 0, "expected version writer id (role=kv-cas)")
		addrsCS = fs.String("addrs", "", "comma-separated addresses; default localhost:7700+i")
		timeout = fs.Duration("timeout", 50*time.Millisecond, "round timer (2Δ); SWMR roles only — mwmr phases are pure quorum waits")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	system := core.Example7RQS()
	n := system.N()
	transport.Register(storage.WriteReq{})
	transport.Register(storage.WriteAck{})
	transport.Register(storage.ReadReq{})
	transport.Register(storage.ReadAck{})
	transport.Register(storage.MWReadReq{})
	transport.Register(storage.MWReadAck{})
	transport.Register(storage.MWWriteReq{})
	transport.Register(storage.MWWriteAck{})
	transport.Register(storage.KVCASReq{})
	transport.Register(storage.KVCASAck{})

	addrs := make(map[core.ProcessID]string, n+clientSlots)
	if *addrsCS != "" {
		for i, a := range strings.Split(*addrsCS, ",") {
			addrs[i] = strings.TrimSpace(a)
		}
	} else {
		for i := 0; i < n+clientSlots; i++ {
			addrs[i] = fmt.Sprintf("127.0.0.1:%d", 7700+i)
		}
	}

	// clientID validates and defaults the -id flag for client roles.
	clientID := func() (core.ProcessID, error) {
		if *id < 0 {
			return n, nil // first client slot
		}
		if *id < n {
			return 0, fmt.Errorf("client slot id must be ≥ %d (ids 0..%d are servers)", n, n-1)
		}
		if _, ok := addrs[*id]; !ok {
			return 0, fmt.Errorf("no address for client slot %d (add it to -addrs)", *id)
		}
		return *id, nil
	}

	switch *role {
	case "server":
		if *id < 0 {
			*id = 0
		}
		if *id >= n {
			return fmt.Errorf("server id must be 0..%d", n-1)
		}
		node, err := transport.NewTCPNode(*id, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		srv := storage.NewServer(node, storage.Hooks{})
		srv.Start()
		defer srv.Stop()
		fmt.Printf("server %d (s%d) listening on %s — ^C to stop\n", *id, *id+1, node.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		return nil

	case "write":
		cid, err := clientID()
		if err != nil {
			return err
		}
		node, err := transport.NewTCPNode(cid, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		// A fresh writer process must resume past the highest timestamp
		// already in the storage (SWMR: timestamps never repeat).
		cur := storage.NewReader(system, node, *timeout).Read()
		w := storage.NewWriter(system, node, *timeout)
		w.SetTimestamp(cur.TS)
		res := w.Write(*value)
		fmt.Printf("wrote %q with timestamp %d in %d round(s)\n", *value, res.TS, res.Rounds)
		return nil

	case "read":
		cid, err := clientID()
		if err != nil {
			return err
		}
		node, err := transport.NewTCPNode(cid, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		r := storage.NewReader(system, node, *timeout)
		res := r.Read()
		val := res.Val
		if val == storage.NoValue {
			val = "⊥"
		}
		fmt.Printf("read %q (timestamp %d) in %d round(s)\n", val, res.TS, res.Rounds)
		return nil

	case "mwmr-write":
		cid, err := clientID()
		if err != nil {
			return err
		}
		node, err := transport.NewTCPNode(cid, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		// No timestamp resume dance: the write's read phase discovers
		// the maximum tag, and the writer ID keeps tags unique.
		w := storage.NewMWWriter(system, node)
		res := w.Write(*value)
		fmt.Printf("mwmr wrote %q with tag (ts=%d, writer=%d) in %d round(s)\n",
			*value, res.Tag.TS, res.Tag.Writer, res.Rounds)
		return nil

	case "mwmr-read":
		cid, err := clientID()
		if err != nil {
			return err
		}
		node, err := transport.NewTCPNode(cid, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		r := storage.NewMWReader(system, node)
		res := r.Read()
		val := res.Val
		if val == storage.NoValue {
			val = "⊥"
		}
		fmt.Printf("mwmr read %q (tag ts=%d, writer=%d) in %d round(s)\n",
			val, res.Tag.TS, res.Tag.Writer, res.Rounds)
		return nil

	case "kv-put", "kv-get", "kv-cas":
		cid, err := clientID()
		if err != nil {
			return err
		}
		node, err := transport.NewTCPNode(cid, addrs)
		if err != nil {
			return err
		}
		defer node.Close()
		kv := storage.NewKVClient([]storage.KVGroup{{System: system, Port: node}})
		switch *role {
		case "kv-put":
			ver, err := kv.Put(*key, *value)
			if err != nil {
				return err
			}
			fmt.Printf("kv put %s=%q at version (ts=%d, writer=%d)\n",
				*key, *value, ver.TS, ver.Writer)
		case "kv-get":
			val, ver, err := kv.Get(*key)
			if err != nil {
				return err
			}
			if val == storage.NoValue {
				val = "⊥"
			}
			fmt.Printf("kv get %s=%q (version ts=%d, writer=%d)\n",
				*key, val, ver.TS, ver.Writer)
		case "kv-cas":
			expect := storage.Version{TS: *expTS, Writer: core.ProcessID(*expWr)}
			res, err := kv.CAS(*key, expect, *value)
			var conflict *storage.ErrCASConflict
			if err != nil && !errors.As(err, &conflict) {
				return err
			}
			if res.OK {
				fmt.Printf("kv cas %s=%q applied at version (ts=%d, writer=%d)\n",
					*key, *value, res.Version.TS, res.Version.Writer)
			} else {
				val := res.Val
				if val == storage.NoValue {
					val = "⊥"
				}
				fmt.Printf("kv cas %s failed: version is now (ts=%d, writer=%d) holding %q\n",
					*key, res.Version.TS, res.Version.Writer, val)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown -role %q (want server, write, read, mwmr-write, mwmr-read, kv-put, kv-get or kv-cas)", *role)
}
