package main

import (
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestWriteThenReadAcrossClientRestart is the ROADMAP hang reproducer
// as an automated test: a writer client completes a write over real
// TCP, its process exits, and a fresh reader client starts in the same
// slot (same process ID, same address). With the seed transport the
// servers' cached connections to the dead writer swallowed the first
// ack batch and the read hung forever; with the reliable links it must
// terminate, return the written value, and lose no messages.
func TestWriteThenReadAcrossClientRestart(t *testing.T) {
	system := core.Example7RQS()
	n := system.N()
	transport.Register(storage.WriteReq{})
	transport.Register(storage.WriteAck{})
	transport.Register(storage.ReadReq{})
	transport.Register(storage.ReadAck{})

	// Bind the servers on ephemeral ports, publishing real addresses as
	// they come up; links dial lazily, after the map is complete.
	addrs := make(map[core.ProcessID]string, n+1)
	for i := 0; i <= n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	nodes := make([]*transport.TCPNode, n)
	for i := 0; i < n; i++ {
		node, err := transport.NewTCPNode(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	// The client slot needs a FIXED address so the restarted client is
	// reachable where the servers' stale connections pointed.
	clientAddr := reserveAddr(t)
	addrs[n] = clientAddr

	servers := make([]*storage.Server, n)
	for i := 0; i < n; i++ {
		servers[i] = storage.NewServer(nodes[i], storage.Hooks{})
		servers[i].Start()
		defer servers[i].Stop()
	}

	const timeout = 50 * time.Millisecond
	done := make(chan string, 1)
	go func() {
		// Writer client process: read (timestamp resume), write, exit.
		writerNode, err := transport.NewTCPNode(n, addrs)
		if err != nil {
			t.Error(err)
			done <- ""
			return
		}
		cur := storage.NewReader(system, writerNode, timeout).Read()
		w := storage.NewWriter(system, writerNode, timeout)
		w.SetTimestamp(cur.TS)
		w.Write("hello-restart")
		writerNode.Close() // the writer process exits

		// Fresh reader client process in the same slot: this is the
		// read that used to hang forever.
		readerNode, err := transport.NewTCPNode(n, addrs)
		if err != nil {
			t.Error(err)
			done <- ""
			return
		}
		defer readerNode.Close()
		res := storage.NewReader(system, readerNode, timeout).Read()
		done <- res.Val
	}()

	select {
	case val := <-done:
		if val != "hello-restart" {
			t.Fatalf("read %q after client restart, want %q", val, "hello-restart")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("read after client restart hung — the ROADMAP liveness bug is back")
	}

	// No message loss anywhere: reliable links may redial and
	// retransmit, but nothing is dropped.
	for i, node := range nodes {
		if s := node.Stats(); s.Drops != 0 {
			t.Errorf("server %d dropped %d messages (stats %+v)", i, s.Drops, s)
		}
	}
}

// TestMWMRWriteReadRoles drives the demo's multi-writer roles end to
// end: two mwmr-write client processes on distinct slots against
// in-test TCP servers, then an independent reader verifying the last
// write won with a writer-tagged value.
func TestMWMRWriteReadRoles(t *testing.T) {
	system := core.Example7RQS()
	n := system.N()
	transport.Register(storage.MWReadReq{})
	transport.Register(storage.MWReadAck{})
	transport.Register(storage.MWWriteReq{})
	transport.Register(storage.MWWriteAck{})

	addrs := make(map[core.ProcessID]string, n+3)
	for i := 0; i < n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	for i := 0; i < 3; i++ {
		addrs[n+i] = reserveAddr(t)
	}
	for i := 0; i < n; i++ {
		node, err := transport.NewTCPNode(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		addrs[i] = node.Addr()
		srv := storage.NewServer(node, storage.Hooks{})
		srv.Start()
		defer srv.Stop()
	}
	csv := make([]string, n+3)
	for i := range csv {
		csv[i] = addrs[i]
	}
	addrsFlag := strings.Join(csv, ",")

	for slot, val := range map[int]string{n: "from-w6", n + 1: "from-w7"} {
		if err := run([]string{"-role", "mwmr-write", "-id", strconv.Itoa(slot),
			"-value", val, "-addrs", addrsFlag}); err != nil {
			t.Fatalf("mwmr-write on slot %d: %v", slot, err)
		}
	}
	if err := run([]string{"-role", "mwmr-read", "-id", strconv.Itoa(n + 2), "-addrs", addrsFlag}); err != nil {
		t.Fatalf("mwmr-read: %v", err)
	}

	// An independent reader client sees the second write (tag ts=2).
	node, err := transport.NewTCPNode(n+2, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	res := storage.NewMWReader(system, node).Read()
	if res.Tag.TS != 2 {
		t.Fatalf("final tag = %+v, want ts 2 (two writes)", res.Tag)
	}
	if res.Val != "from-w6" && res.Val != "from-w7" {
		t.Fatalf("final value = %q, want one of the two writes", res.Val)
	}
}

// TestKVRoles drives the demo's keyed roles end to end over real TCP:
// kv-put, kv-get, a kv-cas against the put's version (must apply), and
// a kv-cas against the now-stale version (must fail cleanly).
func TestKVRoles(t *testing.T) {
	system := core.Example7RQS()
	n := system.N()
	transport.Register(storage.MWReadReq{})
	transport.Register(storage.MWReadAck{})
	transport.Register(storage.MWWriteReq{})
	transport.Register(storage.MWWriteAck{})
	transport.Register(storage.KVCASReq{})
	transport.Register(storage.KVCASAck{})

	addrs := make(map[core.ProcessID]string, n+2)
	for i := 0; i < n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	for i := 0; i < 2; i++ {
		addrs[n+i] = reserveAddr(t)
	}
	for i := 0; i < n; i++ {
		node, err := transport.NewTCPNode(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		addrs[i] = node.Addr()
		srv := storage.NewServer(node, storage.Hooks{})
		srv.Start()
		defer srv.Stop()
	}
	csv := make([]string, n+2)
	for i := range csv {
		csv[i] = addrs[i]
	}
	addrsFlag := strings.Join(csv, ",")

	for _, roleArgs := range [][]string{
		{"-role", "kv-put", "-key", "user:42", "-value", "alice"},
		{"-role", "kv-get", "-key", "user:42"},
		// The put above committed version (ts=1, writer=n): this CAS
		// must apply...
		{"-role", "kv-cas", "-key", "user:42", "-value", "bob",
			"-expect-ts", "1", "-expect-writer", strconv.Itoa(n)},
		// ...and re-CASing the now-stale version must fail cleanly
		// (run() still returns nil — failure is a result, not an error).
		{"-role", "kv-cas", "-key", "user:42", "-value", "carol",
			"-expect-ts", "1", "-expect-writer", strconv.Itoa(n)},
	} {
		args := append(roleArgs, "-id", strconv.Itoa(n), "-addrs", addrsFlag)
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", roleArgs, err)
		}
	}

	// An independent client on the second slot: the winning CAS value
	// is committed at version (ts=2, writer=n).
	node, err := transport.NewTCPNode(n+1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	kv := storage.NewKVClient([]storage.KVGroup{{System: system, Port: node}})
	val, ver, err := kv.Get("user:42")
	if err != nil {
		t.Fatal(err)
	}
	if val != "bob" || ver.TS != 2 || ver.Writer != n {
		t.Fatalf("kv get user:42 = (%q, %+v), want (%q, ts=2 writer=%d)", val, ver, "bob", n)
	}
}

// TestKVClientRestartNoStaleAcks pins the cross-incarnation stale-ack
// fix: a KV client process exits right after its ops (leaving acks the
// servers' reliable links will retransmit to its slot), and a FRESH
// client process on the same slot reads a different, never-written
// key. With sequence numbers restarting at 1 each incarnation, the
// retransmitted key-less acks of the dead client matched the new
// read's Seq and returned the OLD key's value; the random per-
// incarnation seq start makes the new read see ⊥.
func TestKVClientRestartNoStaleAcks(t *testing.T) {
	system := core.Example7RQS()
	n := system.N()
	transport.Register(storage.MWReadReq{})
	transport.Register(storage.MWReadAck{})
	transport.Register(storage.MWWriteReq{})
	transport.Register(storage.MWWriteAck{})
	transport.Register(storage.KVCASReq{})
	transport.Register(storage.KVCASAck{})

	addrs := make(map[core.ProcessID]string, n+1)
	for i := 0; i < n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	addrs[n] = reserveAddr(t) // the slot both incarnations share
	for i := 0; i < n; i++ {
		node, err := transport.NewTCPNode(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		addrs[i] = node.Addr()
		srv := storage.NewServer(node, storage.Hooks{})
		srv.Start()
		defer srv.Stop()
	}

	// Incarnation 1: put + get, then the process dies (Close) without
	// draining — its unconsumed acks stay queued for retransmission.
	node1, err := transport.NewTCPNode(n, addrs)
	if err != nil {
		t.Fatal(err)
	}
	kv1 := storage.NewKVClient([]storage.KVGroup{{System: system, Port: node1}})
	if _, err := kv1.Put("user:42", "alice"); err != nil {
		node1.Close()
		t.Fatal(err)
	}
	if _, _, err := kv1.Get("user:42"); err != nil {
		node1.Close()
		t.Fatal(err)
	}
	node1.Close()

	// Incarnation 2, same slot: a different key must read as unwritten
	// even while the dead incarnation's acks are being redelivered.
	node2, err := transport.NewTCPNode(n, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	kv2 := storage.NewKVClient([]storage.KVGroup{{System: system, Port: node2}})
	val, ver, err := kv2.Get("other")
	if err != nil {
		t.Fatal(err)
	}
	if val != storage.NoValue || !ver.IsZero() {
		t.Fatalf("unwritten key after client restart = (%q, %+v), want (⊥, zero version)", val, ver)
	}
	// The original key is unaffected.
	val, _, err = kv2.Get("user:42")
	if err != nil {
		t.Fatal(err)
	}
	if val != "alice" {
		t.Fatalf("user:42 after client restart = %q, want %q", val, "alice")
	}
}

// reserveAddr grabs a free loopback port and releases it for the
// client nodes to bind. Listeners use SO_REUSEADDR, so the immediate
// rebind (twice, by the two client incarnations) is safe.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}
