// Command rqs-verify checks a refined quorum system against the three
// properties of Definition 2 and classifies its quorums.
//
// Specs come either from a JSON file:
//
//	{
//	  "n": 6,
//	  "adversary": [[0,1],[2,3],[1,3]],
//	  "quorums":  [[1,3,4,5],[0,1,2,3,4],[0,1,2,3,5]],
//	  "class2":   [1,2],
//	  "class1":   [0]
//	}
//
// or from threshold parameters:
//
//	rqs-verify -threshold -n 8 -t 3 -r 2 -q 1 -k 1
//	rqs-verify spec.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

type spec struct {
	N         int     `json:"n"`
	Adversary [][]int `json:"adversary"`
	Quorums   [][]int `json:"quorums"`
	Class2    []int   `json:"class2"`
	Class1    []int   `json:"class1"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rqs-verify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rqs-verify", flag.ContinueOnError)
	var (
		threshold = fs.Bool("threshold", false, "verify a threshold family instead of a JSON spec")
		n         = fs.Int("n", 0, "number of processes (threshold mode)")
		t         = fs.Int("t", 0, "class-3 quorums miss at most t processes")
		r         = fs.Int("r", 0, "class-2 quorums miss at most r processes")
		q         = fs.Int("q", 0, "class-1 quorums miss at most q processes")
		k         = fs.Int("k", 0, "adversary threshold")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *threshold {
		return verifyThreshold(core.ThresholdParams{N: *n, T: *t, R: *r, Q: *q, K: *k})
	}
	if fs.NArg() != 1 {
		return errors.New("usage: rqs-verify [-threshold -n N -t T -r R -q Q -k K] | rqs-verify spec.json")
	}
	return verifyFile(fs.Arg(0))
}

func verifyThreshold(p core.ThresholdParams) error {
	fmt.Printf("threshold family n=%d t=%d r=%d q=%d k=%d\n", p.N, p.T, p.R, p.Q, p.K)
	fmt.Printf("closed-form minimal n for (t,r,q,k): %d\n", core.MinimalN(p.T, p.R, p.Q, p.K))
	if err := p.Validate(); err != nil {
		fmt.Println("closed form: INVALID —", err)
		return nil
	}
	fmt.Println("closed form: valid")
	rqs, err := core.NewThresholdRQS(p)
	if err != nil {
		return err
	}
	return report(rqs)
}

func verifyFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	var maximal []core.Set
	for _, m := range s.Adversary {
		maximal = append(maximal, core.NewSet(m...))
	}
	var quorums []core.Set
	for _, qs := range s.Quorums {
		quorums = append(quorums, core.NewSet(qs...))
	}
	rqs, err := core.New(core.Config{
		Universe:  core.FullSet(s.N),
		Adversary: core.NewStructured(maximal...),
		Quorums:   quorums,
		Class2:    s.Class2,
		Class1:    s.Class1,
	})
	if err != nil {
		return err
	}
	return report(rqs)
}

func report(rqs *core.RQS) error {
	fmt.Println("system:", rqs)
	if err := rqs.Verify(); err != nil {
		fmt.Println("verification: FAILED —", err)
		if w, ok := core.FindP3Violation(
			rqs.QuorumsOfClass(core.Class1),
			rqs.QuorumsOfClass(core.Class2),
			rqs.Quorums(), rqs.Adversary()); ok {
			fmt.Printf("P3 witness: Q2=%v Q=%v B=%v (B2=%v B1=%v B0=%v)\n",
				w.Q2, w.Q, w.B, w.B2, w.B1, w.B0)
		}
		return nil
	}
	fmt.Println("verification: OK — Properties 1-3 hold")
	for _, quorum := range rqs.Quorums() {
		cls, _ := rqs.ClassOfListed(quorum)
		fmt.Printf("  %-24v size=%d  %v\n", quorum, quorum.Count(), cls)
	}
	return nil
}
