package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunThresholdValid(t *testing.T) {
	if err := run([]string{"-threshold", "-n", "8", "-t", "3", "-r", "2", "-q", "1", "-k", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunThresholdInvalidStillReports(t *testing.T) {
	// Closed-form rejection is a report, not an error.
	if err := run([]string{"-threshold", "-n", "5", "-t", "2", "-r", "2", "-q", "2", "-k", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	spec := `{
		"n": 6,
		"adversary": [[0,1],[2,3],[1,3]],
		"quorums": [[1,3,4,5],[0,1,2,3,4],[0,1,2,3,5]],
		"class2": [1,2],
		"class1": [0]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONSpecViolation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.json")
	// Example7Broken: s2 dropped from the class-1 quorum.
	spec := `{
		"n": 6,
		"adversary": [[0,1],[2,3],[1,3]],
		"quorums": [[3,4,5],[0,1,2,3,4],[0,1,2,3,5]],
		"class2": [1,2],
		"class1": [0]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err != nil {
		t.Fatal(err) // violations are reported, not returned
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing args should error")
	}
	if err := run([]string{"/nonexistent/spec.json"}); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("bad JSON should error")
	}
}
