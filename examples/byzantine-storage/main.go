// Byzantine storage: the Figure 4 scenario as a running program. Six
// servers under the Example 7 general adversary implement the atomic
// SWMR storage; server s1 turns Byzantine and forges its replies, a
// server crashes, and reads stay both correct and fast-ish.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	rqs "repro"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system := rqs.Example7RQS()
	if err := system.Verify(); err != nil {
		return err
	}

	// s1 (ID 0) turns Byzantine on demand: it fabricates a history
	// claiming an enormous timestamp with a bogus value.
	var evil atomic.Bool
	forged := storage.History{
		1 << 20: {0: storage.Slot{Pair: storage.Pair{TS: 1 << 20, Val: "forged!"}}},
	}
	var cluster *rqs.StorageCluster
	hooks := map[rqs.ProcessID]rqs.ServerHooks{
		0: {ForgeHistory: func() storage.History {
			if evil.Load() {
				return forged.Clone()
			}
			return cluster.Servers[0].HistorySnapshot()
		}},
	}
	cluster = rqs.NewStorage(system, rqs.StorageOptions{
		Timeout: 3 * time.Millisecond,
		Clients: 2,
		Hooks:   hooks,
	})
	defer cluster.Stop()
	w, r := cluster.Writer(), cluster.Reader()

	// Honest phase: single-round operations through the class-1 quorum.
	res := w.Write("block-42")
	fmt.Printf("write while all honest: %d round(s)\n", res.Rounds)

	// s1 turns Byzantine. The reader's safe() predicate demands a basic
	// subset of witnesses for every candidate, so one liar — however
	// loud — cannot fabricate a value.
	evil.Store(true)
	got := r.Read()
	fmt.Printf("read with s1 Byzantine: %q (ts=%d) in %d round(s)\n", got.Val, got.TS, got.Rounds)
	if got.Val != "block-42" {
		return fmt.Errorf("fabricated value leaked: %q", got.Val)
	}

	// Now also crash s6: the class-1 quorum is gone, the class-2 quorum
	// Q2 = {s1..s5} still responds, and operations degrade gracefully.
	cluster.CrashServers(rqs.NewSet(5))
	res = w.Write("block-43")
	got = r.Read()
	fmt.Printf("after s6 crash: write %d round(s), read %q in %d round(s)\n",
		res.Rounds, got.Val, got.Rounds)
	if got.Val != "block-43" {
		return fmt.Errorf("lost the write under degradation: %q", got.Val)
	}
	fmt.Println("atomicity held under a Byzantine server plus a crash — as Section 3 promises")
	return nil
}
