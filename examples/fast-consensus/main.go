// Fast consensus: a replicated command log in the state-machine
// replication style of Section 4, using the pipelined smr layer — each
// log slot is one single-shot RQS consensus instance, and every slot
// shares one consensus deployment (one key generation, one cluster).
// With the class-1 quorum alive, commands commit in two message
// delays — half of what a PBFT-style protocol needs.
package main

import (
	"fmt"
	"log"
	"time"

	rqs "repro"
	"repro/internal/consensus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system := rqs.Example7RQS()
	if err := system.Verify(); err != nil {
		return err
	}

	// One shared deployment for every slot this program will decide:
	// acceptor replicas on the six servers, a proposer host, a log host.
	cluster, err := rqs.NewSMR(system, rqs.SMROptions{})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Commit a batch of commands; Append allocates the slots.
	commands := []consensus.Value{"set x=1", "incr x", "del y", "set z=9"}
	start := time.Now()
	for _, cmd := range commands {
		cluster.Append(cmd)
	}
	for slot := range commands {
		v, ok := cluster.Wait(slot, 10*time.Second)
		if !ok {
			return fmt.Errorf("slot %d did not commit", slot)
		}
		fmt.Printf("slot %d: %-10q committed\n", slot, v)
	}
	fmt.Printf("replicated log %v in %v (all slots on the 2-delay fast path)\n",
		cluster.Log.Prefix(), time.Since(start).Round(time.Millisecond))

	// Crash an acceptor mid-run: later slots ride the class-2 path on
	// the same deployment — no new cluster, no new keys.
	cluster.CrashAcceptors(rqs.NewSet(5)) // s6 down; Q2 = {s1..s5} remains
	slot, v, ok := cluster.Decide("after-crash", 10*time.Second)
	if !ok {
		return fmt.Errorf("post-crash slot did not commit")
	}
	fmt.Printf("slot %d: %q committed after s6 crashed (class-2 path)\n", slot, v)
	return nil
}
