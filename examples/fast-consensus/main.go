// Fast consensus: a replicated command log in the state-machine
// replication style of Section 4, using the smr layer — each log slot is
// one single-shot RQS consensus instance, all slots multiplexed over one
// network. With the class-1 quorum alive, commands commit in two message
// delays — half of what a PBFT-style protocol needs.
package main

import (
	"fmt"
	"log"
	"time"

	rqs "repro"
	"repro/internal/consensus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system := rqs.Example7RQS()
	if err := system.Verify(); err != nil {
		return err
	}
	nA := system.N()
	topo := consensus.Topology{
		Acceptors: system.Universe(),
		Proposers: []rqs.ProcessID{nA},
		Learners:  rqs.NewSet(nA + 1),
	}
	ring, signers, err := consensus.GenKeys(system.Universe())
	if err != nil {
		return err
	}

	net := rqs.NewNetwork(nA + 2)
	var replicas []*rqs.LogReplica
	for _, id := range system.Universe().Members() {
		replicas = append(replicas, rqs.NewLogReplica(
			system, topo, net.Port(id), ring, signers[id], rqs.ElectionConfig{}))
	}
	proposer := rqs.NewLogProposer(system, topo, net.Port(nA), ring)
	commitLog := rqs.NewLog(system, topo, net.Port(nA+1), 25*time.Millisecond)
	defer func() {
		net.Close()
		for _, r := range replicas {
			r.Stop()
		}
		proposer.Stop()
		commitLog.Stop()
	}()

	// Commit a batch of commands, one slot each.
	commands := []consensus.Value{"set x=1", "incr x", "del y", "set z=9"}
	start := time.Now()
	for slot, cmd := range commands {
		proposer.Propose(slot, cmd)
	}
	for slot := range commands {
		v, ok := commitLog.Wait(slot, 10*time.Second)
		if !ok {
			return fmt.Errorf("slot %d did not commit", slot)
		}
		fmt.Printf("slot %d: %-10q committed\n", slot, v)
	}
	fmt.Printf("replicated log %v in %v (all slots on the 2-delay fast path)\n",
		commitLog.Prefix(), time.Since(start).Round(time.Millisecond))

	// Crash an acceptor mid-run: later slots ride the class-2 path.
	net.Crash(5) // s6 down; Q2 = {s1..s5} remains correct
	proposer.Propose(len(commands), "after-crash")
	v, ok := commitLog.Wait(len(commands), 10*time.Second)
	if !ok {
		return fmt.Errorf("post-crash slot did not commit")
	}
	fmt.Printf("slot %d: %q committed after s6 crashed (class-2 path)\n", len(commands), v)
	return nil
}
