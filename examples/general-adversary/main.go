// General adversary structures: this example walks through the paper's
// Example 1 (Figure 3) and Example 7, where failures are correlated
// rather than independent — some sets of servers may fail together, and
// thresholds cannot describe that.
//
// It verifies both systems, classifies their quorums, then breaks
// Property 3 on purpose and shows the violation witness the library
// extracts (the (Q2, Q, B) triple the lower-bound proofs build on).
package main

import (
	"fmt"

	rqs "repro"
	"repro/internal/core"
)

func main() {
	// Example 1 / Figure 3: eight servers, at most one Byzantine (B_1),
	// four quorums. Class is decided by intersections, not by size: the
	// class-1 quorum has 5 elements while a plain quorum has 6.
	fig3 := rqs.Fig3RQS()
	fmt.Println("Figure 3 system:", fig3)
	must(fig3.Verify())
	for _, q := range fig3.Quorums() {
		cls, _ := fig3.ClassOfListed(q)
		fmt.Printf("  %-16v size=%d  %v\n", q, q.Count(), cls)
	}

	// Example 7: six servers with a genuinely non-threshold adversary —
	// the maximal colluding sets are {s1,s2}, {s3,s4} and {s2,s4}.
	// Note {s1,s3} may NOT fail together: no threshold captures that.
	ex7 := rqs.Example7RQS()
	fmt.Println("\nExample 7 system:", ex7)
	must(ex7.Verify())

	adv := ex7.Adversary()
	fmt.Println("  {s1,s3} can collude?", adv.Contains(rqs.NewSet(0, 2)))
	fmt.Println("  {s2,s4} can collude?", adv.Contains(rqs.NewSet(1, 3)))
	fmt.Println("  {s5} basic (never all-Byzantine)?", rqs.IsBasic(rqs.NewSet(4), adv))

	// Property 3 mechanics (the subtle part of Definition 2): for
	// Q2 ∩ Q2' = {s1..s4}, removing B = {s1,s2} leaves {s3,s4} ∈ B — so
	// P3a fails and P3b must carry the day through server s2.
	q2 := rqs.NewSet(0, 1, 2, 3, 4)
	q2p := rqs.NewSet(0, 1, 2, 3, 5)
	b12 := rqs.NewSet(0, 1)
	fmt.Println("\nProperty 3 on (Q2, Q2', B12):")
	fmt.Println("  P3a holds?", ex7.P3a(q2, q2p, b12))
	fmt.Println("  P3b holds?", ex7.P3b(q2, q2p, b12))

	// Now break it: drop s2 from the class-1 quorum. Properties 1 and 2
	// survive, but Property 3 loses its witness — and the library can
	// point at the exact counterexample the Theorem 3/6 proofs use.
	broken := core.Example7Broken()
	fmt.Println("\nbroken system:", broken)
	fmt.Println("  Verify:", broken.Verify())
	if w, ok := core.FindP3Violation(
		broken.QuorumsOfClass(rqs.Class1),
		broken.QuorumsOfClass(rqs.Class2),
		broken.Quorums(), broken.Adversary()); ok {
		fmt.Printf("  witness: Q2=%v Q=%v B=%v → B2=%v B1=%v B0=%v\n",
			w.Q2, w.Q, w.B, w.B2, w.B1, w.B0)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
