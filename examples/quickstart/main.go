// Quickstart: build the paper's five-server crash system (Section 1.2),
// run the RQS atomic storage on it, and watch operations complete in one
// round while four or more servers respond — then degrade gracefully.
package main

import (
	"fmt"
	"log"
	"time"

	rqs "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The refined quorum system of §1.2: n=5 servers, t=2 crash
	// failures; 3-subsets are ordinary quorums, 4-subsets are class-1
	// (fast) quorums. Verify the three properties of Definition 2.
	system := rqs.FiveServerRQS()
	if err := system.Verify(); err != nil {
		return err
	}
	fmt.Println("system:", system)

	cluster := rqs.NewStorage(system, rqs.StorageOptions{Timeout: 3 * time.Millisecond})
	defer cluster.Stop()
	w, r := cluster.Writer(), cluster.Reader()

	// Best case: all five servers up — single-round write and read.
	res := w.Write("hello, refined quorums")
	fmt.Printf("write #1: %d round(s)\n", res.Rounds)
	got := r.Read()
	fmt.Printf("read  #1: %q in %d round(s)\n", got.Val, got.Rounds)

	// Crash two servers: only ordinary (class-3) quorums remain, and
	// operations degrade gracefully instead of failing.
	cluster.CrashServers(rqs.NewSet(3, 4))
	res = w.Write("still here")
	fmt.Printf("write #2 (2 servers down): %d round(s)\n", res.Rounds)
	got = r.Read()
	fmt.Printf("read  #2 (2 servers down): %q in %d round(s)\n", got.Val, got.Rounds)

	// The analysis package quantifies the trade-off.
	for _, p := range []float64{0.01, 0.1, 0.3} {
		exp, live := rqs.ExpectedRounds(system, p)
		fmt.Printf("crash prob %.2f: expected %.2f rounds, live with prob %.4f\n", p, exp, live)
	}
	return nil
}
