// Package abd implements the crash-tolerant baselines of Section 1.2:
//
//   - the classic ABD majority atomic storage [4] (1-round writes,
//     2-round reads, always),
//   - the paper's "variation of [4]" that keeps two copies per server
//     (pw and w) and expedites both reads and writes to a single round
//     when n-t+1 = 4 of 5 servers respond (the FiveServerRQS in core),
//   - the deliberately *greedy* variant that expedites operations as soon
//     as any n-t = 3 servers respond — the algorithm Figure 1 proves
//     non-atomic. The E1 experiment replays ex1–ex4 against it.
//
// All three are instances of one parameterised client, so the experiments
// compare algorithms rather than implementations.
package abd

import (
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// Pair is a timestamp/value pair; the zero value is 〈0,⊥〉.
type Pair struct {
	TS  int64
	Val string
}

// ReadMode selects the read-side fast path.
type ReadMode int

// Read modes.
const (
	// ReadTwoRound always writes back: the classic ABD read.
	ReadTwoRound ReadMode = iota + 1
	// ReadConfirmed returns after round 1 only when cmax is confirmed by
	// a quorum of pw copies or by any w copy (the safe §1.2 variant).
	ReadConfirmed
	// ReadGreedy returns cmax right after round 1, unconditionally
	// (the broken algorithm of Figure 1).
	ReadGreedy
)

// Params fixes an algorithm in the family.
type Params struct {
	N           int           // number of servers (process IDs 0..N-1)
	Quorum      int           // ordinary quorum size, n-t
	WriteFastAt int           // acks required for a 1-round write; ≤ Quorum means "always 1 round"
	Read        ReadMode      // read-side behaviour
	Timeout     time.Duration // the 2Δ round timer
}

// Classic returns the parameters of plain ABD over n servers.
func Classic(n int, timeout time.Duration) Params {
	q := n/2 + 1
	return Params{N: n, Quorum: q, WriteFastAt: q, Read: ReadTwoRound, Timeout: timeout}
}

// FastFive returns the safe §1.2 variant: 5 servers, t = 2, 1-round
// operations when 4 servers respond.
func FastFive(timeout time.Duration) Params {
	return Params{N: 5, Quorum: 3, WriteFastAt: 4, Read: ReadConfirmed, Timeout: timeout}
}

// GreedyFive returns the broken variant of Figure 1: 5 servers, t = 2,
// operations expedited as soon as 3 servers respond.
func GreedyFive(timeout time.Duration) Params {
	return Params{N: 5, Quorum: 3, WriteFastAt: 3, Read: ReadGreedy, Timeout: timeout}
}

// Messages.

// Field selects which server variable a write targets.
type Field int

// Server variables (the pw and w of Section 1.2).
const (
	FieldPW Field = iota + 1
	FieldW
)

// WriteReq writes 〈ts, val〉 into a server field.
type WriteReq struct {
	TS    int64
	Val   string
	Field Field
}

// WriteAck acknowledges a WriteReq.
type WriteAck struct {
	TS    int64
	Field Field
}

// ReadReq queries both fields.
type ReadReq struct{ No int64 }

// ReadAck returns the server's pw and w copies.
type ReadAck struct {
	No int64
	PW Pair
	W  Pair
}

// Server is a crash-model storage server holding the pw and w variables.
type Server struct {
	port transport.Port
	pw   Pair
	w    Pair
	stop chan struct{}
	done chan struct{}
}

// NewServer creates a server on the port.
func NewServer(port transport.Port) *Server {
	return &Server{port: port, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the server loop.
func (s *Server) Start() { go s.run() }

// Stop terminates the server loop and waits for exit.
func (s *Server) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

func (s *Server) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case env, ok := <-s.port.Inbox():
			if !ok {
				return
			}
			switch req := env.Payload.(type) {
			case WriteReq:
				s.apply(req)
				s.port.Send(env.From, WriteAck{TS: req.TS, Field: req.Field})
			case ReadReq:
				s.port.Send(env.From, ReadAck{No: req.No, PW: s.pw, W: s.w})
			}
		}
	}
}

func (s *Server) apply(req WriteReq) {
	p := Pair{TS: req.TS, Val: req.Val}
	switch req.Field {
	case FieldPW:
		if p.TS > s.pw.TS {
			s.pw = p
		}
	case FieldW:
		if p.TS > s.w.TS {
			s.w = p
		}
	}
}

// Result reports an operation's outcome.
type Result struct {
	Val    string
	TS     int64
	Rounds int
}

// Writer is the single writer.
type Writer struct {
	p    Params
	port transport.Port
	ts   int64
}

// NewWriter creates the writer for the given parameters.
func NewWriter(p Params, port transport.Port) *Writer {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Millisecond
	}
	return &Writer{p: p, port: port}
}

// Write stores v: one round into pw if WriteFastAt servers ack within the
// timer, otherwise a second round into w completed at a quorum of acks.
func (w *Writer) Write(v string) Result {
	w.ts++
	drain(w.port)
	all := core.FullSet(w.p.N)

	transport.Broadcast(w.port, all, WriteReq{TS: w.ts, Val: v, Field: FieldPW})
	needTimer := w.p.WriteFastAt > w.p.Quorum
	acked := collectWriteAcks(w.port, w.ts, FieldPW, w.p.Quorum, w.p.WriteFastAt, needTimer, w.p.Timeout)
	if acked.Count() >= w.p.WriteFastAt {
		return Result{Val: v, TS: w.ts, Rounds: 1}
	}

	transport.Broadcast(w.port, all, WriteReq{TS: w.ts, Val: v, Field: FieldW})
	collectWriteAcks(w.port, w.ts, FieldW, w.p.Quorum, w.p.Quorum, false, w.p.Timeout)
	return Result{Val: v, TS: w.ts, Rounds: 2}
}

// Reader is a reader client.
type Reader struct {
	p    Params
	port transport.Port
	no   int64
}

// NewReader creates a reader for the given parameters.
func NewReader(p Params, port transport.Port) *Reader {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Millisecond
	}
	return &Reader{p: p, port: port}
}

// Read returns the storage's value under the configured read mode.
func (r *Reader) Read() Result {
	r.no++
	drain(r.port)
	all := core.FullSet(r.p.N)
	transport.Broadcast(r.port, all, ReadReq{No: r.no})

	// Round 1: gather pw/w copies from at least a quorum (plus the 2Δ
	// timer when the fast path needs the fullest possible picture).
	acks := make(map[core.ProcessID]ReadAck, r.p.N)
	timer := time.NewTimer(r.p.Timeout)
	defer timer.Stop()
	timerDone := r.p.Read == ReadGreedy || r.p.Read == ReadTwoRound
	for {
		if timerDone && len(acks) >= r.p.Quorum {
			break
		}
		select {
		case env, ok := <-r.port.Inbox():
			if !ok {
				break
			}
			if ack, isAck := env.Payload.(ReadAck); isAck && ack.No == r.no {
				acks[env.From] = ack
			}
			continue
		case <-timer.C:
			timerDone = true
			continue
		}
		break
	}

	var cmax Pair
	pwCount := 0
	inW := false
	for _, a := range acks {
		if a.PW.TS > cmax.TS {
			cmax = a.PW
		}
		if a.W.TS > cmax.TS {
			cmax = a.W
		}
	}
	for _, a := range acks {
		if a.PW == cmax {
			pwCount++
		}
		if a.W == cmax {
			inW = true
		}
	}

	switch r.p.Read {
	case ReadGreedy:
		return Result{Val: cmax.Val, TS: cmax.TS, Rounds: 1}
	case ReadConfirmed:
		if cmax.TS == 0 || pwCount >= r.p.Quorum || inW {
			return Result{Val: cmax.Val, TS: cmax.TS, Rounds: 1}
		}
	}

	// Round 2: write back cmax into pw and wait for a quorum.
	transport.Broadcast(r.port, all, WriteReq{TS: cmax.TS, Val: cmax.Val, Field: FieldPW})
	collectWriteAcks(r.port, cmax.TS, FieldPW, r.p.Quorum, r.p.Quorum, false, r.p.Timeout)
	return Result{Val: cmax.Val, TS: cmax.TS, Rounds: 2}
}

// collectWriteAcks gathers WriteAcks matching (ts, field) until at least
// `need` arrive or — with the timer — until the timer fires with at least
// `quorum` collected.
func collectWriteAcks(port transport.Port, ts int64, f Field, quorum, need int, withTimer bool, timeout time.Duration) core.Set {
	var acked core.Set
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	timerDone := !withTimer
	for {
		if acked.Count() >= need {
			return acked
		}
		if timerDone && acked.Count() >= quorum {
			return acked
		}
		select {
		case env, ok := <-port.Inbox():
			if !ok {
				return acked
			}
			if ack, isAck := env.Payload.(WriteAck); isAck && ack.TS == ts && ack.Field == f {
				acked = acked.Add(env.From)
			}
		case <-timer.C:
			timerDone = true
		}
	}
}

func drain(port transport.Port) {
	for {
		select {
		case _, ok := <-port.Inbox():
			if !ok {
				return
			}
		default:
			return
		}
	}
}
