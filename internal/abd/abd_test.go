package abd

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

func startCluster(t *testing.T, n, clients int) (*transport.Network, func()) {
	t.Helper()
	net := transport.NewNetwork(n + clients)
	var servers []*Server
	for i := 0; i < n; i++ {
		s := NewServer(net.Port(i))
		s.Start()
		servers = append(servers, s)
	}
	return net, func() {
		net.Close()
		for _, s := range servers {
			s.Stop()
		}
	}
}

func TestClassicRoundTrip(t *testing.T) {
	p := Classic(5, 2*time.Millisecond)
	net, stop := startCluster(t, 5, 2)
	defer stop()
	w := NewWriter(p, net.Port(5))
	r := NewReader(p, net.Port(6))

	if res := r.Read(); res.TS != 0 || res.Val != "" {
		t.Errorf("empty read = %+v", res)
	}
	wres := w.Write("a")
	if wres.Rounds != 1 || wres.TS != 1 {
		t.Errorf("classic write = %+v, want 1 round", wres)
	}
	rres := r.Read()
	if rres.Val != "a" || rres.Rounds != 2 {
		t.Errorf("classic read = %+v, want a in 2 rounds", rres)
	}
}

func TestClassicToleratesMinorityCrashes(t *testing.T) {
	p := Classic(5, 2*time.Millisecond)
	net, stop := startCluster(t, 5, 2)
	defer stop()
	net.Crash(3)
	net.Crash(4)
	w := NewWriter(p, net.Port(5))
	r := NewReader(p, net.Port(6))
	w.Write("survives")
	if res := r.Read(); res.Val != "survives" {
		t.Errorf("read = %+v", res)
	}
}

func TestFastFiveOneRoundWhenFourRespond(t *testing.T) {
	p := FastFive(2 * time.Millisecond)
	net, stop := startCluster(t, 5, 2)
	defer stop()
	w := NewWriter(p, net.Port(5))
	r := NewReader(p, net.Port(6))

	wres := w.Write("fast")
	if wres.Rounds != 1 {
		t.Errorf("write rounds = %d, want 1 (5 responders ≥ 4)", wres.Rounds)
	}
	rres := r.Read()
	if rres.Val != "fast" || rres.Rounds != 1 {
		t.Errorf("read = %+v, want fast in 1 round", rres)
	}
}

func TestFastFiveDegradesToTwoRounds(t *testing.T) {
	p := FastFive(2 * time.Millisecond)
	net, stop := startCluster(t, 5, 2)
	defer stop()
	net.Crash(3)
	net.Crash(4)
	w := NewWriter(p, net.Port(5))
	r := NewReader(p, net.Port(6))

	wres := w.Write("slow")
	if wres.Rounds != 2 {
		t.Errorf("write rounds = %d, want 2 (only 3 responders)", wres.Rounds)
	}
	rres := r.Read()
	if rres.Val != "slow" {
		t.Fatalf("read = %+v", rres)
	}
	// The two-round write landed in the w field, which confirms cmax:
	// the read may complete in one round.
	if rres.Rounds != 1 {
		t.Errorf("read rounds = %d, want 1 (w-field confirmation)", rres.Rounds)
	}
}

func TestGreedyFiveIsFastButUnsafe(t *testing.T) {
	// Greedy mode is the Figure 1 strawman: always 1 round. Its
	// unsafety is demonstrated by the E1 experiment; here we just check
	// its latency profile.
	p := GreedyFive(2 * time.Millisecond)
	net, stop := startCluster(t, 5, 2)
	defer stop()
	net.Crash(3)
	net.Crash(4)
	w := NewWriter(p, net.Port(5))
	r := NewReader(p, net.Port(6))
	if wres := w.Write("greedy"); wres.Rounds != 1 {
		t.Errorf("write rounds = %d, want 1", wres.Rounds)
	}
	if rres := r.Read(); rres.Rounds != 1 || rres.Val != "greedy" {
		t.Errorf("read = %+v, want greedy in 1 round", rres)
	}
}

func TestServerFieldSemantics(t *testing.T) {
	// Older timestamps never overwrite newer ones, per field.
	net, stop := startCluster(t, 1, 1)
	defer stop()
	port := net.Port(1)
	send := func(ts int64, val string, f Field) {
		port.Send(0, WriteReq{TS: ts, Val: val, Field: f})
		<-port.Inbox() // ack
	}
	read := func() ReadAck {
		port.Send(0, ReadReq{No: 99})
		env := <-port.Inbox()
		ack, ok := env.Payload.(ReadAck)
		if !ok {
			t.Fatalf("unexpected payload %T", env.Payload)
		}
		return ack
	}
	send(2, "new", FieldPW)
	send(1, "old", FieldPW)
	send(1, "wold", FieldW)
	ack := read()
	if ack.PW != (Pair{TS: 2, Val: "new"}) {
		t.Errorf("pw = %+v", ack.PW)
	}
	if ack.W != (Pair{TS: 1, Val: "wold"}) {
		t.Errorf("w = %+v", ack.W)
	}
}

func TestParamsConstructors(t *testing.T) {
	c := Classic(7, time.Millisecond)
	if c.N != 7 || c.Quorum != 4 || c.Read != ReadTwoRound {
		t.Errorf("Classic = %+v", c)
	}
	f := FastFive(time.Millisecond)
	if f.WriteFastAt != 4 || f.Quorum != 3 || f.Read != ReadConfirmed {
		t.Errorf("FastFive = %+v", f)
	}
	g := GreedyFive(time.Millisecond)
	if g.WriteFastAt != 3 || g.Read != ReadGreedy {
		t.Errorf("GreedyFive = %+v", g)
	}
}

func TestWriterDefaultTimeout(t *testing.T) {
	p := Params{N: 1, Quorum: 1, WriteFastAt: 1, Read: ReadTwoRound}
	net, stop := startCluster(t, 1, 2)
	defer stop()
	w := NewWriter(p, net.Port(1))
	if res := w.Write("x"); res.Rounds != 1 {
		t.Errorf("write = %+v", res)
	}
	r := NewReader(p, net.Port(2))
	if res := r.Read(); res.Val != "x" {
		t.Errorf("read = %+v", res)
	}
	_ = core.FullSet(1)
}
