// Package analysis provides the quantitative companion tools of the
// experiments: minimal system sizes for threshold refined quorum systems
// (Example 6 / the E9 table), exact fast-path availability under
// independent crash probabilities (E12, in the spirit of Naor–Wool [44]),
// and quorum load.
package analysis

import (
	"math"

	"repro/internal/core"
)

// MinNRow is one row of the E9 minimal-n table.
type MinNRow struct {
	T, R, Q, K int
	MinN       int
}

// MinimalNTable tabulates the smallest |S| for which the threshold family
// (t, r, q, k) is a refined quorum system, over all 0 ≤ q ≤ r ≤ t ≤ tMax
// and 0 ≤ k ≤ kMax.
func MinimalNTable(tMax, kMax int) []MinNRow {
	var rows []MinNRow
	for t := 1; t <= tMax; t++ {
		for r := 0; r <= t; r++ {
			for q := 0; q <= r; q++ {
				for k := 0; k <= kMax; k++ {
					rows = append(rows, MinNRow{
						T: t, R: r, Q: q, K: k,
						MinN: core.MinimalN(t, r, q, k),
					})
				}
			}
		}
	}
	return rows
}

// Availability is the probability, under independent per-server crash
// probability p, that the surviving servers still contain a quorum of the
// given class. Exact enumeration over all 2^n failure patterns (n ≤ ~20).
func Availability(r *core.RQS, class core.QuorumClass, p float64) float64 {
	n := r.N()
	total := 0.0
	for mask := core.Set(0); mask < core.Set(1)<<uint(n); mask++ {
		alive := mask
		if _, ok := r.ContainedQuorum(alive, class); !ok {
			continue
		}
		k := alive.Count()
		total += math.Pow(1-p, float64(k)) * math.Pow(p, float64(n-k))
	}
	return total
}

// ExpectedRounds is the expected best-case operation latency (in rounds,
// using the 1/2/3 schedule of the storage algorithm) conditioned on
// liveness: reads/writes take 1 round if a class-1 quorum survives, 2 if
// only class 2, 3 if only class 3. The second return value is the
// liveness probability itself.
func ExpectedRounds(r *core.RQS, p float64) (expected, live float64) {
	n := r.N()
	sum := 0.0
	for mask := core.Set(0); mask < core.Set(1)<<uint(n); mask++ {
		alive := mask
		rounds := 0
		switch {
		case contained(r, alive, core.Class1):
			rounds = 1
		case contained(r, alive, core.Class2):
			rounds = 2
		case contained(r, alive, core.Class3):
			rounds = 3
		default:
			continue
		}
		k := alive.Count()
		prob := math.Pow(1-p, float64(k)) * math.Pow(p, float64(n-k))
		sum += prob * float64(rounds)
		live += prob
	}
	if live == 0 {
		return 0, 0
	}
	return sum / live, live
}

func contained(r *core.RQS, alive core.Set, c core.QuorumClass) bool {
	_, ok := r.ContainedQuorum(alive, c)
	return ok
}

// Load is the load of the class-c quorum family under the uniform access
// strategy over its listed quorums: the largest fraction of quorums any
// single server participates in (Naor–Wool [44]).
func Load(r *core.RQS, class core.QuorumClass) float64 {
	quorums := r.QuorumsOfClass(class)
	if len(quorums) == 0 {
		return 0
	}
	maxIn := 0
	for _, id := range r.Universe().Members() {
		in := 0
		for _, q := range quorums {
			if q.Contains(id) {
				in++
			}
		}
		if in > maxIn {
			maxIn = in
		}
	}
	return float64(maxIn) / float64(len(quorums))
}
