package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAvailabilityEdgeCases(t *testing.T) {
	r := core.FiveServerRQS()
	if got := Availability(r, core.Class3, 0); !almost(got, 1) {
		t.Errorf("p=0: availability = %v, want 1", got)
	}
	if got := Availability(r, core.Class3, 1); !almost(got, 0) {
		t.Errorf("p=1: availability = %v, want 0", got)
	}
}

func TestAvailabilityMonotoneInClass(t *testing.T) {
	// Stronger classes are harder to keep alive: A(class1) ≤ A(class2) ≤
	// A(class3) for every p.
	r, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.05, 0.1, 0.3, 0.5} {
		a1 := Availability(r, core.Class1, p)
		a2 := Availability(r, core.Class2, p)
		a3 := Availability(r, core.Class3, p)
		if a1 > a2+1e-12 || a2 > a3+1e-12 {
			t.Errorf("p=%v: availability not monotone: %v %v %v", p, a1, a2, a3)
		}
	}
}

func TestAvailabilityClosedFormFiveServers(t *testing.T) {
	// FiveServerRQS class-3 quorums are all 3-subsets: availability =
	// P(at least 3 of 5 alive) = Σ_{k≥3} C(5,k)(1-p)^k p^(5-k).
	p := 0.2
	want := 0.0
	for k := 3; k <= 5; k++ {
		want += float64(binom(5, k)) * math.Pow(1-p, float64(k)) * math.Pow(p, float64(5-k))
	}
	if got := Availability(core.FiveServerRQS(), core.Class3, p); !almost(got, want) {
		t.Errorf("availability = %v, want %v", got, want)
	}
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

func TestExpectedRounds(t *testing.T) {
	r := core.FiveServerRQS()
	exp, live := ExpectedRounds(r, 0)
	if !almost(exp, 1) || !almost(live, 1) {
		t.Errorf("p=0: expected=%v live=%v, want 1, 1", exp, live)
	}
	// Rounds grow with p; liveness shrinks.
	e1, l1 := ExpectedRounds(r, 0.1)
	e2, l2 := ExpectedRounds(r, 0.4)
	if e2 < e1 {
		t.Errorf("expected rounds should grow with p: %v then %v", e1, e2)
	}
	if l2 > l1 {
		t.Errorf("liveness should shrink with p: %v then %v", l1, l2)
	}
	if _, live := ExpectedRounds(r, 1); live != 0 {
		t.Errorf("p=1: live = %v, want 0", live)
	}
}

func TestLoad(t *testing.T) {
	// Majority system on 3 processes: each process is in 2 of the 3
	// minimal quorums plus the full set... MajorityRQS(3) lists all
	// 2-subsets: load = 2/3.
	if got := Load(core.MajorityRQS(3), core.Class3); !almost(got, 2.0/3.0) {
		t.Errorf("load = %v, want 2/3", got)
	}
	// A singleton quorum family has load 1.
	r := core.MustNew(core.Config{
		Universe: core.FullSet(3),
		Quorums:  []core.Set{core.NewSet(0, 1)},
	})
	if got := Load(r, core.Class3); !almost(got, 1) {
		t.Errorf("load = %v, want 1", got)
	}
	// No class-1 quorums: load 0.
	if got := Load(core.MajorityRQS(3), core.Class1); got != 0 {
		t.Errorf("class-1 load = %v, want 0", got)
	}
}

func TestMinimalNTable(t *testing.T) {
	rows := MinimalNTable(2, 2)
	if len(rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range rows {
		// Every tabulated minimum must actually validate, and n-1 must
		// not (skip overly large systems).
		if row.MinN > core.MaxProcesses {
			continue
		}
		p := core.ThresholdParams{N: row.MinN, T: row.T, R: row.R, Q: row.Q, K: row.K}
		if err := p.Validate(); err != nil {
			t.Errorf("row %+v does not validate: %v", row, err)
		}
		p.N--
		if p.N > 0 && p.Validate() == nil {
			t.Errorf("row %+v is not minimal", row)
		}
	}
	// Spot checks: PBFT-style and Martin–Alvisi-style bounds.
	found := map[MinNRow]bool{}
	for _, row := range rows {
		found[row] = true
	}
	if !found[MinNRow{T: 1, R: 1, Q: 0, K: 1, MinN: 4}] {
		t.Error("missing 3t+1 row")
	}
	if !found[MinNRow{T: 1, R: 1, Q: 1, K: 1, MinN: 6}] {
		t.Error("missing 5t+1 row")
	}
}
