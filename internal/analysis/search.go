package analysis

import (
	"sort"

	"repro/internal/core"
)

// ClassAssignment reports, for a fixed quorum family and adversary, which
// quorums can be promoted to the stronger classes — a concrete take on
// the paper's Section 6 question "how many RQS can be found given some
// adversary structure".
type ClassAssignment struct {
	// Class1 and Class2 are the maximal promotable index sets: the
	// quorums (by index into the input family) that may be class 1
	// (resp. class 2) simultaneously while Properties 1-3 hold.
	Class1 []int
	Class2 []int
	// Count1 and Count2 are their sizes.
	Count1, Count2 int
}

// SearchClassAssignment computes the maximal class assignment for the
// quorum family under the adversary. It requires Property 1 to hold
// (otherwise no assignment exists and ok is false).
//
// The search exploits two monotonicity facts:
//
//   - Property 2 constrains class-1 quorums pairwise (and against every
//     quorum): the class-1 sets are the cliques of a compatibility
//     graph, so a true maximum is a clique problem. The search returns
//     an inclusion-maximal clique built greedily in descending quorum
//     size (larger quorums have larger intersections, so this heuristic
//     recovers the published assignments of the paper's examples).
//   - Property 3 for a class-2 quorum Q2 is monotone in QC1 (a larger
//     QC1 only makes P3b easier), so class-2 eligibility is evaluated
//     against that class-1 set.
func SearchClassAssignment(quorums []core.Set, adv core.Adversary) (ClassAssignment, bool) {
	if !core.CheckP1(quorums, adv) {
		return ClassAssignment{}, false
	}

	// Maximal class-1 set: every pair (including self-pairs) must have
	// large intersections with every quorum. Pairwise violations are
	// symmetric, so first drop quorums failing against themselves, then
	// drop pairs greedily (preferring to keep earlier quorums, which
	// makes the result deterministic).
	eligible := make([]bool, len(quorums))
	for i, q1 := range quorums {
		eligible[i] = true
		for _, q := range quorums {
			if adv.CoveredByTwo(q1.Intersect(q1).Intersect(q)) {
				eligible[i] = false
				break
			}
		}
	}
	// Greedy clique construction, largest quorums first (ties by index).
	order := make([]int, 0, len(quorums))
	for i := range quorums {
		if eligible[i] {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return quorums[order[a]].Count() > quorums[order[b]].Count()
	})
	var class1 []int
	var qc1 []core.Set
	for _, i := range order {
		compatible := true
	pairwise:
		for _, kept := range qc1 {
			for _, q := range quorums {
				if adv.CoveredByTwo(quorums[i].Intersect(kept).Intersect(q)) {
					compatible = false
					break pairwise
				}
			}
		}
		if compatible {
			class1 = append(class1, i)
			qc1 = append(qc1, quorums[i])
		}
	}
	sort.Ints(class1)

	// Class-2 eligibility against the maximal QC1.
	elems := core.Elements(adv)
	var class2 []int
	for i, q2 := range quorums {
		ok := true
	outer:
		for _, q := range quorums {
			for _, b := range elems {
				if p3aHolds(q2, q, b, adv) {
					continue
				}
				if !p3bHolds(qc1, q2, q, b) {
					ok = false
					break outer
				}
			}
		}
		if ok {
			class2 = append(class2, i)
		}
	}
	return ClassAssignment{
		Class1: class1, Class2: class2,
		Count1: len(class1), Count2: len(class2),
	}, true
}

func p3aHolds(q2, q, b core.Set, adv core.Adversary) bool {
	return !adv.Contains(q2.Intersect(q).Diff(b))
}

func p3bHolds(qc1 []core.Set, q2, q, b core.Set) bool {
	if len(qc1) == 0 {
		return false
	}
	for _, q1 := range qc1 {
		if q1.Intersect(q2).Intersect(q).Diff(b).IsEmpty() {
			return false
		}
	}
	return true
}
