package analysis

import (
	"testing"

	"repro/internal/core"
)

func TestSearchClassAssignmentExample7(t *testing.T) {
	r := core.Example7RQS()
	asg, ok := SearchClassAssignment(r.Quorums(), r.Adversary())
	if !ok {
		t.Fatal("Property 1 holds, search must succeed")
	}
	// The published assignment (Q1 class 1; Q2, Q2' class 2) must be
	// within the maximal one.
	has := func(xs []int, i int) bool {
		for _, x := range xs {
			if x == i {
				return true
			}
		}
		return false
	}
	if !has(asg.Class1, 0) {
		t.Errorf("Q1 (index 0) should be class-1 eligible; got %v", asg.Class1)
	}
	for _, i := range []int{0, 1, 2} {
		if !has(asg.Class2, i) {
			t.Errorf("index %d should be class-2 eligible; got %v", i, asg.Class2)
		}
	}
	// Q2 and Q2' must NOT be class-1 eligible: their self-intersection
	// with each other, {s1..s4}, is covered by {s1,s2} ∪ {s3,s4}.
	if has(asg.Class1, 1) || has(asg.Class1, 2) {
		t.Errorf("Q2/Q2' cannot be class 1; got %v", asg.Class1)
	}
}

func TestSearchClassAssignmentBrokenSystem(t *testing.T) {
	// In Example7Broken, Q1 = {s4,s5,s6}'s self-intersection with Q2 is
	// {s4,s5}... still large; but the published broken system fails P3.
	// The search never *produces* an invalid system: whatever it
	// returns, building an RQS from it must verify.
	r := core.Example7Broken()
	asg, ok := SearchClassAssignment(r.Quorums(), r.Adversary())
	if !ok {
		t.Fatal("Property 1 holds")
	}
	built := core.MustNew(core.Config{
		Universe:  r.Universe(),
		Adversary: r.Adversary(),
		Quorums:   r.Quorums(),
		Class2:    asg.Class2,
		Class1:    asg.Class1,
	})
	if err := built.Verify(); err != nil {
		t.Errorf("search produced an invalid assignment: %v", err)
	}
}

func TestSearchClassAssignmentAlwaysVerifies(t *testing.T) {
	// On every shipped system, the maximal assignment must itself be a
	// valid RQS, and at least as generous as the published one.
	systems := []*core.RQS{
		core.MajorityRQS(5), core.ByzantineThirdRQS(4),
		core.Fig3RQS(), core.Example7RQS(), core.FiveServerRQS(),
	}
	for _, r := range systems {
		asg, ok := SearchClassAssignment(r.Quorums(), r.Adversary())
		if !ok {
			t.Fatalf("%v: search failed", r)
		}
		built := core.MustNew(core.Config{
			Universe:  r.Universe(),
			Adversary: r.Adversary(),
			Quorums:   r.Quorums(),
			Class2:    asg.Class2,
			Class1:    asg.Class1,
		})
		if err := built.Verify(); err != nil {
			t.Errorf("%v: maximal assignment invalid: %v", r, err)
		}
		if asg.Count1 < len(r.QuorumsOfClass(core.Class1)) {
			t.Errorf("%v: search found %d class-1 quorums, published has %d",
				r, asg.Count1, len(r.QuorumsOfClass(core.Class1)))
		}
		if asg.Count2 < len(r.QuorumsOfClass(core.Class2)) {
			t.Errorf("%v: search found %d class-2 quorums, published has %d",
				r, asg.Count2, len(r.QuorumsOfClass(core.Class2)))
		}
	}
}

func TestSearchClassAssignmentP1Failure(t *testing.T) {
	adv := core.NewThreshold(4, 1)
	if _, ok := SearchClassAssignment([]core.Set{core.NewSet(0, 1), core.NewSet(1, 2)}, adv); ok {
		t.Error("P1-violating family should fail the search")
	}
}
