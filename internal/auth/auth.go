// Package auth provides the key material and signing primitives for
// Byzantine-tolerant storage: per-identity signers and a shared
// verifier, pluggable between two modes.
//
//   - ModeEd25519 uses one ed25519 keypair per identity. Signatures
//     are transferable (any holder of the public keyring can verify a
//     third party's signature), which is what the MWMR read-writeback
//     needs: a reader forwards the writer's tag signature verbatim and
//     servers/readers elsewhere can still check it. ~25µs per sign,
//     ~60µs per verify.
//
//   - ModeHMAC derives one HMAC-SHA256 key per identity from a single
//     deployment secret. Sub-microsecond, but symmetric: every keyring
//     holder can forge every identity's MACs, so it only authenticates
//     against faults *outside* the deployment's key perimeter (the
//     classic PBFT MAC caveat). It is the fast mode used by the chaos
//     scenarios and the perf gate, where the adversary model is a
//     compromised server process whose forged payloads bypass the
//     signing path rather than a stolen keyring.
//
// Identities are transport process IDs: servers 0..n-1 plus the client
// ports above them. A Deployment bundles the generated material; the
// verifier side is distributed to every process, each signer only to
// its owner.
package auth

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"

	"repro/internal/core"
)

// Signer is one identity's signing capability.
type Signer interface {
	// ID returns the identity whose signatures this signer produces.
	ID() core.ProcessID
	// Sign returns a signature over the canonical body. The returned
	// slice is freshly allocated — callers may retain it indefinitely.
	Sign(body []byte) []byte
}

// AppendSigner is an optional Signer extension for hot paths: append
// the signature to out instead of allocating a fresh slice per call.
// The HMAC signer implements it (servers sign every read ack, so the
// per-signature allocation is a measurable slice of the op); ed25519
// does not bother — its arithmetic dwarfs an allocation.
type AppendSigner interface {
	// AppendSign appends the signature over body to out and returns
	// the extended slice.
	AppendSign(out, body []byte) []byte
}

// Verifier checks signatures against the deployment's key material.
// Implementations are safe for concurrent use.
type Verifier interface {
	// Verify reports whether sig is id's signature over body. Unknown
	// (or revoked) identities verify nothing.
	Verify(id core.ProcessID, body, sig []byte) bool
}

// Mode selects the signature algorithm of a Deployment.
type Mode int

const (
	// ModeEd25519 is the asymmetric default: transferable signatures,
	// tolerant of a leaked verifier.
	ModeEd25519 Mode = iota
	// ModeHMAC is the symmetric fast mode (see package comment).
	ModeHMAC
)

func (m Mode) String() string {
	if m == ModeHMAC {
		return "hmac"
	}
	return "ed25519"
}

// Deployment is the generated key material for one set of identities:
// a shared Verifier plus one private Signer per identity.
type Deployment struct {
	Mode     Mode
	verifier Verifier
	signers  map[core.ProcessID]Signer
}

// NewDeployment generates fresh key material for the given identities.
func NewDeployment(mode Mode, ids core.Set) (*Deployment, error) {
	return NewDeploymentIDs(mode, ids.Members())
}

// NewDeploymentIDs is NewDeployment over an explicit identity list.
// A core.Set caps the universe at 64 processes; deployments whose
// client identities extend past that (e.g. a C=64 load bench: servers
// 0..6 plus client ports 7..71) must provision through this form —
// the key material itself is map-keyed and has no such bound.
func NewDeploymentIDs(mode Mode, ids []core.ProcessID) (*Deployment, error) {
	d := &Deployment{Mode: mode, signers: make(map[core.ProcessID]Signer, len(ids))}
	switch mode {
	case ModeEd25519:
		ring := &edKeyring{pubs: make(map[core.ProcessID]ed25519.PublicKey, len(ids))}
		for _, id := range ids {
			pub, priv, err := ed25519.GenerateKey(rand.Reader)
			if err != nil {
				return nil, fmt.Errorf("auth: generate key for %d: %w", id, err)
			}
			ring.pubs[id] = pub
			d.signers[id] = &edSigner{id: id, priv: priv}
		}
		d.verifier = ring
	case ModeHMAC:
		secret := make([]byte, 32)
		if _, err := rand.Read(secret); err != nil {
			return nil, fmt.Errorf("auth: generate deployment secret: %w", err)
		}
		ring := &hmacKeyring{pools: make(map[core.ProcessID]*macPool, len(ids))}
		for _, id := range ids {
			mp := newMACPool(deriveKey(secret, id))
			ring.pools[id] = mp
			d.signers[id] = &hmacSigner{id: id, pool: mp}
		}
		d.verifier = ring
	default:
		return nil, fmt.Errorf("auth: unknown mode %d", mode)
	}
	return d, nil
}

// MustDeployment is NewDeployment for harness code where key
// generation cannot reasonably fail.
func MustDeployment(mode Mode, ids core.Set) *Deployment {
	d, err := NewDeployment(mode, ids)
	if err != nil {
		panic(err)
	}
	return d
}

// MustDeploymentIDs is NewDeploymentIDs with the same panic contract.
func MustDeploymentIDs(mode Mode, ids []core.ProcessID) *Deployment {
	d, err := NewDeploymentIDs(mode, ids)
	if err != nil {
		panic(err)
	}
	return d
}

// Verifier returns the deployment's shared verification side.
func (d *Deployment) Verifier() Verifier { return d.verifier }

// Signer returns id's signing capability, or nil when id is not part
// of the deployment (or was revoked).
func (d *Deployment) Signer(id core.ProcessID) Signer { return d.signers[id] }

// Revoke removes id from the deployment: its existing signatures stop
// verifying and Signer(id) returns nil. Used to model a writer whose
// key was rotated out while its signed tags are still in flight.
func (d *Deployment) Revoke(id core.ProcessID) {
	delete(d.signers, id)
	switch r := d.verifier.(type) {
	case *edKeyring:
		delete(r.pubs, id)
	case *hmacKeyring:
		delete(r.pools, id)
	}
}

// Digest is the value digest bound into signed tags: SHA-256 over the
// raw value bytes. Signing a digest instead of the value keeps the
// canonical signing body fixed-size.
func Digest(val string) [sha256.Size]byte { return sha256.Sum256([]byte(val)) }

// ed25519 implementation.

type edSigner struct {
	id   core.ProcessID
	priv ed25519.PrivateKey
}

func (s *edSigner) ID() core.ProcessID      { return s.id }
func (s *edSigner) Sign(body []byte) []byte { return ed25519.Sign(s.priv, body) }

type edKeyring struct {
	pubs map[core.ProcessID]ed25519.PublicKey
}

func (k *edKeyring) Verify(id core.ProcessID, body, sig []byte) bool {
	pub, ok := k.pubs[id]
	return ok && len(sig) == ed25519.SignatureSize && ed25519.Verify(pub, body, sig)
}

// HMAC implementation.

// deriveKey expands the deployment secret into id's MAC key:
// HMAC(secret, "rqs-auth" ‖ id).
func deriveKey(secret []byte, id core.ProcessID) []byte {
	mac := hmac.New(sha256.New, secret)
	var buf [12]byte
	copy(buf[:], "rqs-auth")
	binary.BigEndian.PutUint32(buf[8:], uint32(id))
	mac.Write(buf[:])
	return mac.Sum(nil)
}

// macPool computes HMAC-SHA256 for one identity from a pool of keyed
// hmac instances. hmac.New pays two key-schedule hashes and a handful
// of allocations; pooling amortizes that to a Reset (which restores
// the cached key midstates, not a re-keying) so the steady-state cost
// is hashing the body alone. On a single-core load run every MAC in
// the system bills the op directly, so this is the difference between
// the signed write load staying near its gate against unsigned writes
// and missing it severalfold. Output is crypto/hmac's by construction.
type macPool struct {
	p sync.Pool // keyed hash.Hash instances
}

func newMACPool(key []byte) *macPool {
	k := append([]byte(nil), key...)
	return &macPool{p: sync.Pool{New: func() any { return hmac.New(sha256.New, k) }}}
}

// sum appends the keyed MAC of body to out and returns the result.
func (mp *macPool) sum(body, out []byte) []byte {
	mac := mp.p.Get().(hash.Hash)
	mac.Reset()
	mac.Write(body)
	out = mac.Sum(out)
	mp.p.Put(mac)
	return out
}

// matches reports whether sig is the keyed MAC of body, allocation-free.
func (mp *macPool) matches(body, sig []byte) bool {
	var buf [sha256.Size]byte
	return hmac.Equal(mp.sum(body, buf[:0]), sig)
}

type hmacSigner struct {
	id   core.ProcessID
	pool *macPool
}

func (s *hmacSigner) ID() core.ProcessID { return s.id }

func (s *hmacSigner) Sign(body []byte) []byte {
	return s.pool.sum(body, nil)
}

func (s *hmacSigner) AppendSign(out, body []byte) []byte {
	return s.pool.sum(body, out)
}

type hmacKeyring struct {
	pools map[core.ProcessID]*macPool
}

func (k *hmacKeyring) Verify(id core.ProcessID, body, sig []byte) bool {
	mp, ok := k.pools[id]
	if !ok {
		return false
	}
	return mp.matches(body, sig)
}
