package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"sync"
	"testing"

	"repro/internal/core"
)

var modes = []Mode{ModeEd25519, ModeHMAC}

// TestSignVerifyRoundtrip pins the basic contract in both modes: every
// identity's signature verifies under its own identity and under no
// other, and a flipped body or signature bit fails.
func TestSignVerifyRoundtrip(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ids := core.NewSet(0, 1, 2)
			d, err := NewDeployment(mode, ids)
			if err != nil {
				t.Fatal(err)
			}
			v := d.Verifier()
			body := []byte("the canonical body")
			for _, id := range ids.Members() {
				sig := d.Signer(id).Sign(body)
				if got := d.Signer(id).ID(); got != id {
					t.Fatalf("signer %d reports ID %d", id, got)
				}
				if !v.Verify(id, body, sig) {
					t.Fatalf("mode %v: %d's signature did not verify", mode, id)
				}
				for _, other := range ids.Members() {
					if other != id && v.Verify(other, body, sig) {
						t.Fatalf("mode %v: %d's signature verified as %d's", mode, id, other)
					}
				}
				tampered := append([]byte(nil), body...)
				tampered[0] ^= 1
				if v.Verify(id, tampered, sig) {
					t.Fatalf("mode %v: signature verified over a tampered body", mode)
				}
				badSig := append([]byte(nil), sig...)
				badSig[0] ^= 1
				if v.Verify(id, body, badSig) {
					t.Fatalf("mode %v: flipped signature verified", mode)
				}
				if v.Verify(id, body, sig[:len(sig)-1]) {
					t.Fatalf("mode %v: truncated signature verified", mode)
				}
			}
		})
	}
}

// TestMACPoolMatchesCryptoHMAC pins the pooled MAC against the
// reference crypto/hmac construction bit for bit, across body lengths
// straddling the SHA-256 block boundaries.
func TestMACPoolMatchesCryptoHMAC(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	mp := newMACPool(key)
	for _, n := range []int{0, 1, 31, 32, 55, 56, 63, 64, 65, 127, 128, 129, 1000} {
		body := make([]byte, n)
		for i := range body {
			body[i] = byte(i)
		}
		ref := hmac.New(sha256.New, key)
		ref.Write(body)
		want := ref.Sum(nil)
		if got := mp.sum(body, nil); !hmac.Equal(got, want) {
			t.Fatalf("len %d: pool MAC diverges from crypto/hmac", n)
		}
		if !mp.matches(body, want) {
			t.Fatalf("len %d: matches rejected the reference MAC", n)
		}
		want[0] ^= 1
		if mp.matches(body, want) {
			t.Fatalf("len %d: matches accepted a flipped MAC", n)
		}
	}
	// A key longer than the block size must be hashed down first,
	// exactly as crypto/hmac does.
	long := make([]byte, 100)
	for i := range long {
		long[i] = byte(i * 7)
	}
	lp := newMACPool(long)
	ref := hmac.New(sha256.New, long)
	ref.Write([]byte("body"))
	if !hmac.Equal(lp.sum([]byte("body"), nil), ref.Sum(nil)) {
		t.Fatal("long-key MAC diverges from crypto/hmac")
	}
}

// TestUnknownAndRevokedIdentity pins that identities outside the
// deployment — never provisioned, or revoked after signing — verify
// nothing and hand out no signer.
func TestUnknownAndRevokedIdentity(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			d := MustDeployment(mode, core.NewSet(0, 1))
			body := []byte("payload")
			if d.Signer(7) != nil {
				t.Fatal("unknown identity has a signer")
			}
			if d.Verifier().Verify(7, body, d.Signer(0).Sign(body)) {
				t.Fatal("unknown identity verified a signature")
			}
			sig := d.Signer(1).Sign(body)
			d.Revoke(1)
			if d.Signer(1) != nil {
				t.Fatal("revoked identity still has a signer")
			}
			if d.Verifier().Verify(1, body, sig) {
				t.Fatal("revoked identity's old signature still verifies")
			}
			// The surviving identity is untouched.
			if !d.Verifier().Verify(0, body, d.Signer(0).Sign(body)) {
				t.Fatal("revocation broke an unrelated identity")
			}
		})
	}
}

// TestDeploymentBeyondSetCapacity pins the identity-list constructor:
// client identities past 63 — beyond what a core.Set bitmask holds,
// but routinely reached by wide load benches (7 servers + 65 client
// ports) — must be provisioned and roundtrip like any other. A
// regression here is vicious: the unprovisioned writer's unsigned
// tags are silently dropped by verifying servers and its every write
// hangs forever.
func TestDeploymentBeyondSetCapacity(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ids := make([]core.ProcessID, 0, 72)
			for id := core.ProcessID(0); id < 72; id++ {
				ids = append(ids, id)
			}
			d, err := NewDeploymentIDs(mode, ids)
			if err != nil {
				t.Fatal(err)
			}
			body := []byte("wide deployment body")
			for _, id := range []core.ProcessID{0, 63, 64, 71} {
				s := d.Signer(id)
				if s == nil {
					t.Fatalf("mode %v: identity %d not provisioned", mode, id)
				}
				if !d.Verifier().Verify(id, body, s.Sign(body)) {
					t.Fatalf("mode %v: identity %d roundtrip failed", mode, id)
				}
			}
			if d.Verifier().Verify(64, body, d.Signer(65).Sign(body)) {
				t.Fatal("cross-identity signature verified past the Set boundary")
			}
		})
	}
}

// TestForeignDeploymentRejected pins the key-perimeter boundary: a
// signature produced by the same identity of a *different* deployment
// (fresh keys, same ID space) never verifies here. This is exactly the
// countersignature-from-outside-the-deployment attack the read path
// must screen out.
func TestForeignDeploymentRejected(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ids := core.NewSet(0, 1)
			d := MustDeployment(mode, ids)
			foreign := MustDeployment(mode, ids)
			body := []byte("cross-deployment body")
			sig := foreign.Signer(0).Sign(body)
			if d.Verifier().Verify(0, body, sig) {
				t.Fatalf("mode %v: foreign deployment's signature verified", mode)
			}
		})
	}
}

// TestConcurrentSignVerify exercises the concurrency contract under
// -race: one signer and the shared verifier used from many goroutines
// at once (the HMAC path must not share a running hash state).
func TestConcurrentSignVerify(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			d := MustDeployment(mode, core.NewSet(0, 1))
			v := d.Verifier()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					id := core.ProcessID(g % 2)
					s := d.Signer(id)
					body := []byte{byte(g), 'b', 'o', 'd', 'y'}
					for i := 0; i < 50; i++ {
						if !v.Verify(id, body, s.Sign(body)) {
							t.Errorf("goroutine %d: roundtrip failed", g)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestSignReturnsFreshSlice pins the aliasing contract of Sign: the
// returned slice must be retainable — mutating one signature must not
// corrupt another (the memory transport passes payloads by reference).
func TestSignReturnsFreshSlice(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			d := MustDeployment(mode, core.NewSet(0))
			s := d.Signer(0)
			body := []byte("body")
			a := s.Sign(body)
			b := s.Sign(body)
			a[0] ^= 1
			if !d.Verifier().Verify(0, body, b) {
				t.Fatalf("mode %v: mutating one signature corrupted another", mode)
			}
		})
	}
}
