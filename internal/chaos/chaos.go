// Package chaos is the scripted fault-injection layer: composable,
// seeded, time-scheduled fault scripts that drive both transports
// through one injector interface, plus a conn-level proxy (proxy.go)
// for faults below the session layer.
//
// A Script is a list of Rules. Each rule selects a set of directed
// links (From → To), an active window on the script's clock, and an
// Effect — cut, park-until-heal, probabilistic drop, a delay
// distribution, duplication, or a flapping schedule. Active rules
// compose: drops win, delays add, duplication takes the max. Every
// random choice comes from a per-rule PRNG stream derived from the
// script seed, so a campaign replays the same fault pattern from the
// same seed regardless of how many other rules fire.
//
// The package deliberately imports neither transport: it matches
// transport.Injector structurally (same Decide signature over
// core.ProcessID), which keeps chaos a leaf package that transport's
// own tests can import.
package chaos

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Injector is the fault-injection decision interface, structurally
// identical to transport.Injector: the fate of one envelope on the
// from→to link — drop it, delay it, and/or deliver dup extra copies.
type Injector interface {
	Decide(from, to core.ProcessID) (drop bool, delay time.Duration, dup int)
}

// Rule scripts one fault: an effect applied to a set of directed links
// during a window of the script clock.
type Rule struct {
	// From and To select the directed links the rule applies to; an
	// empty set matches every sender (resp. receiver). An asymmetric
	// partition is one rule with From={a}, To={b} and no mirror rule.
	From, To core.Set
	// Start and Stop bound the active window, measured from
	// Script.Start. Stop = 0 means "until the end of the run".
	Start, Stop time.Duration
	// Effect is what happens to envelopes matched during the window.
	Effect Effect
}

// Effect is one fault behaviour. Implementations receive the rule's
// private PRNG, the current script-clock time, and the rule's stop
// time (0 = never) and return their contribution to the envelope's
// fate.
type Effect interface {
	apply(rng *rand.Rand, now, stop time.Duration) (drop bool, delay time.Duration, dup int)
}

// Cut drops every matched envelope: a hard partition of the selected
// links. With a rule window it is a partition that heals but loses the
// traffic sent meanwhile; see Park for the lossless variant.
type Cut struct{}

func (Cut) apply(*rand.Rand, time.Duration, time.Duration) (bool, time.Duration, int) {
	return true, 0, 0
}

// Park holds matched envelopes until the rule's window closes and then
// delivers them: a partition whose traffic resumes on heal — the shape
// quorum protocols without protocol-level retransmission need for a
// liveness assertion (the in-flight round completes once the partition
// heals). With no Stop, Park degenerates to Cut.
type Park struct{}

func (Park) apply(_ *rand.Rand, now, stop time.Duration) (bool, time.Duration, int) {
	if stop <= 0 {
		return true, 0, 0
	}
	return false, stop - now, 0
}

// Drop discards each matched envelope independently with probability P.
type Drop struct{ P float64 }

func (d Drop) apply(rng *rand.Rand, _, _ time.Duration) (bool, time.Duration, int) {
	return rng.Float64() < d.P, 0, 0
}

// Dup delivers one extra copy of each matched envelope with
// probability P.
type Dup struct{ P float64 }

func (d Dup) apply(rng *rand.Rand, _, _ time.Duration) (bool, time.Duration, int) {
	if rng.Float64() < d.P {
		return false, 0, 1
	}
	return false, 0, 0
}

// Delay adds a sampled delay to each matched envelope. Combined with
// concurrent traffic this is also the reordering primitive: envelopes
// sampled a long delay arrive after envelopes sent later.
type Delay struct{ Dist Distribution }

func (d Delay) apply(rng *rand.Rand, _, _ time.Duration) (bool, time.Duration, int) {
	return false, d.Dist.Sample(rng), 0
}

// Flap models a link on a square-wave schedule: down for Duty×Period
// at the start of every period, up for the rest. While down, envelopes
// are parked to the end of the current down-phase (Park=true) or
// dropped (Park=false).
type Flap struct {
	Period time.Duration
	Duty   float64 // fraction of each period spent down, in [0,1]
	Park   bool
}

func (f Flap) apply(_ *rand.Rand, now, _ time.Duration) (bool, time.Duration, int) {
	if f.Period <= 0 {
		return false, 0, 0
	}
	pos := now % f.Period
	down := time.Duration(f.Duty * float64(f.Period))
	if pos >= down {
		return false, 0, 0
	}
	if f.Park {
		return false, down - pos, 0
	}
	return true, 0, 0
}

// Distribution samples a latency.
type Distribution interface {
	Sample(rng *rand.Rand) time.Duration
}

// Fixed is a constant delay.
type Fixed time.Duration

// Sample returns the constant.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi time.Duration }

// Sample draws from the interval.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(rng.Int63n(int64(u.Hi-u.Lo)+1))
}

// Pareto is a heavy-tailed delay: Scale·U^(-1/Alpha), capped at Max —
// the classic tail-latency shape where most envelopes see ~Scale but a
// few see orders of magnitude more.
type Pareto struct {
	Scale time.Duration
	Alpha float64
	Max   time.Duration
}

// Sample draws from the capped Pareto tail.
func (p Pareto) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	d := time.Duration(float64(p.Scale) * math.Pow(u, -1/p.Alpha))
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	return d
}

// Stats counts a script's decisions, for tests and run reports.
type Stats struct {
	Decided uint64 // envelopes inspected while the script was started
	Dropped uint64
	Delayed uint64
	Duped   uint64
}

// Script is a seeded, time-scheduled fault plan implementing the
// injector interface of both transports. Build with NewScript, add
// rules with Rule, install via SetInjector, and call Start when the
// campaign clock should begin. Decide is safe for concurrent use; an
// unstarted script passes everything through.
type Script struct {
	seed  int64
	rules []*boundRule

	mu      sync.Mutex
	started bool
	epoch   time.Time
	now     func() time.Time // test seam

	decided, dropped, delayed, duped atomic.Uint64
}

type boundRule struct {
	Rule
	rng *rand.Rand
}

// NewScript creates an empty script. All randomness in rule effects
// derives from seed: rule i draws from its own stream seeded
// seed^(i+1)·prime, so decisions replay per rule.
func NewScript(seed int64) *Script {
	return &Script{seed: seed, now: time.Now}
}

// Rule appends a rule and returns the script for chaining.
func (s *Script) Rule(r Rule) *Script {
	i := int64(len(s.rules))
	src := rand.NewSource(s.seed ^ (i+1)*0x5851F42D4C957F2D)
	s.rules = append(s.rules, &boundRule{Rule: r, rng: rand.New(src)})
	return s
}

// Start begins the script clock: rule windows are measured from this
// instant. Calling Start again restarts the clock.
func (s *Script) Start() {
	s.mu.Lock()
	s.started = true
	s.epoch = s.now()
	s.mu.Unlock()
}

// Decide implements the injector interface of both transports.
func (s *Script) Decide(from, to core.ProcessID) (bool, time.Duration, int) {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return false, 0, 0
	}
	now := s.now().Sub(s.epoch)
	var delay time.Duration
	dup := 0
	for _, r := range s.rules {
		if now < r.Start || (r.Stop > 0 && now >= r.Stop) {
			continue
		}
		if !r.From.IsEmpty() && !r.From.Contains(from) {
			continue
		}
		if !r.To.IsEmpty() && !r.To.Contains(to) {
			continue
		}
		drop, d, extra := r.Effect.apply(r.rng, now, r.Stop)
		if drop {
			s.mu.Unlock()
			s.decided.Add(1)
			s.dropped.Add(1)
			return true, 0, 0
		}
		delay += d
		if extra > dup {
			dup = extra
		}
	}
	s.mu.Unlock()
	s.decided.Add(1)
	if delay > 0 {
		s.delayed.Add(1)
	}
	if dup > 0 {
		s.duped.Add(1)
	}
	return false, delay, dup
}

// Stats returns the script's decision counters.
func (s *Script) Stats() Stats {
	return Stats{
		Decided: s.decided.Load(),
		Dropped: s.dropped.Load(),
		Delayed: s.delayed.Load(),
		Duped:   s.duped.Load(),
	}
}

var _ Injector = (*Script)(nil)
