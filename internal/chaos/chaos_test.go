package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// clockAt pins the script clock so window logic is deterministic.
func clockAt(s *Script, offset time.Duration) {
	base := time.Unix(1000, 0)
	s.now = func() time.Time { return base }
	s.Start()
	s.now = func() time.Time { return base.Add(offset) }
}

func TestUnstartedScriptPassesThrough(t *testing.T) {
	s := NewScript(1).Rule(Rule{Effect: Cut{}})
	if drop, d, dup := s.Decide(0, 1); drop || d != 0 || dup != 0 {
		t.Fatalf("unstarted script decided (%v, %v, %d)", drop, d, dup)
	}
}

func TestRuleWindow(t *testing.T) {
	s := NewScript(1).Rule(Rule{Start: 100 * time.Millisecond, Stop: 200 * time.Millisecond, Effect: Cut{}})
	for _, tc := range []struct {
		at   time.Duration
		drop bool
	}{
		{50 * time.Millisecond, false},
		{100 * time.Millisecond, true},
		{150 * time.Millisecond, true},
		{200 * time.Millisecond, false},
		{300 * time.Millisecond, false},
	} {
		clockAt(s, tc.at)
		if drop, _, _ := s.Decide(0, 1); drop != tc.drop {
			t.Errorf("at %v: drop = %v, want %v", tc.at, drop, tc.drop)
		}
	}
}

func TestAsymmetricCut(t *testing.T) {
	// Cut 0→1 only; 1→0 and unrelated links flow.
	s := NewScript(1).Rule(Rule{From: core.NewSet(0), To: core.NewSet(1), Effect: Cut{}})
	clockAt(s, time.Millisecond)
	if drop, _, _ := s.Decide(0, 1); !drop {
		t.Error("0→1 not cut")
	}
	if drop, _, _ := s.Decide(1, 0); drop {
		t.Error("1→0 cut; partition should be asymmetric")
	}
	if drop, _, _ := s.Decide(0, 2); drop {
		t.Error("0→2 cut; only the selected link should be")
	}
}

func TestParkDelaysUntilHeal(t *testing.T) {
	s := NewScript(1).Rule(Rule{Stop: 500 * time.Millisecond, Effect: Park{}})
	clockAt(s, 200*time.Millisecond)
	drop, d, _ := s.Decide(0, 1)
	if drop || d != 300*time.Millisecond {
		t.Fatalf("park at t=200ms of a 500ms window: (%v, %v), want delay 300ms", drop, d)
	}
	// Park with no heal time is a cut.
	s2 := NewScript(1).Rule(Rule{Effect: Park{}})
	clockAt(s2, time.Millisecond)
	if drop, _, _ := s2.Decide(0, 1); !drop {
		t.Error("unbounded Park should drop")
	}
}

func TestFlapSquareWave(t *testing.T) {
	f := Flap{Period: 100 * time.Millisecond, Duty: 0.4, Park: false}
	s := NewScript(1).Rule(Rule{Effect: f})
	clockAt(s, 120*time.Millisecond) // 20ms into the period: down
	if drop, _, _ := s.Decide(0, 1); !drop {
		t.Error("down-phase envelope not dropped")
	}
	clockAt(s, 170*time.Millisecond) // 70ms into the period: up
	if drop, _, _ := s.Decide(0, 1); drop {
		t.Error("up-phase envelope dropped")
	}
	// Parking flap delays to the end of the down phase instead.
	sp := NewScript(1).Rule(Rule{Effect: Flap{Period: 100 * time.Millisecond, Duty: 0.4, Park: true}})
	clockAt(sp, 110*time.Millisecond)
	if drop, d, _ := sp.Decide(0, 1); drop || d != 30*time.Millisecond {
		t.Errorf("parking flap 10ms into a 40ms down phase: (%v, %v), want delay 30ms", drop, d)
	}
}

func TestEffectsCompose(t *testing.T) {
	s := NewScript(1).
		Rule(Rule{Effect: Delay{Dist: Fixed(5 * time.Millisecond)}}).
		Rule(Rule{Effect: Delay{Dist: Fixed(7 * time.Millisecond)}}).
		Rule(Rule{Effect: Dup{P: 1}})
	clockAt(s, time.Millisecond)
	drop, d, dup := s.Decide(0, 1)
	if drop || d != 12*time.Millisecond || dup != 1 {
		t.Fatalf("composed effects: (%v, %v, %d), want delays summed to 12ms and dup 1", drop, d, dup)
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		s := NewScript(seed).Rule(Rule{Effect: Drop{P: 0.5}})
		clockAt(s, time.Millisecond)
		out := make([]bool, 64)
		for i := range out {
			out[i], _, _ = s.Decide(0, 1)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-decision sequences")
	}
}

func TestDistributionBounds(t *testing.T) {
	s := NewScript(7)
	rng := s.Rule(Rule{}).rules[0].rng
	u := Uniform{Lo: 2 * time.Millisecond, Hi: 9 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := u.Sample(rng); d < u.Lo || d > u.Hi {
			t.Fatalf("uniform sample %v outside [%v, %v]", d, u.Lo, u.Hi)
		}
	}
	p := Pareto{Scale: time.Millisecond, Alpha: 1.2, Max: 50 * time.Millisecond}
	sawTail := false
	for i := 0; i < 5000; i++ {
		d := p.Sample(rng)
		if d < p.Scale || d > p.Max {
			t.Fatalf("pareto sample %v outside [%v, %v]", d, p.Scale, p.Max)
		}
		if d > 10*p.Scale {
			sawTail = true
		}
	}
	if !sawTail {
		t.Error("pareto never produced a tail sample > 10×scale in 5000 draws")
	}
}

func TestStatsCount(t *testing.T) {
	s := NewScript(1).Rule(Rule{From: core.NewSet(0), Effect: Cut{}})
	clockAt(s, time.Millisecond)
	s.Decide(0, 1) // dropped
	s.Decide(1, 0) // passed
	st := s.Stats()
	if st.Decided != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 2 decided / 1 dropped", st)
	}
}

// TestProxyForwardBlackholeCut exercises the conn-level proxy: bytes
// flow through, a blackholed proxy swallows them (counted), and
// CutConns kills live conns (counted).
func TestProxyForwardBlackholeCut(t *testing.T) {
	echo, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	go func() {
		for {
			c, err := echo.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(c, c) }()
		}
	}()

	p, err := NewProxy(echo.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := []byte("ping")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo through proxy: %q, %v", got, err)
	}
	if st := p.Stats(); st.BytesForwarded == 0 || st.ConnsOpened != 1 {
		t.Fatalf("after echo: stats %+v", st)
	}

	p.Blackhole(true)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().BytesBlackholed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("blackholed bytes never counted: stats %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	p.Blackhole(false)

	p.CutConns()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(got); err == nil {
		t.Fatal("read succeeded after CutConns")
	}
	if st := p.Stats(); st.ConnsCut == 0 {
		t.Fatalf("cut conns not counted: stats %+v", st)
	}
}
