package chaos

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a conn-level chaos interposer for the TCP transport: it
// listens locally, forwards byte streams to a target address, and can
// blackhole traffic (keep conns open, silently discard bytes — a
// partition the peer cannot observe as a socket error) or cut live
// conns (abrupt socket death, as in a host crash). Install it through
// TCPHost.SetDialer, or hand peers its Addr as the target's address,
// so every peerLink session runs through it. Unlike the envelope-level
// Script, faults here hit below the session layer, so the transport's
// retransmission machinery is what must repair them.
type Proxy struct {
	ln     net.Listener
	target string
	frozen atomic.Bool

	bytesForwarded  atomic.Uint64
	bytesBlackholed atomic.Uint64
	connsOpened     atomic.Uint64
	connsCut        atomic.Uint64

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

// ProxyStats reports what the proxy has done to the wire.
type ProxyStats struct {
	BytesForwarded  uint64 // bytes relayed while passing traffic
	BytesBlackholed uint64 // bytes silently discarded while blackholed
	ConnsOpened     uint64 // proxied conn pairs established
	ConnsCut        uint64 // conns torn down by CutConns
}

// NewProxy starts a proxy on a fresh loopback port relaying to target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target}
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address — dial this instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target is the address the proxy relays to.
func (p *Proxy) Target() string { return p.target }

// Blackhole switches silent-discard mode on or off. While on, both
// directions of every proxied conn swallow bytes but stay open.
func (p *Proxy) Blackhole(on bool) { p.frozen.Store(on) }

// CutConns abruptly closes every live proxied conn. New conns are
// still accepted, so the transport's redial recovers — this models a
// kill -9 of the wire, not of the proxy.
func (p *Proxy) CutConns() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		p.connsCut.Add(1)
		_ = c.Close()
	}
}

// Stats returns the proxy's byte and conn counters.
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{
		BytesForwarded:  p.bytesForwarded.Load(),
		BytesBlackholed: p.bytesBlackholed.Load(),
		ConnsOpened:     p.connsOpened.Load(),
		ConnsCut:        p.connsCut.Load(),
	}
}

// Close stops the listener and closes every proxied conn.
func (p *Proxy) Close() {
	_ = p.ln.Close()
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

func (p *Proxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			_ = c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = c.Close()
			_ = up.Close()
			return
		}
		p.conns = append(p.conns, c, up)
		p.mu.Unlock()
		p.connsOpened.Add(1)
		go p.pipe(c, up)
		go p.pipe(up, c)
	}
}

func (p *Proxy) pipe(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if err != nil {
			return
		}
		if p.frozen.Load() {
			p.bytesBlackholed.Add(uint64(n))
			continue // partition: swallow the bytes, keep the conn open
		}
		if _, err := dst.Write(buf[:n]); err != nil {
			return
		}
		p.bytesForwarded.Add(uint64(n))
	}
}
