package consensus

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ElectionConfig tunes the Election module (Figure 14).
type ElectionConfig struct {
	// Enabled turns the view-change machinery on. Best-case experiments
	// may disable it to freeze the initial view.
	Enabled bool
	// InitTimeout is the initial suspect timeout (the paper's 5Δ); it
	// doubles after every expiration.
	InitTimeout time.Duration
}

// Acceptor is one acceptor of the Locking module (Figure 15) together
// with its Election module half (Figure 14).
type Acceptor struct {
	id     core.ProcessID
	rqs    *core.RQS
	elems  []core.Set
	ring   *Keyring
	signer *Signer
	topo   Topology
	port   transport.Port
	elect  ElectionConfig

	// Locking state (Figure 15 initialisation).
	view        int
	prep        Value
	prepview    map[int]bool
	update      [2]Value
	updateview  [2]map[int]bool
	updateQ     [2]map[int][]core.Set
	updateproof [2]map[int][]SignedUpdate
	oldStep     map[int]map[vwKey]bool // update messages sent (the `old` set), per step

	// Received update bookkeeping for the quorum triggers of line 34.
	coll [2]map[vwKey]*senderRec

	dec        decider
	hasDecided bool
	decidedVal Value

	// Consult-phase pending ack, while countersignatures are gathered.
	pendingTo     core.ProcessID
	pendingActive bool
	pendingNeeded map[[2]int]bool // (step index 0/1, view) still unproven

	// Election state.
	timerRunning   bool
	timer          *time.Timer
	suspectTimeout time.Duration
	nextView       int
	timerStopped   bool // permanently stopped after a decided quorum
	decisionFrom   map[Value]core.Set

	// Durability (nil for a volatile acceptor — see durable.go). dirty
	// marks that the handled event changed promise/accept state; the
	// post-event hook appends one AcceptorState record, fsyncs, and
	// only then flushes the deferred sends.
	wal         *wal.Log
	dp          *deferPort
	walBuf      []byte
	dirty       bool
	walFailed   bool
	maxSegments int

	// hooks is the Byzantine fault-injection surface (hooks.go); zero
	// for an honest acceptor. Set before Start via SetHooks.
	hooks Hooks

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAcceptor builds an acceptor. signer must hold this acceptor's key.
func NewAcceptor(rqs *core.RQS, topo Topology, port transport.Port, ring *Keyring, signer *Signer, elect ElectionConfig) *Acceptor {
	if elect.InitTimeout <= 0 {
		elect.InitTimeout = 50 * time.Millisecond
	}
	a := &Acceptor{
		id:             port.ID(),
		rqs:            rqs,
		elems:          core.Elements(rqs.Adversary()),
		ring:           ring,
		signer:         signer,
		topo:           topo,
		port:           port,
		elect:          elect,
		view:           InitView,
		prepview:       make(map[int]bool),
		oldStep:        map[int]map[vwKey]bool{1: {}, 2: {}, 3: {}},
		dec:            newDecider(rqs),
		suspectTimeout: elect.InitTimeout,
		nextView:       InitView,
		decisionFrom:   make(map[Value]core.Set),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	for s := 0; s < 2; s++ {
		a.updateview[s] = make(map[int]bool)
		a.updateQ[s] = make(map[int][]core.Set)
		a.updateproof[s] = make(map[int][]SignedUpdate)
		a.coll[s] = make(map[vwKey]*senderRec)
	}
	// Inert timer until armed.
	a.timer = time.NewTimer(time.Hour)
	if !a.timer.Stop() {
		<-a.timer.C
	}
	return a
}

// SetHooks installs the Byzantine fault-injection hooks. Must be
// called before Start (or before the first HandleEnvelope on an
// inline-driven acceptor).
func (a *Acceptor) SetHooks(h Hooks) { a.hooks = h }

// sendUpdates emits one update message to the update targets at the
// given hop depth: the batched broadcast on an honest acceptor, or a
// per-destination fan-out through the Byzantine hooks so the message
// can be forged or withheld differently per peer.
func (a *Acceptor) sendUpdates(m UpdateMsg, hop int) {
	targets := a.updTargets()
	if a.hooks.ForgeUpdate == nil && a.hooks.DropUpdate == nil {
		transport.BroadcastHop(a.port, targets, m, hop)
		return
	}
	for _, to := range targets.Members() {
		if a.hooks.DropUpdate != nil && a.hooks.DropUpdate(to, m) {
			continue
		}
		mm := m
		if a.hooks.ForgeUpdate != nil {
			mm = a.hooks.ForgeUpdate(to, mm)
		}
		a.port.SendHop(to, mm, hop)
	}
}

// sendDecision publishes a decision, per-destination when the forge
// hook is installed.
func (a *Acceptor) sendDecision(m DecisionMsg) {
	targets := a.updTargets()
	if a.hooks.ForgeDecision == nil {
		transport.Broadcast(a.port, targets, m)
		return
	}
	for _, to := range targets.Members() {
		a.port.Send(to, a.hooks.ForgeDecision(to, m))
	}
}

// Start launches the acceptor loop.
func (a *Acceptor) Start() { go a.run() }

// HandleEnvelope processes one incoming envelope synchronously, for
// hosts that drive many acceptors from a single goroutine (the smr
// replica pipelines all slots of a deployment this way). It must not
// be mixed with Start — the caller owns serialization — and the
// Election module must be disabled: its suspect timer only fires
// inside Start's loop. Stop is unnecessary for acceptors driven this
// way (there is no goroutine to stop).
func (a *Acceptor) HandleEnvelope(env transport.Envelope) { a.handle(env) }

// Stop terminates the loop and waits for exit. A durable acceptor's
// log is released after the loop drains.
func (a *Acceptor) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
	if a.wal != nil {
		a.wal.Close()
	}
}

// Decided returns the acceptor's decision, if any. Safe only after Stop.
func (a *Acceptor) Decided() (Value, bool) { return a.decidedVal, a.hasDecided }

func (a *Acceptor) run() {
	defer close(a.done)
	defer a.timer.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-a.timer.C:
			a.onSuspectTimeout()
			a.persistAndFlush()
		case env, ok := <-a.port.Inbox():
			if !ok {
				return
			}
			a.handle(env)
		}
	}
}

func (a *Acceptor) handle(env transport.Envelope) {
	a.dispatch(env)
	// Durable acceptors commit dirtied state before the event's sends
	// leave (write-ahead); volatile acceptors no-op here.
	a.persistAndFlush()
}

func (a *Acceptor) dispatch(env transport.Envelope) {
	switch m := env.Payload.(type) {
	case PrepareMsg:
		a.onPrepare(env, m)
	case UpdateMsg:
		a.onUpdate(env, m)
	case NewViewMsg:
		a.onNewView(env, m)
	case SignReq:
		a.onSignReq(env, m)
	case SignAck:
		a.onSignAck(m)
	case DecisionMsg:
		a.onDecision(env.From, m)
	case DecisionPullMsg:
		if a.hasDecided {
			a.port.Send(env.From, DecisionMsg{V: a.decidedVal})
		}
	case SyncMsg:
		a.armTimer()
	}
}

// updTargets is where update messages go: acceptors ∪ learners.
func (a *Acceptor) updTargets() core.Set {
	return a.topo.Acceptors.Union(a.topo.Learners)
}

// onPrepare is line 31-33 of Figure 15.
func (a *Acceptor) onPrepare(env transport.Envelope, m PrepareMsg) {
	a.armTimer() // Figure 14 line 0
	if m.View != a.view {
		return
	}
	// (w ∈ Prepview ⇒ w < view): must not have prepared in this view yet.
	for w := range a.prepview {
		if w >= a.view {
			return
		}
	}
	if a.view != InitView {
		if env.From != a.topo.Leader(a.view) {
			return
		}
		if !ValidateVProof(a.ring, a.rqs, a.view, m.VProof, m.Q) {
			return
		}
		res := Choose(a.rqs, a.elems, m.V, m.VProof, m.Q)
		if res.Abort || res.V != m.V {
			return
		}
	}
	// Line 32.
	if a.prep == m.V {
		a.prepview[a.view] = true
	} else {
		a.prep = m.V
		a.prepview = map[int]bool{a.view: true}
	}
	a.dirty = true
	// Line 33: echo update1.
	u := UpdateMsg{Step: 1, V: m.V, View: a.view}
	a.oldStep[1][vwKey{m.V, a.view}] = true
	a.sendUpdates(u, env.Hop+1)
	// The "upon received update_step from some quorum" guards of line 34
	// are standing rules: update messages that raced ahead of this
	// prepare may already satisfy them.
	a.evalTriggers(1, m.V, a.view)
	a.evalTriggers(2, m.V, a.view)
}

// onUpdate is lines 34-38 plus the decision rules (lines 51-53).
func (a *Acceptor) onUpdate(env transport.Envelope, m UpdateMsg) {
	if !a.topo.Acceptors.Contains(env.From) {
		return
	}
	a.dec.record(env.From, m, env.Hop)
	if !a.hasDecided {
		if d, ok := a.dec.check(); ok {
			a.decide(d.v)
		}
	}
	if m.Step != 1 && m.Step != 2 {
		return
	}
	// Track senders of update_step〈v, view〉 regardless of attached Q.
	k := vwKey{m.V, m.View}
	r := rec(a.coll[m.Step-1], k, a.rqs.Index())
	r.add(env.From, env.Hop)

	a.evalTriggers(m.Step, m.V, m.View)
}

// evalTriggers re-evaluates the standing guards of lines 34-38 for
// update_step〈v, view〉: if v is prepared in the current view and a quorum
// of step messages has been collected, perform the step-update and emit
// the next update message.
func (a *Acceptor) evalTriggers(step int, v Value, view int) {
	if view != a.view || a.prep != v || !a.prepview[view] {
		return
	}
	k := vwKey{v, view}
	r, ok := a.coll[step-1][k]
	if !ok {
		return
	}
	switch step {
	case 1:
		for _, q := range r.tr.ContainedAll(core.Class3) {
			if hasQuorum(a.updateQ[0][view], q) {
				continue
			}
			a.applyUpdate(0, v, view)
			a.updateQ[0][view] = append(a.updateQ[0][view], q)
			next := UpdateMsg{Step: 2, V: v, View: view, Q: q}
			a.oldStep[2][k] = true
			a.sendUpdates(next, r.maxHopOver(q)+1)
		}
	case 2:
		if len(a.updateQ[1][view]) > 0 {
			return
		}
		if q, ok := r.tr.Contained(core.Class3); ok {
			a.applyUpdate(1, v, view)
			a.updateQ[1][view] = append(a.updateQ[1][view], q)
			next := UpdateMsg{Step: 3, V: v, View: view, Q: q}
			a.oldStep[3][k] = true
			a.sendUpdates(next, r.maxHopOver(q)+1)
		}
	}
}

// applyUpdate is lines 34-35: adopt v as the step-updated value.
func (a *Acceptor) applyUpdate(step int, v Value, view int) {
	a.dirty = true
	if a.update[step] == v {
		a.updateview[step][view] = true
		return
	}
	a.update[step] = v
	a.updateview[step] = map[int]bool{view: true}
	a.updateQ[step] = make(map[int][]core.Set)
	a.updateproof[step] = make(map[int][]SignedUpdate)
}

func (a *Acceptor) decide(v Value) {
	a.hasDecided = true
	a.decidedVal = v
	a.dirty = true
	// Figure 14 line 7: publish the decision to the acceptors (and, so
	// pulls converge faster, to the learners).
	a.sendDecision(DecisionMsg{V: v})
}

// onNewView is lines 21-28 of Figure 15.
func (a *Acceptor) onNewView(env transport.Envelope, m NewViewMsg) {
	a.armTimer()
	if m.View <= a.view {
		return
	}
	if env.From != a.topo.Leader(m.View) {
		return
	}
	if !a.viewProofValid(m.View, m.ViewProof) {
		return
	}
	a.view = m.View
	a.dirty = true
	// Lines 23-27: gather countersignatures for every unproven update.
	a.pendingTo = env.From
	a.pendingActive = true
	a.pendingNeeded = make(map[[2]int]bool)
	for s := 0; s < 2; s++ {
		for w := range a.updateview[s] {
			if len(a.updateproof[s][w]) == 0 {
				a.pendingNeeded[[2]int{s, w}] = true
				req := SignReq{V: a.update[s], View: w, Step: s + 1}
				targets := a.topo.Acceptors
				if qs := a.updateQ[s][w]; len(qs) > 0 {
					targets = qs[0]
				}
				transport.Broadcast(a.port, targets, req)
			}
		}
	}
	a.maybeSendAck()
}

// viewProofValid checks a quorum of valid signed view_change〈view〉.
func (a *Acceptor) viewProofValid(view int, proof []SignedViewChange) bool {
	var signers core.Set
	for _, vc := range proof {
		if vc.Body.NextView == view && a.ring.VerifyViewChange(vc) {
			signers = signers.Add(vc.Acceptor)
		}
	}
	_, ok := a.rqs.ContainedQuorum(signers, core.Class3)
	return ok
}

// onSignReq is line 29: countersign an update message this acceptor
// really sent.
func (a *Acceptor) onSignReq(env transport.Envelope, m SignReq) {
	if m.Step < 1 || m.Step > 3 {
		return
	}
	if !a.oldStep[m.Step][vwKey{m.V, m.View}] {
		return
	}
	msg := UpdateMsg{Step: m.Step, V: m.V, View: m.View}
	su := SignedUpdate{Msg: msg, Signer: a.id, Sig: a.signer.Sign(msg.signingBody())}
	a.port.Send(env.From, SignAck{Update: su})
}

// onSignAck is lines 26-27: collect countersignatures until each needed
// (step, view) has a basic subset of them, then release the new_view_ack.
func (a *Acceptor) onSignAck(m SignAck) {
	if !a.pendingActive {
		return
	}
	su := m.Update
	s := su.Msg.Step - 1
	if s < 0 || s > 1 {
		return
	}
	key := [2]int{s, su.Msg.View}
	if !a.pendingNeeded[key] {
		return
	}
	if su.Msg.V != a.update[s] || !a.ring.VerifyUpdate(su) {
		return
	}
	// Deduplicate signers.
	for _, have := range a.updateproof[s][su.Msg.View] {
		if have.Signer == su.Signer {
			return
		}
	}
	a.updateproof[s][su.Msg.View] = append(a.updateproof[s][su.Msg.View], su)
	var signers core.Set
	for _, have := range a.updateproof[s][su.Msg.View] {
		signers = signers.Add(have.Signer)
	}
	if core.IsBasic(signers, a.rqs.Adversary()) {
		delete(a.pendingNeeded, key)
		a.maybeSendAck()
	}
}

func (a *Acceptor) maybeSendAck() {
	if !a.pendingActive || len(a.pendingNeeded) > 0 {
		return
	}
	a.pendingActive = false
	body := AckBody{
		View:   a.view,
		Prep:   a.prep,
		Update: a.update,
	}
	body.Prepview = sortedViews(a.prepview)
	for s := 0; s < 2; s++ {
		body.Updateview[s] = sortedViews(a.updateview[s])
		body.UpdateQ[s] = copyQMap(a.updateQ[s])
		body.Updateproof[s] = copyProofMap(a.updateproof[s])
	}
	ack := NewViewAck{Acceptor: a.id, Body: body, Sig: a.signer.Sign(body.signingBody())}
	a.port.Send(a.pendingTo, ack)
}

// onDecision is Figure 14 line 8 (stop suspecting after a decided
// quorum) and also lets an undecided acceptor adopt a decision certified
// by a basic subset.
func (a *Acceptor) onDecision(from core.ProcessID, m DecisionMsg) {
	if !a.topo.Acceptors.Contains(from) {
		return
	}
	a.decisionFrom[m.V] = a.decisionFrom[m.V].Add(from)
	if _, ok := a.rqs.ContainedQuorum(a.decisionFrom[m.V], core.Class3); ok {
		a.timerStopped = true
		a.timer.Stop()
	}
	if !a.hasDecided && core.IsBasic(a.decisionFrom[m.V], a.rqs.Adversary()) {
		a.decide(m.V)
	}
}

// Election module (Figure 14).

func (a *Acceptor) armTimer() {
	if !a.elect.Enabled || a.timerRunning || a.timerStopped {
		return
	}
	a.timerRunning = true
	a.timer.Reset(a.suspectTimeout)
}

func (a *Acceptor) onSuspectTimeout() {
	if a.timerStopped || !a.elect.Enabled {
		return
	}
	a.suspectTimeout *= 2
	a.nextView++
	body := ViewChangeBody{NextView: a.nextView}
	vc := SignedViewChange{Acceptor: a.id, Body: body, Sig: a.signer.Sign(body.signingBody())}
	a.port.Send(a.topo.Leader(a.nextView), vc)
	a.timer.Reset(a.suspectTimeout)
}

func sortedViews(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for w := range m {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

func copyQMap(m map[int][]core.Set) map[int][]core.Set {
	out := make(map[int][]core.Set, len(m))
	for w, qs := range m {
		out[w] = append([]core.Set(nil), qs...)
	}
	return out
}

func copyProofMap(m map[int][]SignedUpdate) map[int][]SignedUpdate {
	out := make(map[int][]SignedUpdate, len(m))
	for w, ps := range m {
		out[w] = append([]SignedUpdate(nil), ps...)
	}
	return out
}
