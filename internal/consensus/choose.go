package consensus

import (
	"repro/internal/core"
)

// VProof is the array of new_view_ack messages received from the quorum
// Q, keyed by acceptor (Figure 12 line 5).
type VProof map[core.ProcessID]NewViewAck

// ChooseResult is the outcome of the choose() function.
type ChooseResult struct {
	V     Value
	Abort bool
}

// Choose implements the choose() function of Figure 13. It is exported at
// package level (rather than buried in the proposer) because the paper's
// safety argument — and the Theorem 6 lower-bound experiment — live
// entirely inside it: given a valid vProof from quorum q, Choose must
// return any value already decided in an earlier view, or abort (which,
// by Lemma 28, implies q contains a Byzantine acceptor).
//
// advElems must be the full enumeration core.Elements(rqs.Adversary()):
// the ∃B quantifiers of Cand2/Cand3 are not monotone in B.
func Choose(rqs *core.RQS, advElems []core.Set, vDefault Value, vProof VProof, q core.Set) ChooseResult {
	c := chooser{rqs: rqs, elems: advElems, vProof: vProof, q: q}

	type cand struct {
		v Value
		w int
	}
	// Lines 11-12: gather every candidate (value, view) pair and the
	// maximal candidate view. Values and views range over what the acks
	// mention.
	var cands []cand
	viewmax := -1
	for _, v := range c.values() {
		for _, w := range c.views() {
			if c.cand2(v, w) || c.cand3(v, w, p3a) || c.cand3(v, w, p3b) || c.cand4(v, w) {
				cands = append(cands, cand{v, w})
				if w > viewmax {
					viewmax = w
				}
			}
		}
	}
	if len(cands) == 0 {
		// Line 21: no candidate; keep the proposer's own value.
		return ChooseResult{V: vDefault}
	}

	// Line 13-14: a 3a- or 4-candidate at viewmax wins outright.
	for _, cd := range cands {
		if cd.w != viewmax {
			continue
		}
		if c.cand3(cd.v, viewmax, p3a) || c.cand4(cd.v, viewmax) {
			return ChooseResult{V: cd.v}
		}
	}

	// Lines 15-16: two distinct 3b-candidates ⇒ Byzantine quorum; abort.
	var b3 []Value
	seen := map[Value]bool{}
	for _, cd := range cands {
		if cd.w == viewmax && !seen[cd.v] && c.cand3(cd.v, viewmax, p3b) {
			seen[cd.v] = true
			b3 = append(b3, cd.v)
		}
	}
	if len(b3) >= 2 {
		return ChooseResult{Abort: true}
	}

	// Lines 17-19: a single 3b-candidate must also be Valid3.
	if len(b3) == 1 {
		if c.valid3(b3[0], viewmax) {
			return ChooseResult{V: b3[0]}
		}
		return ChooseResult{Abort: true}
	}

	// Line 20: fall back to the (unique, Lemma 22) 2-candidate.
	for _, cd := range cands {
		if cd.w == viewmax && c.cand2(cd.v, viewmax) {
			return ChooseResult{V: cd.v}
		}
	}
	return ChooseResult{V: vDefault}
}

// p3char selects between the P3a and P3b disjuncts.
type p3char int

const (
	p3a p3char = iota + 1
	p3b
)

type chooser struct {
	rqs    *core.RQS
	elems  []core.Set
	vProof VProof
	q      core.Set
}

// values collects every value mentioned anywhere in the proof.
func (c *chooser) values() []Value {
	seen := map[Value]bool{}
	var out []Value
	add := func(v Value) {
		if v != None && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, ack := range c.vProof {
		add(ack.Body.Prep)
		add(ack.Body.Update[0])
		add(ack.Body.Update[1])
	}
	return out
}

// views collects every view mentioned anywhere in the proof.
func (c *chooser) views() []int {
	seen := map[int]bool{}
	var out []int
	add := func(w int) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for _, ack := range c.vProof {
		for _, w := range ack.Body.Prepview {
			add(w)
		}
		for s := 0; s < 2; s++ {
			for _, w := range ack.Body.Updateview[s] {
				add(w)
			}
		}
	}
	return out
}

func hasView(views []int, w int) bool {
	for _, x := range views {
		if x == w {
			return true
		}
	}
	return false
}

func hasQuorum(sets []core.Set, q core.Set) bool {
	for _, x := range sets {
		if x == q {
			return true
		}
	}
	return false
}

// cand2 is Cand2(v, w) (line 1): some class-1 quorum minus some adversary
// set unanimously reports having prepared v in w.
func (c *chooser) cand2(v Value, w int) bool {
	for _, q1 := range c.rqs.QuorumsOfClass(core.Class1) {
		for _, b := range c.elems {
			ok := true
			for _, aj := range q1.Intersect(c.q).Diff(b).Members() {
				ack, present := c.vProof[aj]
				if !present || ack.Body.Prep != v || !hasView(ack.Body.Prepview, w) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// c3 is C3(v, w, char, Q2, B) (line 2): P3char(Q2, Q, B) holds and every
// acceptor of Q2 ∩ Q \ B reports having 1-updated v in w with Q2.
func (c *chooser) c3(v Value, w int, char p3char, q2, b core.Set) bool {
	switch char {
	case p3a:
		if !c.rqs.P3a(q2, c.q, b) {
			return false
		}
	case p3b:
		if !c.rqs.P3b(q2, c.q, b) {
			return false
		}
	}
	for _, aj := range q2.Intersect(c.q).Diff(b).Members() {
		ack, present := c.vProof[aj]
		if !present ||
			ack.Body.Update[0] != v ||
			!hasView(ack.Body.Updateview[0], w) ||
			!hasQuorum(ack.Body.UpdateQ[0][w], q2) {
			return false
		}
	}
	return true
}

// cand3 is Cand3(v, w, char) (line 3).
func (c *chooser) cand3(v Value, w int, char p3char) bool {
	for _, q2 := range c.rqs.QuorumsOfClass(core.Class2) {
		for _, b := range c.elems {
			if c.c3(v, w, char, q2, b) {
				return true
			}
		}
	}
	return false
}

// valid3 is Valid3(v, w, 'b') (line 4): wherever C3 holds, every acceptor
// of Q2 ∩ Q either confirms preparing v in w, or has moved entirely past
// view w.
func (c *chooser) valid3(v Value, w int) bool {
	for _, q2 := range c.rqs.QuorumsOfClass(core.Class2) {
		for _, b := range c.elems {
			if !c.c3(v, w, p3b, q2, b) {
				continue
			}
			for _, aj := range q2.Intersect(c.q).Members() {
				ack, present := c.vProof[aj]
				if !present {
					continue
				}
				confirms := ack.Body.Prep == v && hasView(ack.Body.Prepview, w)
				movedOn := true
				for _, wp := range ack.Body.Prepview {
					if wp <= w {
						movedOn = false
						break
					}
				}
				if !confirms && !movedOn {
					return false
				}
			}
		}
	}
	return true
}

// cand4 is Cand4(v, w) (line 5): some acceptor reports having 2-updated v
// in w.
func (c *chooser) cand4(v Value, w int) bool {
	for _, aj := range c.q.Members() {
		ack, present := c.vProof[aj]
		if present && ack.Body.Update[1] == v && hasView(ack.Body.Updateview[1], w) {
			return true
		}
	}
	return false
}

// ValidateVProof checks the line-4 validity of the acks from quorum q:
// every acceptor of q contributed a correctly signed ack for view, and
// every claimed update is certified by countersignatures from a basic
// subset of acceptors.
func ValidateVProof(ring *Keyring, rqs *core.RQS, view int, vProof VProof, q core.Set) bool {
	for _, aj := range q.Members() {
		ack, present := vProof[aj]
		if !present || ack.Acceptor != aj || ack.Body.View != view {
			return false
		}
		if !ring.VerifyAck(ack) {
			return false
		}
		for s := 0; s < 2; s++ {
			for _, w := range ack.Body.Updateview[s] {
				if !validUpdateProof(ring, rqs, ack.Body.Update[s], w, s+1, ack.Body.Updateproof[s][w]) {
					return false
				}
			}
		}
	}
	return true
}

// validUpdateProof checks that the countersignatures cover a basic subset
// of acceptors, each over update_step〈v, w〉.
func validUpdateProof(ring *Keyring, rqs *core.RQS, v Value, w, step int, sigs []SignedUpdate) bool {
	var signers core.Set
	for _, su := range sigs {
		if su.Msg.Step != step || su.Msg.V != v || su.Msg.View != w {
			continue
		}
		if !ring.VerifyUpdate(su) {
			continue
		}
		signers = signers.Add(su.Signer)
	}
	return core.IsBasic(signers, rqs.Adversary())
}
