package consensus

import (
	"testing"

	"repro/internal/core"
)

// chooseEnv bundles a keyring-free test harness for Choose: the acks are
// constructed directly (Choose itself never checks signatures — that is
// ValidateVProof's job, tested separately).
type chooseEnv struct {
	rqs   *core.RQS
	elems []core.Set
	q     core.Set
}

func newChooseEnv(rqs *core.RQS, q core.Set) *chooseEnv {
	return &chooseEnv{rqs: rqs, elems: core.Elements(rqs.Adversary()), q: q}
}

func (e *chooseEnv) choose(def Value, vp VProof) ChooseResult {
	return Choose(e.rqs, e.elems, def, vp, e.q)
}

func ack(id core.ProcessID, body AckBody) NewViewAck {
	return NewViewAck{Acceptor: id, Body: body}
}

func prepAck(id core.ProcessID, v Value, views ...int) NewViewAck {
	return ack(id, AckBody{View: 1, Prep: v, Prepview: views})
}

func TestChooseNoCandidatesKeepsDefault(t *testing.T) {
	r := core.Example7RQS()
	q := core.NewSet(0, 1, 2, 3, 4)
	e := newChooseEnv(r, q)
	vp := VProof{}
	for _, id := range q.Members() {
		vp[id] = ack(id, AckBody{View: 1})
	}
	res := e.choose("mine", vp)
	if res.Abort || res.V != "mine" {
		t.Errorf("choose = %+v, want default value", res)
	}
}

func TestChooseCand2LocksDecidedValue(t *testing.T) {
	// All acceptors of Q1 ∩ Q prepared v in view 0 — a Decide-2 may have
	// happened; choose must return v.
	r := core.Example7RQS()
	q := core.NewSet(0, 1, 2, 3, 4) // Q2
	e := newChooseEnv(r, q)
	vp := VProof{}
	for _, id := range q.Members() {
		vp[id] = prepAck(id, "v", 0)
	}
	res := e.choose("other", vp)
	if res.Abort || res.V != "v" {
		t.Errorf("choose = %+v, want v", res)
	}
}

func TestChooseCand4Wins(t *testing.T) {
	// One acceptor 2-updated w in a higher view than an old prepared
	// value: Cand4 at viewmax wins (line 14).
	r := core.Example7RQS()
	q := core.NewSet(0, 1, 2, 3, 4)
	e := newChooseEnv(r, q)
	vp := VProof{}
	for _, id := range q.Members() {
		vp[id] = prepAck(id, "old", 0)
	}
	body := AckBody{View: 2, Prep: "new", Prepview: []int{1}}
	body.Update[1] = "new"
	body.Updateview[1] = []int{1}
	vp[1] = ack(1, body)
	res := e.choose("def", vp)
	if res.Abort || res.V != "new" {
		t.Errorf("choose = %+v, want new (Cand4 at viewmax)", res)
	}
}

func TestChooseHigherViewShadowsLower(t *testing.T) {
	// A full Cand2 at view 3 must beat a full Cand2 at view 1. Build
	// acks where every acceptor prepared "a" in view 1, then "b" in 3.
	r := core.Example7RQS()
	q := core.NewSet(0, 1, 2, 3, 4)
	e := newChooseEnv(r, q)
	vp := VProof{}
	for _, id := range q.Members() {
		vp[id] = prepAck(id, "b", 3)
	}
	// One stale acceptor still on "a" in view 1.
	vp[0] = prepAck(0, "a", 1)
	res := e.choose("def", vp)
	if res.Abort || res.V != "b" {
		t.Errorf("choose = %+v, want b", res)
	}
}

func TestChooseTwoThreeBCandidatesAborts(t *testing.T) {
	// Two distinct values both satisfying Cand3(·, w, 'b') can only come
	// from a Byzantine quorum: line 16 aborts. Geometry: consult quorum
	// Q = Q2' = {s1..s4,s6}; the pair {s1,s2} ∈ B claims it 1-updated
	// "y" with Q2, the pair {s3,s4} ∈ B claims "x". For each claim the
	// non-claimants of Q2 ∩ Q2' are exactly the other Byzantine pair, so
	// P3a fails and P3b holds — both are pure 3b candidates.
	r := core.Example7RQS()
	q := core.NewSet(0, 1, 2, 3, 5)  // Q2'
	q2 := core.NewSet(0, 1, 2, 3, 4) // Q2, the claimed 1-update quorum
	e := newChooseEnv(r, q)
	mk := func(id core.ProcessID, v Value) NewViewAck {
		body := AckBody{View: 1, Prep: v, Prepview: []int{0}}
		body.Update[0] = v
		body.Updateview[0] = []int{0}
		body.UpdateQ[0] = map[int][]core.Set{0: {q2}}
		return ack(id, body)
	}
	vp := VProof{
		0: mk(0, "y"), 1: mk(1, "y"),
		2: mk(2, "x"), 3: mk(3, "x"),
		5: ack(5, AckBody{View: 1}),
	}
	res := e.choose("def", vp)
	if !res.Abort {
		t.Errorf("choose = %+v, want abort (two 3b candidates)", res)
	}
}

func TestValidateVProofRejectsBadCertificates(t *testing.T) {
	r := core.Example7RQS()
	ring, signers, err := GenKeys(r.Universe())
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewSet(0, 1, 2, 3, 4)

	mkAck := func(id core.ProcessID, tamper func(*AckBody), badSig bool) NewViewAck {
		body := AckBody{View: 1, Prep: "v", Prepview: []int{0}}
		if tamper != nil {
			tamper(&body)
		}
		a := NewViewAck{Acceptor: id, Body: body, Sig: signers[id].SignAckBody(body)}
		if badSig {
			a.Sig = append([]byte(nil), a.Sig...)
			a.Sig[0] ^= 0xff
		}
		return a
	}
	full := func(mod func(vp VProof)) VProof {
		vp := VProof{}
		for _, id := range q.Members() {
			vp[id] = mkAck(id, nil, false)
		}
		if mod != nil {
			mod(vp)
		}
		return vp
	}

	if !ValidateVProof(ring, r, 1, full(nil), q) {
		t.Fatal("clean vProof should validate")
	}
	if ValidateVProof(ring, r, 1, full(func(vp VProof) { delete(vp, 2) }), q) {
		t.Error("missing ack should invalidate")
	}
	if ValidateVProof(ring, r, 1, full(func(vp VProof) { vp[2] = mkAck(2, nil, true) }), q) {
		t.Error("bad signature should invalidate")
	}
	if ValidateVProof(ring, r, 2, full(nil), q) {
		t.Error("wrong view should invalidate")
	}
	// An update claim without a basic-subset certificate must fail.
	if ValidateVProof(ring, r, 1, full(func(vp VProof) {
		vp[2] = mkAck(2, func(b *AckBody) {
			b.Update[0] = "v"
			b.Updateview[0] = []int{0}
			b.Updateproof[0] = map[int][]SignedUpdate{0: {signers[2].SignUpdate(1, "v", 0)}}
		}, false)
	}), q) {
		t.Error("single-signer certificate ({s3} ∈ B) should invalidate")
	}
	// The same claim with a basic subset of correct countersignatures
	// passes.
	if !ValidateVProof(ring, r, 1, full(func(vp VProof) {
		vp[2] = mkAck(2, func(b *AckBody) {
			b.Update[0] = "v"
			b.Updateview[0] = []int{0}
			b.Updateproof[0] = map[int][]SignedUpdate{0: {
				signers[0].SignUpdate(1, "v", 0),
				signers[1].SignUpdate(1, "v", 0),
				signers[2].SignUpdate(1, "v", 0),
			}}
		}, false)
	}), q) {
		t.Error("basic-subset certificate should validate")
	}
}

func TestKeyringVerification(t *testing.T) {
	r := core.Example7RQS()
	ring, signers, err := GenKeys(r.Universe())
	if err != nil {
		t.Fatal(err)
	}
	su := signers[0].SignUpdate(1, "v", 3)
	if !ring.VerifyUpdate(su) {
		t.Error("genuine countersignature rejected")
	}
	su.Msg.V = "tampered"
	if ring.VerifyUpdate(su) {
		t.Error("tampered countersignature accepted")
	}
	body := ViewChangeBody{NextView: 2}
	vc := SignedViewChange{Acceptor: 1, Body: body, Sig: signers[1].Sign(body.signingBody())}
	if !ring.VerifyViewChange(vc) {
		t.Error("genuine view change rejected")
	}
	vc.Acceptor = 2
	if ring.VerifyViewChange(vc) {
		t.Error("misattributed view change accepted")
	}
	if ring.Verify(99, []byte("x"), []byte("y")) {
		t.Error("unknown signer accepted")
	}
}
