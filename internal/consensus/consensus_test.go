package consensus_test

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/transport"
)

func threshold8(t *testing.T) *core.RQS {
	t.Helper()
	r, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func waitAll(t *testing.T, c *sim.ConsensusCluster, want consensus.Value, wantHops int) {
	t.Helper()
	for i, l := range c.Learners {
		res, ok := l.Wait(5 * time.Second)
		if !ok {
			t.Fatalf("learner %d did not learn", i)
		}
		if res.V != want {
			t.Fatalf("learner %d learned %q, want %q", i, res.V, want)
		}
		if wantHops > 0 && res.Hops != wantHops {
			t.Errorf("learner %d learned in %d message delays, want %d", i, res.Hops, wantHops)
		}
	}
}

func TestBestCaseTwoDelaysClass1(t *testing.T) {
	c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Proposers[0].Propose("v")
	waitAll(t, c, "v", 2)
}

func TestBestCaseLatenciesByClass(t *testing.T) {
	// Definition 4 / the (m, QCm)-fast claim: learners learn in m+1
	// message delays when a class-m quorum of correct acceptors is
	// available.
	tests := []struct {
		name     string
		crash    core.Set
		wantHops int
	}{
		{"class1 all alive", core.EmptySet, 2},
		{"class2 two crashed", core.NewSet(6, 7), 3},
		{"class3 three crashed", core.NewSet(5, 6, 7), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := sim.NewConsensusCluster(threshold8(t), sim.ConsensusOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			c.CrashAcceptors(tt.crash)
			c.Proposers[0].Propose("x")
			waitAll(t, c, "x", tt.wantHops)
		})
	}
}

func TestAcceptorsAlsoDecide(t *testing.T) {
	c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Proposers[0].Propose("v")
	waitAll(t, c, "v", 0)
	// Learners race slightly ahead of acceptors on the same update
	// stream; let the acceptors drain their inboxes before stopping.
	time.Sleep(200 * time.Millisecond)
	c.Stop()
	for i, a := range c.Acceptors {
		if v, ok := a.Decided(); !ok || v != "v" {
			t.Errorf("acceptor %d decided (%q, %v), want (v, true)", i, v, ok)
		}
	}
}

func TestContentionResolvedByViewChange(t *testing.T) {
	// Two proposers propose different values concurrently in view 0 —
	// the split prevents a view-0 decision in general, and the Election
	// module must converge to a single learned value. Agreement between
	// all learners is the assertion.
	c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{
		Election:  consensus.ElectionConfig{Enabled: true, InitTimeout: 40 * time.Millisecond},
		PullEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Proposers[0].Propose("zero")
	c.Proposers[1].Propose("one")

	var learned consensus.Value
	for i, l := range c.Learners {
		res, ok := l.Wait(10 * time.Second)
		if !ok {
			t.Fatalf("learner %d did not learn under contention", i)
		}
		if res.V != "zero" && res.V != "one" {
			t.Fatalf("learner %d learned %q: validity violated", i, res.V)
		}
		if learned == consensus.None {
			learned = res.V
		} else if res.V != learned {
			t.Fatalf("agreement violated: %q vs %q", res.V, learned)
		}
	}
}

func TestViewChangeAfterInitialLeaderMute(t *testing.T) {
	// The initial proposer's prepares are all lost; only its sync gets
	// through, arming the election timers. The elected view-1 leader
	// (proposer 1) finishes the job with its own value.
	c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{
		Election:  consensus.ElectionConfig{Enabled: true, InitTimeout: 30 * time.Millisecond},
		PullEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	p0 := c.Topo.Proposers[0]
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		if env.From == p0 {
			if _, isPrepare := env.Payload.(consensus.PrepareMsg); isPrepare {
				return transport.Drop
			}
		}
		return transport.Deliver
	})
	c.Proposers[0].Propose("lost")
	c.Proposers[1].Propose("backup")
	waitAll(t, c, "backup", 0)
}

func TestLateLearnerCatchesUpViaDecisionPull(t *testing.T) {
	// All update messages to learner 2 are dropped; it must still learn
	// through decision-pull gossip (Figure 15 lines 101-103).
	c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{
		PullEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	lateLearner := c.Topo.Learners.Members()[2]
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		if env.To == lateLearner {
			if _, isUpd := env.Payload.(consensus.UpdateMsg); isUpd {
				return transport.Drop
			}
		}
		return transport.Deliver
	})
	c.Proposers[0].Propose("v")
	for i, l := range c.Learners {
		res, ok := l.Wait(5 * time.Second)
		if !ok {
			t.Fatalf("learner %d did not learn", i)
		}
		if res.V != "v" {
			t.Fatalf("learner %d learned %q", i, res.V)
		}
		if i == 2 && res.Hops != -1 {
			t.Errorf("late learner should learn via decisions (hops -1), got %d", res.Hops)
		}
	}
}

func TestSequentialProposalAfterCrash(t *testing.T) {
	// Crash two acceptors before proposing: class-2 path, still one
	// view, all learners agree.
	c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.CrashAcceptors(core.NewSet(5)) // s6: leaves Q2 = {s1..s5} correct
	c.Proposers[0].Propose("v")
	waitAll(t, c, "v", 3)
}
