package consensus

import (
	"repro/internal/core"
)

// Topology names the three process roles of the framework (Section 4.1):
// acceptors form the RQS universe; proposers and learners are disjoint
// from them.
type Topology struct {
	Acceptors core.Set
	Proposers []core.ProcessID
	Learners  core.Set
}

// Leader returns the leader of a view: proposers[view mod |proposers|].
func (t Topology) Leader(view int) core.ProcessID {
	return t.Proposers[view%len(t.Proposers)]
}

// decider tracks received update messages and fires the decision rules of
// lines 51-53 (Figure 10), shared by acceptors and learners:
//
//	update1〈v, view, *〉 from a class-1 quorum → decide v (2 delays)
//	update2〈v, view, Q2〉 from exactly Q2 ∈ QC2 → decide v (3 delays)
//	update3〈v, view, *〉 from any quorum       → decide v (4 delays)
//
// Quorum containment is tracked incrementally per (value, view) key, so
// each received update costs O(quorums-containing-sender) instead of a
// rescan of the quorum list.
type decider struct {
	rqs *core.RQS
	idx *core.QuorumIndex
	// senders[step][key] records who sent which update and at what hop.
	upd1 map[vwKey]*senderRec
	upd2 map[vwqKey]*senderRec
	upd3 map[vwKey]*senderRec
}

type vwKey struct {
	v Value
	w int
}

type vwqKey struct {
	v Value
	w int
	q core.Set
}

// senderRec records who sent one particular update message. Tracker-
// backed records (upd1/upd3) keep the responded set inside the tracker;
// tracker-less ones (upd2, which only needs an O(1) subset test against
// the named quorum) keep it in set.
type senderRec struct {
	set  core.Set
	tr   *core.QuorumTracker // nil when containment isn't needed (upd2)
	hops map[core.ProcessID]int
}

func newDecider(rqs *core.RQS) decider {
	return decider{
		rqs:  rqs,
		idx:  rqs.Index(),
		upd1: make(map[vwKey]*senderRec),
		upd2: make(map[vwqKey]*senderRec),
		upd3: make(map[vwKey]*senderRec),
	}
}

func (r *senderRec) add(from core.ProcessID, hop int) {
	if r.tr != nil {
		r.tr.Add(from)
	} else {
		r.set = r.set.Add(from)
	}
	if h, ok := r.hops[from]; !ok || hop < h {
		r.hops[from] = hop
	}
}

// maxHopOver returns the largest hop among members of q: the message
// delay at which the triggering quorum completed.
func (r *senderRec) maxHopOver(q core.Set) int {
	hop := 0
	for _, id := range q.Members() {
		if h, ok := r.hops[id]; ok && h > hop {
			hop = h
		}
	}
	return hop
}

// rec returns the record for k, creating it with a quorum tracker over
// idx if absent.
func rec(m map[vwKey]*senderRec, k vwKey, idx *core.QuorumIndex) *senderRec {
	r, ok := m[k]
	if !ok {
		r = &senderRec{tr: idx.NewTracker(), hops: make(map[core.ProcessID]int)}
		m[k] = r
	}
	return r
}

// record notes an update message from an acceptor. Messages from
// processes outside the acceptor set are ignored.
func (d *decider) record(from core.ProcessID, m UpdateMsg, hop int) {
	if !d.rqs.Universe().Contains(from) {
		return
	}
	switch m.Step {
	case 1:
		rec(d.upd1, vwKey{m.V, m.View}, d.idx).add(from, hop)
	case 2:
		// The rule only ever asks whether the named Q2 itself is covered,
		// an O(1) subset test; no tracker needed.
		k := vwqKey{m.V, m.View, m.Q}
		r, ok := d.upd2[k]
		if !ok {
			r = &senderRec{hops: make(map[core.ProcessID]int)}
			d.upd2[k] = r
		}
		r.add(from, hop)
	case 3:
		rec(d.upd3, vwKey{m.V, m.View}, d.idx).add(from, hop)
	}
}

// decision is a fired decision with its message-delay depth.
type decision struct {
	v    Value
	hops int
}

// check evaluates the three decision rules and returns the first that
// fires.
func (d *decider) check() (decision, bool) {
	// Line 51: same update1 from a class-1 quorum.
	for k, r := range d.upd1 {
		if q, ok := r.tr.Contained(core.Class1); ok {
			return decision{v: k.v, hops: r.maxHopOver(q)}, true
		}
	}
	// Line 52: same update2〈v, view, Q2〉 from exactly the class-2 quorum
	// Q2 named in the message.
	for k, r := range d.upd2 {
		if cls, listed := d.idx.ClassOf(k.q); listed && cls <= core.Class2 && k.q.SubsetOf(r.set) {
			return decision{v: k.v, hops: r.maxHopOver(k.q)}, true
		}
	}
	// Line 53: same update3 from any quorum.
	for k, r := range d.upd3 {
		if q, ok := r.tr.Contained(core.Class3); ok {
			return decision{v: k.v, hops: r.maxHopOver(q)}, true
		}
	}
	return decision{}, false
}
