package consensus

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Durability layer of the acceptor: a wal.Log under the promise/accept
// state of Figure 15. Consensus safety rests on an acceptor never
// forgetting a promise it echoed — if prep/update state evaporates in
// a kill -9, a recovered acceptor can help a later view decide a
// conflicting value. The rule here is therefore write-ahead in the
// strict sense: every outgoing message a handler produces is deferred
// (queued on a port wrapper) until the state that message vouches for
// has been fsynced; if the log fails, the queued messages are dropped
// and the acceptor goes mute, which is indistinguishable from a crash
// and always safe.
//
// Each record is the complete AcceptorState (it is a few hundred bytes
// — view numbers, one value per step, view sets), so replay keeps only
// the last record and compaction is trivial: the newest record IS the
// snapshot. Not persisted, deliberately:
//   - oldStep (which update messages were sent): forgetting it only
//     makes the recovered acceptor refuse to countersign old updates
//     (onSignReq), which errs on the safe, mute side.
//   - updateQ / updateproof / coll: quorum bookkeeping and signature
//     sets that peers re-supply; losing them costs extra round trips
//     after a new-view, never safety.
//   - election timers/backoff: liveness state, re-armed on traffic.

// AcceptorState is the durable promise/accept state of one acceptor:
// everything the safety argument requires a recovering acceptor to
// remember.
type AcceptorState struct {
	View       int
	Prep       Value
	Prepview   []int
	Update     [2]Value
	Updateview [2][]int
	Decided    bool
	DecidedVal Value
}

var registerConsensusWALOnce sync.Once

func registerConsensusWALTypes() {
	registerConsensusWALOnce.Do(func() { transport.Register(AcceptorState{}) })
}

// NewDurableAcceptor builds an acceptor whose promise/accept state is
// backed by a write-ahead log in dir, recovering any state a previous
// incarnation committed there. Outgoing messages are deferred until
// the state they witness is durable.
func NewDurableAcceptor(rqs *core.RQS, topo Topology, port transport.Port, ring *Keyring, signer *Signer, elect ElectionConfig, dir string) (*Acceptor, error) {
	registerConsensusWALTypes()
	dp := &deferPort{inner: port}
	a := NewAcceptor(rqs, topo, dp, ring, signer, elect)
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	restore := func(b []byte) error {
		m, err := transport.DecodeMessage(b)
		if err != nil {
			return err
		}
		st, ok := m.(AcceptorState)
		if !ok {
			return fmt.Errorf("consensus: wal record holds %T, want AcceptorState", m)
		}
		a.restoreState(st) // last record wins
		return nil
	}
	if err := l.Replay(restore, restore); err != nil {
		l.Close()
		return nil, err
	}
	a.wal = l
	a.dp = dp
	a.maxSegments = 4
	return a, nil
}

// PersistentState captures the durable slice of the acceptor's state.
// It is what each WAL record holds; exported for recovery assertions
// in tests. Safe only from the acceptor's own goroutine (or before
// Start / after Stop).
func (a *Acceptor) PersistentState() AcceptorState {
	st := AcceptorState{
		View:       a.view,
		Prep:       a.prep,
		Prepview:   sortedViews(a.prepview),
		Update:     a.update,
		Decided:    a.hasDecided,
		DecidedVal: a.decidedVal,
	}
	for s := 0; s < 2; s++ {
		st.Updateview[s] = sortedViews(a.updateview[s])
	}
	return st
}

func (a *Acceptor) restoreState(st AcceptorState) {
	a.view = st.View
	a.prep = st.Prep
	a.prepview = viewSet(st.Prepview)
	a.update = st.Update
	for s := 0; s < 2; s++ {
		a.updateview[s] = viewSet(st.Updateview[s])
	}
	a.hasDecided = st.Decided
	a.decidedVal = st.DecidedVal
	a.nextView = st.View
}

func viewSet(views []int) map[int]bool {
	m := make(map[int]bool, len(views))
	for _, w := range views {
		m[w] = true
	}
	return m
}

// persistAndFlush runs after every handled event: if the event dirtied
// durable state, append + fsync one full-state record, then release
// the deferred sends. On a volatile acceptor it is a no-op (the port
// is not wrapped, sends already left inline).
func (a *Acceptor) persistAndFlush() {
	if a.dp == nil {
		return
	}
	if a.walFailed {
		a.dp.drop()
		return
	}
	if a.dirty {
		a.dirty = false
		rec, err := transport.EncodeMessage(a.walBuf[:0], a.PersistentState())
		if err == nil {
			a.walBuf = rec
			a.wal.Append(rec)
			err = a.wal.Sync()
		}
		if err != nil {
			// Never let a message vouch for state that did not commit:
			// drop this event's sends and every later one (mute ≡ crash).
			a.walFailed = true
			a.dp.drop()
			return
		}
		if a.wal.Segments() > a.maxSegments {
			_ = a.wal.Compact(rec) // newest record is the snapshot
		}
	}
	a.dp.flush()
}

// deferPort queues outgoing traffic until the handler's state change
// is durable. Inbox and ID pass through; sends replay in order on
// flush.
type deferPort struct {
	inner transport.Port
	queue []deferredSend
}

type deferredSend struct {
	to       core.ProcessID
	dst      core.Set
	hop      int
	payload  transport.Message
	payloads []transport.Message
	kind     uint8 // 0 Send, 1 SendHop, 2 SendBatch, 3 Broadcast
}

func (p *deferPort) ID() core.ProcessID               { return p.inner.ID() }
func (p *deferPort) Inbox() <-chan transport.Envelope { return p.inner.Inbox() }

func (p *deferPort) Send(to core.ProcessID, payload transport.Message) {
	p.queue = append(p.queue, deferredSend{kind: 0, to: to, payload: payload})
}

func (p *deferPort) SendHop(to core.ProcessID, payload transport.Message, hop int) {
	p.queue = append(p.queue, deferredSend{kind: 1, to: to, payload: payload, hop: hop})
}

func (p *deferPort) SendBatch(to core.ProcessID, payloads []transport.Message, hop int) {
	// Callers may reuse the slice after SendBatch returns; copy.
	cp := append([]transport.Message(nil), payloads...)
	p.queue = append(p.queue, deferredSend{kind: 2, to: to, payloads: cp, hop: hop})
}

func (p *deferPort) Broadcast(dst core.Set, payload transport.Message, hop int) {
	p.queue = append(p.queue, deferredSend{kind: 3, dst: dst, payload: payload, hop: hop})
}

func (p *deferPort) flush() {
	for i := range p.queue {
		s := &p.queue[i]
		switch s.kind {
		case 0:
			p.inner.Send(s.to, s.payload)
		case 1:
			p.inner.SendHop(s.to, s.payload, s.hop)
		case 2:
			p.inner.SendBatch(s.to, s.payloads, s.hop)
		case 3:
			p.inner.Broadcast(s.dst, s.payload, s.hop)
		}
	}
	p.drop()
}

func (p *deferPort) drop() {
	for i := range p.queue {
		p.queue[i] = deferredSend{}
	}
	p.queue = p.queue[:0]
}
