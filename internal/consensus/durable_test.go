package consensus

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

// durableAcceptorFixture builds one durable acceptor over a fresh
// in-memory network: acceptors 0-6 (the Example 7 universe), proposer
// 7.
func durableAcceptorFixture(t *testing.T, dir string) (*Acceptor, *transport.Network) {
	t.Helper()
	rqs := core.Example7RQS()
	acceptors := core.FullSet(7)
	topo := Topology{Acceptors: acceptors, Proposers: []core.ProcessID{7}}
	ring, signers, err := GenKeys(acceptors)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(8)
	a, err := NewDurableAcceptor(rqs, topo, net.Port(0), ring, signers[0], ElectionConfig{}, dir)
	if err != nil {
		net.Close()
		t.Fatal(err)
	}
	return a, net
}

// TestDurableAcceptorRecoversPromise: a prepared value must survive a
// kill -9 — the recovered acceptor still holds the prep/prepview it
// echoed update1 for, so it can never help a conflicting value decide
// in that view.
func TestDurableAcceptorRecoversPromise(t *testing.T) {
	dir := t.TempDir()
	a, net := durableAcceptorFixture(t, dir)
	defer net.Close()
	a.HandleEnvelope(transport.Envelope{From: 7, To: 0, Payload: PrepareMsg{View: InitView, V: "x"}})
	want := a.PersistentState()
	if want.Prep != "x" || len(want.Prepview) != 1 {
		t.Fatalf("prepare did not take: %#v", want)
	}
	// The promise echo (update1) must have left only after the fsync —
	// and must have left.
	select {
	case env := <-net.Port(1).Inbox():
		if u, ok := env.Payload.(UpdateMsg); !ok || u.Step != 1 || u.V != "x" {
			t.Fatalf("acceptor 1 received %#v, want update1<x>", env.Payload)
		}
	default:
		t.Fatal("update1 was never flushed after the commit")
	}
	a.wal.Close() // kill -9: only the log survives

	a2, net2 := durableAcceptorFixture(t, dir)
	defer net2.Close()
	defer a2.wal.Close()
	if got := a2.PersistentState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state differs:\n got %#v\nwant %#v", got, want)
	}
}

// TestDurableAcceptorRecoversDecision: a decision reached via a quorum
// of update3 messages survives restart.
func TestDurableAcceptorRecoversDecision(t *testing.T) {
	dir := t.TempDir()
	a, net := durableAcceptorFixture(t, dir)
	defer net.Close()
	for from := core.ProcessID(0); from < 7; from++ {
		a.HandleEnvelope(transport.Envelope{From: from, To: 0,
			Payload: UpdateMsg{Step: 3, V: "d", View: InitView}})
	}
	if v, ok := a.Decided(); !ok || v != "d" {
		t.Fatalf("fixture did not decide: (%q, %v)", v, ok)
	}
	a.wal.Close()

	a2, net2 := durableAcceptorFixture(t, dir)
	defer net2.Close()
	defer a2.wal.Close()
	if v, ok := a2.Decided(); !ok || v != "d" {
		t.Fatalf("recovered acceptor lost its decision: (%q, %v)", v, ok)
	}
}

// TestDurableAcceptorMutesOnWALFailure pins the write-ahead rule: when
// the log cannot commit, the event's messages must not leave — a mute
// acceptor is safe, an amnesiac one that spoke is not.
func TestDurableAcceptorMutesOnWALFailure(t *testing.T) {
	dir := t.TempDir()
	a, net := durableAcceptorFixture(t, dir)
	defer net.Close()
	a.wal.Close() // the next Sync fails: disk is gone
	a.HandleEnvelope(transport.Envelope{From: 7, To: 0, Payload: PrepareMsg{View: InitView, V: "x"}})
	select {
	case env := <-net.Port(1).Inbox():
		t.Fatalf("message %#v escaped a failed commit", env.Payload)
	default:
	}
	if !a.walFailed {
		t.Fatal("acceptor did not latch the WAL failure")
	}
}
