package consensus

import "repro/internal/core"

// Hooks turn one acceptor Byzantine, mirroring storage.Hooks for the
// consensus layer: the chaos matrix can forge, equivocate, or withhold
// an acceptor's protocol messages below the SMR slot driver. All hooks
// are optional; a zero Hooks value is an honest acceptor. Hooks run on
// the acceptor's goroutine, once per (message, destination) pair — the
// per-destination fan-out is what enables equivocation (telling
// different peers different things), the fault the RQS adversary
// structure masks via class-3 intersection.
type Hooks struct {
	// ForgeUpdate, if non-nil, replaces each outgoing update message
	// per destination. Returning different values to different
	// destinations equivocates the acceptor's step echo: a fabricated
	// value can only win if it assembles a class-3 quorum of its own,
	// which a single Byzantine sender cannot supply.
	ForgeUpdate func(to core.ProcessID, m UpdateMsg) UpdateMsg
	// DropUpdate, if non-nil and returning true, withholds an outgoing
	// update to the given destination (selective silence).
	DropUpdate func(to core.ProcessID, m UpdateMsg) bool
	// ForgeDecision, if non-nil, replaces the acceptor's decision
	// broadcast per destination — a Byzantine acceptor announcing
	// different outcomes. Learners only adopt a decision once its
	// senders form a basic set (one that must contain a correct
	// process), so a lone forger's announcement is never adopted.
	ForgeDecision func(to core.ProcessID, m DecisionMsg) DecisionMsg
}
