package consensus

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// Keyring maps acceptor IDs to their public keys. It is distributed to
// every process; only the owning acceptor holds the private key. This
// substitutes the paper's RSA signatures [47] with ed25519 — the
// algorithm only relies on existential unforgeability.
type Keyring struct {
	pubs map[core.ProcessID]ed25519.PublicKey
}

// Signer is one acceptor's signing capability.
type Signer struct {
	ID   core.ProcessID
	priv ed25519.PrivateKey
}

// keyGenCalls counts GenKeys invocations process-wide. Key generation
// dominates deployment cost, so the SMR pipelining tests assert a whole
// multi-slot deployment performs exactly one call.
var keyGenCalls atomic.Int64

// KeyGenCalls returns the number of GenKeys invocations so far in this
// process (test instrumentation; see keyGenCalls).
func KeyGenCalls() int64 { return keyGenCalls.Load() }

// GenKeys generates key pairs for the given acceptors.
func GenKeys(acceptors core.Set) (*Keyring, map[core.ProcessID]*Signer, error) {
	keyGenCalls.Add(1)
	ring := &Keyring{pubs: make(map[core.ProcessID]ed25519.PublicKey, acceptors.Count())}
	signers := make(map[core.ProcessID]*Signer, acceptors.Count())
	for _, id := range acceptors.Members() {
		pub, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, nil, fmt.Errorf("consensus: generate key for %d: %w", id, err)
		}
		ring.pubs[id] = pub
		signers[id] = &Signer{ID: id, priv: priv}
	}
	return ring, signers, nil
}

// Sign signs a canonical body.
func (s *Signer) Sign(body []byte) []byte { return ed25519.Sign(s.priv, body) }

// SignUpdate countersigns update_step〈v, view〉 (the reply of Figure 15
// line 29). Exported so the Theorem 6 experiment can construct the
// legitimate countersignatures that view-0 contention produces.
func (s *Signer) SignUpdate(step int, v Value, view int) SignedUpdate {
	msg := UpdateMsg{Step: step, V: v, View: view}
	return SignedUpdate{Msg: msg, Signer: s.ID, Sig: s.Sign(msg.signingBody())}
}

// SignAckBody signs a new_view_ack body. Exported for experiment
// construction of (honest and Byzantine) acks.
func (s *Signer) SignAckBody(b AckBody) []byte { return s.Sign(b.signingBody()) }

// Verify checks that sig is signer's signature over body.
func (k *Keyring) Verify(signer core.ProcessID, body, sig []byte) bool {
	pub, ok := k.pubs[signer]
	return ok && ed25519.Verify(pub, body, sig)
}

// VerifyUpdate checks a countersigned update message.
func (k *Keyring) VerifyUpdate(su SignedUpdate) bool {
	return k.Verify(su.Signer, su.Msg.signingBody(), su.Sig)
}

// VerifyViewChange checks a signed view_change message.
func (k *Keyring) VerifyViewChange(vc SignedViewChange) bool {
	return k.Verify(vc.Acceptor, vc.Body.signingBody(), vc.Sig)
}

// VerifyAck checks a signed new_view_ack.
func (k *Keyring) VerifyAck(ack NewViewAck) bool {
	return k.Verify(ack.Acceptor, ack.Body.signingBody(), ack.Sig)
}
