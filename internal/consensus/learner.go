package consensus

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// Learn is a learned value together with the number of message delays it
// took from the proposal (2/3/4 in best-case executions). Hops is -1 when
// the value arrived through decision-pull gossip rather than the update
// stream.
type Learn struct {
	V    Value
	Hops int
}

// Learner learns the decided value (Figure 10 right column and Figure 15
// lines 60 and 101-103).
type Learner struct {
	id   core.ProcessID
	rqs  *core.RQS
	topo Topology
	port transport.Port

	dec          decider
	decisionFrom map[Value]core.Set
	pullEvery    time.Duration

	learned  chan Learn
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewLearner builds a learner. pullEvery is the "preset time" after which
// an unlearned learner starts pulling decisions (0 disables pulling).
func NewLearner(rqs *core.RQS, topo Topology, port transport.Port, pullEvery time.Duration) *Learner {
	return &Learner{
		id:           port.ID(),
		rqs:          rqs,
		topo:         topo,
		port:         port,
		dec:          newDecider(rqs),
		decisionFrom: make(map[Value]core.Set),
		pullEvery:    pullEvery,
		learned:      make(chan Learn, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// Start launches the learner loop.
func (l *Learner) Start() { go l.run() }

// Stop terminates the loop and waits for exit.
func (l *Learner) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// Learned yields the learned value (at most one per learner). The
// channel is closed when the learner stops, so a receiver blocked on it
// always wakes up; check the second receive value.
func (l *Learner) Learned() <-chan Learn { return l.learned }

// Wait blocks until the learner learns or the timeout elapses.
func (l *Learner) Wait(timeout time.Duration) (Learn, bool) {
	select {
	case v, ok := <-l.learned:
		return v, ok && v.V != None
	case <-time.After(timeout):
		return Learn{}, false
	}
}

func (l *Learner) run() {
	defer close(l.done)
	defer close(l.learned)
	var pull <-chan time.Time
	var ticker *time.Ticker
	if l.pullEvery > 0 {
		ticker = time.NewTicker(l.pullEvery)
		defer ticker.Stop()
		pull = ticker.C
	}
	hasLearned := false
	learn := func(v Learn) {
		if hasLearned {
			return
		}
		hasLearned = true
		l.learned <- v
		if ticker != nil {
			ticker.Stop()
		}
		// Shed the per-instance protocol state: a learned learner only
		// drains its inbox, so a host pipelining many instances (the
		// smr log) keeps live heap proportional to unlearned slots.
		l.dec = decider{}
		l.decisionFrom = nil
	}
	for {
		select {
		case <-l.stop:
			return
		case <-pull:
			if !hasLearned {
				transport.Broadcast(l.port, l.topo.Acceptors, DecisionPullMsg{})
			}
		case env, ok := <-l.port.Inbox():
			if !ok {
				return
			}
			if hasLearned {
				continue
			}
			switch m := env.Payload.(type) {
			case UpdateMsg:
				if !l.topo.Acceptors.Contains(env.From) {
					continue
				}
				l.dec.record(env.From, m, env.Hop)
				if d, decided := l.dec.check(); decided {
					learn(Learn{V: d.v, Hops: d.hops})
				}
			case DecisionMsg:
				if !l.topo.Acceptors.Contains(env.From) {
					continue
				}
				l.decisionFrom[m.V] = l.decisionFrom[m.V].Add(env.From)
				if core.IsBasic(l.decisionFrom[m.V], l.rqs.Adversary()) {
					learn(Learn{V: m.V, Hops: -1})
				}
			}
		}
	}
}
