package consensus

import (
	"repro/internal/core"
	"repro/internal/transport"
	"sync"
)

// Proposer drives the Locking module's proposer side (Figure 15 lines
// 1-10): in the initial view it sends prepare directly; when elected
// later it runs the consult phase (new_view → quorum of acks → choose)
// before preparing.
type Proposer struct {
	id    core.ProcessID
	rqs   *core.RQS
	elems []core.Set
	ring  *Keyring
	topo  Topology
	port  transport.Port

	value     Value
	proposed  bool
	view      int
	viewProof []SignedViewChange

	// Consult-phase collection state.
	collecting bool
	acks       VProof
	faulty     map[core.Set]bool

	// View-change messages per next-view.
	vcs map[int]map[core.ProcessID]SignedViewChange

	proposeCh chan Value
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewProposer builds a proposer.
func NewProposer(rqs *core.RQS, topo Topology, port transport.Port, ring *Keyring) *Proposer {
	return &Proposer{
		id:        port.ID(),
		rqs:       rqs,
		elems:     core.Elements(rqs.Adversary()),
		ring:      ring,
		topo:      topo,
		port:      port,
		view:      InitView,
		faulty:    make(map[core.Set]bool),
		vcs:       make(map[int]map[core.ProcessID]SignedViewChange),
		proposeCh: make(chan Value, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start launches the proposer loop.
func (p *Proposer) Start() { go p.run() }

// Stop terminates the loop and waits for exit.
func (p *Proposer) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Propose submits the proposer's value. In the initial view the prepare
// goes out immediately (every proposer is a leader of view 0); in later
// views the proposer acts when elected.
func (p *Proposer) Propose(v Value) {
	select {
	case p.proposeCh <- v:
	case <-p.stop:
	}
}

// ProposeOnce performs the initial-view propose synchronously on the
// caller's goroutine and retains nothing. It serves hosts that will
// never participate in later views — the pipelined smr proposer with
// elections disabled constructs a transient proposer per slot, calls
// this, and lets it be collected, instead of keeping a started
// proposer per slot alive forever. Must not be mixed with Start.
func (p *Proposer) ProposeOnce(v Value) {
	p.value = v
	p.proposed = true
	transport.Broadcast(p.port, p.topo.Acceptors, SyncMsg{})
	transport.BroadcastHop(p.port, p.topo.Acceptors, PrepareMsg{V: v, View: InitView}, 1)
}

func (p *Proposer) run() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case v := <-p.proposeCh:
			p.value = v
			p.proposed = true
			if p.view == InitView {
				// Skip the consult phase (Figure 9) and wake the
				// acceptors' election timers.
				transport.Broadcast(p.port, p.topo.Acceptors, SyncMsg{})
				transport.BroadcastHop(p.port, p.topo.Acceptors,
					PrepareMsg{V: v, View: InitView}, 1)
			} else {
				p.startConsult()
			}
		case env, ok := <-p.port.Inbox():
			if !ok {
				return
			}
			p.handle(env)
		}
	}
}

func (p *Proposer) handle(env transport.Envelope) {
	switch m := env.Payload.(type) {
	case SignedViewChange:
		p.onViewChange(env.From, m)
	case NewViewAck:
		p.onNewViewAck(m)
	}
}

// onViewChange collects signed view_change messages; a quorum for a view
// this proposer leads elects it (Figure 14 lines 10-13).
func (p *Proposer) onViewChange(from core.ProcessID, m SignedViewChange) {
	nv := m.Body.NextView
	if nv <= p.view || p.topo.Leader(nv) != p.id {
		return
	}
	if from != m.Acceptor || !p.topo.Acceptors.Contains(from) || !p.ring.VerifyViewChange(m) {
		return
	}
	if p.vcs[nv] == nil {
		p.vcs[nv] = make(map[core.ProcessID]SignedViewChange)
	}
	p.vcs[nv][from] = m
	var signers core.Set
	for id := range p.vcs[nv] {
		signers = signers.Add(id)
	}
	if _, ok := p.rqs.ContainedQuorum(signers, core.Class3); !ok {
		return
	}
	p.view = nv
	p.viewProof = make([]SignedViewChange, 0, len(p.vcs[nv]))
	for _, vc := range p.vcs[nv] {
		p.viewProof = append(p.viewProof, vc)
	}
	if p.proposed {
		p.startConsult()
	}
}

// startConsult begins the consult phase for the current view (lines 2-8).
func (p *Proposer) startConsult() {
	p.collecting = true
	p.acks = make(VProof)
	p.faulty = make(map[core.Set]bool)
	transport.Broadcast(p.port, p.topo.Acceptors, NewViewMsg{View: p.view, ViewProof: p.viewProof})
}

// onNewViewAck accumulates acks; once a quorum of valid acks (not yet
// marked faulty) is present, choose() picks the value to prepare. An
// abort marks the quorum faulty and waits for a different one (Lemma 28
// guarantees a correct quorum never aborts).
func (p *Proposer) onNewViewAck(m NewViewAck) {
	if !p.collecting || m.Body.View != p.view {
		return
	}
	if !p.topo.Acceptors.Contains(m.Acceptor) || !p.ring.VerifyAck(m) {
		return
	}
	p.acks[m.Acceptor] = m

	var responded core.Set
	for id := range p.acks {
		responded = responded.Add(id)
	}
	for _, q := range p.rqs.ContainedQuorums(responded, core.Class3) {
		if p.faulty[q] {
			continue
		}
		vProof := make(VProof, q.Count())
		for _, id := range q.Members() {
			vProof[id] = p.acks[id]
		}
		if !ValidateVProof(p.ring, p.rqs, p.view, vProof, q) {
			p.faulty[q] = true
			continue
		}
		res := Choose(p.rqs, p.elems, p.value, vProof, q)
		if res.Abort {
			p.faulty[q] = true
			continue
		}
		p.collecting = false
		transport.BroadcastHop(p.port, p.topo.Acceptors,
			PrepareMsg{V: res.V, View: p.view, VProof: vProof, Q: q}, 1)
		return
	}
}
