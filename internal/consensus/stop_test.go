package consensus_test

import (
	"sync"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

// TestRoleStopConcurrent pins the Stop contract of every consensus
// role host: concurrent Stop calls must close the stop channel exactly
// once (the old select/default guard admitted a double close).
func TestRoleStopConcurrent(t *testing.T) {
	system := core.Example7RQS()
	n := system.N()
	topo := consensus.Topology{
		Acceptors: system.Universe(),
		Proposers: []core.ProcessID{n},
		Learners:  core.NewSet(n + 1),
	}
	ring, signers, err := consensus.GenKeys(system.Universe())
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(n + 2)
	defer net.Close()

	a := consensus.NewAcceptor(system, topo, net.Port(0), ring, signers[0], consensus.ElectionConfig{})
	a.Start()
	p := consensus.NewProposer(system, topo, net.Port(n), ring)
	p.Start()
	l := consensus.NewLearner(system, topo, net.Port(n+1), 0)
	l.Start()

	var wg sync.WaitGroup
	for _, stop := range []func(){a.Stop, p.Stop, l.Stop} {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(stop func()) {
				defer wg.Done()
				stop()
			}(stop)
		}
	}
	wg.Wait()
}
