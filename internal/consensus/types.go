// Package consensus implements the paper's Byzantine consensus
// (Section 4): proposers, acceptors and learners in the state-machine
// replication framework of [34], built over a refined quorum system on the
// acceptors.
//
// The Locking module (Figures 10, 12, 15) ensures safety through the
// choose() function (Figure 13); the Election module (Figure 14) provides
// liveness under eventual synchrony. Best-case executions use no message
// authentication: a value is learned in 2 / 3 / 4 message delays when a
// class-1 / class-2 / class-3 quorum of correct acceptors is available.
// View changes authenticate with ed25519 signatures (substituting the
// paper's RSA [47]).
//
// Conventions: acceptors occupy process IDs 0..nA-1 (the RQS universe);
// proposers and learners take the IDs above them.
package consensus

import (
	"encoding/json"

	"repro/internal/core"
)

// Value is a proposal value. None ("") denotes the absence of a value
// (the nil of the pseudocode); real proposals are non-empty.
type Value = string

// None is the nil value of the pseudocode.
const None Value = ""

// InitView is the initial view in which every proposer may propose.
const InitView = 0

// UpdateMsg is update_step〈v, view, Q〉 (Figure 10). Step is 1, 2 or 3;
// Q is the quorum certificate attached from step 2 on.
type UpdateMsg struct {
	Step int      `json:"step"`
	V    Value    `json:"v"`
	View int      `json:"view"`
	Q    core.Set `json:"q"`
}

// signingBody is the authenticated content of an update message: the
// quorum id is excluded, matching the proof obligations ("signed
// update_step〈v, w, *〉 messages").
func (m UpdateMsg) signingBody() []byte {
	b, err := json.Marshal(struct {
		Step int   `json:"step"`
		V    Value `json:"v"`
		View int   `json:"view"`
	}{m.Step, m.V, m.View})
	if err != nil {
		panic("consensus: marshal update body: " + err.Error())
	}
	return b
}

// SignedUpdate is an update message countersigned by an acceptor, used in
// Updateproof certificates.
type SignedUpdate struct {
	Msg    UpdateMsg
	Signer core.ProcessID
	Sig    []byte
}

// PrepareMsg is prepare〈v, view, vProof, Q〉.
type PrepareMsg struct {
	V      Value
	View   int
	VProof map[core.ProcessID]NewViewAck // nil in the initial view
	Q      core.Set                      // the quorum vProof came from
}

// NewViewMsg is new_view〈view, viewProof〉.
type NewViewMsg struct {
	View      int
	ViewProof []SignedViewChange
}

// AckBody is the authenticated content of a new_view_ack (Figure 12,
// line 28): the acceptor's prepared and updated values with their view
// sets, quorum ids and signature certificates. Map keys are views.
type AckBody struct {
	View        int                       `json:"view"`
	Prep        Value                     `json:"prep"`
	Prepview    []int                     `json:"prepview"`
	Update      [2]Value                  `json:"update"`
	Updateview  [2][]int                  `json:"updateview"`
	UpdateQ     [2]map[int][]core.Set     `json:"updateQ"`
	Updateproof [2]map[int][]SignedUpdate `json:"updateproof"`
}

func (b AckBody) signingBody() []byte {
	buf, err := json.Marshal(b)
	if err != nil {
		panic("consensus: marshal ack body: " + err.Error())
	}
	return buf
}

// NewViewAck is the signed new_view_ack message.
type NewViewAck struct {
	Acceptor core.ProcessID
	Body     AckBody
	Sig      []byte
}

// SignReq is sign_req〈v, w, step〉.
type SignReq struct {
	V    Value
	View int
	Step int
}

// SignAck carries the countersignature back.
type SignAck struct {
	Update SignedUpdate
}

// ViewChangeBody is the authenticated content of view_change〈nextView〉.
type ViewChangeBody struct {
	NextView int `json:"nextView"`
}

func (b ViewChangeBody) signingBody() []byte {
	buf, err := json.Marshal(b)
	if err != nil {
		panic("consensus: marshal view change: " + err.Error())
	}
	return buf
}

// SignedViewChange is a signed view_change message.
type SignedViewChange struct {
	Acceptor core.ProcessID
	Body     ViewChangeBody
	Sig      []byte
}

// DecisionMsg is decision〈v〉.
type DecisionMsg struct {
	V Value
}

// DecisionPullMsg asks decided acceptors to re-send their decision.
type DecisionPullMsg struct{}

// SyncMsg starts the acceptors' election timers (Figure 14 line 0).
type SyncMsg struct{}
