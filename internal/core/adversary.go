package core

import (
	"fmt"
	"sort"
)

// Adversary is a general adversary structure B for a set S
// (Definition 1): a family of subsets of S closed under taking subsets.
// Each element is a set of processes that may simultaneously be Byzantine.
//
// Two derived notions recur throughout the paper (Definition 5 in the
// appendix): a set T is a *basic* subset if T ∉ B (so T always contains at
// least one benign process), and a *large* subset if T is not covered by
// the union of any two elements of B (so T always contains a whole basic
// subset of benign processes).
type Adversary interface {
	// Contains reports whether s ∈ B, honouring subset closure.
	Contains(s Set) bool

	// MaximalSets returns the maximal elements of B. Every element of B
	// is a subset of some returned set. The result must not be mutated.
	MaximalSets() []Set

	// CoveredByTwo reports whether s ⊆ B1 ∪ B2 for some B1, B2 ∈ B,
	// i.e. whether s fails to be a large subset.
	CoveredByTwo(s Set) bool
}

// Elements enumerates every element of B: all subsets of the maximal
// sets, deduplicated, including ∅. Predicates of the form "∃B ∈ B" that
// are not monotone in B (such as the reader's valid3, Figure 7 line 5)
// need the full enumeration; it is exponential only in the size of the
// individual maximal sets, which is small for protocol-scale adversaries.
func Elements(a Adversary) []Set {
	seen := map[Set]bool{EmptySet: true}
	out := []Set{EmptySet}
	for _, m := range a.MaximalSets() {
		for size := 1; size <= m.Count(); size++ {
			m.Subsets(size, func(s Set) bool {
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
				return true
			})
		}
	}
	return out
}

// IsBasic reports whether s is a basic subset for adversary b: s ∉ B.
// In every execution a basic subset contains at least one benign process
// (Lemma 1).
func IsBasic(s Set, b Adversary) bool { return !b.Contains(s) }

// IsLarge reports whether s is a large subset for adversary b: s is not a
// subset of the union of any two elements of B. Every large subset
// contains a basic subset of benign processes (Lemma 2).
func IsLarge(s Set, b Adversary) bool { return !b.CoveredByTwo(s) }

// Structured is an adversary given by an explicit list of maximal sets;
// membership is decided by subset closure. It implements the fully general
// (non-threshold, non-IID) adversary structures of Hirt–Maurer [26] that
// the paper is designed around.
type Structured struct {
	maximal []Set
}

var _ Adversary = (*Structured)(nil)

// NewStructured builds an adversary from the given sets. Redundant sets
// (subsets of others) are pruned so MaximalSets returns only maximal
// elements. The empty adversary {∅} — "no Byzantine processes ever" — is
// obtained by passing no sets.
func NewStructured(sets ...Set) *Structured {
	pruned := make([]Set, 0, len(sets))
	for i, s := range sets {
		redundant := false
		for j, t := range sets {
			if i == j {
				continue
			}
			// Strict subset, or equal with a later duplicate winning.
			if s.SubsetOf(t) && (s != t || i < j) {
				redundant = true
				break
			}
		}
		if !redundant {
			pruned = append(pruned, s)
		}
	}
	sort.Slice(pruned, func(i, j int) bool { return pruned[i] < pruned[j] })
	return &Structured{maximal: pruned}
}

// Contains reports whether s ∈ B.
func (a *Structured) Contains(s Set) bool {
	if s.IsEmpty() {
		return true // ∅ ∈ B always, by subset closure.
	}
	for _, m := range a.maximal {
		if s.SubsetOf(m) {
			return true
		}
	}
	return false
}

// MaximalSets returns the maximal elements of B.
func (a *Structured) MaximalSets() []Set { return a.maximal }

// CoveredByTwo reports whether s ⊆ B1 ∪ B2 for some B1, B2 ∈ B.
func (a *Structured) CoveredByTwo(s Set) bool {
	if s.IsEmpty() {
		return true
	}
	if len(a.maximal) == 0 {
		return false
	}
	for _, m1 := range a.maximal {
		for _, m2 := range a.maximal {
			if s.SubsetOf(m1.Union(m2)) {
				return true
			}
		}
	}
	return false
}

// String renders the adversary's maximal sets.
func (a *Structured) String() string {
	return fmt.Sprintf("Structured%v", a.maximal)
}

// Threshold is the k-bounded threshold adversary B_k over a fixed
// universe: every subset of the universe of cardinality at most K belongs
// to B (Section 2.1). Membership tests are O(1).
type Threshold struct {
	universe Set
	k        int
}

var _ Adversary = (*Threshold)(nil)

// NewThreshold returns the adversary B_k over FullSet(n).
func NewThreshold(n, k int) *Threshold {
	if k < 0 {
		k = 0
	}
	return &Threshold{universe: FullSet(n), k: k}
}

// K returns the threshold k.
func (a *Threshold) K() int { return a.k }

// Contains reports whether s ∈ B_k, i.e. s ⊆ universe and |s| ≤ k.
func (a *Threshold) Contains(s Set) bool {
	return s.SubsetOf(a.universe) && s.Count() <= a.k
}

// MaximalSets enumerates all subsets of the universe of size exactly k.
// This is combinatorial; it is intended for verification on small systems.
func (a *Threshold) MaximalSets() []Set {
	if a.k == 0 {
		return nil
	}
	var out []Set
	a.universe.Subsets(a.k, func(s Set) bool {
		out = append(out, s)
		return true
	})
	return out
}

// CoveredByTwo reports whether s is covered by two elements of B_k,
// which for a threshold adversary reduces to |s| ≤ 2k.
func (a *Threshold) CoveredByTwo(s Set) bool {
	return s.SubsetOf(a.universe) && s.Count() <= 2*a.k
}

// String renders the threshold adversary.
func (a *Threshold) String() string {
	return fmt.Sprintf("Threshold{n=%d,k=%d}", a.universe.Count(), a.k)
}
