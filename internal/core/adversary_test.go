package core

import (
	"math/rand"
	"testing"
)

func TestStructuredContainsSubsetClosure(t *testing.T) {
	// Definition 1: B' ⊆ B ∈ B ⇒ B' ∈ B.
	adv := NewStructured(NewSet(0, 1), NewSet(2, 3))
	tests := []struct {
		s    Set
		want bool
	}{
		{EmptySet, true},
		{NewSet(0), true},
		{NewSet(1), true},
		{NewSet(0, 1), true},
		{NewSet(2, 3), true},
		{NewSet(0, 2), false},
		{NewSet(0, 1, 2), false},
		{NewSet(4), false},
	}
	for _, tt := range tests {
		if got := adv.Contains(tt.s); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestStructuredPrunesRedundantSets(t *testing.T) {
	adv := NewStructured(NewSet(0), NewSet(0, 1), NewSet(2), NewSet(0, 1))
	max := adv.MaximalSets()
	if len(max) != 2 {
		t.Fatalf("MaximalSets = %v, want 2 sets", max)
	}
	if max[0] != NewSet(0, 1) && max[1] != NewSet(0, 1) {
		t.Errorf("missing {0,1} in %v", max)
	}
	if !adv.Contains(NewSet(2)) {
		t.Error("pruning dropped {2}")
	}
}

func TestStructuredEmptyAdversary(t *testing.T) {
	adv := NewStructured()
	if !adv.Contains(EmptySet) {
		t.Error("∅ must be in B")
	}
	if adv.Contains(NewSet(0)) {
		t.Error("{0} must not be in the trivial adversary")
	}
	if adv.CoveredByTwo(NewSet(0)) {
		t.Error("{0} is large under the trivial adversary")
	}
	if !adv.CoveredByTwo(EmptySet) {
		t.Error("∅ is always covered")
	}
}

func TestStructuredCoveredByTwo(t *testing.T) {
	adv := NewStructured(NewSet(0, 1), NewSet(2, 3), NewSet(1, 3))
	tests := []struct {
		s    Set
		want bool
	}{
		{NewSet(0, 1, 2, 3), true},  // {0,1} ∪ {2,3}
		{NewSet(0, 1, 3), true},     // {0,1} ∪ {1,3}
		{NewSet(4), false},          // 4 in no element
		{NewSet(0, 1, 2, 4), false}, // contains 4
		{NewSet(1, 3), true},        // single element suffices
	}
	for _, tt := range tests {
		if got := adv.CoveredByTwo(tt.s); got != tt.want {
			t.Errorf("CoveredByTwo(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestThresholdMatchesStructured(t *testing.T) {
	// The threshold adversary must agree with an explicitly structured
	// one built from all k-subsets, on every query.
	const n, k = 6, 2
	th := NewThreshold(n, k)
	st := NewStructured(th.MaximalSets()...)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 4000; i++ {
		s := Set(r.Uint64()) & FullSet(n)
		if th.Contains(s) != st.Contains(s) {
			t.Fatalf("Contains(%v) disagrees: threshold=%v", s, th.Contains(s))
		}
		if th.CoveredByTwo(s) != st.CoveredByTwo(s) {
			t.Fatalf("CoveredByTwo(%v) disagrees", s)
		}
	}
}

func TestThresholdBounds(t *testing.T) {
	th := NewThreshold(5, 2)
	if th.K() != 2 {
		t.Errorf("K = %d", th.K())
	}
	if !th.Contains(NewSet(0, 1)) || th.Contains(NewSet(0, 1, 2)) {
		t.Error("threshold membership broken")
	}
	if th.Contains(NewSet(5)) {
		t.Error("sets escaping the universe are not in B")
	}
	if !th.CoveredByTwo(NewSet(0, 1, 2, 3)) || th.CoveredByTwo(FullSet(5)) {
		t.Error("CoveredByTwo threshold broken")
	}
	zero := NewThreshold(5, 0)
	if len(zero.MaximalSets()) != 0 {
		t.Error("k=0 has no nonempty maximal sets")
	}
	if !zero.Contains(EmptySet) {
		t.Error("∅ ∈ B_0")
	}
	neg := NewThreshold(5, -3)
	if neg.K() != 0 {
		t.Error("negative k should clamp to 0")
	}
}

func TestBasicAndLargeSubsets(t *testing.T) {
	// Lemma 1 / Lemma 2 machinery: under B_1 over 5 processes, any
	// 2-subset is basic, any 3-subset is large.
	adv := NewThreshold(5, 1)
	if IsBasic(NewSet(0), adv) {
		t.Error("singleton is not basic under B_1")
	}
	if !IsBasic(NewSet(0, 1), adv) {
		t.Error("pair is basic under B_1")
	}
	if IsLarge(NewSet(0, 1), adv) {
		t.Error("pair is not large under B_1")
	}
	if !IsLarge(NewSet(0, 1, 2), adv) {
		t.Error("triple is large under B_1")
	}
}

func TestMaximalSetsCount(t *testing.T) {
	th := NewThreshold(6, 2)
	if got := len(th.MaximalSets()); got != 15 { // C(6,2)
		t.Errorf("MaximalSets count = %d, want 15", got)
	}
}
