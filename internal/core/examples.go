package core

// This file constructs, as ready-made values, the refined quorum systems
// the paper uses as running examples. Each is verified in the test suite.

// MajorityRQS is Example 2: crash failures only (B = {∅}), every majority
// subset of S is a quorum, QC1 = QC2 = ∅. This is the quorum system of
// ABD-style crash-tolerant storage and Paxos-style consensus.
func MajorityRQS(n int) *RQS {
	universe := FullSet(n)
	var quorums []Set
	universe.Subsets(n-(n-1)/2, func(s Set) bool {
		quorums = append(quorums, s)
		return true
	})
	return MustNew(Config{
		Universe:  universe,
		Adversary: NewStructured(),
		Quorums:   quorums,
	})
}

// ByzantineThirdRQS is Example 3: adversary B_⌊(n-1)/3⌋, every quorum
// contains more than two thirds of the processes, QC1 = QC2 = ∅. This is
// the dissemination quorum system used by classic BFT protocols.
func ByzantineThirdRQS(n int) *RQS {
	k := (n - 1) / 3
	universe := FullSet(n)
	var quorums []Set
	universe.Subsets(n-k, func(s Set) bool {
		quorums = append(quorums, s)
		return true
	})
	return MustNew(Config{
		Universe:  universe,
		Adversary: NewThreshold(n, k),
		Quorums:   quorums,
	})
}

// Fig3RQS is the refined quorum system of Figure 3 / Example 1: eight
// elements, threshold adversary B_1, four quorums
//
//	Q  = {5,6,7,8}        (class 3)
//	Q' = {1,2,3,4,7,8}    (class 3)
//	Q2 = {3,4,5,6,7}      (class 2)
//	Q1 = {3,5,6,7,8}      (class 1)
//
// (processes renumbered 0-based). The figure in the source text is
// OCR-garbled on Q1's exact membership; this reconstruction satisfies
// every cardinality stated in the caption: |Q1| = 5 yet Q1 is class 1
// while |Q'| = 6 yet Q' is only class 3; |Q2 ∩ Q'| = 2k+1 = |Q2 ∩ Q1|;
// and P3b(Q2, Q, B) holds via |Q2 ∩ Q ∩ Q1| ≥ k+1.
func Fig3RQS() *RQS {
	var (
		q  = NewSet(4, 5, 6, 7)       // {5,6,7,8}
		qp = NewSet(0, 1, 2, 3, 6, 7) // {1,2,3,4,7,8}
		q2 = NewSet(2, 3, 4, 5, 6)    // {3,4,5,6,7}
		q1 = NewSet(2, 4, 5, 6, 7)    // {3,5,6,7,8}
	)
	return MustNew(Config{
		Universe:  FullSet(8),
		Adversary: NewThreshold(8, 1),
		Quorums:   []Set{q, qp, q2, q1},
		Class2:    []int{2, 3},
		Class1:    []int{3},
	})
}

// Example7RQS is the six-server system of Example 7 / Figure 4, the
// paper's showcase for why Property 3 matters under a general (non-
// threshold) adversary:
//
//	S = {s1..s6} (0-based: 0..5)
//	B maximal sets: {s1,s2}, {s3,s4}, {s2,s4}
//	Q1  = {s2,s4,s5,s6}      (class 1)
//	Q2  = {s1,s2,s3,s4,s5}   (class 2)
//	Q2' = {s1,s2,s3,s4,s6}   (class 2)
func Example7RQS() *RQS {
	var (
		q1  = NewSet(1, 3, 4, 5)
		q2  = NewSet(0, 1, 2, 3, 4)
		q2p = NewSet(0, 1, 2, 3, 5)
	)
	return MustNew(Config{
		Universe:  FullSet(6),
		Adversary: NewStructured(NewSet(0, 1), NewSet(2, 3), NewSet(1, 3)),
		Quorums:   []Set{q1, q2, q2p},
		Class2:    []int{1, 2},
		Class1:    []int{0},
	})
}

// Example7Broken is Example7RQS with server s2 removed from the class-1
// quorum, which breaks Property 3 (P3b loses its witness in
// Q1 ∩ Q2 ∩ Q2' \ {s3,s4}). It is the substrate for the Theorem 3 and
// Theorem 6 lower-bound experiments (E6, E8): a fast algorithm run over
// this system can be driven to a safety violation.
func Example7Broken() *RQS {
	var (
		q1  = NewSet(3, 4, 5) // {s4,s5,s6}: s2 dropped
		q2  = NewSet(0, 1, 2, 3, 4)
		q2p = NewSet(0, 1, 2, 3, 5)
	)
	return MustNew(Config{
		Universe:  FullSet(6),
		Adversary: NewStructured(NewSet(0, 1), NewSet(2, 3), NewSet(1, 3)),
		Quorums:   []Set{q1, q2, q2p},
		Class2:    []int{1, 2},
		Class1:    []int{0},
	})
}

// FiveServerRQS is the introductory system of Section 1.2 and Figure 2:
// n = 5 crash-prone servers, t = 2; subsets of 3 servers are ordinary
// quorums and subsets of 4 servers are both class-2 and class-1 quorums.
// It is the RQS behind the "variation of ABD" described there: 1-round
// writes when 4 servers respond, 2-round otherwise.
func FiveServerRQS() *RQS {
	r, err := NewThresholdRQS(ThresholdParams{N: 5, T: 2, R: 1, Q: 1, K: 0})
	if err != nil {
		panic(err) // statically valid: 5 > 2+0+max(2, 0+2, 1+0)
	}
	return r
}

// PBFTStyleRQS is the important instantiation noted at the end of
// Example 6: n = 3t+1 processes, k = t Byzantine, every quorum (size 2t+1)
// is class 2 (r = t), and the full set is the only class-1 quorum (q = 0).
func PBFTStyleRQS(t int) (*RQS, error) {
	return NewThresholdRQS(ThresholdParams{N: 3*t + 1, T: t, R: t, Q: 0, K: t})
}
