package core

import (
	"math/bits"
	"sync"
)

// This file is the incremental quorum engine: a precomputed QuorumIndex
// per RQS and per-operation QuorumTrackers built on it. Together they
// turn the protocols' innermost question — "did acks arrive from some
// class-c quorum yet?" — from an O(|quorums|) rescan on every message
// into O(quorums-containing-p) amortized work per ack, with an O(1)
// cardinality fast path for the threshold systems of Example 6.
//
// Every verdict (Contained, ContainedAll) is defined to agree exactly,
// including returned quorums and their order, with the reference scans
// RQS.ContainedQuorum and RQS.ContainedQuorums; the differential tests
// in tracker_test.go enforce this bit for bit.

// quorumBlock describes one contiguous run of same-size quorums in the
// quorum list of a threshold RQS (Example 6): all subsets of Size
// members, declared at Class, enumerated in lexicographic order.
// Blocks appear in list order with strictly increasing sizes, which is
// what makes the cardinality fast path exact: the first listed quorum
// of class ≤ c contained in a response set is the |responded|-smallest
// members once |responded| reaches the first eligible block's size.
type quorumBlock struct {
	size  int
	class QuorumClass
}

// thresholdContained is the O(1) fast path of ContainedQuorum for
// block-structured (threshold) systems. The returned quorum is the
// lexicographically first contained one, matching the reference scan.
func thresholdContained(blocks []quorumBlock, universe, responded Set, c QuorumClass) (Set, bool) {
	inter := responded.Intersect(universe)
	n := inter.Count()
	for _, blk := range blocks {
		if blk.class <= c {
			// Blocks are sorted by strictly increasing size, so the
			// first eligible block decides: later ones need even more
			// responses.
			if n >= blk.size {
				return inter.LowestK(blk.size), true
			}
			return 0, false
		}
	}
	return 0, false
}

// blocksMaybeContained is the O(1) early-out for list enumerations on
// threshold systems: no quorum of class ≥ c can be contained unless the
// response count reaches the first (smallest) eligible block's size.
// When it does, materializing the contained quorums costs a list scan
// anyway, so callers fall back to the reference scan — which is why
// there is no enumeration twin of thresholdContained.
func blocksMaybeContained(blocks []quorumBlock, universe, responded Set, c QuorumClass) bool {
	n := responded.Intersect(universe).Count()
	for _, blk := range blocks {
		if blk.class <= c {
			return n >= blk.size
		}
	}
	return false
}

// engineMode selects how an index answers containment queries. It is
// picked once at Index() time from the quorum list's shape.
type engineMode uint8

const (
	// modeThreshold: block-structured list (NewThresholdRQS); verdicts
	// are O(1) popcounts.
	modeThreshold engineMode = iota
	// modePostings: sparse list; per-ack postings updates make
	// verdicts O(1) lookups.
	modePostings
	// modeScan: dense list; a hot cached scan beats postings counters
	// (each process sits in most quorums, so Σ|postings[p]| per round
	// approaches acks × |quorums| with worse locality).
	modeScan
)

// QuorumIndex is the precomputed acceleration structure of one RQS:
// per-process postings lists (which quorums contain process p), quorum
// cardinalities, and the first-listed class of every quorum value. It is
// immutable and shared by every tracker of the RQS; obtain it with
// RQS.Index().
type QuorumIndex struct {
	universe Set
	quorums  []Set
	class    []QuorumClass
	classOf  map[Set]QuorumClass
	blocks   []quorumBlock // non-nil for threshold systems: O(1) path
	mode     engineMode

	// Postings data, non-nil only in modePostings.
	sizes    []int32   // sizes[i] = |quorums[i]|
	postings [][]int32 // postings[p] = indices of quorums containing p

	// pool recycles trackers across operations (GetTracker/PutTracker),
	// so deployments multiplexing many objects over one quorum system —
	// the keyed KV service — keep the tracker population proportional
	// to concurrent operations, not to the key working set.
	pool sync.Pool
}

// usePostings is the hybrid engine's density rule: postings pay off
// only when the average quorum covers less than half the universe,
// i.e. 2·Σ|q| < n·|quorums|. Denser lists (small universes, threshold
// layouts rebuilt as explicit configs) answer faster from the scan.
func usePostings(universe Set, quorums []Set) bool {
	sumQ := 0
	for _, q := range quorums {
		sumQ += q.Count()
	}
	return 2*sumQ < universe.Count()*len(quorums)
}

// detectBlocks recognizes block structure in a user-supplied quorum
// list: the list partitions into contiguous runs where each run is the
// COMPLETE lexicographic enumeration (Set.Subsets order) of all
// same-size subsets of the universe with one uniform declared class,
// and run sizes strictly increase in list order. Those are exactly the
// invariants thresholdContained relies on — the first eligible block
// decides, and its first contained member is the response set's
// lowest-k members — so a config that rebuilds a threshold layout
// explicitly (instead of via NewThresholdRQS) gets the same O(1)
// verdicts. Returns nil when the list is not block-structured. Cost is
// O(|quorums|): the enumeration replay bails at the first mismatch.
func detectBlocks(universe Set, quorums []Set, class []QuorumClass) []quorumBlock {
	var blocks []quorumBlock
	n := universe.Count()
	prevSize := -1
	for i := 0; i < len(quorums); {
		size := quorums[i].Count()
		if size <= prevSize || size > n {
			return nil
		}
		cls := class[i]
		j := i
		complete := universe.Subsets(size, func(s Set) bool {
			if j >= len(quorums) || quorums[j] != s || class[j] != cls {
				return false
			}
			j++
			return true
		})
		if !complete {
			return nil
		}
		blocks = append(blocks, quorumBlock{size: size, class: cls})
		prevSize = size
		i = j
	}
	return blocks
}

// buildIndex constructs the index; called once per RQS via RQS.Index.
func buildIndex(r *RQS) *QuorumIndex {
	idx := &QuorumIndex{
		universe: r.universe,
		quorums:  r.quorums,
		class:    r.class,
		classOf:  make(map[Set]QuorumClass, len(r.quorums)),
		blocks:   r.blocks,
	}
	for i, q := range r.quorums {
		if _, ok := idx.classOf[q]; !ok {
			idx.classOf[q] = r.class[i]
		}
	}
	if idx.blocks == nil {
		// NewThresholdRQS records its block structure at construction;
		// user-supplied configs earn the same O(1) fast path when their
		// quorum list is recognizably block-structured.
		idx.blocks = detectBlocks(r.universe, r.quorums, r.class)
	}
	if idx.blocks != nil {
		idx.mode = modeThreshold
		return idx
	}
	if !usePostings(r.universe, r.quorums) {
		idx.mode = modeScan
		return idx
	}
	idx.mode = modePostings
	idx.sizes = make([]int32, len(r.quorums))
	idx.postings = make([][]int32, MaxProcesses)
	// Size the postings lists exactly before filling them.
	var counts [MaxProcesses]int32
	for _, q := range r.quorums {
		for v := uint64(q); v != 0; v &= v - 1 {
			counts[bits.TrailingZeros64(v)]++
		}
	}
	for p, cnt := range counts {
		if cnt > 0 {
			idx.postings[p] = make([]int32, 0, cnt)
		}
	}
	for i, q := range r.quorums {
		idx.sizes[i] = int32(q.Count())
		for v := uint64(q); v != 0; v &= v - 1 {
			p := bits.TrailingZeros64(v)
			idx.postings[p] = append(idx.postings[p], int32(i))
		}
	}
	return idx
}

// EngineMode reports which engine the index picked at build time:
// "threshold" (O(1) block fast path), "postings" (incremental
// postings-list tracker) or "scan" (dense list, reference scan).
func (idx *QuorumIndex) EngineMode() string {
	switch idx.mode {
	case modeThreshold:
		return "threshold"
	case modePostings:
		return "postings"
	default:
		return "scan"
	}
}

// scanContained is the reference scan over the index's quorum list,
// used directly in modeScan; identical to RQS.scanContainedQuorum.
func (idx *QuorumIndex) scanContained(responded Set, c QuorumClass) (Set, bool) {
	for i, q := range idx.quorums {
		if idx.class[i] <= c && q.SubsetOf(responded) {
			return q, true
		}
	}
	return 0, false
}

// ClassOf returns the declared class of the first listed quorum equal to
// q and whether q is listed at all. It is the O(1) counterpart of
// RQS.ClassOfListed.
func (idx *QuorumIndex) ClassOf(q Set) (QuorumClass, bool) {
	c, ok := idx.classOf[q]
	return c, ok
}

// NewTracker creates a tracker over this index, ready to use.
func (idx *QuorumIndex) NewTracker() *QuorumTracker {
	t := &QuorumTracker{idx: idx}
	if idx.mode == modePostings {
		t.missing = make([]int32, len(idx.quorums))
		t.satisfied = make([]uint64, (len(idx.quorums)+63)/64)
	}
	t.Reset()
	return t
}

// GetTracker returns a pooled tracker, Reset and ready for a fresh
// operation. Pair with PutTracker when the operation completes. The
// pool keeps live trackers proportional to in-flight operations: a
// million-key KV working set borrows per operation instead of holding
// one tracker per key.
func (idx *QuorumIndex) GetTracker() *QuorumTracker {
	if t, ok := idx.pool.Get().(*QuorumTracker); ok {
		t.Reset()
		return t
	}
	return idx.NewTracker()
}

// PutTracker returns a tracker obtained from GetTracker to the pool.
// The caller must not use t afterwards.
func (idx *QuorumIndex) PutTracker(t *QuorumTracker) {
	if t != nil && t.idx == idx {
		idx.pool.Put(t)
	}
}

// trackerSentinel marks "no satisfied quorum of this class yet".
const trackerSentinel = int32(1 << 30)

// QuorumTracker accumulates one operation's responses and answers quorum
// containment incrementally. Add is O(quorums-containing-p) on general
// systems and O(1) on threshold systems; Contained and Complete are O(1)
// lookups. A tracker is not safe for concurrent use; Reset reuses its
// allocations for the next operation (round).
type QuorumTracker struct {
	idx       *QuorumIndex
	responded Set
	missing   []int32  // per quorum: members not yet responded
	satisfied []uint64 // bitset over quorum indices
	minSat    [4]int32 // per declared class: min satisfied quorum index
}

// Reset clears the tracker for a fresh round, keeping its allocations.
func (t *QuorumTracker) Reset() {
	t.responded = 0
	for i := range t.minSat {
		t.minSat[i] = trackerSentinel
	}
	if t.missing == nil {
		return
	}
	copy(t.missing, t.idx.sizes)
	for i := range t.satisfied {
		t.satisfied[i] = 0
	}
	// A listed empty quorum is vacuously contained from the start.
	for i, sz := range t.idx.sizes {
		if sz == 0 {
			t.markSatisfied(int32(i))
		}
	}
}

func (t *QuorumTracker) markSatisfied(qi int32) {
	t.satisfied[qi>>6] |= 1 << (uint(qi) & 63)
	cl := t.idx.class[qi]
	if qi < t.minSat[cl] {
		t.minSat[cl] = qi
	}
}

// Add records a response from process p. It reports whether the tracker
// state changed (p had not responded yet), which is what the protocol
// wait loops use to skip redundant quorum re-checks on duplicate or
// stale messages.
func (t *QuorumTracker) Add(p ProcessID) bool {
	if p < 0 || p >= MaxProcesses || t.responded.Contains(p) {
		return false
	}
	t.responded = t.responded.Add(p)
	if t.idx.postings == nil || !t.idx.universe.Contains(p) {
		return true
	}
	for _, qi := range t.idx.postings[p] {
		t.missing[qi]--
		if t.missing[qi] == 0 {
			t.markSatisfied(qi)
		}
	}
	return true
}

// AddSet records responses from every member of s, reporting whether any
// of them was new.
func (t *QuorumTracker) AddSet(s Set) bool {
	changed := false
	for v := uint64(s); v != 0; v &= v - 1 {
		if t.Add(bits.TrailingZeros64(v)) {
			changed = true
		}
	}
	return changed
}

// Responded returns the set of processes recorded so far.
func (t *QuorumTracker) Responded() Set { return t.responded }

// Complete reports whether every process of the universe has responded.
// Once true, no further message can change any quorum verdict — the
// protocols use this to cut their 2Δ timers short.
func (t *QuorumTracker) Complete() bool {
	return t.idx.universe.SubsetOf(t.responded)
}

// Contained reports whether the responses cover some quorum of class at
// least c, returning the same quorum as the reference scan
// RQS.ContainedQuorum (the first listed contained one).
func (t *QuorumTracker) Contained(c QuorumClass) (Set, bool) {
	if t.idx.blocks != nil {
		return thresholdContained(t.idx.blocks, t.idx.universe, t.responded, c)
	}
	if t.idx.mode == modeScan {
		return t.idx.scanContained(t.responded, c)
	}
	best := trackerSentinel
	for cl := Class1; cl <= c && cl <= Class3; cl++ {
		if m := t.minSat[cl]; m < best {
			best = m
		}
	}
	if best == trackerSentinel {
		return 0, false
	}
	return t.idx.quorums[best], true
}

// ContainedAll returns, in list order, every quorum of class at least c
// covered by the responses — the incremental counterpart of
// RQS.ContainedQuorums.
func (t *QuorumTracker) ContainedAll(c QuorumClass) []Set {
	return t.AppendContained(nil, c)
}

// AppendContained is ContainedAll appending into dst, so per-round
// callers can reuse one backing array across operations. The appended
// Sets are shared index state (values, immutable); only the dst slice
// header is the caller's to reuse.
func (t *QuorumTracker) AppendContained(dst []Set, c QuorumClass) []Set {
	if t.idx.blocks != nil {
		if !blocksMaybeContained(t.idx.blocks, t.idx.universe, t.responded, c) {
			return dst
		}
	}
	if t.idx.blocks != nil || t.idx.mode == modeScan {
		for i, q := range t.idx.quorums {
			if t.idx.class[i] <= c && q.SubsetOf(t.responded) {
				dst = append(dst, q)
			}
		}
		return dst
	}
	for wi, w := range t.satisfied {
		for w != 0 {
			qi := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if t.idx.class[qi] <= c {
				dst = append(dst, t.idx.quorums[qi])
			}
		}
	}
	return dst
}
