package core

import "testing"

// These tests pin block detection for user-supplied configs: an
// explicit Config whose quorum list is a threshold-style layout must
// get the O(1) engine, structurally perturbed lists must not, and the
// detected fast path must agree bit for bit with the reference scan.

// explicitThresholdConfig rebuilds the quorum list of a threshold
// system as a plain Config (no NewThresholdRQS, no recorded blocks).
func explicitThresholdConfig(t *testing.T, p ThresholdParams) *RQS {
	t.Helper()
	th, err := NewThresholdRQS(p)
	if err != nil {
		t.Fatal(err)
	}
	var class2, class1 []int
	for i, q := range th.Quorums() {
		c, ok := th.ClassOfListed(q)
		if !ok {
			t.Fatalf("quorum %d not listed", i)
		}
		switch c {
		case Class1:
			class1 = append(class1, i)
			class2 = append(class2, i)
		case Class2:
			class2 = append(class2, i)
		}
	}
	r, err := New(Config{
		Universe:  th.Universe(),
		Adversary: th.Adversary(),
		Quorums:   th.Quorums(),
		Class2:    class2,
		Class1:    class1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBlockDetectionUserConfig(t *testing.T) {
	params := []ThresholdParams{
		{N: 8, T: 3, R: 2, Q: 1, K: 1},
		{N: 7, T: 2, R: 2, Q: 1, K: 1}, // degenerate r == t
		{N: 7, T: 2, R: 1, Q: 1, K: 1}, // degenerate q == r < t
	}
	for _, p := range params {
		r := explicitThresholdConfig(t, p)
		if got := r.Index().EngineMode(); got != "threshold" {
			t.Errorf("explicit threshold config %+v: EngineMode = %q, want threshold", p, got)
		}
	}
}

func TestBlockDetectionRejectsPerturbations(t *testing.T) {
	th, err := NewThresholdRQS(ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := th.Quorums()

	mode := func(quorums []Set, class2 []int) string {
		r, err := New(Config{Universe: th.Universe(), Adversary: th.Adversary(), Quorums: quorums, Class2: class2})
		if err != nil {
			t.Fatal(err)
		}
		return r.Index().EngineMode()
	}

	// Swap two quorums inside the first block: no longer lex order.
	perm := append([]Set(nil), base...)
	perm[0], perm[1] = perm[1], perm[0]
	if got := mode(perm, nil); got == "threshold" {
		t.Errorf("permuted list detected as threshold")
	}

	// Drop one quorum: the block is no longer a complete enumeration.
	trunc := append([]Set(nil), base[1:]...)
	if got := mode(trunc, nil); got == "threshold" {
		t.Errorf("incomplete block detected as threshold")
	}

	// Mark a single mid-block quorum class 2: classes not uniform per
	// run.
	if got := mode(base, []int{3}); got == "threshold" {
		t.Errorf("mixed-class block detected as threshold")
	}
}

// TestBlockDetectionDifferential pins the detected fast path against
// the reference scan on every response set shape that matters: per
// class, growing response sets, including sub-quorum ones.
func TestBlockDetectionDifferential(t *testing.T) {
	r := explicitThresholdConfig(t, ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if got := r.Index().EngineMode(); got != "threshold" {
		t.Fatalf("EngineMode = %q, want threshold", got)
	}
	tr := r.NewTracker()
	for _, c := range []QuorumClass{Class1, Class2, Class3} {
		tr.Reset()
		responded := Set(0)
		for p := 0; p < r.N(); p++ {
			tr.Add(p)
			responded = responded.Add(p)
			gotQ, gotOK := tr.Contained(c)
			wantQ, wantOK := r.ContainedQuorum(responded, c)
			if gotOK != wantOK || gotQ != wantQ {
				t.Fatalf("class %v responded %v: tracker (%v,%v) != scan (%v,%v)",
					c, responded, gotQ, gotOK, wantQ, wantOK)
			}
			gotAll := tr.ContainedAll(c)
			wantAll := r.ContainedQuorums(responded, c)
			if len(gotAll) != len(wantAll) {
				t.Fatalf("class %v responded %v: ContainedAll %d quorums, scan %d", c, responded, len(gotAll), len(wantAll))
			}
			for i := range gotAll {
				if gotAll[i] != wantAll[i] {
					t.Fatalf("class %v responded %v: ContainedAll[%d] = %v, scan %v", c, responded, i, gotAll[i], wantAll[i])
				}
			}
		}
	}
}
