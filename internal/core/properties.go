package core

// Standalone property checks over arbitrary quorum families, as used by
// the optimality theorems (Section 3.3, Section 4.3). There, the paper
// writes P1(Q(3)), P2(Q(1), Q(3)) and P3(Q(1), Q(2), Q(3)) for the three
// RQS properties instantiated with arbitrary set families Q(i), and shows
// each is necessary for the corresponding resilience / fastness
// combination. These functions let the experiments test families that are
// deliberately *not* refined quorum systems.

// CheckP1 reports whether Property 1 holds for the family q3 under
// adversary b: every pairwise intersection is a basic subset.
func CheckP1(q3 []Set, b Adversary) bool {
	for i, q := range q3 {
		for _, qq := range q3[i:] {
			if b.Contains(q.Intersect(qq)) {
				return false
			}
		}
	}
	return true
}

// CheckP2 reports whether Property 2 holds for families q1 (class 1) and
// q3 (all quorums) under adversary b: every Q1 ∩ Q1' ∩ Q is a large
// subset.
func CheckP2(q1, q3 []Set, b Adversary) bool {
	for i, a := range q1 {
		for _, c := range q1[i:] {
			for _, q := range q3 {
				if b.CoveredByTwo(a.Intersect(c).Intersect(q)) {
					return false
				}
			}
		}
	}
	return true
}

// CheckP3 reports whether Property 3 holds for families q1, q2, q3 under
// adversary b. Only maximal adversary elements need checking because both
// disjuncts are antitone in B.
func CheckP3(q1, q2, q3 []Set, b Adversary) bool {
	_, ok := FindP3Violation(q1, q2, q3, b)
	return !ok
}

// P3Violation is a concrete witness that Property 3 fails: for the given
// class-2 quorum Q2, quorum Q and adversary set B, neither P3a nor P3b
// holds. The lower-bound experiments (Theorems 3 and 6) build their
// adversarial schedules directly from such a witness, following the
// notation of the proofs:
//
//	B2 = Q2 ∩ Q \ B  (in B, because P3a fails)
//	B0 = Q1 ∩ Q2 ∩ Q (empty after removing B, because P3b fails)
//	B1 = Q2 ∩ Q ∩ B
type P3Violation struct {
	Q1 Set // a class-1 quorum witnessing the P3b failure
	Q2 Set
	Q  Set
	B  Set
	B2 Set // Q2 ∩ Q \ B
	B1 Set // Q2 ∩ Q ∩ B
	B0 Set // Q1 ∩ Q2 ∩ Q
}

// FindP3Violation searches for a Property 3 violation and returns the
// first witness found.
func FindP3Violation(q1, q2, q3 []Set, b Adversary) (P3Violation, bool) {
	maximal := b.MaximalSets()
	if len(maximal) == 0 {
		maximal = []Set{EmptySet}
	}
	for _, c2 := range q2 {
		for _, q := range q3 {
			for _, bb := range maximal {
				rest := c2.Intersect(q).Diff(bb)
				if !b.Contains(rest) {
					continue // P3a holds
				}
				// P3a fails; find a class-1 quorum making P3b fail.
				if len(q1) == 0 {
					return P3Violation{
						Q2: c2, Q: q, B: bb,
						B2: rest, B1: c2.Intersect(q).Intersect(bb),
					}, true
				}
				for _, c1 := range q1 {
					inter := c1.Intersect(c2).Intersect(q)
					if inter.Diff(bb).IsEmpty() {
						return P3Violation{
							Q1: c1, Q2: c2, Q: q, B: bb,
							B2: rest,
							B1: c2.Intersect(q).Intersect(bb),
							B0: inter,
						}, true
					}
				}
			}
		}
	}
	return P3Violation{}, false
}
