package core

import "testing"

func TestCheckP1P2P3AgreeWithVerify(t *testing.T) {
	systems := []*RQS{
		MajorityRQS(5), ByzantineThirdRQS(4), Fig3RQS(), Example7RQS(), FiveServerRQS(),
	}
	for _, r := range systems {
		q1 := r.QuorumsOfClass(Class1)
		q2 := r.QuorumsOfClass(Class2)
		q3 := r.Quorums()
		adv := r.Adversary()
		if !CheckP1(q3, adv) || !CheckP2(q1, q3, adv) || !CheckP3(q1, q2, q3, adv) {
			t.Errorf("%v: standalone checks disagree with Verify", r)
		}
	}
}

func TestFindP3ViolationOnBrokenExample7(t *testing.T) {
	r := Example7Broken()
	w, ok := FindP3Violation(
		r.QuorumsOfClass(Class1), r.QuorumsOfClass(Class2), r.Quorums(), r.Adversary())
	if !ok {
		t.Fatal("no P3 violation found in the deliberately broken system")
	}
	// The witness must satisfy the proof's decomposition:
	// B2 = Q2∩Q\B ∈ B, B1 = Q2∩Q∩B, B0 = Q1∩Q2∩Q ⊆ B1, Q2∩Q = B1∪B2.
	adv := r.Adversary()
	if !adv.Contains(w.B2) {
		t.Errorf("B2 = %v should be in B", w.B2)
	}
	if !adv.Contains(w.B1) || !adv.Contains(w.B0) {
		t.Errorf("B1 = %v, B0 = %v should be in B", w.B1, w.B0)
	}
	if !w.B0.SubsetOf(w.B1) {
		t.Errorf("B0 = %v ⊄ B1 = %v", w.B0, w.B1)
	}
	if got := w.B1.Union(w.B2); got != w.Q2.Intersect(w.Q) {
		t.Errorf("B1 ∪ B2 = %v, want Q2∩Q = %v", got, w.Q2.Intersect(w.Q))
	}
	if !w.Q1.Intersect(w.Q2).Intersect(w.Q).Diff(w.B).IsEmpty() {
		t.Error("P3b should fail for the witness")
	}
}

func TestFindP3ViolationEmptyClass1(t *testing.T) {
	// With QC1 = ∅, P3b can never hold, so any P3a failure is a
	// violation.
	adv := NewThreshold(4, 1)
	q2 := []Set{NewSet(0, 1)}
	q3 := []Set{NewSet(0, 1), NewSet(1, 2, 3)}
	// Q2 ∩ Q = {1}; minus B={1} leaves ∅ ∈ B ⇒ P3a fails, no class 1.
	w, ok := FindP3Violation(nil, q2, q3, adv)
	if !ok {
		t.Fatal("violation expected")
	}
	if w.Q1 != EmptySet {
		t.Errorf("Q1 witness should be empty, got %v", w.Q1)
	}
}

func TestCheckP3TrivialAdversary(t *testing.T) {
	// B = {∅}: Property 1 implies Property 3 (remark after Def. 2).
	r := MajorityRQS(5)
	qs := r.Quorums()
	if !CheckP3(nil, qs, qs, r.Adversary()) {
		t.Error("P3 must hold under the trivial adversary when P1 does")
	}
}

func TestCheckP2EmptyClass1(t *testing.T) {
	// Vacuous when QC1 = ∅ (Examples 2–4).
	r := ByzantineThirdRQS(7)
	if !CheckP2(nil, r.Quorums(), r.Adversary()) {
		t.Error("P2 is vacuous with no class-1 quorums")
	}
}

func TestCheckP1Violation(t *testing.T) {
	adv := NewThreshold(6, 1)
	// Intersection of size 1 ≤ k ⇒ in B ⇒ P1 fails.
	if CheckP1([]Set{NewSet(0, 1, 2), NewSet(2, 3, 4)}, adv) {
		t.Error("P1 should fail on a 1-element intersection under B_1")
	}
}

func TestCheckP2Violation(t *testing.T) {
	adv := NewThreshold(6, 1)
	q1 := []Set{NewSet(0, 1, 2, 3)}
	q3 := []Set{NewSet(2, 3, 4, 5)}
	// Q1∩Q1∩Q = {2,3}: size 2 ≤ 2k ⇒ covered by two ⇒ P2 fails.
	if CheckP2(q1, q3, adv) {
		t.Error("P2 should fail")
	}
}
