package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickLargeImpliesBasic(t *testing.T) {
	// Every large subset is basic: s ∈ B ⇒ s ⊆ s ∪ ∅ is a two-cover.
	advs := []Adversary{
		NewThreshold(8, 2),
		NewStructured(NewSet(0, 1), NewSet(2, 3), NewSet(1, 3)),
		NewStructured(),
	}
	if err := quick.Check(func(x uint8, which uint8) bool {
		adv := advs[int(which)%len(advs)]
		s := Set(x) & FullSet(8)
		if IsLarge(s, adv) && !IsBasic(s, adv) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickElementsEnumeratesB(t *testing.T) {
	adv := NewStructured(NewSet(0, 1, 2), NewSet(2, 3), NewSet(4))
	elems := Elements(adv)
	seen := make(map[Set]bool, len(elems))
	for _, e := range elems {
		if !adv.Contains(e) {
			t.Errorf("Elements returned %v ∉ B", e)
		}
		if seen[e] {
			t.Errorf("Elements returned %v twice", e)
		}
		seen[e] = true
	}
	// Exhaustively cross-check against brute force over the universe.
	for mask := Set(0); mask < 1<<5; mask++ {
		if adv.Contains(mask) != seen[mask] {
			t.Errorf("membership of %v: Contains=%v, enumerated=%v",
				mask, adv.Contains(mask), seen[mask])
		}
	}
}

// randomExplicitRQS builds a random quorum family over n ≤ 7 processes
// under B_1 and returns it unverified.
func randomExplicitRQS(r *rand.Rand) *RQS {
	n := 5 + r.Intn(3)
	universe := FullSet(n)
	nq := 2 + r.Intn(4)
	quorums := make([]Set, 0, nq)
	for i := 0; i < nq; i++ {
		size := n/2 + 1 + r.Intn(n-n/2)
		var q Set
		for q.Count() < size {
			q = q.Add(r.Intn(n))
		}
		quorums = append(quorums, q)
	}
	var class2, class1 []int
	for i := range quorums {
		if r.Intn(2) == 0 {
			class2 = append(class2, i)
			if r.Intn(2) == 0 {
				class1 = append(class1, i)
			}
		}
	}
	return MustNew(Config{
		Universe:  universe,
		Adversary: NewThreshold(n, 1),
		Quorums:   quorums,
		Class2:    class2,
		Class1:    class1,
	})
}

func TestQuickVerifyAgreesWithStandaloneChecks(t *testing.T) {
	// Verify() must hold exactly when CheckP1 ∧ CheckP2 ∧ CheckP3 hold
	// over the same families — two independent implementations of
	// Definition 2 kept honest against each other on random systems.
	r := rand.New(rand.NewSource(2007))
	agreeValid, agreeInvalid := 0, 0
	for i := 0; i < 400; i++ {
		sys := randomExplicitRQS(r)
		q1 := sys.QuorumsOfClass(Class1)
		q2 := sys.QuorumsOfClass(Class2)
		q3 := sys.Quorums()
		adv := sys.Adversary()
		standalone := CheckP1(q3, adv) && CheckP2(q1, q3, adv) && CheckP3(q1, q2, q3, adv)
		verified := sys.Verify() == nil
		if standalone != verified {
			t.Fatalf("disagreement on %v: standalone=%v Verify=%v", sys, standalone, verified)
		}
		if verified {
			agreeValid++
		} else {
			agreeInvalid++
		}
	}
	if agreeValid == 0 || agreeInvalid == 0 {
		t.Errorf("degenerate sample: %d valid, %d invalid", agreeValid, agreeInvalid)
	}
}

func TestQuickContainedQuorumSoundness(t *testing.T) {
	// ContainedQuorum(responded, c) must return a listed quorum of class
	// ≤ c that is a subset of responded; and must fail exactly when no
	// listed quorum of that class fits.
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		sys := randomExplicitRQS(r)
		responded := Set(r.Uint64()) & sys.Universe()
		for _, c := range []QuorumClass{Class1, Class2, Class3} {
			got, ok := sys.ContainedQuorum(responded, c)
			want := false
			for _, q := range sys.QuorumsOfClass(c) {
				if q.SubsetOf(responded) {
					want = true
				}
			}
			if ok != want {
				t.Fatalf("ContainedQuorum(%v, %v) = %v, want %v", responded, c, ok, want)
			}
			if ok {
				if !got.SubsetOf(responded) {
					t.Fatalf("returned quorum %v escapes %v", got, responded)
				}
				// The random generator may list the same set under two
				// class flags, so check membership in the class family
				// rather than ClassOfListed (which reports the first).
				inFamily := false
				for _, q := range sys.QuorumsOfClass(c) {
					if q == got {
						inFamily = true
						break
					}
				}
				if !inFamily {
					t.Fatalf("returned quorum %v not in the class-%v family", got, c)
				}
			}
		}
	}
}

func TestQuickP3DisjunctsAntitoneInB(t *testing.T) {
	// The Verify optimisation relies on P3a and P3b being antitone in B:
	// holding for a maximal B implies holding for every subset.
	sys := Example7RQS()
	elems := Elements(sys.Adversary())
	quorums := sys.Quorums()
	for _, q2 := range sys.QuorumsOfClass(Class2) {
		for _, q := range quorums {
			for _, big := range elems {
				for _, small := range elems {
					if !small.SubsetOf(big) {
						continue
					}
					if sys.P3a(q2, q, big) && !sys.P3a(q2, q, small) {
						t.Fatalf("P3a not antitone: Q2=%v Q=%v %v⊆%v", q2, q, small, big)
					}
					if sys.P3b(q2, q, big) && !sys.P3b(q2, q, small) {
						t.Fatalf("P3b not antitone: Q2=%v Q=%v %v⊆%v", q2, q, small, big)
					}
				}
			}
		}
	}
}
