package core

import (
	"errors"
	"fmt"
	"sync"
)

// QuorumClass labels the three nested classes of a refined quorum system.
// Class 1 ⊆ Class 2 ⊆ Class 3; class 3 quorums are ordinary quorums.
type QuorumClass int

// Quorum classes, ordered from the strongest (fastest) to the weakest.
const (
	Class1 QuorumClass = 1
	Class2 QuorumClass = 2
	Class3 QuorumClass = 3
)

// String renders the class as "class 1", "class 2" or "class 3".
func (c QuorumClass) String() string { return fmt.Sprintf("class %d", int(c)) }

// Errors reported by Verify, matching the three properties of Definition 2.
var (
	ErrProperty1 = errors.New("rqs: Property 1 violated (some quorum intersection is in B)")
	ErrProperty2 = errors.New("rqs: Property 2 violated (class-1 pair intersection with a quorum is covered by two adversary sets)")
	ErrProperty3 = errors.New("rqs: Property 3 violated (neither P3a nor P3b holds for some class-2 quorum)")
	ErrClassNest = errors.New("rqs: class-1 quorums must also be class-2 quorums")
	ErrNoQuorums = errors.New("rqs: no quorums")
	ErrUniverse  = errors.New("rqs: quorum not contained in universe")
)

// RQS is a refined quorum system over a universe of processes and an
// adversary structure (Definition 2). Quorums are held explicitly; the
// class-2 and class-1 subsets are flagged per quorum.
//
// An RQS value is immutable after construction.
type RQS struct {
	universe Set
	adv      Adversary
	quorums  []Set
	class    []QuorumClass // class[i] is the class of quorums[i]

	// blocks is non-nil for threshold systems built by NewThresholdRQS;
	// it enables the O(1) cardinality fast path of the quorum engine.
	blocks []quorumBlock

	idxOnce sync.Once
	idx     *QuorumIndex
}

// Config describes a refined quorum system to be built by New.
type Config struct {
	// Universe is the set S of processes.
	Universe Set
	// Adversary is the adversary structure B for S.
	Adversary Adversary
	// Quorums lists all (minimal) quorums; every entry is a class-3
	// quorum at least.
	Quorums []Set
	// Class2 and Class1 are indices into Quorums flagging the stronger
	// classes. Class1 indices must also appear in Class2 (class nesting);
	// New adds them automatically if omitted.
	Class2 []int
	Class1 []int
}

// New builds a refined quorum system from cfg without verifying the
// intersection properties; call Verify to check them. It returns an error
// only on structural problems (no quorums, indices out of range, quorums
// escaping the universe).
func New(cfg Config) (*RQS, error) {
	if len(cfg.Quorums) == 0 {
		return nil, ErrNoQuorums
	}
	if cfg.Adversary == nil {
		cfg.Adversary = NewStructured()
	}
	r := &RQS{
		universe: cfg.Universe,
		adv:      cfg.Adversary,
		quorums:  make([]Set, len(cfg.Quorums)),
		class:    make([]QuorumClass, len(cfg.Quorums)),
	}
	copy(r.quorums, cfg.Quorums)
	for i, q := range r.quorums {
		if !q.SubsetOf(cfg.Universe) {
			return nil, fmt.Errorf("%w: quorum %d = %v", ErrUniverse, i, q)
		}
		r.class[i] = Class3
	}
	for _, i := range cfg.Class2 {
		if i < 0 || i >= len(r.quorums) {
			return nil, fmt.Errorf("rqs: class-2 index %d out of range", i)
		}
		r.class[i] = Class2
	}
	for _, i := range cfg.Class1 {
		if i < 0 || i >= len(r.quorums) {
			return nil, fmt.Errorf("rqs: class-1 index %d out of range", i)
		}
		r.class[i] = Class1
	}
	return r, nil
}

// MustNew is New for statically known-good configurations; it panics on a
// structural error. Intended for package-level example constructors.
func MustNew(cfg Config) *RQS {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Universe returns the set S.
func (r *RQS) Universe() Set { return r.universe }

// N returns |S|.
func (r *RQS) N() int { return r.universe.Count() }

// Adversary returns the adversary structure B.
func (r *RQS) Adversary() Adversary { return r.adv }

// Quorums returns all quorums (class 3 = RQS). The caller must not mutate
// the result.
func (r *RQS) Quorums() []Set { return r.quorums }

// QuorumsOfClass returns the quorums whose class is at least as strong as
// c (so QuorumsOfClass(Class3) returns everything, QuorumsOfClass(Class1)
// only the class-1 quorums), reflecting QC1 ⊆ QC2 ⊆ RQS.
func (r *RQS) QuorumsOfClass(c QuorumClass) []Set {
	var out []Set
	for i, q := range r.quorums {
		if r.class[i] <= c {
			out = append(out, q)
		}
	}
	return out
}

// ClassOfListed returns the declared class of a listed quorum and whether
// q is listed at all.
func (r *RQS) ClassOfListed(q Set) (QuorumClass, bool) {
	for i, lq := range r.quorums {
		if lq == q {
			return r.class[i], true
		}
	}
	return 0, false
}

// Index returns the RQS's precomputed quorum index, building it on
// first use. The index is immutable and safe for concurrent use.
func (r *RQS) Index() *QuorumIndex {
	r.idxOnce.Do(func() { r.idx = buildIndex(r) })
	return r.idx
}

// NewTracker creates an incremental quorum tracker for one protocol
// operation over this RQS.
func (r *RQS) NewTracker() *QuorumTracker { return r.Index().NewTracker() }

// ContainedQuorum reports whether responded ⊇ some quorum of class at
// least c, returning the first-listed contained quorum. This is the
// primitive protocols use to decide "acks received from some class-c
// quorum". Threshold systems answer in O(1); others scan the quorum
// list (use a QuorumTracker for per-ack incremental checks).
func (r *RQS) ContainedQuorum(responded Set, c QuorumClass) (Set, bool) {
	if r.blocks != nil {
		return thresholdContained(r.blocks, r.universe, responded, c)
	}
	return r.scanContainedQuorum(responded, c)
}

// scanContainedQuorum is the reference linear scan; the fast paths and
// trackers are differentially tested against it.
func (r *RQS) scanContainedQuorum(responded Set, c QuorumClass) (Set, bool) {
	for i, q := range r.quorums {
		if r.class[i] <= c && q.SubsetOf(responded) {
			return q, true
		}
	}
	return 0, false
}

// ContainedQuorums returns every listed quorum of class at least c that is
// a subset of responded, in list order. The storage protocol uses this to
// compute the set QC'2 of class-2 quorums that responded in round 1.
func (r *RQS) ContainedQuorums(responded Set, c QuorumClass) []Set {
	if r.blocks != nil && !blocksMaybeContained(r.blocks, r.universe, responded, c) {
		return nil
	}
	return r.scanContainedQuorums(responded, c)
}

// scanContainedQuorums is the reference linear scan behind
// ContainedQuorums.
func (r *RQS) scanContainedQuorums(responded Set, c QuorumClass) []Set {
	var out []Set
	for i, q := range r.quorums {
		if r.class[i] <= c && q.SubsetOf(responded) {
			out = append(out, q)
		}
	}
	return out
}

// HasClass1 reports whether QC1 is non-empty.
func (r *RQS) HasClass1() bool {
	for _, c := range r.class {
		if c == Class1 {
			return true
		}
	}
	return false
}

// P3a reports whether P3a(q2, q, b) holds: (q2 ∩ q) \ b ∉ B.
func (r *RQS) P3a(q2, q, b Set) bool {
	return !r.adv.Contains(q2.Intersect(q).Diff(b))
}

// P3b reports whether P3b(q2, q, b) holds: QC1 ≠ ∅ and for every class-1
// quorum q1, q1 ∩ q2 ∩ q \ b ≠ ∅.
func (r *RQS) P3b(q2, q, b Set) bool {
	any := false
	for i, q1 := range r.quorums {
		if r.class[i] != Class1 {
			continue
		}
		any = true
		if q1.Intersect(q2).Intersect(q).Diff(b).IsEmpty() {
			return false
		}
	}
	return any
}

// Verify checks the three properties of Definition 2 and returns nil iff
// this is a valid refined quorum system. Property 3 is checked against the
// maximal elements of B only, which suffices because both P3a and P3b are
// antitone in B (shrinking B can only help).
func (r *RQS) Verify() error {
	q3 := r.quorums
	// Property 1: ∀Q,Q' ∈ RQS: Q ∩ Q' ∉ B.
	for i, q := range q3 {
		for _, q2 := range q3[i:] {
			if r.adv.Contains(q.Intersect(q2)) {
				return fmt.Errorf("%w: %v ∩ %v = %v", ErrProperty1, q, q2, q.Intersect(q2))
			}
		}
	}
	// Property 2: ∀Q1,Q1' ∈ QC1, ∀Q: Q1 ∩ Q1' ∩ Q ⊄ B1 ∪ B2.
	c1 := r.QuorumsOfClass(Class1)
	for i, q1 := range c1 {
		for _, q1b := range c1[i:] {
			for _, q := range q3 {
				x := q1.Intersect(q1b).Intersect(q)
				if r.adv.CoveredByTwo(x) {
					return fmt.Errorf("%w: %v ∩ %v ∩ %v = %v", ErrProperty2, q1, q1b, q, x)
				}
			}
		}
	}
	// Property 3: ∀Q2 ∈ QC2, ∀Q ∈ RQS, ∀B ∈ B: P3a ∨ P3b.
	maximal := r.adv.MaximalSets()
	if len(maximal) == 0 {
		maximal = []Set{EmptySet}
	}
	for _, q2 := range r.QuorumsOfClass(Class2) {
		for _, q := range q3 {
			for _, b := range maximal {
				if !r.P3a(q2, q, b) && !r.P3b(q2, q, b) {
					return fmt.Errorf("%w: Q2=%v Q=%v B=%v", ErrProperty3, q2, q, b)
				}
			}
		}
	}
	return nil
}

// LivenessQuorum returns a quorum contained in the given correct set, if
// one exists. The paper's liveness condition is the existence of a quorum
// of correct servers.
func (r *RQS) LivenessQuorum(correct Set) (Set, bool) {
	return r.ContainedQuorum(correct, Class3)
}

// String summarises the RQS.
func (r *RQS) String() string {
	n1 := len(r.QuorumsOfClass(Class1))
	n2 := len(r.QuorumsOfClass(Class2))
	return fmt.Sprintf("RQS{n=%d, quorums=%d, class2=%d, class1=%d, adv=%v}",
		r.N(), len(r.quorums), n2, n1, r.adv)
}
