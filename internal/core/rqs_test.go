package core

import (
	"errors"
	"testing"
)

func TestPaperExamplesAreValidRQS(t *testing.T) {
	tests := []struct {
		name string
		rqs  *RQS
	}{
		{"Example2 majority n=3", MajorityRQS(3)},
		{"Example2 majority n=5", MajorityRQS(5)},
		{"Example2 majority n=7", MajorityRQS(7)},
		{"Example3 byzantine n=4", ByzantineThirdRQS(4)},
		{"Example3 byzantine n=7", ByzantineThirdRQS(7)},
		{"Example1 Fig3", Fig3RQS()},
		{"Example7 Fig4", Example7RQS()},
		{"Section1.2 five servers", FiveServerRQS()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.rqs.Verify(); err != nil {
				t.Errorf("Verify() = %v, want nil", err)
			}
		})
	}
}

func TestExample7BrokenViolatesP3Only(t *testing.T) {
	r := Example7Broken()
	err := r.Verify()
	if !errors.Is(err, ErrProperty3) {
		t.Fatalf("Verify() = %v, want Property 3 violation", err)
	}
	// Properties 1 and 2 still hold: the breakage is isolated to P3,
	// exactly the hypothesis of Theorem 3 / Theorem 6.
	if !CheckP1(r.Quorums(), r.Adversary()) {
		t.Error("Property 1 should hold for the broken system")
	}
	if !CheckP2(r.QuorumsOfClass(Class1), r.Quorums(), r.Adversary()) {
		t.Error("Property 2 should hold for the broken system")
	}
}

func TestFig3Cardinalities(t *testing.T) {
	// Figure 3's caption: a 5-element quorum is class 1 while a
	// 6-element one is only class 3 — cardinality does not determine
	// class.
	r := Fig3RQS()
	var class1Size, class3MaxSize int
	for _, q := range r.QuorumsOfClass(Class1) {
		class1Size = q.Count()
	}
	for _, q := range r.Quorums() {
		if c, _ := r.ClassOfListed(q); c == Class3 && q.Count() > class3MaxSize {
			class3MaxSize = q.Count()
		}
	}
	if class1Size != 5 {
		t.Errorf("class-1 quorum size = %d, want 5", class1Size)
	}
	if class3MaxSize != 6 {
		t.Errorf("largest class-3-only quorum size = %d, want 6", class3MaxSize)
	}
}

func TestExample7PropertyThreeMechanics(t *testing.T) {
	// Walk through the P3 case analysis of Example 7 explicitly.
	r := Example7RQS()
	q2 := NewSet(0, 1, 2, 3, 4)  // {s1..s5}
	q2p := NewSet(0, 1, 2, 3, 5) // {s1..s4, s6}
	b12 := NewSet(0, 1)          // {s1,s2}
	b34 := NewSet(2, 3)          // {s3,s4}

	// P3a(Q2, Q2', B12) fails: Q2 ∩ Q2' \ B12 = {s3,s4} ∈ B.
	if r.P3a(q2, q2p, b12) {
		t.Error("P3a(Q2, Q2', B12) should fail")
	}
	// Hence P3b must hold (s2 witnesses it).
	if !r.P3b(q2, q2p, b12) {
		t.Error("P3b(Q2, Q2', B12) should hold")
	}
	// Same with B34.
	if r.P3a(q2, q2p, b34) {
		t.Error("P3a(Q2, Q2', B34) should fail")
	}
	if !r.P3b(q2, q2p, b34) {
		t.Error("P3b(Q2, Q2', B34) should hold")
	}
}

func TestContainedQuorum(t *testing.T) {
	r := Example7RQS()
	tests := []struct {
		name      string
		responded Set
		class     QuorumClass
		want      bool
	}{
		{"class1 exact", NewSet(1, 3, 4, 5), Class1, true},
		{"class1 superset", FullSet(6), Class1, true},
		{"class1 miss", NewSet(0, 1, 2, 3, 4), Class1, false},
		{"class2 via Q2", NewSet(0, 1, 2, 3, 4), Class2, true},
		{"class3 any quorum", NewSet(0, 1, 2, 3, 5), Class3, true},
		{"nothing", NewSet(0, 1), Class3, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q, ok := r.ContainedQuorum(tt.responded, tt.class)
			if ok != tt.want {
				t.Fatalf("ContainedQuorum = %v, want %v", ok, tt.want)
			}
			if ok && !q.SubsetOf(tt.responded) {
				t.Errorf("returned quorum %v escapes responded %v", q, tt.responded)
			}
		})
	}
}

func TestContainedQuorumsLists(t *testing.T) {
	r := FiveServerRQS()
	// All 5 servers responded: every minimal quorum is contained.
	all := r.ContainedQuorums(FullSet(5), Class2)
	if len(all) != 5 { // C(5,4) class-2 quorums
		t.Errorf("class-2 quorums contained in full set = %d, want 5", len(all))
	}
	some := r.ContainedQuorums(NewSet(0, 1, 2), Class2)
	if len(some) != 0 {
		t.Errorf("3 responders contain %d class-2 quorums, want 0", len(some))
	}
	c3 := r.ContainedQuorums(NewSet(0, 1, 2), Class3)
	if len(c3) != 1 {
		t.Errorf("3 responders contain %d class-3 quorums, want 1", len(c3))
	}
}

func TestNewStructuralErrors(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoQuorums) {
		t.Errorf("empty config: err = %v", err)
	}
	if _, err := New(Config{
		Universe: FullSet(3),
		Quorums:  []Set{NewSet(0, 5)},
	}); !errors.Is(err, ErrUniverse) {
		t.Errorf("escaping quorum: err = %v", err)
	}
	if _, err := New(Config{
		Universe: FullSet(3),
		Quorums:  []Set{NewSet(0, 1)},
		Class2:   []int{7},
	}); err == nil {
		t.Error("out-of-range class index should error")
	}
	if _, err := New(Config{
		Universe: FullSet(3),
		Quorums:  []Set{NewSet(0, 1)},
		Class1:   []int{-1},
	}); err == nil {
		t.Error("negative class index should error")
	}
}

func TestClassNesting(t *testing.T) {
	// Marking an index class 1 makes it class 1 even without listing it
	// in Class2; QuorumsOfClass must respect nesting.
	r := MustNew(Config{
		Universe: FullSet(4),
		Quorums:  []Set{NewSet(0, 1, 2), NewSet(1, 2, 3), FullSet(4)},
		Class2:   []int{1},
		Class1:   []int{2},
	})
	if n := len(r.QuorumsOfClass(Class3)); n != 3 {
		t.Errorf("class3 count = %d", n)
	}
	if n := len(r.QuorumsOfClass(Class2)); n != 2 {
		t.Errorf("class2 count = %d (class1 quorums are class 2 too)", n)
	}
	if n := len(r.QuorumsOfClass(Class1)); n != 1 {
		t.Errorf("class1 count = %d", n)
	}
	if !r.HasClass1() {
		t.Error("HasClass1 = false")
	}
	if MajorityRQS(3).HasClass1() {
		t.Error("majority system has no class-1 quorums")
	}
}

func TestLivenessQuorum(t *testing.T) {
	r := Example7RQS()
	if _, ok := r.LivenessQuorum(FullSet(6)); !ok {
		t.Error("full correct set must contain a quorum")
	}
	if _, ok := r.LivenessQuorum(NewSet(0, 1)); ok {
		t.Error("two servers contain no quorum")
	}
}

func TestVerifyDetectsP1Violation(t *testing.T) {
	// Two disjoint "quorums" violate Property 1 even under B = {∅}.
	r := MustNew(Config{
		Universe: FullSet(4),
		Quorums:  []Set{NewSet(0, 1), NewSet(2, 3)},
	})
	if err := r.Verify(); !errors.Is(err, ErrProperty1) {
		t.Errorf("Verify = %v, want P1 violation", err)
	}
}

func TestVerifyDetectsP2Violation(t *testing.T) {
	// A class-1 quorum whose self-intersection with a quorum is coverable
	// by two adversary sets.
	r := MustNew(Config{
		Universe:  FullSet(5),
		Adversary: NewThreshold(5, 1),
		Quorums:   []Set{NewSet(0, 1, 2), NewSet(1, 2, 3, 4)},
		Class2:    []int{0},
		Class1:    []int{0},
	})
	// P1 holds (every pairwise intersection has ≥ 2 elements) but
	// Q1 ∩ Q1 ∩ Q' = {1,2} is covered by two B_1 sets ⇒ P2 fails.
	if err := r.Verify(); !errors.Is(err, ErrProperty2) {
		t.Errorf("Verify = %v, want P2 violation", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on structural error")
		}
	}()
	MustNew(Config{})
}

func TestRQSStringAndClassString(t *testing.T) {
	if Class1.String() != "class 1" {
		t.Errorf("Class1.String() = %q", Class1.String())
	}
	s := Example7RQS().String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestQC1EqualsQC2ImpliesP2CoversP3(t *testing.T) {
	// Remark after Definition 2: when QC1 = QC2, Property 2 implies
	// Property 3. Build threshold systems with q = r and check that
	// whenever Validate passes on P1+P2 grounds, full Verify passes too.
	for n := 4; n <= 8; n++ {
		for t1 := 1; t1 <= 2; t1++ {
			for k := 0; k <= 1; k++ {
				for q := 0; q <= t1; q++ {
					p := ThresholdParams{N: n, T: t1, R: q, Q: q, K: k}
					r, err := NewThresholdRQS(p)
					if err != nil {
						continue
					}
					if err := r.Verify(); err != nil {
						t.Errorf("n=%d t=%d q=r=%d k=%d: %v", n, t1, q, k, err)
					}
				}
			}
		}
	}
}
