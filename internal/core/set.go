// Package core implements the mathematical heart of the paper: process
// sets, general adversary structures (Definition 1), and refined quorum
// systems with their three intersection properties (Definition 2).
//
// Everything downstream — the atomic storage of Section 3, the consensus
// protocol of Section 4, the analysis tools — is built on this package.
package core

import (
	"math/bits"
	"strconv"
	"strings"
)

// MaxProcesses is the largest universe a Set can describe. Sets are
// bitmasks, which keeps every quorum-intersection operation O(1); the
// paper's protocols are evaluated on far smaller systems.
const MaxProcesses = 64

// ProcessID identifies a process (server, acceptor, client) within a
// universe of at most MaxProcesses elements. IDs are dense, starting at 0.
type ProcessID = int

// Set is an immutable set of process IDs represented as a bitmask.
// The zero value is the empty set and is ready to use.
type Set uint64

// EmptySet is the set with no members.
const EmptySet Set = 0

// NewSet returns the set containing exactly the given members.
// Members outside [0, MaxProcesses) are ignored.
func NewSet(members ...ProcessID) Set {
	var s Set
	for _, m := range members {
		s = s.Add(m)
	}
	return s
}

// FullSet returns the set {0, 1, ..., n-1}.
func FullSet(n int) Set {
	if n <= 0 {
		return 0
	}
	if n >= MaxProcesses {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Add returns s ∪ {id}.
func (s Set) Add(id ProcessID) Set {
	if id < 0 || id >= MaxProcesses {
		return s
	}
	return s | Set(1)<<uint(id)
}

// Remove returns s \ {id}.
func (s Set) Remove(id ProcessID) Set {
	if id < 0 || id >= MaxProcesses {
		return s
	}
	return s &^ (Set(1) << uint(id))
}

// Contains reports whether id ∈ s.
func (s Set) Contains(id ProcessID) bool {
	if id < 0 || id >= MaxProcesses {
		return false
	}
	return s&(Set(1)<<uint(id)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// SupersetOf reports whether s ⊇ t.
func (s Set) SupersetOf(t Set) bool { return t.SubsetOf(s) }

// IsEmpty reports whether s = ∅.
func (s Set) IsEmpty() bool { return s == 0 }

// Count returns |s|.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Members returns the elements of s in increasing order.
func (s Set) Members() []ProcessID {
	out := make([]ProcessID, 0, s.Count())
	for v := uint64(s); v != 0; {
		id := bits.TrailingZeros64(v)
		out = append(out, id)
		v &= v - 1
	}
	return out
}

// LowestK returns the set of the k smallest members of s, or s itself
// when |s| ≤ k. It is the lexicographically first k-subset of s, which
// is also the first k-subset of s that Subsets enumerates.
func (s Set) LowestK(k int) Set {
	if k <= 0 {
		return 0
	}
	if s.Count() <= k {
		return s
	}
	v := uint64(s)
	for ; k > 0; k-- {
		v &= v - 1 // clear the k lowest bits one by one…
	}
	return s &^ Set(v) // …and keep exactly the bits cleared
}

// Min returns the smallest member of s, or -1 if s is empty.
func (s Set) Min() ProcessID {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// String renders the set as "{a,b,c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, m := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(m))
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets calls fn for every subset of s of exactly size k, in a
// deterministic order. It stops early if fn returns false. It reports
// whether the enumeration ran to completion.
func (s Set) Subsets(k int, fn func(Set) bool) bool {
	members := s.Members()
	if k < 0 || k > len(members) {
		return true
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		var sub Set
		for _, i := range idx {
			sub = sub.Add(members[i])
		}
		if !fn(sub) {
			return false
		}
		// Advance the combination indices.
		i := k - 1
		for i >= 0 && idx[i] == len(members)-k+i {
			i--
		}
		if i < 0 {
			return true
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// SubsetsAtLeast calls fn for every subset of s with size ≥ k.
// It stops early if fn returns false and reports whether it completed.
func (s Set) SubsetsAtLeast(k int, fn func(Set) bool) bool {
	for size := k; size <= s.Count(); size++ {
		if !s.Subsets(size, fn) {
			return false
		}
	}
	return true
}
