package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSetAndMembers(t *testing.T) {
	tests := []struct {
		name    string
		members []ProcessID
		want    []ProcessID
	}{
		{"empty", nil, []ProcessID{}},
		{"single", []ProcessID{3}, []ProcessID{3}},
		{"sorted", []ProcessID{5, 1, 3}, []ProcessID{1, 3, 5}},
		{"dupes", []ProcessID{2, 2, 2}, []ProcessID{2}},
		{"out of range ignored", []ProcessID{-1, 64, 100, 7}, []ProcessID{7}},
		{"boundary", []ProcessID{0, 63}, []ProcessID{0, 63}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewSet(tt.members...).Members()
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Members() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFullSet(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{{0, 0}, {-2, 0}, {1, 1}, {5, 5}, {63, 63}, {64, 64}, {100, 64}}
	for _, tt := range tests {
		if got := FullSet(tt.n).Count(); got != tt.want {
			t.Errorf("FullSet(%d).Count() = %d, want %d", tt.n, got, tt.want)
		}
	}
	for i := 0; i < 5; i++ {
		if !FullSet(5).Contains(i) {
			t.Errorf("FullSet(5) missing %d", i)
		}
	}
	if FullSet(5).Contains(5) {
		t.Error("FullSet(5) contains 5")
	}
}

func TestSetOperations(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)
	if got := a.Union(b); got != NewSet(1, 2, 3, 4) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewSet(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != NewSet(1, 2) {
		t.Errorf("Diff = %v", got)
	}
	if !NewSet(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf misbehaves")
	}
	if !a.SupersetOf(NewSet(2)) {
		t.Error("SupersetOf misbehaves")
	}
	if !EmptySet.IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty misbehaves")
	}
	if a.Min() != 1 || EmptySet.Min() != -1 {
		t.Error("Min misbehaves")
	}
	if got := a.Remove(2); got != NewSet(1, 3) {
		t.Errorf("Remove = %v", got)
	}
	if got := a.Remove(-1); got != a {
		t.Errorf("Remove(-1) = %v", got)
	}
	if a.Contains(64) || a.Contains(-1) {
		t.Error("Contains out-of-range should be false")
	}
}

func TestSetString(t *testing.T) {
	if got := NewSet(2, 0, 5).String(); got != "{0,2,5}" {
		t.Errorf("String() = %q", got)
	}
	if got := EmptySet.String(); got != "{}" {
		t.Errorf("String() = %q", got)
	}
}

func TestSubsetsEnumeratesAllCombinations(t *testing.T) {
	s := NewSet(0, 1, 2, 3, 4)
	counts := map[int]int{0: 1, 1: 5, 2: 10, 3: 10, 4: 5, 5: 1}
	for k, want := range counts {
		got := 0
		seen := map[Set]bool{}
		s.Subsets(k, func(sub Set) bool {
			got++
			if sub.Count() != k {
				t.Errorf("subset %v has size %d, want %d", sub, sub.Count(), k)
			}
			if !sub.SubsetOf(s) {
				t.Errorf("subset %v escapes %v", sub, s)
			}
			if seen[sub] {
				t.Errorf("subset %v enumerated twice", sub)
			}
			seen[sub] = true
			return true
		})
		if got != want {
			t.Errorf("Subsets(%d) enumerated %d, want %d", k, got, want)
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := NewSet(0, 1, 2, 3)
	calls := 0
	done := s.Subsets(2, func(Set) bool {
		calls++
		return calls < 3
	})
	if done {
		t.Error("Subsets should report early stop")
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestSubsetsDegenerate(t *testing.T) {
	s := NewSet(0, 1)
	if !s.Subsets(-1, func(Set) bool { t.Error("called"); return true }) {
		t.Error("k<0 should complete vacuously")
	}
	if !s.Subsets(3, func(Set) bool { t.Error("called"); return true }) {
		t.Error("k>|s| should complete vacuously")
	}
}

func TestSubsetsAtLeast(t *testing.T) {
	s := NewSet(0, 1, 2, 3)
	got := 0
	s.SubsetsAtLeast(3, func(sub Set) bool {
		got++
		if sub.Count() < 3 {
			t.Errorf("size %d < 3", sub.Count())
		}
		return true
	})
	if got != 5 { // C(4,3)+C(4,4)
		t.Errorf("enumerated %d, want 5", got)
	}
}

// Property-based tests over random sets.

func randomSet(r *rand.Rand) Set { return Set(r.Uint64()) & Set(FullSet(16)) }

func TestQuickSetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	// Union is commutative and monotone; De Morgan over a universe.
	if err := quick.Check(func(x, y uint16) bool {
		a, b := Set(x), Set(y)
		u := FullSet(16)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if !a.SubsetOf(a.Union(b)) || !a.Intersect(b).SubsetOf(a) {
			return false
		}
		// |A| + |B| = |A∪B| + |A∩B|
		if a.Count()+b.Count() != a.Union(b).Count()+a.Intersect(b).Count() {
			return false
		}
		// De Morgan: U \ (A∪B) == (U\A) ∩ (U\B)
		return u.Diff(a.Union(b)) == u.Diff(a).Intersect(u.Diff(b))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMembersRoundTrip(t *testing.T) {
	if err := quick.Check(func(x uint16) bool {
		s := Set(x)
		return NewSet(s.Members()...) == s && s.Count() == len(s.Members())
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetTransitivity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b, c := randomSet(r), randomSet(r), randomSet(r)
		ab, bc := a.Intersect(b), b.Union(c)
		if !ab.SubsetOf(b) {
			t.Fatalf("A∩B ⊄ B: %v %v", a, b)
		}
		if !b.SubsetOf(bc) {
			t.Fatalf("B ⊄ B∪C")
		}
		if ab.SubsetOf(b) && b.SubsetOf(bc) && !ab.SubsetOf(bc) {
			t.Fatalf("transitivity broken")
		}
	}
}
