package core

import "fmt"

// ThresholdParams describes the threshold instantiation of Example 6:
// |S| = n processes, adversary B_k, quorums contain all but at most t
// processes, class-2 quorums all but at most r, class-1 all but at most q,
// with 0 ≤ q ≤ r ≤ t.
type ThresholdParams struct {
	N int // number of processes
	T int // class-3 quorums have size ≥ n-t
	R int // class-2 quorums have size ≥ n-r
	Q int // class-1 quorums have size ≥ n-q
	K int // adversary threshold (at most k Byzantine)
}

// Validate checks the inequalities of Example 6, i.e. the conditions under
// which the threshold family is a refined quorum system:
//
//	Property 1 ⟺ n > 2t + k
//	Property 2 ⟺ n > t + 2k + 2q
//	Property 3 ⟺ n > t + r + k + min(k, q)
//
// equivalently n > t + k + max(t, k+2q, r+min(k,q)).
func (p ThresholdParams) Validate() error {
	if p.N <= 0 || p.N > MaxProcesses {
		return fmt.Errorf("threshold: n=%d out of range", p.N)
	}
	if p.Q < 0 || p.Q > p.R || p.R > p.T {
		return fmt.Errorf("threshold: need 0 ≤ q ≤ r ≤ t, got q=%d r=%d t=%d", p.Q, p.R, p.T)
	}
	if p.K < 0 {
		return fmt.Errorf("threshold: k=%d negative", p.K)
	}
	if p.N <= 2*p.T+p.K {
		return fmt.Errorf("%w: need n > 2t+k (n=%d, t=%d, k=%d)", ErrProperty1, p.N, p.T, p.K)
	}
	if p.N <= p.T+2*p.K+2*p.Q {
		return fmt.Errorf("%w: need n > t+2k+2q (n=%d)", ErrProperty2, p.N)
	}
	if p.N <= p.T+p.R+p.K+min(p.K, p.Q) {
		return fmt.Errorf("%w: need n > t+r+k+min(k,q) (n=%d)", ErrProperty3, p.N)
	}
	return nil
}

// MinimalN returns the smallest n for which the parameters (t, r, q, k)
// form a refined quorum system: t + k + max(t, k+2q, r+min(k,q)) + 1.
func MinimalN(t, r, q, k int) int {
	return t + k + max(t, max(k+2*q, r+min(k, q))) + 1
}

// NewThresholdRQS enumerates the minimal quorums of the threshold family
// of Example 6 into an explicit RQS: all subsets of size n-t (class 3),
// n-r (class 2) and n-q (class 1). Listing only minimal quorums is
// sufficient for the protocols: any responding superset contains one.
//
// The enumeration is combinatorial; it is intended for the protocol-scale
// systems of the paper (n up to roughly 16). Validate is called first.
func NewThresholdRQS(p ThresholdParams) (*RQS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	universe := FullSet(p.N)
	var (
		quorums []Set
		class2  []int
		class1  []int
	)
	appendSize := func(size int, cls QuorumClass) {
		universe.Subsets(size, func(s Set) bool {
			idx := len(quorums)
			quorums = append(quorums, s)
			switch cls {
			case Class1:
				class1 = append(class1, idx)
			case Class2:
				class2 = append(class2, idx)
			}
			return true
		})
	}
	appendSize(p.N-p.T, Class3)
	if p.R < p.T {
		appendSize(p.N-p.R, Class2)
	} else {
		// r == t: every minimal quorum is class 2.
		for i := range quorums {
			class2 = append(class2, i)
		}
	}
	switch {
	case p.Q < p.R:
		appendSize(p.N-p.Q, Class1)
	case p.Q == p.R && p.R < p.T:
		// q == r < t: the class-2 layer is also class 1.
		for i := len(quorums) - binomial(p.N, p.N-p.R); i < len(quorums); i++ {
			class1 = append(class1, i)
		}
	default:
		// q == r == t: everything is class 1.
		for i := range quorums {
			class1 = append(class1, i)
		}
	}
	r, err := New(Config{
		Universe:  universe,
		Adversary: NewThreshold(p.N, p.K),
		Quorums:   quorums,
		Class2:    class2,
		Class1:    class1,
	})
	if err != nil {
		return nil, err
	}
	// Record the block structure of the quorum list (same-size runs with
	// their final declared class, in list order) so containment queries
	// can use the O(1) cardinality fast path. This mirrors the class
	// markings above, including the degenerate q = r and r = t cases.
	blocks := []quorumBlock{{size: p.N - p.T, class: Class3}}
	if p.R < p.T {
		blocks = append(blocks, quorumBlock{size: p.N - p.R, class: Class2})
	} else {
		blocks[0].class = Class2
	}
	switch {
	case p.Q < p.R:
		blocks = append(blocks, quorumBlock{size: p.N - p.Q, class: Class1})
	case p.R < p.T: // q == r < t
		blocks[len(blocks)-1].class = Class1
	default: // q == r == t
		blocks[0].class = Class1
	}
	r.blocks = blocks
	return r, nil
}

// binomial returns C(n, k) for small n, saturating at a large value.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}
