package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestThresholdParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       ThresholdParams
		wantErr error
	}{
		{"five-server crash system", ThresholdParams{N: 5, T: 2, R: 1, Q: 1, K: 0}, nil},
		{"pbft-style t=1", ThresholdParams{N: 4, T: 1, R: 1, Q: 0, K: 1}, nil},
		{"pbft-style t=2", ThresholdParams{N: 7, T: 2, R: 2, Q: 0, K: 2}, nil},
		{"fast byzantine 5t+1", ThresholdParams{N: 6, T: 1, R: 1, Q: 1, K: 1}, nil},
		{"fast byzantine below 5t+1", ThresholdParams{N: 5, T: 1, R: 1, Q: 1, K: 1}, ErrProperty2},
		{"P1 fails", ThresholdParams{N: 5, T: 2, R: 2, Q: 2, K: 1}, ErrProperty1},
		{"P3 fails", ThresholdParams{N: 8, T: 3, R: 3, Q: 1, K: 1}, ErrProperty3},
		{"bad ordering", ThresholdParams{N: 5, T: 1, R: 2, Q: 0, K: 0}, nil},
		{"n too big", ThresholdParams{N: 100, T: 1, R: 1, Q: 1, K: 1}, nil},
		{"negative k", ThresholdParams{N: 5, T: 1, R: 1, Q: 1, K: -1}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			switch tt.name {
			case "bad ordering", "n too big", "negative k":
				if err == nil {
					t.Error("want structural error")
				}
			default:
				if tt.wantErr == nil && err != nil {
					t.Errorf("Validate = %v, want nil", err)
				}
				if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
					t.Errorf("Validate = %v, want %v", err, tt.wantErr)
				}
			}
		})
	}
}

func TestValidateAgreesWithBruteForceVerify(t *testing.T) {
	// Example 6's closed-form inequalities must coincide with the
	// brute-force property check on the enumerated system. We sweep all
	// small parameterisations.
	for n := 3; n <= 8; n++ {
		for tt := 1; tt < n; tt++ {
			for r := 0; r <= tt; r++ {
				for q := 0; q <= r; q++ {
					for k := 0; k <= 2; k++ {
						p := ThresholdParams{N: n, T: tt, R: r, Q: q, K: k}
						closed := p.Validate()
						if closed != nil {
							continue // enumerate only claimed-valid systems
						}
						rqs, err := NewThresholdRQS(p)
						if err != nil {
							t.Fatalf("%+v: constructor failed: %v", p, err)
						}
						if err := rqs.Verify(); err != nil {
							t.Errorf("%+v: closed form says valid, Verify says %v", p, err)
						}
					}
				}
			}
		}
	}
}

func TestInvalidClosedFormAlsoFailsVerify(t *testing.T) {
	// Conversely: where the closed form rejects for a property reason,
	// force-build the family anyway and confirm brute force also rejects
	// (tightness of the Example 6 inequalities).
	cases := []ThresholdParams{
		{N: 5, T: 2, R: 2, Q: 2, K: 1}, // P1: n ≤ 2t+k
		{N: 5, T: 1, R: 1, Q: 1, K: 1}, // P2: n ≤ t+2k+2q
		{N: 8, T: 3, R: 3, Q: 1, K: 1}, // P3: n ≤ t+r+k+min(k,q)
	}
	for _, p := range cases {
		if p.Validate() == nil {
			t.Fatalf("%+v unexpectedly valid", p)
		}
		rqs := forceThreshold(t, p)
		if err := rqs.Verify(); err == nil {
			t.Errorf("%+v: closed form rejects but Verify accepts", p)
		}
	}
}

// forceThreshold builds the threshold family without Validate gating.
func forceThreshold(t *testing.T, p ThresholdParams) *RQS {
	t.Helper()
	universe := FullSet(p.N)
	var quorums []Set
	var class2, class1 []int
	add := func(size int) (from, to int) {
		from = len(quorums)
		universe.Subsets(size, func(s Set) bool {
			quorums = append(quorums, s)
			return true
		})
		return from, len(quorums)
	}
	add(p.N - p.T)
	f2, t2 := add(p.N - p.R)
	for i := f2; i < t2; i++ {
		class2 = append(class2, i)
	}
	f1, t1 := add(p.N - p.Q)
	for i := f1; i < t1; i++ {
		class1 = append(class1, i)
	}
	r, err := New(Config{
		Universe:  universe,
		Adversary: NewThreshold(p.N, p.K),
		Quorums:   quorums,
		Class2:    class2,
		Class1:    class1,
	})
	if err != nil {
		t.Fatalf("force build: %v", err)
	}
	return r
}

func TestMinimalN(t *testing.T) {
	tests := []struct {
		t, r, q, k int
		want       int
	}{
		{1, 1, 0, 1, 4}, // PBFT-style: 3t+1
		{2, 2, 0, 2, 7}, // 3t+1 with t=2
		{1, 1, 1, 1, 6}, // all-fast Byzantine: 5t+1 (Martin–Alvisi)
		{2, 1, 1, 0, 5}, // the five-server crash system of §1.2
		{1, 0, 0, 0, 3}, // crash majority with fast path at full set
		{2, 2, 2, 0, 7}, // crash fast consensus, q=r=t: n > 2q+t (Example 5)
	}
	for _, tt := range tests {
		if got := MinimalN(tt.t, tt.r, tt.q, tt.k); got != tt.want {
			t.Errorf("MinimalN(t=%d,r=%d,q=%d,k=%d) = %d, want %d",
				tt.t, tt.r, tt.q, tt.k, got, tt.want)
		}
	}
}

func TestMinimalNIsTight(t *testing.T) {
	// MinimalN must be exactly the threshold where Validate flips.
	if err := quick.Check(func(tt, rr, qq, kk uint8) bool {
		tv, kv := int(tt%4)+1, int(kk%3)
		rv := int(rr) % (tv + 1)
		qv := int(qq) % (rv + 1)
		n := MinimalN(tv, rv, qv, kv)
		if n > MaxProcesses {
			return true
		}
		ok := ThresholdParams{N: n, T: tv, R: rv, Q: qv, K: kv}.Validate() == nil
		tooSmall := ThresholdParams{N: n - 1, T: tv, R: rv, Q: qv, K: kv}.Validate() == nil
		return ok && !tooSmall
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPBFTStyleRQS(t *testing.T) {
	for tt := 1; tt <= 2; tt++ {
		r, err := PBFTStyleRQS(tt)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if err := r.Verify(); err != nil {
			t.Errorf("t=%d: %v", tt, err)
		}
		if n := len(r.QuorumsOfClass(Class1)); n != 1 {
			t.Errorf("t=%d: class-1 quorums = %d, want 1 (the full set)", tt, n)
		}
		q1 := r.QuorumsOfClass(Class1)[0]
		if q1 != FullSet(3*tt+1) {
			t.Errorf("t=%d: class-1 quorum = %v, want full set", tt, q1)
		}
	}
}

func TestNewThresholdRQSQuorumCounts(t *testing.T) {
	r := FiveServerRQS() // N=5 T=2 R=1 Q=1
	c3 := len(r.Quorums())
	if c3 != 10+5 { // C(5,3) minimal quorums + C(5,4) class-2/1
		t.Errorf("total quorums = %d, want 15", c3)
	}
	if n := len(r.QuorumsOfClass(Class2)); n != 5 {
		t.Errorf("class-2 quorums = %d, want 5", n)
	}
	if n := len(r.QuorumsOfClass(Class1)); n != 5 {
		t.Errorf("class-1 quorums = %d, want 5 (q == r)", n)
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 3, 10}, {6, 2, 15},
		{5, -1, 0}, {5, 6, 0}, {10, 5, 252},
	}
	for _, tt := range tests {
		if got := binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}
