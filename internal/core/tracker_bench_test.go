package core

import (
	"testing"
)

// benchSystems spans the engine's regimes: Example 7 (general
// adversary, tiny quorum list — scan territory), the three-class
// threshold system on 8 servers (O(1) cardinality path), and the
// 175-quorum list for n=10 rebuilt as an explicit Config so it runs the
// postings-list path — the regime the incremental engine exists for.
func benchSystems(b *testing.B) map[string]*RQS {
	b.Helper()
	th, err := NewThresholdRQS(ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	th10, err := NewThresholdRQS(ThresholdParams{N: 10, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	var class1, class2 []int
	for i, q := range th10.Quorums() {
		if cls, _ := th10.ClassOfListed(q); cls <= Class2 {
			class2 = append(class2, i)
			if cls == Class1 {
				class1 = append(class1, i)
			}
		}
	}
	biglist := MustNew(Config{
		Universe:  th10.Universe(),
		Adversary: th10.Adversary(),
		Quorums:   th10.Quorums(),
		Class2:    class2,
		Class1:    class1,
	})
	return map[string]*RQS{"example7": Example7RQS(), "threshold8": th, "biglist175": biglist}
}

// BenchmarkCoreTrackerVsScan measures one protocol round's worth of
// quorum checks — an ack from every server, with a containment query
// after each — on the old per-ack rescan versus the incremental tracker.
func BenchmarkCoreTrackerVsScan(b *testing.B) {
	for name, r := range benchSystems(b) {
		members := r.Universe().Members()
		b.Run("scan/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var responded Set
				for _, p := range members {
					responded = responded.Add(p)
					r.scanContainedQuorum(responded, Class3)
				}
				if _, ok := r.scanContainedQuorum(responded, Class1); !ok {
					b.Fatal("no class-1 quorum")
				}
				r.scanContainedQuorums(responded, Class2)
			}
		})
		b.Run("tracker/"+name, func(b *testing.B) {
			tr := r.NewTracker()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				for _, p := range members {
					if tr.Add(p) {
						tr.Contained(Class3)
					}
				}
				if _, ok := tr.Contained(Class1); !ok {
					b.Fatal("no class-1 quorum")
				}
				tr.ContainedAll(Class2)
			}
		})
	}
}

// BenchmarkCoreTrackerAdd isolates the per-ack cost: postings-list
// update (general) or counter bump (threshold).
func BenchmarkCoreTrackerAdd(b *testing.B) {
	for name, r := range benchSystems(b) {
		members := r.Universe().Members()
		tr := r.NewTracker()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				for _, p := range members {
					tr.Add(p)
				}
			}
		})
	}
}
