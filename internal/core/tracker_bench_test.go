package core

import (
	"testing"
)

// benchSystems spans the engine's regimes: Example 7 (general
// adversary, tiny dense quorum list — scan territory), the three-class
// threshold system on 8 servers (O(1) cardinality path), the
// 175-quorum list for n=10 rebuilt as an explicit Config (dense, so
// the hybrid sends it to the scan), and a sparse grid-style system
// whose quorums cover a sliver of the universe each — the regime the
// postings-list tracker exists for.
func benchSystems(b *testing.B) map[string]*RQS {
	b.Helper()
	th, err := NewThresholdRQS(ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	th10, err := NewThresholdRQS(ThresholdParams{N: 10, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	var class1, class2 []int
	for i, q := range th10.Quorums() {
		if cls, _ := th10.ClassOfListed(q); cls <= Class2 {
			class2 = append(class2, i)
			if cls == Class1 {
				class1 = append(class1, i)
			}
		}
	}
	biglist := MustNew(Config{
		Universe:  th10.Universe(),
		Adversary: th10.Adversary(),
		Quorums:   th10.Quorums(),
		Class2:    class2,
		Class1:    class1,
	})
	return map[string]*RQS{
		"example7":   Example7RQS(),
		"threshold8": th,
		"biglist175": biglist,
		"sparsegrid": sparseGridRQS(),
		"sparse448":  sparseBigRQS(),
	}
}

// sparseBigRQS is the postings path's home regime: 448 distinct
// 4-member quorums over 56 processes (xorshift-generated, fixed seed).
// Σ|q|/n = 32 postings touched per ack versus a 448-entry list scan.
func sparseBigRQS() *RQS {
	const n, size, count = 56, 4, 448
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	seen := make(map[Set]bool, count)
	var quorums []Set
	for len(quorums) < count {
		var q Set
		for q.Count() < size {
			q = q.Add(int(next() % n))
		}
		if !seen[q] {
			seen[q] = true
			quorums = append(quorums, q)
		}
	}
	idxs := make([]int, len(quorums))
	for i := range idxs {
		idxs[i] = i
	}
	return MustNew(Config{Universe: FullSet(n), Quorums: quorums, Class2: idxs, Class1: idxs})
}

// sparseGridRQS builds a 5×5 grid over 25 processes whose quorums are
// the rows and columns: 10 quorums of 5, so 2·Σ|q| = 100 < n·|Q| = 250
// and the hybrid engine picks the postings path.
func sparseGridRQS() *RQS {
	const side = 5
	var quorums []Set
	for r := 0; r < side; r++ {
		var row, col Set
		for c := 0; c < side; c++ {
			row = row.Add(r*side + c)
			col = col.Add(c*side + r)
		}
		quorums = append(quorums, row, col)
	}
	// Flag every quorum class-1 so the bench's class-1/class-2 queries
	// have answers; the engine choice only depends on the list shape.
	idxs := make([]int, len(quorums))
	for i := range idxs {
		idxs[i] = i
	}
	return MustNew(Config{Universe: FullSet(side * side), Quorums: quorums, Class2: idxs, Class1: idxs})
}

// TestEngineModeChoice pins the hybrid engine's Σ|q| decision on the
// bench systems: dense lists must not regress onto the postings path.
func TestEngineModeChoice(t *testing.T) {
	th, err := NewThresholdRQS(ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	th10, _ := NewThresholdRQS(ThresholdParams{N: 10, T: 3, R: 2, Q: 1, K: 1})
	biglist := MustNew(Config{
		Universe:  th10.Universe(),
		Adversary: th10.Adversary(),
		Quorums:   th10.Quorums(),
	})
	cases := []struct {
		name string
		r    *RQS
		want string
	}{
		{"threshold8", th, "threshold"},
		{"example7", Example7RQS(), "scan"},
		// biglist175 rebuilds a threshold quorum list as an explicit
		// user config: block detection at Index() time must recognize
		// it and grant the O(1) path even without NewThresholdRQS.
		{"biglist175", biglist, "threshold"},
		{"sparsegrid", sparseGridRQS(), "postings"},
		{"sparse448", sparseBigRQS(), "postings"},
	}
	for _, c := range cases {
		if got := c.r.Index().EngineMode(); got != c.want {
			t.Errorf("%s: EngineMode = %q, want %q", c.name, got, c.want)
		}
	}
}

// BenchmarkCoreTrackerVsScan measures one protocol round's worth of
// quorum checks — an ack from every server, with a containment query
// after each — on the old per-ack rescan versus the incremental tracker.
func BenchmarkCoreTrackerVsScan(b *testing.B) {
	for name, r := range benchSystems(b) {
		members := r.Universe().Members()
		b.Run("scan/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var responded Set
				for _, p := range members {
					responded = responded.Add(p)
					r.scanContainedQuorum(responded, Class3)
				}
				if _, ok := r.scanContainedQuorum(responded, Class1); !ok {
					b.Fatal("no class-1 quorum")
				}
				r.scanContainedQuorums(responded, Class2)
			}
		})
		b.Run("tracker/"+name, func(b *testing.B) {
			tr := r.NewTracker()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				for _, p := range members {
					if tr.Add(p) {
						tr.Contained(Class3)
					}
				}
				if _, ok := tr.Contained(Class1); !ok {
					b.Fatal("no class-1 quorum")
				}
				tr.ContainedAll(Class2)
			}
		})
	}
}

// BenchmarkCoreTrackerAdd isolates the per-ack cost: postings-list
// update (general) or counter bump (threshold).
func BenchmarkCoreTrackerAdd(b *testing.B) {
	for name, r := range benchSystems(b) {
		members := r.Universe().Members()
		tr := r.NewTracker()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				for _, p := range members {
					tr.Add(p)
				}
			}
		})
	}
}
