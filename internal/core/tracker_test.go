package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// diffSystems are the instances the differential tests run over: the
// paper's worked examples (general adversaries, scan path), every
// degenerate shape of the threshold family (O(1) fast path), and a
// batch of seeded random structured systems.
func diffSystems(t testing.TB) map[string]*RQS {
	t.Helper()
	out := map[string]*RQS{
		"example7":        Example7RQS(),
		"fig3":            Fig3RQS(),
		"majority5":       MajorityRQS(5),
		"byzantineThird7": ByzantineThirdRQS(7),
		"fiveServer":      FiveServerRQS(),
	}
	thresholds := []ThresholdParams{
		{T: 3, R: 2, Q: 1, K: 1}, // q < r < t
		{T: 2, R: 2, Q: 1, K: 1}, // q < r = t
		{T: 2, R: 1, Q: 1, K: 1}, // q = r < t
		{T: 2, R: 2, Q: 2, K: 1}, // q = r = t
		{T: 1, R: 1, Q: 0, K: 1}, // PBFT-style n = 3t+1
	}
	for _, p := range thresholds {
		p.N = MinimalN(p.T, p.R, p.Q, p.K)
		r, err := NewThresholdRQS(p)
		if err != nil {
			t.Fatalf("threshold %+v: %v", p, err)
		}
		out[fmt.Sprintf("threshold-t%dr%dq%dk%d", p.T, p.R, p.Q, p.K)] = r
	}
	// Random structured systems: random quorums with random class
	// promotions. Containment queries do not require the intersection
	// properties to hold, so these need not be valid RQSs.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		n := 5 + rng.Intn(4)
		universe := FullSet(n)
		nq := 2 + rng.Intn(6)
		cfg := Config{Universe: universe, Adversary: NewThreshold(n, 1)}
		for q := 0; q < nq; q++ {
			var s Set
			for s.Count() < 1+rng.Intn(n) {
				s = s.Add(rng.Intn(n))
			}
			idx := len(cfg.Quorums)
			cfg.Quorums = append(cfg.Quorums, s)
			switch rng.Intn(3) {
			case 1:
				cfg.Class2 = append(cfg.Class2, idx)
			case 2:
				cfg.Class2 = append(cfg.Class2, idx)
				cfg.Class1 = append(cfg.Class1, idx)
			}
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatalf("random config %d: %v", i, err)
		}
		out[fmt.Sprintf("random%d", i)] = r
	}
	return out
}

func sameSets(a, b []Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstScans asserts that every tracker verdict and both RQS
// containment entry points agree exactly with the reference scans for
// the given response set.
func checkAgainstScans(t *testing.T, r *RQS, tr *QuorumTracker, responded Set) {
	t.Helper()
	if tr.Responded() != responded {
		t.Fatalf("Responded() = %v, want %v", tr.Responded(), responded)
	}
	for c := Class1; c <= Class3; c++ {
		wantQ, wantOK := r.scanContainedQuorum(responded, c)
		gotQ, gotOK := tr.Contained(c)
		if gotQ != wantQ || gotOK != wantOK {
			t.Fatalf("responded=%v class=%v: tracker.Contained = (%v,%v), scan = (%v,%v)",
				responded, c, gotQ, gotOK, wantQ, wantOK)
		}
		gotQ, gotOK = r.ContainedQuorum(responded, c)
		if gotQ != wantQ || gotOK != wantOK {
			t.Fatalf("responded=%v class=%v: ContainedQuorum = (%v,%v), scan = (%v,%v)",
				responded, c, gotQ, gotOK, wantQ, wantOK)
		}
		wantAll := r.scanContainedQuorums(responded, c)
		if gotAll := tr.ContainedAll(c); !sameSets(gotAll, wantAll) {
			t.Fatalf("responded=%v class=%v: tracker.ContainedAll = %v, scan = %v",
				responded, c, gotAll, wantAll)
		}
		if gotAll := r.ContainedQuorums(responded, c); !sameSets(gotAll, wantAll) {
			t.Fatalf("responded=%v class=%v: ContainedQuorums = %v, scan = %v",
				responded, c, gotAll, wantAll)
		}
	}
	if want := r.universe.SubsetOf(responded); tr.Complete() != want {
		t.Fatalf("responded=%v: Complete() = %v, want %v", responded, tr.Complete(), want)
	}
}

// TestTrackerMatchesScansDifferential drives trackers through seeded
// random ack orders (with duplicates and an out-of-universe process) on
// every instance and asserts verdict-for-verdict agreement with the
// reference scans after every single ack.
func TestTrackerMatchesScansDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, r := range diffSystems(t) {
		r := r
		t.Run(name, func(t *testing.T) {
			tr := r.NewTracker()
			for trial := 0; trial < 20; trial++ {
				tr.Reset()
				var responded Set
				checkAgainstScans(t, r, tr, responded)
				order := append(r.Universe().Members(), r.N()+1) // one stranger
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				for _, p := range order {
					if changed := tr.Add(p); !changed {
						t.Fatalf("Add(%d) reported no change on first ack", p)
					}
					if tr.Add(p) {
						t.Fatalf("Add(%d) reported change on duplicate ack", p)
					}
					responded = responded.Add(p)
					checkAgainstScans(t, r, tr, responded)
				}
			}
		})
	}
}

// TestTrackerAddSetMatchesScans exercises the bulk-add path on random
// response sets via testing/quick.
func TestTrackerAddSetMatchesScans(t *testing.T) {
	for name, r := range diffSystems(t) {
		r := r
		t.Run(name, func(t *testing.T) {
			tr := r.NewTracker()
			check := func(raw uint64) bool {
				responded := Set(raw) & FullSet(r.N()+2)
				tr.Reset()
				tr.AddSet(responded)
				for c := Class1; c <= Class3; c++ {
					wantQ, wantOK := r.scanContainedQuorum(responded, c)
					if gotQ, gotOK := tr.Contained(c); gotQ != wantQ || gotOK != wantOK {
						return false
					}
					if !sameSets(tr.ContainedAll(c), r.scanContainedQuorums(responded, c)) {
						return false
					}
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(99))}
			if err := quick.Check(check, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLowestK(t *testing.T) {
	s := NewSet(1, 3, 4, 9, 12)
	cases := []struct {
		k    int
		want Set
	}{
		{0, EmptySet},
		{1, NewSet(1)},
		{3, NewSet(1, 3, 4)},
		{5, s},
		{9, s},
	}
	for _, tt := range cases {
		if got := s.LowestK(tt.k); got != tt.want {
			t.Errorf("LowestK(%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
}

func TestTrackerEmptyQuorumIsContained(t *testing.T) {
	// A listed empty quorum is vacuously contained in any response set,
	// including the empty one; the tracker must agree with the scan.
	r := MustNew(Config{
		Universe: FullSet(3),
		Quorums:  []Set{EmptySet, NewSet(0, 1)},
	})
	tr := r.NewTracker()
	if q, ok := tr.Contained(Class3); !ok || q != EmptySet {
		t.Fatalf("Contained = (%v,%v), want (∅,true)", q, ok)
	}
	checkAgainstScans(t, r, tr, EmptySet)
}

func TestIndexClassOf(t *testing.T) {
	r := Example7RQS()
	idx := r.Index()
	for _, q := range r.Quorums() {
		want, wantOK := r.ClassOfListed(q)
		if got, ok := idx.ClassOf(q); got != want || ok != wantOK {
			t.Errorf("ClassOf(%v) = (%v,%v), want (%v,%v)", q, got, ok, want, wantOK)
		}
	}
	if _, ok := idx.ClassOf(NewSet(0)); ok {
		t.Error("ClassOf(unlisted) = true, want false")
	}
}
