package expt

import (
	"sync"
	"time"

	"repro/internal/abd"
	"repro/internal/histcheck"
	"repro/internal/transport"
)

// E1Result is the outcome of the Figure 1 schedule for one algorithm.
type E1Result struct {
	Algorithm string
	Rd1       abd.Result // the read rd by reader r
	Rd2       abd.Result // the read rd' by reader r'
	Violation string     // empty if the history is atomic
}

// E1Fig1 replays the Figure 1 / Section 1.2 schedule against the greedy
// 5-server algorithm (fast at 3 servers — the paper proves it non-atomic)
// and against the safe variant (fast at 4 servers):
//
//	ex3: the writer's round-1 message reaches only server 3; the writer
//	     never completes (it crashed).
//	     rd by r talks only to Q2 = {3,4,5} and returns.
//	ex4: servers 3 and 5 crash; rd' by r' talks to Q3 = {1,2,4}.
//
// The greedy algorithm returns v from rd and ⊥ from rd' — a read
// inversion; the safe variant's rd writes back before returning, so rd'
// still sees v.
func E1Fig1() (*Table, []E1Result) {
	tbl := &Table{
		ID:      "E1",
		Title:   "Figure 1 / §1.2: greedy 3-fast algorithm violates atomicity, 4-fast does not",
		Columns: []string{"algorithm", "rd rounds", "rd value", "rd' rounds", "rd' value", "atomicity"},
	}
	var results []E1Result
	for _, cfg := range []struct {
		name string
		p    abd.Params
	}{
		{"greedy (fast at 3)", abd.GreedyFive(4 * time.Millisecond)},
		{"safe (fast at 4, §1.2)", abd.FastFive(4 * time.Millisecond)},
	} {
		res := runE1Schedule(cfg.p)
		res.Algorithm = cfg.name
		verdict := "OK"
		if res.Violation != "" {
			verdict = "VIOLATED: " + res.Violation
		}
		tbl.AddRow(res.Algorithm, res.Rd1.Rounds, render(res.Rd1.Val), res.Rd2.Rounds, render(res.Rd2.Val), verdict)
		results = append(results, res)
	}
	tbl.Notes = append(tbl.Notes,
		"servers are paper-numbered 1..5 (IDs 0..4); writer ID 5, readers IDs 6 and 7",
		"the incomplete write is recorded as pending, so returning v or ⊥ is individually legal — only the inversion is illegal")
	return tbl, results
}

func render(v string) string {
	if v == "" {
		return "⊥"
	}
	return v
}

// runE1Schedule drives one algorithm through the ex3/ex4 schedule.
func runE1Schedule(p abd.Params) E1Result {
	const (
		writerID = 5
		r1ID     = 6
		r2ID     = 7
	)
	net := transport.NewNetwork(8)
	defer net.Close()
	var servers []*abd.Server
	for i := 0; i < p.N; i++ {
		s := abd.NewServer(net.Port(i))
		s.Start()
		servers = append(servers, s)
	}
	defer func() {
		for _, s := range servers {
			s.Stop()
		}
	}()

	// Schedule filter: the writer reaches only server 3 (ID 2); reader r
	// talks only to Q2 = servers {3,4,5} (IDs 2,3,4).
	net.SetFilter(func(env transport.Envelope) transport.Verdict {
		if env.From == writerID && env.To != 2 {
			return transport.Drop
		}
		if env.From == r1ID && env.To <= 1 || env.To == r1ID && env.From <= 1 {
			return transport.Drop
		}
		return transport.Deliver
	})

	rec := histcheck.NewRecorder()
	// The writer crashes mid-operation: the write never completes, which
	// we model by recording it as pending (response at +∞).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := abd.NewWriter(p, net.Port(writerID))
		w.Write("v") // blocks until the network closes
	}()
	rec.Record(histcheck.Op{
		Kind: histcheck.Write, Client: "w", TS: 1,
		Inv: time.Now(), Resp: time.Now().Add(time.Hour),
	})

	time.Sleep(2 * p.Timeout) // let the round-1 write land on server 3

	r1 := abd.NewReader(p, net.Port(r1ID))
	inv := time.Now()
	rd1 := r1.Read()
	rec.Record(histcheck.Op{Kind: histcheck.Read, Client: "r", TS: rd1.TS, Inv: inv, Resp: time.Now()})

	// ex4: servers 3 and 5 (IDs 2 and 4) crash; rd' reads Q3 = {1,2,4}.
	net.Crash(2)
	net.Crash(4)
	r2 := abd.NewReader(p, net.Port(r2ID))
	inv = time.Now()
	rd2 := r2.Read()
	rec.Record(histcheck.Op{Kind: histcheck.Read, Client: "r'", TS: rd2.TS, Inv: inv, Resp: time.Now()})

	res := E1Result{Rd1: rd1, Rd2: rd2}
	if v := rec.Check(); v != nil {
		res.Violation = v.Reason
	}
	net.Close()
	wg.Wait()
	return res
}
