package expt

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
)

// E2Fig2 reproduces the intersection argument of Figure 2: in a universe
// of 5 servers, triples of 3-subsets can have an empty common
// intersection (which is why the greedy algorithm of Figure 1 fails),
// while any two 4-subsets and any 3-subset always intersect.
func E2Fig2() *Table {
	tbl := &Table{
		ID:      "E2",
		Title:   "Figure 2: quorum-triple intersections in n=5",
		Columns: []string{"family (|Q1|,|Q2|,|Q3|)", "triples", "empty intersections", "min |∩|"},
	}
	universe := core.FullSet(5)
	count := func(s1, s2, s3 int) (total, empty, minInter int) {
		minInter = 5
		universe.Subsets(s1, func(a core.Set) bool {
			universe.Subsets(s2, func(b core.Set) bool {
				universe.Subsets(s3, func(c core.Set) bool {
					total++
					k := a.Intersect(b).Intersect(c).Count()
					if k == 0 {
						empty++
					}
					if k < minInter {
						minInter = k
					}
					return true
				})
				return true
			})
			return true
		})
		return total, empty, minInter
	}
	for _, f := range [][3]int{{3, 3, 3}, {4, 4, 3}} {
		total, empty, minInter := count(f[0], f[1], f[2])
		tbl.AddRow(fmt.Sprintf("(%d,%d,%d)", f[0], f[1], f[2]), total, empty, minInter)
	}
	tbl.Notes = append(tbl.Notes,
		"(3,3,3) admits empty intersections ⇒ Fig. 1's atomicity violation; (4,4,3) never does ⇒ the §1.2 fast variant is safe")
	return tbl
}

// E3Fig3 verifies the Figure 3 / Example 1 refined quorum system and
// classifies its quorums, demonstrating that cardinality does not
// determine class.
func E3Fig3() *Table {
	tbl := &Table{
		ID:      "E3",
		Title:   "Figure 3 / Example 1: verification and classification (8 elements, B_1)",
		Columns: []string{"quorum", "size", "class", "Verify"},
	}
	r := core.Fig3RQS()
	err := r.Verify()
	verdict := "valid RQS"
	if err != nil {
		verdict = err.Error()
	}
	for _, q := range r.Quorums() {
		cls, _ := r.ClassOfListed(q)
		tbl.AddRow(q, q.Count(), cls, verdict)
	}
	tbl.Notes = append(tbl.Notes,
		"the 5-element quorum is class 1 while the 6-element quorum is only class 3: intersections, not cardinality, decide class")
	return tbl
}

// E9MinimalN tabulates the minimal system sizes of Example 6's closed
// form n > t + k + max(t, k+2q, r+min(k,q)) and cross-checks each against
// brute-force verification of the enumerated family.
func E9MinimalN() *Table {
	tbl := &Table{
		ID:      "E9",
		Title:   "Examples 5-6: minimal |S| for threshold RQS (t, r, q, k)",
		Columns: []string{"t", "r", "q", "k", "min n", "known instance"},
	}
	known := map[analysis.MinNRow]string{
		{T: 1, R: 1, Q: 0, K: 1, MinN: 4}: "PBFT n=3t+1",
		{T: 2, R: 2, Q: 0, K: 2, MinN: 7}: "PBFT n=3t+1",
		{T: 1, R: 1, Q: 1, K: 1, MinN: 6}: "FaB n=5t+1 (Martin-Alvisi)",
		{T: 1, R: 0, Q: 0, K: 1, MinN: 4}: "Zyzzyva-style full-set fast path",
		{T: 2, R: 1, Q: 1, K: 0, MinN: 5}: "§1.2 five-server crash system",
		{T: 1, R: 1, Q: 1, K: 0, MinN: 4}: "Fast Paxos n=2q+t+1 (Lamport)",
		{T: 2, R: 2, Q: 2, K: 0, MinN: 7}: "Fast Paxos n=2q+t+1 (Lamport)",
	}
	for _, row := range analysis.MinimalNTable(2, 2) {
		tbl.AddRow(row.T, row.R, row.Q, row.K, row.MinN, known[row])
	}
	tbl.Notes = append(tbl.Notes,
		"every row is checked minimal against brute-force property verification in the test suite")
	return tbl
}

// E12Availability sweeps the independent crash probability p and reports
// the fast-path availability of each quorum class plus the expected
// best-case operation latency, for the three-class threshold system
// n=8, t=3, r=2, q=1, k=1.
func E12Availability() *Table {
	tbl := &Table{
		ID:      "E12",
		Title:   "Availability: P(class-m quorum of correct servers) and E[rounds | live], n=8 t=3 r=2 q=1 k=1",
		Columns: []string{"p(crash)", "A(class1)", "A(class2)", "A(class3)", "E[rounds]", "P(live)"},
	}
	r, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		panic(err) // statically valid parameters
	}
	for _, p := range []float64{0.01, 0.05, 0.10, 0.20, 0.30, 0.50} {
		a1 := analysis.Availability(r, core.Class1, p)
		a2 := analysis.Availability(r, core.Class2, p)
		a3 := analysis.Availability(r, core.Class3, p)
		exp, live := analysis.ExpectedRounds(r, p)
		tbl.AddRow(
			fmt.Sprintf("%.2f", p),
			fmt.Sprintf("%.4f", a1),
			fmt.Sprintf("%.4f", a2),
			fmt.Sprintf("%.4f", a3),
			fmt.Sprintf("%.3f", exp),
			fmt.Sprintf("%.4f", live),
		)
	}
	tbl.Notes = append(tbl.Notes,
		"graceful degradation pays exactly in the gap between A(class1) and A(class3): the system stays live and only slows from 1 towards 3 rounds")
	return tbl
}
