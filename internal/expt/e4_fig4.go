package expt

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// E4Fig4 replays the executions of Figure 4 (Example 7) on the real
// storage protocol over the six-server general-adversary RQS:
//
//	ex1: all servers alive — write(1) completes in a single round
//	     through the class-1 quorum Q1.
//	ex3: a second write stalls (reaches only s1..s5, never completes);
//	     the read rd by r1 talks to Q2 and returns the new value after
//	     two rounds, writing the class-2 quorum id back (lines 43-46).
//	ex4: s5 crashes and B12 = {s1,s2} turn Byzantine, "forgetting" rd's
//	     round 2 (they report the value without the attached quorum id);
//	     the read rd' by r2 talks to Q2' and must still return the value
//	     — server s2 ∈ Q1 ∩ Q2 ∩ Q2' \ B34 (Property 3b's witness) is
//	     what makes that possible.
//
// The recorded history is checked for atomicity.
func E4Fig4() *Table {
	tbl := &Table{
		ID:      "E4",
		Title:   "Figure 4 / Example 7: storage executions on the general-adversary RQS",
		Columns: []string{"execution", "operation", "rounds", "value", "verdict"},
	}

	const (
		sFive = 4 // s5
		sSix  = 5 // s6
	)
	var (
		c          *sim.StorageCluster
		forgetting atomic.Bool
	)
	// B12 = {s1, s2}: once activated, they report their real state with
	// the round-2 writeback's quorum ids stripped.
	forget := func(id core.ProcessID) storage.Hooks {
		return storage.Hooks{ForgeHistory: func() storage.History {
			h := c.Servers[id].HistorySnapshot()
			if !forgetting.Load() {
				return h
			}
			for ts, row := range h {
				for i := range row {
					row[i].Sets = nil
				}
				h[ts] = row
			}
			return h
		}}
	}
	c = sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: 2 * time.Millisecond,
		Clients: 3,
		Hooks:   map[core.ProcessID]storage.Hooks{0: forget(0), 1: forget(1)},
	})
	defer c.Stop()
	rec := histcheck.NewRecorder()
	record := func(kind histcheck.Kind, client string, ts int64, inv time.Time) {
		rec.Record(histcheck.Op{Kind: kind, Client: client, TS: ts, Inv: inv, Resp: time.Now()})
	}

	w := c.Writer()
	r1 := c.Reader()
	r2 := c.Reader()

	// ex1: plain fast write.
	inv := time.Now()
	w1 := w.Write("one")
	record(histcheck.Write, "w", w1.TS, inv)
	tbl.AddRow("ex1", "write(1)", w1.Rounds, "one", verdictRounds(w1.Rounds, 1))

	// ex3: the next write stalls — s6 is cut off from everyone and the
	// writer's rounds ≥ 2 are held, so write(2) reaches s1..s5 in round 1
	// and never completes.
	writerID := core.ProcessID(6)
	r1ID := core.ProcessID(7)
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		if env.From == sSix || env.To == sSix {
			return transport.Drop
		}
		if env.From == writerID {
			if req, isW := env.Payload.(storage.WriteReq); isW && req.Round >= 2 {
				return transport.Drop
			}
		}
		return transport.Deliver
	})
	invW := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Write("two") // stalls until the network closes
	}()
	record(histcheck.Write, "w", w1.TS+1, invW) // pending write; see E1 notes
	time.Sleep(6 * time.Millisecond)

	inv = time.Now()
	rd1 := r1.Read()
	record(histcheck.Read, "r1", rd1.TS, inv)
	tbl.AddRow("ex3", "rd by r1 (Q2)", rd1.Rounds, render(rd1.Val), verdictRounds(rd1.Rounds, 2))

	// ex4: s5 crashes, B12 forget rd's round 2, s6 becomes reachable
	// again for r2; rd' talks to Q2'.
	c.Net.Crash(sFive)
	forgetting.Store(true)
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		if env.From == sSix && env.To != 8 || env.To == sSix && env.From != 8 {
			return transport.Drop
		}
		if env.From == writerID || env.To == writerID {
			return transport.Drop
		}
		if env.From == r1ID || env.To == r1ID {
			return transport.Drop
		}
		return transport.Deliver
	})
	inv = time.Now()
	rd2 := r2.Read()
	record(histcheck.Read, "r2", rd2.TS, inv)
	tbl.AddRow("ex4", "rd' by r2 (Q2')", rd2.Rounds, render(rd2.Val), verdictValue(rd2.Val, "two"))

	verdict := "atomic"
	if v := rec.Check(); v != nil {
		verdict = "VIOLATED: " + v.Reason
	}
	tbl.AddRow("all", "history check", "-", "-", verdict)
	tbl.Notes = append(tbl.Notes,
		"rd' succeeds because s2 (the P3b witness of Q1∩Q2∩Q2'∖B34) vouches for the value: Property 3 at work")

	c.Net.Close() // unblock the stalled writer before Stop
	wg.Wait()
	return tbl
}

func verdictRounds(got, want int) string {
	if got == want {
		return "OK"
	}
	return "UNEXPECTED"
}

func verdictValue(got, want string) string {
	if got == want {
		return "OK (returned the stalled write's value)"
	}
	return "UNEXPECTED: " + render(got)
}
