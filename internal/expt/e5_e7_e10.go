package expt

import (
	"fmt"
	"time"

	"repro/internal/abd"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/pbft"
	"repro/internal/sim"
	"repro/internal/transport"
)

// threeClassRQS is the n=8, t=3, r=2, q=1, k=1 threshold system with
// three genuinely distinct quorum classes, used by E5, E7 and E12.
func threeClassRQS() *core.RQS {
	r, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		panic(err) // statically valid parameters
	}
	return r
}

// E5StorageLatency measures storage rounds per surviving quorum class
// (Theorem 9: the algorithm is (m,QCm)-fast) against the ABD baseline
// (reads always two rounds) on the same crash patterns.
func E5StorageLatency() *Table {
	tbl := &Table{
		ID:      "E5",
		Title:   "Storage best-case latency in rounds (RQS n=8 t=3 r=2 q=1 k=1 vs ABD majority n=8)",
		Columns: []string{"surviving class", "crashed", "RQS write", "RQS read", "ABD write", "ABD read"},
	}
	const timeout = 2 * time.Millisecond
	cases := []struct {
		label string
		crash core.Set
	}{
		{"class 1 (7 alive)", core.NewSet(7)},
		{"class 2 (6 alive)", core.NewSet(6, 7)},
		{"class 3 (5 alive)", core.NewSet(5, 6, 7)},
	}
	for _, tc := range cases {
		// RQS storage.
		c := sim.NewStorageCluster(threeClassRQS(), sim.StorageOptions{Timeout: timeout})
		c.CrashServers(tc.crash)
		w, r := c.Writer(), c.Reader()
		wres := w.Write("v")
		rres := r.Read()
		c.Stop()

		// ABD baseline on 8 servers (majority 5): survives ≤ 3 crashes.
		bw, br := runABD(8, tc.crash, timeout)
		tbl.AddRow(tc.label, tc.crash, wres.Rounds, rres.Rounds, bw, br)
	}
	tbl.Notes = append(tbl.Notes,
		"shape matches §3: RQS degrades 1→2→3 rounds with the surviving class; ABD reads pay 2 rounds regardless",
		"reads here follow a complete write, so the BCD lets even class-3 reads finish in 1 round;",
		"the 2- and 3-round read paths appear when reads race incomplete writes (see E4 and E6)")
	return tbl
}

func runABD(n int, crash core.Set, timeout time.Duration) (writeRounds, readRounds int) {
	p := abd.Classic(n, timeout)
	net := transport.NewNetwork(n + 2)
	defer net.Close()
	var servers []*abd.Server
	for i := 0; i < n; i++ {
		s := abd.NewServer(net.Port(i))
		s.Start()
		servers = append(servers, s)
	}
	defer func() {
		for _, s := range servers {
			s.Stop()
		}
	}()
	for _, id := range crash.Members() {
		net.Crash(id)
	}
	w := abd.NewWriter(p, net.Port(n))
	r := abd.NewReader(p, net.Port(n+1))
	wres := w.Write("v")
	rres := r.Read()
	return wres.Rounds, rres.Rounds
}

// E7ConsensusLatency measures learning latency in message delays per
// surviving class (Definition 4: (m,QCm)-fast means m+1 delays) against
// the PBFT-style baseline, which always takes 4.
func E7ConsensusLatency() *Table {
	tbl := &Table{
		ID:      "E7",
		Title:   "Consensus best-case latency in message delays (RQS n=8 t=3 r=2 q=1 k=1 vs PBFT n=7)",
		Columns: []string{"surviving class", "crashed", "RQS delays", "PBFT delays"},
	}
	cases := []struct {
		label string
		crash core.Set
	}{
		{"class 1 (7 alive)", core.NewSet(7)},
		{"class 2 (6 alive)", core.NewSet(6, 7)},
		{"class 3 (5 alive)", core.NewSet(5, 6, 7)},
	}
	for _, tc := range cases {
		c, err := sim.NewConsensusCluster(threeClassRQS(), sim.ConsensusOptions{Learners: 1})
		if err != nil {
			panic(err)
		}
		c.CrashAcceptors(tc.crash)
		c.Proposers[0].Propose("v")
		res, ok := c.Learners[0].Wait(10 * time.Second)
		c.Stop()
		hops := -1
		if ok {
			hops = res.Hops
		}

		// PBFT baseline: n=7 tolerates 2 crashes; cap the crash set.
		pb := pbft.NewCluster(7, 1)
		crashed := 0
		for _, id := range tc.crash.Members() {
			if crashed >= 2 {
				break
			}
			if id < 7 {
				pb.Net.Crash(id)
				crashed++
			}
		}
		pb.Propose("v")
		pres, pok := pb.Learners[0].Wait(10 * time.Second)
		pb.Stop()
		phops := -1
		if pok {
			phops = pres.Hops
		}
		tbl.AddRow(tc.label, tc.crash, hops, phops)
	}
	tbl.Notes = append(tbl.Notes,
		"shape matches §4: RQS learns in 2/3/4 delays by class; the no-fast-path baseline is pinned at 4")
	return tbl
}

// E10ViewChange runs the consensus under contention (two proposers,
// different values) and under a muted initial leader, reporting time to
// agreement through the Election module.
func E10ViewChange() *Table {
	tbl := &Table{
		ID:      "E10",
		Title:   "Election module: agreement under contention and leader failure (Example 7 RQS)",
		Columns: []string{"scenario", "learned", "agreement", "elapsed"},
	}

	runContention := func() (string, bool, time.Duration) {
		c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{
			Election:  consensus.ElectionConfig{Enabled: true, InitTimeout: 40 * time.Millisecond},
			PullEvery: 25 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		defer c.Stop()
		start := time.Now()
		c.Proposers[0].Propose("zero")
		c.Proposers[1].Propose("one")
		var first string
		agree := true
		for _, l := range c.Learners {
			res, ok := l.Wait(20 * time.Second)
			if !ok {
				return "timeout", false, time.Since(start)
			}
			if first == "" {
				first = res.V
			} else if res.V != first {
				agree = false
			}
		}
		return first, agree, time.Since(start)
	}

	runMuteLeader := func() (string, bool, time.Duration) {
		c, err := sim.NewConsensusCluster(core.Example7RQS(), sim.ConsensusOptions{
			Election:  consensus.ElectionConfig{Enabled: true, InitTimeout: 40 * time.Millisecond},
			PullEvery: 25 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		defer c.Stop()
		p0 := c.Topo.Proposers[0]
		c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
			if env.From == p0 {
				if _, isPrep := env.Payload.(consensus.PrepareMsg); isPrep {
					return transport.Drop
				}
			}
			return transport.Deliver
		})
		start := time.Now()
		c.Proposers[0].Propose("lost")
		c.Proposers[1].Propose("backup")
		var first string
		agree := true
		for _, l := range c.Learners {
			res, ok := l.Wait(20 * time.Second)
			if !ok {
				return "timeout", false, time.Since(start)
			}
			if first == "" {
				first = res.V
			} else if res.V != first {
				agree = false
			}
		}
		return first, agree, time.Since(start)
	}

	v, agree, d := runContention()
	tbl.AddRow("two proposers, contention in view 0", v, agree, fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000))
	v, agree, d = runMuteLeader()
	tbl.AddRow("initial leader mute, view change", v, agree, fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000))
	tbl.Notes = append(tbl.Notes,
		"eventual synchrony: the doubling suspect timeout (Figure 14) guarantees progress after GST")
	return tbl
}
