package expt

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// E6Outcome is the Theorem 3 schedule's result on one quorum system.
type E6Outcome struct {
	System     string
	Rd1        storage.ReadResult
	Rd2        storage.ReadResult
	Rd2Blocked bool
	Violation  string
}

// E6Theorem3 replays the proof schedule of Theorem 3 against the real
// storage protocol, once on Example7Broken (Property 3 violated: s2 is
// dropped from the class-1 quorum) and once on the valid Example 7 RQS:
//
//  1. write(v1) reaches s1..s5 in round 1, Q1 ∩ Q2 in round 2, then the
//     writer crashes (rounds ≥ 3 are dropped).
//  2. rd1 talks only to Q1 and — with Q1 ∩ Q2's round-2 state — returns
//     v1 in a single round (the (1,Q1)-fast behaviour of the proof).
//  3. s5 crashes; B = {s3,s4} turn Byzantine and forge their state back
//     to σ0 (the initial state), exactly as in execution ex4.
//  4. rd2 talks to Q2'.
//
// On the broken system rd2 returns ⊥ — a read inversion against rd1,
// reproducing the violation the proof constructs. On the valid system the
// same schedule cannot break safety: s2's round-2 state keeps v1 alive
// and rd2 (whose liveness premise — a fully correct quorum — no longer
// holds) simply cannot terminate, let alone return ⊥.
func E6Theorem3() (*Table, []E6Outcome) {
	tbl := &Table{
		ID:      "E6",
		Title:   "Theorem 3: the proof schedule on a P3-violating RQS vs the valid Example 7 RQS",
		Columns: []string{"system", "rd1", "rd2", "atomicity"},
	}
	var outcomes []E6Outcome
	for _, sys := range []struct {
		name string
		rqs  *core.RQS
	}{
		{"broken (P3 violated)", core.Example7Broken()},
		{"valid Example 7", core.Example7RQS()},
	} {
		out := runTheorem3Schedule(sys.rqs)
		out.System = sys.name
		rd2desc := render(out.Rd2.Val)
		if out.Rd2Blocked {
			rd2desc = "blocked (liveness premise broken, safety intact)"
		}
		verdict := "atomic"
		if out.Violation != "" {
			verdict = "VIOLATED: " + out.Violation
		}
		tbl.AddRow(out.System, render(out.Rd1.Val), rd2desc, verdict)
		outcomes = append(outcomes, out)
	}
	tbl.Notes = append(tbl.Notes,
		"with Property 3, s2 ∈ Q1∩Q2 carries the write's round-2 state into rd2's view, blocking the ⊥ answer",
		"without it, rd2 cannot distinguish the schedule from one where no write happened, and returns ⊥ — the Theorem 3 violation")
	return tbl, outcomes
}

func runTheorem3Schedule(rqs *core.RQS) E6Outcome {
	const (
		sSix     = core.ProcessID(5)
		writerID = core.ProcessID(6)
		r1ID     = core.ProcessID(7)
		r2ID     = core.ProcessID(8)
	)
	q1 := rqs.QuorumsOfClass(core.Class1)[0]
	q2 := core.NewSet(0, 1, 2, 3, 4)  // Q2
	q2p := core.NewSet(0, 1, 2, 3, 5) // Q2'
	round2Dst := q1.Intersect(q2)

	var (
		c       *sim.StorageCluster
		forging atomic.Bool
	)
	sigma0 := func(id core.ProcessID) storage.Hooks {
		return storage.Hooks{ForgeHistory: func() storage.History {
			if forging.Load() {
				return storage.History{}
			}
			return c.Servers[id].HistorySnapshot()
		}}
	}
	c = sim.NewStorageCluster(rqs, sim.StorageOptions{
		Timeout: 2 * time.Millisecond,
		Clients: 3,
		Hooks:   map[core.ProcessID]storage.Hooks{2: sigma0(2), 3: sigma0(3)},
	})
	defer c.Stop()

	// Phase 1: the write. Round 1 misses s6; round 2 reaches only
	// Q1 ∩ Q2; the writer then crashes (everything later is dropped).
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		if env.From == writerID || env.To == writerID {
			if env.From == writerID {
				req, isW := env.Payload.(storage.WriteReq)
				switch {
				case !isW:
					return transport.Drop
				case req.Round == 1 && env.To == sSix:
					return transport.Drop
				case req.Round == 2 && !round2Dst.Contains(env.To):
					return transport.Drop
				case req.Round >= 3:
					return transport.Drop
				}
			}
		}
		return transport.Deliver
	})
	rec := histcheck.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	w := c.Writer()
	go func() {
		defer wg.Done()
		w.Write("v1") // stalls in round 2 forever
	}()
	rec.Record(histcheck.Op{
		Kind: histcheck.Write, Client: "w", TS: 1,
		Inv: time.Now(), Resp: time.Now().Add(time.Hour),
	})
	time.Sleep(10 * time.Millisecond)

	// Phase 2: rd1 talks only to Q1.
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		switch {
		case env.From == r1ID && !q1.Contains(env.To),
			env.To == r1ID && !q1.Contains(env.From):
			return transport.Drop
		case env.From == writerID || env.To == writerID:
			return transport.Drop
		}
		return transport.Deliver
	})
	r1 := c.Reader()
	inv := time.Now()
	rd1 := r1.Read()
	rec.Record(histcheck.Op{Kind: histcheck.Read, Client: "r1", TS: rd1.TS, Inv: inv, Resp: time.Now()})

	// Phase 3: s5 crashes, {s3, s4} forge σ0.
	c.Net.Crash(4)
	forging.Store(true)

	// Phase 4: rd2 talks to Q2' (everything else for r2 is dropped).
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		switch {
		case env.From == r2ID && !q2p.Contains(env.To),
			env.To == r2ID && !q2p.Contains(env.From):
			return transport.Drop
		case env.From == writerID || env.To == writerID,
			env.From == r1ID || env.To == r1ID:
			return transport.Drop
		}
		return transport.Deliver
	})
	r2 := c.Reader()
	out := E6Outcome{Rd1: rd1}
	type rdRes struct{ res storage.ReadResult }
	ch := make(chan rdRes, 1)
	inv = time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- rdRes{r2.Read()}
	}()
	select {
	case r := <-ch:
		out.Rd2 = r.res
		rec.Record(histcheck.Op{Kind: histcheck.Read, Client: "r2", TS: r.res.TS, Inv: inv, Resp: time.Now()})
	case <-time.After(150 * time.Millisecond):
		out.Rd2Blocked = true
	}
	if v := rec.Check(); v != nil {
		out.Violation = v.Reason
	}
	c.Net.Close() // unblock the stalled writer (and rd2, if blocked)
	wg.Wait()
	return out
}
