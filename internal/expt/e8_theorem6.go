package expt

import (
	"repro/internal/consensus"
	"repro/internal/core"
)

// E8Outcome is the Theorem 6 replay's result on one quorum system.
type E8Outcome struct {
	System  string
	Decided consensus.Value // what learner l1 already decided in view 0
	Choose  consensus.ChooseResult
	// AgreementViolated is true when choose() locks a different value
	// than the one already decided — the Theorem 6 disagreement.
	AgreementViolated bool
}

// E8Theorem6 replays the Theorem 6 proof at the point where consensus
// safety lives: the choose() function evaluating the view-1 vProof that
// the schedule of Figure 16 produces.
//
// The scenario (contention in view 0, exactly as the proof's ex3-ex5):
// proposer p0 proposes "0", p1 proposes "1". Honest acceptors s1, s2
// receive p0's prepare and prepare "0" (sending — and later
// countersigning — update1〈0,0〉). Honest s5, s6 prepare "1"; learner l1
// decides "1" via a class-1 quorum of update1 messages. The Byzantine
// acceptors B = {s3, s4} then lie in the view change: they claim to have
// 1-updated "0" in view 0 with quorum Q2, certifying the claim with the
// (real!) countersignatures of s1, s2 and their own — a certificate from
// a basic subset, so it validates.
//
// On the valid Example 7 RQS, the class-1 quorum contains s2, so l1's
// decision forces s2 to vouch for "1"; Valid3 then fails at s2 and
// choose() aborts (Lemma 25's boxed case). On the broken RQS, Q1 misses
// s2, s2 can honestly report "0", Valid3 passes, and choose() locks "0"
// against the decided "1" — agreement is gone.
func E8Theorem6() (*Table, []E8Outcome) {
	tbl := &Table{
		ID:      "E8",
		Title:   "Theorem 6: the Figure 16 view-change attack at choose(), broken vs valid RQS",
		Columns: []string{"system", "decided in view 0", "choose() result", "agreement"},
	}
	var outcomes []E8Outcome
	for _, sys := range []struct {
		name   string
		rqs    *core.RQS
		s2Prep consensus.Value // forced by membership of the class-1 quorum
	}{
		{"broken (P3 violated)", core.Example7Broken(), "0"},
		{"valid Example 7", core.Example7RQS(), "1"},
	} {
		out := runTheorem6Choose(sys.rqs, sys.s2Prep)
		out.System = sys.name
		desc := "returned " + out.Choose.V
		if out.Choose.Abort {
			desc = "abort (Byzantine quorum detected)"
		}
		verdict := "safe"
		if out.AgreementViolated {
			verdict = "VIOLATED: locks 0 against decided 1"
		}
		tbl.AddRow(out.System, out.Decided, desc, verdict)
		outcomes = append(outcomes, out)
	}
	tbl.Notes = append(tbl.Notes,
		"the vProof is fully signature-checked (ValidateVProof) before choose() runs: the attack needs no forged signatures,",
		"only the honest update1〈0,0〉 countersignatures of s1 and s2 that view-0 contention legitimately produced")
	return tbl, outcomes
}

func runTheorem6Choose(rqs *core.RQS, s2Prep consensus.Value) E8Outcome {
	ring, signers, err := consensus.GenKeys(rqs.Universe())
	if err != nil {
		panic(err)
	}
	q2 := core.NewSet(0, 1, 2, 3, 4)  // Q2
	q2p := core.NewSet(0, 1, 2, 3, 5) // Q2' — the consult-phase quorum Q

	// Countersignatures over update1〈"0", view 0〉 from s1, s2 (honest:
	// they really prepared "0" and sent that update) and s3 (Byzantine,
	// signing its own lie): {s1,s2,s3} ∉ B, a valid basic subset.
	proof := []consensus.SignedUpdate{
		signers[0].SignUpdate(1, "0", 0),
		signers[1].SignUpdate(1, "0", 0),
		signers[2].SignUpdate(1, "0", 0),
	}

	honest := func(id core.ProcessID, prep consensus.Value) consensus.NewViewAck {
		body := consensus.AckBody{View: 1, Prep: prep, Prepview: []int{0}}
		return consensus.NewViewAck{Acceptor: id, Body: body, Sig: signers[id].SignAckBody(body)}
	}
	liar := func(id core.ProcessID) consensus.NewViewAck {
		body := consensus.AckBody{View: 1, Prep: "0", Prepview: []int{0}}
		body.Update[0] = "0"
		body.Updateview[0] = []int{0}
		body.UpdateQ[0] = map[int][]core.Set{0: {q2}}
		body.Updateproof[0] = map[int][]consensus.SignedUpdate{0: proof}
		return consensus.NewViewAck{Acceptor: id, Body: body, Sig: signers[id].SignAckBody(body)}
	}

	vProof := consensus.VProof{
		0: honest(0, "0"),    // s1 prepared p0's value
		1: honest(1, s2Prep), // s2: "0" unless the class-1 decision forced "1"
		2: liar(2),           // s3 Byzantine
		3: liar(3),           // s4 Byzantine
		5: honest(5, "1"),    // s6 prepared p1's (decided) value
	}
	if !consensus.ValidateVProof(ring, rqs, 1, vProof, q2p) {
		panic("expt: constructed vProof should validate")
	}
	res := consensus.Choose(rqs, core.Elements(rqs.Adversary()), "leader-default", vProof, q2p)
	return E8Outcome{
		Decided:           "1",
		Choose:            res,
		AgreementViolated: !res.Abort && res.V == "0",
	}
}
