package expt

import (
	"strconv"
	"strings"
	"testing"
)

func TestE1GreedyViolatesSafeDoesNot(t *testing.T) {
	_, results := E1Fig1()
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	greedy, safe := results[0], results[1]
	if greedy.Violation == "" {
		t.Error("greedy 3-fast algorithm should violate atomicity (Figure 1)")
	}
	if greedy.Rd1.Rounds != 1 {
		t.Errorf("greedy rd rounds = %d, want 1", greedy.Rd1.Rounds)
	}
	if safe.Violation != "" {
		t.Errorf("safe 4-fast variant violated atomicity: %s", safe.Violation)
	}
	if safe.Rd2.Val != "v" {
		t.Errorf("safe rd' = %q, want v", safe.Rd2.Val)
	}
}

func TestE2IntersectionCounts(t *testing.T) {
	tbl := E2Fig2()
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// (3,3,3) must admit empty triple intersections; (4,4,3) must not.
	if tbl.Rows[0][2] == "0" {
		t.Error("(3,3,3) should have empty intersections")
	}
	if tbl.Rows[1][2] != "0" {
		t.Errorf("(4,4,3) empty intersections = %s, want 0", tbl.Rows[1][2])
	}
	if tbl.Rows[1][3] == "0" {
		t.Error("(4,4,3) min intersection should be ≥ 1")
	}
}

func TestE3VerifiesFig3(t *testing.T) {
	tbl := E3Fig3()
	for _, row := range tbl.Rows {
		if row[3] != "valid RQS" {
			t.Errorf("Fig3 verification failed: %v", row)
		}
	}
}

func TestE4Fig4Executions(t *testing.T) {
	tbl := E4Fig4()
	for _, row := range tbl.Rows {
		if strings.Contains(row[4], "VIOLATED") || strings.Contains(row[4], "UNEXPECTED") {
			t.Errorf("E4 row failed: %v", row)
		}
	}
}

func TestE5LatencyShape(t *testing.T) {
	tbl := E5StorageLatency()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		wantRounds := strconv.Itoa(i + 1)
		if row[2] != wantRounds {
			t.Errorf("class %d RQS write rounds = %s, want %s", i+1, row[2], wantRounds)
		}
		if row[3] > wantRounds {
			t.Errorf("class %d RQS read rounds = %s, want ≤ %s", i+1, row[3], wantRounds)
		}
		if row[5] != "2" {
			t.Errorf("ABD read rounds = %s, want 2", row[5])
		}
	}
}

func TestE6Theorem3Shape(t *testing.T) {
	_, outcomes := E6Theorem3()
	broken, valid := outcomes[0], outcomes[1]
	if broken.Rd1.Val != "v1" {
		t.Errorf("broken rd1 = %+v, want v1", broken.Rd1)
	}
	if broken.Violation == "" {
		t.Error("broken system should violate atomicity under the Theorem 3 schedule")
	}
	if valid.Violation != "" {
		t.Errorf("valid system violated atomicity: %s", valid.Violation)
	}
	if valid.Rd1.Val != "v1" {
		t.Errorf("valid rd1 = %+v, want v1", valid.Rd1)
	}
	if !valid.Rd2Blocked && valid.Rd2.Val != "v1" {
		t.Errorf("valid rd2 = %+v, want v1 or blocked", valid.Rd2)
	}
}

func TestE7LatencyShape(t *testing.T) {
	tbl := E7ConsensusLatency()
	wantRQS := []string{"2", "3", "4"}
	for i, row := range tbl.Rows {
		if row[2] != wantRQS[i] {
			t.Errorf("class %d RQS delays = %s, want %s", i+1, row[2], wantRQS[i])
		}
		if row[3] != "4" {
			t.Errorf("PBFT delays = %s, want 4", row[3])
		}
	}
}

func TestE8Theorem6Shape(t *testing.T) {
	_, outcomes := E8Theorem6()
	broken, valid := outcomes[0], outcomes[1]
	if !broken.AgreementViolated {
		t.Errorf("broken system should violate agreement; choose = %+v", broken.Choose)
	}
	if valid.AgreementViolated {
		t.Error("valid system violated agreement")
	}
	if !valid.Choose.Abort && valid.Choose.V != "1" {
		t.Errorf("valid choose = %+v, want abort or the decided value 1", valid.Choose)
	}
}

func TestE9TableHasKnownInstances(t *testing.T) {
	tbl := E9MinimalN()
	var sawPBFT, sawFaB bool
	for _, row := range tbl.Rows {
		switch row[5] {
		case "PBFT n=3t+1":
			sawPBFT = true
		case "FaB n=5t+1 (Martin-Alvisi)":
			sawFaB = true
		}
	}
	if !sawPBFT || !sawFaB {
		t.Error("E9 should annotate the known PBFT and FaB instantiations")
	}
}

func TestE10Converges(t *testing.T) {
	tbl := E10ViewChange()
	for _, row := range tbl.Rows {
		if row[1] == "timeout" {
			t.Errorf("E10 scenario %q did not converge", row[0])
		}
		if row[2] != "true" {
			t.Errorf("E10 scenario %q: agreement = %s", row[0], row[2])
		}
	}
}

func TestE12Monotone(t *testing.T) {
	tbl := E12Availability()
	prev := 2.0
	for _, row := range tbl.Rows {
		a1, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if a1 > prev {
			t.Errorf("class-1 availability should fall with p: %v", row)
		}
		prev = a1
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "bbbb"},
		Notes:   []string{"hello"},
	}
	tbl.AddRow(1, "y")
	out := tbl.Format()
	for _, want := range []string{"== X — demo ==", "a", "bbbb", "1", "y", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}
