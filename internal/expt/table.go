// Package expt contains the executable experiments E1–E12 of
// EXPERIMENTS.md: one runner per table/figure/claim of the paper. The
// bench harness (bench_test.go), the rqs-bench binary and the test suite
// all call into these runners.
package expt

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
