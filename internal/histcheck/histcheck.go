// Package histcheck checks recorded operation histories of a register
// for atomicity (linearizability, Lamport [33] / Herlihy–Wing [25]).
//
// Because the storage protocols attach a unique, totally ordered
// timestamp to every written value — the writer's counter in the SWMR
// protocol, the packed 〈timestamp, writer-id〉 tag in the MWMR variant —
// atomicity of a history reduces to real-time conditions on timestamps:
//
//  1. Reads return written timestamps (or 0, the initial value).
//  2. A read that follows a complete write w returns a timestamp ≥ ts(w);
//     a read never returns a timestamp of a write invoked after the read
//     responded.
//  3. A read that follows another complete read r' returns a timestamp
//     ≥ ts(r') (no read inversion).
//  4. A write that follows a complete operation o carries a timestamp
//     > ts(o): writes respect the real-time order of both earlier
//     writes and earlier reads. (Trivial for a single sequential
//     writer; load-bearing for concurrent MWMR writers, whose
//     read-phase must propagate the newest tag.)
//
// The experiments use the checker both positively (the RQS storage passes
// under fault injection, the MWMR register under concurrent writers) and
// negatively (the Figure 1 and Theorem 3 schedules make broken
// algorithms fail it).
package histcheck

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind distinguishes recorded operations.
type Kind int

// Operation kinds.
const (
	Write Kind = iota + 1
	Read
)

// String renders the kind.
func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Op is one completed operation: the timestamp it wrote or returned and
// its real-time invocation/response instants. Key names the register
// the operation addressed; single-register histories leave it "" and
// CheckPerKey verifies each key's sub-history independently (atomicity
// is a per-object property).
type Op struct {
	Kind   Kind
	Client string
	Key    string
	TS     int64
	Inv    time.Time
	Resp   time.Time
}

// Violation describes an atomicity violation between two operations (Second
// may be zero-valued for single-operation violations).
type Violation struct {
	Reason        string
	First, Second Op
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("atomicity violated: %s (first: %v %s ts=%d, second: %v %s ts=%d)",
		v.Reason, v.First.Kind, v.First.Client, v.First.TS,
		v.Second.Kind, v.Second.Client, v.Second.TS)
}

// Recorder collects operations concurrently.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends a completed operation.
func (r *Recorder) Record(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// Ops returns a copy of the recorded operations.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

// Check verifies atomicity of the recorded history.
func (r *Recorder) Check() *Violation { return Check(r.Ops()) }

// CheckPerKey verifies atomicity of a multi-key history: operations are
// grouped by Key and each key's sub-history is checked independently —
// linearizability is a local (per-object) property, so a multi-key
// history is atomic iff every per-key projection is. On a key-less
// history (every Key == "") it is exactly Check. The first violating
// key found is reported; keys are scanned in recorded order for
// deterministic reports.
func CheckPerKey(ops []Op) *Violation {
	byKey := make(map[string][]Op)
	var order []string
	for _, op := range ops {
		if _, seen := byKey[op.Key]; !seen {
			order = append(order, op.Key)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	for _, key := range order {
		if v := Check(byKey[key]); v != nil {
			return v
		}
	}
	return nil
}

// Check verifies atomicity of a history of completed operations.
// It returns nil if the history is atomic.
func Check(ops []Op) *Violation {
	sorted := append([]Op(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Inv.Before(sorted[j].Inv) })

	written := make(map[int64]Op, len(sorted))
	for _, op := range sorted {
		if op.Kind == Write {
			if prev, dup := written[op.TS]; dup {
				return &Violation{Reason: "duplicate write timestamp", First: prev, Second: op}
			}
			written[op.TS] = op
		}
	}

	for _, op := range sorted {
		if op.Kind != Read {
			continue
		}
		// Condition 1: the value must exist.
		w, ok := written[op.TS]
		if op.TS != 0 && !ok {
			return &Violation{Reason: "read returned a never-written timestamp", First: op}
		}
		// Condition 2b: no reading from the future.
		if op.TS != 0 && w.Inv.After(op.Resp) {
			return &Violation{
				Reason: "read returned a timestamp written after it responded",
				First:  w, Second: op,
			}
		}
		for _, other := range sorted {
			if !other.Resp.Before(op.Inv) {
				continue // not strictly preceding
			}
			switch other.Kind {
			case Write:
				// Condition 2a: reads see all completed writes.
				if other.TS > op.TS {
					return &Violation{
						Reason: "read missed a preceding complete write",
						First:  other, Second: op,
					}
				}
			case Read:
				// Condition 3: no read inversion.
				if other.TS > op.TS {
					return &Violation{
						Reason: "read inversion (older value after newer read)",
						First:  other, Second: op,
					}
				}
			}
		}
	}

	// Condition 4: writes respect real-time order. Checked after the
	// read conditions so that histories violating both keep reporting
	// the read-side violation first (the experiments pin those reasons).
	for _, op := range sorted {
		if op.Kind != Write {
			continue
		}
		for _, other := range sorted {
			if !other.Resp.Before(op.Inv) {
				continue
			}
			switch other.Kind {
			case Write:
				if other.TS > op.TS {
					return &Violation{
						Reason: "write order inversion (older timestamp after newer write)",
						First:  other, Second: op,
					}
				}
			case Read:
				if other.TS >= op.TS {
					return &Violation{
						Reason: "write reused or predated a timestamp already read",
						First:  other, Second: op,
					}
				}
			}
		}
	}
	return nil
}
