package histcheck

import (
	"strings"
	"testing"
	"time"
)

// at builds a time base-relative instant for concise test histories.
var base = time.Unix(1000, 0)

func at(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }

func wr(ts int64, inv, resp int) Op {
	return Op{Kind: Write, Client: "w", TS: ts, Inv: at(inv), Resp: at(resp)}
}

func rd(client string, ts int64, inv, resp int) Op {
	return Op{Kind: Read, Client: client, TS: ts, Inv: at(inv), Resp: at(resp)}
}

func TestCheckAcceptsAtomicHistories(t *testing.T) {
	tests := []struct {
		name string
		ops  []Op
	}{
		{"empty", nil},
		{"read of initial value", []Op{rd("r", 0, 0, 1)}},
		{"sequential", []Op{wr(1, 0, 1), rd("r", 1, 2, 3), wr(2, 4, 5), rd("r", 2, 6, 7)}},
		{"concurrent read may return old", []Op{wr(1, 0, 10), rd("r", 0, 2, 5)}},
		{"concurrent read may return new", []Op{wr(1, 0, 10), rd("r", 1, 2, 5)}},
		{"two readers same value", []Op{wr(1, 0, 1), rd("a", 1, 2, 4), rd("b", 1, 3, 5)}},
		{"overlapping reads either order", []Op{wr(1, 0, 10), rd("a", 1, 2, 8), rd("b", 0, 3, 9)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if v := Check(tt.ops); v != nil {
				t.Errorf("Check = %v, want nil", v)
			}
		})
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	tests := []struct {
		name   string
		ops    []Op
		reason string
	}{
		{
			"never-written value",
			[]Op{rd("r", 7, 0, 1)},
			"never-written",
		},
		{
			"missed complete write",
			[]Op{wr(1, 0, 1), rd("r", 0, 2, 3)},
			"missed a preceding complete write",
		},
		{
			"read inversion",
			[]Op{wr(1, 0, 20), rd("a", 1, 2, 5), rd("b", 0, 6, 9)},
			"inversion",
		},
		{
			// Also a missed-write violation; the checker may report
			// either — it reports the write one first.
			"stale after newer read completes",
			[]Op{wr(1, 0, 1), wr(2, 2, 3), rd("a", 2, 4, 5), rd("b", 1, 6, 7)},
			"missed a preceding complete write",
		},
		{
			"reading the future",
			[]Op{rd("r", 1, 0, 1), wr(1, 5, 6)},
			"written after",
		},
		{
			"duplicate write timestamp",
			[]Op{wr(1, 0, 1), wr(1, 2, 3)},
			"duplicate",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := Check(tt.ops)
			if v == nil {
				t.Fatal("Check = nil, want violation")
			}
			if !strings.Contains(v.Reason, tt.reason) {
				t.Errorf("reason = %q, want contains %q", v.Reason, tt.reason)
			}
			if v.Error() == "" {
				t.Error("empty Error()")
			}
		})
	}
}

// mwr builds a write by an explicit client, for multi-writer histories
// (TS stands for a packed 〈timestamp, writer-id〉 tag).
func mwr(client string, ts int64, inv, resp int) Op {
	return Op{Kind: Write, Client: client, TS: ts, Inv: at(inv), Resp: at(resp)}
}

// TestCheckMultiWriterHistories exercises condition 4, the write-side
// real-time order that only concurrent multi-writer histories can
// violate.
func TestCheckMultiWriterHistories(t *testing.T) {
	t.Run("accepts", func(t *testing.T) {
		histories := [][]Op{
			// Two writers alternating sequentially, tags interleaved.
			{mwr("w1", 1, 0, 1), mwr("w2", 2, 2, 3), mwr("w1", 3, 4, 5), rd("r", 3, 6, 7)},
			// Concurrent writes may order either way.
			{mwr("w1", 2, 0, 10), mwr("w2", 1, 1, 9), rd("r", 2, 11, 12)},
		}
		for i, ops := range histories {
			if v := Check(ops); v != nil {
				t.Errorf("history %d: Check = %v, want nil", i, v)
			}
		}
	})
	t.Run("write after write with older tag", func(t *testing.T) {
		v := Check([]Op{mwr("w1", 5, 0, 1), mwr("w2", 3, 2, 3)})
		if v == nil || !strings.Contains(v.Reason, "write order inversion") {
			t.Fatalf("Check = %v, want write order inversion", v)
		}
	})
	t.Run("write predating a completed read", func(t *testing.T) {
		// w1 is still in flight when w2 starts (no write-write order
		// between them), but the read of w1's tag completed first.
		v := Check([]Op{mwr("w1", 5, 0, 10), rd("r", 5, 2, 3), mwr("w2", 4, 4, 6)})
		if v == nil || !strings.Contains(v.Reason, "predated") {
			t.Fatalf("Check = %v, want write-predates-read violation", v)
		}
	})
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				rec.Record(rd("c", 0, 0, 1))
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := len(rec.Ops()); got != 200 {
		t.Errorf("ops = %d, want 200", got)
	}
	if v := rec.Check(); v != nil {
		t.Errorf("Check = %v", v)
	}
}

func TestKindString(t *testing.T) {
	if Write.String() != "write" || Read.String() != "read" {
		t.Error("Kind.String broken")
	}
}

// keyed tags an op with a register key.
func keyed(op Op, key string) Op {
	op.Key = key
	return op
}

// TestCheckPerKey pins the per-object semantics of the multi-key
// checker: a cross-key "inversion" is legal (the keys are independent
// registers), a within-key violation is still caught, and a key-less
// history degenerates to Check exactly.
func TestCheckPerKey(t *testing.T) {
	// Key b's write carries a SMALLER timestamp than an already-read
	// key-a value, strictly later in real time — flat Check rejects
	// this, per-key it is two perfectly sequential registers.
	crossKey := []Op{
		keyed(wr(5, 0, 1), "a"),
		keyed(rd("r", 5, 2, 3), "a"),
		keyed(wr(1, 4, 5), "b"),
		keyed(rd("r", 1, 6, 7), "b"),
	}
	if v := Check(crossKey); v == nil {
		t.Fatal("flat Check accepted the cross-key history (test premise broken)")
	}
	if v := CheckPerKey(crossKey); v != nil {
		t.Fatalf("CheckPerKey rejected independent keys: %v", v)
	}

	// A read inversion inside one key must still be caught even with
	// healthy traffic on another key.
	withinKey := []Op{
		keyed(wr(1, 0, 1), "a"),
		keyed(wr(2, 2, 3), "a"),
		keyed(rd("x", 2, 4, 5), "a"),
		keyed(rd("y", 1, 6, 7), "a"), // inversion on key a
		keyed(wr(1, 0, 1), "b"),
		keyed(rd("z", 1, 2, 3), "b"),
	}
	if v := CheckPerKey(withinKey); v == nil {
		t.Fatal("CheckPerKey missed a within-key read inversion")
	}

	// Key-less histories: same verdict as Check.
	keyless := []Op{wr(1, 0, 1), rd("r", 1, 2, 3)}
	if v := CheckPerKey(keyless); v != nil {
		t.Fatalf("CheckPerKey rejected an atomic key-less history: %v", v)
	}
}
