// Package pbft implements the comparison baseline for the consensus
// experiments: a single-shot, PBFT-style [7] Byzantine agreement without a
// fast path. The leader pre-prepares, acceptors echo (prepare) and commit
// in fixed phases, and learners learn after the commit quorum — always
// four message delays (pre-prepare → prepare → commit → learner), no
// matter how many acceptors are correct.
//
// It runs over the same transport and the same n = 3t+1 threshold quorum
// logic classic PBFT assumes, which is exactly the PBFTStyleRQS
// instantiation of Example 6 without its class-1 fast path.
package pbft

import (
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// Value is a proposal value.
type Value = string

// PrePrepare is the leader's proposal.
type PrePrepare struct{ V Value }

// Prepare is an acceptor's echo of the proposal.
type Prepare struct{ V Value }

// Commit is an acceptor's commit vote after a prepare quorum.
type Commit struct{ V Value }

// Reply carries a locally committed value to the learners; learners learn
// on t+1 matching replies.
type Reply struct{ V Value }

// Topology fixes the roles: acceptors 0..N-1, then the leader, then
// learners.
type Topology struct {
	Acceptors core.Set
	Leader    core.ProcessID
	Learners  core.Set
}

// Quorum returns the 2t+1 quorum size for n = 3t+1 acceptors.
func (t Topology) Quorum() int {
	n := t.Acceptors.Count()
	return n - (n-1)/3
}

// Acceptor is a baseline acceptor.
type Acceptor struct {
	id        core.ProcessID
	topo      Topology
	port      transport.Port
	prepared  map[Value]core.Set
	committed map[Value]core.Set
	sentCmt   bool
	replied   bool
	stop      chan struct{}
	done      chan struct{}
}

// NewAcceptor builds an acceptor.
func NewAcceptor(topo Topology, port transport.Port) *Acceptor {
	return &Acceptor{
		id:        port.ID(),
		topo:      topo,
		port:      port,
		prepared:  make(map[Value]core.Set),
		committed: make(map[Value]core.Set),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start launches the acceptor loop.
func (a *Acceptor) Start() { go a.run() }

// Stop terminates the loop.
func (a *Acceptor) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

func (a *Acceptor) run() {
	defer close(a.done)
	sentPrep := false
	for {
		select {
		case <-a.stop:
			return
		case env, ok := <-a.port.Inbox():
			if !ok {
				return
			}
			switch m := env.Payload.(type) {
			case PrePrepare:
				if env.From != a.topo.Leader || sentPrep {
					continue
				}
				sentPrep = true
				transport.BroadcastHop(a.port, a.topo.Acceptors, Prepare{V: m.V}, env.Hop+1)
			case Prepare:
				if !a.topo.Acceptors.Contains(env.From) || a.sentCmt {
					continue
				}
				a.prepared[m.V] = a.prepared[m.V].Add(env.From)
				if a.prepared[m.V].Count() >= a.topo.Quorum() {
					a.sentCmt = true
					transport.BroadcastHop(a.port, a.topo.Acceptors, Commit{V: m.V}, env.Hop+1)
				}
			case Commit:
				if !a.topo.Acceptors.Contains(env.From) || a.replied {
					continue
				}
				a.committed[m.V] = a.committed[m.V].Add(env.From)
				if a.committed[m.V].Count() >= a.topo.Quorum() {
					a.replied = true
					transport.BroadcastHop(a.port, a.topo.Learners, Reply{V: m.V}, env.Hop+1)
				}
			}
		}
	}
}

// Learn is a learned value with its message-delay depth.
type Learn struct {
	V    Value
	Hops int
}

// Learner learns after a commit quorum.
type Learner struct {
	topo    Topology
	port    transport.Port
	learned chan Learn
	stop    chan struct{}
	done    chan struct{}
}

// NewLearner builds a learner.
func NewLearner(topo Topology, port transport.Port) *Learner {
	return &Learner{
		topo:    topo,
		port:    port,
		learned: make(chan Learn, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the learner loop.
func (l *Learner) Start() { go l.run() }

// Stop terminates the loop.
func (l *Learner) Stop() {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	<-l.done
}

// Wait blocks for the learned value.
func (l *Learner) Wait(timeout time.Duration) (Learn, bool) {
	select {
	case v := <-l.learned:
		return v, true
	case <-time.After(timeout):
		return Learn{}, false
	}
}

func (l *Learner) run() {
	defer close(l.done)
	replies := make(map[Value]core.Set)
	hops := make(map[Value]int)
	learned := false
	// t+1 matching replies guarantee one comes from a correct acceptor.
	need := (l.topo.Acceptors.Count()-1)/3 + 1
	for {
		select {
		case <-l.stop:
			return
		case env, ok := <-l.port.Inbox():
			if !ok {
				return
			}
			m, isReply := env.Payload.(Reply)
			if !isReply || !l.topo.Acceptors.Contains(env.From) || learned {
				continue
			}
			replies[m.V] = replies[m.V].Add(env.From)
			if env.Hop > hops[m.V] {
				hops[m.V] = env.Hop
			}
			if replies[m.V].Count() >= need {
				learned = true
				l.learned <- Learn{V: m.V, Hops: hops[m.V]}
			}
		}
	}
}

// Propose runs the leader's side: broadcast the pre-prepare at hop 1.
func Propose(topo Topology, port transport.Port, v Value) {
	transport.BroadcastHop(port, topo.Acceptors, PrePrepare{V: v}, 1)
}

// Cluster bundles a running baseline deployment.
type Cluster struct {
	Topo      Topology
	Net       *transport.Network
	Acceptors []*Acceptor
	Learners  []*Learner
	leader    transport.Port
}

// NewCluster starts n acceptors, one leader and nLearners learners.
func NewCluster(n, nLearners int) *Cluster {
	topo := Topology{Acceptors: core.FullSet(n), Leader: n}
	for i := 0; i < nLearners; i++ {
		topo.Learners = topo.Learners.Add(n + 1 + i)
	}
	net := transport.NewNetwork(n + 1 + nLearners)
	c := &Cluster{Topo: topo, Net: net, leader: net.Port(n)}
	for i := 0; i < n; i++ {
		a := NewAcceptor(topo, net.Port(i))
		a.Start()
		c.Acceptors = append(c.Acceptors, a)
	}
	for _, id := range topo.Learners.Members() {
		l := NewLearner(topo, net.Port(id))
		l.Start()
		c.Learners = append(c.Learners, l)
	}
	return c
}

// Propose has the leader propose v.
func (c *Cluster) Propose(v Value) { Propose(c.Topo, c.leader, v) }

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	c.Net.Close()
	for _, a := range c.Acceptors {
		a.Stop()
	}
	for _, l := range c.Learners {
		l.Stop()
	}
}
