package pbft

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestBaselineAlwaysFourDelays(t *testing.T) {
	for _, n := range []int{4, 7} {
		c := NewCluster(n, 2)
		c.Propose("v")
		for i, l := range c.Learners {
			res, ok := l.Wait(5 * time.Second)
			if !ok {
				t.Fatalf("n=%d learner %d did not learn", n, i)
			}
			if res.V != "v" || res.Hops != 4 {
				t.Errorf("n=%d learner %d: %+v, want v at 4 delays", n, i, res)
			}
		}
		c.Stop()
	}
}

func TestBaselineToleratesCrashes(t *testing.T) {
	// n = 3t+1 = 7 tolerates t = 2 crashed acceptors, still 4 delays.
	c := NewCluster(7, 1)
	defer c.Stop()
	c.Net.Crash(5)
	c.Net.Crash(6)
	c.Propose("v")
	res, ok := c.Learners[0].Wait(5 * time.Second)
	if !ok {
		t.Fatal("did not learn with t crashes")
	}
	if res.V != "v" || res.Hops != 4 {
		t.Errorf("learned %+v, want v at 4 delays", res)
	}
}

func TestBaselineQuorum(t *testing.T) {
	tests := []struct{ n, want int }{{4, 3}, {7, 5}, {10, 7}}
	for _, tt := range tests {
		topo := Topology{Acceptors: core.FullSet(tt.n)}
		if got := topo.Quorum(); got != tt.want {
			t.Errorf("Quorum(n=%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestBaselineIgnoresForeignLeader(t *testing.T) {
	c := NewCluster(4, 1)
	defer c.Stop()
	// A non-leader process sends a pre-prepare: acceptors must ignore it.
	imposter := c.Net.Port(c.Topo.Learners.Min())
	Propose(Topology{Acceptors: c.Topo.Acceptors, Leader: imposter.ID()}, imposter, "evil")
	if res, ok := c.Learners[0].Wait(100 * time.Millisecond); ok {
		t.Fatalf("learned %+v from an imposter", res)
	}
	c.Propose("good")
	if res, ok := c.Learners[0].Wait(5 * time.Second); !ok || res.V != "good" {
		t.Fatalf("got %+v, want good", res)
	}
}
