package sim

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

// ConsensusCluster is a running consensus deployment: acceptors on IDs
// 0..nA-1 (the RQS universe), then proposers, then learners.
type ConsensusCluster struct {
	RQS       *core.RQS
	Net       *transport.Network
	Topo      consensus.Topology
	Ring      *consensus.Keyring
	Acceptors []*consensus.Acceptor
	Proposers []*consensus.Proposer
	Learners  []*consensus.Learner
}

// ConsensusOptions configures NewConsensusCluster.
type ConsensusOptions struct {
	// Proposers and Learners count the respective roles (defaults 2, 3:
	// the minimums the optimality theorems assume).
	Proposers int
	Learners  int
	// Election configures the view-change machinery.
	Election consensus.ElectionConfig
	// PullEvery enables learner decision-pulling (0 disables).
	PullEvery time.Duration
}

// NewConsensusCluster starts acceptors, proposers and learners.
func NewConsensusCluster(rqs *core.RQS, opts ConsensusOptions) (*ConsensusCluster, error) {
	if opts.Proposers <= 0 {
		opts.Proposers = 2
	}
	if opts.Learners <= 0 {
		opts.Learners = 3
	}
	nA := rqs.N()
	total := nA + opts.Proposers + opts.Learners
	topo := consensus.Topology{Acceptors: rqs.Universe()}
	for i := 0; i < opts.Proposers; i++ {
		topo.Proposers = append(topo.Proposers, nA+i)
	}
	for i := 0; i < opts.Learners; i++ {
		topo.Learners = topo.Learners.Add(nA + opts.Proposers + i)
	}

	ring, signers, err := consensus.GenKeys(rqs.Universe())
	if err != nil {
		return nil, fmt.Errorf("consensus cluster: %w", err)
	}
	net := transport.NewNetwork(total)
	c := &ConsensusCluster{RQS: rqs, Net: net, Topo: topo, Ring: ring}
	for _, id := range rqs.Universe().Members() {
		a := consensus.NewAcceptor(rqs, topo, net.Port(id), ring, signers[id], opts.Election)
		a.Start()
		c.Acceptors = append(c.Acceptors, a)
	}
	for _, id := range topo.Proposers {
		p := consensus.NewProposer(rqs, topo, net.Port(id), ring)
		p.Start()
		c.Proposers = append(c.Proposers, p)
	}
	for _, id := range topo.Learners.Members() {
		l := consensus.NewLearner(rqs, topo, net.Port(id), opts.PullEvery)
		l.Start()
		c.Learners = append(c.Learners, l)
	}
	return c, nil
}

// CrashAcceptors crashes the given acceptors at the network boundary.
func (c *ConsensusCluster) CrashAcceptors(set core.Set) {
	for _, id := range set.Members() {
		c.Net.Crash(id)
	}
}

// Stop shuts the cluster down.
func (c *ConsensusCluster) Stop() {
	c.Net.Close()
	for _, a := range c.Acceptors {
		a.Stop()
	}
	for _, p := range c.Proposers {
		p.Stop()
	}
	for _, l := range c.Learners {
		l.Stop()
	}
}
