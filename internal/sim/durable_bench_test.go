package sim

import (
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkDurableWriteC64 is the durable mwmr-write load point in
// benchmark form, so the group-commit amortization (fsyncs per op,
// appends per fsync) and the op-latency distribution can be profiled
// directly with go test -bench.
func BenchmarkDurableWriteC64(b *testing.B) {
	dir, err := os.MkdirTemp("", "rqs-bench-wal-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cl := NewStorageCluster(core.Example7RQS(), StorageOptions{
		Clients: 65,
		DataDir: dir,
	})
	defer cl.Stop()
	var mu sync.Mutex
	var lats []time.Duration
	RunManyClients(b, 64, func() func() error {
		w := cl.MWWriter()
		return func() error {
			t0 := time.Now()
			w.Write("v")
			d := time.Since(t0)
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
			return nil
		}
	})
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		b.Logf("op latency p50=%v p90=%v p99=%v max=%v", lats[n/2], lats[n*9/10], lats[n*99/100], lats[n-1])
	}
	var appends, syncs, fsyncs, fsyncNs int64
	for _, s := range cl.Servers {
		if st, ok := s.WALStats(); ok {
			appends += st.Appends
			syncs += st.Syncs
			fsyncs += st.Fsyncs
			fsyncNs += st.FsyncNanos
		}
	}
	if fsyncs > 0 {
		b.ReportMetric(float64(fsyncNs)/float64(fsyncs)/1e3, "µs/fsync")
		b.ReportMetric(float64(fsyncs)/float64(b.N), "fsyncs/op")
		b.ReportMetric(float64(appends)/float64(fsyncs), "appends/fsync")
	}
	b.ReportMetric(float64(syncs)/float64(b.N), "syncs/op")
}
