package sim

import (
	"fmt"
	"math/rand"
)

// Seeded key generators for the KV load and chaos harnesses. Skewed
// runs are replayable: the same (seed, s, table) triple always yields
// the same key sequence, so a bench or chaos result names everything
// needed to reproduce it.

// KeyGen draws the next key of a workload's key sequence. Generators
// are NOT safe for concurrent use — give each client goroutine its own
// (same table, distinct seeds).
type KeyGen func() string

// KeyTable builds the canonical n-key table ("k00000".."k09999" for
// n=10000): fixed-width names so key length — and therefore frame size
// — is uniform across ranks.
func KeyTable(n int) []string {
	table := make([]string, n)
	for i := range table {
		table[i] = fmt.Sprintf("k%05d", i)
	}
	return table
}

// NewZipfKeys returns a seeded zipfian generator over table: rank k is
// drawn with probability ∝ 1/(1+k)^s (rand.Zipf with v=1), so table[0]
// is the hottest key. s must be > 1; the load matrix uses s=1.2, whose
// top-1 key takes ≈21% of draws at n=10000 (pinned by TestZipfKeysHead).
func NewZipfKeys(seed int64, s float64, table []string) KeyGen {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, s, 1, uint64(len(table)-1))
	return func() string { return table[z.Uint64()] }
}

// NewUniformKeys returns a seeded uniform generator over table.
func NewUniformKeys(seed int64, table []string) KeyGen {
	r := rand.New(rand.NewSource(seed))
	n := len(table)
	return func() string { return table[r.Intn(n)] }
}
