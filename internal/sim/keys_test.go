package sim

import "testing"

// TestZipfKeysHead pins the distribution head of the seeded zipfian
// generator: at s=1.2 over 10000 keys the top-1 key's share is
// ≈ 1/Σ(1+k)^-1.2 ≈ 0.21. A band of [0.15, 0.28] catches both a
// broken skew (uniform would give 0.0001) and a mis-parameterized
// exponent, while staying robust to sampling noise at 200k draws.
func TestZipfKeysHead(t *testing.T) {
	table := KeyTable(10000)
	gen := NewZipfKeys(42, 1.2, table)
	const draws = 200000
	counts := make(map[string]int)
	for i := 0; i < draws; i++ {
		counts[gen()]++
	}
	share := float64(counts[table[0]]) / draws
	if share < 0.15 || share > 0.28 {
		t.Fatalf("top-1 key share = %.4f, want within [0.15, 0.28]", share)
	}
	// The head must dominate: top key strictly hotter than rank 1.
	if counts[table[0]] <= counts[table[1]] {
		t.Fatalf("rank 0 (%d draws) not hotter than rank 1 (%d draws)",
			counts[table[0]], counts[table[1]])
	}
}

// TestZipfKeysReplayable verifies seed-determinism: two generators with
// the same seed yield identical sequences, different seeds diverge.
func TestZipfKeysReplayable(t *testing.T) {
	table := KeyTable(100)
	a, b := NewZipfKeys(7, 1.2, table), NewZipfKeys(7, 1.2, table)
	c := NewZipfKeys(8, 1.2, table)
	same, diverged := true, false
	for i := 0; i < 1000; i++ {
		ka, kb, kc := a(), b(), c()
		if ka != kb {
			same = false
		}
		if ka != kc {
			diverged = true
		}
	}
	if !same {
		t.Fatal("same seed produced different key sequences")
	}
	if !diverged {
		t.Fatal("different seeds produced identical key sequences")
	}
}

// TestUniformKeysCoverage: a seeded uniform generator touches most of a
// small table quickly and is seed-deterministic.
func TestUniformKeysCoverage(t *testing.T) {
	table := KeyTable(64)
	gen := NewUniformKeys(1, table)
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		seen[gen()] = true
	}
	if len(seen) != len(table) {
		t.Fatalf("uniform generator touched %d/%d keys in 2000 draws", len(seen), len(table))
	}
}
