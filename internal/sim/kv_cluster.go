package sim

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
)

// KVOptions configures NewKVCluster / NewTCPKVCluster.
type KVOptions struct {
	// Groups is the number of shard groups — independent quorum
	// deployments that each host a slice of the keyspace (default 2).
	Groups int
	// Clients is the number of KV client slots (default 4). Each
	// client holds one port into every group.
	Clients int
	// Timeout is the 2Δ timer handed to any SWMR clients spawned from
	// the underlying clusters; the KV paths are asynchronous and do
	// not use it.
	Timeout time.Duration
	// DataDir, when non-empty, makes every group's servers durable:
	// group g's server state lives under DataDir/g<g> (see
	// StorageOptions.DataDir / TCPStorageOptions.DataDir).
	DataDir string
	// WALNoSync skips the WAL's fdatasync (benchmark-only).
	WALNoSync bool
	// Hooks optionally makes individual servers Byzantine — the same
	// map is installed in every shard group (each group is its own
	// deployment with its own server 0..n-1, so "server 2 is
	// Byzantine" means group-local server 2 in each).
	Hooks map[core.ProcessID]storage.Hooks
	// Auth, when non-nil, installs the deployment's key material on
	// every group's servers and clients. One deployment is shared
	// across groups: their process-ID spaces coincide (servers 0..n-1,
	// clients above), and a KV client uses one identity — its writer
	// ID — in every group.
	Auth *auth.Deployment
}

// groupDataDir is group g's slice of the data dir ("" when volatile).
func (o *KVOptions) groupDataDir(g int) string {
	if o.DataDir == "" {
		return ""
	}
	return filepath.Join(o.DataDir, fmt.Sprintf("g%d", g))
}

func (o *KVOptions) defaults() {
	if o.Groups <= 0 {
		o.Groups = 2
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
}

// KVCluster is a keyed KV deployment over the in-memory transport: G
// shard groups, each a full StorageCluster running the same quorum
// system over its own network, with KV clients consistent-hashing keys
// across the groups.
type KVCluster struct {
	RQS    *core.RQS
	Groups []*StorageCluster
}

// NewKVCluster starts opts.Groups independent storage deployments of
// the given quorum system.
func NewKVCluster(rqs *core.RQS, opts KVOptions) *KVCluster {
	opts.defaults()
	c := &KVCluster{RQS: rqs}
	for g := 0; g < opts.Groups; g++ {
		c.Groups = append(c.Groups, NewStorageCluster(rqs, StorageOptions{
			Clients:   opts.Clients,
			Timeout:   opts.Timeout,
			DataDir:   opts.groupDataDir(g),
			WALNoSync: opts.WALNoSync,
			Hooks:     opts.Hooks,
			Auth:      opts.Auth,
		}))
	}
	return c
}

// Client returns a KV client holding one fresh port into every group.
func (c *KVCluster) Client() *storage.KVClient {
	groups := make([]storage.KVGroup, len(c.Groups))
	for g, sc := range c.Groups {
		groups[g] = storage.KVGroup{System: sc.RQS, Port: sc.clientPort()}
		if sc.auth != nil {
			groups[g].Signer = mustSigner(sc.auth, groups[g].Port.ID())
			groups[g].Verifier = sc.auth.Verifier()
		}
	}
	return storage.NewKVClient(groups)
}

// SetInjector installs a fault injector on every group's network (nil
// removes it). A single injector instance serves all groups — the
// chaos scripts are safe for concurrent multi-network installs.
func (c *KVCluster) SetInjector(inj transport.Injector) {
	for _, sc := range c.Groups {
		sc.SetInjector(inj)
	}
}

// RestartServer kill -9s and restarts one server of one group; a
// durable deployment recovers its keyspace from the WAL, a volatile
// one comes back amnesiac.
func (c *KVCluster) RestartServer(group int, id core.ProcessID, down time.Duration) error {
	return c.Groups[group].RestartServer(id, down)
}

// Stop shuts every group down.
func (c *KVCluster) Stop() {
	for _, sc := range c.Groups {
		sc.Stop()
	}
}

// kvDeployment is the transport-neutral surface the KV workloads and
// tests drive; KVCluster and TCPKVCluster both satisfy it.
type kvDeployment interface {
	Client() *storage.KVClient
	SetInjector(inj transport.Injector)
	Stop()
}

// TCPKVCluster is the KV deployment over real loopback TCP: G shard
// groups, each a full TCPStorageCluster (per-server OS-process hosts
// plus one shared client host per group).
type TCPKVCluster struct {
	RQS    *core.RQS
	Groups []*TCPStorageCluster
}

// NewTCPKVCluster starts opts.Groups independent TCP storage
// deployments of the given quorum system.
func NewTCPKVCluster(rqs *core.RQS, opts KVOptions) (*TCPKVCluster, error) {
	opts.defaults()
	c := &TCPKVCluster{RQS: rqs}
	for g := 0; g < opts.Groups; g++ {
		sc, err := NewTCPStorageCluster(rqs, TCPStorageOptions{
			Clients:   opts.Clients,
			Timeout:   opts.Timeout,
			DataDir:   opts.groupDataDir(g),
			WALNoSync: opts.WALNoSync,
			Hooks:     opts.Hooks,
			Auth:      opts.Auth,
		})
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Groups = append(c.Groups, sc)
	}
	return c, nil
}

// Client returns a KV client holding one fresh port into every group.
func (c *TCPKVCluster) Client() *storage.KVClient {
	groups := make([]storage.KVGroup, len(c.Groups))
	for g, sc := range c.Groups {
		groups[g] = storage.KVGroup{System: sc.RQS, Port: sc.clientPort()}
		if sc.auth != nil {
			groups[g].Signer = mustSigner(sc.auth, groups[g].Port.ID())
			groups[g].Verifier = sc.auth.Verifier()
		}
	}
	return storage.NewKVClient(groups)
}

// SetInjector installs a fault injector on every host of every group
// (nil removes it).
func (c *TCPKVCluster) SetInjector(inj transport.Injector) {
	for _, sc := range c.Groups {
		sc.SetInjector(inj)
	}
}

// RestartServer kill -9s and restarts one server of one group; a
// durable deployment recovers its keyspace from the WAL, a volatile
// one comes back amnesiac.
func (c *TCPKVCluster) RestartServer(group int, id core.ProcessID, down time.Duration) error {
	return c.Groups[group].RestartServer(id, down)
}

// Stop tears every group down.
func (c *TCPKVCluster) Stop() {
	for _, sc := range c.Groups {
		sc.Stop()
	}
}
