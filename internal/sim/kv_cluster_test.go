package sim

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/storage"
)

// testKVMultiKey drives concurrent writers and readers over several
// keys and verifies every per-key history independently — the
// per-object atomicity check of the keyed service.
func testKVMultiKey(t *testing.T, d kvDeployment) {
	t.Helper()
	keys := []string{"alpha", "beta", "gamma", "delta"}
	const writers, readers, opsPerClient = 3, 2, 6

	rec := histcheck.NewRecorder()
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		kv := d.Client()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				key := keys[(id+i)%len(keys)]
				inv := time.Now()
				ver, err := kv.Put(key, fmt.Sprintf("w%d-op%d", id, i))
				if err != nil {
					errs <- err
					return
				}
				rec.Record(histcheck.Op{
					Kind: histcheck.Write, Client: fmt.Sprintf("w%d", id), Key: key,
					TS: ver.Packed(), Inv: inv, Resp: time.Now(),
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		kv := d.Client()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				key := keys[(id+i)%len(keys)]
				inv := time.Now()
				_, ver, err := kv.Get(key)
				if err != nil {
					errs <- err
					return
				}
				rec.Record(histcheck.Op{
					Kind: histcheck.Read, Client: fmt.Sprintf("r%d", id), Key: key,
					TS: ver.Packed(), Inv: inv, Resp: time.Now(),
				})
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Settle reads, strictly after all writes, one per key.
	kv := d.Client()
	for _, key := range keys {
		inv := time.Now()
		_, ver, err := kv.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		rec.Record(histcheck.Op{
			Kind: histcheck.Read, Client: "settle", Key: key,
			TS: ver.Packed(), Inv: inv, Resp: time.Now(),
		})
	}
	if v := histcheck.CheckPerKey(rec.Ops()); v != nil {
		t.Fatalf("per-key atomicity violated: %v", v)
	}
}

func TestKVClusterMultiKeyMemory(t *testing.T) {
	c := NewKVCluster(core.Example7RQS(), KVOptions{Groups: 2, Clients: 6})
	defer c.Stop()
	testKVMultiKey(t, c)
}

func TestKVClusterMultiKeyTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster in -short mode")
	}
	c, err := NewTCPKVCluster(core.FiveServerRQS(), KVOptions{Groups: 2, Clients: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	testKVMultiKey(t, c)
}

// testKVCASWinner runs concurrent increment-by-CAS loops on one key:
// every expect-version must admit exactly one winner, and since all
// same-version contenders propose the same successor value, no
// increment is ever lost — the final counter equals the win count.
func testKVCASWinner(t *testing.T, d kvDeployment, clients, increments int) {
	t.Helper()
	var mu sync.Mutex
	winsByTS := make(map[int64]int)
	total := 0
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		kv := d.Client()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for won := 0; won < increments; {
				val, ver, err := kv.Get("ctr")
				if err != nil {
					errs <- err
					return
				}
				cur := 0
				if val != storage.NoValue {
					cur, _ = strconv.Atoi(val)
				}
				res, err := kv.CAS("ctr", ver, strconv.Itoa(cur+1))
				var conflict *storage.ErrCASConflict
				if err != nil && !errors.As(err, &conflict) {
					errs <- err
					return
				}
				if res.OK {
					mu.Lock()
					winsByTS[ver.TS]++
					total++
					mu.Unlock()
					won++
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	for ts, n := range winsByTS {
		if n > 1 {
			t.Fatalf("version ts=%d admitted %d CAS winners", ts, n)
		}
	}
	if total != clients*increments {
		t.Fatalf("recorded %d wins, want %d", total, clients*increments)
	}
	val, _, err := d.Client().Get("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if val != strconv.Itoa(total) {
		t.Fatalf("final counter %q, want %d (an increment was lost)", val, total)
	}
}

func TestKVCASWinnerMemory(t *testing.T) {
	c := NewKVCluster(core.FiveServerRQS(), KVOptions{Groups: 1, Clients: 6})
	defer c.Stop()
	testKVCASWinner(t, c, 5, 4)
}

func TestKVCASWinnerTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster in -short mode")
	}
	c, err := NewTCPKVCluster(core.FiveServerRQS(), KVOptions{Groups: 1, Clients: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	testKVCASWinner(t, c, 4, 3)
}

// testKVCASPutInterleave races CAS loops against unconditional Puts on
// one key and histcheck-verifies the full history. A FAILED CAS may
// still have deposited its value at servers that lagged (kv.go); it is
// recorded as a PENDING write — invocation anchored at the Get that
// produced its expect version, response pushed past the test horizon —
// because its effect, if any, can surface at any later point. Each
// (client, expect) attempt is recorded once: retries reuse the same
// tag and value, so they are the same logical write.
func testKVCASPutInterleave(t *testing.T, d kvDeployment) {
	t.Helper()
	const key = "contended"
	const casClients, casOps, putOps = 2, 6, 6
	horizon := time.Now().Add(time.Hour)

	rec := histcheck.NewRecorder()
	var wg sync.WaitGroup
	errs := make(chan error, casClients+2)
	for i := 0; i < casClients; i++ {
		kv := d.Client()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("cas%d", id)
			recorded := make(map[int64]bool) // expect.TS values already recorded
			for op := 0; op < casOps; op++ {
				getInv := time.Now()
				_, ver, err := kv.Get(key)
				if err != nil {
					errs <- err
					return
				}
				rec.Record(histcheck.Op{
					Kind: histcheck.Read, Client: name, Key: key,
					TS: ver.Packed(), Inv: getInv, Resp: time.Now(),
				})
				// Value is a pure function of (client, expect): a retry
				// of the same expect proposes the identical write.
				val := fmt.Sprintf("%s-from-%d", name, ver.TS)
				res, err := kv.CAS(key, ver, val)
				var conflict *storage.ErrCASConflict
				if err != nil && !errors.As(err, &conflict) {
					errs <- err
					return
				}
				if res.OK {
					// A prior attempt with this expect may have reported
					// failure and already recorded the write as pending;
					// the retry is the same logical write (same tag, same
					// value), so record it at most once.
					if !recorded[ver.TS] {
						rec.Record(histcheck.Op{
							Kind: histcheck.Write, Client: name, Key: key,
							TS: res.Version.Packed(), Inv: getInv, Resp: time.Now(),
						})
						recorded[ver.TS] = true
					}
				} else if !recorded[ver.TS] {
					// Maybe-applied loser: pending write under the tag
					// this client's CAS proposed.
					tag := storage.Version{TS: ver.TS + 1, Writer: kv.WriterID()}
					rec.Record(histcheck.Op{
						Kind: histcheck.Write, Client: name, Key: key,
						TS: tag.Packed(), Inv: getInv, Resp: horizon,
					})
					recorded[ver.TS] = true
				}
			}
		}(i)
	}
	putter := d.Client()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for op := 0; op < putOps; op++ {
			inv := time.Now()
			ver, err := putter.Put(key, fmt.Sprintf("put-%d", op))
			if err != nil {
				errs <- err
				return
			}
			rec.Record(histcheck.Op{
				Kind: histcheck.Write, Client: "putter", Key: key,
				TS: ver.Packed(), Inv: inv, Resp: time.Now(),
			})
		}
	}()
	getter := d.Client()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for op := 0; op < putOps; op++ {
			inv := time.Now()
			_, ver, err := getter.Get(key)
			if err != nil {
				errs <- err
				return
			}
			rec.Record(histcheck.Op{
				Kind: histcheck.Read, Client: "getter", Key: key,
				TS: ver.Packed(), Inv: inv, Resp: time.Now(),
			})
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Settle read strictly after everything: the newest committed
	// version must still be visible (nothing lost).
	inv := time.Now()
	_, ver, err := d.Client().Get(key)
	if err != nil {
		t.Fatal(err)
	}
	rec.Record(histcheck.Op{
		Kind: histcheck.Read, Client: "settle", Key: key,
		TS: ver.Packed(), Inv: inv, Resp: time.Now(),
	})
	if v := histcheck.CheckPerKey(rec.Ops()); v != nil {
		t.Fatalf("CAS-vs-Put interleaving lost a committed version: %v", v)
	}
}

func TestKVCASPutInterleaveMemory(t *testing.T) {
	c := NewKVCluster(core.Example7RQS(), KVOptions{Groups: 1, Clients: 5})
	defer c.Stop()
	testKVCASPutInterleave(t, c)
}

func TestKVCASPutInterleaveTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster in -short mode")
	}
	c, err := NewTCPKVCluster(core.FiveServerRQS(), KVOptions{Groups: 1, Clients: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	testKVCASPutInterleave(t, c)
}

// TestKVClusterRestartCarriesKeyspace restarts EVERY server of one
// durable deployment and verifies the whole keyspace — not just the
// legacy "" register — survives: after the rolling restart every
// server's in-memory state is gone, so reads can only succeed if WAL
// replay recovered all keys on all servers.
func TestKVClusterRestartCarriesKeyspace(t *testing.T) {
	c := NewKVCluster(core.FiveServerRQS(), KVOptions{Groups: 2, Clients: 2, DataDir: t.TempDir()})
	defer c.Stop()
	kv := c.Client()

	want := make(map[string]string)
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("persist-%d", i)
		val := fmt.Sprintf("v%d", i)
		if _, err := kv.Put(key, val); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	for g := range c.Groups {
		for id := 0; id < c.RQS.N(); id++ {
			if err := c.RestartServer(g, core.ProcessID(id), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	kv2 := c.Client()
	for key, val := range want {
		got, ver, err := kv2.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != val || ver.IsZero() {
			t.Fatalf("key %q after rolling restart = (%q, %v), want (%q, non-zero)", key, got, ver, val)
		}
	}
}

// TestVolatileRestartIsAmnesiac pins the kill -9 model for clusters
// WITHOUT a data dir: RestartServer must bring the server back with
// nothing — no in-process snapshot may smuggle state across the
// "crash". The write lands on every server (all five are in each
// write quorum's closure here), so a non-empty post-restart snapshot
// can only mean the harness cheated.
func TestVolatileRestartIsAmnesiac(t *testing.T) {
	c := NewStorageCluster(core.FiveServerRQS(), StorageOptions{Clients: 1})
	defer c.Stop()
	c.Writer().Write("survivor?")
	// Find a server that actually holds state, then kill it.
	id := core.ProcessID(-1)
	for i, srv := range c.Servers {
		if len(srv.StateSnapshot()) > 0 {
			id = core.ProcessID(i)
			break
		}
	}
	if id < 0 {
		t.Fatal("no server holds the write")
	}
	if err := c.RestartServer(id, 0); err != nil {
		t.Fatal(err)
	}
	if st := c.Servers[id].StateSnapshot(); len(st) != 0 {
		t.Fatalf("volatile server %d came back with state %v after kill -9; in-memory state must not survive", id, st)
	}
}

// TestDurableRestartRecoversFromDisk is the counterpart: with a data
// dir, the same kill -9 recovers the register state by replaying the
// WAL.
func TestDurableRestartRecoversFromDisk(t *testing.T) {
	c := NewStorageCluster(core.FiveServerRQS(), StorageOptions{Clients: 2, DataDir: t.TempDir()})
	defer c.Stop()
	c.Writer().Write("durable")
	for id := 0; id < c.RQS.N(); id++ {
		if err := c.RestartServer(core.ProcessID(id), 0); err != nil {
			t.Fatal(err)
		}
	}
	res := c.Reader().Read()
	if res.Val != "durable" {
		t.Fatalf("read %q after rolling restart of every server, want %q", res.Val, "durable")
	}
}
