package sim

import (
	"sync"
	"testing"
)

// This file is the closed-loop many-client load harness shared by the
// root package's load benchmarks (BenchmarkStorageManyClients and
// friends) and the `rqs-bench -load` matrix, so the CI perf gate and
// the go-test benches measure exactly the same loop.

// LoadConcurrencies is the client-count axis of the load matrix:
// single client (the latency regime), a moderate burst, and heavy
// contention.
var LoadConcurrencies = []int{1, 8, 64}

// RunManyClients drives c closed-loop clients against one deployment:
// every client loops its operation back to back, so ns/op aggregates
// across clients and ops/sec = 1e9 / ns_per_op. An op returning an
// error stops its client; the first error fails the benchmark from
// the benchmark goroutine after all workers finish (testing.B.Fatal
// must not be called from worker goroutines).
func RunManyClients(b *testing.B, c int, mkOp func() func() error) {
	b.Helper()
	ops := make([]func() error, c)
	for i := range ops {
		ops[i] = mkOp()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < c; i++ {
		n := b.N / c
		if i < b.N%c {
			n++
		}
		wg.Add(1)
		go func(op func() error, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if err := op(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(ops[i], n)
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
}
