package sim

import (
	"os"
	"runtime"
	"testing"
)

// TestMain raises GOMAXPROCS to at least 2: durable-storage tests and
// benchmarks block in fdatasync, and with a single P the runtime
// cannot hand the P off until sysmon retakes it (20µs-10ms adaptive) —
// every disk flush would stall the scheduler, and with it every
// server, client, and histcheck goroutine in the process. rqs-bench
// applies the same floor for the load gates.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	os.Exit(m.Run())
}
