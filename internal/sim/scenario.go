package sim

import (
	"context"
	"fmt"
	stdnet "net"
	"os"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/chaos"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/storage"
	"repro/internal/transport"
)

// This file is the scenario runner of the chaos layer: it deploys a
// protocol workload on a transport, installs a scripted fault campaign
// (internal/chaos) on it, drives clients with per-operation deadlines,
// and property-checks every completed run with histcheck. Scenario
// definitions live in scenarios.go; the rqs-chaos command iterates the
// full matrix.

// Transport names a transport a scenario can run over.
type Transport string

// The transports of the matrix.
const (
	MemoryTransport Transport = "memory"
	TCPTransport    Transport = "tcp"
)

// Workload names a protocol workload a scenario can drive.
type Workload string

// The workloads of the matrix.
const (
	SWMRWorkload Workload = "swmr"
	MWMRWorkload Workload = "mwmr"
	SMRWorkload  Workload = "smr"
	KVWorkload   Workload = "kv"
)

// DefaultOpTimeout is the per-operation liveness deadline: every fault
// window of every scenario heals (or leaves a live quorum) well inside
// it, so an operation exceeding it is a liveness violation, not slack.
const DefaultOpTimeout = 20 * time.Second

// RunContext is what a scenario's Events hook sees: the run's identity
// plus handles on the deployment's fault controls.
type RunContext struct {
	Transport Transport
	Workload  Workload
	Seed      int64
	RQS       *core.RQS

	// Restart kill-9s server id, keeps it down for the given duration,
	// and restarts it strictly from on-disk state: a Durable scenario's
	// server recovers from its WAL, a volatile one restarts amnesiac.
	// Nil for workloads without restartable servers (SMR).
	Restart func(id core.ProcessID, down time.Duration) error
	// Proxy fronts server 0's wire on TCP runs of scenarios that set
	// WireProxy; nil otherwise.
	Proxy *chaos.Proxy
}

// Scenario is one named fault campaign: which systems and deployments
// it applies to, the scripted faults it injects, and whether the run is
// a negative control expected to fail the atomicity check.
type Scenario struct {
	Name        string
	Description string

	// Transports and Workloads bound applicability; Applies refines the
	// product (SMR deployments exist on the memory transport only).
	Transports []Transport
	Workloads  []Workload

	// System builds the refined quorum system (nil: FiveServerRQS).
	System func() *core.RQS
	// Hooks makes selected servers Byzantine (nil: all honest). On the
	// kv workload the same map is installed in every shard group.
	Hooks func(r *core.RQS) map[core.ProcessID]storage.Hooks
	// AcceptorHooks makes selected acceptor replicas Byzantine on SMR
	// runs (nil: all honest) — the consensus-level mirror of Hooks.
	AcceptorHooks func(r *core.RQS) map[core.ProcessID]consensus.Hooks
	// Script builds the seeded fault script (nil: no injector).
	Script func(r *core.RQS, seed int64) *chaos.Script
	// Events runs concurrently with the workload for faults that are
	// actions rather than link rules: server restarts, wire blackholes.
	Events func(rc *RunContext)
	// WireProxy routes the client host's dials to server 0 through a
	// chaos.Proxy (TCP only), exposed to Events as rc.Proxy. On the kv
	// workload the proxy fronts shard group 0's server 0.
	WireProxy bool
	// Durable deploys the servers over write-ahead logs in a run-scoped
	// temp directory: rc.Restart recovers the killed server's state
	// from disk instead of restarting it amnesiac. Required for any
	// scenario whose fault set includes a server restart — a volatile
	// server that acked writes and then forgot them is outside the
	// crash-recovery model the protocols assume.
	Durable bool
	// Auth runs the storage workloads authenticated: the runner
	// provisions an HMAC key deployment for the run, servers verify
	// writer signatures and countersign read acks, and clients sign
	// their tags and discard unverifiable acks. This is what turns a
	// forging server from an atomicity hazard into tolerated noise —
	// provided a verified class-3 quorum of honest servers remains.
	// Storage workloads only; SMR authenticates through its own keys.
	Auth bool
	// ExpectViolation marks a negative control: the run passes only if
	// histcheck REJECTS the history (e.g. a Byzantine server on a
	// quorum system below the class-3 intersection requirement).
	ExpectViolation bool
	// OpTimeout overrides DefaultOpTimeout.
	OpTimeout time.Duration
}

// Applies reports whether the scenario runs on this transport/workload
// cell of the matrix.
func (sc *Scenario) Applies(tr Transport, wl Workload) bool {
	if wl == SMRWorkload && tr != MemoryTransport {
		return false // SMR deployments are memory-only today
	}
	return containsTransport(sc.Transports, tr) && containsWorkload(sc.Workloads, wl)
}

func containsTransport(ts []Transport, t Transport) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

func containsWorkload(ws []Workload, w Workload) bool {
	for _, x := range ws {
		if x == w {
			return true
		}
	}
	return false
}

// RunResult is one cell of the scenario matrix, histcheck verdict
// included.
type RunResult struct {
	Scenario        string
	Transport       Transport
	Workload        Workload
	Seed            int64
	ExpectViolation bool

	// Ops is the recorded history (the artifact dumped on failure).
	Ops []histcheck.Op
	// Violation is histcheck's verdict on Ops (nil = atomic).
	Violation *histcheck.Violation
	// Err reports a liveness or deployment failure: an operation that
	// missed its deadline, a decided value mismatch, a cluster that
	// would not start.
	Err error

	Elapsed    time.Duration
	Stats      chaos.Stats       // script decision counters (zero if no script)
	ProxyStats *chaos.ProxyStats // wire-proxy counters (WireProxy runs only)
	// Auth counts the acks the workload's clients discarded as
	// unverifiable (authenticated runs only; a Byzantine scenario that
	// leaves this zero did not actually exercise the defense).
	Auth storage.AuthStats
}

// Passed reports the run's verdict: no liveness error, and the
// histcheck outcome the scenario expects.
func (r *RunResult) Passed() bool {
	if r.Err != nil {
		return false
	}
	if r.ExpectViolation {
		return r.Violation != nil
	}
	return r.Violation == nil
}

// Failure renders why the run failed ("" if it passed).
func (r *RunResult) Failure() string {
	switch {
	case r.Passed():
		return ""
	case r.Err != nil:
		return r.Err.Error()
	case r.ExpectViolation:
		return "negative control passed histcheck (expected an atomicity violation)"
	default:
		return r.Violation.Error()
	}
}

// storageDeployment is the surface the storage workloads need; both
// StorageCluster (memory) and TCPStorageCluster satisfy it.
type storageDeployment interface {
	Writer() *storage.Writer
	Reader() *storage.Reader
	MWWriter() *storage.MWWriter
	MWReader() *storage.MWReader
	SetInjector(inj transport.Injector)
	Stop()
}

// RunScenario executes one matrix cell: deploy, inject, drive, check.
// Faults replay deterministically from the seed; wall-clock timing of
// concurrent clients does not (the histcheck conditions hold for every
// interleaving, which is what the checker verifies).
func RunScenario(sc *Scenario, tr Transport, wl Workload, seed int64) *RunResult {
	res := &RunResult{
		Scenario:        sc.Name,
		Transport:       tr,
		Workload:        wl,
		Seed:            seed,
		ExpectViolation: sc.ExpectViolation,
	}
	if !sc.Applies(tr, wl) {
		res.Err = fmt.Errorf("scenario %q does not apply to %s/%s", sc.Name, tr, wl)
		return res
	}
	system := core.FiveServerRQS()
	if sc.System != nil {
		system = sc.System()
	}
	opTimeout := sc.OpTimeout
	if opTimeout <= 0 {
		opTimeout = DefaultOpTimeout
	}
	var hooks map[core.ProcessID]storage.Hooks
	if sc.Hooks != nil {
		hooks = sc.Hooks(system)
	}
	var acceptorHooks map[core.ProcessID]consensus.Hooks
	if sc.AcceptorHooks != nil {
		acceptorHooks = sc.AcceptorHooks(system)
	}
	// Authenticated runs use the HMAC mode: the scenario matrix cares
	// about the protocol's tolerance behavior, not signature scheme
	// latency, and both modes share every verification code path. All
	// storage workloads use at most kvScenarioClients client slots per
	// network, so one deployment sized for them covers the matrix.
	var dep *auth.Deployment
	if sc.Auth {
		dep = AuthDeployment(auth.ModeHMAC, system, kvScenarioClients)
	}
	var script *chaos.Script
	if sc.Script != nil {
		script = sc.Script(system, seed)
	}
	var dataDir string
	if sc.Durable {
		dir, err := os.MkdirTemp("", "rqs-chaos-")
		if err != nil {
			res.Err = fmt.Errorf("durable data dir: %w", err)
			return res
		}
		defer os.RemoveAll(dir)
		dataDir = dir
	}

	rc := &RunContext{Transport: tr, Workload: wl, Seed: seed, RQS: system}
	rec := histcheck.NewRecorder()
	start := time.Now()

	var proxy *chaos.Proxy
	runWorkload := func() error { return nil }
	switch wl {
	case KVWorkload:
		// The keyed service: two shard groups of the scenario's system,
		// the fault script installed on every group (the chaos scripts
		// are safe for concurrent multi-network installs).
		var d kvDeployment
		switch tr {
		case MemoryTransport:
			mc := NewKVCluster(system, KVOptions{Groups: 2, Clients: kvScenarioClients, DataDir: dataDir, Hooks: hooks, Auth: dep})
			rc.Restart = func(id core.ProcessID, down time.Duration) error {
				return mc.RestartServer(0, id, down)
			}
			d = mc
		case TCPTransport:
			tc, err := NewTCPKVCluster(system, KVOptions{Groups: 2, Clients: kvScenarioClients, DataDir: dataDir, Hooks: hooks, Auth: dep})
			if err != nil {
				res.Err = fmt.Errorf("tcp kv cluster: %w", err)
				return res
			}
			rc.Restart = func(id core.ProcessID, down time.Duration) error {
				return tc.RestartServer(0, id, down)
			}
			if sc.WireProxy {
				// The proxy fronts group 0's server 0: half of the keyspace
				// rides through the blackhole while the other shard group
				// stays clean — exactly the partial-outage shape a keyed
				// service must mask.
				g0 := tc.Groups[0]
				target := g0.ServerHosts[0].Addr()
				proxy, err = chaos.NewProxy(target)
				if err != nil {
					tc.Stop()
					res.Err = fmt.Errorf("wire proxy: %w", err)
					return res
				}
				defer proxy.Close()
				proxyAddr := proxy.Addr()
				g0.ClientHost.SetDialer(func(addr string, timeout time.Duration) (stdnet.Conn, error) {
					if addr == target {
						addr = proxyAddr
					}
					return stdnet.DialTimeout("tcp", addr, timeout)
				})
				rc.Proxy = proxy
			}
			d = tc
		default:
			res.Err = fmt.Errorf("unknown transport %q", tr)
			return res
		}
		defer d.Stop()
		if script != nil {
			d.SetInjector(script)
			defer d.SetInjector(nil)
		}
		runWorkload = func() error { return runKVWorkload(d, rec, opTimeout, &res.Auth) }
	case SMRWorkload:
		c, err := NewSMRCluster(system, SMROptions{Hooks: acceptorHooks})
		if err != nil {
			res.Err = fmt.Errorf("smr cluster: %w", err)
			return res
		}
		defer c.Stop()
		if script != nil {
			c.SetInjector(script)
			defer c.SetInjector(nil)
		}
		runWorkload = func() error { return runSMRWorkload(c, rec, opTimeout) }
	default:
		var d storageDeployment
		switch tr {
		case MemoryTransport:
			mc := NewStorageCluster(system, StorageOptions{Hooks: hooks, DataDir: dataDir, Auth: dep})
			rc.Restart = mc.RestartServer
			d = mc
		case TCPTransport:
			tc, err := NewTCPStorageCluster(system, TCPStorageOptions{Hooks: hooks, DataDir: dataDir, Auth: dep})
			if err != nil {
				res.Err = fmt.Errorf("tcp cluster: %w", err)
				return res
			}
			rc.Restart = tc.RestartServer
			if sc.WireProxy {
				target := tc.ServerHosts[0].Addr()
				proxy, err = chaos.NewProxy(target)
				if err != nil {
					tc.Stop()
					res.Err = fmt.Errorf("wire proxy: %w", err)
					return res
				}
				defer proxy.Close()
				proxyAddr := proxy.Addr()
				tc.ClientHost.SetDialer(func(addr string, timeout time.Duration) (stdnet.Conn, error) {
					if addr == target {
						addr = proxyAddr
					}
					return stdnet.DialTimeout("tcp", addr, timeout)
				})
				rc.Proxy = proxy
			}
			d = tc
		default:
			res.Err = fmt.Errorf("unknown transport %q", tr)
			return res
		}
		defer d.Stop()
		if script != nil {
			d.SetInjector(script)
			defer d.SetInjector(nil)
		}
		if wl == SWMRWorkload {
			runWorkload = func() error { return runSWMRWorkload(d, rec, opTimeout) }
		} else {
			runWorkload = func() error { return runMWMRWorkload(d, rec, opTimeout, &res.Auth) }
		}
	}

	if script != nil {
		script.Start()
	}
	var eventsDone chan struct{}
	if sc.Events != nil {
		eventsDone = make(chan struct{})
		go func() {
			defer close(eventsDone)
			sc.Events(rc)
		}()
	}
	res.Err = runWorkload()
	if eventsDone != nil {
		<-eventsDone
	}

	res.Ops = rec.Ops()
	res.Violation = histcheck.CheckPerKey(res.Ops)
	res.Elapsed = time.Since(start)
	if script != nil {
		res.Stats = script.Stats()
	}
	if proxy != nil {
		st := proxy.Stats()
		res.ProxyStats = &st
	}
	return res
}

// Workload sizes: small enough that the full matrix stays a smoke test,
// large enough that every scenario's fault windows see traffic.
const (
	swmrWriteOps = 8
	swmrReadOps  = 8
	mwmrOps      = 5
	smrCommands  = 6

	kvScenarioClients = 4 // 2 writers + 1 reader + 1 settle client
	kvOpsPerClient    = 6
)

// kvScenarioKeys spread the kv workload across both shard groups and
// several server-side shards.
var kvScenarioKeys = []string{"alpha", "beta", "gamma", "delta"}

// record runs one client operation under its deadline and records the
// completed op; a deadline miss is returned as the liveness violation.
func record(rec *histcheck.Recorder, kind histcheck.Kind, client string, opTimeout time.Duration, op func(ctx context.Context) (int64, error)) error {
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	inv := time.Now()
	ts, err := op(ctx)
	if err != nil {
		return fmt.Errorf("%s %s: %w", client, kind, err)
	}
	rec.Record(histcheck.Op{Kind: kind, Client: client, TS: ts, Inv: inv, Resp: time.Now()})
	return nil
}

// recordKeyed is record for keyed operations: the completed op carries
// the key so the verdict can group per-key sub-histories.
func recordKeyed(rec *histcheck.Recorder, kind histcheck.Kind, client, key string, opTimeout time.Duration, op func(ctx context.Context) (int64, error)) error {
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	inv := time.Now()
	ts, err := op(ctx)
	if err != nil {
		return fmt.Errorf("%s %s %q: %w", client, kind, key, err)
	}
	rec.Record(histcheck.Op{Kind: kind, Client: client, Key: key, TS: ts, Inv: inv, Resp: time.Now()})
	return nil
}

// runKVWorkload drives the keyed service under faults: two putters and
// one getter cycling through kvScenarioKeys concurrently, then one
// settle read per key strictly after every write completed. Timestamps
// are the packed versions; the verdict checks each key's sub-history.
func runKVWorkload(d kvDeployment, rec *histcheck.Recorder, opTimeout time.Duration, authStats *storage.AuthStats) error {
	const putters = 2
	clients := make([]*storage.KVClient, putters+1, putters+2)
	for i := range clients {
		clients[i] = d.Client()
	}
	// Aggregate after every client goroutine has joined (wg.Wait gives
	// the happens-before edge) — on error paths too, so a partial run
	// still reports how many acks its clients screened out.
	defer func() {
		for _, kv := range clients {
			authStats.Add(kv.AuthStats())
		}
	}()

	errs := make(chan error, len(clients))
	var wg sync.WaitGroup
	for p := 0; p < putters; p++ {
		kv := clients[p]
		wg.Add(1)
		go func(name string, id int) {
			defer wg.Done()
			for i := 0; i < kvOpsPerClient; i++ {
				key := kvScenarioKeys[(id+i)%len(kvScenarioKeys)]
				err := recordKeyed(rec, histcheck.Write, name, key, opTimeout, func(ctx context.Context) (int64, error) {
					ver, err := kv.PutCtx(ctx, key, fmt.Sprintf("%s-v%d", name, i))
					return ver.Packed(), err
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(fmt.Sprintf("kvput%d", p), p)
	}
	getter := clients[putters]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < kvOpsPerClient; i++ {
			key := kvScenarioKeys[i%len(kvScenarioKeys)]
			err := recordKeyed(rec, histcheck.Read, "kvget", key, opTimeout, func(ctx context.Context) (int64, error) {
				_, ver, err := getter.GetCtx(ctx, key)
				return ver.Packed(), err
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	settle := d.Client()
	clients = append(clients, settle)
	for _, key := range kvScenarioKeys {
		err := recordKeyed(rec, histcheck.Read, "kvsettle", key, opTimeout, func(ctx context.Context) (int64, error) {
			_, ver, err := settle.GetCtx(ctx, key)
			return ver.Packed(), err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runSWMRWorkload drives the Figure 5-7 protocol: the single writer
// against two concurrent readers.
func runSWMRWorkload(d storageDeployment, rec *histcheck.Recorder, opTimeout time.Duration) error {
	w := d.Writer()
	readers := []*storage.Reader{d.Reader(), d.Reader()}

	errs := make(chan error, 1+len(readers))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swmrWriteOps; i++ {
			err := record(rec, histcheck.Write, "writer", opTimeout, func(ctx context.Context) (int64, error) {
				res, err := w.WriteCtx(ctx, fmt.Sprintf("v%d", i))
				return res.TS, err
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	for ri, r := range readers {
		wg.Add(1)
		go func(name string, r *storage.Reader) {
			defer wg.Done()
			for i := 0; i < swmrReadOps; i++ {
				err := record(rec, histcheck.Read, name, opTimeout, func(ctx context.Context) (int64, error) {
					res, err := r.ReadCtx(ctx)
					return res.TS, err
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(fmt.Sprintf("reader%d", ri), r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runMWMRWorkload drives the multi-writer register: two writers and two
// readers concurrently, then one settle read per reader strictly after
// every write completed — the deterministic probe the negative-control
// scenario relies on (a stale settle read is provably non-atomic).
// Client creation order is fixed (writers on ports n, n+1; readers on
// n+2, n+3) so scripted rules can address clients by process ID.
func runMWMRWorkload(d storageDeployment, rec *histcheck.Recorder, opTimeout time.Duration, authStats *storage.AuthStats) error {
	writers := []*storage.MWWriter{d.MWWriter(), d.MWWriter()}
	readers := []*storage.MWReader{d.MWReader(), d.MWReader()}
	defer func() {
		for _, w := range writers {
			authStats.Add(w.AuthStats())
		}
		for _, r := range readers {
			authStats.Add(r.AuthStats())
		}
	}()

	errs := make(chan error, len(writers)+len(readers))
	var wg sync.WaitGroup
	for wi, w := range writers {
		wg.Add(1)
		go func(name string, w *storage.MWWriter) {
			defer wg.Done()
			for i := 0; i < mwmrOps; i++ {
				err := record(rec, histcheck.Write, name, opTimeout, func(ctx context.Context) (int64, error) {
					res, err := w.WriteCtx(ctx, fmt.Sprintf("%s-v%d", name, i))
					return res.Tag.Packed(), err
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(fmt.Sprintf("mwwriter%d", wi), w)
	}
	for ri, r := range readers {
		wg.Add(1)
		go func(name string, r *storage.MWReader) {
			defer wg.Done()
			for i := 0; i < mwmrOps; i++ {
				err := record(rec, histcheck.Read, name, opTimeout, func(ctx context.Context) (int64, error) {
					res, err := r.ReadCtx(ctx)
					return res.Tag.Packed(), err
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(fmt.Sprintf("mwreader%d", ri), r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	for ri, r := range readers {
		err := record(rec, histcheck.Read, fmt.Sprintf("settle%d", ri), opTimeout, func(ctx context.Context) (int64, error) {
			res, err := r.ReadCtx(ctx)
			return res.Tag.Packed(), err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runSMRWorkload decides commands sequentially through the shared log.
// Each committed slot is recorded as a write with timestamp slot+1:
// sequential decisions from one proposer must commit to increasing
// slots, which is exactly histcheck's write real-time condition.
func runSMRWorkload(c *SMRCluster, rec *histcheck.Recorder, opTimeout time.Duration) error {
	for i := 0; i < smrCommands; i++ {
		cmd := consensus.Value(fmt.Sprintf("cmd-%d", i))
		inv := time.Now()
		slot, v, ok := c.Decide(cmd, opTimeout)
		if !ok {
			return fmt.Errorf("smr: slot %d did not commit within %v", slot, opTimeout)
		}
		if v != cmd {
			return fmt.Errorf("smr: slot %d decided %q, proposed %q", slot, v, cmd)
		}
		rec.Record(histcheck.Op{
			Kind: histcheck.Write, Client: "proposer",
			TS: int64(slot) + 1, Inv: inv, Resp: time.Now(),
		})
	}
	return nil
}
