package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestScenarioRegistry pins the matrix surface the chaos runner
// promises: at least 8 named scenarios, unique names, and every
// scenario applicable to at least one transport/workload cell.
func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 8 {
		t.Fatalf("registry has %d scenarios, want >= 8", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		cells := 0
		for _, tr := range []Transport{MemoryTransport, TCPTransport} {
			for _, wl := range []Workload{SWMRWorkload, MWMRWorkload, SMRWorkload, KVWorkload} {
				if sc.Applies(tr, wl) {
					cells++
				}
			}
		}
		if cells == 0 {
			t.Errorf("scenario %q applies to no matrix cell", sc.Name)
		}
		if _, ok := FindScenario(sc.Name); !ok {
			t.Errorf("FindScenario(%q) missed a registered scenario", sc.Name)
		}
	}
	if _, ok := FindScenario("no-such-scenario"); ok {
		t.Error("FindScenario invented a scenario")
	}
}

// TestScenarioMatrixMemory runs every memory-transport cell of the
// matrix once: each run must complete within its liveness deadlines and
// produce the histcheck verdict its scenario expects.
func TestScenarioMatrixMemory(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, wl := range []Workload{SWMRWorkload, MWMRWorkload, SMRWorkload, KVWorkload} {
			if !sc.Applies(MemoryTransport, wl) {
				continue
			}
			sc, wl := sc, wl
			t.Run(fmt.Sprintf("%s/%s", sc.Name, wl), func(t *testing.T) {
				t.Parallel()
				res := RunScenario(sc, MemoryTransport, wl, 1)
				if !res.Passed() {
					t.Fatalf("scenario failed: %s", res.Failure())
				}
			})
		}
	}
}

// TestScenarioMatrixTCP spot-checks the TCP column with the scenarios
// that exercise TCP-specific machinery: the wire proxy, host restart,
// the injector above the session layer, and the Byzantine negative
// control over real sockets.
func TestScenarioMatrixTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP scenario matrix skipped in -short")
	}
	cells := []struct {
		name string
		wl   Workload
	}{
		{"wire-blackhole", SWMRWorkload},
		{"wire-blackhole", KVWorkload}, // the proxy fronting shard group 0's server 0
		{"partition-heal-during-write", MWMRWorkload},
		{"kill9-restart-midwrite", SWMRWorkload},
		{"reorder-dup-storm", MWMRWorkload},
		{"byzantine-stale-tag-weak", MWMRWorkload},
		{"byzantine-stale-tag-auth", KVWorkload}, // signed tags over real sockets
	}
	for _, cell := range cells {
		cell := cell
		t.Run(fmt.Sprintf("%s/%s", cell.name, cell.wl), func(t *testing.T) {
			t.Parallel()
			sc, ok := FindScenario(cell.name)
			if !ok {
				t.Fatalf("scenario %q not registered", cell.name)
			}
			res := RunScenario(sc, TCPTransport, cell.wl, 1)
			if !res.Passed() {
				t.Fatalf("scenario failed: %s", res.Failure())
			}
			if cell.name == "wire-blackhole" {
				if res.ProxyStats == nil {
					t.Fatal("wire-blackhole run reported no proxy stats")
				}
				if res.ProxyStats.BytesBlackholed == 0 {
					t.Error("proxy blackholed no bytes — the fault never bit")
				}
				if res.ProxyStats.ConnsCut == 0 {
					t.Error("proxy cut no conns — the heal path never ran")
				}
			}
		})
	}
}

// TestKill9RecoverMatrix is the crash-recovery acceptance criterion:
// the kill9-recover-midwrite scenario — real process-state loss, a
// fresh server recovering strictly from its write-ahead log — must
// pass histcheck on both transports, across the swmr, mwmr and kv
// workloads, for three seeds. TCP cells run only outside -short.
func TestKill9RecoverMatrix(t *testing.T) {
	sc, ok := FindScenario("kill9-recover-midwrite")
	if !ok {
		t.Fatal("kill9-recover-midwrite not registered")
	}
	if !sc.Durable {
		t.Fatal("kill9-recover-midwrite must deploy durable servers")
	}
	for _, tr := range []Transport{MemoryTransport, TCPTransport} {
		for _, wl := range []Workload{SWMRWorkload, MWMRWorkload, KVWorkload} {
			for _, seed := range []int64{1, 2, 3} {
				tr, wl, seed := tr, wl, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", tr, wl, seed), func(t *testing.T) {
					if tr == TCPTransport && testing.Short() {
						t.Skip("TCP recovery cells skipped in -short")
					}
					t.Parallel()
					res := RunScenario(sc, tr, wl, seed)
					if !res.Passed() {
						t.Fatalf("recovery cell failed: %s", res.Failure())
					}
				})
			}
		}
	}
}

// TestNegativeControlStaleTag is the acceptance criterion's negative
// control: the stale-tag forger must be masked by a quorum system
// meeting the class-3 intersection requirement and must produce an
// atomicity violation on one below it — deterministically, for every
// seed, because the violation is structural (the readers' quorum holds
// no honest server that observed a write).
func TestNegativeControlStaleTag(t *testing.T) {
	weak, ok := FindScenario("byzantine-stale-tag-weak")
	if !ok {
		t.Fatal("negative-control scenario not registered")
	}
	if !weak.ExpectViolation {
		t.Fatal("negative control not marked ExpectViolation")
	}
	for _, seed := range []int64{1, 7, 42} {
		res := RunScenario(weak, MemoryTransport, MWMRWorkload, seed)
		if res.Err != nil {
			t.Fatalf("seed %d: liveness failure instead of safety violation: %v", seed, res.Err)
		}
		if res.Violation == nil {
			t.Fatalf("seed %d: weak system masked the stale tag — violation expected", seed)
		}
		if !strings.Contains(res.Violation.Reason, "read") {
			t.Errorf("seed %d: expected a read-side violation, got %q", seed, res.Violation.Reason)
		}
		if !res.Passed() {
			t.Errorf("seed %d: ExpectViolation run with a violation should pass", seed)
		}
	}

	strong, ok := FindScenario("byzantine-stale-tag")
	if !ok {
		t.Fatal("positive-control scenario not registered")
	}
	res := RunScenario(strong, MemoryTransport, MWMRWorkload, 1)
	if !res.Passed() {
		t.Fatalf("positive control failed: %s", res.Failure())
	}
	if res.Violation != nil {
		t.Fatalf("ByzantineThirdRQS(4) failed to mask the stale tag: %v", res.Violation)
	}
}

// TestRunScenarioRejectsInapplicableCell pins the guard rail the
// rqs-chaos command relies on for -scenario/-transport/-workload
// combinations outside the matrix.
func TestRunScenarioRejectsInapplicableCell(t *testing.T) {
	sc, ok := FindScenario("wire-blackhole")
	if !ok {
		t.Fatal("scenario not registered")
	}
	res := RunScenario(sc, MemoryTransport, SWMRWorkload, 1)
	if res.Err == nil || res.Passed() {
		t.Fatalf("memory run of a TCP-only scenario must fail, got pass=%v err=%v",
			res.Passed(), res.Err)
	}
}

// TestByzantineAuthTolerance is the authenticated-tag acceptance
// criterion: on the very quorum system the -weak control breaks, the
// authenticated cells must pass histcheck for three seeds on both
// workloads — and their rejected-ack counters must be nonzero, proving
// the runs actually screened the forger out rather than never meeting
// it. The unauthenticated control keeps violating alongside
// (TestNegativeControlStaleTag).
func TestByzantineAuthTolerance(t *testing.T) {
	for _, name := range []string{"byzantine-stale-tag-auth", "byzantine-replayed-tag"} {
		sc, ok := FindScenario(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		if !sc.Auth {
			t.Fatalf("scenario %q does not run authenticated", name)
		}
		for _, wl := range []Workload{MWMRWorkload, KVWorkload} {
			for _, seed := range []int64{1, 7, 42} {
				name, wl, seed := name, wl, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, wl, seed), func(t *testing.T) {
					t.Parallel()
					res := RunScenario(sc, MemoryTransport, wl, seed)
					if !res.Passed() {
						t.Fatalf("authenticated cell failed: %s", res.Failure())
					}
					if res.Auth.RejectedAcks == 0 {
						t.Fatal("no acks rejected — the Byzantine server never bit")
					}
				})
			}
		}
	}
}
