package sim

import (
	"time"

	"repro/internal/chaos"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/storage"
)

// The named scenarios of the chaos matrix. Each is a fault campaign the
// protocols must survive (or, for the negative controls, provably must
// not): liveness is asserted through per-operation deadlines, safety
// through histcheck on every completed run. Fault randomness derives
// entirely from the run seed, so a failing cell replays exactly from
// its seed.

var bothTransports = []Transport{MemoryTransport, TCPTransport}

// storageWorkloads are the register-shaped rows every generic fault
// campaign covers: the two single-register protocols plus the keyed
// service (whose cell drives multi-key writes across both shard
// groups). Byzantine scenarios pin their workload explicitly — their
// forging hooks target one protocol's message types.
var storageWorkloads = []Workload{SWMRWorkload, MWMRWorkload, KVWorkload}

var allWorkloads = []Workload{SWMRWorkload, MWMRWorkload, KVWorkload, SMRWorkload}

// everyLink matches any sender and any receiver.
var everyLink = core.EmptySet

// staleForge makes a server answer every MWMR read with the initial
// 〈zero-tag, ⊥〉 — a Byzantine server hiding the newest write. A
// quorum system meeting the class-3 intersection requirement masks it;
// one below it does not (see byzantine-stale-tag-weak).
func staleForge(id core.ProcessID) func(*core.RQS) map[core.ProcessID]storage.Hooks {
	return func(*core.RQS) map[core.ProcessID]storage.Hooks {
		return map[core.ProcessID]storage.Hooks{
			id: {ForgeMWRead: func(core.ProcessID) (storage.Tag, string) {
				return storage.Tag{}, storage.NoValue
			}},
		}
	}
}

// replayForge makes a server answer every MWMR read after the first
// (per key) by re-serving its first captured ack with the sequence
// number rewritten to the current request's — a compromised server
// replaying an old, once-valid reply. The countersignature binds the
// original sequence number, so authenticated clients reject the replay.
func replayForge(id core.ProcessID) func(*core.RQS) map[core.ProcessID]storage.Hooks {
	return func(*core.RQS) map[core.ProcessID]storage.Hooks {
		return map[core.ProcessID]storage.Hooks{
			id: {ReplayMWRead: func(core.ProcessID) bool { return true }},
		}
	}
}

// equivocate makes acceptor id equivocate: every consensus update and
// decision it sends to an odd-numbered destination carries a fabricated
// value while even-numbered destinations receive the true one — the
// classic split-vote attack. Both acceptors and learners key their
// collection by value and demand basic sender sets (decisions) or
// class-3 quorums (updates) before adopting, so the fabricated value
// never accumulates past its single Byzantine sender.
func equivocate(id core.ProcessID) func(*core.RQS) map[core.ProcessID]consensus.Hooks {
	return func(*core.RQS) map[core.ProcessID]consensus.Hooks {
		forge := func(to core.ProcessID, v consensus.Value) consensus.Value {
			if to%2 == 1 {
				return v + "#equivocated"
			}
			return v
		}
		return map[core.ProcessID]consensus.Hooks{
			id: {
				ForgeUpdate: func(to core.ProcessID, m consensus.UpdateMsg) consensus.UpdateMsg {
					m.V = forge(to, m.V)
					return m
				},
				ForgeDecision: func(to core.ProcessID, m consensus.DecisionMsg) consensus.DecisionMsg {
					m.V = forge(to, m.V)
					return m
				},
			},
		}
	}
}

// scenarios is the registry, in canonical matrix order.
var scenarios = []*Scenario{
	{
		Name: "partition-heal-during-write",
		Description: "All traffic into servers 2..n-1 is parked for the first " +
			"700ms — no class-3 quorum is reachable, so in-flight operations " +
			"stall — then the partition heals and the parked traffic flows. " +
			"Every operation must complete after the heal. The kv cell runs " +
			"the partition against multi-key writes across both shard groups.",
		Transports: bothTransports,
		Workloads:  storageWorkloads,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			return chaos.NewScript(seed).Rule(chaos.Rule{
				To:     r.Universe().Diff(core.NewSet(0, 1)),
				Stop:   700 * time.Millisecond,
				Effect: chaos.Park{},
			})
		},
	},
	{
		Name: "asymmetric-partition",
		Description: "Server n-1's outbound links are cut for 500ms while its " +
			"inbound links flow: it keeps applying writes but its replies " +
			"vanish. Quorums assemble from the remaining servers.",
		Transports: bothTransports,
		Workloads:  storageWorkloads,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			return chaos.NewScript(seed).Rule(chaos.Rule{
				From:   core.NewSet(r.N() - 1),
				Stop:   500 * time.Millisecond,
				Effect: chaos.Cut{},
			})
		},
	},
	{
		Name: "flapping-quorum-member",
		Description: "Both directions of server n-1's links flap on a 160ms " +
			"square wave (down half of each period, traffic parked to the " +
			"phase end) for the whole run.",
		Transports: bothTransports,
		Workloads:  storageWorkloads,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			flap := chaos.Flap{Period: 160 * time.Millisecond, Duty: 0.5, Park: true}
			member := core.NewSet(r.N() - 1)
			return chaos.NewScript(seed).
				Rule(chaos.Rule{To: member, Effect: flap}).
				Rule(chaos.Rule{From: member, Effect: flap})
		},
	},
	{
		Name: "byzantine-stale-tag",
		Description: "Server 0 forges every MWMR read reply to the initial " +
			"〈zero-tag, ⊥〉 on ByzantineThirdRQS(4), whose class-3 quorums " +
			"meet the intersection requirement: the stale tag is outvoted " +
			"and every history stays atomic (positive control). The kv cell " +
			"installs the forger as server 0 of every shard group, so the " +
			"keyed reads of both groups face it.",
		Transports: bothTransports,
		Workloads:  []Workload{MWMRWorkload, KVWorkload},
		System:     func() *core.RQS { return core.ByzantineThirdRQS(4) },
		Hooks:      staleForge(0),
	},
	{
		Name: "byzantine-stale-tag-weak",
		Description: "The same stale-tag forger on MajorityRQS(3) — crash-only " +
			"majorities, below the class-3 intersection requirement — plus " +
			"asymmetric cuts steering writers to servers {0,1} and readers " +
			"to {0,2}: the readers' quorum holds no honest server that saw " +
			"a write, the one-round fast path returns the stale tag, and " +
			"histcheck must reject the history (negative control). The kv " +
			"cell's clients sit on the same port layout (putters on n, n+1; " +
			"getters on n+2, n+3), so the same steering breaks the keyed " +
			"service too.",
		Transports: bothTransports,
		Workloads:  []Workload{MWMRWorkload, KVWorkload},
		System:     func() *core.RQS { return core.MajorityRQS(3) },
		Hooks:      staleForge(0),
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			n := r.N() // clients: writers/putters on n, n+1; readers/getters on n+2, n+3
			return chaos.NewScript(seed).
				Rule(chaos.Rule{From: core.NewSet(n, n+1), To: core.NewSet(2), Effect: chaos.Cut{}}).
				Rule(chaos.Rule{From: core.NewSet(n+2, n+3), To: core.NewSet(1), Effect: chaos.Cut{}})
		},
		ExpectViolation: true,
	},
	{
		Name: "byzantine-stale-tag-auth",
		Description: "The stale-tag forger on MajorityRQS(3) — the system the " +
			"-weak control steers into a provable violation — but the " +
			"deployment is authenticated. The forger's acks carry no valid " +
			"writer signature or countersignature, so clients discard them " +
			"before they can enter any quorum: no scheduling or steering " +
			"can ever make a read count the stale tag, and every phase " +
			"completes on the verified honest majority {1,2} instead. The " +
			"Byzantine server degrades to tolerated noise (the run's " +
			"rejected-ack counters prove it kept trying).",
		Transports: bothTransports,
		Workloads:  []Workload{MWMRWorkload, KVWorkload},
		System:     func() *core.RQS { return core.MajorityRQS(3) },
		Hooks:      staleForge(0),
		Auth:       true,
	},
	{
		Name: "byzantine-replayed-tag",
		Description: "Server 0 answers every MWMR read after its first (per " +
			"key) by replaying its first captured ack with the sequence " +
			"number rewritten — an old, once-valid reply re-served as fresh. " +
			"The countersignature binds the original sequence number, so " +
			"authenticated readers reject the replay and complete on the " +
			"verified honest majority; the replayed stale tag never enters " +
			"a quorum.",
		Transports: bothTransports,
		Workloads:  []Workload{MWMRWorkload, KVWorkload},
		System:     func() *core.RQS { return core.MajorityRQS(3) },
		Hooks:      replayForge(0),
		Auth:       true,
	},
	{
		Name: "byzantine-equivocating-acceptor",
		Description: "Acceptor 0 equivocates on ByzantineThirdRQS(4): every " +
			"update and decision it sends to an odd destination carries a " +
			"fabricated value, even destinations the true one. Value-keyed " +
			"collection with basic-set/quorum adoption guards means the " +
			"fabricated value never outgrows its single sender; the honest " +
			"three-quorum still decides every proposed command.",
		Transports:    []Transport{MemoryTransport},
		Workloads:     []Workload{SMRWorkload},
		System:        func() *core.RQS { return core.ByzantineThirdRQS(4) },
		AcceptorHooks: equivocate(0),
	},
	{
		Name: "kill9-restart-midwrite",
		Description: "A fixed 15ms delay on all traffic into servers stretches " +
			"the run; 120ms in, server 1 is killed mid-operation, stays down " +
			"150ms, and restarts from its write-ahead log. Operations ride " +
			"out the outage on the surviving quorums.",
		Transports: bothTransports,
		Workloads:  storageWorkloads,
		Durable:    true,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			return chaos.NewScript(seed).Rule(chaos.Rule{
				To:     r.Universe(),
				Effect: chaos.Delay{Dist: chaos.Fixed(15 * time.Millisecond)},
			})
		},
		Events: func(rc *RunContext) {
			time.Sleep(120 * time.Millisecond)
			_ = rc.Restart(1, 150*time.Millisecond)
		},
	},
	{
		Name: "kill9-recover-midwrite",
		Description: "The crash-recovery tier: servers run over write-ahead " +
			"logs, a fixed 12ms delay into servers stretches the run, and " +
			"110ms in server 1 is kill -9'd mid-operation with real process-" +
			"state loss — the fresh incarnation replays its WAL (and, on " +
			"TCP, reloads its session dedup table) before serving again. " +
			"Every acked write it vouched for must still be there: histcheck " +
			"rejects the history if recovery loses or doubles one. The kv " +
			"cell drives multi-key writes across both shard groups through " +
			"the crash window.",
		Transports: bothTransports,
		Workloads:  storageWorkloads,
		Durable:    true,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			return chaos.NewScript(seed).Rule(chaos.Rule{
				To:     r.Universe(),
				Effect: chaos.Delay{Dist: chaos.Fixed(12 * time.Millisecond)},
			})
		},
		Events: func(rc *RunContext) {
			time.Sleep(110 * time.Millisecond)
			_ = rc.Restart(1, 120*time.Millisecond)
		},
	},
	{
		Name: "pareto-tail-latency",
		Description: "Every link samples a heavy-tailed Pareto delay (scale " +
			"1ms, α=1.3, capped at 120ms): most envelopes are near-fast, a " +
			"few straggle by two orders of magnitude, constantly reordering " +
			"rounds.",
		Transports: bothTransports,
		Workloads:  allWorkloads,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			return chaos.NewScript(seed).Rule(chaos.Rule{
				From: everyLink, To: everyLink,
				Effect: chaos.Delay{Dist: chaos.Pareto{
					Scale: time.Millisecond, Alpha: 1.3, Max: 120 * time.Millisecond,
				}},
			})
		},
	},
	{
		Name: "reorder-dup-storm",
		Description: "Every envelope is delayed uniformly in [0, 20ms] and " +
			"duplicated with probability 0.3: heavy reordering plus " +
			"at-least-once delivery on every link at once.",
		Transports: bothTransports,
		Workloads:  allWorkloads,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			return chaos.NewScript(seed).
				Rule(chaos.Rule{Effect: chaos.Delay{Dist: chaos.Uniform{Hi: 20 * time.Millisecond}}}).
				Rule(chaos.Rule{Effect: chaos.Dup{P: 0.3}})
		},
	},
	{
		Name: "drop-storm-confined",
		Description: "Both directions of the links of servers n-2 and n-1 " +
			"drop each envelope with probability 0.6 for the whole run — " +
			"lossy links confined to t=2 servers, so the unaffected servers " +
			"still form quorums.",
		Transports: bothTransports,
		Workloads:  storageWorkloads,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			lossy := core.NewSet(r.N()-2, r.N()-1)
			return chaos.NewScript(seed).
				Rule(chaos.Rule{To: lossy, Effect: chaos.Drop{P: 0.6}}).
				Rule(chaos.Rule{From: lossy, Effect: chaos.Drop{P: 0.6}})
		},
	},
	{
		Name: "wire-blackhole",
		Description: "A conn-level proxy fronts server 0's wire: 80ms in, it " +
			"silently blackholes all bytes for 250ms (the conns stay open, " +
			"so no socket error is observable), then heals and cuts the " +
			"stale conns, forcing the session layer to redial and " +
			"retransmit. TCP only — the fault lives below the session " +
			"layer.",
		Transports: []Transport{TCPTransport},
		Workloads:  storageWorkloads,
		WireProxy:  true,
		Script: func(r *core.RQS, seed int64) *chaos.Script {
			// A fixed 10ms delay into servers stretches the run so the
			// blackhole window overlaps live client traffic.
			return chaos.NewScript(seed).Rule(chaos.Rule{
				To:     r.Universe(),
				Effect: chaos.Delay{Dist: chaos.Fixed(10 * time.Millisecond)},
			})
		},
		Events: func(rc *RunContext) {
			time.Sleep(40 * time.Millisecond)
			rc.Proxy.Blackhole(true)
			time.Sleep(250 * time.Millisecond)
			rc.Proxy.Blackhole(false)
			rc.Proxy.CutConns()
		},
	},
}

// Scenarios returns the registry in canonical order.
func Scenarios() []*Scenario {
	out := make([]*Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// FindScenario looks a scenario up by name.
func FindScenario(name string) (*Scenario, bool) {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return nil, false
}
