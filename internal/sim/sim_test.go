package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

func TestStorageClusterDefaults(t *testing.T) {
	c := NewStorageCluster(core.Example7RQS(), StorageOptions{})
	defer c.Stop()
	if c.Timeout != storage.DefaultTimeout {
		t.Errorf("timeout = %v", c.Timeout)
	}
	if len(c.Servers) != 6 {
		t.Errorf("servers = %d", len(c.Servers))
	}
	w, r := c.Writer(), c.Reader()
	w.Write("x")
	if res := r.Read(); res.Val != "x" {
		t.Errorf("read = %+v", res)
	}
}

func TestStorageClusterClientExhaustionPanics(t *testing.T) {
	c := NewStorageCluster(core.Example7RQS(), StorageOptions{Clients: 1})
	defer c.Stop()
	c.Writer()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on client-slot exhaustion")
		}
	}()
	c.Reader()
}

func TestStorageClusterReaderOptsInheritsTimeout(t *testing.T) {
	c := NewStorageCluster(core.Example7RQS(), StorageOptions{Timeout: 3 * time.Millisecond})
	defer c.Stop()
	r := c.ReaderOpts(storage.ReaderOptions{Semantics: storage.Regular})
	if res := r.Read(); res.TS != 0 {
		t.Errorf("empty read = %+v", res)
	}
}

func TestConsensusClusterDefaults(t *testing.T) {
	c, err := NewConsensusCluster(core.Example7RQS(), ConsensusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Proposers) != 2 || len(c.Learners) != 3 {
		t.Errorf("defaults: %d proposers, %d learners", len(c.Proposers), len(c.Learners))
	}
	// Role IDs must tile: acceptors 0..5, proposers 6..7, learners 8..10.
	if c.Topo.Proposers[0] != 6 || !c.Topo.Learners.Contains(8) {
		t.Errorf("topology = %+v", c.Topo)
	}
	if c.Topo.Leader(0) != 6 || c.Topo.Leader(1) != 7 || c.Topo.Leader(2) != 6 {
		t.Error("leader rotation broken")
	}
}

func TestCrashHelpers(t *testing.T) {
	c := NewStorageCluster(core.Example7RQS(), StorageOptions{})
	defer c.Stop()
	c.CrashServers(core.NewSet(0, 5))
	if got := c.Net.Crashed(); got != core.NewSet(0, 5) {
		t.Errorf("crashed = %v", got)
	}
}
