package sim

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/smr"
	"repro/internal/transport"
)

// SMRCluster is a running pipelined state-machine-replication
// deployment: every log slot shares one consensus cluster — one key
// generation, one network, one process per role — with per-slot
// protocol instances multiplexed by slot id (internal/smr). Acceptor
// replicas sit on IDs 0..n-1 (the RQS universe), the proposer host on
// n, the log/learner host on n+1.
type SMRCluster struct {
	RQS      *core.RQS
	Net      *transport.Network
	Topo     consensus.Topology
	Ring     *consensus.Keyring
	Replicas []*smr.Replica
	Prop     *smr.Proposer
	Log      *smr.Log
}

// SMROptions configures NewSMRCluster.
type SMROptions struct {
	// Election configures the per-slot view-change machinery.
	Election consensus.ElectionConfig
	// PullEvery enables learner decision-pulling (default 20ms; < 0
	// disables). Pulling lets a log host that joined a slot late catch
	// up from decided acceptors.
	PullEvery time.Duration
	// Hooks optionally makes individual acceptor replicas Byzantine:
	// the hook set is installed on every slot acceptor the replica
	// creates (the consensus-level mirror of StorageOptions.Hooks).
	Hooks map[core.ProcessID]consensus.Hooks
}

// NewSMRCluster starts the shared deployment. The whole cluster —
// regardless of how many slots it will decide — performs exactly one
// key generation; TestSMRClusterSingleKeyGeneration pins that.
func NewSMRCluster(rqs *core.RQS, opts SMROptions) (*SMRCluster, error) {
	if opts.PullEvery == 0 {
		opts.PullEvery = 20 * time.Millisecond
	} else if opts.PullEvery < 0 {
		opts.PullEvery = 0
	}
	nA := rqs.N()
	topo := consensus.Topology{
		Acceptors: rqs.Universe(),
		Proposers: []core.ProcessID{nA},
		Learners:  core.NewSet(nA + 1),
	}
	ring, signers, err := consensus.GenKeys(rqs.Universe())
	if err != nil {
		return nil, fmt.Errorf("smr cluster: %w", err)
	}
	net := transport.NewNetwork(nA + 2)
	c := &SMRCluster{RQS: rqs, Net: net, Topo: topo, Ring: ring}
	for _, id := range rqs.Universe().Members() {
		c.Replicas = append(c.Replicas, smr.NewReplicaHooks(
			rqs, topo, net.Port(id), ring, signers[id], opts.Election, opts.Hooks[id]))
	}
	c.Prop = smr.NewProposer(rqs, topo, net.Port(nA), ring, opts.Election)
	c.Log = smr.NewLog(rqs, topo, net.Port(nA+1), opts.PullEvery)
	return c, nil
}

// Append allocates the next log slot, proposes cmd into it, and
// returns the slot (slots commit independently, possibly out of order).
func (c *SMRCluster) Append(cmd consensus.Value) int {
	return c.Prop.Append(cmd)
}

// Propose submits a command for an explicit slot.
func (c *SMRCluster) Propose(slot int, cmd consensus.Value) {
	c.Prop.Propose(slot, cmd)
}

// Wait blocks until the slot commits or the timeout elapses.
func (c *SMRCluster) Wait(slot int, timeout time.Duration) (consensus.Value, bool) {
	return c.Log.Wait(slot, timeout)
}

// Decide appends cmd and waits for its slot to commit — one amortized
// consensus decision over the shared deployment.
func (c *SMRCluster) Decide(cmd consensus.Value, timeout time.Duration) (int, consensus.Value, bool) {
	slot := c.Append(cmd)
	v, ok := c.Wait(slot, timeout)
	return slot, v, ok
}

// SetInjector installs a fault injector on the cluster's network
// (nil removes it).
func (c *SMRCluster) SetInjector(inj transport.Injector) {
	c.Net.SetInjector(inj)
}

// CrashAcceptors crashes the given acceptors at the network boundary.
func (c *SMRCluster) CrashAcceptors(set core.Set) {
	for _, id := range set.Members() {
		c.Net.Crash(id)
	}
}

// Stop shuts the cluster down.
func (c *SMRCluster) Stop() {
	c.Net.Close()
	for _, r := range c.Replicas {
		r.Stop()
	}
	c.Prop.Stop()
	c.Log.Stop()
}
