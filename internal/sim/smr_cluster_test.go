package sim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
)

// TestSMRClusterDecidesAcrossSlots commits commands through the shared
// deployment with Append/Decide and checks the gap-free prefix.
func TestSMRClusterDecidesAcrossSlots(t *testing.T) {
	c, err := NewSMRCluster(core.Example7RQS(), SMROptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const slots = 8
	allocated := make([]int, slots)
	for i := 0; i < slots; i++ {
		allocated[i] = c.Append(fmt.Sprintf("cmd-%d", i))
		if allocated[i] != i {
			t.Fatalf("Append allocated slot %d, want %d", allocated[i], i)
		}
	}
	for i := 0; i < slots; i++ {
		v, ok := c.Wait(i, 10*time.Second)
		if !ok {
			t.Fatalf("slot %d did not commit", i)
		}
		if want := fmt.Sprintf("cmd-%d", i); v != want {
			t.Errorf("slot %d = %q, want %q", i, v, want)
		}
	}
	if got := len(c.Log.Prefix()); got != slots {
		t.Errorf("prefix length = %d, want %d", got, slots)
	}
	if slot, v, ok := c.Decide("tail", 10*time.Second); !ok || v != "tail" || slot != slots {
		t.Errorf("Decide = (%d, %q, %v), want (%d, %q, true)", slot, v, ok, slots, "tail")
	}
}

// TestSMRClusterSingleKeyGeneration is the pipelining regression test:
// a deployment deciding N slots performs exactly one key-generation
// call — the cost that used to be paid per decision when every slot
// stood up its own cluster (BenchmarkE11ThroughputConsensusDecision).
func TestSMRClusterSingleKeyGeneration(t *testing.T) {
	before := consensus.KeyGenCalls()
	c, err := NewSMRCluster(core.Example7RQS(), SMROptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const slots = 16
	for i := 0; i < slots; i++ {
		c.Append(fmt.Sprintf("cmd-%d", i))
	}
	for i := 0; i < slots; i++ {
		if _, ok := c.Wait(i, 10*time.Second); !ok {
			t.Fatalf("slot %d did not commit", i)
		}
	}
	if calls := consensus.KeyGenCalls() - before; calls != 1 {
		t.Fatalf("deciding %d slots performed %d key generations, want exactly 1", slots, calls)
	}
}
