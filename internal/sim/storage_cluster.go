// Package sim assembles protocol clusters over the in-memory transport:
// servers plus client ports for the storage protocol, and the
// proposer/acceptor/learner topologies of the consensus protocol. It is
// the shared harness behind the tests, the benchmarks and the examples.
package sim

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
)

// StorageCluster is a running storage deployment: n servers on process
// IDs 0..n-1 and a pool of client ports above them.
type StorageCluster struct {
	RQS     *core.RQS
	Net     *transport.Network
	Servers []*storage.Server
	Timeout time.Duration

	// dataDir, when non-empty, makes every server durable: each runs
	// over a WAL in its own subdirectory, and RestartServer recovers
	// from that log instead of bringing the server back amnesiac.
	dataDir   string
	walNoSync bool
	// auth, when non-nil, runs the deployment authenticated: servers
	// verify writer signatures and countersign read acks, clients sign
	// their tags and screen acks. Preserved across RestartServer (key
	// material survives a process crash — it lives in the deployment's
	// provisioning, not the process).
	auth *auth.Deployment

	clientMu   sync.Mutex // tests spawn clients from concurrent goroutines
	nClients   int
	nextClient int
}

// StorageOptions configures NewStorageCluster.
type StorageOptions struct {
	// Clients is the number of client slots to reserve (default 4).
	Clients int
	// Timeout is the protocol's 2Δ timer (default storage.DefaultTimeout).
	Timeout time.Duration
	// Hooks optionally makes individual servers Byzantine.
	Hooks map[core.ProcessID]storage.Hooks
	// DataDir, when non-empty, runs every server over a write-ahead log
	// in DataDir/s<id>: acks only follow the fsync, and RestartServer
	// replays the log instead of losing the state. Empty = volatile
	// servers that restart amnesiac.
	DataDir string
	// WALNoSync skips the WAL's fdatasync (benchmark-only; meaningless
	// without DataDir).
	WALNoSync bool
	// Auth, when non-nil, installs the deployment's key material on
	// every server and client (see AuthDeployment for generating one
	// sized to this cluster).
	Auth *auth.Deployment
}

// AuthDeployment generates key material for a cluster over the given
// quorum system with `clients` client slots: identities 0..n-1 are the
// servers, n..n+clients-1 the clients. Provisioning goes through the
// identity-list constructor because client IDs can pass 63, beyond
// what a core.Set holds (a C=64 load bench reaches port 71). It panics
// on key-generation failure — harness callers have no recovery path.
func AuthDeployment(mode auth.Mode, rqs *core.RQS, clients int) *auth.Deployment {
	ids := rqs.Universe().Members()
	for i := 0; i < clients; i++ {
		ids = append(ids, core.ProcessID(rqs.N()+i))
	}
	return auth.MustDeploymentIDs(mode, ids)
}

// mustSigner is the harness's misprovision guard. An authenticated
// writer holding no signer sends unsigned tags that verifying servers
// silently drop — the op hangs forever instead of failing. Catch the
// undersized deployment at construction, loudly.
func mustSigner(d *auth.Deployment, id core.ProcessID) auth.Signer {
	s := d.Signer(id)
	if s == nil {
		panic(fmt.Sprintf("sim: no signer provisioned for identity %d (deployment smaller than the cluster?)", id))
	}
	return s
}

// NewStorageCluster starts servers for every process in the RQS
// universe. It panics if a durable server's data directory cannot be
// opened — the harness callers (tests, benchmarks) have no recovery
// path for a broken temp dir anyway.
func NewStorageCluster(rqs *core.RQS, opts StorageOptions) *StorageCluster {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Timeout <= 0 {
		opts.Timeout = storage.DefaultTimeout
	}
	n := rqs.N()
	net := transport.NewNetwork(n + opts.Clients)
	c := &StorageCluster{
		RQS:       rqs,
		Net:       net,
		Timeout:   opts.Timeout,
		dataDir:   opts.DataDir,
		walNoSync: opts.WALNoSync,
		auth:      opts.Auth,
		nClients:  opts.Clients,
	}
	for id := 0; id < n; id++ {
		srv, err := c.newServer(core.ProcessID(id), opts.Hooks[id])
		if err != nil {
			net.Close()
			panic(fmt.Sprintf("sim: durable server %d: %v", id, err))
		}
		srv.Start()
		c.Servers = append(c.Servers, srv)
	}
	return c
}

// newServer builds server id in the cluster's durability mode.
func (c *StorageCluster) newServer(id core.ProcessID, hooks storage.Hooks) (*storage.Server, error) {
	var srv *storage.Server
	var err error
	if c.dataDir == "" {
		srv = storage.NewServer(c.Net.Port(id), hooks)
	} else {
		dir := filepath.Join(c.dataDir, fmt.Sprintf("s%d", id))
		srv, err = storage.NewDurableServer(c.Net.Port(id), hooks, dir,
			storage.DurableOptions{NoSync: c.walNoSync})
		if err != nil {
			return nil, err
		}
	}
	if c.auth != nil {
		srv.SetAuth(c.auth.Signer(id), c.auth.Verifier())
	}
	return srv, nil
}

// Writer returns a writer on a fresh client port.
func (c *StorageCluster) Writer() *storage.Writer {
	return storage.NewWriter(c.RQS, c.clientPort(), c.Timeout)
}

// Reader returns a reader on a fresh client port.
func (c *StorageCluster) Reader() *storage.Reader {
	return storage.NewReader(c.RQS, c.clientPort(), c.Timeout)
}

// MWWriter returns a multi-writer client on a fresh client port; its
// writer ID is the port's process ID, so every MWWriter from one
// cluster tags its writes distinctly. On an authenticated cluster the
// writer signs with the key provisioned for its port's identity.
func (c *StorageCluster) MWWriter() *storage.MWWriter {
	port := c.clientPort()
	if c.auth != nil {
		return storage.NewMWWriterAuth(c.RQS, port, mustSigner(c.auth, port.ID()), c.auth.Verifier())
	}
	return storage.NewMWWriter(c.RQS, port)
}

// MWReader returns a multi-reader client on a fresh client port.
func (c *StorageCluster) MWReader() *storage.MWReader {
	port := c.clientPort()
	if c.auth != nil {
		return storage.NewMWReaderAuth(c.RQS, port, c.auth.Verifier())
	}
	return storage.NewMWReader(c.RQS, port)
}

// ReaderOpts returns a reader with explicit options (regular semantics,
// QC'2 ablation) on a fresh client port.
func (c *StorageCluster) ReaderOpts(opts storage.ReaderOptions) *storage.Reader {
	if opts.Timeout <= 0 {
		opts.Timeout = c.Timeout
	}
	return storage.NewReaderOpts(c.RQS, c.clientPort(), opts)
}

func (c *StorageCluster) clientPort() transport.Port {
	c.clientMu.Lock()
	defer c.clientMu.Unlock()
	if c.nextClient >= c.nClients {
		panic("sim: client slots exhausted; raise StorageOptions.Clients")
	}
	id := c.RQS.N() + c.nextClient
	c.nextClient++
	return c.Net.Port(id)
}

// CrashServers crashes every server in the set at the network boundary.
func (c *StorageCluster) CrashServers(set core.Set) {
	for _, id := range set.Members() {
		c.Net.Crash(id)
	}
}

// SetInjector installs a fault injector on the cluster's network
// (nil removes it).
func (c *StorageCluster) SetInjector(inj transport.Injector) {
	c.Net.SetInjector(inj)
}

// RestartServer models kill -9 + restart of server id: the process
// disappears at the network boundary and its loop stops, stays down
// for the given duration, then a fresh server resumes at the same
// process ID — strictly from on-disk state. A durable cluster's fresh
// server replays its write-ahead log; a volatile cluster's comes back
// amnesiac, exactly like a real process whose memory died with it.
// Messages sent while it was down are dropped — liveness during the
// outage rests on the remaining quorums.
func (c *StorageCluster) RestartServer(id core.ProcessID, down time.Duration) error {
	c.Net.Crash(id)
	c.Servers[id].Stop()
	if down > 0 {
		time.Sleep(down)
	}
	fresh, err := c.newServer(id, storage.Hooks{})
	if err != nil {
		return fmt.Errorf("sim: recover server %d: %w", id, err)
	}
	c.Servers[id] = fresh
	fresh.Start()
	c.Net.Restart(id)
	return nil
}

// Stop shuts the cluster down.
func (c *StorageCluster) Stop() {
	c.Net.Close()
	for _, s := range c.Servers {
		s.Stop()
	}
}
