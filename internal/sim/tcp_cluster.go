package sim

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TCPStorageCluster is a storage deployment over real loopback TCP in
// the shape a production colocation actually has: every server is its
// own OS process (one TCPHost each), and ALL client nodes share one
// client process (one TCPHost hosting C logical nodes). The session
// layer then keeps the socket count per process pair O(1): the client
// process holds exactly n outgoing sessions no matter how many
// thousands of logical clients it hosts, instead of the pre-session
// n×C socket mesh that collapsed the C=64 load numbers.
type TCPStorageCluster struct {
	RQS     *core.RQS
	Servers []*storage.Server
	Timeout time.Duration

	ServerHosts []*transport.TCPHost
	ClientHost  *transport.TCPHost

	clientMu   sync.Mutex
	ports      []transport.Port
	nextClient int

	// addrs is the shared address map the hosts were built over; kept
	// so RestartServer can bring a fresh host up at the old address.
	// inj is the currently installed injector, re-installed on
	// restarted hosts.
	addrs map[core.ProcessID]string
	inj   transport.Injector

	// dataDir, when non-empty, makes every server durable: its WAL
	// lives in dataDir/s<id>/wal and its host's dedup table in
	// dataDir/s<id>/net, and RestartServer recovers both from disk.
	dataDir   string
	walNoSync bool
	// auth mirrors StorageCluster.auth (preserved across RestartServer).
	auth *auth.Deployment
}

// TCPStorageOptions configures NewTCPStorageCluster.
type TCPStorageOptions struct {
	// Clients is the number of colocated client nodes (default 4).
	Clients int
	// Timeout is the protocol's 2Δ timer (default 5ms — loopback TCP).
	Timeout time.Duration
	// Hooks optionally makes individual servers Byzantine.
	Hooks map[core.ProcessID]storage.Hooks
	// DataDir, when non-empty, makes every server process durable: the
	// register state goes through a write-ahead log and the session
	// layer's dedup table through atomic state files, both under
	// DataDir/s<id>, so RestartServer recovers the whole process from
	// disk. Empty = volatile servers that restart amnesiac.
	DataDir string
	// WALNoSync skips the WAL's fdatasync (benchmark-only).
	WALNoSync bool
	// Auth, when non-nil, installs the deployment's key material on
	// every server and client (see AuthDeployment).
	Auth *auth.Deployment
}

var registerTCPStorageOnce sync.Once

// RegisterTCPStorageMessages registers the storage payload types with
// the framed TCP codec (idempotent).
func RegisterTCPStorageMessages() {
	registerTCPStorageOnce.Do(func() {
		transport.Register(storage.WriteReq{})
		transport.Register(storage.WriteAck{})
		transport.Register(storage.ReadReq{})
		transport.Register(storage.ReadAck{})
		transport.Register(storage.MWReadReq{})
		transport.Register(storage.MWReadAck{})
		transport.Register(storage.MWWriteReq{})
		transport.Register(storage.MWWriteAck{})
		transport.Register(storage.KVCASReq{})
		transport.Register(storage.KVCASAck{})
	})
}

// NewTCPStorageCluster starts the RQS's servers on one loopback host
// each and a single shared client host carrying opts.Clients logical
// client nodes.
func NewTCPStorageCluster(r *core.RQS, opts TCPStorageOptions) (*TCPStorageCluster, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Millisecond
	}
	RegisterTCPStorageMessages()
	n := r.N()
	c := &TCPStorageCluster{RQS: r, Timeout: opts.Timeout,
		dataDir: opts.DataDir, walNoSync: opts.WALNoSync, auth: opts.Auth}
	addrs := make(map[core.ProcessID]string, n+opts.Clients)
	c.addrs = addrs
	fail := func(err error) (*TCPStorageCluster, error) {
		c.Stop()
		return nil, err
	}
	// Phase 1: bind every listener so the shared addrs map is COMPLETE
	// before any protocol goroutine starts. Servers resolve client
	// addresses lazily when they first reply; starting them only after
	// the map is fully populated gives those reads a happens-before
	// edge (the Start goroutine spawn) instead of racing the setup
	// writes.
	for id := 0; id < n; id++ {
		host, err := transport.NewTCPHostDir("127.0.0.1:0", addrs, c.serverNetDir(core.ProcessID(id)))
		if err != nil {
			return fail(err)
		}
		c.ServerHosts = append(c.ServerHosts, host)
		addrs[id] = host.Addr()
	}
	clientHost, err := transport.NewTCPHost("127.0.0.1:0", addrs)
	if err != nil {
		return fail(err)
	}
	c.ClientHost = clientHost
	for i := 0; i < opts.Clients; i++ {
		addrs[n+i] = clientHost.Addr()
	}
	// Phase 2: attach logical nodes and start the protocol goroutines.
	for id := 0; id < n; id++ {
		node, err := c.ServerHosts[id].Node(id)
		if err != nil {
			return fail(err)
		}
		srv, err := c.newServer(node, core.ProcessID(id), opts.Hooks[id])
		if err != nil {
			return fail(err)
		}
		srv.Start()
		c.Servers = append(c.Servers, srv)
	}
	for i := 0; i < opts.Clients; i++ {
		node, err := clientHost.Node(n + i)
		if err != nil {
			return fail(err)
		}
		c.ports = append(c.ports, node)
	}
	return c, nil
}

// serverNetDir is server id's dedup state dir ("" when volatile).
func (c *TCPStorageCluster) serverNetDir(id core.ProcessID) string {
	if c.dataDir == "" {
		return ""
	}
	return filepath.Join(c.dataDir, fmt.Sprintf("s%d", id), "net")
}

// newServer builds server id over node in the cluster's durability
// mode.
func (c *TCPStorageCluster) newServer(node transport.Port, id core.ProcessID, hooks storage.Hooks) (*storage.Server, error) {
	var srv *storage.Server
	var err error
	if c.dataDir == "" {
		srv = storage.NewServer(node, hooks)
	} else {
		dir := filepath.Join(c.dataDir, fmt.Sprintf("s%d", id), "wal")
		srv, err = storage.NewDurableServer(node, hooks, dir,
			storage.DurableOptions{NoSync: c.walNoSync})
		if err != nil {
			return nil, err
		}
	}
	if c.auth != nil {
		srv.SetAuth(c.auth.Signer(id), c.auth.Verifier())
	}
	return srv, nil
}

// Reader returns a reader on a fresh colocated client node.
func (c *TCPStorageCluster) Reader() *storage.Reader {
	return storage.NewReader(c.RQS, c.clientPort(), c.Timeout)
}

// Writer returns a writer on a fresh colocated client node.
func (c *TCPStorageCluster) Writer() *storage.Writer {
	return storage.NewWriter(c.RQS, c.clientPort(), c.Timeout)
}

// MWWriter returns a multi-writer client on a fresh colocated client
// node.
func (c *TCPStorageCluster) MWWriter() *storage.MWWriter {
	port := c.clientPort()
	if c.auth != nil {
		return storage.NewMWWriterAuth(c.RQS, port, mustSigner(c.auth, port.ID()), c.auth.Verifier())
	}
	return storage.NewMWWriter(c.RQS, port)
}

// MWReader returns a multi-reader client on a fresh colocated client
// node.
func (c *TCPStorageCluster) MWReader() *storage.MWReader {
	port := c.clientPort()
	if c.auth != nil {
		return storage.NewMWReaderAuth(c.RQS, port, c.auth.Verifier())
	}
	return storage.NewMWReader(c.RQS, port)
}

func (c *TCPStorageCluster) clientPort() transport.Port {
	c.clientMu.Lock()
	defer c.clientMu.Unlock()
	if c.nextClient >= len(c.ports) {
		panic("sim: client slots exhausted; raise TCPStorageOptions.Clients")
	}
	p := c.ports[c.nextClient]
	c.nextClient++
	return p
}

// SetInjector installs a fault injector on every host of the
// deployment — requests are decided at the client host, replies at the
// server hosts, so both directions of every link go through it. Nil
// removes it.
func (c *TCPStorageCluster) SetInjector(inj transport.Injector) {
	c.clientMu.Lock()
	c.inj = inj
	hosts := append([]*transport.TCPHost{c.ClientHost}, c.ServerHosts...)
	c.clientMu.Unlock()
	for _, h := range hosts {
		if h != nil {
			h.SetInjector(inj)
		}
	}
}

// RestartServer models kill -9 + restart of server id's OS process:
// its host closes (every conn dies abruptly), the process stays down,
// then a fresh host binds the same address and a fresh server resumes
// — strictly from on-disk state. A durable cluster's fresh process
// replays its WAL and reloads its dedup table; a volatile cluster's
// comes back amnesiac. Client sessions redial with jittered backoff
// and retransmit their unacked frames, so requests sent during the
// outage are replayed to the new incarnation.
func (c *TCPStorageCluster) RestartServer(id core.ProcessID, down time.Duration) error {
	host := c.ServerHosts[id]
	addr := host.Addr()
	host.Close()
	c.Servers[id].Stop()
	if down > 0 {
		time.Sleep(down)
	}
	fresh, err := transport.NewTCPHostDir(addr, c.addrs, c.serverNetDir(id))
	if err != nil {
		return err
	}
	node, err := fresh.Node(id)
	if err != nil {
		fresh.Close()
		return err
	}
	c.clientMu.Lock()
	if inj := c.inj; inj != nil {
		fresh.SetInjector(inj)
	}
	c.ServerHosts[id] = fresh
	c.clientMu.Unlock()
	s, err := c.newServer(node, id, storage.Hooks{})
	if err != nil {
		fresh.Close()
		return err
	}
	c.Servers[id] = s
	s.Start()
	return nil
}

// Stop tears the deployment down.
func (c *TCPStorageCluster) Stop() {
	if c.ClientHost != nil {
		c.ClientHost.Close()
	}
	for _, h := range c.ServerHosts {
		h.Close()
	}
	for _, s := range c.Servers {
		s.Stop()
	}
}
