package sim

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestTCPStorageClusterSharedSessions drives the colocated TCP
// deployment end to end and asserts the session-layer invariant the
// load numbers rest on: C logical clients cost ONE socket per server
// process, not C.
func TestTCPStorageClusterSharedSessions(t *testing.T) {
	const clients = 8
	r := core.Example7RQS()
	c, err := NewTCPStorageCluster(r, TCPStorageOptions{Clients: clients + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	c.Writer().Write("v")
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		rd := c.Reader()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if res := rd.Read(); res.Val != "v" {
					t.Errorf("read %+v, want v", res)
					return
				}
			}
		}()
	}
	wg.Wait()

	// O(1) sockets per process pair: the client host dialed each of the
	// n server processes exactly once, regardless of client count.
	if s := c.ClientHost.Stats(); s.Sessions != r.N() {
		t.Errorf("client host holds %d sessions for %d clients × %d servers, want %d (one per server process)",
			s.Sessions, clients, r.N(), r.N())
	}
	for i, h := range c.ServerHosts {
		if s := h.Stats(); s.AcceptedConns > 1 {
			t.Errorf("server %d accepted %d conns from the client process, want ≤ 1", i, s.AcceptedConns)
		}
		if s := h.Stats(); s.Drops != 0 {
			t.Errorf("server %d dropped %d envelopes", i, s.Drops)
		}
	}
}
