// Package smr layers a replicated command log on top of the single-shot
// consensus of Section 4 — the "general state machine replication (SMR)
// framework of [34]" that motivates the paper's consensus algorithm. Each
// log slot is one consensus instance; all instances share the physical
// network through a per-slot multiplexer, so a deployment needs one
// process per role, not one per slot.
package smr

import (
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

// SlotMsg wraps a consensus message with its log-slot index.
type SlotMsg struct {
	Slot    int
	Payload transport.Message
}

// mux demultiplexes a real port into per-slot virtual ports.
type mux struct {
	real transport.Port

	mu     sync.Mutex
	slots  map[int]chan transport.Envelope
	onNew  func(slot int) // called (unlocked) when a new slot appears
	closed bool
	wg     sync.WaitGroup
}

func newMux(real transport.Port, onNew func(int)) *mux {
	m := &mux{real: real, slots: make(map[int]chan transport.Envelope), onNew: onNew}
	m.wg.Add(1)
	go m.run()
	return m
}

func (m *mux) run() {
	defer m.wg.Done()
	for env := range m.real.Inbox() {
		sm, ok := env.Payload.(SlotMsg)
		if !ok {
			continue
		}
		ch, fresh := m.slotChan(sm.Slot)
		if ch == nil {
			return
		}
		if fresh && m.onNew != nil {
			m.onNew(sm.Slot)
		}
		ch <- transport.Envelope{From: env.From, To: env.To, Hop: env.Hop, Payload: sm.Payload}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for _, ch := range m.slots {
		close(ch)
	}
}

func (m *mux) slotChan(slot int) (ch chan transport.Envelope, fresh bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false
	}
	ch, ok := m.slots[slot]
	if !ok {
		ch = make(chan transport.Envelope, 1024)
		m.slots[slot] = ch
		fresh = true
	}
	return ch, fresh
}

// port returns the virtual port of a slot.
func (m *mux) port(slot int) transport.Port {
	ch, _ := m.slotChan(slot)
	return &slotPort{mux: m, slot: slot, inbox: ch}
}

// wait blocks until the mux goroutine exits (after the real port closes).
func (m *mux) wait() { m.wg.Wait() }

type slotPort struct {
	mux   *mux
	slot  int
	inbox chan transport.Envelope
}

var _ transport.Port = (*slotPort)(nil)

func (p *slotPort) ID() core.ProcessID { return p.mux.real.ID() }

func (p *slotPort) Send(to core.ProcessID, payload transport.Message) {
	p.mux.real.Send(to, SlotMsg{Slot: p.slot, Payload: payload})
}

func (p *slotPort) SendHop(to core.ProcessID, payload transport.Message, hop int) {
	p.mux.real.SendHop(to, SlotMsg{Slot: p.slot, Payload: payload}, hop)
}

func (p *slotPort) Inbox() <-chan transport.Envelope { return p.inbox }

// Replica hosts the acceptor role for every slot: consensus acceptors are
// created lazily when a slot's first message arrives.
type Replica struct {
	rqs    *core.RQS
	topo   consensus.Topology
	ring   *consensus.Keyring
	signer *consensus.Signer
	elect  consensus.ElectionConfig
	mux    *mux

	mu        sync.Mutex
	acceptors map[int]*consensus.Acceptor
}

// NewReplica starts the acceptor host on the given port.
func NewReplica(rqs *core.RQS, topo consensus.Topology, port transport.Port,
	ring *consensus.Keyring, signer *consensus.Signer, elect consensus.ElectionConfig) *Replica {
	r := &Replica{
		rqs: rqs, topo: topo, ring: ring, signer: signer, elect: elect,
		acceptors: make(map[int]*consensus.Acceptor),
	}
	r.mux = newMux(port, r.ensureSlot)
	return r
}

func (r *Replica) ensureSlot(slot int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.acceptors[slot]; ok {
		return
	}
	a := consensus.NewAcceptor(r.rqs, r.topo, r.mux.port(slot), r.ring, r.signer, r.elect)
	a.Start()
	r.acceptors[slot] = a
}

// Stop shuts every slot's acceptor down. Call after the network closes.
func (r *Replica) Stop() {
	r.mux.wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.acceptors {
		a.Stop()
	}
}

// Proposer hosts the proposer role across slots.
type Proposer struct {
	rqs  *core.RQS
	topo consensus.Topology
	ring *consensus.Keyring
	mux  *mux

	mu        sync.Mutex
	proposers map[int]*consensus.Proposer
}

// NewProposer starts the proposer host on the given port.
func NewProposer(rqs *core.RQS, topo consensus.Topology, port transport.Port, ring *consensus.Keyring) *Proposer {
	p := &Proposer{rqs: rqs, topo: topo, ring: ring, proposers: make(map[int]*consensus.Proposer)}
	p.mux = newMux(port, func(slot int) { p.ensureSlot(slot) })
	return p
}

func (p *Proposer) ensureSlot(slot int) *consensus.Proposer {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.proposers[slot]
	if !ok {
		pr = consensus.NewProposer(p.rqs, p.topo, p.mux.port(slot), p.ring)
		pr.Start()
		p.proposers[slot] = pr
	}
	return pr
}

// Propose submits a command for a log slot.
func (p *Proposer) Propose(slot int, cmd consensus.Value) {
	p.ensureSlot(slot).Propose(cmd)
}

// Stop shuts the proposer host down. Call after the network closes.
func (p *Proposer) Stop() {
	p.mux.wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pr := range p.proposers {
		pr.Stop()
	}
}

// Log hosts the learner role and assembles the committed command log.
type Log struct {
	rqs       *core.RQS
	topo      consensus.Topology
	pullEvery time.Duration
	mux       *mux

	mu       sync.Mutex
	learners map[int]*consensus.Learner
	entries  map[int]consensus.Value
	watchers map[int][]chan consensus.Value
	lwg      sync.WaitGroup
}

// NewLog starts the learner host on the given port.
func NewLog(rqs *core.RQS, topo consensus.Topology, port transport.Port, pullEvery time.Duration) *Log {
	l := &Log{
		rqs: rqs, topo: topo, pullEvery: pullEvery,
		learners: make(map[int]*consensus.Learner),
		entries:  make(map[int]consensus.Value),
		watchers: make(map[int][]chan consensus.Value),
	}
	l.mux = newMux(port, l.ensureSlot)
	return l
}

func (l *Log) ensureSlot(slot int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.learners[slot]; ok {
		return
	}
	lr := consensus.NewLearner(l.rqs, l.topo, l.mux.port(slot), l.pullEvery)
	lr.Start()
	l.learners[slot] = lr
	l.lwg.Add(1)
	go func() {
		defer l.lwg.Done()
		res, ok := <-lr.Learned()
		if !ok {
			return
		}
		l.mu.Lock()
		l.entries[slot] = res.V
		ws := l.watchers[slot]
		delete(l.watchers, slot)
		l.mu.Unlock()
		for _, w := range ws {
			w <- res.V
		}
	}()
}

// Get returns the committed command of a slot, if any.
func (l *Log) Get(slot int) (consensus.Value, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.entries[slot]
	return v, ok
}

// Wait blocks until a slot commits or the timeout elapses.
func (l *Log) Wait(slot int, timeout time.Duration) (consensus.Value, bool) {
	l.mu.Lock()
	if v, ok := l.entries[slot]; ok {
		l.mu.Unlock()
		return v, true
	}
	ch := make(chan consensus.Value, 1)
	l.watchers[slot] = append(l.watchers[slot], ch)
	l.mu.Unlock()
	select {
	case v := <-ch:
		return v, true
	case <-time.After(timeout):
		return consensus.None, false
	}
}

// Prefix returns the longest gap-free committed prefix starting at slot 0.
func (l *Log) Prefix() []consensus.Value {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []consensus.Value
	for slot := 0; ; slot++ {
		v, ok := l.entries[slot]
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Stop shuts the learner host down. Call after the network closes.
func (l *Log) Stop() {
	l.mux.wait()
	l.mu.Lock()
	learners := l.learners
	l.learners = map[int]*consensus.Learner{}
	l.mu.Unlock()
	for _, lr := range learners {
		lr.Stop()
	}
	l.lwg.Wait()
}
