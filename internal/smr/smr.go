// Package smr layers a replicated command log on top of the single-shot
// consensus of Section 4 — the "general state machine replication (SMR)
// framework of [34]" that motivates the paper's consensus algorithm.
//
// Each log slot is one consensus instance, but slots are pipelined over
// one shared consensus deployment: a deployment performs one key
// generation and stands up one process per role (Replica hosting
// acceptors, Proposer hosting proposers, Log hosting learners), and a
// per-slot multiplexer (mux) routes SlotMsg-wrapped consensus messages
// to lazily created per-slot protocol instances. Deciding a command
// therefore costs one consensus round over an already-running cluster
// instead of a full cluster setup — the amortization BenchmarkSMRPipelined
// measures against the per-slot-setup baseline.
//
// Proposer.Append allocates log slots; many slots may be in flight at
// once and commit out of order, with Log.Prefix exposing the gap-free
// committed prefix. The sim package assembles a whole in-memory
// deployment as sim.SMRCluster.
package smr

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

// SlotMsg wraps a consensus message with its log-slot index.
type SlotMsg struct {
	Slot    int
	Payload transport.Message
}

// mux demultiplexes a real port into per-slot virtual ports. Slots can
// be retired (see retire): messages for a retired slot are dropped
// instead of re-materializing its channel, and the retired-slot record
// is a watermark plus a sparse overflow set, so a long-lived host's
// memory tracks the slots in flight, not the slots ever decided.
type mux struct {
	real transport.Port

	mu      sync.Mutex
	slots   map[int]chan transport.Envelope
	onNew   func(slot int) // called (unlocked) when a new slot appears
	floor   int            // every slot < floor is retired
	retired map[int]bool   // retired slots ≥ floor (out-of-order window)
	closed  bool
	wg      sync.WaitGroup
}

func newMux(real transport.Port, onNew func(int)) *mux {
	m := &mux{
		real:    real,
		slots:   make(map[int]chan transport.Envelope),
		retired: make(map[int]bool),
		onNew:   onNew,
	}
	m.wg.Add(1)
	go m.run()
	return m
}

func (m *mux) run() {
	defer m.wg.Done()
	for env := range m.real.Inbox() {
		sm, ok := env.Payload.(SlotMsg)
		if !ok {
			continue
		}
		ch, fresh, gone := m.slotChan(sm.Slot)
		if gone {
			continue
		}
		if ch == nil {
			return
		}
		if fresh && m.onNew != nil {
			m.onNew(sm.Slot)
		}
		ch <- transport.Envelope{From: env.From, To: env.To, Hop: env.Hop, Payload: sm.Payload}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for _, ch := range m.slots {
		close(ch)
	}
}

func (m *mux) slotChan(slot int) (ch chan transport.Envelope, fresh, gone bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if slot < m.floor || m.retired[slot] {
		return nil, false, true
	}
	if m.closed {
		return nil, false, false
	}
	ch, ok := m.slots[slot]
	if !ok {
		ch = make(chan transport.Envelope, slotChanBuf)
		m.slots[slot] = ch
		fresh = true
	}
	return ch, fresh, false
}

// retire drops a slot: its channel is released (never closed — the run
// goroutine may still hold a reference mid-send; buffered sends land
// harmlessly and the channel is collected) and later messages for it
// are discarded. The caller must have stopped the slot's consumer
// first. Contiguous retirements collapse into the floor watermark.
func (m *mux) retire(slot int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.slots, slot)
	if slot < m.floor || m.retired[slot] {
		return
	}
	if slot == m.floor {
		m.floor++
		for m.retired[m.floor] {
			delete(m.retired, m.floor)
			m.floor++
		}
		return
	}
	m.retired[slot] = true
}

// slotChanBuf sizes a slot's virtual inbox. One consensus instance
// exchanges a few dozen messages end to end and its goroutine consumes
// them continuously, so a small burst buffer suffices; the previous
// 1024-envelope buffer cost ~40KB of zeroed memory per slot per role
// host and dominated pipelined per-decision cost (8 hosts × 40KB ≈
// 320KB per decision on the Example 7 deployment).
const slotChanBuf = 64

// port returns the virtual port of a slot.
func (m *mux) port(slot int) transport.Port {
	ch, _, _ := m.slotChan(slot)
	return &slotPort{real: m.real, slot: slot, inbox: ch}
}

// wait blocks until the mux goroutine exits (after the real port closes).
func (m *mux) wait() { m.wg.Wait() }

// slotPort is one slot's virtual port: sends wrap payloads in SlotMsg
// on the shared real port; the inbox (nil for synchronously driven
// instances, which never read it) is fed by the owner's demultiplexer.
type slotPort struct {
	real  transport.Port
	slot  int
	inbox chan transport.Envelope
}

var _ transport.Port = (*slotPort)(nil)

func (p *slotPort) ID() core.ProcessID { return p.real.ID() }

func (p *slotPort) Send(to core.ProcessID, payload transport.Message) {
	p.real.Send(to, SlotMsg{Slot: p.slot, Payload: payload})
}

func (p *slotPort) SendHop(to core.ProcessID, payload transport.Message, hop int) {
	p.real.SendHop(to, SlotMsg{Slot: p.slot, Payload: payload}, hop)
}

func (p *slotPort) SendBatch(to core.ProcessID, payloads []transport.Message, hop int) {
	wrapped := make([]transport.Message, len(payloads))
	for i, pl := range payloads {
		wrapped[i] = SlotMsg{Slot: p.slot, Payload: pl}
	}
	p.real.SendBatch(to, wrapped, hop)
}

// Broadcast wraps the payload once and fans it out through the real
// port's batched broadcast, so a consensus instance's per-quorum
// fan-out costs one transport acceptance per burst even when
// multiplexed by slot.
func (p *slotPort) Broadcast(dst core.Set, payload transport.Message, hop int) {
	p.real.Broadcast(dst, SlotMsg{Slot: p.slot, Payload: payload}, hop)
}

func (p *slotPort) Inbox() <-chan transport.Envelope { return p.inbox }

// Replica hosts the acceptor role for every slot: consensus acceptors
// are created lazily when a slot's first message arrives.
//
// With the Election module disabled (the common pipelined deployment),
// every slot's acceptor is a pure message-driven state machine, so the
// replica drives them all synchronously from its one demultiplexing
// goroutine — no per-slot goroutine, channel, or wakeup per message.
// With elections enabled, acceptors need their internal timer loop and
// each slot gets its own goroutine behind a mux.
type Replica struct {
	rqs    *core.RQS
	topo   consensus.Topology
	ring   *consensus.Keyring
	signer *consensus.Signer
	elect  consensus.ElectionConfig
	hooks  consensus.Hooks // installed on every slot acceptor (chaos injection)

	mux        *mux           // election mode; nil when inline
	port       transport.Port // inline mode
	inlineDone chan struct{}

	mu        sync.Mutex
	acceptors map[int]*consensus.Acceptor // election mode only
}

// NewReplica starts the acceptor host on the given port.
func NewReplica(rqs *core.RQS, topo consensus.Topology, port transport.Port,
	ring *consensus.Keyring, signer *consensus.Signer, elect consensus.ElectionConfig) *Replica {
	return NewReplicaHooks(rqs, topo, port, ring, signer, elect, consensus.Hooks{})
}

// NewReplicaHooks is NewReplica with a Byzantine fault-injection
// surface (consensus.Hooks) installed on every slot acceptor this
// replica creates — the chaos matrix's handle for forging or
// equivocating protocol messages below the SMR slot driver. Hooks must
// be supplied at construction: slot acceptors are created lazily on
// the replica's goroutine, so a later setter would race.
func NewReplicaHooks(rqs *core.RQS, topo consensus.Topology, port transport.Port,
	ring *consensus.Keyring, signer *consensus.Signer, elect consensus.ElectionConfig,
	hooks consensus.Hooks) *Replica {
	r := &Replica{
		rqs: rqs, topo: topo, ring: ring, signer: signer, elect: elect, hooks: hooks,
	}
	if elect.Enabled {
		r.acceptors = make(map[int]*consensus.Acceptor)
		r.mux = newMux(port, r.ensureSlot)
		return r
	}
	r.port = port
	r.inlineDone = make(chan struct{})
	go r.runInline()
	return r
}

// runInline demultiplexes and executes every slot's acceptor on this
// one goroutine (timer-free acceptors only; see Replica). The slot
// maps need no lock — nothing else touches them.
//
// Decided slots are retired: the acceptor's whole protocol state is
// replaced by its decided value, which is all a decided acceptor ever
// uses again (answering decision pulls). Retiring keeps a long-lived
// deployment's live heap proportional to the slots in flight, not the
// slots ever decided. An acceptor that adopted a decision early stops
// forwarding update steps, but by then a full quorum has already
// broadcast every step and its decision, so lagging acceptors and
// learners still converge through decision messages.
func (r *Replica) runInline() {
	defer close(r.inlineDone)
	acceptors := make(map[int]*consensus.Acceptor)
	decided := make(map[int]consensus.Value)
	for env := range r.port.Inbox() {
		sm, ok := env.Payload.(SlotMsg)
		if !ok {
			continue
		}
		if v, ok := decided[sm.Slot]; ok {
			if _, isPull := sm.Payload.(consensus.DecisionPullMsg); isPull {
				r.port.Send(env.From, SlotMsg{Slot: sm.Slot, Payload: consensus.DecisionMsg{V: v}})
			}
			continue
		}
		a, ok := acceptors[sm.Slot]
		if !ok {
			a = consensus.NewAcceptor(r.rqs, r.topo,
				&slotPort{real: r.port, slot: sm.Slot}, r.ring, r.signer, r.elect)
			a.SetHooks(r.hooks)
			acceptors[sm.Slot] = a
		}
		a.HandleEnvelope(transport.Envelope{From: env.From, To: env.To, Hop: env.Hop, Payload: sm.Payload})
		if v, ok := a.Decided(); ok {
			decided[sm.Slot] = v
			delete(acceptors, sm.Slot)
		}
	}
}

func (r *Replica) ensureSlot(slot int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.acceptors[slot]; ok {
		return
	}
	a := consensus.NewAcceptor(r.rqs, r.topo, r.mux.port(slot), r.ring, r.signer, r.elect)
	a.SetHooks(r.hooks)
	a.Start()
	r.acceptors[slot] = a
}

// Stop shuts every slot's acceptor down. Call after the network closes.
func (r *Replica) Stop() {
	if r.mux == nil {
		<-r.inlineDone // inline acceptors have no goroutines to stop
		return
	}
	r.mux.wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.acceptors {
		a.Stop()
	}
}

// Proposer hosts the proposer role across slots.
//
// With elections disabled, a slot's proposer has exactly one duty —
// the initial-view prepare broadcast — so Propose performs it through
// a transient consensus.Proposer (ProposeOnce) and retains nothing:
// no per-slot goroutine, state, or mux channel ever accumulates. With
// elections enabled, per-slot proposers must stay alive to run later
// views, and each gets a goroutine behind a mux.
type Proposer struct {
	rqs  *core.RQS
	topo consensus.Topology
	ring *consensus.Keyring
	next atomic.Int64 // next slot Append hands out

	mux        *mux           // election mode; nil when inline
	port       transport.Port // inline mode
	inlineDone chan struct{}

	mu        sync.Mutex
	proposers map[int]*consensus.Proposer // election mode only
}

// NewProposer starts the proposer host on the given port. elect must
// match the acceptors' election configuration: it decides whether
// per-slot proposers are retained for view changes.
func NewProposer(rqs *core.RQS, topo consensus.Topology, port transport.Port,
	ring *consensus.Keyring, elect consensus.ElectionConfig) *Proposer {
	p := &Proposer{rqs: rqs, topo: topo, ring: ring}
	if elect.Enabled {
		p.proposers = make(map[int]*consensus.Proposer)
		p.mux = newMux(port, func(slot int) { p.ensureSlot(slot) })
		return p
	}
	p.port = port
	p.inlineDone = make(chan struct{})
	// Nothing addresses the proposer host when elections are off
	// (view-change traffic is the only proposer-bound kind), but the
	// inbox must still drain so unexpected senders cannot wedge.
	go func() {
		defer close(p.inlineDone)
		for range port.Inbox() {
		}
	}()
	return p
}

func (p *Proposer) ensureSlot(slot int) *consensus.Proposer {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.proposers[slot]
	if !ok {
		pr = consensus.NewProposer(p.rqs, p.topo, p.mux.port(slot), p.ring)
		pr.Start()
		p.proposers[slot] = pr
	}
	return pr
}

// Propose submits a command for a log slot.
func (p *Proposer) Propose(slot int, cmd consensus.Value) {
	if p.mux == nil {
		consensus.NewProposer(p.rqs, p.topo,
			&slotPort{real: p.port, slot: slot}, p.ring).ProposeOnce(cmd)
		return
	}
	p.ensureSlot(slot).Propose(cmd)
}

// Append allocates the next free log slot, proposes cmd into it, and
// returns the slot. Safe for concurrent use; slots commit independently
// and possibly out of order. Callers mixing Append with explicit
// Propose own the collision risk — Append only counts its own
// allocations.
func (p *Proposer) Append(cmd consensus.Value) int {
	slot := int(p.next.Add(1) - 1)
	p.Propose(slot, cmd)
	return slot
}

// Stop shuts the proposer host down. Call after the network closes.
func (p *Proposer) Stop() {
	if p.mux == nil {
		<-p.inlineDone
		return
	}
	p.mux.wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pr := range p.proposers {
		pr.Stop()
	}
}

// Log hosts the learner role and assembles the committed command log.
type Log struct {
	rqs       *core.RQS
	topo      consensus.Topology
	pullEvery time.Duration
	mux       *mux

	mu       sync.Mutex
	learners map[int]*consensus.Learner
	entries  map[int]consensus.Value
	watchers map[int][]chan consensus.Value
	lwg      sync.WaitGroup
}

// NewLog starts the learner host on the given port.
func NewLog(rqs *core.RQS, topo consensus.Topology, port transport.Port, pullEvery time.Duration) *Log {
	l := &Log{
		rqs: rqs, topo: topo, pullEvery: pullEvery,
		learners: make(map[int]*consensus.Learner),
		entries:  make(map[int]consensus.Value),
		watchers: make(map[int][]chan consensus.Value),
	}
	l.mux = newMux(port, l.ensureSlot)
	return l
}

func (l *Log) ensureSlot(slot int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.learners[slot]; ok {
		return
	}
	lr := consensus.NewLearner(l.rqs, l.topo, l.mux.port(slot), l.pullEvery)
	lr.Start()
	l.learners[slot] = lr
	l.lwg.Add(1)
	go func() {
		defer l.lwg.Done()
		res, ok := <-lr.Learned()
		if !ok {
			return
		}
		l.mu.Lock()
		l.entries[slot] = res.V
		ws := l.watchers[slot]
		delete(l.watchers, slot)
		delete(l.learners, slot)
		l.mu.Unlock()
		for _, w := range ws {
			w <- res.V
		}
		// Retire the slot: the learner goroutine, its virtual inbox and
		// any further messages for the slot are all dead weight once the
		// entry is recorded. Retire FIRST so the demultiplexer stops
		// feeding the slot before its consumer goes away — otherwise a
		// straggler burst bigger than the inbox buffer could block
		// mux.run on a dead channel; after retire, at most one in-flight
		// send lands in the buffer.
		l.mux.retire(slot)
		lr.Stop()
	}()
}

// Get returns the committed command of a slot, if any.
func (l *Log) Get(slot int) (consensus.Value, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.entries[slot]
	return v, ok
}

// Wait blocks until a slot commits or the timeout elapses.
func (l *Log) Wait(slot int, timeout time.Duration) (consensus.Value, bool) {
	l.mu.Lock()
	if v, ok := l.entries[slot]; ok {
		l.mu.Unlock()
		return v, true
	}
	ch := make(chan consensus.Value, 1)
	l.watchers[slot] = append(l.watchers[slot], ch)
	l.mu.Unlock()
	select {
	case v := <-ch:
		return v, true
	case <-time.After(timeout):
		return consensus.None, false
	}
}

// Prefix returns the longest gap-free committed prefix starting at slot 0.
func (l *Log) Prefix() []consensus.Value {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []consensus.Value
	for slot := 0; ; slot++ {
		v, ok := l.entries[slot]
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Stop shuts the learner host down. Call after the network closes.
func (l *Log) Stop() {
	l.mux.wait()
	l.mu.Lock()
	learners := l.learners
	l.learners = map[int]*consensus.Learner{}
	l.mu.Unlock()
	for _, lr := range learners {
		lr.Stop()
	}
	l.lwg.Wait()
}
