package smr

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

// deployment is a full SMR stack over the in-memory network: one replica
// per acceptor, one proposer host, one log host.
type deployment struct {
	net      *transport.Network
	replicas []*Replica
	prop     *Proposer
	log      *Log
}

func deploy(t *testing.T, rqs *core.RQS) *deployment {
	t.Helper()
	nA := rqs.N()
	topo := consensus.Topology{
		Acceptors: rqs.Universe(),
		Proposers: []core.ProcessID{nA},
		Learners:  core.NewSet(nA + 1),
	}
	ring, signers, err := consensus.GenKeys(rqs.Universe())
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(nA + 2)
	d := &deployment{net: net}
	for _, id := range rqs.Universe().Members() {
		d.replicas = append(d.replicas, NewReplica(
			rqs, topo, net.Port(id), ring, signers[id], consensus.ElectionConfig{}))
	}
	d.prop = NewProposer(rqs, topo, net.Port(nA), ring, consensus.ElectionConfig{})
	d.log = NewLog(rqs, topo, net.Port(nA+1), 20*time.Millisecond)
	return d
}

func (d *deployment) stop() {
	d.net.Close()
	for _, r := range d.replicas {
		r.Stop()
	}
	d.prop.Stop()
	d.log.Stop()
}

func TestReplicatedLogCommitsInOrderableSlots(t *testing.T) {
	d := deploy(t, core.Example7RQS())
	defer d.stop()

	cmds := []consensus.Value{"a", "b", "c", "d"}
	for slot, cmd := range cmds {
		d.prop.Propose(slot, cmd)
	}
	for slot, want := range cmds {
		got, ok := d.log.Wait(slot, 5*time.Second)
		if !ok {
			t.Fatalf("slot %d did not commit", slot)
		}
		if got != want {
			t.Errorf("slot %d = %q, want %q", slot, got, want)
		}
	}
	prefix := d.log.Prefix()
	if len(prefix) != len(cmds) {
		t.Fatalf("prefix = %v", prefix)
	}
	for i, v := range prefix {
		if v != cmds[i] {
			t.Errorf("prefix[%d] = %q, want %q", i, v, cmds[i])
		}
	}
}

func TestLogGetAndMissingSlot(t *testing.T) {
	d := deploy(t, core.Example7RQS())
	defer d.stop()
	d.prop.Propose(3, "late")
	if _, ok := d.log.Wait(3, 5*time.Second); !ok {
		t.Fatal("slot 3 did not commit")
	}
	if v, ok := d.log.Get(3); !ok || v != "late" {
		t.Errorf("Get(3) = %q, %v", v, ok)
	}
	if _, ok := d.log.Get(0); ok {
		t.Error("Get(0) should miss")
	}
	if p := d.log.Prefix(); len(p) != 0 {
		t.Errorf("gapped prefix = %v, want empty", p)
	}
	if _, ok := d.log.Wait(7, 30*time.Millisecond); ok {
		t.Error("Wait on unproposed slot should time out")
	}
}

func TestManySlotsConcurrently(t *testing.T) {
	d := deploy(t, core.Example7RQS())
	defer d.stop()
	const slots = 12
	for s := 0; s < slots; s++ {
		d.prop.Propose(s, fmt.Sprintf("cmd-%d", s))
	}
	for s := 0; s < slots; s++ {
		got, ok := d.log.Wait(s, 10*time.Second)
		if !ok {
			t.Fatalf("slot %d did not commit", s)
		}
		if want := fmt.Sprintf("cmd-%d", s); got != want {
			t.Errorf("slot %d = %q, want %q", s, got, want)
		}
	}
}

// TestLogRetiresLearnedSlots pins the log host's slot retirement: once
// a slot's entry is recorded, its learner is removed (memory tracks
// slots in flight, not slots ever decided) while Get/Wait/Prefix keep
// serving the entry.
func TestLogRetiresLearnedSlots(t *testing.T) {
	d := deploy(t, core.Example7RQS())
	defer d.stop()
	const slots = 6
	for s := 0; s < slots; s++ {
		d.prop.Propose(s, fmt.Sprintf("cmd-%d", s))
	}
	for s := 0; s < slots; s++ {
		if _, ok := d.log.Wait(s, 10*time.Second); !ok {
			t.Fatalf("slot %d did not commit", s)
		}
	}
	// Retirement runs on the watcher goroutine right after Wait is
	// released; give it a moment, then the learner map must be empty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.log.mu.Lock()
		live := len(d.log.learners)
		d.log.mu.Unlock()
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d learners still live after all %d slots committed", live, slots)
		}
		time.Sleep(time.Millisecond)
	}
	for s := 0; s < slots; s++ {
		if v, ok := d.log.Get(s); !ok || v != fmt.Sprintf("cmd-%d", s) {
			t.Fatalf("Get(%d) = %q, %v after retirement", s, v, ok)
		}
	}
	if got := len(d.log.Prefix()); got != slots {
		t.Fatalf("prefix length = %d, want %d", got, slots)
	}
}

func TestSlotsSurviveAcceptorCrash(t *testing.T) {
	d := deploy(t, core.Example7RQS())
	defer d.stop()
	d.prop.Propose(0, "before")
	if _, ok := d.log.Wait(0, 5*time.Second); !ok {
		t.Fatal("slot 0 did not commit")
	}
	d.net.Crash(5) // s6: class-2 quorum remains
	d.prop.Propose(1, "after")
	got, ok := d.log.Wait(1, 5*time.Second)
	if !ok || got != "after" {
		t.Fatalf("slot 1 = %q, %v", got, ok)
	}
}
