package storage

import (
	"crypto/sha256"
	"encoding/binary"
	"strings"

	"repro/internal/auth"
	"repro/internal/core"
)

// Authenticated tags: with an auth.Deployment installed, the MWMR/KV
// path tolerates a limited Byzantine server rather than merely
// demonstrating the attack. Two signatures travel with each register
// pair:
//
//   - the *writer signature* binds 〈key, ts, writer-id, digest(val)〉
//     at write time. Servers refuse to apply a write whose tag does
//     not carry its claimed writer's signature, and they store the
//     signature next to the pair so read acks can forward it — a
//     Byzantine server cannot fabricate a tag it never received
//     (fabrication requires the writer's key), only replay ones it
//     did.
//
//   - the *server countersignature* binds 〈server-id, seq, key, ts,
//     writer-id, digest(val), synced〉 on each read ack. The writer
//     signature alone cannot stop a replay: an old 〈tag, val, sig〉
//     triple verifies forever. Countersigning the requesting client's
//     fresh seq makes each ack single-use — re-serving a captured ack
//     under a new request fails verification at the client.
//
// Clients with a verifier discard unverifiable acks without counting
// them toward the quorum: the operation still completes once a fully
// verified class-3 quorum has answered (graceful degradation — a
// Byzantine server only costs its own vote, never safety).

// AuthStats counts signature-verification outcomes on the storage
// path. Client-side counters are read after operations complete;
// the server-side counter is exposed via Server.AuthRejects.
type AuthStats struct {
	// RejectedAcks is the number of read acks a client discarded
	// because the writer signature or server countersignature failed
	// verification.
	RejectedAcks uint64
	// RejectedWrites is the number of write/CAS requests servers
	// refused to apply for a bad writer signature.
	RejectedWrites uint64
}

// Add accumulates other into s.
func (s *AuthStats) Add(other AuthStats) {
	s.RejectedAcks += other.RejectedAcks
	s.RejectedWrites += other.RejectedWrites
}

// digestMemo caches the value digest most recently computed by its
// owner. The signing bodies of one operation repeat a single value
// many times over — every read ack of a quorum carries the same pair,
// every retransmission of a write the same tag — and SHA-256 over the
// value dominates the body-construction cost. One memo per client and
// per server suffices (each is single-goroutine); the stored string is
// cloned because the incoming value may alias a receive arena whose
// bytes recycle after the envelope releases.
type digestMemo struct {
	val    string
	digest [sha256.Size]byte
	valid  bool
}

// of returns the SHA-256 digest of val, recomputing only on a miss.
func (m *digestMemo) of(val string) *[sha256.Size]byte {
	if !m.valid || m.val != val {
		m.digest = auth.Digest(val)
		m.val = strings.Clone(val)
		m.valid = true
	}
	return &m.digest
}

// tagBody appends the canonical writer-signed body for 〈key, tag,
// val〉 to buf and returns the extended slice. Convenience form of
// tagBodyD for tests and one-shot callers; hot paths pass a memoized
// digest instead.
func tagBody(buf []byte, key string, tag Tag, val string) []byte {
	d := auth.Digest(val)
	return tagBodyD(buf, key, tag, &d)
}

// tagBodyD is tagBody over a precomputed value digest: fixed-width tag
// fields, then the value digest, then the key bytes (key last — it is
// the only variable-length field, so no length prefix is needed).
func tagBodyD(buf []byte, key string, tag Tag, digest *[sha256.Size]byte) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(tag.TS))
	binary.BigEndian.PutUint32(hdr[8:], uint32(tag.Writer))
	buf = append(buf, hdr[:]...)
	buf = append(buf, digest[:]...)
	return append(buf, key...)
}

// ackBody appends the canonical server-countersigned body for a read
// ack: the answering server, the requesting client's seq, and the
// full tag body (synced folded into the seq's top byte — seqs are
// 62-bit, see newMWClient). Convenience form of ackBodyD.
func ackBody(buf []byte, server core.ProcessID, seq int64, key string, tag Tag, val string, synced bool) []byte {
	d := auth.Digest(val)
	return ackBodyD(buf, server, seq, key, tag, &d, synced)
}

// ackBodyD is ackBody over a precomputed value digest.
func ackBodyD(buf []byte, server core.ProcessID, seq int64, key string, tag Tag, digest *[sha256.Size]byte, synced bool) []byte {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(server))
	u := uint64(seq)
	if synced {
		u |= 1 << 63
	}
	binary.BigEndian.PutUint64(hdr[4:], u)
	buf = append(buf, hdr[:]...)
	return tagBodyD(buf, key, tag, digest)
}
