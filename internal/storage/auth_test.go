package storage

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wal"
)

// The white-box auth edge cases: exactly which manglings of a read ack
// the client screens out, which writes a server refuses, and that the
// WAL restores signature provenance across a crash at every byte
// offset. The end-to-end tolerance behavior lives in the chaos
// scenarios (byzantine-stale-tag-auth, byzantine-replayed-tag).

// authFixture is a deployment over servers {0,1,2} and writer 4 plus
// client 5, with a ready-made mwClient carrying the verifier.
type authFixture struct {
	dep    *auth.Deployment
	writer auth.Signer
	c      mwClient
	net    *transport.Network
}

func newAuthFixture(t *testing.T, mode auth.Mode) *authFixture {
	t.Helper()
	dep, err := auth.NewDeployment(mode, core.NewSet(0, 1, 2, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(6)
	t.Cleanup(net.Close)
	c := newMWClient(core.MajorityRQS(3), net.Port(5))
	c.setAuth(dep.Signer(5), dep.Verifier())
	c.seq = 41
	return &authFixture{dep: dep, writer: dep.Signer(4), c: c, net: net}
}

// ack builds a correctly signed read ack for 〈key, tag, val〉 as server
// `from` would over the client's current seq.
func (f *authFixture) ack(from core.ProcessID, key string, tag Tag, val string, synced bool) MWReadAck {
	a := MWReadAck{Seq: f.c.seq, Tag: tag, Val: val, Synced: synced}
	if !tag.IsZero() {
		a.WSig = f.writer.Sign(tagBody(nil, key, tag, val))
	}
	a.SSig = f.dep.Signer(from).Sign(ackBody(nil, from, f.c.seq, key, tag, val, synced))
	return a
}

func TestVerifyReadAckEdgeCases(t *testing.T) {
	for _, mode := range []auth.Mode{auth.ModeEd25519, auth.ModeHMAC} {
		t.Run(mode.String(), func(t *testing.T) {
			f := newAuthFixture(t, mode)
			tag := Tag{TS: 3, Writer: 4}

			good := f.ack(1, "k", tag, "value", true)
			if !f.c.verifyReadAck(1, "k", good) {
				t.Fatal("well-formed ack rejected")
			}

			cases := []struct {
				name string
				ack  MWReadAck
				from core.ProcessID
				key  string
			}{
				{"tampered value", func() MWReadAck {
					a := f.ack(1, "k", tag, "value", true)
					a.Val = "evil" // digest no longer matches either signature
					return a
				}(), 1, "k"},
				{"tampered tag", func() MWReadAck {
					a := f.ack(1, "k", tag, "value", true)
					a.Tag.TS++ // claim a newer write than was signed
					return a
				}(), 1, "k"},
				{"flipped synced bit", func() MWReadAck {
					a := f.ack(1, "k", tag, "value", false)
					a.Synced = true // claim fast-path eligibility it never earned
					return a
				}(), 1, "k"},
				{"replayed countersignature", func() MWReadAck {
					old := f.c.seq
					f.c.seq-- // sign under the previous request's seq...
					a := f.ack(1, "k", tag, "value", true)
					f.c.seq = old
					a.Seq = old // ...then re-serve it for the current one
					return a
				}(), 1, "k"},
				{"countersigner outside deployment", func() MWReadAck {
					a := f.ack(1, "k", tag, "value", true)
					foreign := auth.MustDeployment(mode, core.NewSet(1))
					a.SSig = foreign.Signer(1).Sign(ackBody(nil, 1, f.c.seq, "k", tag, "value", true))
					return a
				}(), 1, "k"},
				{"countersignature from the wrong server", f.ack(2, "k", tag, "value", true), 1, "k"},
				{"writer signature under another key", f.ack(1, "other", tag, "value", true), 1, "k"},
				{"unknown writer", func() MWReadAck {
					bad := Tag{TS: 3, Writer: 9} // no key provisioned for 9
					a := MWReadAck{Seq: f.c.seq, Tag: bad, Val: "value", Synced: true}
					a.WSig = f.writer.Sign(tagBody(nil, "k", bad, "value"))
					a.SSig = f.dep.Signer(1).Sign(ackBody(nil, 1, f.c.seq, "k", bad, "value", true))
					return a
				}(), 1, "k"},
			}
			for _, tc := range cases {
				if f.c.verifyReadAck(tc.from, tc.key, tc.ack) {
					t.Errorf("%s: ack verified", tc.name)
				}
			}

			// The initial ⊥ pair needs no writer signature — only the
			// countersignature vouches for it — but still needs that.
			zero := f.ack(1, "k", Tag{}, NoValue, true)
			if !f.c.verifyReadAck(1, "k", zero) {
				t.Fatal("countersigned zero-tag ack rejected")
			}
			zero.SSig[0] ^= 1
			if f.c.verifyReadAck(1, "k", zero) {
				t.Fatal("zero-tag ack with mangled countersignature verified")
			}

			// A revoked writer's old signatures stop verifying. The
			// client's WSig memo is scoped to one read phase and reset at
			// phase start; simulate the fresh phase here, since `good`
			// above carried this very signature into the memo.
			revoked := f.ack(1, "k", tag, "value", true)
			f.dep.Revoke(4)
			f.c.vValid = false
			if f.c.verifyReadAck(1, "k", revoked) {
				t.Fatal("revoked writer's ack still verified")
			}
		})
	}
}

// TestServerRejectsUnverifiableWrites pins the server-side gate: a
// write or CAS whose tag lacks its claimed writer's signature is
// silently dropped (no ack, no state change) and counted.
func TestServerRejectsUnverifiableWrites(t *testing.T) {
	dep := auth.MustDeployment(auth.ModeHMAC, core.NewSet(0, 4))
	net := transport.NewNetwork(2)
	defer net.Close()
	srv := NewServer(net.Port(0), Hooks{})
	srv.SetAuth(dep.Signer(0), dep.Verifier())

	tag := Tag{TS: 1, Writer: 4}
	sign := func(key string, tag Tag, val string) []byte {
		return dep.Signer(4).Sign(tagBody(nil, key, tag, val))
	}
	reject := []transport.Envelope{
		{From: 1, To: 0, Payload: MWWriteReq{Seq: 1, Key: "k", Tag: tag, Val: "v"}},                           // unsigned
		{From: 1, To: 0, Payload: MWWriteReq{Seq: 2, Key: "k", Tag: tag, Val: "v", Sig: sign("k", tag, "x")}}, // digest mismatch
		{From: 1, To: 0, Payload: MWWriteReq{Seq: 3, Key: "k", Tag: Tag{TS: 1, Writer: 9}, Val: "v",
			Sig: sign("k", Tag{TS: 1, Writer: 9}, "v")}}, // unknown writer
		{From: 1, To: 0, Payload: KVCASReq{Seq: 4, Key: "k", Expect: Tag{}, Tag: tag, Val: "v"}}, // unsigned CAS
	}
	if !srv.handleBurst(reject) {
		t.Fatal("burst failed outright")
	}
	if got := srv.AuthRejects(); got != uint64(len(reject)) {
		t.Fatalf("AuthRejects = %d, want %d", got, len(reject))
	}
	if len(srv.StateSnapshot()) != 0 {
		t.Fatalf("rejected writes mutated the keyspace: %#v", srv.StateSnapshot())
	}
	select {
	case env := <-net.Port(1).Inbox():
		t.Fatalf("rejected write was acked: %#v", env.Payload)
	default:
	}

	// The properly signed write goes through and is acked.
	ok := srv.handleBurst([]transport.Envelope{
		{From: 1, To: 0, Payload: MWWriteReq{Seq: 5, Key: "k", Tag: tag, Val: "v", Sig: sign("k", tag, "v")}},
	})
	if !ok {
		t.Fatal("signed write burst failed")
	}
	snap := srv.StateSnapshot()["k"]
	if snap.MWTag != tag || snap.MWVal != "v" {
		t.Fatalf("signed write not applied: %#v", snap)
	}
	if !srv.verifyWrite("k", snap.MWTag, snap.MWVal, snap.MWSig) {
		t.Fatal("stored signature does not verify (provenance lost on apply)")
	}
	if env := <-net.Port(1).Inbox(); env.Payload.(MWWriteAck).Seq != 5 {
		t.Fatalf("unexpected ack %#v", env.Payload)
	}
}

// TestReplayedAckFailsClientVerification drives the ReplayMWRead hook
// end to end at the burst level: the first read is served honestly and
// captured, the second re-serves the capture with the new seq — and
// the client's verifier must reject exactly that re-serve.
func TestReplayedAckFailsClientVerification(t *testing.T) {
	dep := auth.MustDeployment(auth.ModeHMAC, core.NewSet(0, 4, 5))
	net := transport.NewNetwork(6)
	defer net.Close()
	srv := NewServer(net.Port(0), Hooks{ReplayMWRead: func(core.ProcessID) bool { return true }})
	srv.SetAuth(dep.Signer(0), dep.Verifier())

	c := newMWClient(core.MajorityRQS(3), net.Port(5))
	c.setAuth(nil, dep.Verifier())

	tag := Tag{TS: 7, Writer: 4}
	wsig := dep.Signer(4).Sign(tagBody(nil, "k", tag, "v"))
	if !srv.handleBurst([]transport.Envelope{
		{From: 5, To: 0, Payload: MWWriteReq{Seq: 1, Key: "k", Tag: tag, Val: "v", Sig: wsig}},
	}) {
		t.Fatal("setup write failed")
	}
	<-net.Port(5).Inbox() // its ack

	read := func(seq int64) MWReadAck {
		t.Helper()
		if !srv.handleBurst([]transport.Envelope{{From: 5, To: 0, Payload: MWReadReq{Seq: seq, Key: "k"}}}) {
			t.Fatal("read burst failed")
		}
		env := <-net.Port(5).Inbox()
		return env.Payload.(MWReadAck)
	}

	c.seq = 100
	first := read(c.seq)
	if !c.verifyReadAck(0, "k", first) {
		t.Fatal("honest first ack rejected")
	}

	c.seq = 101
	replayed := read(c.seq)
	if replayed.Seq != 101 || replayed.Tag != tag {
		t.Fatalf("replay did not masquerade as a fresh ack: %#v", replayed)
	}
	if c.verifyReadAck(0, "k", replayed) {
		t.Fatal("replayed ack verified — countersignature failed to bind the seq")
	}
}

// TestAuthDurableCrashSweep is the crash-point sweep over signed-record
// replay: a durable server applies signed writes until the WAL's
// simulated kill -9 fires at byte offset `limit`; the fresh incarnation
// must recover exactly the acked prefix AND its stored writer
// signature must still verify (replay restores provenance, not just
// bytes). Swept across offsets so the crash lands in headers, bodies
// and fsync boundaries alike.
func TestAuthDurableCrashSweep(t *testing.T) {
	dep := auth.MustDeployment(auth.ModeHMAC, core.NewSet(0, 4))
	writer := dep.Signer(4)
	sign := func(key string, tag Tag, val string) []byte {
		return writer.Sign(tagBody(nil, key, tag, val))
	}
	const writes = 4
	for limit := int64(1); limit < 500; limit += 13 {
		limit := limit
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			dir := t.TempDir()
			net := transport.NewNetwork(2)
			defer net.Close()
			srv, err := NewDurableServer(net.Port(0), Hooks{}, dir,
				DurableOptions{Hooks: wal.Hooks{FailAfterNBytes: limit}})
			acked := int64(0)
			if err != nil {
				// The budget ran out while the log was being created:
				// the crash predates every write, recovery must come
				// up empty.
				if !errors.Is(err, wal.ErrSimulatedCrash) {
					t.Fatal(err)
				}
			} else {
				srv.SetAuth(dep.Signer(0), dep.Verifier())
				for i := int64(1); i <= writes; i++ {
					tag := Tag{TS: i, Writer: 4}
					val := fmt.Sprintf("v%d", i)
					if !srv.handleBurst(burstOf(MWWriteReq{Seq: i, Key: "k", Tag: tag, Val: val, Sig: sign("k", tag, val)})) {
						break // simulated crash: this write was never acked
					}
					acked = i
				}
				srv.wal.Close()
			}

			srv2, err := NewDurableServer(net.Port(0), Hooks{}, dir, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.wal.Close()
			srv2.SetAuth(dep.Signer(0), dep.Verifier())
			reg := srv2.StateSnapshot()["k"]
			if reg.MWTag.TS != acked {
				t.Fatalf("recovered ts=%d, want the acked prefix %d", reg.MWTag.TS, acked)
			}
			if acked > 0 && !srv2.verifyWrite("k", reg.MWTag, reg.MWVal, reg.MWSig) {
				t.Fatalf("recovered signature does not verify for %+v", reg)
			}
		})
	}
}
