package storage

import (
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/wal"
)

// Durability layer of the storage server: a wal.Log under the keyspace.
//
// The write path rides the existing burst drain — every mutation that
// phase 2 applies is appended as a WAL record (the request message
// itself, serialized through the transport codec), and one wal.Sync
// between phase 2 and the ack flush makes the whole burst durable with
// a single fdatasync (group commit). Acks therefore never leave for
// state that could not survive a kill -9; if the log fails, the server
// stops instead of acknowledging non-durable state.
//
// Replay applies the logged requests through the same apply functions
// the live path uses. All three are idempotent, so re-replaying a
// suffix (after a crash mid-compaction) converges:
//   - applyWrite stores a pair unless a different pair holds the slot;
//     re-applying the same pair and quorum sets is a no-op.
//   - MW writes apply only when the logged tag exceeds the register
//     tag; a replayed older-or-equal tag is a no-op.
//   - CAS applies only when the register holds exactly the expected
//     tag; after the first apply the register has moved past it.

// DurableOptions configure NewDurableServer.
type DurableOptions struct {
	// SegmentBytes is the WAL rotation threshold (0 = wal default).
	SegmentBytes int64
	// NoSync skips fdatasync — benchmark-only, to price the fsync tax.
	NoSync bool
	// MaxSegments triggers compaction (snapshot + segment cleanup)
	// once the log spans more than this many segments. 0 = 4.
	MaxSegments int
	// Hooks are passed through to the WAL for crash-point injection.
	Hooks wal.Hooks
}

// registerWALTypes registers the message types a durable server
// serializes into its log. transport.Register is idempotent, so this
// composes with the sim-layer TCP registration.
var registerWALTypesOnce sync.Once

func registerWALTypes() {
	registerWALTypesOnce.Do(func() {
		transport.Register(WriteReq{})
		transport.Register(MWWriteReq{})
		transport.Register(KVCASReq{})
		transport.Register(ServerState{})
	})
}

// NewDurableServer creates a server whose keyspace is backed by a
// write-ahead log in dir. If dir already holds a log, the keyspace is
// rebuilt by replaying the latest snapshot plus the record suffix —
// the recovery path a kill -9'd server takes when it rejoins.
func NewDurableServer(port transport.Port, hooks Hooks, dir string, opts DurableOptions) (*Server, error) {
	registerWALTypes()
	l, err := wal.Open(dir, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		Hooks:        opts.Hooks,
	})
	if err != nil {
		return nil, err
	}
	s := NewServer(port, hooks)
	if err := l.Replay(s.installSnapshot, s.replayRecord); err != nil {
		l.Close()
		return nil, err
	}
	s.wal = l
	s.maxSegments = opts.MaxSegments
	if s.maxSegments <= 0 {
		s.maxSegments = 4
	}
	return s, nil
}

// installSnapshot rebuilds the keyspace from a compaction snapshot
// (an encoded ServerState).
func (s *Server) installSnapshot(b []byte) error {
	m, err := transport.DecodeMessage(b)
	if err != nil {
		return err
	}
	st, ok := m.(ServerState)
	if !ok {
		return fmt.Errorf("storage: wal snapshot holds %T, want ServerState", m)
	}
	s.SetState(st)
	return nil
}

// replayRecord re-applies one logged mutation. It runs before Start,
// so no other goroutine touches the shards; locks are still taken to
// keep the accessor invariants simple.
func (s *Server) replayRecord(b []byte) error {
	m, err := transport.DecodeMessage(b)
	if err != nil {
		return err
	}
	switch req := m.(type) {
	case WriteReq:
		sh := &s.shards[shardOf(req.Key)]
		sh.mu.Lock()
		applyWrite(sh.reg(req.Key), req)
		sh.mu.Unlock()
	case MWWriteReq:
		sh := &s.shards[shardOf(req.Key)]
		sh.mu.Lock()
		// The logged record carries the writer signature, so replay
		// restores the pair's provenance along with the pair — a
		// restarted authenticated server can countersign read acks for
		// state it recovered from disk.
		applyMW(sh.reg(req.Key), req.Tag, req.Val, req.Sig)
		sh.mu.Unlock()
	case KVCASReq:
		sh := &s.shards[shardOf(req.Key)]
		sh.mu.Lock()
		applyCAS(sh.reg(req.Key), req.Expect, req.Tag, req.Val, req.Sig)
		sh.mu.Unlock()
	default:
		return fmt.Errorf("storage: unknown wal record type %T", m)
	}
	return nil
}

// WALStats reports the server's log activity counters; ok is false
// for a volatile server. The Fsyncs/Appends ratio is the measured
// group-commit amortization.
func (s *Server) WALStats() (stats wal.Stats, ok bool) {
	if s.wal == nil {
		return wal.Stats{}, false
	}
	return s.wal.Stats(), true
}

// logMutation buffers one applied mutation as a WAL record. Called
// from phase 2 (the owning goroutine), under the shard lock — it only
// appends to the in-memory pending buffer; the covering fdatasync
// happens on the syncer goroutine in syncWAL.
func (s *Server) logMutation(req transport.Message) {
	buf, err := transport.EncodeMessage(s.walBuf[:0], req)
	if err != nil {
		// Unreachable for registered types; latch so syncWAL stops the
		// server rather than acking an unlogged mutation. burstLogged
		// still counts the loss, so the burst takes the group-commit
		// path and the latch is seen before any ack leaves.
		s.walEncodeFail.Store(true)
		s.burstLogged++
		return
	}
	s.walBuf = buf
	s.wal.Append(buf)
	s.burstLogged++
}

// syncWAL group-commits every record appended so far. Runs on the
// syncer goroutine (snapBuf is its private scratch; wal.Log and
// StateSnapshot are internally locked). It reports false when
// durability could not be established — the caller must drop the
// parked acks and stop the server.
func (s *Server) syncWAL() bool {
	if s.walEncodeFail.Load() {
		return false
	}
	if err := s.wal.Sync(); err != nil {
		return false
	}
	if s.wal.Segments() > s.maxSegments {
		// Compaction failure is not fatal to this commit: the records
		// are already durable. The wal latches its own error; the next
		// Sync surfaces it. Mutations the server goroutine appends
		// between this StateSnapshot and the Compact are safe: Compact
		// rotates before flushing, so post-snapshot records land in the
		// fresh segment (outside the snapshot's coverage) and replay
		// idempotently on top of it.
		if buf, err := transport.EncodeMessage(s.snapBuf[:0], s.StateSnapshot()); err == nil {
			s.snapBuf = buf
			_ = s.wal.Compact(buf)
		}
	}
	return true
}
