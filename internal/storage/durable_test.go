package storage

import (
	"reflect"
	"testing"

	"repro/internal/transport"
	"repro/internal/wal"
)

// burstOf wraps requests from a notional client (process 1) into the
// envelope shape the burst loop consumes.
func burstOf(reqs ...transport.Message) []transport.Envelope {
	envs := make([]transport.Envelope, len(reqs))
	for i, r := range reqs {
		envs[i] = transport.Envelope{From: 1, To: 0, Payload: r}
	}
	return envs
}

// durableFixtureBurst is a mixed mutation burst touching all three
// logged request types across two keys.
func durableFixtureBurst() []transport.Envelope {
	return burstOf(
		MWWriteReq{Seq: 1, Key: "alpha", Tag: Tag{TS: 1, Writer: 1}, Val: "v1"},
		MWWriteReq{Seq: 2, Key: "alpha", Tag: Tag{TS: 2, Writer: 1}, Val: "v2"},
		WriteReq{Key: "beta", TS: 7, Val: "sw", Round: 2},
		KVCASReq{Seq: 3, Key: "alpha", Expect: Tag{TS: 2, Writer: 1}, Tag: Tag{TS: 3, Writer: 1}, Val: "v3"},
	)
}

// TestDurableServerRecoversKeyspace kills a durable server (no Stop,
// no snapshot — the WAL is all that survives) and checks a fresh
// server over the same directory replays the exact keyspace.
func TestDurableServerRecoversKeyspace(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewNetwork(2)
	defer net.Close()
	srv, err := NewDurableServer(net.Port(0), Hooks{}, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !srv.handleBurst(durableFixtureBurst()) {
		t.Fatal("burst failed")
	}
	want := srv.StateSnapshot()
	// kill -9: release the log without flushing anything beyond what
	// the burst's group commit already made durable.
	srv.wal.Close()

	srv2, err := NewDurableServer(net.Port(0), Hooks{}, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.wal.Close()
	got := srv2.StateSnapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered keyspace differs:\n got %#v\nwant %#v", got, want)
	}
	if got["alpha"].MWVal != "v3" || got["alpha"].MWTag != (Tag{TS: 3, Writer: 1}) {
		t.Fatalf("alpha = %#v, want CAS result v3", got["alpha"])
	}
}

// TestDurableReplayIdempotence re-feeds every logged record into an
// already-recovered server: the keyspace must not move. This is the
// property that makes a crash between compaction's snapshot publish
// and segment cleanup harmless (the next replay sees snapshot +
// already-covered records).
func TestDurableReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewNetwork(2)
	defer net.Close()
	srv, err := NewDurableServer(net.Port(0), Hooks{}, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	burst := durableFixtureBurst()
	if !srv.handleBurst(burst) {
		t.Fatal("burst failed")
	}
	srv.wal.Close()

	srv2, err := NewDurableServer(net.Port(0), Hooks{}, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.wal.Close()
	before := srv2.StateSnapshot()
	for _, env := range burst {
		rec, err := transport.EncodeMessage(nil, env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv2.replayRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	after := srv2.StateSnapshot()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("replaying records twice moved the keyspace:\n before %#v\n after %#v", before, after)
	}
}

// TestDurableCompactionRoundTrip forces rotation + compaction through
// the burst path and checks recovery comes from snapshot + suffix.
func TestDurableCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewNetwork(2)
	defer net.Close()
	srv, err := NewDurableServer(net.Port(0), Hooks{}, dir,
		DurableOptions{SegmentBytes: 256, MaxSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ok := srv.handleBurst(burstOf(
			MWWriteReq{Seq: int64(i), Key: "hot", Tag: Tag{TS: int64(i + 1), Writer: 1}, Val: "v"},
			MWWriteReq{Seq: int64(i), Key: "cold", Tag: Tag{TS: int64(i + 1), Writer: 2}, Val: "w"},
		))
		if !ok {
			t.Fatalf("burst %d failed", i)
		}
	}
	if srv.wal.SnapshotSeq() < 0 {
		t.Fatal("no compaction happened; test needs a smaller SegmentBytes")
	}
	want := srv.StateSnapshot()
	srv.wal.Close()

	srv2, err := NewDurableServer(net.Port(0), Hooks{}, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.wal.Close()
	if got := srv2.StateSnapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction recovery differs:\n got %#v\nwant %#v", got, want)
	}
}

// TestDurableWALFailureDropsAcks pins the never-ack-non-durable-state
// rule: when the log cannot commit a burst, the burst's acks must not
// leave the server.
func TestDurableWALFailureDropsAcks(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewNetwork(2)
	defer net.Close()
	// Budget only the segment header: the first logged burst crashes.
	srv, err := NewDurableServer(net.Port(0), Hooks{}, dir,
		DurableOptions{Hooks: wal.Hooks{FailAfterNBytes: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.wal.Close()
	if srv.handleBurst(burstOf(MWWriteReq{Seq: 1, Key: "k", Tag: Tag{TS: 1, Writer: 1}, Val: "v"})) {
		t.Fatal("handleBurst reported success past a WAL crash")
	}
	select {
	case env := <-net.Port(1).Inbox():
		t.Fatalf("ack %#v escaped a failed group commit", env.Payload)
	default:
	}
}
