package storage_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// earlyBudget is the limit within which an operation must finish when
// every server responds instantly; far below the deliberately huge 2Δ
// used by these tests, yet generous enough for a loaded CI machine.
const earlyBudget = 5 * time.Second

// TestWriteEarlyCompletionSkipsTimer asserts the round-1 fast path: when
// the whole universe acks, the 2Δ timer wait is provably redundant and
// the write must return immediately instead of sleeping the full timer.
func TestWriteEarlyCompletionSkipsTimer(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{Timeout: time.Hour})
	defer c.Stop()
	w := c.Writer()
	start := time.Now()
	res := w.Write("v")
	if d := time.Since(start); d > earlyBudget {
		t.Fatalf("write took %v with an 1h timer; early completion broken", d)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (all servers up)", res.Rounds)
	}
}

// TestReadEarlyCompletionSkipsTimer is the read-side counterpart: a
// round-1 read with the full universe responding must not sleep the 2Δ.
func TestReadEarlyCompletionSkipsTimer(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{Timeout: time.Hour})
	defer c.Stop()
	c.Writer().Write("v")
	r := c.Reader()
	start := time.Now()
	res := r.Read()
	if d := time.Since(start); d > earlyBudget {
		t.Fatalf("read took %v with an 1h timer; early completion broken", d)
	}
	if res.Val != "v" || res.Rounds != 1 {
		t.Fatalf("read = %+v, want v in 1 round", res)
	}
}

// TestTimerStillHonouredWhenServersMissing pins the other side of the
// early-completion argument: with a server down the universe never
// completes, so a round-1 write must keep waiting for the full 2Δ even
// after a quorum acked — cutting it short would change the protocol.
func TestTimerStillHonouredWhenServersMissing(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const timeout = 300 * time.Millisecond
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{Timeout: timeout})
	defer c.Stop()
	c.CrashServers(core.NewSet(5)) // class-2 quorum {0..4} still acks
	w := c.Writer()
	start := time.Now()
	res := w.Write("v")
	if d := time.Since(start); d < timeout {
		t.Fatalf("write returned in %v < 2Δ=%v despite missing server", d, timeout)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (class-2 quorum path)", res.Rounds)
	}
}
