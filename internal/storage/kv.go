package storage

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"strings"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/transport"
)

// ErrClosed reports that the client's transport port closed while an
// operation was in flight: the operation did not complete and its
// result carries no information. Unlike the legacy register clients
// (which return a zero result with a nil error on shutdown, relying on
// the caller owning the teardown), the Store interface is generic —
// its users must be able to tell "key unwritten" / "write committed"
// from "client shut down", so the KV methods surface the condition as
// an error. The client stays safe to call; every later operation also
// returns ErrClosed.
var ErrClosed = errors.New("storage: client port closed")

// ErrCASConflict reports a CAS that definitively lost: the key moved
// past the expected version (typically a concurrent writer won the
// race). Observed and Val carry the newest state seen among the
// rejecting servers, so callers can back off and retry against the
// current version instead of blind-looping on a stale expect. Returned
// by CAS alongside the failed CASResult; match with errors.As.
type ErrCASConflict struct {
	Key      string
	Expect   Version // the version the caller conditioned on
	Observed Version // the newest version seen among rejecting servers
	Val      string  // the value committed under Observed
}

func (e *ErrCASConflict) Error() string {
	return "storage: cas conflict on " + strconv.Quote(e.Key) +
		": expected version " + e.Expect.String() + ", observed " + e.Observed.String()
}

// This file is the keyed KV service over the storage servers: a
// Get/Put/CAS client for the per-key MWMR registers the server
// keyspace hosts (server.go), with client-side consistent hashing of
// keys onto independent shard groups so capacity scales by adding
// groups.
//
// Get and Put are the keyed MWMR read and write (mwmr.go): Put is a
// read phase discovering the key's maximum tag followed by a write
// phase under 〈maxTS+1, clientID〉; Get is a read phase plus writeback,
// skipping the writeback when a full class-3 quorum already reported
// the same tag (the one-round fast path).
//
// CAS is a versioned check-and-set on the MWMR tag: one conditional
// phase that asks every server to install 〈〈expect.TS+1, clientID〉, v〉
// iff its register still holds exactly the expected tag. The client
// reports success iff some class-3 quorum acked Applied=true.
//
// At-most-one CAS success per version: a server's tag is monotone and
// never revisits a value, so once it leaves `expect` it never equals
// `expect` again — each server therefore applies at most ONE CAS whose
// Expect is that version. Two full-quorum successes for the same
// version would need two class-3 quorums whose every member applied;
// the quorums intersect (Property 1), and the shared server cannot
// have applied both. Hence at most one concurrent CAS per version
// observes success.
//
// A *failed* CAS is not a no-op: it may still have installed its value
// at servers outside the winner's quorum (those that still held
// `expect` when its request arrived). Semantically a failed CAS is a
// concurrent write racing the winner — it linearizes under its own tag
// and its value may be returned by later reads. Histories that record
// failed CAS attempts as writes are linearizable per key (the CAS
// tests verify exactly this with histcheck). CAS therefore guarantees
// unique *success* per version — the register-level guarantee a
// quorum system can give without consensus — not that losing values
// vanish. Compare-and-swap loops (read version, CAS against it, retry
// on failure) are safe: all same-version contenders in such a loop
// propose the same logical successor state.

// KVCASReq asks a server to install 〈Tag, Val〉 under Key iff its
// register currently holds exactly tag Expect (Tag = 〈Expect.TS+1,
// clientID〉, so the apply keeps the register monotone).
type KVCASReq struct {
	Seq    int64
	Key    string
	Expect Tag
	Tag    Tag
	Val    string
	// Sig is Tag.Writer's signature over 〈key, tag, digest(val)〉
	// (empty on unauthenticated deployments).
	Sig []byte
}

// KVCASAck reports whether the conditional apply happened, plus the
// server's (post-processing) current tag and value so a failed CAS
// learns the newer version.
type KVCASAck struct {
	Seq     int64
	Applied bool
	Tag     Tag
	Val     string
}

// Version identifies one committed state of a key: the MWMR tag under
// which the value was written. Versions are totally ordered (Tag.Less)
// and the zero Version is the key's initial, unwritten state.
type Version = Tag

// CASResult reports how a CAS completed. On success (OK), Version and
// Val are the newly installed state; on failure they are the newest
// state observed among the rejecting servers — the version to re-read
// before retrying.
type CASResult struct {
	OK      bool
	Version Version
	Val     string
	Rounds  int
}

// Store is the versioned KV interface the storage layer serves: reads
// return the value together with the version that committed it, and
// CAS installs a value only against the exact version the caller last
// observed. All methods return ErrClosed when the client shut down
// mid-operation (the non-error results then carry no information).
// KVClient is the quorum-backed implementation.
type Store interface {
	// Get returns the current value and version of key (NoValue and
	// the zero Version if never written).
	Get(key string) (string, Version, error)
	// Put unconditionally writes val under key, returning the version
	// that committed it.
	Put(key, val string) (Version, error)
	// CAS installs val iff key's version still equals expect. At most
	// one concurrent CAS per (key, expect) succeeds; a definitively
	// lost CAS returns *ErrCASConflict carrying the observed version.
	CAS(key string, expect Version, val string) (CASResult, error)
}

// KVGroup names one shard group of the keyspace: an independent quorum
// system and this client's port into its deployment. Every group is a
// complete, disjoint replica set; keys map onto groups by consistent
// hashing on the client.
type KVGroup struct {
	System *core.RQS
	Port   transport.Port
	// Signer and Verifier install the client's key material on an
	// authenticated deployment (both nil otherwise). Groups are
	// independent deployments but may share one auth.Deployment when
	// their process-ID spaces coincide.
	Signer   auth.Signer
	Verifier auth.Verifier
}

// ringVnodes is how many ring points each group contributes. 64 keeps
// the per-group load imbalance low (stddev ~1/√64 ≈ 12%) at a few KiB
// of ring per client.
const ringVnodes = 64

// ringEntry is one point of the consistent-hash ring.
type ringEntry struct {
	hash  uint64
	group int32
}

// KVClient is a quorum-backed Store over one or more shard groups.
// Like the register clients, a KVClient runs one operation at a time;
// concurrency comes from deploying many clients. It implements Store.
type KVClient struct {
	groups []mwClient
	id     core.ProcessID // writer id embedded in Put/CAS tags
	ring   []ringEntry
}

var _ Store = (*KVClient)(nil)

// NewKVClient creates a KV client over the given shard groups. Every
// group needs its own port (they are independent deployments); all the
// ports of one client must share a process ID, which becomes the
// client's writer ID. At least one group is required.
func NewKVClient(groups []KVGroup) *KVClient {
	if len(groups) == 0 {
		panic("storage: NewKVClient needs at least one group")
	}
	kv := &KVClient{
		id:   groups[0].Port.ID(),
		ring: buildRing(len(groups)),
	}
	for _, g := range groups {
		c := newMWClient(g.System, g.Port)
		c.setAuth(g.Signer, g.Verifier)
		kv.groups = append(kv.groups, c)
	}
	return kv
}

// AuthStats returns this client's verification counters summed over
// its shard groups. Call between operations.
func (kv *KVClient) AuthStats() AuthStats {
	var s AuthStats
	for i := range kv.groups {
		s.RejectedAcks += kv.groups[i].rejected
	}
	return s
}

// buildRing hashes ringVnodes points per group onto the ring.
func buildRing(n int) []ringEntry {
	ring := make([]ringEntry, 0, n*ringVnodes)
	for g := 0; g < n; g++ {
		for v := 0; v < ringVnodes; v++ {
			p := "g" + strconv.Itoa(g) + "/v" + strconv.Itoa(v)
			ring = append(ring, ringEntry{hash: fnv64(p), group: int32(g)})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return ring
}

// fnv64 is FNV-1a, the same deterministic hash the server shard map
// uses — keys route identically across client restarts and processes.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// WriterID returns the ID embedded in this client's Put/CAS tags.
func (kv *KVClient) WriterID() core.ProcessID { return kv.id }

// GroupFor returns the shard group a key routes to (exported for tests
// and for placement-aware tooling).
func (kv *KVClient) GroupFor(key string) int {
	h := fnv64(key)
	i := sort.Search(len(kv.ring), func(i int) bool { return kv.ring[i].hash >= h })
	if i == len(kv.ring) {
		i = 0
	}
	return int(kv.ring[i].group)
}

// Get returns key's current value and version.
func (kv *KVClient) Get(key string) (string, Version, error) {
	return kv.GetCtx(context.Background(), key)
}

// GetCtx is Get with a per-operation deadline.
func (kv *KVClient) GetCtx(ctx context.Context, key string) (string, Version, error) {
	c := &kv.groups[kv.GroupFor(key)]
	done := ctx.Done()
	c.aborted = false
	c.readPhase(key, done)
	if c.aborted {
		return NoValue, Version{}, ctx.Err()
	}
	if c.closed {
		return NoValue, Version{}, ErrClosed
	}
	tag, val := c.maxTag, c.maxVal
	if _, ok := c.rqs.ContainedQuorum(c.withMax, core.Class3); ok {
		return val, tag, nil
	}
	c.writePhase(key, tag, val, c.maxSig, done)
	if c.aborted {
		return NoValue, Version{}, ctx.Err()
	}
	if c.closed {
		// The writeback did not reach a quorum; the read's value is not
		// guaranteed to be stable for later readers.
		return NoValue, Version{}, ErrClosed
	}
	return val, tag, nil
}

// Put unconditionally writes val under key.
func (kv *KVClient) Put(key, val string) (Version, error) {
	return kv.PutCtx(context.Background(), key, val)
}

// PutCtx is Put with a per-operation deadline. An aborted Put may be
// partially applied; the client remains usable.
func (kv *KVClient) PutCtx(ctx context.Context, key, val string) (Version, error) {
	c := &kv.groups[kv.GroupFor(key)]
	done := ctx.Done()
	c.aborted = false
	c.queryPhase(key, done)
	if c.aborted {
		return Version{}, ctx.Err()
	}
	if c.closed {
		return Version{}, ErrClosed
	}
	tag := Tag{TS: c.maxTag.TS + 1, Writer: kv.id}
	c.writePhase(key, tag, val, c.signTag(key, tag, val), done)
	if c.aborted {
		return Version{}, ctx.Err()
	}
	if c.closed {
		// The write phase never completed at a quorum: the put is at
		// best partially applied and must not report as committed.
		return Version{}, ErrClosed
	}
	return tag, nil
}

// CAS installs val iff key's version still equals expect (see the CAS
// commentary at the top of this file for the exact guarantee).
func (kv *KVClient) CAS(key string, expect Version, val string) (CASResult, error) {
	return kv.CASCtx(context.Background(), key, expect, val)
}

// CASCtx is CAS with a per-operation deadline. An aborted or failed
// CAS may still have deposited its value at a minority of servers; it
// then acts as a concurrent write under its tag. A definitive loss
// (some server moved past expect and success became impossible)
// returns *ErrCASConflict with the newest observed version, so retry
// loops re-read instead of spinning on the stale expect.
func (kv *KVClient) CASCtx(ctx context.Context, key string, expect Version, val string) (CASResult, error) {
	c := &kv.groups[kv.GroupFor(key)]
	done := ctx.Done()
	c.aborted = false
	tag := Tag{TS: expect.TS + 1, Writer: kv.id}
	res := c.casPhase(key, expect, tag, val, done)
	if c.aborted {
		return res, ctx.Err()
	}
	if c.closed {
		// No quorum verdict: the CAS outcome is unknown (it may have
		// deposited its value at a minority, like an aborted CAS).
		return res, ErrClosed
	}
	if !res.OK {
		return res, &ErrCASConflict{Key: key, Expect: expect, Observed: res.Version, Val: res.Val}
	}
	return res, nil
}

// casPhase broadcasts the conditional apply and collects acks until a
// class-3 quorum fully applied (success), success has become
// impossible (failure), or every server responded. The applied-set
// containment check runs on a pooled tracker — KV operations borrow
// and return trackers instead of allocating one per key per op.
func (c *mwClient) casPhase(key string, expect, tag Tag, val string, done <-chan struct{}) CASResult {
	c.seq++
	drainPort(c.port)
	transport.Broadcast(c.port, c.rqs.Universe(),
		KVCASReq{Seq: c.seq, Key: key, Expect: expect, Tag: tag, Val: val, Sig: c.signTag(key, tag, val)})

	idx := c.rqs.Index()
	applied := idx.GetTracker()
	defer idx.PutTracker(applied)
	c.tr.Reset()
	rejected := core.EmptySet
	curTag, curVal := expect, NoValue
	for {
		env, ok := c.recv(done)
		if !ok {
			if !c.aborted {
				c.closed = true
			}
			return CASResult{Version: curTag, Val: curVal, Rounds: 1}
		}
		ack, isAck := env.Payload.(KVCASAck)
		if !isAck || ack.Seq != c.seq {
			env.Release()
			continue
		}
		if curTag.Less(ack.Tag) {
			curTag, curVal = ack.Tag, ack.Val
			if env.Aliased() {
				// The adopted value escapes in the CASResult; unalias it
				// from the receive arena before releasing.
				curVal = strings.Clone(curVal)
			}
		}
		env.Release()
		if ack.Applied {
			if applied.Add(env.From) {
				if _, ok := applied.Contained(core.Class3); ok {
					return CASResult{OK: true, Version: tag, Val: val, Rounds: 1}
				}
			}
		} else {
			// Success needs a class-3 quorum with every member
			// applied; once the non-rejecting servers cannot contain
			// one, the CAS has definitely lost.
			rejected = rejected.Add(env.From)
			if _, ok := c.rqs.ContainedQuorum(c.rqs.Universe().Diff(rejected), core.Class3); !ok {
				return CASResult{Version: curTag, Val: curVal, Rounds: 1}
			}
		}
		if c.tr.Add(env.From) && c.tr.Complete() {
			// Everyone responded without a fully-applied quorum (the
			// success check above would have fired).
			return CASResult{Version: curTag, Val: curVal, Rounds: 1}
		}
	}
}
