package storage_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestKVRingDeterministic pins the consistent-hash routing: every
// client of a deployment routes every key to the same group, the
// routing is stable across client instances, and all groups receive a
// nontrivial share of a large keyspace (64 vnodes per group keep the
// imbalance low).
func TestKVRingDeterministic(t *testing.T) {
	c := sim.NewKVCluster(core.FiveServerRQS(), sim.KVOptions{Groups: 4, Clients: 2})
	defer c.Stop()
	a, b := c.Client(), c.Client()
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("key-%d", i)
		ga := a.GroupFor(key)
		if gb := b.GroupFor(key); gb != ga {
			t.Fatalf("clients disagree on key %q: %d vs %d", key, ga, gb)
		}
		counts[ga]++
	}
	for g, n := range counts {
		if n < 4000/4/3 {
			t.Fatalf("group %d received only %d/4000 keys (counts %v)", g, n, counts)
		}
	}
}

// TestKVBasicOps drives the Store surface sequentially on a two-group
// deployment: versioned gets, unconditional puts, create-if-absent CAS
// via the zero version, stale-expect CAS failure reporting the newer
// version.
func TestKVBasicOps(t *testing.T) {
	c := sim.NewKVCluster(core.Example7RQS(), sim.KVOptions{Groups: 2, Clients: 1})
	defer c.Stop()
	kv := c.Client()

	val, ver, err := kv.Get("a")
	if err != nil || val != storage.NoValue || !ver.IsZero() {
		t.Fatalf("Get of unwritten key = (%q, %v, %v), want (⊥, zero, nil)", val, ver, err)
	}

	v1, err := kv.Put("a", "one")
	if err != nil || v1.IsZero() {
		t.Fatalf("Put = (%v, %v)", v1, err)
	}
	val, ver, err = kv.Get("a")
	if err != nil || val != "one" || ver != v1 {
		t.Fatalf("Get after Put = (%q, %v, %v), want (one, %v, nil)", val, ver, err, v1)
	}

	// Independent keys have independent versions (possibly on other
	// groups).
	if _, ver2, _ := kv.Get("b"); !ver2.IsZero() {
		t.Fatalf("key b inherited version %v from key a", ver2)
	}

	res, err := kv.CAS("a", v1, "two")
	if err != nil || !res.OK {
		t.Fatalf("CAS with current version = (%+v, %v), want success", res, err)
	}
	if !v1.Less(res.Version) {
		t.Fatalf("CAS version %v not above expect %v", res.Version, v1)
	}
	val, ver, _ = kv.Get("a")
	if val != "two" || ver != res.Version {
		t.Fatalf("Get after CAS = (%q, %v), want (two, %v)", val, ver, res.Version)
	}

	stale, err := kv.CAS("a", v1, "three")
	if stale.OK {
		t.Fatalf("CAS with stale version = (%+v, %v), want clean failure", stale, err)
	}
	var conflict *storage.ErrCASConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("stale CAS error = %v, want *ErrCASConflict", err)
	}
	if conflict.Key != "a" || conflict.Expect != v1 || conflict.Observed != ver || conflict.Val != "two" {
		t.Fatalf("conflict = %+v, want key a expect %v observed (%v, two)", conflict, v1, ver)
	}
	if stale.Version != ver || stale.Val != "two" {
		t.Fatalf("failed CAS reported (%v, %q), want current (%v, two)", stale.Version, stale.Val, ver)
	}

	// Create-if-absent: CAS against the zero version of a fresh key.
	res, err = kv.CAS("fresh", storage.Version{}, "init")
	if err != nil || !res.OK {
		t.Fatalf("create-if-absent CAS = (%+v, %v), want success", res, err)
	}
	if val, _, _ := kv.Get("fresh"); val != "init" {
		t.Fatalf("Get after create CAS = %q, want init", val)
	}
}

// TestKVErrClosed pins the Store shutdown contract: once the client's
// ports close mid-operation, Get/Put/CAS return ErrClosed — a Get must
// not read as "key unwritten" nor a Put as "committed" when the
// operation never reached a quorum verdict.
func TestKVErrClosed(t *testing.T) {
	c := sim.NewKVCluster(core.Example7RQS(), sim.KVOptions{Groups: 1, Clients: 1})
	kv := c.Client()
	if _, err := kv.Put("k", "v"); err != nil {
		t.Fatalf("Put on live deployment: %v", err)
	}
	c.Stop()
	if _, _, err := kv.Get("k"); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Get after Stop: err = %v, want ErrClosed", err)
	}
	if _, err := kv.Put("k", "v2"); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Put after Stop: err = %v, want ErrClosed", err)
	}
	if _, err := kv.CAS("k", storage.Version{}, "v3"); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("CAS after Stop: err = %v, want ErrClosed", err)
	}
}

// TestKVCASCounter is the memory-transport half of the CAS contract
// test (the sim package runs it on both transports): concurrent
// increment-by-CAS loops where every version admits exactly one
// winner, so the counter never loses an increment.
func TestKVCASCounter(t *testing.T) {
	const clients, increments = 6, 5
	c := sim.NewKVCluster(core.Example7RQS(), sim.KVOptions{Groups: 1, Clients: clients + 1})
	defer c.Stop()

	type win struct {
		expectTS int64
		client   int
	}
	var mu sync.Mutex
	var wins []win
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		kv := c.Client()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for won := 0; won < increments; {
				val, ver, err := kv.Get("ctr")
				if err != nil {
					t.Errorf("client %d: Get: %v", id, err)
					return
				}
				cur := 0
				if val != storage.NoValue {
					cur, _ = strconv.Atoi(val)
				}
				res, err := kv.CAS("ctr", ver, strconv.Itoa(cur+1))
				var conflict *storage.ErrCASConflict
				if err != nil && !errors.As(err, &conflict) {
					t.Errorf("client %d: CAS: %v", id, err)
					return
				}
				if res.OK {
					mu.Lock()
					wins = append(wins, win{expectTS: ver.TS, client: id})
					mu.Unlock()
					won++
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Exactly one winner per version: no two successes share an
	// expect-version timestamp.
	byTS := make(map[int64]int)
	for _, w := range wins {
		byTS[w.expectTS]++
		if byTS[w.expectTS] > 1 {
			t.Fatalf("version ts=%d admitted %d CAS winners", w.expectTS, byTS[w.expectTS])
		}
	}
	if len(wins) != clients*increments {
		t.Fatalf("recorded %d wins, want %d", len(wins), clients*increments)
	}
	// No increment lost: same-version contenders propose the same
	// successor value, so the final counter equals the win count.
	val, _, err := c.Client().Get("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if val != strconv.Itoa(clients*increments) {
		t.Fatalf("final counter %q, want %d", val, clients*increments)
	}
}

// TestBurstKeyFairness pins the server's cross-key fairness bound: a
// burst is served strictly in inbox arrival order, never grouped or
// reordered by key, so one hot key cannot starve a cold key's request
// (it is answered in its arrival position). The test floods one server
// with a full burst of hot-key reads around a single cold-key read and
// asserts the acks come back in exactly the arrival order.
func TestBurstKeyFairness(t *testing.T) {
	net := transport.NewNetwork(2)
	defer net.Close()
	srv := storage.NewServer(net.Port(0), storage.Hooks{})
	srv.Start()
	defer srv.Stop()

	client := net.Port(1)
	const total = 64
	const coldAt = 40
	for seq := int64(1); seq <= total; seq++ {
		key := "hot"
		if seq == coldAt {
			key = "cold"
		}
		client.Send(0, storage.MWReadReq{Seq: seq, Key: key})
	}
	var want int64 = 1
	for env := range client.Inbox() {
		ack, ok := env.Payload.(storage.MWReadAck)
		if !ok {
			continue
		}
		if ack.Seq != want {
			t.Fatalf("ack %d arrived out of arrival order (want %d): hot-key traffic reordered the cold key", ack.Seq, want)
		}
		want++
		if want > total {
			break
		}
	}
}
