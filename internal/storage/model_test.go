package storage_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestModelSequentialRandomOps drives a long random sequence of
// sequential operations against a reference model (the last written
// value): with no concurrency, every read must return exactly the latest
// write — on several quorum systems and under random crash/recovery-free
// fault patterns that keep a correct quorum alive.
func TestModelSequentialRandomOps(t *testing.T) {
	systems := []struct {
		name string
		rqs  *core.RQS
		// safeCrash lists servers that may crash while leaving a fully
		// correct quorum.
		safeCrash []core.Set
	}{
		{"example7", core.Example7RQS(), []core.Set{core.NewSet(5), core.NewSet(0, 2)}},
		{"five-server", core.FiveServerRQS(), []core.Set{core.NewSet(0), core.NewSet(1, 4)}},
	}
	for _, sys := range systems {
		t.Run(sys.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			c := sim.NewStorageCluster(sys.rqs, sim.StorageOptions{
				Timeout: time.Millisecond, Clients: 2,
			})
			defer c.Stop()
			w := c.Writer()
			rd := c.Reader()

			model := storage.Pair{}
			crashed := false
			for op := 0; op < 40; op++ {
				switch {
				case !crashed && op == 20:
					// Crash a safe set halfway through.
					c.CrashServers(sys.safeCrash[r.Intn(len(sys.safeCrash))])
					crashed = true
				case r.Intn(2) == 0:
					val := string(rune('a' + r.Intn(26)))
					res := w.Write(val)
					model = storage.Pair{TS: res.TS, Val: val}
				default:
					res := rd.Read()
					if res.TS != model.TS || res.Val != model.Val {
						t.Fatalf("op %d: read %+v, model %+v", op, res, model)
					}
				}
			}
		})
	}
}

// TestModelHistoryMonotonicity checks the server-side invariant behind
// Lemma 8 (sticky values): once a slot holds a pair it never changes, and
// slot k+1 for a timestamp is only ever populated after slot k
// (Lemma 13's shape), across a random workload.
func TestModelHistoryMonotonicity(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: time.Millisecond, Clients: 2,
	})
	defer c.Stop()
	w := c.Writer()
	rd := c.Reader()
	prev := make([]storage.History, len(c.Servers))
	for op := 0; op < 15; op++ {
		if op%3 == 0 {
			w.Write("v")
		} else {
			rd.Read()
		}
		for i, srv := range c.Servers {
			cur := srv.HistorySnapshot()
			for ts, row := range prev[i] {
				for rnd := 1; rnd <= 3; rnd++ {
					was := row[rnd-1].Pair
					now := cur.Slot(ts, rnd).Pair
					if !was.IsBottom() && now != was {
						t.Fatalf("server %d ts %d slot %d changed %v → %v", i, ts, rnd, was, now)
					}
				}
			}
			for ts := range cur {
				if !cur.Slot(ts, 3).Pair.IsBottom() && cur.Slot(ts, 2).Pair.IsBottom() {
					t.Fatalf("server %d ts %d: slot 3 without slot 2", i, ts)
				}
				if !cur.Slot(ts, 2).Pair.IsBottom() && cur.Slot(ts, 1).Pair.IsBottom() {
					t.Fatalf("server %d ts %d: slot 2 without slot 1", i, ts)
				}
			}
			prev[i] = cur
		}
	}
}
