package storage

import (
	"bytes"
	"context"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/transport"
)

// This file is the MWMR (multi-writer multi-reader) variant of the
// storage: an ABD-style emulation over the refined quorum system's
// class-3 quorums, with writes ordered by 〈timestamp, writer-id〉 tags
// compared lexicographically. Unlike the SWMR protocol of Figures 5-7,
// which exploits synchrony (the 2Δ timer) and quorum classes 1 and 2
// for sub-3-round operations under Byzantine servers, the MWMR variant
// is fully asynchronous and crash-tolerant:
//
//   - a write is two phases: a read phase that discovers the maximum
//     tag at some quorum, then a write phase that stores the value
//     under 〈maxTS+1, writerID〉 at some quorum;
//   - a read is one phase plus a writeback, with a fast path: when
//     every member of some contained class-3 quorum reports the same
//     maximum tag, the value provably already resides at a quorum and
//     the writeback is skipped — the multi-writer analogue of the
//     paper's best-case fast reads.
//
// The fast path is safe in the crash model because server tags are
// monotone: if a full quorum Q reports tag t, every later phase-1
// quorum intersects Q (Property 1) in a server whose tag is still
// ≥ t, so no later operation selects an older tag. Durable servers
// extend the argument across kill -9: monotonicity only survives a
// restart for tags the WAL has fsynced, so MWReadAck.Synced marks
// whether the report is behind the fsync horizon and only synced
// reports count toward the fast-path quorum (unsynced ones still
// seed tag selection — a lost tag is only ever replaced by a higher
// one). Tolerating Byzantine servers additionally requires
// authenticated tags: with an auth.Deployment installed (see auth.go)
// writers sign their tags, servers countersign read acks, and clients
// discard acks that fail verification — completing once a fully
// verified class-3 quorum remains.
//
// Every writer must use a distinct WriterID; NewMWWriter derives it
// from the port's process ID, which deployments already keep unique.

// Tag orders MWMR writes: lexicographic on (TS, Writer). The zero Tag
// is the initial tag of the register (before any write).
type Tag struct {
	TS     int64
	Writer core.ProcessID
}

// Less reports whether t orders strictly before u.
func (t Tag) Less(u Tag) bool {
	if t.TS != u.TS {
		return t.TS < u.TS
	}
	return t.Writer < u.Writer
}

// IsZero reports whether t is the initial tag.
func (t Tag) IsZero() bool { return t == Tag{} }

// String renders the tag as 〈ts,writer〉 for errors and logs.
func (t Tag) String() string {
	return "〈" + strconv.FormatInt(t.TS, 10) + "," + strconv.Itoa(int(t.Writer)) + "〉"
}

// Packed folds the tag into one int64 that preserves the lexicographic
// order: TS in the high bits, writer ID in the low 16. It lets the
// histcheck package — which orders operations by a single int64
// timestamp — check MWMR histories unchanged. Writer IDs are process
// IDs, far below 2^16 (core.MaxProcesses = 64).
func (t Tag) Packed() int64 { return t.TS<<16 | int64(t.Writer) }

// MWMR protocol messages. Seq is the issuing client's operation
// sequence number; replies travel point-to-point back to that client,
// so (client, Seq) pairs never collide and stale acks are filtered by
// Seq alone (clients run one operation — on one key — at a time, so
// acks need not echo the key). Each client incarnation starts its
// sequence at a random 62-bit nonce: a fresh process reusing a slot
// must not match acks the reliable links retransmit from its
// predecessor's operations (which may concern a different key). Key
// addresses one register of the server's keyspace; the key-less MWMR
// clients use "".

// MWReadReq queries a server's current 〈tag, value〉 for one key (the
// read phase of both mw-reads and mw-writes).
type MWReadReq struct {
	Seq int64
	Key string
	// TagOnly marks a writer's tag query: the caller only needs the
	// maximum timestamp to pick a higher one, so the ack omits the
	// value and both signatures and the client counts it unverified.
	// This is safe where a full read is not: a Byzantine server lying
	// in a tag query can only inflate the writer's next timestamp
	// (tags stay bound to their genuine writers by the write-phase
	// signature), never smuggle a forged value–writer binding into a
	// returned read. Cuts the authenticated write's MAC bill from
	// ~2·quorum to ~1 per operation.
	TagOnly bool
}

// MWReadAck carries the server's current pair back.
type MWReadAck struct {
	Seq int64
	Tag Tag
	Val string
	// Synced reports whether the pair is covered by the server's WAL
	// fsync horizon (always true on a volatile server). Only synced
	// reports count toward the read fast path: a tag that a kill -9
	// could still erase from this server must not contribute to the
	// quorum that lets a reader skip its writeback.
	Synced bool
	// WSig is the writer's signature over 〈key, tag, digest(val)〉,
	// forwarded verbatim from the write that installed the pair. Empty
	// on unauthenticated deployments and for the zero tag.
	WSig []byte
	// SSig is the answering server's countersignature over the ack
	// (binding this request's Seq — see auth.go). Empty on
	// unauthenticated deployments.
	SSig []byte
}

// MWWriteReq asks a server to store 〈tag, val〉 under a key if tag is
// newer than what it holds (the write phase of mw-writes and read
// writebacks).
type MWWriteReq struct {
	Seq int64
	Key string
	Tag Tag
	Val string
	// Sig is Tag.Writer's signature over 〈key, tag, digest(val)〉.
	// Read writebacks forward the original writer's signature. Empty
	// on unauthenticated deployments and for zero-tag writebacks.
	Sig []byte
}

// MWWriteAck acknowledges an MWWriteReq.
type MWWriteAck struct {
	Seq int64
}

// MWResult reports how an MWMR operation completed.
type MWResult struct {
	Val    string
	Tag    Tag // tag written (writes) or returned (reads)
	Rounds int // communication round-trips used
}

// mwClient is the phase machinery shared by MWWriter and MWReader: a
// client port, a reused quorum tracker, and the per-operation sequence
// counter. Like the SWMR clients, an mwClient runs one operation at a
// time; concurrency comes from deploying many clients. There is no
// timeout knob: the phases are pure quorum waits (the protocol is
// asynchronous), wait-free while a correct quorum is reachable.
type mwClient struct {
	rqs  *core.RQS
	port transport.Port
	seq  int64
	tr   *core.QuorumTracker

	// Read-phase scratch, reset per phase: the maximum tag seen and
	// the set of servers that reported it as synced (durably held, so
	// eligible to support the fast path — volatile servers report
	// everything synced).
	maxTag  Tag
	maxVal  string
	maxSig  []byte // writer signature accompanying maxTag (writeback forwarding)
	withMax core.Set
	closed  bool // the port's inbox closed mid-operation
	aborted bool // the operation's deadline expired mid-phase

	// Authenticated-deployment state (nil/zero when auth is off).
	signer   auth.Signer   // signs this client's own write/CAS tags
	verifier auth.Verifier // checks read-ack signatures; failures are discarded
	rejected uint64        // read acks discarded for failed verification
	bodyBuf  []byte        // canonical signing-body scratch
	dmemo    digestMemo    // last value digest (signing bodies repeat one value)

	// Memo of a writer signature verified earlier in the CURRENT read
	// phase: a quorum's acks overwhelmingly repeat one 〈key, tag, val,
	// wsig〉 tuple, and re-verifying it per ack would double the phase's
	// MAC bill. Sound because only an exact match of all four skips;
	// invalidated at phase start so a revocation takes effect no later
	// than the next operation. The fields themselves survive
	// invalidation as retained allocations — successive phases over the
	// same register re-verify but rarely need to re-clone.
	vValid bool
	vKey   string
	vTag   Tag
	vVal   string
	vSig   []byte
}

func newMWClient(rqs *core.RQS, port transport.Port) mwClient {
	// Random seq start: acks retransmitted to a restarted client
	// process (same slot, fresh incarnation) must not match the new
	// incarnation's sequence numbers. 2^62 of headroom remains.
	return mwClient{rqs: rqs, port: port, tr: rqs.NewTracker(), seq: rand.Int63n(1 << 62)}
}

// setAuth installs this client's key material: a verifier to screen
// read acks and (for writers) a signer for its own tags. Must be set
// before the first operation.
func (c *mwClient) setAuth(signer auth.Signer, verifier auth.Verifier) {
	c.signer, c.verifier = signer, verifier
}

// signTag returns this client's writer signature for 〈key, tag, val〉,
// or nil when the deployment is unauthenticated.
func (c *mwClient) signTag(key string, tag Tag, val string) []byte {
	if c.signer == nil {
		return nil
	}
	c.bodyBuf = tagBodyD(c.bodyBuf[:0], key, tag, c.dmemo.of(val))
	return c.signer.Sign(c.bodyBuf)
}

// verifyReadAck checks a read ack's server countersignature and — for
// non-zero tags — the writer signature on the reported pair. With no
// verifier installed everything passes.
func (c *mwClient) verifyReadAck(from core.ProcessID, key string, ack MWReadAck) bool {
	if c.verifier == nil {
		return true
	}
	d := c.dmemo.of(ack.Val)
	c.bodyBuf = ackBodyD(c.bodyBuf[:0], from, c.seq, key, ack.Tag, d, ack.Synced)
	if !c.verifier.Verify(from, c.bodyBuf, ack.SSig) {
		return false
	}
	if ack.Tag.IsZero() {
		// The initial ⊥ pair predates every writer; only the
		// countersignature vouches for it.
		return true
	}
	if c.vValid && ack.Tag == c.vTag && key == c.vKey && ack.Val == c.vVal && bytes.Equal(ack.WSig, c.vSig) {
		return true
	}
	c.bodyBuf = tagBodyD(c.bodyBuf[:0], key, ack.Tag, d)
	if !c.verifier.Verify(ack.Tag.Writer, c.bodyBuf, ack.WSig) {
		return false
	}
	// Clone into the memo: ack.Val/ack.WSig may alias a receive arena
	// that recycles after the envelope releases. The previous phase's
	// clones are reused when the contents match (the common case —
	// phase after phase over one register sees one tuple).
	if key != c.vKey {
		c.vKey = strings.Clone(key)
	}
	if ack.Val != c.vVal {
		c.vVal = strings.Clone(ack.Val)
	}
	if !bytes.Equal(ack.WSig, c.vSig) {
		c.vSig = bytes.Clone(ack.WSig)
	}
	c.vTag, c.vValid = ack.Tag, true
	return true
}

// recv receives the next envelope for a phase wait, draining buffered
// messages first (the cheap path under load). A nil done channel — the
// deadline-free common case — can never fire; a non-nil one aborts the
// phase when it does.
func (c *mwClient) recv(done <-chan struct{}) (transport.Envelope, bool) {
	select {
	case env, ok := <-c.port.Inbox():
		return env, ok
	default:
	}
	select {
	case env, ok := <-c.port.Inbox():
		return env, ok
	case <-done:
		c.aborted = true
		return transport.Envelope{}, false
	}
}

// readPhase broadcasts MWReadReq for key and collects acks until some
// class-3 quorum responded, tracking the maximum tag and who reported
// it. Acks are verified on authenticated deployments.
func (c *mwClient) readPhase(key string, done <-chan struct{}) {
	c.phase(key, false, done)
}

// queryPhase is the writer's cut-down read phase: a TagOnly broadcast
// whose acks carry no value and no signatures and are counted
// unverified (see MWReadReq.TagOnly for why that is sound). Only
// maxTag is meaningful afterwards.
func (c *mwClient) queryPhase(key string, done <-chan struct{}) {
	c.phase(key, true, done)
}

func (c *mwClient) phase(key string, tagOnly bool, done <-chan struct{}) {
	c.seq++
	drainPort(c.port)
	transport.Broadcast(c.port, c.rqs.Universe(), MWReadReq{Seq: c.seq, Key: key, TagOnly: tagOnly})

	c.tr.Reset()
	c.maxTag, c.maxVal, c.maxSig, c.withMax = Tag{}, NoValue, nil, core.EmptySet
	c.vValid = false
	for {
		env, ok := c.recv(done)
		if !ok {
			if !c.aborted {
				c.closed = true
			}
			return
		}
		ack, isAck := env.Payload.(MWReadAck)
		if !isAck || ack.Seq != c.seq {
			env.Release()
			continue
		}
		if tagOnly {
			if c.maxTag.Less(ack.Tag) {
				c.maxTag = ack.Tag
			}
		} else if !c.verifyReadAck(env.From, key, ack) {
			// A forged, tampered, or replayed ack: discard it without
			// counting the sender toward the quorum. The phase still
			// completes once a fully verified class-3 quorum answers.
			c.rejected++
			env.Release()
			continue
		} else if c.maxTag.Less(ack.Tag) {
			val := ack.Val
			if env.Aliased() {
				// The adopted value may outlive the envelope (it is the
				// phase's result); unalias it from the receive arena.
				val = strings.Clone(val)
			}
			// Clone the writer signature too: it is forwarded in the
			// writeback and must outlive both the receive arena and
			// this phase.
			c.maxTag, c.maxVal, c.maxSig, c.withMax = ack.Tag, val, bytes.Clone(ack.WSig), core.EmptySet
			if ack.Synced {
				c.withMax = core.NewSet(env.From)
			}
		} else if ack.Tag == c.maxTag && ack.Synced {
			c.withMax = c.withMax.Add(env.From)
		}
		env.Release()
		if c.tr.Add(env.From) {
			if _, ok := c.tr.Contained(core.Class3); ok {
				return
			}
		}
	}
}

// writePhase broadcasts MWWriteReq〈tag, val〉 for key and waits for
// acks from some class-3 quorum. sig is the tag's writer signature
// (the client's own for fresh writes, the original writer's for
// writebacks; nil when auth is off).
func (c *mwClient) writePhase(key string, tag Tag, val string, sig []byte, done <-chan struct{}) {
	c.seq++
	transport.Broadcast(c.port, c.rqs.Universe(), MWWriteReq{Seq: c.seq, Key: key, Tag: tag, Val: val, Sig: sig})

	c.tr.Reset()
	for {
		env, ok := c.recv(done)
		if !ok {
			if !c.aborted {
				c.closed = true
			}
			return
		}
		ack, isAck := env.Payload.(MWWriteAck)
		env.Release()
		if isAck && ack.Seq == c.seq {
			if c.tr.Add(env.From) {
				if _, ok := c.tr.Contained(core.Class3); ok {
					return
				}
			}
		}
	}
}

// MWWriter is one of arbitrarily many writers of the MWMR register.
// Each writer instance needs its own port; its writer ID is the port's
// process ID. Not safe for concurrent use by multiple goroutines — the
// model forbids a client from invoking a new operation before the
// previous one completes.
//
// Legacy: MWWriter addresses the single key-less register, which is
// key "" of the server's keyspace. New code that needs more than one
// register should use KVClient (kv.go) instead.
type MWWriter struct {
	c  mwClient
	id core.ProcessID
}

// NewMWWriter creates a multi-writer client. Unlike the SWMR
// constructors there is no 2Δ timeout: the MWMR protocol is
// asynchronous and its phases are unbounded quorum waits.
func NewMWWriter(rqs *core.RQS, port transport.Port) *MWWriter {
	return &MWWriter{c: newMWClient(rqs, port), id: port.ID()}
}

// NewMWWriterAuth is NewMWWriter on an authenticated deployment: the
// writer signs its tags with signer and screens read-phase acks with
// verifier.
func NewMWWriterAuth(rqs *core.RQS, port transport.Port, signer auth.Signer, verifier auth.Verifier) *MWWriter {
	w := NewMWWriter(rqs, port)
	w.c.setAuth(signer, verifier)
	return w
}

// AuthStats returns this writer's verification counters. Call between
// operations (the writer runs one operation at a time).
func (w *MWWriter) AuthStats() AuthStats { return AuthStats{RejectedAcks: w.c.rejected} }

// WriterID returns the ID embedded in this writer's tags.
func (w *MWWriter) WriterID() core.ProcessID { return w.id }

// Write stores v under a tag strictly greater than any tag a preceding
// complete operation observed: a read phase discovers the maximum tag
// at a quorum, the write phase stores 〈〈maxTS+1, writerID〉, v〉 at a
// quorum. Always two round-trips.
func (w *MWWriter) Write(v string) MWResult {
	res, _ := w.WriteCtx(context.Background(), v)
	return res
}

// WriteCtx is Write with a per-operation deadline: when ctx expires
// before a quorum responds, the operation aborts and the context's
// error is returned. An aborted write may be partially applied; the
// writer remains usable.
func (w *MWWriter) WriteCtx(ctx context.Context, v string) (MWResult, error) {
	done := ctx.Done()
	w.c.aborted = false
	w.c.queryPhase("", done)
	if w.c.aborted {
		return MWResult{Val: v, Rounds: 1}, ctx.Err()
	}
	if w.c.closed {
		return MWResult{Val: v, Rounds: 1}, nil
	}
	tag := Tag{TS: w.c.maxTag.TS + 1, Writer: w.id}
	w.c.writePhase("", tag, v, w.c.signTag("", tag, v), done)
	if w.c.aborted {
		return MWResult{Val: v, Rounds: 2}, ctx.Err()
	}
	return MWResult{Val: v, Tag: tag, Rounds: 2}, nil
}

// MWReader is a reader of the MWMR register. Like MWWriter, one
// operation at a time per instance.
//
// Legacy: MWReader reads the single key-less register — key "" of the
// server's keyspace. New code should prefer KVClient (kv.go).
type MWReader struct {
	c mwClient
}

// NewMWReader creates a multi-reader client (asynchronous — no
// timeout, like NewMWWriter).
func NewMWReader(rqs *core.RQS, port transport.Port) *MWReader {
	return &MWReader{c: newMWClient(rqs, port)}
}

// NewMWReaderAuth is NewMWReader on an authenticated deployment.
// Readers need no signer: writebacks forward the original writer's
// signature.
func NewMWReaderAuth(rqs *core.RQS, port transport.Port, verifier auth.Verifier) *MWReader {
	r := NewMWReader(rqs, port)
	r.c.setAuth(nil, verifier)
	return r
}

// AuthStats returns this reader's verification counters. Call between
// operations.
func (r *MWReader) AuthStats() AuthStats { return AuthStats{RejectedAcks: r.c.rejected} }

// Read returns the register's current value: a read phase selects the
// maximum tag at a quorum, then a writeback installs it at a quorum
// before returning — unless the servers that reported the maximum
// already contain a class-3 quorum, in which case the value provably
// resides at a quorum and the read completes in a single round-trip
// (the uncontended fast path).
func (r *MWReader) Read() MWResult {
	res, _ := r.ReadCtx(context.Background())
	return res
}

// ReadCtx is Read with a per-operation deadline: when ctx expires
// before the read completes, the operation aborts and the context's
// error is returned. The reader remains usable.
func (r *MWReader) ReadCtx(ctx context.Context) (MWResult, error) {
	done := ctx.Done()
	r.c.aborted = false
	r.c.readPhase("", done)
	if r.c.aborted {
		return MWResult{Val: NoValue, Rounds: 1}, ctx.Err()
	}
	if r.c.closed {
		return MWResult{Val: NoValue, Rounds: 1}, nil
	}
	tag, val := r.c.maxTag, r.c.maxVal
	if _, ok := r.c.rqs.ContainedQuorum(r.c.withMax, core.Class3); ok {
		return MWResult{Val: val, Tag: tag, Rounds: 1}, nil
	}
	r.c.writePhase("", tag, val, r.c.maxSig, done)
	if r.c.aborted {
		return MWResult{Val: NoValue, Rounds: 2}, ctx.Err()
	}
	return MWResult{Val: val, Tag: tag, Rounds: 2}, nil
}

// drainPort discards leftover replies from previous operations.
// Server registers are monotone, so dropped stale acks lose no
// information — draining only keeps per-operation accounting exact.
// Discarded envelopes are released so their receive arenas recycle.
func drainPort(port transport.Port) {
	for {
		select {
		case env, ok := <-port.Inbox():
			if !ok {
				return
			}
			env.Release()
		default:
			return
		}
	}
}
