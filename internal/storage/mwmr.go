package storage

import (
	"context"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/transport"
)

// This file is the MWMR (multi-writer multi-reader) variant of the
// storage: an ABD-style emulation over the refined quorum system's
// class-3 quorums, with writes ordered by 〈timestamp, writer-id〉 tags
// compared lexicographically. Unlike the SWMR protocol of Figures 5-7,
// which exploits synchrony (the 2Δ timer) and quorum classes 1 and 2
// for sub-3-round operations under Byzantine servers, the MWMR variant
// is fully asynchronous and crash-tolerant:
//
//   - a write is two phases: a read phase that discovers the maximum
//     tag at some quorum, then a write phase that stores the value
//     under 〈maxTS+1, writerID〉 at some quorum;
//   - a read is one phase plus a writeback, with a fast path: when
//     every member of some contained class-3 quorum reports the same
//     maximum tag, the value provably already resides at a quorum and
//     the writeback is skipped — the multi-writer analogue of the
//     paper's best-case fast reads.
//
// The fast path is safe in the crash model because server tags are
// monotone: if a full quorum Q reports tag t, every later phase-1
// quorum intersects Q (Property 1) in a server whose tag is still
// ≥ t, so no later operation selects an older tag. Durable servers
// extend the argument across kill -9: monotonicity only survives a
// restart for tags the WAL has fsynced, so MWReadAck.Synced marks
// whether the report is behind the fsync horizon and only synced
// reports count toward the fast-path quorum (unsynced ones still
// seed tag selection — a lost tag is only ever replaced by a higher
// one). Tolerating
// Byzantine servers in the MWMR setting requires authenticated tags
// (writers would need to sign 〈tag, value〉); that extension is left on
// the ROADMAP.
//
// Every writer must use a distinct WriterID; NewMWWriter derives it
// from the port's process ID, which deployments already keep unique.

// Tag orders MWMR writes: lexicographic on (TS, Writer). The zero Tag
// is the initial tag of the register (before any write).
type Tag struct {
	TS     int64
	Writer core.ProcessID
}

// Less reports whether t orders strictly before u.
func (t Tag) Less(u Tag) bool {
	if t.TS != u.TS {
		return t.TS < u.TS
	}
	return t.Writer < u.Writer
}

// IsZero reports whether t is the initial tag.
func (t Tag) IsZero() bool { return t == Tag{} }

// Packed folds the tag into one int64 that preserves the lexicographic
// order: TS in the high bits, writer ID in the low 16. It lets the
// histcheck package — which orders operations by a single int64
// timestamp — check MWMR histories unchanged. Writer IDs are process
// IDs, far below 2^16 (core.MaxProcesses = 64).
func (t Tag) Packed() int64 { return t.TS<<16 | int64(t.Writer) }

// MWMR protocol messages. Seq is the issuing client's operation
// sequence number; replies travel point-to-point back to that client,
// so (client, Seq) pairs never collide and stale acks are filtered by
// Seq alone (clients run one operation — on one key — at a time, so
// acks need not echo the key). Each client incarnation starts its
// sequence at a random 62-bit nonce: a fresh process reusing a slot
// must not match acks the reliable links retransmit from its
// predecessor's operations (which may concern a different key). Key
// addresses one register of the server's keyspace; the key-less MWMR
// clients use "".

// MWReadReq queries a server's current 〈tag, value〉 for one key (the
// read phase of both mw-reads and mw-writes).
type MWReadReq struct {
	Seq int64
	Key string
}

// MWReadAck carries the server's current pair back.
type MWReadAck struct {
	Seq int64
	Tag Tag
	Val string
	// Synced reports whether the pair is covered by the server's WAL
	// fsync horizon (always true on a volatile server). Only synced
	// reports count toward the read fast path: a tag that a kill -9
	// could still erase from this server must not contribute to the
	// quorum that lets a reader skip its writeback.
	Synced bool
}

// MWWriteReq asks a server to store 〈tag, val〉 under a key if tag is
// newer than what it holds (the write phase of mw-writes and read
// writebacks).
type MWWriteReq struct {
	Seq int64
	Key string
	Tag Tag
	Val string
}

// MWWriteAck acknowledges an MWWriteReq.
type MWWriteAck struct {
	Seq int64
}

// MWResult reports how an MWMR operation completed.
type MWResult struct {
	Val    string
	Tag    Tag // tag written (writes) or returned (reads)
	Rounds int // communication round-trips used
}

// mwClient is the phase machinery shared by MWWriter and MWReader: a
// client port, a reused quorum tracker, and the per-operation sequence
// counter. Like the SWMR clients, an mwClient runs one operation at a
// time; concurrency comes from deploying many clients. There is no
// timeout knob: the phases are pure quorum waits (the protocol is
// asynchronous), wait-free while a correct quorum is reachable.
type mwClient struct {
	rqs  *core.RQS
	port transport.Port
	seq  int64
	tr   *core.QuorumTracker

	// Read-phase scratch, reset per phase: the maximum tag seen and
	// the set of servers that reported it as synced (durably held, so
	// eligible to support the fast path — volatile servers report
	// everything synced).
	maxTag  Tag
	maxVal  string
	withMax core.Set
	closed  bool // the port's inbox closed mid-operation
	aborted bool // the operation's deadline expired mid-phase
}

func newMWClient(rqs *core.RQS, port transport.Port) mwClient {
	// Random seq start: acks retransmitted to a restarted client
	// process (same slot, fresh incarnation) must not match the new
	// incarnation's sequence numbers. 2^62 of headroom remains.
	return mwClient{rqs: rqs, port: port, tr: rqs.NewTracker(), seq: rand.Int63n(1 << 62)}
}

// recv receives the next envelope for a phase wait, draining buffered
// messages first (the cheap path under load). A nil done channel — the
// deadline-free common case — can never fire; a non-nil one aborts the
// phase when it does.
func (c *mwClient) recv(done <-chan struct{}) (transport.Envelope, bool) {
	select {
	case env, ok := <-c.port.Inbox():
		return env, ok
	default:
	}
	select {
	case env, ok := <-c.port.Inbox():
		return env, ok
	case <-done:
		c.aborted = true
		return transport.Envelope{}, false
	}
}

// readPhase broadcasts MWReadReq for key and collects acks until some
// class-3 quorum responded, tracking the maximum tag and who reported
// it.
func (c *mwClient) readPhase(key string, done <-chan struct{}) {
	c.seq++
	drainPort(c.port)
	transport.Broadcast(c.port, c.rqs.Universe(), MWReadReq{Seq: c.seq, Key: key})

	c.tr.Reset()
	c.maxTag, c.maxVal, c.withMax = Tag{}, NoValue, core.EmptySet
	for {
		env, ok := c.recv(done)
		if !ok {
			if !c.aborted {
				c.closed = true
			}
			return
		}
		ack, isAck := env.Payload.(MWReadAck)
		if !isAck || ack.Seq != c.seq {
			env.Release()
			continue
		}
		if c.maxTag.Less(ack.Tag) {
			val := ack.Val
			if env.Aliased() {
				// The adopted value may outlive the envelope (it is the
				// phase's result); unalias it from the receive arena.
				val = strings.Clone(val)
			}
			c.maxTag, c.maxVal, c.withMax = ack.Tag, val, core.EmptySet
			if ack.Synced {
				c.withMax = core.NewSet(env.From)
			}
		} else if ack.Tag == c.maxTag && ack.Synced {
			c.withMax = c.withMax.Add(env.From)
		}
		env.Release()
		if c.tr.Add(env.From) {
			if _, ok := c.tr.Contained(core.Class3); ok {
				return
			}
		}
	}
}

// writePhase broadcasts MWWriteReq〈tag, val〉 for key and waits for
// acks from some class-3 quorum.
func (c *mwClient) writePhase(key string, tag Tag, val string, done <-chan struct{}) {
	c.seq++
	transport.Broadcast(c.port, c.rqs.Universe(), MWWriteReq{Seq: c.seq, Key: key, Tag: tag, Val: val})

	c.tr.Reset()
	for {
		env, ok := c.recv(done)
		if !ok {
			if !c.aborted {
				c.closed = true
			}
			return
		}
		ack, isAck := env.Payload.(MWWriteAck)
		env.Release()
		if isAck && ack.Seq == c.seq {
			if c.tr.Add(env.From) {
				if _, ok := c.tr.Contained(core.Class3); ok {
					return
				}
			}
		}
	}
}

// MWWriter is one of arbitrarily many writers of the MWMR register.
// Each writer instance needs its own port; its writer ID is the port's
// process ID. Not safe for concurrent use by multiple goroutines — the
// model forbids a client from invoking a new operation before the
// previous one completes.
//
// Legacy: MWWriter addresses the single key-less register, which is
// key "" of the server's keyspace. New code that needs more than one
// register should use KVClient (kv.go) instead.
type MWWriter struct {
	c  mwClient
	id core.ProcessID
}

// NewMWWriter creates a multi-writer client. Unlike the SWMR
// constructors there is no 2Δ timeout: the MWMR protocol is
// asynchronous and its phases are unbounded quorum waits.
func NewMWWriter(rqs *core.RQS, port transport.Port) *MWWriter {
	return &MWWriter{c: newMWClient(rqs, port), id: port.ID()}
}

// WriterID returns the ID embedded in this writer's tags.
func (w *MWWriter) WriterID() core.ProcessID { return w.id }

// Write stores v under a tag strictly greater than any tag a preceding
// complete operation observed: a read phase discovers the maximum tag
// at a quorum, the write phase stores 〈〈maxTS+1, writerID〉, v〉 at a
// quorum. Always two round-trips.
func (w *MWWriter) Write(v string) MWResult {
	res, _ := w.WriteCtx(context.Background(), v)
	return res
}

// WriteCtx is Write with a per-operation deadline: when ctx expires
// before a quorum responds, the operation aborts and the context's
// error is returned. An aborted write may be partially applied; the
// writer remains usable.
func (w *MWWriter) WriteCtx(ctx context.Context, v string) (MWResult, error) {
	done := ctx.Done()
	w.c.aborted = false
	w.c.readPhase("", done)
	if w.c.aborted {
		return MWResult{Val: v, Rounds: 1}, ctx.Err()
	}
	if w.c.closed {
		return MWResult{Val: v, Rounds: 1}, nil
	}
	tag := Tag{TS: w.c.maxTag.TS + 1, Writer: w.id}
	w.c.writePhase("", tag, v, done)
	if w.c.aborted {
		return MWResult{Val: v, Rounds: 2}, ctx.Err()
	}
	return MWResult{Val: v, Tag: tag, Rounds: 2}, nil
}

// MWReader is a reader of the MWMR register. Like MWWriter, one
// operation at a time per instance.
//
// Legacy: MWReader reads the single key-less register — key "" of the
// server's keyspace. New code should prefer KVClient (kv.go).
type MWReader struct {
	c mwClient
}

// NewMWReader creates a multi-reader client (asynchronous — no
// timeout, like NewMWWriter).
func NewMWReader(rqs *core.RQS, port transport.Port) *MWReader {
	return &MWReader{c: newMWClient(rqs, port)}
}

// Read returns the register's current value: a read phase selects the
// maximum tag at a quorum, then a writeback installs it at a quorum
// before returning — unless the servers that reported the maximum
// already contain a class-3 quorum, in which case the value provably
// resides at a quorum and the read completes in a single round-trip
// (the uncontended fast path).
func (r *MWReader) Read() MWResult {
	res, _ := r.ReadCtx(context.Background())
	return res
}

// ReadCtx is Read with a per-operation deadline: when ctx expires
// before the read completes, the operation aborts and the context's
// error is returned. The reader remains usable.
func (r *MWReader) ReadCtx(ctx context.Context) (MWResult, error) {
	done := ctx.Done()
	r.c.aborted = false
	r.c.readPhase("", done)
	if r.c.aborted {
		return MWResult{Val: NoValue, Rounds: 1}, ctx.Err()
	}
	if r.c.closed {
		return MWResult{Val: NoValue, Rounds: 1}, nil
	}
	tag, val := r.c.maxTag, r.c.maxVal
	if _, ok := r.c.rqs.ContainedQuorum(r.c.withMax, core.Class3); ok {
		return MWResult{Val: val, Tag: tag, Rounds: 1}, nil
	}
	r.c.writePhase("", tag, val, done)
	if r.c.aborted {
		return MWResult{Val: NoValue, Rounds: 2}, ctx.Err()
	}
	return MWResult{Val: val, Tag: tag, Rounds: 2}, nil
}

// drainPort discards leftover replies from previous operations.
// Server registers are monotone, so dropped stale acks lose no
// information — draining only keeps per-operation accounting exact.
// Discarded envelopes are released so their receive arenas recycle.
func drainPort(port transport.Port) {
	for {
		select {
		case env, ok := <-port.Inbox():
			if !ok {
				return
			}
			env.Release()
		default:
			return
		}
	}
}
