package storage_test

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

func TestTagOrdering(t *testing.T) {
	a := storage.Tag{TS: 1, Writer: 7}
	b := storage.Tag{TS: 1, Writer: 8}
	c := storage.Tag{TS: 2, Writer: 0}
	for _, tt := range []struct {
		lo, hi storage.Tag
	}{{storage.Tag{}, a}, {a, b}, {b, c}, {a, c}} {
		if !tt.lo.Less(tt.hi) || tt.hi.Less(tt.lo) {
			t.Errorf("ordering of %v vs %v wrong", tt.lo, tt.hi)
		}
		if tt.lo.Packed() >= tt.hi.Packed() {
			t.Errorf("Packed does not preserve order: %v vs %v", tt.lo, tt.hi)
		}
	}
	if !(storage.Tag{}).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
}

// TestMWMRSequentialModel drives sequential multi-writer operations
// from two writers against the last-written-value model: with no
// concurrency every read must return exactly the latest write, and
// tags must strictly increase across the whole run.
func TestMWMRSequentialModel(t *testing.T) {
	for _, sys := range []struct {
		name string
		rqs  *core.RQS
	}{
		{"example7", core.Example7RQS()},
		{"five-server", core.FiveServerRQS()},
	} {
		t.Run(sys.name, func(t *testing.T) {
			c := sim.NewStorageCluster(sys.rqs, sim.StorageOptions{Timeout: time.Millisecond, Clients: 3})
			defer c.Stop()
			writers := []*storage.MWWriter{c.MWWriter(), c.MWWriter()}
			rd := c.MWReader()

			r := rand.New(rand.NewSource(11))
			var last storage.MWResult
			var prevTag storage.Tag
			for op := 0; op < 40; op++ {
				if r.Intn(2) == 0 {
					w := writers[r.Intn(len(writers))]
					val := fmt.Sprintf("v%d", op)
					last = w.Write(val)
					if !prevTag.Less(last.Tag) {
						t.Fatalf("op %d: tag %v not above previous %v", op, last.Tag, prevTag)
					}
					prevTag = last.Tag
				} else {
					res := rd.Read()
					if res.Tag != last.Tag || res.Val != last.Val {
						t.Fatalf("op %d: read %+v, model %+v", op, res, last)
					}
				}
			}
		})
	}
}

// TestMWMRReadFastPath pins the round counts: writes always take two
// round-trips, and an uncontended read — every live server holds the
// same tag — completes in one.
func TestMWMRReadFastPath(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{Timeout: time.Millisecond, Clients: 2})
	defer c.Stop()
	w, rd := c.MWWriter(), c.MWReader()

	if res := w.Write("a"); res.Rounds != 2 {
		t.Fatalf("write rounds = %d, want 2", res.Rounds)
	}
	if res := rd.Read(); res.Rounds != 1 || res.Val != "a" {
		t.Fatalf("uncontended read = %+v, want 1 round of %q", res, "a")
	}
}

// TestMWMRReadWriteback forces the slow path: a value planted at a
// single server (as an in-progress write would leave it) makes the
// reader's maximum non-uniform, so it must write back before
// returning — and a subsequent read sees the written-back value fast.
func TestMWMRReadWriteback(t *testing.T) {
	rqs := core.Example7RQS()
	c := sim.NewStorageCluster(rqs, sim.StorageOptions{Timeout: time.Millisecond, Clients: 3})
	defer c.Stop()
	w, rd := c.MWWriter(), c.MWReader()
	w.Write("old")

	// Plant a newer tag at server 0 only, bypassing the write protocol
	// (the state an interrupted writer leaves behind).
	planted := storage.Tag{TS: 99, Writer: 63}
	c.Net.Port(rqs.N()+2).Send(0, storage.MWWriteReq{Seq: 1, Tag: planted, Val: "planted"})
	waitFor(t, func() bool {
		tag, _ := c.Servers[0].MWSnapshot()
		return tag == planted
	})

	// A read whose responding quorum happens to exclude server 0 may
	// legally return the old pair in one round (the planted write is
	// incomplete, so missing it is linearizable); retry until the read
	// hears from server 0 and must take the slow path.
	var res storage.MWResult
	for attempt := 0; ; attempt++ {
		res = rd.Read()
		if res.Tag == planted {
			break
		}
		if attempt >= 100 {
			t.Fatalf("read %+v after %d attempts, want the planted pair", res, attempt)
		}
	}
	if res.Val != "planted" {
		t.Fatalf("read %+v, want the planted pair", res)
	}
	if res.Rounds != 2 {
		t.Fatalf("read rounds = %d, want 2 (writeback required)", res.Rounds)
	}
	// The writeback installed the planted pair at a full quorum; reads
	// converge to the fast path once their quorum is covered by it.
	for attempt := 0; ; attempt++ {
		if res := rd.Read(); res.Rounds == 1 {
			break
		}
		if attempt >= 100 {
			t.Fatal("post-writeback reads never reached the fast path")
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// mwmrWorkload runs nWriters concurrent writers and nReaders concurrent
// readers for ops operations each under a randomized schedule, records
// every completed operation, and checks the history for atomicity.
// Each client runs on its own port; writer IDs are the port IDs.
func mwmrWorkload(t *testing.T, writers []*storage.MWWriter, readers []*storage.MWReader, ops int, crash func()) {
	t.Helper()
	rec := histcheck.NewRecorder()
	var wg sync.WaitGroup
	for i, w := range writers {
		wg.Add(1)
		go func(i int, w *storage.MWWriter) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + i)))
			for op := 0; op < ops; op++ {
				time.Sleep(time.Duration(r.Intn(300)) * time.Microsecond)
				inv := time.Now()
				res := w.Write(fmt.Sprintf("w%d-%d", i, op))
				rec.Record(histcheck.Op{
					Kind: histcheck.Write, Client: fmt.Sprintf("w%d", i),
					TS: res.Tag.Packed(), Inv: inv, Resp: time.Now(),
				})
			}
		}(i, w)
	}
	for i, rd := range readers {
		wg.Add(1)
		go func(i int, rd *storage.MWReader) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(200 + i)))
			for op := 0; op < ops; op++ {
				time.Sleep(time.Duration(r.Intn(300)) * time.Microsecond)
				inv := time.Now()
				res := rd.Read()
				rec.Record(histcheck.Op{
					Kind: histcheck.Read, Client: fmt.Sprintf("r%d", i),
					TS: res.Tag.Packed(), Inv: inv, Resp: time.Now(),
				})
			}
		}(i, rd)
	}
	if crash != nil {
		crash()
	}
	wg.Wait()
	if v := rec.Check(); v != nil {
		t.Fatal(v)
	}
}

// TestMWMRConcurrentWritersLinearizable is the MWMR linearizability
// test over the in-memory network: four concurrent writers and two
// concurrent readers under randomized schedules, with a safe server
// crash injected mid-run, must produce an atomic history.
func TestMWMRConcurrentWritersLinearizable(t *testing.T) {
	const nWriters, nReaders, ops = 4, 2, 25
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: time.Millisecond, Clients: nWriters + nReaders,
	})
	defer c.Stop()
	var writers []*storage.MWWriter
	for i := 0; i < nWriters; i++ {
		writers = append(writers, c.MWWriter())
	}
	var readers []*storage.MWReader
	for i := 0; i < nReaders; i++ {
		readers = append(readers, c.MWReader())
	}
	mwmrWorkload(t, writers, readers, ops, func() {
		go func() {
			time.Sleep(2 * time.Millisecond)
			c.CrashServers(core.NewSet(5)) // s6: a fully correct quorum remains
		}()
	})
}

// TestMWMRConcurrentWritersLinearizableTCP is the same linearizability
// check over real TCP: three writer processes and one reader on
// distinct client slots against the six Example 7 servers.
func TestMWMRConcurrentWritersLinearizableTCP(t *testing.T) {
	system := core.Example7RQS()
	n := system.N()
	transport.Register(storage.MWReadReq{})
	transport.Register(storage.MWReadAck{})
	transport.Register(storage.MWWriteReq{})
	transport.Register(storage.MWWriteAck{})

	const nWriters, nReaders = 3, 1
	addrs := make(map[core.ProcessID]string, n+nWriters+nReaders)
	for i := 0; i < n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	// Client slots need fixed addresses before the server nodes start.
	for i := 0; i < nWriters+nReaders; i++ {
		addrs[n+i] = reservePort(t)
	}
	var nodes []*transport.TCPNode
	for i := 0; i < n; i++ {
		node, err := transport.NewTCPNode(i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		addrs[i] = node.Addr()
		nodes = append(nodes, node)
	}
	for _, node := range nodes {
		srv := storage.NewServer(node, storage.Hooks{})
		srv.Start()
		defer srv.Stop()
	}

	var writers []*storage.MWWriter
	for i := 0; i < nWriters; i++ {
		node, err := transport.NewTCPNode(n+i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		writers = append(writers, storage.NewMWWriter(system, node))
	}
	var readers []*storage.MWReader
	for i := 0; i < nReaders; i++ {
		node, err := transport.NewTCPNode(n+nWriters+i, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		readers = append(readers, storage.NewMWReader(system, node))
	}
	mwmrWorkload(t, writers, readers, 10, nil)
}

// reservePort grabs a free loopback port and releases it for a client
// node to bind (SO_REUSEADDR makes the immediate rebind safe).
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}
