package storage

import (
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// Semantics selects the consistency level a reader enforces.
type Semantics int

// Reader semantics.
const (
	// Atomic is the full algorithm of Figure 7: regular selection plus
	// the BCD-guided writeback that prevents read inversion.
	Atomic Semantics = iota + 1
	// Regular skips the writeback part entirely (lines 40-49): reads
	// return the selected candidate immediately. This is the weaker
	// regular semantics of Lamport [33] that Section 6 discusses —
	// Properties 1 and 3a suffice for it, and every read is as fast as
	// its first part (typically one round), but read inversion between
	// concurrent readers becomes possible.
	Regular
)

// ReaderOptions tune a reader beyond the defaults, for the semantics
// comparison (Section 6) and the ablation experiments.
type ReaderOptions struct {
	// Timeout is the 2Δ round timer (default DefaultTimeout).
	Timeout time.Duration
	// Semantics selects Atomic (default) or Regular reads.
	Semantics Semantics
	// DisableQC2 ablates the paper's "novel algorithmic scheme": the
	// reader neither remembers which class-2 quorums responded in round
	// 1 nor writes their ids back (Figure 7 lines 30-32 and 41-48). The
	// algorithm stays safe but loses the 2-round read path — reads that
	// would take 2 rounds now take 3. DESIGN.md calls this ablation out;
	// the A1 bench measures it.
	DisableQC2 bool
}

// NewReaderOpts creates a reader with explicit options.
func NewReaderOpts(rqs *core.RQS, port transport.Port, opts ReaderOptions) *Reader {
	r := NewReader(rqs, port, opts.Timeout)
	if opts.Semantics != 0 {
		r.semantics = opts.Semantics
	}
	r.disableQC2 = opts.DisableQC2
	return r
}
