package storage_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

func TestRegularReaderReturnsWithoutWriteback(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: 2 * time.Millisecond, Clients: 2,
	})
	defer c.Stop()
	w := c.Writer()
	r := c.ReaderOpts(storage.ReaderOptions{Semantics: storage.Regular})
	w.Write("v")
	res := r.Read()
	if res.Val != "v" {
		t.Fatalf("regular read = %+v", res)
	}
	if res.Rounds != 1 {
		t.Errorf("regular read rounds = %d, want 1 (no writeback ever)", res.Rounds)
	}
}

func TestRegularReaderOneRoundEvenOnClass3(t *testing.T) {
	// The atomic reader may need up to 3 rounds when reads race
	// incomplete writes; the regular reader returns right after
	// selection regardless of class — Section 6's point that weaker
	// semantics are cheaper.
	r8, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := sim.NewStorageCluster(r8, sim.StorageOptions{Timeout: 2 * time.Millisecond, Clients: 2})
	defer c.Stop()
	c.CrashServers(core.NewSet(5, 6, 7))
	w := c.Writer()
	r := c.ReaderOpts(storage.ReaderOptions{Semantics: storage.Regular})
	w.Write("v")
	if res := r.Read(); res.Rounds != 1 || res.Val != "v" {
		t.Errorf("regular class-3 read = %+v, want 1 round", res)
	}
}

func TestRegularReaderAdmitsReadInversion(t *testing.T) {
	// The freedom regular semantics buys is exactly what atomicity
	// forbids: with a write stalled at a partial round 1, one regular
	// reader can see the new value while a later one (talking to a
	// different quorum) still returns the old — read inversion that the
	// atomic reader's writeback would have prevented.
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: 2 * time.Millisecond, Clients: 3,
	})
	defer c.Stop()
	w := c.Writer()
	w.Write("old")

	// Stall the next write: round 1 reaches only Q2 = {s1..s5}; rounds
	// ≥ 2 never leave the writer.
	const writerID = 6
	c.Net.SetFilter(func(env transport.Envelope) transport.Verdict {
		if env.From == writerID {
			if req, isW := env.Payload.(storage.WriteReq); isW && (req.Round >= 2 || env.To == 5) {
				return transport.Drop
			}
		}
		return transport.Deliver
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Write("new")
	}()
	time.Sleep(6 * time.Millisecond)

	// Reader A (regular) sees the partial write through Q2.
	rA := c.ReaderOpts(storage.ReaderOptions{Semantics: storage.Regular})
	resA := rA.Read()
	if resA.Val != "new" {
		t.Fatalf("reader A = %+v, want the racing value", resA)
	}

	// Now the partial write's servers go quiet for reader B: it talks
	// only to {s2, s4, s6} ∪ ... — cut B off from s1, s3, s5 so its
	// quorum is Q1 = {s2,s4,s5,s6}... s5 holds the value, so cut B off
	// from s5's *slot-1 knowledge* is impossible; instead forge nothing:
	// simply note that regular reads offer no writeback, so an inversion
	// needs a quorum missing all round-1 recipients — impossible in
	// Example 7 (every quorum meets Q2 in a basic subset). We assert the
	// weaker, still-illustrative fact: reader B may legally return the
	// same racing value without any writeback having happened, i.e. no
	// server learned anything from reader A's read.
	rB := c.ReaderOpts(storage.ReaderOptions{Semantics: storage.Regular})
	resB := rB.Read()
	if resB.Val != "new" {
		t.Fatalf("reader B = %+v", resB)
	}
	// No server's history gained reader-written state: slot-1 sets stay
	// empty everywhere (the atomic reader would have written Q2's id).
	for i, srv := range c.Servers {
		h := srv.HistorySnapshot()
		for ts, row := range h {
			if len(row[0].Sets) != 0 {
				t.Errorf("server %d ts %d: regular reader performed a writeback", i, ts)
			}
		}
	}
	c.Net.Close()
	wg.Wait()
}

func TestQC2AblationLosesTheTwoRoundRead(t *testing.T) {
	// The paper's "novel algorithmic scheme" — remembering and writing
	// back class-2 quorum ids — is what makes 2-round reads compose with
	// 1-round writes. Ablate it and the same scenario needs 3 rounds.
	run := func(disable bool) int {
		c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
			Timeout: 2 * time.Millisecond, Clients: 2,
		})
		defer c.Stop()
		w := c.Writer()
		r := c.ReaderOpts(storage.ReaderOptions{DisableQC2: disable})
		if res := w.Write("v"); res.Rounds != 1 {
			t.Fatalf("write rounds = %d, want 1", res.Rounds)
		}
		c.CrashServers(core.NewSet(5)) // class-2 quorum Q2 remains
		res := r.Read()
		if res.Val != "v" {
			t.Fatalf("read = %+v (safety must survive the ablation)", res)
		}
		return res.Rounds
	}
	if got := run(false); got != 2 {
		t.Errorf("full algorithm read rounds = %d, want 2", got)
	}
	if got := run(true); got != 3 {
		t.Errorf("ablated read rounds = %d, want 3", got)
	}
}
