package storage

import (
	"math/bits"
	"slices"

	"repro/internal/core"
)

// readState is the reader's view of the system during one read operation:
// the latest history received from each server plus the bookkeeping of
// Figure 7 (Responded, QC'2, highest_ts). All the read predicates of
// lines 1-9 are methods on it.
type readState struct {
	rqs  *core.RQS
	adv  core.Adversary
	elem []core.Set // enumeration of B, for valid3

	hist        map[core.ProcessID]History
	resp        *core.QuorumTracker // servers that acked at least once this read
	round       *core.QuorumTracker // servers that acked the current round
	respQuorums []core.Set          // quorums inside resp, refreshed once per round
	qc2prime    []core.Set          // class-2 quorums that responded in round 1
	highestTS   int64
	portClosed  bool // the transport shut down mid-read
	aborted     bool // the operation's deadline expired mid-read

	// pairs memoizes observedPairs for the current round: the histories
	// only change in queryRound, which invalidates it, and the
	// candidate-selection predicates re-enumerate the pairs many times
	// per round (highCand calls it once per candidate). The slice's
	// backing array is reused across rounds and reads.
	pairs      []Pair
	pairsValid bool
}

// slot returns the reader's local copy of server i's slot for (ts, rnd);
// unheard-from servers read as the initial state 〈〈0,⊥〉, ∅〉 exactly as
// the initialisation of line 10 prescribes.
func (st *readState) slot(i core.ProcessID, ts int64, rnd int) Slot {
	return st.hist[i].Slot(ts, rnd)
}

// readPred is read(c, i) (line 7): server i reported c in slot 1 or 2.
func (st *readState) readPred(c Pair, i core.ProcessID) bool {
	return st.slot(i, c.TS, 1).Pair == c || st.slot(i, c.TS, 2).Pair == c
}

// safe is safe(c) (line 8): the servers reporting c form a basic subset,
// so at least one benign server vouches for the pair — Byzantine servers
// alone cannot fabricate it.
func (st *readState) safe(c Pair) bool {
	var witnesses core.Set
	for v := uint64(st.rqs.Universe()); v != 0; v &= v - 1 {
		if i := bits.TrailingZeros64(v); st.readPred(c, i) {
			witnesses = witnesses.Add(i)
		}
	}
	return core.IsBasic(witnesses, st.adv)
}

// valid1 is valid1(c, Q) (line 3): a basic subset of Q reported c in
// slot 1. Checking the maximal witness set suffices because B is closed
// under subsets.
func (st *readState) valid1(c Pair, q core.Set) bool {
	var witnesses core.Set
	for v := uint64(q); v != 0; v &= v - 1 {
		if i := bits.TrailingZeros64(v); st.slot(i, c.TS, 1).Pair == c {
			witnesses = witnesses.Add(i)
		}
	}
	return core.IsBasic(witnesses, st.adv)
}

// valid2 is valid2(c, Q) (line 4): some server in Q reported c in slot 2.
func (st *readState) valid2(c Pair, q core.Set) bool {
	for v := uint64(q); v != 0; v &= v - 1 {
		if i := bits.TrailingZeros64(v); st.slot(i, c.TS, 2).Pair == c {
			return true
		}
	}
	return false
}

// valid3 is valid3(c, Q) (line 5): there are a class-2 quorum Q2 and an
// adversary set B with P3b(Q2, Q, B) such that every server in
// Q2 ∩ Q \ B reported c in slot 1 *with Q2 attached*. The ∃B is not
// monotone in B, so the full enumeration of B is scanned.
func (st *readState) valid3(c Pair, q core.Set) bool {
	for _, q2 := range st.rqs.QuorumsOfClass(core.Class2) {
		for _, b := range st.elem {
			if !st.rqs.P3b(q2, q, b) {
				continue
			}
			ok := true
			for v := uint64(q2.Intersect(q).Diff(b)); v != 0; v &= v - 1 {
				s := st.slot(bits.TrailingZeros64(v), c.TS, 1)
				if s.Pair != c || !s.HasSet(q2) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// invalid is invalid(c) (line 6): some responded quorum satisfies none of
// the valid predicates for c, or c's timestamp exceeds highest_ts. The
// responded quorums are precomputed once per round in respQuorums.
func (st *readState) invalid(c Pair) bool {
	if c.TS > st.highestTS {
		return true
	}
	for _, q := range st.respQuorums {
		if !st.valid1(c, q) && !st.valid2(c, q) && !st.valid3(c, q) {
			return true
		}
	}
	return false
}

// highCand is highCand(c) (line 9): every pair with a higher timestamp
// reported by any server is invalid.
func (st *readState) highCand(c Pair) bool {
	for _, other := range st.observedPairs() {
		if other.TS > c.TS && !st.invalid(other) {
			return false
		}
	}
	return true
}

// observedPairs collects every distinct pair appearing in slot 1 or 2 of
// any received history, plus the initial pair ⊥. The result is memoized
// until the next query round refreshes the histories. Dedup is a linear
// scan: honest executions observe a handful of distinct pairs, and even
// forged histories stay small in the experiments.
func (st *readState) observedPairs() []Pair {
	if st.pairsValid {
		return st.pairs
	}
	out := append(st.pairs[:0], Bottom)
	for _, h := range st.hist {
		for ts, row := range h {
			for rnd := 1; rnd <= 2; rnd++ {
				p := row[rnd-1].Pair
				if p.TS == ts && !p.IsBottom() && !containsPair(out, p) {
					out = append(out, p)
				}
			}
		}
	}
	// slices.SortFunc over sort.Slice: no reflect.Swapper allocation on
	// a path the candidate predicates hit once per round.
	slices.SortFunc(out, func(a, b Pair) int {
		switch {
		case a.TS > b.TS:
			return -1
		case a.TS < b.TS:
			return 1
		}
		return 0
	})
	st.pairs = out
	st.pairsValid = true
	return out
}

func containsPair(pairs []Pair, p Pair) bool {
	for _, q := range pairs {
		if q == p {
			return true
		}
	}
	return false
}

// computeHighestTS is line 29: the highest timestamp of any pair read.
func (st *readState) computeHighestTS() int64 {
	var hts int64
	for _, p := range st.observedPairs() {
		if p.TS > hts {
			hts = p.TS
		}
	}
	return hts
}

// selectCandidate is lines 33-35: C = {c : safe(c) ∧ highCand(c)};
// the selected pair is the one with the highest timestamp.
func (st *readState) selectCandidate() (Pair, bool) {
	// observedPairs is sorted by descending timestamp, so the first
	// member of C is the selection.
	for _, c := range st.observedPairs() {
		if st.safe(c) && st.highCand(c) {
			return c, true
		}
	}
	return Pair{}, false
}

// bcd1Any is the line-40 query: BCD(c, 1, R) for some R ∈ {1,2,3}
// (line 1): there are a class-1 quorum Q1 and a class-R quorum QR such
// that every server in Q1 ∩ QR reported c in slot R — and for R = 2, with
// QR among the attached class-2 quorum ids.
func (st *readState) bcd1Any(c Pair) bool {
	for rnd := 1; rnd <= 3; rnd++ {
		if st.bcd1(c, rnd) {
			return true
		}
	}
	return false
}

func (st *readState) bcd1(c Pair, rnd int) bool {
	for _, q1 := range st.rqs.QuorumsOfClass(core.Class1) {
		for _, qr := range st.rqs.QuorumsOfClass(core.QuorumClass(rnd)) {
			ok := true
			for v := uint64(q1.Intersect(qr)); v != 0; v &= v - 1 {
				s := st.slot(bits.TrailingZeros64(v), c.TS, rnd)
				if s.Pair != c || (rnd == 2 && !s.HasSet(qr)) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// bcd2 is BCD(c, 2, R) (line 2): the class-2 quorums Q2 that responded in
// round 1 such that some class-R quorum QR has every server of Q2 ∩ QR
// reporting c in slot R.
func (st *readState) bcd2(c Pair, rnd int) []core.Set {
	var out []core.Set
	for _, q2 := range st.qc2prime {
		found := false
		for _, qr := range st.rqs.QuorumsOfClass(core.QuorumClass(rnd)) {
			ok := true
			for v := uint64(q2.Intersect(qr)); v != 0; v &= v - 1 {
				if st.slot(bits.TrailingZeros64(v), c.TS, rnd).Pair != c {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if found {
			out = append(out, q2)
		}
	}
	return out
}
