package storage

import (
	"context"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// ReadResult reports how a read completed.
type ReadResult struct {
	Val    string
	TS     int64 // timestamp of the returned value (0 for ⊥)
	Rounds int   // total communication round-trips used
}

// Reader is a reader of the SWMR storage (Figure 7). Like the writer, a
// Reader runs one operation at a time.
type Reader struct {
	rqs        *core.RQS
	port       transport.Port
	timeout    time.Duration
	readNo     int64
	advElem    []core.Set // cached enumeration of B for valid3
	semantics  Semantics
	disableQC2 bool

	// Trackers reused across operations (one operation at a time).
	trRound *core.QuorumTracker // acks of the current query round
	trResp  *core.QuorumTracker // servers heard from at all this read
	trWB    *core.QuorumTracker // writeback acks
	timer   *time.Timer         // reused 2Δ timer (see resetTimer)

	// st is the per-operation read state, reused across operations (one
	// operation at a time): the history map and pair scratch keep their
	// allocations.
	st readState

	// retained holds the arena-aliased envelopes whose ReadAck histories
	// st.hist references. The histories stay live for the whole read
	// (candidate selection and the BCD checks walk them), so the arenas
	// recycle only at the start of the NEXT operation (drainStale).
	retained []transport.Envelope
}

// NewReader creates a reader. timeout is the paper's 2Δ; zero selects
// DefaultTimeout.
func NewReader(rqs *core.RQS, port transport.Port, timeout time.Duration) *Reader {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Reader{
		rqs:       rqs,
		port:      port,
		timeout:   timeout,
		advElem:   core.Elements(rqs.Adversary()),
		semantics: Atomic,
		trRound:   rqs.NewTracker(),
		trResp:    rqs.NewTracker(),
		trWB:      rqs.NewTracker(),
	}
}

// Read returns the current value of the storage (lines 20-49 of
// Figure 7): a regular-semantics phase that repeats rounds until a safe,
// highest candidate exists, then a BCD-guided writeback phase that
// enforces atomicity while preserving best-case latency.
func (r *Reader) Read() ReadResult {
	res, _ := r.ReadCtx(context.Background())
	return res
}

// ReadCtx is Read with a per-operation deadline: when ctx expires
// before the read can complete, the operation aborts and the context's
// error is returned — the chaos harness's liveness check. The reader
// remains usable after an abort.
func (r *Reader) ReadCtx(ctx context.Context) (ReadResult, error) {
	done := ctx.Done()
	r.readNo++
	r.drainStale()
	r.trResp.Reset()
	st := &r.st
	if st.hist == nil {
		st.rqs = r.rqs
		st.adv = r.rqs.Adversary()
		st.elem = r.advElem
		st.hist = make(map[core.ProcessID]History)
		st.resp = r.trResp
		st.round = r.trRound
	} else {
		clear(st.hist)
	}
	st.respQuorums = st.respQuorums[:0]
	st.qc2prime = st.qc2prime[:0]
	st.highestTS = 0
	st.portClosed = false
	st.aborted = false
	st.pairsValid = false

	rounds := 0
	var csel Pair
	for {
		rounds++
		r.queryRound(st, rounds, done)
		if st.aborted {
			return ReadResult{Val: NoValue, TS: 0, Rounds: rounds}, ctx.Err()
		}
		if st.portClosed {
			// The transport shut down mid-operation; report what little
			// is known instead of spinning (test harnesses close the
			// network under deliberately blocked reads).
			return ReadResult{Val: NoValue, TS: 0, Rounds: rounds}, nil
		}
		// The responded set only changes between rounds, so the quorums
		// it contains are computed once per round, not per predicate —
		// appended into buffers the predicates alone read, reused across
		// operations (the Sets themselves are shared immutable index
		// state; only the slice headers are recycled here).
		st.respQuorums = st.resp.AppendContained(st.respQuorums[:0], core.Class3)
		if rounds == 1 {
			st.highestTS = st.computeHighestTS()
			if !r.disableQC2 {
				st.qc2prime = st.round.AppendContained(st.qc2prime[:0], core.Class2)
			}
		}
		if c, ok := st.selectCandidate(); ok {
			csel = c
			break
		}
	}
	if len(r.retained) > 0 {
		// The candidate was selected out of arena-aliased histories; the
		// returned value must survive past the arenas' recycle at the
		// next operation's drainStale.
		csel.Val = strings.Clone(csel.Val)
	}

	// Regular semantics (Section 6): return the selection with no
	// writeback; read inversion becomes possible but regularity holds.
	if r.semantics == Regular {
		return ReadResult{Val: csel.Val, TS: csel.TS, Rounds: rounds}, nil
	}

	// Second part: atomicity via the Best-Case Detector (lines 40-49).
	if rounds == 1 {
		if st.bcd1Any(csel) {
			// Line 40: a class-1 quorum confirmed the pair; no writeback.
			return ReadResult{Val: csel.Val, TS: csel.TS, Rounds: 1}, nil
		}
		x1 := st.bcd2(csel, 1)
		x2 := st.bcd2(csel, 2)
		x3 := st.bcd2(csel, 3)
		if len(x1)+len(x2)+len(x3) > 0 {
			if len(x2)+len(x3) > 0 {
				// Line 42: the writer already informed a full quorum;
				// write back directly with round number 2.
				if _, aborted := r.writeback(2, csel, nil, false, done); aborted {
					return ReadResult{Val: NoValue, Rounds: 2}, ctx.Err()
				}
				return ReadResult{Val: csel.Val, TS: csel.TS, Rounds: 2}, nil
			}
			// Lines 43-47: R = 1. Write back the class-2 quorum ids and
			// hope a quorum from X confirms before the timer runs out.
			acked, aborted := r.writeback(1, csel, x1, true, done)
			if aborted {
				return ReadResult{Val: NoValue, Rounds: 2}, ctx.Err()
			}
			for _, q := range x1 {
				if q.SubsetOf(acked) {
					return ReadResult{Val: csel.Val, TS: csel.TS, Rounds: 2}, nil
				}
			}
			if _, aborted := r.writeback(2, csel, nil, false, done); aborted {
				return ReadResult{Val: NoValue, Rounds: 3}, ctx.Err()
			}
			return ReadResult{Val: csel.Val, TS: csel.TS, Rounds: 3}, nil
		}
	}

	// Line 49: generic two-round writeback.
	if _, aborted := r.writeback(1, csel, nil, false, done); aborted {
		return ReadResult{Val: NoValue, Rounds: rounds + 1}, ctx.Err()
	}
	if _, aborted := r.writeback(2, csel, nil, false, done); aborted {
		return ReadResult{Val: NoValue, Rounds: rounds + 2}, ctx.Err()
	}
	return ReadResult{Val: csel.Val, TS: csel.TS, Rounds: rounds + 2}, nil
}

// queryRound sends rd〈read_no, rnd〉 to all servers and waits until some
// quorum replied in this round and, in round 1, the 2Δ timer expired or
// every server replied (once the whole universe has answered, no later
// message can add information, so the timer wait is provably redundant).
func (r *Reader) queryRound(st *readState, rnd int, done <-chan struct{}) {
	transport.Broadcast(r.port, r.rqs.Universe(), ReadReq{ReadNo: r.readNo, Round: rnd})

	st.pairsValid = false // fresh acks will refresh the histories
	st.round.Reset()
	timer := resetTimer(&r.timer, r.timeout)
	timerDone := rnd != 1
	quorumOK := false

	for {
		if quorumOK && (timerDone || st.round.Complete()) {
			return
		}
		env, ok, timedOut, aborted := recvOrTimer(r.port, timer, done)
		if aborted {
			st.aborted = true
			return
		}
		if timedOut {
			timerDone = true
			continue
		}
		if !ok {
			st.portClosed = true
			return
		}
		ack, isAck := env.Payload.(ReadAck)
		if !isAck || ack.ReadNo != r.readNo {
			env.Release()
			continue
		}
		// Lines 50-53: any ack refreshes the local copy of the
		// server's history and the Responded bookkeeping; only
		// current-round acks advance the round. Quorum checks
		// rerun only when the ack set actually grew.
		st.hist[env.From] = ack.History
		if env.Aliased() {
			// The history's strings alias the envelope's receive arena;
			// hold the reference until the operation is over.
			r.retained = append(r.retained, env)
		}
		st.resp.Add(env.From)
		if ack.Round == rnd && st.round.Add(env.From) && !quorumOK {
			_, quorumOK = st.round.Contained(core.Class3)
		}
	}
}

// writeback implements lines 60-62: send wr〈ts, val, sets, round〉 to all
// servers and wait for a quorum of acks; with withTimer it additionally
// waits for the 2Δ timer (the line 43-45 dance), again cut short if the
// whole universe acks. It returns the servers that acked, and whether
// the wait was aborted by the done channel firing.
func (r *Reader) writeback(round int, c Pair, sets []core.Set, withTimer bool, done <-chan struct{}) (core.Set, bool) {
	req := WriteReq{TS: c.TS, Val: c.Val, Sets: sets, Round: round}
	transport.Broadcast(r.port, r.rqs.Universe(), req)

	r.trWB.Reset()
	timer := resetTimer(&r.timer, r.timeout)
	timerDone := !withTimer
	quorumOK := false

	for {
		if quorumOK && (timerDone || r.trWB.Complete()) {
			return r.trWB.Responded(), false
		}
		env, ok, timedOut, aborted := recvOrTimer(r.port, timer, done)
		if aborted {
			return r.trWB.Responded(), true
		}
		if timedOut {
			timerDone = true
			continue
		}
		if !ok {
			return r.trWB.Responded(), false
		}
		ack, isAck := env.Payload.(WriteAck)
		env.Release()
		if isAck && ack.TS == c.TS && ack.Round == round {
			if r.trWB.Add(env.From) && !quorumOK {
				_, quorumOK = r.trWB.Contained(core.Class3)
			}
		}
	}
}

func (r *Reader) drainStale() {
	drainPort(r.port)
	// The previous operation's histories die with its read state; the
	// envelopes retained for them can recycle their arenas now.
	for i := range r.retained {
		r.retained[i].Release()
	}
	r.retained = r.retained[:0]
}
