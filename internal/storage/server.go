package storage

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Hooks let the fault-injection layer turn a server Byzantine. All hooks
// are optional; a zero Hooks value is an honest server. Hooks run on the
// server's goroutine, outside the server's state locks (a hook may call
// back into accessors like HistorySnapshot). Hooks apply to every key of
// the keyspace; the chaos scenarios that use them address the legacy
// key-"" register.
type Hooks struct {
	// ForgeHistory, if non-nil, replaces the history sent in read acks
	// (state forging, as the Byzantine servers of the Theorem 3 proof do
	// when they revert to σ0 or fabricate σ1).
	ForgeHistory func() History
	// DropWrite, if non-nil and returning true, silently ignores a write
	// request ("forgetting" rounds, as in execution ex4 of Figure 4).
	DropWrite func(from core.ProcessID, req WriteReq) bool
	// DropRead, if non-nil and returning true, silently ignores a read
	// request.
	DropRead func(from core.ProcessID, req ReadReq) bool
	// ForgeMWRead, if non-nil, replaces the 〈tag, value〉 this server
	// reports in MWMR read acks — the Byzantine stale/forged-tag mode:
	// returning an old tag makes the server deny completed writes,
	// returning a fabricated 〈ts, writer-id〉 tag makes it invent them.
	// Whether either lie can reach a reader's return value is exactly
	// the class-3 intersection question the chaos campaigns test. On an
	// authenticated deployment the forged ack carries no valid
	// signatures (the hook bypasses the signing path, exactly like a
	// compromised server that does not hold the writers' keys), so
	// verifying clients discard it.
	ForgeMWRead func(from core.ProcessID) (Tag, string)
	// ReplayMWRead, if non-nil and returning true, makes the server
	// answer the MWMR read with a *captured* earlier ack — the first
	// one it ever served for that key — with only the Seq field
	// rewritten to match the current request. This is the Byzantine
	// replay attack against authenticated tags: the stale pair carries
	// a perfectly valid writer signature, and only the server
	// countersignature (which binds the requesting client's fresh seq)
	// exposes the reuse. Until a first ack has been captured for the
	// key the server answers honestly.
	ReplayMWRead func(from core.ProcessID) bool
}

// serverBurst bounds how many inbox envelopes the server drains per
// wakeup. One burst takes each touched shard's lock once per key-run
// and batches same-destination acks into one transport submission,
// which is what amortizes per-message locking when many clients hit
// one server. The bound keeps a flooded server from starving Stop.
//
// Fairness across keys: a burst is served strictly in inbox arrival
// order (FIFO), never grouped or reordered by key, so a hot key cannot
// starve requests for other keys — a cold key's request is answered in
// the same burst it arrives in, after at most the serverBurst-1
// envelopes queued ahead of it. TestBurstKeyFairness pins this bound.
const serverBurst = 64

// kvShardCount is the fixed number of shards of a server's keyspace.
// Requests for keys on different shards contend only on the shard
// mutex, never a global one; 16 shards keep per-shard maps small
// without measurable lookup overhead.
const kvShardCount = 16

// regState is the full per-key register state: the SWMR history of
// Figure 6 plus the tag-ordered MWMR register. States are created
// lazily on first touch; History stays nil until the first SWMR write
// (nil-safe: History.Slot and Clone treat nil as empty).
type regState struct {
	history History
	// histShared marks the history map as referenced by previously
	// handed-out read acks: the next write copies it instead of
	// mutating in place (copy-on-write), so read acks share one
	// snapshot between writes instead of deep-cloning per read.
	histShared bool
	mwTag      Tag    // MWMR register: current tag ...
	mwVal      string // ... and value, monotone in tag order
	// mwSig is the writer signature that arrived with the current
	// 〈mwTag, mwVal〉 pair (nil on unauthenticated deployments). Read
	// acks forward it so clients can re-verify the pair's provenance.
	// The slice is never mutated in place — a newer write replaces the
	// reference — so acks already queued keep a consistent snapshot.
	mwSig []byte
}

// kvShard is one shard of the keyspace: a mutex and the states of the
// keys that hash to it.
type kvShard struct {
	mu   sync.Mutex
	regs map[string]*regState
}

// reg returns the shard's state for key, creating it lazily. Callers
// hold sh.mu. The inserted map key is cloned: request keys decoded off
// the TCP path alias a recycled receive arena and must not outlive the
// envelope that carried them.
func (sh *kvShard) reg(key string) *regState {
	r := sh.regs[key]
	if r == nil {
		r = &regState{}
		sh.regs[strings.Clone(key)] = r
	}
	return r
}

// peek returns the shard's state for key without creating it — the
// staleness pre-check on writes must not let unverified requests
// populate the register map. Callers hold sh.mu.
func (sh *kvShard) peek(key string) *regState { return sh.regs[key] }

// shardOf maps a key to its shard (FNV-1a; deterministic so tests can
// construct same-shard and cross-shard key sets).
func shardOf(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % kvShardCount)
}

// mwState is a precomputed forged MWMR reply (phase 1 of handleBurst).
type mwState struct {
	tag Tag
	val string
}

// ackBucket accumulates one burst's replies to a single destination at
// a single hop depth, flushed through Port.SendBatch.
type ackBucket struct {
	to   core.ProcessID
	hop  int
	msgs []transport.Message
}

// syncBatch is one group-commit round's acks, parked until the
// syncer's next fdatasync covers the round's WAL records.
type syncBatch struct {
	acks []ackBucket
	n    int
}

// Server is one storage server. It hosts a keyspace of registers over
// a single port: per key, the SWMR history of Figure 6 and the
// tag-ordered MWMR register (mwmr.go), behind a sharded map with
// per-shard mutexes, created lazily on first touch. The key-less
// protocol clients (Writer/Reader, MWWriter/MWReader) address key "".
// Run processes its inbox until the port's inbox closes; Stop aborts
// earlier.
//
// The inbox is drained in bursts (up to serverBurst envelopes per
// wakeup): the burst executes in arrival order holding one shard lock
// at a time (consecutive same-shard requests — all of them, for
// single-key workloads — share one acquisition) and its acks are
// grouped per destination into batched sends.
type Server struct {
	id    core.ProcessID
	port  transport.Port
	hooks Hooks

	// Authenticated-deployment state (nil when auth is off — see
	// auth.go). The server verifies writer signatures before applying
	// writes, countersigns its read acks, and silently drops writes
	// whose signature fails (the sender is either Byzantine or outside
	// the deployment; an honest quorum still acks). authBuf and
	// replayCap are touched only by the server goroutine.
	signer       auth.Signer
	verifier     auth.Verifier
	authRejects  atomic.Uint64
	authBuf      []byte
	appendSigner auth.AppendSigner    // signer's append form, nil if unsupported
	sigSlab      []byte               // countersignature slab (see signAck)
	dmemo        digestMemo           // last value digest (bursts repeat one value)
	replayCap    map[string]MWReadAck // Hooks.ReplayMWRead capture, keyed by register

	shards [kvShardCount]kvShard

	// acks is the per-burst reply accumulator; buckets and their msgs
	// slices are reused across bursts (the transports do not retain
	// the payload slice past the SendBatch call). Only the server
	// goroutine touches it. roAcks accumulates the burst's MWMR read
	// acks, which flush at the end of the burst without waiting for
	// any group commit in flight: they never claim durability (the
	// Synced bit says exactly what survives a crash), so holding them
	// behind an fsync would only add latency.
	acks     []ackBucket
	acksUsed int
	roAcks   []ackBucket
	roUsed   int

	// Durability (nil for a volatile server — see durable.go). The wal
	// receives one record per applied mutation during phase 2. Group
	// commit is leader-style: at most one fdatasync is ever in flight,
	// and while it runs the server loop keeps draining its inbox,
	// accumulating every new burst's records and mutation acks into ONE
	// held batch (s.acks/burstLogged). When the syncer signals the
	// round complete, the held batch is handed over as the next round.
	// One disk flush therefore covers everything that arrived during
	// the previous flush — the classic group-commit pipeline — instead
	// of each small burst paying its own round. The invariant is an ack
	// horizon: no ack leaves while any record appended before it is
	// still un-synced, so acks never expose state a kill -9 could
	// erase. Bursts that touch a fully synced log (every burst of a
	// pure-read workload) flush inline.
	wal           *wal.Log
	walBuf        []byte // encode scratch (server goroutine only)
	snapBuf       []byte // compaction encode scratch (syncer only)
	walEncodeFail atomic.Bool
	maxSegments   int  // compaction trigger
	burstLogged   int  // records appended, not yet handed to the syncer
	syncBusy      bool // a commit round is in flight (run loop only)
	syncCh        chan syncBatch
	syncIdleCh    chan struct{}    // syncer → run loop: round complete
	syncFree      chan []ackBucket // recycled ack-bucket slices
	walDead       chan struct{}    // closed by the syncer on WAL failure
	syncerDone    chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewServer creates a server bound to the given port.
func NewServer(port transport.Port, hooks Hooks) *Server {
	s := &Server{
		id:    port.ID(),
		port:  port,
		hooks: hooks,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i].regs = make(map[string]*regState)
	}
	return s
}

// SetAuth installs the server's key material: its own signer for
// countersigning read acks and the deployment verifier for screening
// incoming writes. Must be called before Start.
func (s *Server) SetAuth(signer auth.Signer, verifier auth.Verifier) {
	s.signer, s.verifier = signer, verifier
	s.appendSigner, _ = signer.(auth.AppendSigner)
}

// signAck returns the server's countersignature over body. With an
// append-capable signer the signature is carved from a slab instead of
// allocated per ack — servers countersign every read ack they serve,
// so this is one allocation per ack on the hot path otherwise. Slab
// chunks are retained by the acks that carry them; a filled slab is
// simply dropped for a fresh one.
func (s *Server) signAck(body []byte) []byte {
	if s.appendSigner == nil {
		return s.signer.Sign(body)
	}
	if cap(s.sigSlab)-len(s.sigSlab) < 64 {
		s.sigSlab = make([]byte, 0, 4096)
	}
	n := len(s.sigSlab)
	s.sigSlab = s.appendSigner.AppendSign(s.sigSlab, body)
	return s.sigSlab[n:len(s.sigSlab):len(s.sigSlab)]
}

// AuthRejects returns how many write/CAS requests this server refused
// to apply because the writer signature failed verification. Safe for
// concurrent use.
func (s *Server) AuthRejects() uint64 { return s.authRejects.Load() }

// Start launches the server loop in its own goroutine.
func (s *Server) Start() {
	go s.run()
}

// Stop terminates the server loop and waits for it to exit. Safe for
// concurrent use: the stop channel closes exactly once. A durable
// server's log is released only after the loop has drained, so no
// in-flight burst can race the close.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	if s.wal != nil {
		s.wal.Close()
	}
}

// RegSnapshot is the captured state of one key's register.
type RegSnapshot struct {
	History History
	MWTag   Tag
	MWVal   string
	MWSig   []byte // writer signature of the pair (authenticated deployments)
}

// ServerState is a full keyspace snapshot, keyed by register key.
type ServerState map[string]RegSnapshot

// StateSnapshot deep-copies the server's entire keyspace, for carrying
// state across a scripted crash/restart and for assertions.
func (s *Server) StateSnapshot() ServerState {
	out := make(ServerState)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, reg := range sh.regs {
			out[key] = RegSnapshot{History: reg.history.Clone(), MWTag: reg.mwTag, MWVal: reg.mwVal, MWSig: bytes.Clone(reg.mwSig)}
		}
		sh.mu.Unlock()
	}
	return out
}

// SetState replaces the server's entire keyspace with a deep copy of
// st (the restart half of StateSnapshot).
func (s *Server) SetState(st ServerState) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.regs = make(map[string]*regState)
		sh.mu.Unlock()
	}
	for key, snap := range st {
		sh := &s.shards[shardOf(key)]
		sh.mu.Lock()
		sh.regs[key] = &regState{history: snap.History.Clone(), mwTag: snap.MWTag, mwVal: snap.MWVal, mwSig: bytes.Clone(snap.MWSig)}
		sh.mu.Unlock()
	}
}

// HistorySnapshot returns a deep copy of the server's current history
// for the legacy key-"" register, for assertions and Byzantine state
// capture. Legacy: keyspace-wide capture is StateSnapshot.
func (s *Server) HistorySnapshot() History {
	sh := &s.shards[shardOf("")]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if reg := sh.regs[""]; reg != nil {
		return reg.history.Clone()
	}
	return make(History)
}

// MWSnapshot returns the current tag and value of the legacy key-""
// MWMR register, for assertions on server state. Legacy: keyspace-wide
// capture is StateSnapshot.
func (s *Server) MWSnapshot() (Tag, string) {
	sh := &s.shards[shardOf("")]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if reg := sh.regs[""]; reg != nil {
		return reg.mwTag, reg.mwVal
	}
	return Tag{}, NoValue
}

// SetHistory overwrites the legacy key-"" register's history (used by
// fault injection to forge state transitions that a Byzantine process
// may perform). Legacy: keyspace-wide restore is SetState.
func (s *Server) SetHistory(h History) {
	sh := &s.shards[shardOf("")]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reg := sh.reg("")
	reg.history = h.Clone()
	reg.histShared = false
}

// SetMW overwrites the legacy key-"" MWMR register state (used with
// MWSnapshot to carry state across a scripted crash/restart, and by
// fault injection). Legacy: keyspace-wide restore is SetState.
func (s *Server) SetMW(tag Tag, val string) {
	sh := &s.shards[shardOf("")]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reg := sh.reg("")
	// Forged state has no provenance; any previously stored writer
	// signature no longer matches the pair.
	reg.mwTag, reg.mwVal, reg.mwSig = tag, val, nil
}

func (s *Server) run() {
	defer close(s.done)
	if s.wal != nil {
		s.syncCh = make(chan syncBatch, 1)
		s.syncIdleCh = make(chan struct{}, 1)
		s.syncFree = make(chan []ackBucket, 2)
		s.walDead = make(chan struct{})
		s.syncerDone = make(chan struct{})
		go s.syncer()
		// Runs before close(s.done): the syncer finishes its round
		// before Stop releases the log.
		defer func() { close(s.syncCh); <-s.syncerDone }()
	}
	var burst []transport.Envelope
	for {
		select {
		case <-s.stop:
			return
		case <-s.walDead: // nil (never ready) on a volatile server
			return
		case <-s.syncIdleCh: // nil (never ready) on a volatile server
			// The commit round completed and its acks are out. Hand
			// over whatever accumulated while it ran as the next round.
			s.syncBusy = false
			if s.burstLogged > 0 || s.acksUsed > 0 {
				s.burstLogged = 0
				if !s.enqueueSync() {
					return
				}
				s.syncBusy = true
			}
		case env, ok := <-s.port.Inbox():
			if !ok {
				return
			}
			burst = append(burst[:0], env)
			// Opportunistically drain what else is already queued, so a
			// contended server pays one lock round and one ack batch per
			// burst instead of per message.
		fill:
			for len(burst) < serverBurst {
				select {
				case env, ok := <-s.port.Inbox():
					if !ok {
						break fill
					}
					burst = append(burst, env)
				default:
					break fill
				}
			}
			if !s.handleBurst(burst) {
				// Durability failed: the server must not keep serving
				// (and acking) state its log cannot guarantee.
				return
			}
		}
	}
}

// handleBurst executes one drained burst: hooks run first (unlocked —
// they may call back into the server), then every surviving request is
// applied in arrival order holding one shard lock at a time (runs of
// same-shard requests share one acquisition), and finally the
// accumulated acks flush as per-destination batches — inline on a
// volatile server, or via the syncer's group commit on a durable one
// whose log has un-synced records. It reports false when the WAL
// failed: the acks are dropped (they would acknowledge non-durable
// state) and the caller stops the loop.
func (s *Server) handleBurst(burst []transport.Envelope) bool {
	// Phase 1: fault-injection hooks, outside the locks. Dropped
	// requests are nilled out; forged read acks are precomputed, one
	// hook call per surviving read, exactly as unbatched serving did.
	var forged []History
	var forgedMW []mwState
	var replay []bool
	hasForge := s.hooks.ForgeHistory != nil
	hasMWForge := s.hooks.ForgeMWRead != nil
	hasReplay := s.hooks.ReplayMWRead != nil
	for i := range burst {
		switch req := burst[i].Payload.(type) {
		case WriteReq:
			if s.hooks.DropWrite != nil && s.hooks.DropWrite(burst[i].From, req) {
				burst[i].Payload = nil
			}
		case ReadReq:
			if s.hooks.DropRead != nil && s.hooks.DropRead(burst[i].From, req) {
				burst[i].Payload = nil
			} else if hasForge {
				if forged == nil {
					forged = make([]History, len(burst))
				}
				forged[i] = s.hooks.ForgeHistory()
			}
		case MWReadReq:
			if hasMWForge {
				if forgedMW == nil {
					forgedMW = make([]mwState, len(burst))
				}
				tag, val := s.hooks.ForgeMWRead(burst[i].From)
				forgedMW[i] = mwState{tag: tag, val: val}
			}
			if hasReplay {
				if replay == nil {
					replay = make([]bool, len(burst))
				}
				replay[i] = s.hooks.ReplayMWRead(burst[i].From)
			}
		}
	}

	// Phase 2: apply the burst in arrival order. The currently-locked
	// shard is cached across iterations: a single-key (or single-shard)
	// burst — every key-less legacy workload — still pays exactly one
	// lock acquisition, while mixed-key bursts re-lock only at shard
	// boundaries, preserving FIFO fairness across keys.
	locked := -1
	lock := func(key string) *kvShard {
		si := shardOf(key)
		if si != locked {
			if locked >= 0 {
				s.shards[locked].mu.Unlock()
			}
			s.shards[si].mu.Lock()
			locked = si
		}
		return &s.shards[si]
	}
	for i := range burst {
		env := &burst[i]
		switch req := env.Payload.(type) {
		case WriteReq:
			if env.Aliased() {
				req.Val = strings.Clone(req.Val)
			}
			if applyWrite(lock(req.Key).reg(req.Key), req) && s.wal != nil {
				s.logMutation(req)
			}
			s.ack(env.From, env.Hop+1, WriteAck{TS: req.TS, Round: req.Round})
		case ReadReq:
			var h History
			if hasForge {
				h = forged[i]
			} else {
				// Share the live map as an immutable snapshot; the
				// next write copies before mutating.
				reg := lock(req.Key).reg(req.Key)
				reg.histShared = true
				h = reg.history
			}
			s.ack(env.From, env.Hop+1, ReadAck{ReadNo: req.ReadNo, Round: req.Round, History: h})
		case MWWriteReq:
			sh := lock(req.Key)
			cur := Tag{}
			if reg := sh.peek(req.Key); reg != nil {
				cur = reg.mwTag
			}
			if cur.Less(req.Tag) {
				// Verify only writes that would actually apply. A
				// superseded write mutates nothing whatever its signature
				// says, so acking it unverified admits nothing into the
				// register — and under write contention most concurrent
				// writes ARE superseded on arrival (of k racing tags a
				// server applies only the running maxima, ~ln k of them),
				// which keeps the signed write path near the unsigned
				// one's cost.
				if !s.verifyWrite(req.Key, req.Tag, req.Val, req.Sig) {
					// A write whose claimed writer did not sign it:
					// silently drop (no apply, no ack). Honest writers are
					// unaffected — their quorum completes at the servers
					// that verified.
					s.authRejects.Add(1)
					continue
				}
				if env.Aliased() {
					req.Val = strings.Clone(req.Val)
					req.Sig = bytes.Clone(req.Sig)
				}
				if applyMW(sh.reg(req.Key), req.Tag, req.Val, req.Sig) && s.wal != nil {
					s.logMutation(req)
				}
			}
			s.ack(env.From, env.Hop+1, MWWriteAck{Seq: req.Seq})
		case MWReadReq:
			if hasMWForge {
				// A Byzantine server may lie about Synced like it lies
				// about the pair; class-3 masking covers both. The forged
				// ack deliberately carries no signatures: the hook models
				// a compromised server process, which holds neither the
				// writers' keys (to sign the fabricated pair) nor a will
				// to countersign honestly — verifying clients discard it.
				s.ackNow(env.From, env.Hop+1, MWReadAck{Seq: req.Seq, Tag: forgedMW[i].tag, Val: forgedMW[i].val, Synced: true})
			} else if hasReplay && replay[i] && s.serveReplay(env, req) {
				// Served a captured stale ack with only Seq rewritten.
			} else if req.TagOnly {
				// A writer's tag query: no value, no signatures (see
				// MWReadReq.TagOnly — a lie here only inflates the
				// writer's next timestamp).
				reg := lock(req.Key).reg(req.Key)
				s.ackNow(env.From, env.Hop+1, MWReadAck{Seq: req.Seq, Tag: reg.mwTag, Synced: s.walSynced()})
			} else {
				reg := lock(req.Key).reg(req.Key)
				ack := MWReadAck{Seq: req.Seq, Tag: reg.mwTag, Val: reg.mwVal, Synced: s.walSynced(), WSig: reg.mwSig}
				if s.signer != nil {
					s.authBuf = ackBodyD(s.authBuf[:0], s.id, req.Seq, req.Key, ack.Tag, s.dmemo.of(ack.Val), ack.Synced)
					ack.SSig = s.signAck(s.authBuf)
				}
				if hasReplay {
					s.captureAck(req.Key, ack)
				}
				s.ackNow(env.From, env.Hop+1, ack)
			}
		case KVCASReq:
			// Conditional apply: install 〈Tag, Val〉 iff the register
			// still holds exactly the expected tag. Tags never revisit
			// a value (they are monotone and Expect < Tag), so at most
			// one same-Expect CAS can observe Applied=true here — the
			// quorum-intersection argument for at-most-one CAS winner
			// per version rests on this (see kv.go). Strict equality
			// also rejects a client re-CASing an expect it already won
			// (its retry proposes the same tag but the register moved).
			sh := lock(req.Key)
			reg := sh.peek(req.Key)
			cur := Tag{}
			if reg != nil {
				cur = reg.mwTag
			}
			applied := false
			if cur == req.Expect {
				// As for MWWriteReq: only a CAS that would install its
				// pair needs its signature checked — a mismatched Expect
				// no-ops regardless.
				if !s.verifyWrite(req.Key, req.Tag, req.Val, req.Sig) {
					s.authRejects.Add(1)
					continue
				}
				if env.Aliased() {
					req.Val = strings.Clone(req.Val)
					req.Sig = bytes.Clone(req.Sig)
				}
				reg = sh.reg(req.Key)
				applied = applyCAS(reg, req.Expect, req.Tag, req.Val, req.Sig)
				if applied && s.wal != nil {
					s.logMutation(req)
				}
			}
			ack := KVCASAck{Seq: req.Seq, Applied: applied}
			if reg != nil {
				ack.Tag, ack.Val = reg.mwTag, reg.mwVal
			}
			s.ack(env.From, env.Hop+1, ack)
		}
	}
	if locked >= 0 {
		s.shards[locked].mu.Unlock()
	}

	// Everything the keyspace (or the WAL buffer) retains from this
	// burst has been cloned or encoded above, so the envelopes' receive
	// arenas can recycle now — acks parked for a group commit carry only
	// server-owned state.
	for i := range burst {
		burst[i].Release()
	}

	// Read acks leave immediately, ahead of any group commit in
	// flight: what they expose is qualified by Synced, so no fsync has
	// to cover them. Reordering ahead of parked mutation acks is safe —
	// every client matches replies by sequence number.
	s.flushBuckets(s.roAcks, s.roUsed)
	s.roUsed = 0

	// Group commit: if this burst logged records, or a commit round is
	// in flight (so the keyspace may expose state whose records are
	// not yet durable), the burst's acks park until a covering
	// fdatasync. With a round already running they simply stay
	// accumulated in s.acks — the idle signal hands them over as one
	// batch, which is where the amortization comes from. Otherwise —
	// a volatile server, or any burst on a fully synced log — the acks
	// flush inline below. When the run loop (and so the syncer) is not
	// running — tests drive handleBurst directly — the commit happens
	// synchronously instead.
	if s.wal != nil && (s.burstLogged > 0 || s.syncBusy) {
		if s.syncCh != nil {
			if s.syncBusy {
				return true // held for the next round
			}
			s.burstLogged = 0
			if !s.enqueueSync() {
				return false
			}
			s.syncBusy = true
			return true
		}
		s.burstLogged = 0
		if !s.syncWAL() {
			for i := 0; i < s.acksUsed; i++ {
				s.acks[i].msgs = s.acks[i].msgs[:0]
			}
			s.acksUsed = 0
			return false
		}
	}

	// Phase 3: flush acks, one batched send per (destination, hop).
	s.flushBuckets(s.acks, s.acksUsed)
	s.acksUsed = 0
	return true
}

// verifyWrite checks the writer signature on an MWMR write or CAS
// apply against the claimed Tag.Writer. Zero-tag writebacks (the
// initial ⊥ pair, which applyMW ignores anyway) carry no signature
// and pass. Trivially true without a verifier. Server goroutine only.
func (s *Server) verifyWrite(key string, tag Tag, val string, sig []byte) bool {
	if s.verifier == nil || tag.IsZero() {
		return true
	}
	s.authBuf = tagBodyD(s.authBuf[:0], key, tag, s.dmemo.of(val))
	return s.verifier.Verify(tag.Writer, s.authBuf, sig)
}

// captureAck records the first honest read ack served for key, for
// Hooks.ReplayMWRead to re-serve later. The ack's Val/WSig are
// server-owned (cloned on apply), so retaining them is safe.
func (s *Server) captureAck(key string, ack MWReadAck) {
	if s.replayCap == nil {
		s.replayCap = make(map[string]MWReadAck)
	}
	if _, ok := s.replayCap[key]; !ok {
		s.replayCap[strings.Clone(key)] = ack
	}
}

// serveReplay re-serves the ack captured for the request's key with
// only the Seq field rewritten — the Byzantine replay attack. The
// writer signature on the stale pair is still perfectly valid; the
// server countersignature, which binds the *original* request's seq,
// is what fails verification at an authenticated client. Reports
// false when nothing has been captured for the key yet.
func (s *Server) serveReplay(env *transport.Envelope, req MWReadReq) bool {
	cap, ok := s.replayCap[req.Key]
	if !ok {
		return false
	}
	cap.Seq = req.Seq
	s.ackNow(env.From, env.Hop+1, cap)
	return true
}

// flushBuckets sends the first n accumulated buckets and resets their
// message slices for reuse.
func (s *Server) flushBuckets(buckets []ackBucket, n int) {
	for i := 0; i < n; i++ {
		b := &buckets[i]
		if len(b.msgs) == 1 {
			s.port.SendHop(b.to, b.msgs[0], b.hop)
		} else {
			s.port.SendBatch(b.to, b.msgs, b.hop)
		}
		b.msgs = b.msgs[:0]
	}
}

// addAck appends one reply to a bucket accumulator, grouping by
// destination and hop depth, reusing bucket capacity across bursts.
func addAck(buckets []ackBucket, used *int, to core.ProcessID, hop int, msg transport.Message) []ackBucket {
	for i := 0; i < *used; i++ {
		if buckets[i].to == to && buckets[i].hop == hop {
			buckets[i].msgs = append(buckets[i].msgs, msg)
			return buckets
		}
	}
	if *used < len(buckets) {
		b := &buckets[*used]
		b.to, b.hop = to, hop
		b.msgs = append(b.msgs[:0], msg)
	} else {
		buckets = append(buckets, ackBucket{to: to, hop: hop, msgs: []transport.Message{msg}})
	}
	*used++
	return buckets
}

// ack queues one reply on the burst's group-commit-gated flush: it
// leaves only once every record appended before it is durable.
func (s *Server) ack(to core.ProcessID, hop int, msg transport.Message) {
	s.acks = addAck(s.acks, &s.acksUsed, to, hop, msg)
}

// ackNow queues one reply on the burst's immediate flush (read acks,
// which carry their own durability qualifier).
func (s *Server) ackNow(to core.ProcessID, hop int, msg transport.Message) {
	s.roAcks = addAck(s.roAcks, &s.roUsed, to, hop, msg)
}

// walSynced reports whether every record appended to the WAL is
// already covered by an fdatasync — trivially true on a volatile
// server. Exactly when this holds, the keyspace state a read ack
// exposes is guaranteed to survive a kill -9.
func (s *Server) walSynced() bool {
	return s.wal == nil || (s.burstLogged == 0 && !s.syncBusy)
}

// enqueueSync hands the accumulated acks to the syncer as one commit
// round and swaps in a recycled (or nil) ack buffer. Only called with
// no round in flight, so the send never blocks on a busy syncer. It
// reports false when the WAL has already failed — the server must
// stop (dropping the acks, which would acknowledge non-durable state).
func (s *Server) enqueueSync() bool {
	batch := syncBatch{acks: s.acks, n: s.acksUsed}
	var fresh []ackBucket
	select {
	case fresh = <-s.syncFree:
	default:
	}
	s.acks, s.acksUsed = fresh, 0
	select {
	case s.syncCh <- batch:
		return true
	case <-s.walDead:
		return false
	}
}

// syncer is the durable server's group-commit goroutine: one commit
// round at a time — wal.Sync (one fdatasync covering every record
// appended so far, including any that landed after the round's acks
// were handed over), then flush the round's acks, then signal the run
// loop so it hands over the batch that accumulated meanwhile. While
// the fdatasync blocks, the server loop keeps serving — that overlap
// is what lets one disk flush amortize over many bursts. On a WAL
// failure it drops the round's acks and closes walDead, which stops
// the server loop: an ack must never acknowledge state the log cannot
// guarantee.
func (s *Server) syncer() {
	defer close(s.syncerDone)
	for batch := range s.syncCh {
		if !s.syncWAL() {
			close(s.walDead)
			for range s.syncCh { // unblock a producer mid-send
			}
			return
		}
		s.flushBatch(&batch)
		select {
		case s.syncIdleCh <- struct{}{}:
		default:
		}
	}
}

// flushBatch sends one round's acks (post-fsync) and recycles the
// bucket slice for the server loop.
func (s *Server) flushBatch(b *syncBatch) {
	s.flushBuckets(b.acks, b.n)
	select {
	case s.syncFree <- b.acks:
	default:
	}
}

// applyWrite implements lines 2-7 of Figure 6 against one key's
// register: for every round m ≤ rnd, store the pair unless a
// *different* pair already occupies the slot, and merge the class-2
// quorum ids into the final round's slot. Callers hold the register's
// shard mutex; if the current history map is shared with outstanding
// read acks it is copied first (the acks keep the old, now-immutable
// snapshot). It reports whether the request was a well-formed round
// (the WAL logs exactly those); re-applying the same request is a
// no-op, which is what makes log replay idempotent.
func applyWrite(reg *regState, req WriteReq) bool {
	if req.Round < 1 || req.Round > 3 {
		return false
	}
	if reg.histShared {
		reg.history = reg.history.Clone()
		reg.histShared = false
	}
	if reg.history == nil {
		reg.history = make(History)
	}
	pair := Pair{TS: req.TS, Val: req.Val}
	row := reg.history[req.TS]
	for m := 1; m <= req.Round; m++ {
		slot := row[m-1]
		if slot.Pair.IsBottom() || slot.Pair == pair {
			slot.Pair = pair
			if m == req.Round {
				slot = slot.addSet(req.Sets)
			}
			row[m-1] = slot
		}
	}
	reg.history[req.TS] = row
	return true
}

// applyMW applies one MWMR write: the register adopts 〈tag, val, sig〉
// only if tag strictly exceeds the current one. Reports whether the
// state changed. Monotonicity makes replay idempotent: a logged tag
// replayed onto a register that already adopted it (or moved past it)
// is a no-op. Callers hold the shard mutex. sig must be an immutable
// slice the register may retain (nil when auth is off).
func applyMW(reg *regState, tag Tag, val string, sig []byte) bool {
	if reg.mwTag.Less(tag) {
		reg.mwTag, reg.mwVal, reg.mwSig = tag, val, sig
		return true
	}
	return false
}

// applyCAS conditionally applies one CAS: install 〈tag, val, sig〉 iff
// the register still holds exactly expect. Reports whether it applied.
// Tags never revisit a value, so a replayed CAS whose effect is
// already in the register finds mwTag == tag ≠ expect and no-ops.
// Callers hold the shard mutex.
func applyCAS(reg *regState, expect, tag Tag, val string, sig []byte) bool {
	if reg.mwTag == expect {
		reg.mwTag, reg.mwVal, reg.mwSig = tag, val, sig
		return true
	}
	return false
}
