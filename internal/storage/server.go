package storage

import (
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
)

// Hooks let the fault-injection layer turn a server Byzantine. All hooks
// are optional; a zero Hooks value is an honest server. Hooks run on the
// server's goroutine, outside the server's state lock (a hook may call
// back into accessors like HistorySnapshot).
type Hooks struct {
	// ForgeHistory, if non-nil, replaces the history sent in read acks
	// (state forging, as the Byzantine servers of the Theorem 3 proof do
	// when they revert to σ0 or fabricate σ1).
	ForgeHistory func() History
	// DropWrite, if non-nil and returning true, silently ignores a write
	// request ("forgetting" rounds, as in execution ex4 of Figure 4).
	DropWrite func(from core.ProcessID, req WriteReq) bool
	// DropRead, if non-nil and returning true, silently ignores a read
	// request.
	DropRead func(from core.ProcessID, req ReadReq) bool
	// ForgeMWRead, if non-nil, replaces the 〈tag, value〉 this server
	// reports in MWMR read acks — the Byzantine stale/forged-tag mode:
	// returning an old tag makes the server deny completed writes,
	// returning a fabricated 〈ts, writer-id〉 tag makes it invent them.
	// Whether either lie can reach a reader's return value is exactly
	// the class-3 intersection question the chaos campaigns test.
	ForgeMWRead func(from core.ProcessID) (Tag, string)
}

// serverBurst bounds how many inbox envelopes the server drains per
// wakeup. One burst takes the state lock once and batches
// same-destination acks into one transport submission, which is what
// amortizes per-message locking when many clients hit one server. The
// bound keeps a flooded server from starving Stop.
const serverBurst = 64

// mwState is a precomputed forged MWMR reply (phase 1 of handleBurst).
type mwState struct {
	tag Tag
	val string
}

// ackBucket accumulates one burst's replies to a single destination at
// a single hop depth, flushed through Port.SendBatch.
type ackBucket struct {
	to   core.ProcessID
	hop  int
	msgs []transport.Message
}

// Server is one storage server. It hosts both registers of the
// package over a single port: the SWMR history of Figure 6 and the
// tag-ordered MWMR register (mwmr.go). Run processes its inbox until
// the port's inbox closes; Stop aborts earlier.
//
// The inbox is drained in bursts (up to serverBurst envelopes per
// wakeup): the whole burst executes under one state-lock acquisition
// and its acks are grouped per destination into batched sends.
type Server struct {
	id    core.ProcessID
	port  transport.Port
	hooks Hooks

	mu      sync.Mutex
	history History
	// histShared marks the history map as referenced by previously
	// handed-out read acks: the next write copies it instead of
	// mutating in place (copy-on-write), so read acks share one
	// snapshot between writes instead of deep-cloning per read.
	histShared bool
	mwTag      Tag    // MWMR register: current tag ...
	mwVal      string // ... and value, monotone in tag order

	// acks is the per-burst reply accumulator; buckets and their msgs
	// slices are reused across bursts (the transports do not retain
	// the payload slice past the SendBatch call).
	acks     []ackBucket
	acksUsed int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewServer creates a server bound to the given port.
func NewServer(port transport.Port, hooks Hooks) *Server {
	return &Server{
		id:      port.ID(),
		port:    port,
		hooks:   hooks,
		history: make(History),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the server loop in its own goroutine.
func (s *Server) Start() {
	go s.run()
}

// Stop terminates the server loop and waits for it to exit. Safe for
// concurrent use: the stop channel closes exactly once.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// HistorySnapshot returns a deep copy of the server's current history,
// for assertions and Byzantine state capture.
func (s *Server) HistorySnapshot() History {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.history.Clone()
}

// MWSnapshot returns the MWMR register's current tag and value, for
// assertions on server state.
func (s *Server) MWSnapshot() (Tag, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mwTag, s.mwVal
}

// SetHistory overwrites the server's state (used by fault injection to
// forge state transitions that a Byzantine process may perform).
func (s *Server) SetHistory(h History) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = h.Clone()
	s.histShared = false
}

// SetMW overwrites the MWMR register state (used with MWSnapshot to
// carry state across a scripted crash/restart, and by fault injection).
func (s *Server) SetMW(tag Tag, val string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mwTag, s.mwVal = tag, val
}

func (s *Server) run() {
	defer close(s.done)
	var burst []transport.Envelope
	for {
		select {
		case <-s.stop:
			return
		case env, ok := <-s.port.Inbox():
			if !ok {
				return
			}
			burst = append(burst[:0], env)
			// Opportunistically drain what else is already queued, so a
			// contended server pays one lock round and one ack batch per
			// burst instead of per message.
		fill:
			for len(burst) < serverBurst {
				select {
				case env, ok := <-s.port.Inbox():
					if !ok {
						break fill
					}
					burst = append(burst, env)
				default:
					break fill
				}
			}
			s.handleBurst(burst)
		}
	}
}

// handleBurst executes one drained burst: hooks run first (unlocked —
// they may call back into the server), then every surviving request is
// applied under a single state-lock acquisition, then the accumulated
// acks flush as per-destination batches.
func (s *Server) handleBurst(burst []transport.Envelope) {
	// Phase 1: fault-injection hooks, outside the lock. Dropped
	// requests are nilled out; forged read acks are precomputed, one
	// hook call per surviving read, exactly as unbatched serving did.
	var forged []History
	var forgedMW []mwState
	hasForge := s.hooks.ForgeHistory != nil
	hasMWForge := s.hooks.ForgeMWRead != nil
	for i := range burst {
		switch req := burst[i].Payload.(type) {
		case WriteReq:
			if s.hooks.DropWrite != nil && s.hooks.DropWrite(burst[i].From, req) {
				burst[i].Payload = nil
			}
		case ReadReq:
			if s.hooks.DropRead != nil && s.hooks.DropRead(burst[i].From, req) {
				burst[i].Payload = nil
			} else if hasForge {
				if forged == nil {
					forged = make([]History, len(burst))
				}
				forged[i] = s.hooks.ForgeHistory()
			}
		case MWReadReq:
			if hasMWForge {
				if forgedMW == nil {
					forgedMW = make([]mwState, len(burst))
				}
				tag, val := s.hooks.ForgeMWRead(burst[i].From)
				forgedMW[i] = mwState{tag: tag, val: val}
			}
		}
	}

	// Phase 2: apply the burst under one lock acquisition.
	s.mu.Lock()
	for i := range burst {
		env := &burst[i]
		switch req := env.Payload.(type) {
		case WriteReq:
			s.applyWrite(req)
			s.ack(env.From, env.Hop+1, WriteAck{TS: req.TS, Round: req.Round})
		case ReadReq:
			var h History
			if hasForge {
				h = forged[i]
			} else {
				// Share the live map as an immutable snapshot; the
				// next write copies before mutating.
				s.histShared = true
				h = s.history
			}
			s.ack(env.From, env.Hop+1, ReadAck{ReadNo: req.ReadNo, Round: req.Round, History: h})
		case MWWriteReq:
			if s.mwTag.Less(req.Tag) {
				s.mwTag, s.mwVal = req.Tag, req.Val
			}
			s.ack(env.From, env.Hop+1, MWWriteAck{Seq: req.Seq})
		case MWReadReq:
			if hasMWForge {
				s.ack(env.From, env.Hop+1, MWReadAck{Seq: req.Seq, Tag: forgedMW[i].tag, Val: forgedMW[i].val})
			} else {
				s.ack(env.From, env.Hop+1, MWReadAck{Seq: req.Seq, Tag: s.mwTag, Val: s.mwVal})
			}
		}
	}
	s.mu.Unlock()

	// Phase 3: flush acks, one batched send per (destination, hop).
	for i := 0; i < s.acksUsed; i++ {
		b := &s.acks[i]
		if len(b.msgs) == 1 {
			s.port.SendHop(b.to, b.msgs[0], b.hop)
		} else {
			s.port.SendBatch(b.to, b.msgs, b.hop)
		}
		b.msgs = b.msgs[:0]
	}
	s.acksUsed = 0
}

// ack queues one reply for the burst's flush phase, grouping by
// destination and hop depth.
func (s *Server) ack(to core.ProcessID, hop int, msg transport.Message) {
	for i := 0; i < s.acksUsed; i++ {
		if s.acks[i].to == to && s.acks[i].hop == hop {
			s.acks[i].msgs = append(s.acks[i].msgs, msg)
			return
		}
	}
	if s.acksUsed < len(s.acks) {
		b := &s.acks[s.acksUsed]
		b.to, b.hop = to, hop
		b.msgs = append(b.msgs[:0], msg)
	} else {
		s.acks = append(s.acks, ackBucket{to: to, hop: hop, msgs: []transport.Message{msg}})
	}
	s.acksUsed++
}

// applyWrite implements lines 2-7 of Figure 6: for every round m ≤ rnd,
// store the pair unless a *different* pair already occupies the slot, and
// merge the class-2 quorum ids into the final round's slot. Callers hold
// s.mu; if the current history map is shared with outstanding read acks
// it is copied first (the acks keep the old, now-immutable snapshot).
func (s *Server) applyWrite(req WriteReq) {
	if req.Round < 1 || req.Round > 3 {
		return
	}
	if s.histShared {
		s.history = s.history.Clone()
		s.histShared = false
	}
	pair := Pair{TS: req.TS, Val: req.Val}
	row := s.history[req.TS]
	for m := 1; m <= req.Round; m++ {
		slot := row[m-1]
		if slot.Pair.IsBottom() || slot.Pair == pair {
			slot.Pair = pair
			if m == req.Round {
				slot = slot.addSet(req.Sets)
			}
			row[m-1] = slot
		}
	}
	s.history[req.TS] = row
}
