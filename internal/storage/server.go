package storage

import (
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
)

// Hooks let the fault-injection layer turn a server Byzantine. All hooks
// are optional; a zero Hooks value is an honest server. Hooks run on the
// server's goroutine.
type Hooks struct {
	// ForgeHistory, if non-nil, replaces the history sent in read acks
	// (state forging, as the Byzantine servers of the Theorem 3 proof do
	// when they revert to σ0 or fabricate σ1).
	ForgeHistory func() History
	// DropWrite, if non-nil and returning true, silently ignores a write
	// request ("forgetting" rounds, as in execution ex4 of Figure 4).
	DropWrite func(from core.ProcessID, req WriteReq) bool
	// DropRead, if non-nil and returning true, silently ignores a read
	// request.
	DropRead func(from core.ProcessID, req ReadReq) bool
}

// Server is one storage server. It hosts both registers of the
// package over a single port: the SWMR history of Figure 6 and the
// tag-ordered MWMR register (mwmr.go). Run processes its inbox until
// the port's inbox closes; Stop aborts earlier.
type Server struct {
	id    core.ProcessID
	port  transport.Port
	hooks Hooks

	mu      sync.Mutex
	history History
	mwTag   Tag    // MWMR register: current tag ...
	mwVal   string // ... and value, monotone in tag order

	stop chan struct{}
	done chan struct{}
}

// NewServer creates a server bound to the given port.
func NewServer(port transport.Port, hooks Hooks) *Server {
	return &Server{
		id:      port.ID(),
		port:    port,
		hooks:   hooks,
		history: make(History),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the server loop in its own goroutine.
func (s *Server) Start() {
	go s.run()
}

// Stop terminates the server loop and waits for it to exit.
func (s *Server) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// HistorySnapshot returns a deep copy of the server's current history,
// for assertions and Byzantine state capture.
func (s *Server) HistorySnapshot() History {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.history.Clone()
}

// MWSnapshot returns the MWMR register's current tag and value, for
// assertions on server state.
func (s *Server) MWSnapshot() (Tag, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mwTag, s.mwVal
}

// SetHistory overwrites the server's state (used by fault injection to
// forge state transitions that a Byzantine process may perform).
func (s *Server) SetHistory(h History) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = h.Clone()
}

func (s *Server) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case env, ok := <-s.port.Inbox():
			if !ok {
				return
			}
			s.handle(env)
		}
	}
}

func (s *Server) handle(env transport.Envelope) {
	switch req := env.Payload.(type) {
	case WriteReq:
		if s.hooks.DropWrite != nil && s.hooks.DropWrite(env.From, req) {
			return
		}
		s.applyWrite(req)
		s.port.SendHop(env.From, WriteAck{TS: req.TS, Round: req.Round}, env.Hop+1)
	case ReadReq:
		if s.hooks.DropRead != nil && s.hooks.DropRead(env.From, req) {
			return
		}
		h := s.replyHistory()
		s.port.SendHop(env.From, ReadAck{ReadNo: req.ReadNo, Round: req.Round, History: h}, env.Hop+1)
	case MWWriteReq:
		s.mu.Lock()
		if s.mwTag.Less(req.Tag) {
			s.mwTag, s.mwVal = req.Tag, req.Val
		}
		s.mu.Unlock()
		s.port.SendHop(env.From, MWWriteAck{Seq: req.Seq}, env.Hop+1)
	case MWReadReq:
		s.mu.Lock()
		tag, val := s.mwTag, s.mwVal
		s.mu.Unlock()
		s.port.SendHop(env.From, MWReadAck{Seq: req.Seq, Tag: tag, Val: val}, env.Hop+1)
	}
}

// applyWrite implements lines 2-7 of Figure 6: for every round m ≤ rnd,
// store the pair unless a *different* pair already occupies the slot, and
// merge the class-2 quorum ids into the final round's slot.
func (s *Server) applyWrite(req WriteReq) {
	if req.Round < 1 || req.Round > 3 {
		return
	}
	pair := Pair{TS: req.TS, Val: req.Val}
	s.mu.Lock()
	defer s.mu.Unlock()
	row := s.history[req.TS]
	for m := 1; m <= req.Round; m++ {
		slot := row[m-1]
		if slot.Pair.IsBottom() || slot.Pair == pair {
			slot.Pair = pair
			if m == req.Round {
				slot = slot.addSet(req.Sets)
			}
			row[m-1] = slot
		}
	}
	s.history[req.TS] = row
}

func (s *Server) replyHistory() History {
	if s.hooks.ForgeHistory != nil {
		return s.hooks.ForgeHistory()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.history.Clone()
}
