package storage_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestServerStopConcurrent pins the Stop contract: any number of
// concurrent Stop calls close the stop channel exactly once (the old
// select/default pattern let two callers both pass the guard and
// double-close, panicking).
func TestServerStopConcurrent(t *testing.T) {
	net := transport.NewNetwork(1)
	defer net.Close()
	srv := storage.NewServer(net.Port(0), storage.Hooks{})
	srv.Start()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Stop()
		}()
	}
	wg.Wait()
}

// TestClusterStopConcurrent drives the same race through the sim
// facade: concurrent cluster shutdowns must not panic the servers.
func TestClusterStopConcurrent(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Stop()
		}()
	}
	wg.Wait()
}
