package storage_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/sim"
	"repro/internal/storage"
)

// threshold8 is an RQS with three genuinely distinct quorum classes:
// n=8, t=3, r=2, q=1, k=1 — class-1 quorums have 7 servers, class-2 six,
// class-3 five, tolerating one Byzantine server.
func threshold8(t *testing.T) *core.RQS {
	t.Helper()
	r, err := core.NewThresholdRQS(core.ThresholdParams{N: 8, T: 3, R: 2, Q: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{Timeout: 2 * time.Millisecond})
	defer c.Stop()
	w, r := c.Writer(), c.Reader()

	if res := r.Read(); res.Val != storage.NoValue || res.TS != 0 {
		t.Errorf("empty read = %+v, want ⊥", res)
	}
	wres := w.Write("alpha")
	if wres.TS != 1 {
		t.Errorf("first write ts = %d", wres.TS)
	}
	rres := r.Read()
	if rres.Val != "alpha" || rres.TS != 1 {
		t.Errorf("read = %+v, want alpha/1", rres)
	}
	w.Write("beta")
	if rres := r.Read(); rres.Val != "beta" {
		t.Errorf("read = %+v, want beta", rres)
	}
}

func TestBestCaseLatenciesByClass(t *testing.T) {
	// Theorem 9: the algorithm is (m, QCm)-fast. With n=8, t=3, r=2,
	// q=1: crash 0/2/3 servers to leave exactly a class-1/2/3 quorum of
	// correct servers, and observe 1/2/3-round writes and reads.
	tests := []struct {
		name       string
		crash      core.Set
		wantRounds int
	}{
		{"class1 all alive", core.EmptySet, 1},
		{"class2 two crashed", core.NewSet(6, 7), 2},
		{"class3 three crashed", core.NewSet(5, 6, 7), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := sim.NewStorageCluster(threshold8(t), sim.StorageOptions{Timeout: 2 * time.Millisecond})
			defer c.Stop()
			c.CrashServers(tt.crash)
			w, r := c.Writer(), c.Reader()

			wres := w.Write("v")
			if wres.Rounds != tt.wantRounds {
				t.Errorf("write rounds = %d, want %d", wres.Rounds, tt.wantRounds)
			}
			rres := r.Read()
			if rres.Val != "v" {
				t.Fatalf("read = %+v, want v", rres)
			}
			if rres.Rounds > tt.wantRounds {
				t.Errorf("read rounds = %d, want ≤ %d", rres.Rounds, tt.wantRounds)
			}
		})
	}
}

func TestExample7TwoRoundReadAfterFastWrite(t *testing.T) {
	// Figure 4 flavour: a 1-round write through the class-1 quorum, then
	// s6 disappears, leaving class-2 quorum Q2 = {s1..s5}. The read needs
	// the QC'2 writeback machinery (lines 43-46) and completes in 2
	// rounds.
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{Timeout: 2 * time.Millisecond})
	defer c.Stop()
	w, r := c.Writer(), c.Reader()

	wres := w.Write("one")
	if wres.Rounds != 1 {
		t.Fatalf("write rounds = %d, want 1 (class-1 quorum alive)", wres.Rounds)
	}
	c.CrashServers(core.NewSet(5)) // s6
	rres := r.Read()
	if rres.Val != "one" {
		t.Fatalf("read = %+v, want one", rres)
	}
	if rres.Rounds != 2 {
		t.Errorf("read rounds = %d, want 2", rres.Rounds)
	}
}

func TestByzantineServerCannotFabricateValues(t *testing.T) {
	// A single Byzantine server ({s1} ∈ B) forges a history claiming a
	// huge timestamp. safe() requires a basic subset of witnesses, so the
	// fabricated pair must never be returned; moreover highCand forces
	// the reader to look past it. (s1 rather than s2: every quorum of
	// Example 7 contains s2, so liveness requires s2 correct.)
	forged := storage.History{
		999: {0: storage.Slot{Pair: storage.Pair{TS: 999, Val: "evil"}},
			1: storage.Slot{Pair: storage.Pair{TS: 999, Val: "evil"}}},
	}
	hooks := map[core.ProcessID]storage.Hooks{
		0: {ForgeHistory: func() storage.History { return forged.Clone() }},
	}
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: 2 * time.Millisecond,
		Hooks:   hooks,
	})
	defer c.Stop()
	w, r := c.Writer(), c.Reader()

	w.Write("honest")
	res := r.Read()
	if res.Val != "honest" || res.TS != 1 {
		t.Errorf("read = %+v, want the honest value", res)
	}
}

func TestByzantineServerDroppingWrites(t *testing.T) {
	// A Byzantine server (s3) that ignores all writes (but answers reads
	// with its stale state) must not prevent progress or atomicity: the
	// class-1 quorum Q1 = {s2,s4,s5,s6} stays fully correct.
	hooks := map[core.ProcessID]storage.Hooks{
		2: {DropWrite: func(core.ProcessID, storage.WriteReq) bool { return true }},
	}
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: 2 * time.Millisecond,
		Hooks:   hooks,
	})
	defer c.Stop()
	w, r := c.Writer(), c.Reader()
	w.Write("x")
	w.Write("y")
	if res := r.Read(); res.Val != "y" {
		t.Errorf("read = %+v, want y", res)
	}
}

func TestSequentialReadersObserveMonotoneTimestamps(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: 2 * time.Millisecond, Clients: 3,
	})
	defer c.Stop()
	w := c.Writer()
	r1, r2 := c.Reader(), c.Reader()
	var last int64
	for i := 0; i < 5; i++ {
		w.Write("v")
		a := r1.Read()
		b := r2.Read()
		if a.TS < last || b.TS < a.TS {
			t.Fatalf("timestamps regressed: last=%d a=%d b=%d", last, a.TS, b.TS)
		}
		last = b.TS
	}
}

func TestConcurrentAtomicityStress(t *testing.T) {
	// The core safety test: a writer and two readers hammer the storage
	// concurrently while server s1 is Byzantine (forging stale state);
	// the recorded history must be atomic.
	stale := storage.History{}
	hooks := map[core.ProcessID]storage.Hooks{
		0: {ForgeHistory: func() storage.History { return stale.Clone() }},
	}
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: time.Millisecond, Clients: 3, Hooks: hooks,
	})
	defer c.Stop()

	rec := histcheck.NewRecorder()
	const ops = 25
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := c.Writer()
		for i := 0; i < ops; i++ {
			inv := time.Now()
			res := w.Write("v")
			rec.Record(histcheck.Op{Kind: histcheck.Write, Client: "w", TS: res.TS, Inv: inv, Resp: time.Now()})
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		r := c.Reader()
		name := string(rune('a' + g))
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				inv := time.Now()
				res := r.Read()
				rec.Record(histcheck.Op{Kind: histcheck.Read, Client: name, TS: res.TS, Inv: inv, Resp: time.Now()})
			}
		}()
	}
	wg.Wait()
	if v := rec.Check(); v != nil {
		t.Fatalf("atomicity violated: %v", v)
	}
}

func TestAsynchronousLinksStillAtomic(t *testing.T) {
	// Slow (but reliable) links to two servers: operations degrade but
	// stay correct — indulgence in action.
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{
		Timeout: time.Millisecond, Clients: 2,
	})
	defer c.Stop()
	for _, srv := range []core.ProcessID{4, 5} {
		for client := 6; client < 8; client++ {
			c.Net.SetLinkDelay(srv, client, 20*time.Millisecond)
			c.Net.SetLinkDelay(client, srv, 20*time.Millisecond)
		}
	}
	w, r := c.Writer(), c.Reader()
	w.Write("slow")
	if res := r.Read(); res.Val != "slow" {
		t.Errorf("read = %+v, want slow", res)
	}
}

func TestWriterTimestampsIncrease(t *testing.T) {
	c := sim.NewStorageCluster(core.Example7RQS(), sim.StorageOptions{Timeout: time.Millisecond})
	defer c.Stop()
	w := c.Writer()
	for i := int64(1); i <= 3; i++ {
		if res := w.Write("v"); res.TS != i {
			t.Errorf("write %d: ts = %d", i, res.TS)
		}
	}
	if w.Timestamp() != 3 {
		t.Errorf("Timestamp() = %d", w.Timestamp())
	}
}
