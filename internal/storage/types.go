// Package storage implements the paper's Byzantine-resilient SWMR atomic
// storage (Section 3) — a writer (Figure 5), servers (Figure 6) and
// readers (Figure 7) built over a refined quorum system — plus an MWMR
// (multi-writer multi-reader) variant layered on the same servers and
// quorum engine (mwmr.go).
//
// The SWMR algorithm is (m, QCm)-fast for m ∈ {1,2,3}: a synchronous,
// uncontended operation completes in one round if a class-1 quorum of
// correct servers responds, two rounds for class 2, three rounds
// otherwise. No data authentication is used.
//
// The MWMR variant is an asynchronous, crash-tolerant ABD-style
// emulation over the system's class-3 quorums: writes are ordered by
// 〈timestamp, writer-id〉 tags, every write runs a read phase to
// discover the maximum tag before storing, and reads complete in a
// single round-trip when a full quorum reports the same tag.
//
// Conventions: servers occupy process IDs 0..n-1 (matching the RQS
// universe); clients use IDs ≥ n. One storage.Server hosts both
// registers over a single port.
package storage

import (
	"fmt"

	"repro/internal/core"
)

// NoValue is the initial value ⊥ of the storage; it is outside the domain
// of valid written values.
const NoValue = ""

// Pair is a timestamp/value pair 〈ts, val〉. The zero Pair is 〈0, ⊥〉.
type Pair struct {
	TS  int64
	Val string
}

// Bottom is the initial pair 〈0, ⊥〉.
var Bottom = Pair{}

// IsBottom reports whether p is the initial pair.
func (p Pair) IsBottom() bool { return p == Bottom }

// String renders the pair.
func (p Pair) String() string {
	if p.IsBottom() {
		return "〈0,⊥〉"
	}
	return fmt.Sprintf("〈%d,%q〉", p.TS, p.Val)
}

// Slot is one round-slot of a server's history for one timestamp:
// the stored pair plus the set of class-2 quorum ids attached to it
// (history[ts, rnd].pair and history[ts, rnd].sets in Figure 6).
type Slot struct {
	Pair Pair
	Sets []core.Set
}

// HasSet reports whether q ∈ slot.Sets.
func (s Slot) HasSet(q core.Set) bool {
	for _, x := range s.Sets {
		if x == q {
			return true
		}
	}
	return false
}

// addSet returns the slot with q added to Sets if absent.
func (s Slot) addSet(qs []core.Set) Slot {
	for _, q := range qs {
		if !s.HasSet(q) {
			s.Sets = append(s.Sets, q)
		}
	}
	return s
}

// Row is a server's history row for one timestamp: slots for rounds 1..3,
// indexed by round-1.
type Row [3]Slot

// History is a server's entire history of the shared variable, keyed by
// timestamp. Absent rows mean 〈〈0,⊥〉, ∅〉 everywhere, matching the
// initialisation of Figure 6.
type History map[int64]Row

// Slot returns the slot for (ts, rnd); rnd ∈ {1,2,3}.
func (h History) Slot(ts int64, rnd int) Slot {
	if h == nil {
		return Slot{}
	}
	return h[ts][rnd-1]
}

// Clone deep-copies the history (server state must not escape by
// reference through the in-memory transport).
func (h History) Clone() History {
	out := make(History, len(h))
	for ts, row := range h {
		var cp Row
		for i, s := range row {
			cp[i] = Slot{Pair: s.Pair, Sets: append([]core.Set(nil), s.Sets...)}
		}
		out[ts] = cp
	}
	return out
}

// Messages of the protocol.

// WriteReq is the wr〈ts, v, QC'2, rnd〉 message of Figures 5 and 7.
// Readers use it for writebacks as well. Key addresses one register of
// the server's keyspace; the key-less SWMR clients use "" (the legacy
// single register).
type WriteReq struct {
	TS    int64
	Val   string
	Sets  []core.Set // class-2 quorum ids (QC'2); nil in rounds 1 and 3
	Round int        // 1, 2 or 3
	Key   string
}

// WriteAck is the wr_ack〈ts, rnd〉 reply.
type WriteAck struct {
	TS    int64
	Round int
}

// ReadReq is the rd〈read_no, read_rnd〉 message. Key addresses one
// register of the server's keyspace ("" = the legacy single register).
type ReadReq struct {
	ReadNo int64
	Round  int
	Key    string
}

// ReadAck is the rd_ack〈read_no, read_rnd, history〉 reply carrying the
// server's entire history (footnote 4 of the paper: servers keep the full
// history to keep the algorithm simple).
type ReadAck struct {
	ReadNo  int64
	Round   int
	History History
}
