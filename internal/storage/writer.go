package storage

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// DefaultTimeout is the default round timer (the paper's 2Δ) used when a
// client is constructed with a zero timeout.
const DefaultTimeout = 10 * time.Millisecond

// WriteResult reports how a write completed.
type WriteResult struct {
	TS     int64 // timestamp attached to the written value
	Rounds int   // communication round-trips used (1, 2 or 3)
}

// Writer is the single writer of the SWMR storage (Figure 5).
// It is not safe for concurrent use: the model forbids a client from
// invoking a new operation before the previous one completes.
type Writer struct {
	rqs     *core.RQS
	port    transport.Port
	timeout time.Duration // the 2Δ round timer
	ts      int64
	tr      *core.QuorumTracker // per-round ack tracker, reset each round
	timer   *time.Timer         // reused 2Δ timer (see resetTimer)
}

// NewWriter creates the writer. timeout is the paper's 2Δ; zero selects
// DefaultTimeout.
func NewWriter(rqs *core.RQS, port transport.Port, timeout time.Duration) *Writer {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Writer{rqs: rqs, port: port, timeout: timeout, tr: rqs.NewTracker()}
}

// Timestamp returns the writer's current local timestamp.
func (w *Writer) Timestamp() int64 { return w.ts }

// SetTimestamp resumes the writer at a given timestamp, for a writer
// process restarting after a crash (the model's single writer must never
// reuse a timestamp). The next write uses ts+1.
func (w *Writer) SetTimestamp(ts int64) {
	if ts > w.ts {
		w.ts = ts
	}
}

// Write stores v (Figure 5). It completes after one round if a class-1
// quorum acknowledges within the timer, after two rounds if a class-2
// quorum that acked round 1 acks again, and after three rounds otherwise.
// It blocks until a quorum of servers is reachable (wait-freedom assumes
// one correct quorum).
func (w *Writer) Write(v string) WriteResult {
	res, _ := w.WriteCtx(context.Background(), v)
	return res
}

// WriteCtx is Write with a per-operation deadline: when ctx expires
// before a quorum is reachable, the operation aborts and the context's
// error is returned — a liveness violation surfaced as an error instead
// of an unbounded quorum wait. An aborted write consumes its timestamp
// (the single writer never reuses one) and may be partially applied at
// some servers; the writer itself remains usable.
func (w *Writer) WriteCtx(ctx context.Context, v string) (WriteResult, error) {
	done := ctx.Done()
	w.ts++
	w.drainStale()

	// Round 1: wait for a quorum AND the 2Δ timer (or every server).
	_, aborted := w.round(1, v, nil, true, done)
	if aborted {
		return WriteResult{TS: w.ts}, ctx.Err()
	}
	if _, ok := w.tr.Contained(core.Class1); ok {
		return WriteResult{TS: w.ts, Rounds: 1}, nil
	}
	// Remember the class-2 quorums that responded (lines 4-5).
	qc2 := w.tr.ContainedAll(core.Class2)

	// Round 2: write the pair with the QC'2 certificate.
	acked, aborted := w.round(2, v, qc2, true, done)
	if aborted {
		return WriteResult{TS: w.ts}, ctx.Err()
	}
	for _, q := range qc2 {
		if q.SubsetOf(acked) {
			return WriteResult{TS: w.ts, Rounds: 2}, nil
		}
	}

	// Round 3: plain quorum write.
	if _, aborted := w.round(3, v, nil, false, done); aborted {
		return WriteResult{TS: w.ts}, ctx.Err()
	}
	return WriteResult{TS: w.ts, Rounds: 3}, nil
}

// round sends wr〈ts, v, sets, rnd〉 to all servers and waits for acks from
// some quorum, plus (rounds 1-2) the expiration of the 2Δ timer. The
// timer wait is cut short once every server has acked: nothing further
// can arrive, so waiting longer cannot change any verdict. It returns
// the set of servers that acked this round (also held by w.tr), and
// whether the wait was aborted by the done channel firing.
func (w *Writer) round(rnd int, v string, sets []core.Set, withTimer bool, done <-chan struct{}) (core.Set, bool) {
	req := WriteReq{TS: w.ts, Val: v, Sets: sets, Round: rnd}
	transport.Broadcast(w.port, w.rqs.Universe(), req)

	w.tr.Reset()
	timer := resetTimer(&w.timer, w.timeout)
	timerDone := !withTimer
	quorumOK := false

	for {
		if quorumOK && (timerDone || w.tr.Complete()) {
			return w.tr.Responded(), false
		}
		env, ok, timedOut, aborted := recvOrTimer(w.port, timer, done)
		if aborted {
			return w.tr.Responded(), true
		}
		if timedOut {
			timerDone = true
			continue
		}
		if !ok {
			return w.tr.Responded(), false
		}
		// Re-check quorum containment only when the ack changed the
		// tracker state; duplicates and stale messages are free. The
		// assertion copies the (string-free) ack out of the envelope, so
		// the receive arena can recycle before the tracker runs.
		ack, isAck := env.Payload.(WriteAck)
		env.Release()
		if isAck && ack.TS == w.ts && ack.Round == rnd {
			if w.tr.Add(env.From) && !quorumOK {
				_, quorumOK = w.tr.Contained(core.Class3)
			}
		}
	}
}

// resetTimer arms a client's reused 2Δ round timer: the first call
// creates it, later calls stop-drain-reset it. Clients run one
// operation at a time and the timer channel has no other consumer, so
// the non-blocking drain makes Reset race-free under both timer
// semantics — and a round stops paying a runtime-timer allocation.
func resetTimer(t **time.Timer, d time.Duration) *time.Timer {
	tm := *t
	if tm == nil {
		tm = time.NewTimer(d)
		*t = tm
		return tm
	}
	if !tm.Stop() {
		select {
		case <-tm.C:
		default:
		}
	}
	tm.Reset(d)
	return tm
}

// recvOrTimer receives the next envelope for a timed protocol wait,
// draining already-buffered messages before touching the select/timer
// machinery (under load a whole quorum's acks land as one burst, and
// the bare receive is markedly cheaper than a multi-case select).
// timedOut reports that the round timer fired instead; ok is false
// when the inbox closed; aborted reports that the caller's done
// channel fired (nil done — the common, deadline-free case — can
// never fire and costs only a never-ready select case on the slow
// path).
func recvOrTimer(port transport.Port, timer *time.Timer, done <-chan struct{}) (env transport.Envelope, ok, timedOut, aborted bool) {
	select {
	case env, ok = <-port.Inbox():
		return env, ok, false, false
	default:
	}
	select {
	case env, ok = <-port.Inbox():
		return env, ok, false, false
	case <-timer.C:
		return transport.Envelope{}, false, true, false
	case <-done:
		return transport.Envelope{}, false, false, true
	}
}

// drainStale discards any leftover replies from previous operations.
// Server state is monotone, so dropping stale acks never loses
// information — it only keeps per-operation accounting exact.
func (w *Writer) drainStale() { drainPort(w.port) }
