package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"reflect"
	"sync"
	"sync/atomic"
)

// This file is the zero-copy receive arena: the allocation-lean half of
// the TCP receive path. serveConn reads each burst's frame bodies into
// one arena-owned chunk and decodes payloads into typed slabs drawn
// from the same arena, so string and []byte fields of a delivered
// payload alias the read buffer instead of being copied out of it, and
// the payload struct itself comes from a recycled slab instead of a
// fresh reflect.New per envelope.
//
// # Ownership contract
//
// An arena is owned jointly by the serve loop that filled it and every
// envelope decoded out of it, via a reference count:
//
//   - getArena returns an arena holding the serve loop's own reference.
//   - decodeEnvelopeArena takes one additional reference per decoded
//     envelope; the envelope carries it (Envelope.arena) until the
//     consumer calls Envelope.Release.
//   - the serve loop drops its reference once the burst is delivered.
//
// When the count reaches zero the arena is recycled: used slabs are
// zeroed (decode skips zero-length fields, so a dirty slab would leak
// one burst's strings into the next) and the arena returns to its pool.
// A consumer that never calls Release keeps the arena alive until the
// envelope itself is garbage collected — the failure mode is a missed
// recycle, never a corrupted live payload. Consumers that retain any
// string or []byte from an aliased payload past Release must copy it
// first (see Envelope.Aliased).

// arenaSlabLen is the element count of one typed slab. It matches
// rcvBurstMax: a burst can never need two slabs of one type.
const arenaSlabLen = rcvBurstMax

// arenaChunkMin is the initial chunk capacity; bursts of typical
// protocol frames fit without growing.
const arenaChunkMin = 16 << 10

// arenaPoison, when enabled, fills a recycled arena's chunk with a
// poison byte so a use-after-release read of an aliased string shows up
// as corrupt data instead of silently reading recycled bytes. Testing
// hook only (SetArenaPoison); the poison write itself also gives the
// race detector a write to pair with any late read.
var arenaPoison atomic.Bool

// SetArenaPoison toggles poisoning of recycled receive arenas. It is a
// testing-only hook: the lifecycle soak tests turn it on to convert
// use-after-recycle bugs into deterministic corruption.
func SetArenaPoison(on bool) { arenaPoison.Store(on) }

const arenaPoisonByte = 0xDB

// arenaSlab is one typed slab: a pooled *[arenaSlabLen]T the decoder
// carves payload values out of. Slabs stay attached to their arena
// across recycles, so a warm arena serves its usual payload types with
// zero allocation.
type arenaSlab struct {
	tc  *typeCodec
	arr reflect.Value // addressable *[arenaSlabLen]T
	n   int           // elements handed out this cycle
}

// recvArena is one burst's decode arena: the raw chunk frame bodies are
// read into (and aliased by decoded strings), plus the typed slabs the
// payload values live in.
type recvArena struct {
	refs  atomic.Int32
	chunk []byte
	slabs []arenaSlab
}

var arenaPool = sync.Pool{New: func() any { return &recvArena{} }}

// getArena returns a recycled (or fresh) arena holding the caller's own
// reference.
func getArena() *recvArena {
	a := arenaPool.Get().(*recvArena)
	a.refs.Store(1)
	return a
}

// grow reserves n more bytes in the chunk and returns the region. When
// the chunk must grow mid-burst the old backing array is abandoned, not
// copied: earlier frames' decoded strings alias it and keep it alive.
func (a *recvArena) grow(n int) []byte {
	off := len(a.chunk)
	if cap(a.chunk)-off < n {
		size := 2 * cap(a.chunk)
		if size < arenaChunkMin {
			size = arenaChunkMin
		}
		if size < n {
			size = n
		}
		a.chunk = make([]byte, 0, size)
		off = 0
	}
	a.chunk = a.chunk[:off+n]
	return a.chunk[off : off+n]
}

// alloc returns a zeroed, addressable value of tc's type from the
// arena's slab for that type (attached on first use).
func (a *recvArena) alloc(tc *typeCodec) reflect.Value {
	for i := range a.slabs {
		s := &a.slabs[i]
		if s.tc == tc && s.n < arenaSlabLen {
			v := s.arr.Elem().Index(s.n)
			s.n++
			return v
		}
	}
	arr := reflect.New(reflect.ArrayOf(arenaSlabLen, tc.typ))
	a.slabs = append(a.slabs, arenaSlab{tc: tc, arr: arr, n: 1})
	return arr.Elem().Index(0)
}

// acquire adds one reference (one envelope's share of the arena).
func (a *recvArena) acquire() { a.refs.Add(1) }

// release drops one reference; the last one recycles the arena. Used
// slabs are zeroed — the decoder leaves zero-length slice, map and
// byte fields unset, so a recycled-but-dirty slab element would smuggle
// the previous burst's values into the next burst's payloads.
func (a *recvArena) release() {
	if a.refs.Add(-1) != 0 {
		return
	}
	if arenaPoison.Load() {
		for i := range a.chunk {
			a.chunk[i] = arenaPoisonByte
		}
	}
	for i := range a.slabs {
		if s := &a.slabs[i]; s.n > 0 {
			s.arr.Elem().SetZero()
			s.n = 0
		}
	}
	a.chunk = a.chunk[:0]
	if cap(a.chunk) > maxFrame/64 {
		a.chunk = nil // don't keep giants alive in the pool
	}
	arenaPool.Put(a)
}

// readFrameArena reads one frame, placing its body in a's chunk so the
// decoded payload may alias it, and returns the frame kind and body.
func readFrameArena(br *bufio.Reader, a *recvArena) (byte, []byte, error) {
	hdr, err := br.Peek(4)
	if err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	_, _ = br.Discard(4)
	body := a.grow(int(n))
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}
