package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// These tests pin the two halves of the zero-copy receive path: arena
// recycling must never touch a payload an envelope still references
// (TestArenaRecycleSoak, run under -race in CI with poisoning on), and
// the per-link credit windows must keep one hot link from starving its
// colocated session neighbors (TestSessionFairnessUnderHotLink).

// TestArenaRecycleSoak blasts aliased payloads across four logical
// links of one shared session while the consumers hold random subsets
// of delivered envelopes past many later bursts, releasing them out of
// order. With poisoning on, any arena recycled while a held envelope
// still aliases it corrupts that envelope's content deterministically;
// the race detector additionally pairs the poison writes with any late
// payload read.
func TestArenaRecycleSoak(t *testing.T) {
	SetArenaPoison(true)
	defer SetArenaPoison(false)
	Register(stabilityMsg{})
	const k, msgsPerLink = 2, 3000
	a, b, nodes := twoHosts(t, k)
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgsPerLink; i++ {
				for r := k; r < 2*k; r++ {
					nodes[s].Send(r, stabilityContent(i))
				}
			}
		}(s)
	}

	errs := make(chan error, k)
	var rwg sync.WaitGroup
	for r := k; r < 2*k; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			var held []Envelope
			flush := func() bool {
				// Release in reverse arrival order: refcounts must not
				// depend on consumption order.
				for i := len(held) - 1; i >= 0; i-- {
					m := held[i].Payload.(stabilityMsg)
					want := stabilityContent(m.Seq)
					if m.S != want.S || string(m.B) != string(want.B) {
						errs <- fmt.Errorf("receiver %d: held payload %d corrupted by arena recycle", r, m.Seq)
						return false
					}
					held[i].Release()
				}
				held = held[:0]
				return true
			}
			for got := 0; got < k*msgsPerLink; got++ {
				select {
				case env := <-nodes[r].Inbox():
					m, ok := env.Payload.(stabilityMsg)
					if !ok {
						errs <- fmt.Errorf("receiver %d: payload %T", r, env.Payload)
						return
					}
					want := stabilityContent(m.Seq)
					if m.S != want.S || string(m.B) != string(want.B) {
						errs <- fmt.Errorf("receiver %d: payload %d corrupted at delivery", r, m.Seq)
						return
					}
					if m.Seq%5 == 0 {
						held = append(held, env)
						if len(held) >= 64 && !flush() {
							return
						}
					} else {
						env.Release()
					}
				case <-time.After(15 * time.Second):
					errs <- fmt.Errorf("receiver %d: timeout at %d/%d", r, got, k*msgsPerLink)
					return
				}
			}
			flush()
		}(r)
	}
	wg.Wait()
	rwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionFairnessUnderHotLink pins the credit-window contract: a
// hot link whose consumer has stopped draining fills its inbox and then
// stages overflow on its OWN spool, while a colocated cold link on the
// same session keeps delivering. When the hot consumer resumes within
// the stall bound, every hot frame arrives, in order, with no drops —
// the backpressure was isolation, not loss.
func TestSessionFairnessUnderHotLink(t *testing.T) {
	Register(int(0))
	Register("")
	const k = 2 // host A: senders 0,1; host B: cold receiver 2, hot receiver 3
	a, b, nodes := twoHosts(t, k)
	defer a.Close()
	defer b.Close()

	// Saturate the hot link 0→3 with nobody draining: inboxCap frames
	// fill the inbox, the rest must stage on the link's spool (kept
	// under linkCreditWindow so the serve loop never falls back to the
	// bounded blocking wait).
	const overflow = 64
	hotTotal := inboxCap + overflow
	for i := 0; i < hotTotal; i++ {
		nodes[0].Send(3, i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.Stats().Spooled < overflow {
		if time.Now().After(deadline) {
			t.Fatalf("hot link never staged its overflow (host B stats %+v)", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// The cold colocated link 1→2 must deliver while the hot link is
	// fully stalled — this is exactly what head-of-line blocked before
	// per-link spools.
	coldStart := time.Now()
	nodes[1].Send(2, "cold")
	select {
	case env := <-nodes[2].Inbox():
		if env.Payload != "cold" {
			t.Fatalf("cold link received %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("cold link starved behind the hot link (host B stats %+v)", b.Stats())
	}
	coldLatency := time.Since(coldStart)

	s := b.Stats()
	if s.CreditStalls == 0 {
		t.Errorf("no credit stall counted although the hot link spooled (stats %+v)", s)
	}
	if s.SpoolHighWater < overflow {
		t.Errorf("spool high-water %d, want >= %d", s.SpoolHighWater, overflow)
	}

	// Resume the hot consumer promptly (well inside the stall bound, so
	// nothing sheds): every frame must arrive exactly once, in order.
	for i := 0; i < hotTotal; i++ {
		select {
		case env := <-nodes[3].Inbox():
			if env.Payload.(int) != i {
				t.Fatalf("hot link delivered %v at position %d (FIFO broken across the spool)", env.Payload, i)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("hot link delivered only %d/%d after resume (host B stats %+v)", i, hotTotal, b.Stats())
		}
	}
	if s := b.Stats(); s.Drops != 0 {
		t.Errorf("hot link backpressure caused %d drops, want 0 (stats %+v)", s.Drops, s)
	}
	if s := b.Stats(); s.Spooled != 0 {
		t.Errorf("%d frames still spooled after full drain (stats %+v)", s.Spooled, s)
	}
	t.Logf("cold-link latency under hot-link stall: %v; host B stats %+v", coldLatency, b.Stats())
}
