package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"reflect"
	"sync"
	"unsafe"
)

// This file is the TCP wire format: a length-prefixed frame layer and a
// compact self-describing envelope codec that replaces the seed's
// per-connection gob streams.
//
//	frame    := u32le bodyLen | body                 (bodyLen ≤ maxFrame)
//	body     := kind byte | rest
//	hello    := uvarint nonce | uvarint firstSeq | uvarint addrLen | addr
//	data     := u64le seq | envelope
//	ack      := uvarint cumulativeSeq
//	ping     := (empty)                              keepalive probe
//	pong     := (empty)                              keepalive reply
//	envelope := varint from | varint to | varint hop | u32le typeTag | payload
//
// The hello identifies the dialing *process* (its listen address and
// session incarnation nonce), not a logical node: one session carries
// every logical (from, to) pair between two processes, and the
// envelope's own routing header does the demultiplexing.
//
// Payload encodings are compiled once per registered type from its
// reflection structure: varints for integers, length-prefixed bytes for
// strings and slices, fields in declaration order for structs. Unlike
// gob there is no per-connection type negotiation, no field-name
// dictionary and no allocation beyond the decoded value itself — the
// type tag (an FNV-1a hash of the type's full name, stable across
// processes and registration orders) is the whole type description.

// Frame kinds of the link protocol (see link.go).
const (
	frameHello   byte = 1 // sender session identity + first seq on this conn
	frameData    byte = 2 // one sequenced envelope
	frameAck     byte = 3 // cumulative delivery acknowledgement
	frameDataAck byte = 4 // data frame carrying a piggybacked cumulative ack
	framePing    byte = 5 // keepalive probe on an idle session
	framePong    byte = 6 // keepalive reply
)

// dataSeqOff is the data frame's seq slot offset (past the length
// prefix and kind byte). The seq is fixed-width so senders can encode
// the envelope into the frame buffer first and assign the seq under
// the link lock afterwards, without re-copying the payload.
const dataSeqOff = 5

// A dataAck frame extends the data layout with two fixed-width slots
// between the seq and the envelope:
//
//	dataAck := u64le seq | u64le ackNonce | u64le ack | envelope
//
// ackNonce identifies the reverse-direction stream being acked (the
// receiver's link incarnation nonce); ack is this node's cumulative
// delivered seq for that stream. Both are patched at write time, so a
// retransmitted frame always carries the current ack — piggybacking
// makes standalone ack frames unnecessary while data flows both ways.
const (
	dataAckNonceOff = dataSeqOff + 8
	dataAckOff      = dataAckNonceOff + 8
	dataAckEnvOff   = dataAckOff + 8 // envelope offset within the whole frame
)

// maxFrame bounds a frame body; a longer length prefix means a corrupt
// or hostile stream and kills the connection.
const maxFrame = 64 << 20

var errShortFrame = errors.New("transport: truncated frame")

// encFn appends the value's encoding to b; decFn decodes a value into v
// (settable) and returns the remaining bytes.
type encFn func(b []byte, v reflect.Value) []byte
type decFn func(b []byte, v reflect.Value) ([]byte, error)

type typeCodec struct {
	typ  reflect.Type
	tag  uint32
	name string
	enc  encFn
	dec  decFn
	// decA is the aliasing variant of dec: string and []byte leaves
	// reference the input buffer instead of copying out of it. Only the
	// arena receive path uses it; the buffer must outlive the decoded
	// value (the arena guarantees this via its reference count).
	decA decFn
	// rtype is the runtime type word an interface holding this type
	// carries, captured once at Register so the arena decode path can
	// box a slab-backed value as a Message without the allocation
	// v.Interface() would make. indirect reports whether the interface
	// data word is a pointer to the value (always true for types wider
	// than a word); only then is direct eface packing legal.
	rtype    unsafe.Pointer
	indirect bool
}

// eface mirrors the runtime's interface{} layout; used to box arena
// slab values without allocating.
type eface struct {
	typ, data unsafe.Pointer
}

var registry struct {
	sync.RWMutex
	byTag  map[uint32]*typeCodec
	byType map[reflect.Type]*typeCodec
}

// Register makes a concrete payload type encodable over the TCP
// transport, compiling its binary codec and assigning it a stable type
// tag. Protocol packages call this for each of their message types.
// Registering the same type twice is a no-op; a tag collision between
// two distinct types panics (pick a different type name).
func Register(v Message) {
	if v == nil {
		panic("transport: Register(nil)")
	}
	t := reflect.TypeOf(v)
	registry.Lock()
	defer registry.Unlock()
	if registry.byType == nil {
		registry.byTag = make(map[uint32]*typeCodec)
		registry.byType = make(map[reflect.Type]*typeCodec)
	}
	if _, ok := registry.byType[t]; ok {
		return
	}
	name := wireTypeName(t)
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	tag := h.Sum32()
	if tag == 0 {
		tag = 1 // 0 is the nil-payload tag
	}
	if prev, ok := registry.byTag[tag]; ok {
		panic(fmt.Sprintf("transport: type tag collision between %s and %s", prev.name, name))
	}
	tc := &typeCodec{typ: t, tag: tag, name: name}
	tc.enc, tc.dec, tc.decA = compileCodec(t, make(map[reflect.Type]*typeCodec))
	// Capture the runtime type word from a boxed zero value. Direct
	// (pointer-shaped, word-sized) types keep indirect=false and fall
	// back to v.Interface() when boxed from a slab.
	box := Message(reflect.New(t).Elem().Interface())
	tc.rtype = (*eface)(unsafe.Pointer(&box)).typ
	tc.indirect = t.Size() > unsafe.Sizeof(uintptr(0))
	registry.byTag[tag] = tc
	registry.byType[t] = tc
}

func wireTypeName(t reflect.Type) string {
	if t.PkgPath() != "" {
		return t.PkgPath() + "." + t.Name()
	}
	if t.Name() != "" {
		return t.Name()
	}
	return t.String()
}

// compileCodec builds the encoder and the two decoders for t: dec
// copies every string and byte slice out of the input, decA lets them
// alias it (the arena path). seen breaks recursive types: a
// self-referential field dispatches through the placeholder filled in
// when the outer compilation finishes.
func compileCodec(t reflect.Type, seen map[reflect.Type]*typeCodec) (encFn, decFn, decFn) {
	if ph, ok := seen[t]; ok {
		return func(b []byte, v reflect.Value) []byte { return ph.enc(b, v) },
			func(b []byte, v reflect.Value) ([]byte, error) { return ph.dec(b, v) },
			func(b []byte, v reflect.Value) ([]byte, error) { return ph.decA(b, v) }
	}
	ph := &typeCodec{typ: t}
	seen[t] = ph

	var enc encFn
	var dec, decA decFn
	switch t.Kind() {
	case reflect.Bool:
		enc = func(b []byte, v reflect.Value) []byte {
			if v.Bool() {
				return append(b, 1)
			}
			return append(b, 0)
		}
		dec = func(b []byte, v reflect.Value) ([]byte, error) {
			if len(b) < 1 {
				return nil, errShortFrame
			}
			v.SetBool(b[0] != 0)
			return b[1:], nil
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		enc = func(b []byte, v reflect.Value) []byte {
			return binary.AppendVarint(b, v.Int())
		}
		dec = func(b []byte, v reflect.Value) ([]byte, error) {
			x, n := binary.Varint(b)
			if n <= 0 {
				return nil, errShortFrame
			}
			v.SetInt(x)
			return b[n:], nil
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		enc = func(b []byte, v reflect.Value) []byte {
			return binary.AppendUvarint(b, v.Uint())
		}
		dec = func(b []byte, v reflect.Value) ([]byte, error) {
			x, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, errShortFrame
			}
			v.SetUint(x)
			return b[n:], nil
		}
	case reflect.Float32:
		enc = func(b []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(v.Float())))
		}
		dec = func(b []byte, v reflect.Value) ([]byte, error) {
			if len(b) < 4 {
				return nil, errShortFrame
			}
			v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(b))))
			return b[4:], nil
		}
	case reflect.Float64:
		enc = func(b []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float()))
		}
		dec = func(b []byte, v reflect.Value) ([]byte, error) {
			if len(b) < 8 {
				return nil, errShortFrame
			}
			v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			return b[8:], nil
		}
	case reflect.String:
		enc = func(b []byte, v reflect.Value) []byte {
			s := v.String()
			b = binary.AppendUvarint(b, uint64(len(s)))
			return append(b, s...)
		}
		dec = func(b []byte, v reflect.Value) ([]byte, error) {
			n, b, err := decUvarint(b)
			if err != nil || n > uint64(len(b)) {
				return nil, errShortFrame
			}
			v.SetString(string(b[:n]))
			return b[n:], nil
		}
		decA = func(b []byte, v reflect.Value) ([]byte, error) {
			n, b, err := decUvarint(b)
			if err != nil || n > uint64(len(b)) {
				return nil, errShortFrame
			}
			if n > 0 {
				v.SetString(unsafe.String(&b[0], int(n)))
			}
			return b[n:], nil
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			enc = func(b []byte, v reflect.Value) []byte {
				b = binary.AppendUvarint(b, uint64(v.Len()))
				return append(b, v.Bytes()...)
			}
			dec = func(b []byte, v reflect.Value) ([]byte, error) {
				n, b, err := decUvarint(b)
				if err != nil || n > uint64(len(b)) {
					return nil, errShortFrame
				}
				if n > 0 {
					out := reflect.MakeSlice(t, int(n), int(n))
					reflect.Copy(out, reflect.ValueOf(b[:n]))
					v.Set(out)
				}
				return b[n:], nil
			}
			decA = func(b []byte, v reflect.Value) ([]byte, error) {
				n, b, err := decUvarint(b)
				if err != nil || n > uint64(len(b)) {
					return nil, errShortFrame
				}
				if n > 0 {
					// Full-capacity slice so a consumer append reallocates
					// instead of scribbling on the arena chunk.
					v.SetBytes(b[:n:n])
				}
				return b[n:], nil
			}
			break
		}
		elemEnc, elemDec, elemDecA := compileCodec(t.Elem(), seen)
		minElem := minEncodedSize(t.Elem())
		enc = func(b []byte, v reflect.Value) []byte {
			n := v.Len()
			b = binary.AppendUvarint(b, uint64(n))
			for i := 0; i < n; i++ {
				b = elemEnc(b, v.Index(i))
			}
			return b
		}
		mkDec := func(elem decFn) decFn {
			return func(b []byte, v reflect.Value) ([]byte, error) {
				n, b, err := decUvarint(b)
				if err != nil || n > maxFrame {
					return nil, errShortFrame
				}
				// A corrupt length must fail before the allocation, not
				// after: every element costs at least minElem bytes.
				if minElem > 0 && n > uint64(len(b))/uint64(minElem) {
					return nil, errShortFrame
				}
				if n == 0 {
					return b, nil // zero-length decodes as nil, like gob
				}
				out := reflect.MakeSlice(t, int(n), int(n))
				for i := 0; i < int(n); i++ {
					if b, err = elem(b, out.Index(i)); err != nil {
						return nil, err
					}
				}
				v.Set(out)
				return b, nil
			}
		}
		dec, decA = mkDec(elemDec), mkDec(elemDecA)
	case reflect.Array:
		elemEnc, elemDec, elemDecA := compileCodec(t.Elem(), seen)
		n := t.Len()
		enc = func(b []byte, v reflect.Value) []byte {
			for i := 0; i < n; i++ {
				b = elemEnc(b, v.Index(i))
			}
			return b
		}
		mkDec := func(elem decFn) decFn {
			return func(b []byte, v reflect.Value) ([]byte, error) {
				var err error
				for i := 0; i < n; i++ {
					if b, err = elem(b, v.Index(i)); err != nil {
						return nil, err
					}
				}
				return b, nil
			}
		}
		dec, decA = mkDec(elemDec), mkDec(elemDecA)
	case reflect.Map:
		keyEnc, keyDec, keyDecA := compileCodec(t.Key(), seen)
		valEnc, valDec, valDecA := compileCodec(t.Elem(), seen)
		minPair := minEncodedSize(t.Key()) + minEncodedSize(t.Elem())
		// Addressable key/value scratch, pooled per map type: SetMapIndex
		// copies out of it and SetIterKey/SetIterValue copy into it, so
		// one warm pair serves every entry of every map of this type —
		// the per-entry reflect.New (decode) and copyVal (encode-side
		// MapIter.Key/Value) allocations were the bulk of a History-map
		// ack's cost on the hot read path.
		scratch := &sync.Pool{New: func() any {
			return &mapKV{k: reflect.New(t.Key()).Elem(), v: reflect.New(t.Elem()).Elem()}
		}}
		enc = func(b []byte, v reflect.Value) []byte {
			b = binary.AppendUvarint(b, uint64(v.Len()))
			kv := scratch.Get().(*mapKV)
			it := v.MapRange()
			for it.Next() {
				kv.k.SetIterKey(it)
				kv.v.SetIterValue(it)
				b = keyEnc(b, kv.k)
				b = valEnc(b, kv.v)
			}
			kv.put(scratch)
			return b
		}
		mkDec := func(key, val decFn) decFn {
			return func(b []byte, v reflect.Value) ([]byte, error) {
				n, b, err := decUvarint(b)
				if err != nil || n > maxFrame {
					return nil, errShortFrame
				}
				if minPair > 0 && n > uint64(len(b))/uint64(minPair) {
					return nil, errShortFrame
				}
				if n == 0 {
					return b, nil
				}
				out := reflect.MakeMapWithSize(t, int(n))
				kv := scratch.Get().(*mapKV)
				for i := 0; i < int(n); i++ {
					kv.k.SetZero()
					kv.v.SetZero()
					if b, err = key(b, kv.k); err != nil {
						return nil, err
					}
					if b, err = val(b, kv.v); err != nil {
						return nil, err
					}
					out.SetMapIndex(kv.k, kv.v)
				}
				kv.put(scratch)
				v.Set(out)
				return b, nil
			}
		}
		dec, decA = mkDec(keyDec, valDec), mkDec(keyDecA, valDecA)
	case reflect.Struct:
		type fieldCodec struct {
			idx  int
			enc  encFn
			dec  decFn
			decA decFn
		}
		var fields []fieldCodec
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue // like gob: unexported fields don't travel
			}
			fe, fd, fdA := compileCodec(f.Type, seen)
			fields = append(fields, fieldCodec{idx: i, enc: fe, dec: fd, decA: fdA})
		}
		enc = func(b []byte, v reflect.Value) []byte {
			for _, f := range fields {
				b = f.enc(b, v.Field(f.idx))
			}
			return b
		}
		dec = func(b []byte, v reflect.Value) ([]byte, error) {
			var err error
			for _, f := range fields {
				if b, err = f.dec(b, v.Field(f.idx)); err != nil {
					return nil, err
				}
			}
			return b, nil
		}
		decA = func(b []byte, v reflect.Value) ([]byte, error) {
			var err error
			for _, f := range fields {
				if b, err = f.decA(b, v.Field(f.idx)); err != nil {
					return nil, err
				}
			}
			return b, nil
		}
	default:
		panic(fmt.Sprintf("transport: cannot encode kind %s (type %s)", t.Kind(), t))
	}
	if decA == nil {
		decA = dec // scalar leaves never alias the input
	}
	ph.enc, ph.dec, ph.decA = enc, dec, decA
	return enc, dec, decA
}

// mapKV is the pooled addressable scratch of a map codec. put zeroes
// both values before pooling so the pool never retains decoded payload
// memory — in particular not arena-chunk pointers from the aliasing
// decode path, which would keep recycled (and poisoned) arenas
// reachable from entirely unrelated decodes. Error paths drop the pair
// on the floor instead; the pool replenishes itself.
type mapKV struct{ k, v reflect.Value }

func (kv *mapKV) put(p *sync.Pool) {
	kv.k.SetZero()
	kv.v.SetZero()
	p.Put(kv)
}

// minEncodedSize is the smallest number of bytes a value of type t can
// occupy on the wire — the bound that lets length-prefixed decoders
// reject a corrupt count before allocating for it. Zero only for types
// whose encoding can be empty (empty structs, zero-length arrays).
func minEncodedSize(t reflect.Type) int {
	switch t.Kind() {
	case reflect.Float32:
		return 4
	case reflect.Float64:
		return 8
	case reflect.Array:
		return t.Len() * minEncodedSize(t.Elem())
	case reflect.Struct:
		sum := 0
		for i := 0; i < t.NumField(); i++ {
			if f := t.Field(i); f.IsExported() {
				sum += minEncodedSize(f.Type)
			}
		}
		return sum
	default:
		return 1 // varints, bools, and length prefixes all take ≥ 1 byte
	}
}

func decUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errShortFrame
	}
	return x, b[n:], nil
}

// EncodeEnvelope appends env's wire encoding to b and returns the
// extended buffer; the payload type must have been registered. It is
// the codec behind the TCP transport, exported for benchmarks and for
// alternative transports built on the same wire format.
func EncodeEnvelope(b []byte, env Envelope) ([]byte, error) {
	return appendEnvelope(b, &env)
}

// DecodeEnvelope parses one envelope previously produced by
// EncodeEnvelope. The result does not alias b.
func DecodeEnvelope(b []byte) (Envelope, error) {
	return decodeEnvelope(b)
}

// EncodeMessage appends m's tagged wire encoding (type tag + payload,
// no routing header) to b. It is the serialization behind WAL records:
// durability layers reuse the transport's compiled codecs instead of
// inventing a second format. The type must have been registered.
func EncodeMessage(b []byte, m Message) ([]byte, error) {
	return appendTaggedPayload(b, m)
}

// DecodeMessage parses one message produced by EncodeMessage. The
// result does not alias b.
func DecodeMessage(b []byte) (Message, error) {
	if len(b) < 4 {
		return nil, errShortFrame
	}
	tag := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if tag == 0 {
		return nil, nil
	}
	registry.RLock()
	tc := registry.byTag[tag]
	registry.RUnlock()
	if tc == nil {
		return nil, fmt.Errorf("transport: unknown payload type tag %#x", tag)
	}
	v := reflect.New(tc.typ).Elem()
	if _, err := tc.dec(b, v); err != nil {
		return nil, err
	}
	return v.Interface(), nil
}

// appendEnvelope appends env's wire encoding. The payload type must be
// registered (nil payloads are legal and get tag 0).
func appendEnvelope(b []byte, env *Envelope) ([]byte, error) {
	b = binary.AppendVarint(b, int64(env.From))
	b = binary.AppendVarint(b, int64(env.To))
	b = binary.AppendVarint(b, int64(env.Hop))
	return appendTaggedPayload(b, env.Payload)
}

// appendTaggedPayload appends the type tag and payload encoding — the
// envelope minus its routing header. Broadcast encodes this once and
// reuses it across every destination's frame.
func appendTaggedPayload(b []byte, payload Message) ([]byte, error) {
	if payload == nil {
		return binary.LittleEndian.AppendUint32(b, 0), nil
	}
	registry.RLock()
	tc := registry.byType[reflect.TypeOf(payload)]
	registry.RUnlock()
	if tc == nil {
		return nil, fmt.Errorf("transport: payload type %T not registered", payload)
	}
	b = binary.LittleEndian.AppendUint32(b, tc.tag)
	return tc.enc(b, reflect.ValueOf(payload)), nil
}

// decodeEnvelope parses one envelope; strings and aggregates are copied
// out of b, so the caller may reuse the buffer.
func decodeEnvelope(b []byte) (Envelope, error) {
	var env Envelope
	var vals [3]int64
	for i := range vals {
		x, n := binary.Varint(b)
		if n <= 0 {
			return env, errShortFrame
		}
		vals[i], b = x, b[n:]
	}
	env.From, env.To, env.Hop = int(vals[0]), int(vals[1]), int(vals[2])
	if len(b) < 4 {
		return env, errShortFrame
	}
	tag := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if tag == 0 {
		return env, nil
	}
	registry.RLock()
	tc := registry.byTag[tag]
	registry.RUnlock()
	if tc == nil {
		return env, fmt.Errorf("transport: unknown payload type tag %#x", tag)
	}
	v := reflect.New(tc.typ).Elem()
	if _, err := tc.dec(b, v); err != nil {
		return env, err
	}
	env.Payload = v.Interface()
	return env, nil
}

// decodeEnvelopeArena parses one envelope whose payload lives in a's
// slabs and whose string/[]byte fields alias a's chunk (b must point
// into it). A successfully decoded non-nil payload takes one arena
// reference, carried by the returned envelope until Release.
func decodeEnvelopeArena(b []byte, a *recvArena) (Envelope, error) {
	var env Envelope
	var vals [3]int64
	for i := range vals {
		x, n := binary.Varint(b)
		if n <= 0 {
			return env, errShortFrame
		}
		vals[i], b = x, b[n:]
	}
	env.From, env.To, env.Hop = int(vals[0]), int(vals[1]), int(vals[2])
	if len(b) < 4 {
		return env, errShortFrame
	}
	tag := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if tag == 0 {
		return env, nil
	}
	registry.RLock()
	tc := registry.byTag[tag]
	registry.RUnlock()
	if tc == nil {
		return env, fmt.Errorf("transport: unknown payload type tag %#x", tag)
	}
	v := a.alloc(tc)
	if _, err := tc.decA(b, v); err != nil {
		// The slab element is dirty but unreferenced; it is zeroed when
		// the arena recycles.
		return env, err
	}
	if tc.indirect {
		// Box the slab element directly: the interface's data word
		// points into the slab array, which the arena keeps alive.
		var m Message
		e := (*eface)(unsafe.Pointer(&m))
		e.typ = tc.rtype
		e.data = v.Addr().UnsafePointer()
		env.Payload = m
	} else {
		env.Payload = v.Interface()
	}
	env.arena = a
	a.acquire()
	return env, nil
}

// Buffer pool shared by frame encoding and the read loops. The *[]byte
// headers are pooled separately from the arrays they point at:
// framePool.Put(&b) on a local would force the header to escape, so
// every putFrameBuf would allocate a header — recycling headers through
// a second pool makes the get/put cycle allocation-free once warm.
var (
	framePool    sync.Pool // *[]byte carrying a usable backing array
	frameHdrPool = sync.Pool{New: func() any { return new([]byte) }}
)

func getFrameBuf() []byte {
	p, _ := framePool.Get().(*[]byte)
	if p == nil {
		return make([]byte, 0, 512)
	}
	b := (*p)[:0]
	*p = nil
	frameHdrPool.Put(p)
	return b
}

func putFrameBuf(b []byte) {
	if cap(b) > maxFrame/64 {
		return // don't keep giants alive
	}
	p := frameHdrPool.Get().(*[]byte)
	*p = b
	framePool.Put(p)
}

// frameSlicePool recycles the [][]byte scratch used to stage a batch
// of encoded frames between encode and queue append, so burst sends
// allocate no per-batch slice header once warm. Same two-pool header
// recycling as framePool.
var (
	frameSlicePool    sync.Pool // *[][]byte carrying a usable backing array
	frameSliceHdrPool = sync.Pool{New: func() any { return new([][]byte) }}
)

func getFrameSlice() [][]byte {
	p, _ := frameSlicePool.Get().(*[][]byte)
	if p == nil {
		return make([][]byte, 0, 64)
	}
	s := (*p)[:0]
	*p = nil
	frameSliceHdrPool.Put(p)
	return s
}

func putFrameSlice(s [][]byte) {
	if cap(s) > 4096 {
		return
	}
	// Nil the full capacity, not just the length: callers may have
	// resliced to zero after handing frames off (broadcast's flushRun),
	// and stale pointers in the pooled backing array would retain
	// buffers the links already own or returned.
	s = s[:cap(s)]
	for i := range s {
		s[i] = nil
	}
	p := frameSliceHdrPool.Get().(*[][]byte)
	*p = s[:0]
	frameSlicePool.Put(p)
}

// beginFrame appends the 4-byte length placeholder and the kind byte;
// finishFrame back-fills the length once the body is complete.
func beginFrame(b []byte, kind byte) []byte {
	return append(b, 0, 0, 0, 0, kind)
}

func finishFrame(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b
}

// readFrame reads one frame into *scratch (grown as needed) and returns
// its kind and body. The length prefix is peeked out of the bufio
// buffer rather than read into a local array, which would escape into
// the io.ReadFull call and cost an allocation per frame.
func readFrame(br *bufio.Reader, scratch *[]byte) (byte, []byte, error) {
	hdr, err := br.Peek(4)
	if err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	_, _ = br.Discard(4)
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	if uint32(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// writeAck appends and flushes a cumulative ack frame.
func writeAck(bw *bufio.Writer, seq uint64) error {
	buf := getFrameBuf()
	buf = beginFrame(buf, frameAck)
	buf = binary.AppendUvarint(buf, seq)
	buf = finishFrame(buf)
	_, err := bw.Write(buf)
	putFrameBuf(buf)
	if err != nil {
		return err
	}
	return bw.Flush()
}

// appendHello builds the hello frame announcing the dialing process's
// listen address, session incarnation nonce, and the first data seq
// this conn will carry.
func appendHello(b []byte, addr string, nonce, firstSeq uint64) []byte {
	b = beginFrame(b, frameHello)
	b = binary.AppendUvarint(b, nonce)
	b = binary.AppendUvarint(b, firstSeq)
	b = binary.AppendUvarint(b, uint64(len(addr)))
	b = append(b, addr...)
	return finishFrame(b)
}

func parseHello(body []byte) (addr string, nonce, firstSeq uint64, err error) {
	if nonce, body, err = decUvarint(body); err != nil {
		return "", 0, 0, err
	}
	if firstSeq, body, err = decUvarint(body); err != nil {
		return "", 0, 0, err
	}
	var n uint64
	if n, body, err = decUvarint(body); err != nil || n > uint64(len(body)) {
		return "", 0, 0, errShortFrame
	}
	return string(body[:n]), nonce, firstSeq, nil
}

// writeEmptyFrame appends and flushes a bodyless frame (keepalive
// ping/pong); shared so the two sides' probe plumbing cannot drift.
func writeEmptyFrame(bw *bufio.Writer, kind byte) error {
	buf := finishFrame(beginFrame(getFrameBuf(), kind))
	_, err := bw.Write(buf)
	putFrameBuf(buf)
	if err != nil {
		return err
	}
	return bw.Flush()
}

// writePong appends and flushes a keepalive reply frame.
func writePong(bw *bufio.Writer) error {
	return writeEmptyFrame(bw, framePong)
}
