package transport

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// codecPair is a WriteReq-shaped struct exercising ints, strings and
// Set slices; codecNested adds maps, arrays, floats and bools.
type codecPair struct {
	TS  int64
	Val string
}

type codecNested struct {
	Pairs  map[int64][2]codecPair
	Sets   []core.Set
	Flag   bool
	Ratio  float64
	Ratio2 float32
	Raw    []byte
	Count  uint32
	hidden int // unexported: must not travel
}

func encodeDecode(t *testing.T, payload Message) Envelope {
	t.Helper()
	buf, err := appendEnvelope(nil, &Envelope{From: 3, To: 5, Hop: 2, Payload: payload})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := decodeEnvelope(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if env.From != 3 || env.To != 5 || env.Hop != 2 {
		t.Fatalf("header corrupted: %+v", env)
	}
	return env
}

func TestCodecRoundTrip(t *testing.T) {
	Register(codecPair{})
	Register(codecNested{})
	Register("")

	cases := []Message{
		codecPair{TS: -42, Val: "hello"},
		codecPair{},
		"bare string",
		codecNested{
			Pairs: map[int64][2]codecPair{
				7:  {{TS: 1, Val: "a"}, {TS: 2, Val: "b"}},
				-9: {{TS: 3}, {}},
			},
			Sets:   []core.Set{core.NewSet(0, 2), core.NewSet(1)},
			Flag:   true,
			Ratio:  3.25,
			Ratio2: -0.5,
			Raw:    []byte{0, 255, 7},
			Count:  1 << 30,
		},
		nil,
	}
	for _, payload := range cases {
		env := encodeDecode(t, payload)
		if !reflect.DeepEqual(env.Payload, payload) {
			t.Errorf("round trip: got %#v, want %#v", env.Payload, payload)
		}
	}
}

func TestCodecUnexportedFieldsStayHome(t *testing.T) {
	Register(codecNested{})
	env := encodeDecode(t, codecNested{Flag: true, hidden: 99})
	got := env.Payload.(codecNested)
	if got.hidden != 0 || !got.Flag {
		t.Errorf("got %+v, want hidden=0 Flag=true", got)
	}
}

func TestCodecUnregisteredPayloadErrors(t *testing.T) {
	type notRegistered struct{ X int }
	if _, err := appendEnvelope(nil, &Envelope{Payload: notRegistered{1}}); err == nil {
		t.Error("encoding an unregistered type should error")
	}
}

func TestCodecUnknownTagErrors(t *testing.T) {
	Register("")
	buf, err := appendEnvelope(nil, &Envelope{Payload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the type tag (last 4+1 bytes before the 1-byte string
	// length and content: header varints are 3×1 byte here).
	buf[3] ^= 0xFF
	if _, err := decodeEnvelope(buf); err == nil {
		t.Error("unknown tag should error, not misdecode")
	}
}

func TestCodecTruncatedFrameErrors(t *testing.T) {
	Register(codecPair{})
	buf, err := appendEnvelope(nil, &Envelope{Payload: codecPair{TS: 1, Val: "hello"}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if env, err := decodeEnvelope(buf[:len(buf)-cut]); err == nil {
			// Truncation inside the trailing payload value may still
			// parse shorter strings; it must never panic, and headers
			// must be intact if it parses.
			if env.From != 0 && env.From != int(buf[0])>>1 {
				t.Errorf("cut %d: nonsense header %+v", cut, env)
			}
		}
	}
}

func TestCodecRegisterIdempotent(t *testing.T) {
	Register(codecPair{})
	Register(codecPair{}) // must not panic
}
