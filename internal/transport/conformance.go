package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Conformance is the behavioural contract every Port implementation
// must satisfy to carry the paper's protocols: the reliable-channel
// semantics of §3.1 (delivery, per-sender FIFO order) plus the
// operational properties the demos depend on (surviving a peer process
// restart, clean shutdown under concurrent senders, large payloads).
// It runs against both the in-memory Network and TCPNode; transport
// implementations outside this package can reuse it through the
// ConformanceCluster interface.

// ConformanceCluster abstracts a running deployment of n processes for
// the conformance suite.
type ConformanceCluster interface {
	// Port returns the current port of process id (after Start, the
	// fresh process's port).
	Port(id core.ProcessID) Port
	// Stop takes process id down, abandoning its inbox; it reports
	// false if the transport cannot model a process crash, in which
	// case restart cases are skipped. While a process is down, sends
	// directed at it must not block indefinitely or panic.
	Stop(id core.ProcessID) bool
	// Start brings a stopped process back as a fresh process at the
	// same address.
	Start(id core.ProcessID)
	// Close tears the whole cluster down.
	Close()
}

// InjectorCluster is the optional extension a ConformanceCluster
// implements to opt into the fault-injection cases: SetInjector must
// install inj on every transport instance carrying cluster traffic
// (nil removes it).
type InjectorCluster interface {
	SetInjector(inj Injector)
}

// DurableCluster is the optional extension for clusters whose
// receiver-side dedup state survives Stop/Start (e.g. TCP nodes built
// with NewTCPNodeDir). When DurableRestart reports true, the suite
// tightens the restart contract from at-least-once to exactly-once:
// a restarted receiver must never redeliver a message it delivered
// before the restart.
type DurableCluster interface {
	DurableRestart() bool
}

// funcInjector adapts a plain function to Injector for the suite's
// scripted cases.
type funcInjector func(from, to core.ProcessID) (bool, time.Duration, int)

func (f funcInjector) Decide(from, to core.ProcessID) (bool, time.Duration, int) {
	return f(from, to)
}

// stabilityMsg is the PayloadStability case's payload: one string and
// one byte-slice field, the two kinds that alias the receive arena on
// the zero-copy path.
type stabilityMsg struct {
	Seq int
	S   string
	B   []byte
}

// stabilityContent builds the expected payload for seq — variable
// length, so consecutive messages land at different arena offsets.
func stabilityContent(seq int) stabilityMsg {
	s := fmt.Sprintf("stable-%04d-", seq)
	for i := 0; i < seq%17; i++ {
		s += "x"
	}
	b := make([]byte, seq%29)
	for i := range b {
		b[i] = byte(seq + i)
	}
	return stabilityMsg{Seq: seq, S: s, B: b}
}

func checkStability(t *testing.T, got stabilityMsg, when string) {
	t.Helper()
	want := stabilityContent(got.Seq)
	if got.S != want.S || string(got.B) != string(want.B) {
		t.Fatalf("payload %d mutated %s: got {S:%q B:%v}, want {S:%q B:%v}",
			got.Seq, when, got.S, got.B, want.S, want.B)
	}
}

// Conformance runs the suite; mk builds a fresh n-process cluster per
// case (the case owns it and closes it).
func Conformance(t *testing.T, mk func(t *testing.T, n int) ConformanceCluster) {
	Register("")
	Register(int(0))

	t.Run("BasicDelivery", func(t *testing.T) {
		c := mk(t, 3)
		defer c.Close()
		c.Port(0).SendHop(1, "hello", 4)
		env := conformanceRecv(t, c.Port(1))
		if env.From != 0 || env.To != 1 || env.Hop != 4 || env.Payload != "hello" {
			t.Errorf("unexpected envelope %+v", env)
		}
		c.Port(1).Send(0, "reply")
		if env := conformanceRecv(t, c.Port(0)); env.Payload != "reply" {
			t.Errorf("unexpected reply %+v", env)
		}
	})

	t.Run("ConcurrentSendersFIFO", func(t *testing.T) {
		const senders, msgs = 3, 200
		c := mk(t, senders+1)
		defer c.Close()
		var wg sync.WaitGroup
		for s := 1; s <= senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					c.Port(s).Send(0, i)
				}
			}(s)
		}
		next := make([]int, senders+1)
		for got := 0; got < senders*msgs; got++ {
			env := conformanceRecv(t, c.Port(0))
			i, ok := env.Payload.(int)
			if !ok {
				t.Fatalf("payload %T, want int", env.Payload)
			}
			if i != next[env.From] {
				t.Fatalf("sender %d delivered %d, want %d (per-sender FIFO broken)", env.From, i, next[env.From])
			}
			next[env.From]++
		}
		wg.Wait()
	})

	t.Run("LargePayload", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		big := make([]byte, 1<<20)
		for i := range big {
			big[i] = byte(i)
		}
		c.Port(0).Send(1, string(big))
		env := conformanceRecv(t, c.Port(1))
		if s, ok := env.Payload.(string); !ok || s != string(big) {
			t.Errorf("large payload corrupted (got %d bytes, ok=%v)", len(s), ok)
		}
	})

	t.Run("DeliveryAfterPeerRestart", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		// Prime the sender's connection so the restart leaves a dead
		// cached socket behind — the exact ROADMAP hang scenario.
		c.Port(0).Send(1, "prime")
		if env := conformanceRecv(t, c.Port(1)); env.Payload != "prime" {
			t.Fatalf("prime = %+v", env)
		}
		if !c.Stop(1) {
			t.Skip("transport cannot model a process restart")
		}
		// Messages sent into the void must be retransmitted to the
		// fresh process, not silently lost.
		for i := 0; i < 5; i++ {
			c.Port(0).Send(1, fmt.Sprintf("down-%d", i))
		}
		c.Start(1)
		c.Port(0).Send(1, "up")
		want := map[string]bool{"up": true}
		for i := 0; i < 5; i++ {
			want[fmt.Sprintf("down-%d", i)] = true
		}
		for len(want) > 0 {
			env := conformanceRecv(t, c.Port(1))
			s, _ := env.Payload.(string)
			if s == "prime" {
				// A pre-stop message whose ack was lost in the restart
				// may legally be redelivered (at-least-once across
				// incarnations); post-stop messages may not duplicate.
				continue
			}
			if !want[s] {
				t.Fatalf("unexpected or duplicate payload %q (remaining %v)", s, want)
			}
			delete(want, s)
		}
	})

	t.Run("DedupAcrossReceiverRestart", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		dc, ok := c.(DurableCluster)
		if !ok || !dc.DurableRestart() {
			t.Skip("transport has no durable dedup state")
		}
		// DeliveryAfterPeerRestart with the at-least-once exemption
		// removed: the restarted receiver reloads its persisted resume
		// point, so even a pre-stop message whose ack was lost in the
		// crash must be deduplicated, never redelivered.
		c.Port(0).Send(1, "prime")
		if env := conformanceRecv(t, c.Port(1)); env.Payload != "prime" {
			t.Fatalf("prime = %+v", env)
		}
		if !c.Stop(1) {
			t.Skip("transport cannot model a process restart")
		}
		for i := 0; i < 5; i++ {
			c.Port(0).Send(1, fmt.Sprintf("down-%d", i))
		}
		c.Start(1)
		c.Port(0).Send(1, "up")
		want := map[string]bool{"up": true}
		for i := 0; i < 5; i++ {
			want[fmt.Sprintf("down-%d", i)] = true
		}
		for len(want) > 0 {
			env := conformanceRecv(t, c.Port(1))
			s, _ := env.Payload.(string)
			if !want[s] {
				t.Fatalf("duplicate or unexpected payload %q across durable restart (remaining %v)", s, want)
			}
			delete(want, s)
		}
		// And quiet afterwards: no late retransmission slips past the
		// reloaded dedup table.
		select {
		case env := <-c.Port(1).Inbox():
			t.Fatalf("late duplicate %+v after all expected deliveries", env.Payload)
		case <-time.After(200 * time.Millisecond):
		}
	})

	t.Run("RecoveryHandshake", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		dc, ok := c.(DurableCluster)
		if !ok || !dc.DurableRestart() {
			t.Skip("transport has no durable dedup state")
		}
		// Same-incarnation resume: the restarted receiver's hello ack
		// replays its persisted cumulative ack, so the sender trims its
		// retransmission queue and resumes exactly past the delivered
		// prefix — in order, without gaps or resurrections.
		for i := 0; i < 10; i++ {
			c.Port(0).Send(1, fmt.Sprintf("pre-%d", i))
		}
		for i := 0; i < 10; i++ {
			if env := conformanceRecv(t, c.Port(1)); env.Payload != fmt.Sprintf("pre-%d", i) {
				t.Fatalf("pre-restart message %d = %+v", i, env)
			}
		}
		if !c.Stop(1) {
			t.Skip("transport cannot model a process restart")
		}
		c.Start(1)
		for i := 0; i < 10; i++ {
			c.Port(0).Send(1, fmt.Sprintf("post-%d", i))
		}
		for i := 0; i < 10; i++ {
			env := conformanceRecv(t, c.Port(1))
			if want := fmt.Sprintf("post-%d", i); env.Payload != want {
				t.Fatalf("post-restart delivery %d = %+v, want %q (dup, loss, or resurrected pre-restart message)", i, env, want)
			}
		}
		// New sender incarnation: the receiver's persisted state names
		// the OLD incarnation's nonce; a fresh sender must reset it and
		// get its messages through, not be suppressed by stale state.
		if c.Stop(0) {
			c.Start(0)
			c.Port(0).Send(1, "fresh")
			if env := conformanceRecv(t, c.Port(1)); env.Payload != "fresh" {
				t.Fatalf("fresh sender incarnation delivered %+v, want fresh", env)
			}
		}
	})

	t.Run("BatchFIFOWithinBatch", func(t *testing.T) {
		const batches, per = 20, 50
		c := mk(t, 2)
		defer c.Close()
		go func() {
			n := 0
			for b := 0; b < batches; b++ {
				msgs := make([]Message, per)
				for i := range msgs {
					msgs[i] = n
					n++
				}
				c.Port(0).SendBatch(1, msgs, 3)
			}
		}()
		for i := 0; i < batches*per; i++ {
			env := conformanceRecv(t, c.Port(1))
			if env.Payload != i || env.Hop != 3 {
				t.Fatalf("envelope %d = %+v, want payload %d hop 3 (batch order broken)", i, env, i)
			}
		}
	})

	t.Run("BroadcastDelivery", func(t *testing.T) {
		c := mk(t, 4)
		defer c.Close()
		// The destination set includes the sender: protocols broadcast
		// to quorums containing themselves.
		c.Port(0).Broadcast(core.NewSet(0, 1, 2), "bcast", 2)
		for _, id := range []core.ProcessID{0, 1, 2} {
			env := conformanceRecv(t, c.Port(id))
			if env.From != 0 || env.To != id || env.Hop != 2 || env.Payload != "bcast" {
				t.Errorf("process %d received %+v, want bcast from 0 at hop 2", id, env)
			}
		}
		// Process 3 was outside dst: per-sender FIFO means its next
		// delivery must be the direct send, not a stray broadcast copy.
		c.Port(0).Send(3, "direct")
		if env := conformanceRecv(t, c.Port(3)); env.Payload != "direct" {
			t.Errorf("process 3 received %+v, want the direct send only", env)
		}
	})

	t.Run("BatchAcrossPeerRestart", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		c.Port(0).Send(1, "prime")
		if env := conformanceRecv(t, c.Port(1)); env.Payload != "prime" {
			t.Fatalf("prime = %+v", env)
		}
		if !c.Stop(1) {
			t.Skip("transport cannot model a process restart")
		}
		down := []Message{"down-0", "down-1", "down-2", "down-3", "down-4"}
		c.Port(0).SendBatch(1, down, 0)
		c.Start(1)
		c.Port(0).SendBatch(1, []Message{"up-0", "up-1"}, 0)
		want := map[string]bool{"up-0": true, "up-1": true}
		for _, m := range down {
			want[m.(string)] = true
		}
		for len(want) > 0 {
			env := conformanceRecv(t, c.Port(1))
			s, _ := env.Payload.(string)
			if s == "prime" {
				continue // legal at-least-once redelivery across incarnations
			}
			if !want[s] {
				t.Fatalf("unexpected or duplicate payload %q (remaining %v)", s, want)
			}
			delete(want, s)
		}
	})

	t.Run("BatchToCrashedDestination", func(t *testing.T) {
		c := mk(t, 3)
		defer c.Close()
		if !c.Stop(1) {
			t.Skip("transport cannot model a process crash")
		}
		// A batch aimed at a crashed process must return without
		// blocking indefinitely and must not panic...
		msgs := make([]Message, 100)
		for i := range msgs {
			msgs[i] = i
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			c.Port(0).SendBatch(1, msgs, 0)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("SendBatch to a crashed destination blocked")
		}
		// ...and traffic to live peers keeps flowing.
		c.Port(0).Send(2, "alive")
		if env := conformanceRecv(t, c.Port(2)); env.Payload != "alive" {
			t.Errorf("live peer received %+v, want alive", env)
		}
	})

	t.Run("CloseRace", func(t *testing.T) {
		c := mk(t, 4)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for s := 1; s < 4; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					c.Port(s).Send(0, i)
				}
			}(s)
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range c.Port(0).Inbox() {
			}
		}()
		time.Sleep(20 * time.Millisecond)
		done := make(chan struct{})
		go func() {
			c.Close() // must not panic or deadlock against live senders
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Close deadlocked against concurrent senders")
		}
		close(stop)
		wg.Wait()
		select {
		case <-drained:
		case <-time.After(10 * time.Second):
			t.Fatal("inbox never closed")
		}
	})

	t.Run("PayloadStability", func(t *testing.T) {
		// No payload may mutate after delivery: envelopes decoded out of
		// a shared receive arena stay intact while OTHER envelopes of the
		// same and later bursts are released and their arenas recycle.
		// Poisoning makes a premature recycle corrupt the held payloads
		// deterministically instead of silently.
		SetArenaPoison(true)
		defer SetArenaPoison(false)
		Register(stabilityMsg{})
		c := mk(t, 2)
		defer c.Close()
		const msgs = 600
		go func() {
			for i := 0; i < msgs; i++ {
				c.Port(0).Send(1, stabilityContent(i))
			}
		}()
		var held []Envelope
		for i := 0; i < msgs; i++ {
			env := conformanceRecv(t, c.Port(1))
			m, ok := env.Payload.(stabilityMsg)
			if !ok {
				t.Fatalf("payload %T, want stabilityMsg", env.Payload)
			}
			checkStability(t, m, "at delivery")
			if m.Seq%3 == 0 {
				held = append(held, env) // outlive the delivery burst
			} else {
				env.Release()
			}
		}
		// Every non-held envelope has been released and most of their
		// arenas have recycled under the held ones' feet; the held
		// payloads must still read back exactly as delivered.
		for i := range held {
			checkStability(t, held[i].Payload.(stabilityMsg), "after later bursts recycled")
			held[i].Release()
		}
	})

	t.Run("InjectorDuplication", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		ic, ok := c.(InjectorCluster)
		if !ok {
			t.Skip("cluster does not support fault injection")
		}
		const msgs = 50
		ic.SetInjector(funcInjector(func(from, to core.ProcessID) (bool, time.Duration, int) {
			if from == 0 && to == 1 {
				return false, 0, 1 // one extra copy of everything
			}
			return false, 0, 0
		}))
		for i := 0; i < msgs; i++ {
			c.Port(0).Send(1, i)
		}
		got := make(map[int]int, msgs)
		for n := 0; n < 2*msgs; n++ {
			env := conformanceRecv(t, c.Port(1))
			got[env.Payload.(int)]++
		}
		for i := 0; i < msgs; i++ {
			if got[i] != 2 {
				t.Errorf("payload %d delivered %d times, want exactly 2", i, got[i])
			}
		}
	})

	t.Run("InjectorReorder", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		ic, ok := c.(InjectorCluster)
		if !ok {
			t.Skip("cluster does not support fault injection")
		}
		// Delay every second envelope on 0→1 long enough to dominate
		// scheduling noise: the undelayed half overtakes it, so delivery
		// order must differ from send order (non-FIFO lossless channel).
		const msgs = 40
		var calls atomic.Int64
		ic.SetInjector(funcInjector(func(from, to core.ProcessID) (bool, time.Duration, int) {
			if from == 0 && to == 1 && calls.Add(1)%2 == 1 {
				return false, 150 * time.Millisecond, 0
			}
			return false, 0, 0
		}))
		for i := 0; i < msgs; i++ {
			c.Port(0).Send(1, i)
		}
		order := make([]int, 0, msgs)
		seen := make(map[int]bool, msgs)
		for n := 0; n < msgs; n++ {
			env := conformanceRecv(t, c.Port(1))
			i := env.Payload.(int)
			if seen[i] {
				t.Fatalf("payload %d duplicated by a pure delay", i)
			}
			seen[i] = true
			order = append(order, i)
		}
		inOrder := true
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				inOrder = false
				break
			}
		}
		if inOrder {
			t.Error("deliveries arrived in send order despite alternating delays")
		}
	})

	t.Run("InjectorAsymmetricPartition", func(t *testing.T) {
		c := mk(t, 2)
		defer c.Close()
		ic, ok := c.(InjectorCluster)
		if !ok {
			t.Skip("cluster does not support fault injection")
		}
		// Cut 0→1 while 1→0 flows.
		ic.SetInjector(funcInjector(func(from, to core.ProcessID) (bool, time.Duration, int) {
			return from == 0 && to == 1, 0, 0
		}))
		c.Port(0).Send(1, "fwd")
		c.Port(1).Send(0, "rev")
		if env := conformanceRecv(t, c.Port(0)); env.Payload != "rev" {
			t.Fatalf("reverse direction received %+v, want rev", env)
		}
		select {
		case env := <-c.Port(1).Inbox():
			t.Fatalf("cut direction delivered %+v", env)
		case <-time.After(300 * time.Millisecond):
		}
		// Healing the partition restores the link for new sends (the
		// injector-dropped envelope is gone for good).
		ic.SetInjector(nil)
		c.Port(0).Send(1, "after-heal")
		if env := conformanceRecv(t, c.Port(1)); env.Payload != "after-heal" {
			t.Fatalf("healed link received %+v, want after-heal", env)
		}
	})
}

func conformanceRecv(t *testing.T, p Port) Envelope {
	t.Helper()
	select {
	case env, ok := <-p.Inbox():
		if !ok {
			t.Fatal("inbox closed")
		}
		return env
	case <-time.After(10 * time.Second):
		t.Fatal("timeout waiting for envelope")
	}
	return Envelope{}
}
