package transport

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// networkCluster adapts the in-memory Network to the conformance
// suite. It cannot model a process restart (ports are permanent), so
// Stop reports false and restart cases are skipped.
type networkCluster struct {
	net *Network
}

func (c *networkCluster) Port(id core.ProcessID) Port { return c.net.Port(id) }
func (c *networkCluster) Stop(core.ProcessID) bool    { return false }
func (c *networkCluster) Start(core.ProcessID)        {}
func (c *networkCluster) Close()                      { c.net.Close() }
func (c *networkCluster) SetInjector(inj Injector)    { c.net.SetInjector(inj) }

func TestConformanceNetwork(t *testing.T) {
	Conformance(t, func(t *testing.T, n int) ConformanceCluster {
		return &networkCluster{net: NewNetwork(n)}
	})
}

// tcpCluster runs one TCPNode per process on loopback. Addresses are
// resolved as nodes bind (":0"), and a restarted node re-binds its old
// address, exactly like a demo client process reusing its slot.
type tcpCluster struct {
	t     *testing.T
	addrs map[core.ProcessID]string
	nodes []*TCPNode
	dirs  []string // per-process dedup state dirs; nil = volatile
}

func newTCPCluster(t *testing.T, n int) *tcpCluster {
	return newTCPClusterDurable(t, n, false)
}

// newTCPClusterDurable gives each node a stable per-process state dir
// when durable is set, so a Stop/Start cycle reopens the same dedup
// table — the process-restart-with-disk shape of the recovery tier.
func newTCPClusterDurable(t *testing.T, n int, durable bool) *tcpCluster {
	t.Helper()
	c := &tcpCluster{t: t, addrs: make(map[core.ProcessID]string, n), nodes: make([]*TCPNode, n)}
	if durable {
		base := t.TempDir()
		c.dirs = make([]string, n)
		for i := range c.dirs {
			c.dirs[i] = filepath.Join(base, fmt.Sprintf("p%d", i))
		}
	}
	for i := 0; i < n; i++ {
		c.addrs[i] = "127.0.0.1:0"
	}
	for i := 0; i < n; i++ {
		node, err := NewTCPNodeDir(i, c.addrs, c.dir(i))
		if err != nil {
			c.Close()
			t.Fatalf("node %d: %v", i, err)
		}
		c.nodes[i] = node
		c.addrs[i] = node.Addr()
	}
	return c
}

func (c *tcpCluster) dir(id core.ProcessID) string {
	if c.dirs == nil {
		return ""
	}
	return c.dirs[id]
}

func (c *tcpCluster) Port(id core.ProcessID) Port { return c.nodes[id] }

func (c *tcpCluster) DurableRestart() bool { return c.dirs != nil }

func (c *tcpCluster) Stop(id core.ProcessID) bool {
	c.nodes[id].Close()
	return true
}

func (c *tcpCluster) Start(id core.ProcessID) {
	node, err := NewTCPNodeDir(id, c.addrs, c.dir(id)) // addrs[id] is the concrete old address
	if err != nil {
		c.t.Fatalf("restart node %d: %v", id, err)
	}
	c.nodes[id] = node
}

func (c *tcpCluster) Close() {
	for _, node := range c.nodes {
		if node != nil {
			node.Close()
		}
	}
}

func (c *tcpCluster) SetInjector(inj Injector) {
	for _, node := range c.nodes {
		if node != nil {
			node.h.SetInjector(inj)
		}
	}
}

func TestConformanceTCP(t *testing.T) {
	Conformance(t, func(t *testing.T, n int) ConformanceCluster {
		return newTCPCluster(t, n)
	})
}

func TestConformanceTCPDurable(t *testing.T) {
	Conformance(t, func(t *testing.T, n int) ConformanceCluster {
		return newTCPClusterDurable(t, n, true)
	})
}

// tcpSharedCluster runs the conformance suite in shared-session mode:
// process 1 is its own host, and ALL other logical processes are
// colocated on one host — so every suite case that talks to process 1
// multiplexes the traffic of n-1 logical nodes over a single TCP
// session, and traffic among the colocated processes takes the
// in-process path. Stop/Start model a restart of process 1's host
// (the only process the suite restarts).
type tcpSharedCluster struct {
	t      *testing.T
	addrs  map[core.ProcessID]string
	shared *TCPHost
	solo   *TCPNode // process 1, restartable
	dir    string   // solo's dedup state dir; "" = volatile
	nodes  map[core.ProcessID]*TCPNode
}

func newTCPSharedCluster(t *testing.T, n int) *tcpSharedCluster {
	return newTCPSharedClusterDurable(t, n, false)
}

// newTCPSharedClusterDurable makes the restartable solo host (process
// 1, the only process the suite restarts) durable: it reopens the same
// dedup dir on Start. The shared host stays volatile — it never
// restarts here.
func newTCPSharedClusterDurable(t *testing.T, n int, durable bool) *tcpSharedCluster {
	t.Helper()
	c := &tcpSharedCluster{
		t:     t,
		addrs: make(map[core.ProcessID]string, n),
		nodes: make(map[core.ProcessID]*TCPNode, n),
	}
	if durable {
		c.dir = t.TempDir()
	}
	shared, err := NewTCPHost("127.0.0.1:0", c.addrs)
	if err != nil {
		t.Fatal(err)
	}
	c.shared = shared
	for id := 0; id < n; id++ {
		if id == 1 {
			continue
		}
		c.addrs[id] = shared.Addr()
		node, err := shared.Node(id)
		if err != nil {
			c.Close()
			t.Fatalf("node %d: %v", id, err)
		}
		c.nodes[id] = node
	}
	if n > 1 {
		c.addrs[1] = "127.0.0.1:0"
		solo, err := NewTCPNodeDir(1, c.addrs, c.dir)
		if err != nil {
			c.Close()
			t.Fatalf("node 1: %v", err)
		}
		c.solo = solo
		c.nodes[1] = solo
		c.addrs[1] = solo.Addr()
	}
	return c
}

func (c *tcpSharedCluster) Port(id core.ProcessID) Port { return c.nodes[id] }

func (c *tcpSharedCluster) DurableRestart() bool { return c.dir != "" }

func (c *tcpSharedCluster) Stop(id core.ProcessID) bool {
	if id != 1 || c.solo == nil {
		return false // only the solo host models a restart here
	}
	c.solo.Close()
	return true
}

func (c *tcpSharedCluster) Start(id core.ProcessID) {
	solo, err := NewTCPNodeDir(1, c.addrs, c.dir) // addrs[1] is the concrete old address
	if err != nil {
		c.t.Fatalf("restart node 1: %v", err)
	}
	c.solo = solo
	c.nodes[1] = solo
}

func (c *tcpSharedCluster) Close() {
	c.shared.Close()
	if c.solo != nil {
		c.solo.Close()
	}
}

func (c *tcpSharedCluster) SetInjector(inj Injector) {
	c.shared.SetInjector(inj)
	if c.solo != nil {
		c.solo.h.SetInjector(inj)
	}
}

func TestConformanceTCPSharedSessions(t *testing.T) {
	Conformance(t, func(t *testing.T, n int) ConformanceCluster {
		return newTCPSharedCluster(t, n)
	})
}

func TestConformanceTCPSharedSessionsDurable(t *testing.T) {
	Conformance(t, func(t *testing.T, n int) ConformanceCluster {
		return newTCPSharedClusterDurable(t, n, true)
	})
}

// TestTCPCloseWithFullInbox pins the readLoop shutdown race of the
// seed: a full inbox used to block the read goroutine on `inbox <-`
// forever, deadlocking Close's wg.Wait. Delivery now selects against
// the done channel.
func TestTCPCloseWithFullInbox(t *testing.T) {
	Register("")
	c := newTCPCluster(t, 2)
	defer c.Close()
	// Overflow node 0's inbox with nobody draining it.
	for i := 0; i < inboxCap+256; i++ {
		c.nodes[1].Send(0, "flood")
	}
	// Wait until the inbox is actually full, so the serve goroutine is
	// provably parked on the channel send.
	deadline := time.Now().Add(5 * time.Second)
	for len(c.nodes[0].inbox) < inboxCap {
		if time.Now().After(deadline) {
			t.Fatalf("inbox never filled: %d/%d", len(c.nodes[0].inbox), inboxCap)
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		c.nodes[0].Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on a full inbox")
	}
}

// TestTCPStatsCountsDrops pins the Stats surface of the send-error
// path: unknown peers and post-Close sends are counted, not silent.
func TestTCPStatsCountsDrops(t *testing.T) {
	Register("")
	n, err := NewTCPNode(0, map[core.ProcessID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	n.Send(9, "unknown peer")
	if s := n.Stats(); s.Drops != 1 {
		t.Errorf("Drops = %d after unknown-peer send, want 1", s.Drops)
	}
	n.Close()
	n.Send(0, "after close")
	if s := n.Stats(); s.Drops != 2 {
		t.Errorf("Drops = %d after post-close send, want 2", s.Drops)
	}
}

// TestTCPSendToDeadPeerNeverWedges pins the crash-stop liveness
// property: once the retransmission queue to a permanently dead peer
// is full, further sends drop (counted) after the bounded stall
// instead of blocking the protocol goroutine forever — the quorum
// protocols must keep making progress past dead servers.
func TestTCPSendToDeadPeerNeverWedges(t *testing.T) {
	Register("")
	deadAddr := reservedDeadAddr(t)
	n, err := NewTCPNode(0, map[core.ProcessID]string{0: "127.0.0.1:0", 1: deadAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < maxUnacked+2; i++ {
			n.Send(1, "into the void")
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("send to a dead peer wedged past the stall timeout")
	}
	if s := n.Stats(); s.Drops == 0 {
		t.Errorf("expected counted drops past the full queue, got stats %+v", s)
	}
}

// reservedDeadAddr returns a loopback address that refuses connections.
func reservedDeadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestTCPStatsNoLossAcrossRestart asserts the acceptance criterion
// directly at the transport level: every message sent across a peer
// restart is either delivered or still queued — never dropped.
func TestTCPStatsNoLossAcrossRestart(t *testing.T) {
	Register("")
	c := newTCPCluster(t, 2)
	defer c.Close()
	c.nodes[0].Send(1, "prime")
	conformanceRecv(t, c.nodes[1])
	// Wait for ack quiescence so "prime" is provably off the sender's
	// retransmission queue; otherwise its redelivery to the fresh
	// incarnation (legal at-least-once behaviour) skews the counts.
	deadline := time.Now().Add(5 * time.Second)
	for c.nodes[0].Stats().Queued != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop(1)
	const burst = 50
	for i := 0; i < burst; i++ {
		c.nodes[0].Send(1, "m")
	}
	c.Start(1)
	for i := 0; i < burst; i++ {
		conformanceRecv(t, c.nodes[1])
	}
	s0 := c.nodes[0].Stats()
	if s0.Drops != 0 {
		t.Errorf("sender dropped %d messages across restart", s0.Drops)
	}
	if s0.Sent != burst+1 {
		t.Errorf("Sent = %d, want %d", s0.Sent, burst+1)
	}
	if s1 := c.nodes[1].Stats(); s1.Delivered != burst {
		t.Errorf("restarted node delivered %d, want %d", s1.Delivered, burst)
	}
}
