package transport

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/wal"
)

// Persistent dedup state: a durable TCPHost (NewTCPHostDir) saves each
// peer's (incarnation nonce, cumulative delivered seq) to an atomic
// write-rename file and reloads it on construction, so exactly-once
// delivery survives a receiver kill -9 — the open TCP follow-on.
//
// The ordering is write-ahead on the receive path: a burst's resume
// point is persisted BEFORE its frames are handed to the inboxes.
// A crash therefore can lose the window between persist and delivery
// (the retransmitted frames are dropped as dups), but can never
// double-deliver — at-most-once is the invariant the protocol layers
// need, since every client retries with fresh requests on timeout but
// cannot tolerate a write applying twice under one seq. The save rides
// the existing burst structure: one file write per receive burst, not
// per frame, and only when the resume point advanced.
//
// The recovery handshake needs no new frames: the hello's immediate
// resume-point ack (serveConn) replays the persisted cumulative ack to
// a same-incarnation sender, which trims its retransmission queue and
// resumes past the delivered prefix; a new sender incarnation (nonce
// change) resets the state exactly as in-memory operation does.

// dedupMagic brands the state files; a file without it (or with a CRC
// mismatch) is ignored rather than trusted.
const dedupMagic = "RQSDDUP1"

const dedupSuffix = ".dedup"

// encodeDedup frames one peer's state: magic, addr, nonce, delivered,
// CRC over everything before it.
func encodeDedup(addr string, nonce, delivered uint64) []byte {
	b := make([]byte, 0, len(dedupMagic)+10+len(addr)+20)
	b = append(b, dedupMagic...)
	b = binary.AppendUvarint(b, uint64(len(addr)))
	b = append(b, addr...)
	b = binary.AppendUvarint(b, nonce)
	b = binary.AppendUvarint(b, delivered)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func decodeDedup(b []byte) (addr string, nonce, delivered uint64, err error) {
	if len(b) < len(dedupMagic)+4 || string(b[:len(dedupMagic)]) != dedupMagic {
		return "", 0, 0, errors.New("tcp: bad dedup file magic")
	}
	body, crcB := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcB) {
		return "", 0, 0, errors.New("tcp: dedup file crc mismatch")
	}
	rest := body[len(dedupMagic):]
	n, rest, err := decUvarint(rest)
	if err != nil || uint64(len(rest)) < n {
		return "", 0, 0, errors.New("tcp: dedup file truncated")
	}
	addr = string(rest[:n])
	rest = rest[n:]
	if nonce, rest, err = decUvarint(rest); err != nil {
		return "", 0, 0, err
	}
	if delivered, _, err = decUvarint(rest); err != nil {
		return "", 0, 0, err
	}
	return addr, nonce, delivered, nil
}

// dedupFileName maps a peer address to a filename. The address is also
// stored inside the file, so the name only needs to be stable and
// filesystem-safe.
func dedupFileName(addr string) string {
	r := strings.NewReplacer(":", "_", "/", "_", "[", "", "]", "")
	return r.Replace(addr) + dedupSuffix
}

// loadDedupState populates h.rcv from the state files in h.stateDir.
// Invalid files are skipped: trusting nothing is always safe (the
// state degrades to a fresh incarnation reset).
func (h *TCPHost) loadDedupState() error {
	if err := os.MkdirAll(h.stateDir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(h.stateDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), dedupSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(h.stateDir, e.Name()))
		if err != nil {
			continue
		}
		addr, nonce, delivered, err := decodeDedup(data)
		if err != nil || nonce == 0 {
			continue
		}
		st := &rcvState{nonce: nonce, delivered: delivered,
			savedNonce: nonce, savedDelivered: delivered}
		h.rcv[addr] = st
	}
	return nil
}

// persistDedup durably records that every frame of peer incarnation
// nonce up to seq target is (about to be) delivered. It reports false
// only when the state could not be made durable — the caller must then
// refuse to deliver the burst, since delivering without the record
// would allow a post-restart double delivery. Saves are skipped when
// a newer save already covers target, and when the incarnation moved
// on (a racing conn of a newer peer restart owns the file now).
func (h *TCPHost) persistDedup(addr string, st *rcvState, nonce, target uint64) bool {
	st.saveMu.Lock()
	defer st.saveMu.Unlock()
	if st.savedNonce == nonce && st.savedDelivered >= target {
		return true
	}
	st.mu.Lock()
	cur := st.nonce
	st.mu.Unlock()
	if cur != nonce {
		// Stale incarnation: its frames will be dropped anyway.
		return true
	}
	path := filepath.Join(h.stateDir, dedupFileName(addr))
	if err := wal.WriteFileAtomic(path, encodeDedup(addr, nonce, target)); err != nil {
		return false
	}
	st.savedNonce, st.savedDelivered = nonce, target
	return true
}
