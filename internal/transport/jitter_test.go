package transport

import (
	"testing"
	"time"
)

// TestDialBackoffJitterSpreads pins the thundering-herd fix: N links
// that lost their conns at the same instant (a partition healing, a
// peer restarting) must not redial in lockstep waves. The jittered
// backoff samples each wait uniformly from [base/2, base], so 64
// "simultaneous" redials land spread across the half-window.
func TestDialBackoffJitterSpreads(t *testing.T) {
	const links = 64
	base := 400 * time.Millisecond
	distinct := make(map[time.Duration]struct{}, links)
	for i := 0; i < links; i++ {
		d := jitteredBackoff(base)
		if d < base/2 || d > base {
			t.Fatalf("jittered wait %v outside [%v, %v]", d, base/2, base)
		}
		distinct[d] = struct{}{}
	}
	// With nanosecond granularity over a 200ms window, collapsing 64
	// draws to a handful of values means the jitter is broken.
	if len(distinct) < links/4 {
		t.Fatalf("%d simultaneous redials produced only %d distinct waits", links, len(distinct))
	}
	// Tiny backoffs must stay sane (no Int63n(0) panic, no negatives).
	for _, b := range []time.Duration{0, 1, 2, dialBackoffMin} {
		if d := jitteredBackoff(b); d < 0 || d > b {
			t.Fatalf("jitteredBackoff(%v) = %v", b, d)
		}
	}
}
