package transport

import (
	"bufio"
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// A peerLink is one host's managed session to a remote process: ONE
// physical TCP connection carrying the traffic of every logical (from,
// to) pair between the two processes. It replaces both the seed's
// cache-forever tcpConn and the pre-session design's link-per-node
// scheme: frames are sequenced and kept in a bounded retransmission
// queue until the peer acknowledges them, so a message written into a
// dying socket (the ROADMAP ack-loss hang) is re-sent on the next
// connection — and the queue, acks, redial and keepalive machinery are
// paid once per process pair, not once per logical node pair. The link
// redials with backoff on write errors, on the peer closing the conn,
// and on ack silence (retransmitTimeout with no cumulative-ack
// progress), which covers the case where writes into a dead socket
// still "succeed" locally because the peer vanished without a FIN.
// Idle sessions probe the peer with ping frames (heartbeatInterval) so
// a partitioned peer is detected — and counted in Stats().DeadPeers —
// even when no data is outstanding to trip the ack-silence check;
// kernel TCP keepalives (keepAlivePeriod) back this up for long-idle
// conns.
//
// One writer goroutine per session owns the conn lifecycle and
// coalesces all pending frames into a single buffered write per
// wakeup; a per-conn reader feeds cumulative acks back. Isolated sends
// take an inline fast path instead (one write from the sender's
// goroutine); back-to-back sends are routed through the writer so they
// coalesce. Only the writer trims the queue, which is what makes
// returning acked frame buffers to the pool safe while a
// retransmission may still be in flight.
//
// # Retransmission and ack invariants
//
// The reliable-channel semantics of the model (§3.1) rest on these,
// which transport.Conformance and the restart tests pin. They are per
// session, and logical links inherit them: every (from, to) pair
// between two processes rides one session, so per-logical-link FIFO
// follows from session FIFO plus seq assignment under the session
// lock.
//
//  1. Sequencing: every data frame on a session carries a seq assigned
//     under the session lock, contiguous and ascending within a
//     session incarnation (nonce). queue[head:] always holds the
//     unacked frames in ascending seq order.
//  2. Retention: a frame leaves the queue only when the peer's
//     cumulative ack covers its seq (acked ≥ seq) or the host closes.
//     Redials re-send every retained frame on the new conn — delivery
//     is at-least-once across arbitrary conn churn, for every logical
//     link multiplexed on the session.
//  3. Cumulative acks: the receiver acks the highest contiguously
//     delivered seq per (process, nonce); acks are coalesced (one per
//     ackEvery frames under load, or after the quiet window) and never
//     go backwards. An ack covering seq s implies every frame ≤ s was
//     handed to its destination inbox exactly once.
//  4. Dedup: the receiver tracks the last delivered seq per
//     (process, nonce); retransmitted frames at or below it are acked
//     but not redelivered. A restarted sender process presents a fresh
//     nonce and starts a new stream (exactly-once within an
//     incarnation, at-least-once across receiver restarts — the
//     protocols tolerate duplicates by design).
//  5. Liveness: ack silence for retransmitTimeout with frames
//     outstanding declares the conn dead and redials; an idle conn
//     whose peer stops answering keepalive pings is declared dead
//     after heartbeatMiss probes; a sender blocked on a full queue for
//     sendStallTimeout drops the send and counts it in Stats
//     (crash-stop peers must not wedge quorum protocols).
//  6. Progress accounting: maxSent ≥ acked always; sentIdx marks the
//     first queued frame not yet written to the current conn, so a
//     reconnect resumes from the oldest unacked frame, never skipping
//     or reordering.

const (
	// maxUnacked bounds the retransmission queue; a sender hitting the
	// bound blocks until the peer acks, mirroring the backpressure of
	// a full in-memory inbox.
	maxUnacked = 4096
	// retransmitTimeout is the ack-silence window after which the link
	// declares the conn dead and redials.
	retransmitTimeout = 250 * time.Millisecond
	dialTimeout       = 2 * time.Second
	dialBackoffMin    = 5 * time.Millisecond
	dialBackoffMax    = 500 * time.Millisecond
	// inlineGapNS separates isolated sends (inline write, lowest
	// latency) from sprints (previous send < gap ago — skip the inline
	// syscall and let the writer goroutine batch frames).
	inlineGapNS = 5000
	// sendStallTimeout bounds how long a full retransmission queue may
	// block a sender. A live peer acks within milliseconds, so hitting
	// this means the peer is gone for good (crash-stop): the send is
	// dropped and counted rather than wedging the protocol goroutine —
	// quorum protocols must keep making progress past dead servers.
	sendStallTimeout = 2 * time.Second
	// compactAt is the trimmed-prefix length that triggers queue
	// compaction; trimming itself just advances the head index.
	compactAt = 1024
)

// Keepalive knobs. Variables, not constants, so the partition tests
// can shrink the probe cadence; production code should treat them as
// fixed.
var (
	// keepAlivePeriod is the kernel TCP keepalive interval set on every
	// dialed and accepted conn — the backstop that eventually surfaces
	// a vanished peer as a read error even if the transport itself went
	// quiet.
	keepAlivePeriod = 15 * time.Second
	// heartbeatInterval is the application-level probe cadence on idle
	// established sessions: every interval with no traffic and nothing
	// queued, the writer sends a ping frame the peer answers with a
	// pong. Unlike ack silence this needs no outstanding data, so a
	// silently partitioned peer is detected from a fully idle session.
	heartbeatInterval = 1 * time.Second
	// heartbeatMiss is how many consecutive unanswered pings declare
	// the conn dead (counted in Stats().DeadPeers, conn closed; the
	// next send redials).
	heartbeatMiss = 3
)

// setKeepAlive arms the kernel TCP keepalive on a conn; one helper so
// dialed (link.go) and accepted (tcp.go) conns cannot diverge.
func setKeepAlive(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(keepAlivePeriod)
	}
}

type sendFrame struct {
	seq uint64
	buf []byte // complete wire frame: length prefix, kind, seq, envelope
}

type peerLink struct {
	h     *TCPHost
	addr  string // remote process's listen address (the session key)
	nonce uint64 // session incarnation: a restarted sender is a new stream

	// rcvSt is this host's receive-side dedup state for the same remote
	// process — the source of piggybacked acks: data frames to the peer
	// carry the cumulative delivered seq of the peer's reverse-direction
	// stream (stamped at write time), so bidirectional traffic
	// acknowledges itself without standalone ack frames. The pointer is
	// stable for the host's lifetime.
	rcvSt *rcvState

	mu         sync.Mutex
	space      chan struct{} // closed+replaced when the queue drains or the host closes
	queue      []sendFrame   // queue[head:] = unacked frames, ascending seq
	head       int           // trimmed prefix length (acked, not yet compacted)
	nextSeq    uint64        // seq assigned to the next enqueued frame
	acked      uint64        // highest cumulative ack from the peer
	maxSent    uint64        // highest seq ever written to any conn
	sentIdx    int           // queue index of the first frame not yet written on the current conn
	conn       net.Conn      // current conn; Close()d by host shutdown to unblock I/O
	bw         *bufio.Writer // current conn's writer, published after the hello
	writing    bool          // someone is writing to bw outside mu
	readerErr  error         // set by the current conn's ack reader
	closed     bool          // host shutting down: stop blocking senders
	lastSendNS int64         // when the previous send ran (sprint detection)
	pings      int           // consecutive unanswered keepalive probes on the current conn

	notify chan struct{} // buffered(1): new frames or ack progress
}

func newPeerLink(h *TCPHost, addr string, rcvSt *rcvState) *peerLink {
	nonce := rand.Uint64()
	for nonce == 0 {
		nonce = rand.Uint64() // 0 means "no ack" in dataAck frames
	}
	return &peerLink{
		h:       h,
		addr:    addr,
		rcvSt:   rcvSt,
		nonce:   nonce,
		nextSeq: 1,
		notify:  make(chan struct{}, 1),
		space:   make(chan struct{}),
	}
}

// broadcastSpace wakes every sender blocked on a full queue; callers
// hold l.mu.
func (l *peerLink) broadcastSpace() {
	close(l.space)
	l.space = make(chan struct{})
}

// unacked reports the live queue length; callers hold l.mu.
func (l *peerLink) unacked() int { return len(l.queue) - l.head }

// beginDataFrame starts a framed data frame for this session: header
// placeholder, a fixed-width seq slot (filled under the session lock at
// enqueue time) and — once the peer process has ever presented itself
// as a sender — the dataAck ack slots (stamped at write time). The
// caller appends the envelope body and passes the result to
// finishDataFrame.
func (l *peerLink) beginDataFrame() []byte {
	buf := getFrameBuf()
	if l.rcvSt.hasPeer.Load() {
		buf = beginFrame(buf, frameDataAck)
		buf = append(buf,
			0, 0, 0, 0, 0, 0, 0, 0, // seq slot
			0, 0, 0, 0, 0, 0, 0, 0, // ackNonce slot
			0, 0, 0, 0, 0, 0, 0, 0) // ack slot
	} else {
		buf = beginFrame(buf, frameData)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // seq slot
	}
	return buf
}

// finishDataFrame completes a frame begun by beginDataFrame, returning
// nil for unencodable or oversized payloads: the receiver would kill
// the conn on such a frame and the link would retransmit it forever,
// so it is rejected here as a counted drop (the buffer goes back to
// the pool).
func finishDataFrame(buf []byte, err error) []byte {
	if err != nil || len(buf)-4 > maxFrame {
		putFrameBuf(buf)
		return nil
	}
	return finishFrame(buf)
}

// encodeData builds a complete framed data frame for env.
func (l *peerLink) encodeData(env *Envelope) []byte {
	buf, err := appendEnvelope(l.beginDataFrame(), env)
	return finishDataFrame(buf, err)
}

// encodeDataTagged is encodeData for a pre-encoded tag+payload body
// (broadcast encodes the payload once and stamps each destination's
// routing header around it).
func (l *peerLink) encodeDataTagged(from, to core.ProcessID, hop int, tagged []byte) []byte {
	buf := l.beginDataFrame()
	buf = binary.AppendVarint(buf, int64(from))
	buf = binary.AppendVarint(buf, int64(to))
	buf = binary.AppendVarint(buf, int64(hop))
	buf = append(buf, tagged...)
	return finishDataFrame(buf, nil)
}

// stampAcks patches the piggyback slots of a dataAck frame with the
// current (nonce, delivered) snapshot of the peer's reverse stream.
// Callers own the frame (inline writer or the writer goroutine with
// `writing` set), so patching in place is race-free; retransmissions
// are re-stamped and therefore always carry a current ack.
func stampAcks(buf []byte, nonce, ack uint64) {
	binary.LittleEndian.PutUint64(buf[dataAckNonceOff:], nonce)
	binary.LittleEndian.PutUint64(buf[dataAckOff:], ack)
}

// send encodes env as a data frame and enqueues it. A full
// retransmission queue blocks the sender until the peer acks — the
// same backpressure a full in-memory inbox applies; channels are
// reliable in the model (§3.1), never lossy — but only up to
// sendStallTimeout: a peer that is gone for good must not wedge the
// sending protocol goroutine, so the send is then dropped and counted.
// It also reports false for unencodable payloads and host shutdown.
func (l *peerLink) send(env *Envelope) bool {
	buf := l.encodeData(env)
	if buf == nil {
		return false
	}
	return l.enqueue1(buf)
}

// enqueue1 appends one encoded frame to the retransmission queue,
// blocking on a full queue up to sendStallTimeout, and either writes
// it inline or wakes the writer goroutine. It owns buf: on failure the
// buffer is returned to the pool.
func (l *peerLink) enqueue1(buf []byte) bool {
	now := time.Now().UnixNano()
	l.mu.Lock()
	if l.unacked() >= maxUnacked && !l.closed {
		deadline := time.Now().Add(sendStallTimeout)
		for l.unacked() >= maxUnacked && !l.closed {
			space := l.space
			l.mu.Unlock()
			remain := time.Until(deadline)
			if remain <= 0 {
				putFrameBuf(buf)
				return false // peer presumed crashed; counted as a drop
			}
			timer := time.NewTimer(remain)
			select {
			case <-space:
			case <-timer.C:
			case <-l.h.done:
			}
			timer.Stop()
			l.mu.Lock()
		}
	}
	if l.closed {
		l.mu.Unlock()
		putFrameBuf(buf)
		return false
	}
	sprint := now-l.lastSendNS < inlineGapNS
	l.lastSendNS = now
	seq := l.nextSeq
	l.nextSeq++
	binary.LittleEndian.PutUint64(buf[dataSeqOff:], seq)
	l.queue = append(l.queue, sendFrame{seq: seq, buf: buf})
	// Fast path for isolated sends: the conn is up, everything earlier
	// is on the wire, nobody else is mid-write, and this is not a
	// sprint — write the frame from the sender's own goroutine,
	// skipping the writer-goroutine hop. The frame stays queued until
	// acked, so a failure here is just an early redial. Sprints skip
	// this so consecutive frames coalesce into one buffered write.
	if bw := l.bw; bw != nil && !sprint && !l.writing && l.readerErr == nil && l.sentIdx == len(l.queue)-1 {
		l.writing = true
		l.sentIdx = len(l.queue)
		l.maxSent = seq
		l.mu.Unlock()
		conveyed := uint64(0)
		if buf[4] == frameDataAck {
			var nonce uint64
			nonce, conveyed = l.rcvSt.ackSnapshot()
			stampAcks(buf, nonce, conveyed)
			if nonce == 0 {
				conveyed = 0
			}
		}
		_, err := bw.Write(buf)
		if err == nil {
			err = bw.Flush()
		}
		if err == nil && conveyed > 0 {
			l.rcvSt.noteConveyed(conveyed)
			l.h.counters.acksPiggybacked.Add(1)
		}
		l.mu.Lock()
		l.writing = false
		if err != nil && l.bw == bw && l.readerErr == nil {
			l.readerErr = err
		}
		// Wake the writer only when it has work: an error to redial
		// on, frames enqueued during our write, or the queue's
		// empty→non-empty transition (it must arm the retransmit
		// timer). Steady traffic trims in bulk on ack wakes instead of
		// paying a writer wakeup per message.
		mustWake := err != nil || l.sentIdx < len(l.queue) || l.queue[l.head].seq == seq
		l.mu.Unlock()
		if mustWake {
			l.wake()
		}
		return true
	}
	l.mu.Unlock()
	l.wake()
	return true
}

// enqueueFrames appends a burst of encoded frames under one lock
// acquisition, assigning contiguous seqs (FIFO within the batch), and
// wakes the writer once so the burst coalesces into a single buffered
// write. A full queue blocks mid-batch with the same stall bound as
// enqueue1, reset whenever the batch makes progress. It owns the
// frames: unaccepted ones are returned to the pool. Returns how many
// frames were accepted.
func (l *peerLink) enqueueFrames(frames [][]byte) int {
	accepted := 0
	l.mu.Lock()
	for accepted < len(frames) {
		if l.closed {
			break
		}
		if l.unacked() >= maxUnacked {
			stalled := false
			deadline := time.Now().Add(sendStallTimeout)
			for l.unacked() >= maxUnacked && !l.closed {
				space := l.space
				l.mu.Unlock()
				remain := time.Until(deadline)
				if remain <= 0 {
					stalled = true
					l.mu.Lock()
					break
				}
				timer := time.NewTimer(remain)
				select {
				case <-space:
				case <-timer.C:
				case <-l.h.done:
				}
				timer.Stop()
				l.mu.Lock()
			}
			if stalled {
				break
			}
			continue
		}
		buf := frames[accepted]
		seq := l.nextSeq
		l.nextSeq++
		binary.LittleEndian.PutUint64(buf[dataSeqOff:], seq)
		l.queue = append(l.queue, sendFrame{seq: seq, buf: buf})
		accepted++
	}
	l.lastSendNS = time.Now().UnixNano() // a later isolated send is a sprint
	l.mu.Unlock()
	for _, buf := range frames[accepted:] {
		putFrameBuf(buf)
	}
	if accepted > 0 {
		l.wake()
	}
	return accepted
}

func (l *peerLink) wake() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// run is the session's writer goroutine: wait for work, keep a conn
// up, stream the queue, redial and re-send on failure.
func (l *peerLink) run() {
	defer l.h.wg.Done()
	established := false
	for {
		// Don't (re)dial until there is something to send.
		l.mu.Lock()
		empty := l.unacked() == 0
		l.mu.Unlock()
		if empty {
			select {
			case <-l.notify:
			case <-l.h.done:
				return
			}
			continue
		}
		conn := l.dial()
		if conn == nil {
			return // host closing
		}
		if established {
			l.h.counters.redials.Add(1)
		}
		established = true
		l.runConn(conn)
		_ = conn.Close()
		l.mu.Lock()
		l.conn = nil
		l.bw = nil // unpublish before the next conn resets sentIdx
		l.readerErr = nil
		l.mu.Unlock()
		// Acks piggybacked onto this conn may have died with it; let
		// the serve loop resume standalone acking until frames on the
		// next conn re-convey.
		l.rcvSt.resetConveyed()
		select {
		case <-l.h.done:
			return
		default:
		}
	}
}

// dial connects to the peer with exponential backoff, returning nil
// only when the host is shutting down. Dialed conns get kernel TCP
// keepalives so a silently vanished peer eventually surfaces as a read
// error even without transport traffic.
func (l *peerLink) dial() net.Conn {
	backoff := dialBackoffMin
	for {
		select {
		case <-l.h.done:
			return nil
		default:
		}
		conn, err := l.h.dialPeer(l.addr)
		if err == nil {
			setKeepAlive(conn)
			l.mu.Lock()
			l.conn = conn
			l.readerErr = nil
			l.mu.Unlock()
			// Re-check shutdown: Close may have swept links before we
			// registered the conn; done is closed before that sweep.
			select {
			case <-l.h.done:
				_ = conn.Close()
				return nil
			default:
			}
			return conn
		}
		select {
		case <-l.h.done:
			return nil
		case <-time.After(jitteredBackoff(backoff)):
		}
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// jitteredBackoff spreads a backoff ceiling into a uniform sample from
// [base/2, base]. Pure exponential backoff synchronizes every link that
// lost its conn at the same instant — after a partition heals, N peers
// redial the restarted host in lockstep waves. Jitter decorrelates the
// waves while keeping the expected wait at 3/4 of the ceiling.
func jitteredBackoff(base time.Duration) time.Duration {
	if base <= 1 {
		return base
	}
	half := base / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// runConn drives one connection until it fails or the host closes:
// hello, then batches of pending frames, trimming the queue as acks
// arrive, treating ack silence as a dead conn, and probing an idle
// peer with keepalive pings.
func (l *peerLink) runConn(conn net.Conn) {
	bw := bufio.NewWriter(conn)
	l.mu.Lock()
	l.sentIdx = l.head // everything unacked is re-sent on this conn
	l.pings = 0
	firstSeq := l.nextSeq
	if l.unacked() > 0 {
		firstSeq = l.queue[l.head].seq
	}
	l.mu.Unlock()

	hello := appendHello(getFrameBuf(), l.h.addr, l.nonce, firstSeq)
	_, err := bw.Write(hello)
	putFrameBuf(hello)
	if err != nil || bw.Flush() != nil {
		return
	}
	l.h.wg.Add(1)
	go l.readAcks(conn)
	l.mu.Lock()
	l.bw = bw // publish for the inline send fast path
	l.mu.Unlock()

	// One reusable timer serves every wait in the loop below (writer
	// waits are strictly sequential); allocating a fresh timer per wait
	// used to be ~20% of the transport's allocation volume.
	wait := time.NewTimer(time.Hour)
	defer wait.Stop()
	rearm := func(d time.Duration) {
		if !wait.Stop() {
			select {
			case <-wait.C:
			default:
			}
		}
		wait.Reset(d)
	}

	var batch []sendFrame
	for {
		l.mu.Lock()
		if l.writing {
			// An inline sender owns the socket right now; it wakes us
			// when it is done. Wait with the retransmit timeout rather
			// than bare — an inline write into a silently-dead socket
			// can succeed without waking us, and unacked frames must
			// still hit the ack-silence check below eventually.
			l.mu.Unlock()
			rearm(retransmitTimeout)
			select {
			case <-l.notify:
			case <-wait.C:
			case <-l.h.done:
				return
			}
			continue
		}
		// Trim acked frames by advancing the head index (O(popped));
		// the prefix is compacted away once it grows. The writer is
		// the only trimmer, so the buffers it returns here can no
		// longer be referenced by a concurrent write.
		popped := 0
		for l.head+popped < len(l.queue) && l.queue[l.head+popped].seq <= l.acked {
			putFrameBuf(l.queue[l.head+popped].buf)
			popped++
		}
		if popped > 0 {
			l.head += popped
			if l.sentIdx < l.head {
				l.sentIdx = l.head
			}
			if l.head == len(l.queue) {
				l.queue = l.queue[:0]
				l.sentIdx, l.head = 0, 0
			} else if l.head >= compactAt {
				n := copy(l.queue, l.queue[l.head:])
				l.queue = l.queue[:n]
				l.sentIdx -= l.head
				l.head = 0
			}
			l.broadcastSpace() // senders blocked on a full queue
		}
		if l.readerErr != nil {
			l.mu.Unlock()
			return
		}
		pending := l.queue[l.sentIdx:]
		if len(pending) == 0 {
			if l.unacked() == 0 {
				l.mu.Unlock()
				// Idle: wait for work, but probe the peer at the
				// heartbeat cadence so a silent partition is detected
				// without any data in flight. The death verdict is
				// checked when the NEXT interval fires, so every probe
				// — including the heartbeatMiss-th — gets a full
				// interval for its pong before it counts as missed.
				rearm(heartbeatInterval)
				select {
				case <-l.notify:
					continue
				case <-wait.C:
					l.mu.Lock()
					missed := l.pings >= heartbeatMiss
					l.mu.Unlock()
					if missed {
						// heartbeatMiss consecutive probes went a full
						// interval each without a pong (and no data
						// acks were owed): the conn is dead even
						// though nothing is queued. Close it; the next
						// send redials.
						l.h.counters.deadPeers.Add(1)
						return
					}
					if !l.sendPing(bw) {
						return
					}
					continue
				case <-l.h.done:
					return
				}
			}
			// Everything written, waiting for acks: silence past the
			// retransmit window means the conn is dead even if writes
			// kept succeeding (peer gone without a FIN).
			ackedBefore := l.acked
			l.mu.Unlock()
			rearm(retransmitTimeout)
			select {
			case <-l.notify:
				continue
			case <-wait.C:
				l.mu.Lock()
				progress := l.acked > ackedBefore
				l.mu.Unlock()
				if !progress {
					l.h.counters.ackTimeouts.Add(1)
					return
				}
				continue
			case <-l.h.done:
				return
			}
		}
		batch = append(batch[:0], pending...)
		resent := 0
		for _, f := range batch {
			if f.seq <= l.maxSent {
				resent++
			}
		}
		if last := batch[len(batch)-1].seq; last > l.maxSent {
			l.maxSent = last
		}
		l.sentIdx = len(l.queue)
		l.writing = true
		l.mu.Unlock()
		if resent > 0 {
			l.h.counters.resent.Add(uint64(resent))
		}
		// Stamp one ack snapshot across the whole batch's dataAck
		// frames — piggybacking costs one snapshot per coalesced write,
		// not per frame.
		nonce, ack := l.rcvSt.ackSnapshot()
		piggybacked := uint64(0)
		err := error(nil)
		for _, f := range batch {
			if f.buf[4] == frameDataAck {
				stampAcks(f.buf, nonce, ack)
				if nonce != 0 && ack != 0 {
					piggybacked++ // frames stamped with ack 0 convey nothing
				}
			}
			if _, err = bw.Write(f.buf); err != nil {
				break
			}
		}
		if err == nil {
			err = bw.Flush()
		}
		if err == nil && piggybacked > 0 {
			l.rcvSt.noteConveyed(ack)
			l.h.counters.acksPiggybacked.Add(piggybacked)
		}
		l.mu.Lock()
		l.writing = false
		l.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// sendPing writes one keepalive probe on an idle conn, claiming the
// writer slot so it cannot interleave with an inline sender's frame.
// Reports false when the conn should be abandoned.
func (l *peerLink) sendPing(bw *bufio.Writer) bool {
	l.mu.Lock()
	if l.writing || l.readerErr != nil || l.unacked() > 0 {
		// New traffic or a dead conn beat the probe; the main loop
		// handles either.
		ok := l.readerErr == nil
		l.mu.Unlock()
		return ok
	}
	l.pings++
	l.writing = true
	l.mu.Unlock()
	err := writeEmptyFrame(bw, framePing)
	l.mu.Lock()
	l.writing = false
	if err != nil && l.readerErr == nil {
		l.readerErr = err
	}
	l.mu.Unlock()
	if err != nil {
		return false
	}
	l.h.counters.pings.Add(1)
	return true
}

// applyAck applies a cumulative ack that arrived piggybacked on the
// peer's reverse-direction data frames (read by serveConn, not by this
// session's own ack reader). The nonce check discards acks for a
// previous incarnation of this sender: after a restart the peer may
// briefly stamp the old stream's counters, which must not ack the new
// stream's seqs. l.nonce is immutable after construction.
//
// Unlike the rare standalone acks, piggybacked acks arrive on every
// reverse data frame, so waking the writer per ack would cost a
// goroutine switch per message. The writer is woken only once the
// untrimmed backlog is worth a trim pass (well before senders block on
// a full queue); otherwise progress is observed at the writer's next
// natural wakeup, and the ack-silence check sees l.acked directly.
func (l *peerLink) applyAck(nonce, ack uint64) {
	if nonce != l.nonce {
		return
	}
	l.mu.Lock()
	progress := ack > l.acked
	if progress {
		l.acked = ack
		l.pings = 0 // the peer is alive; reset the probe budget
	}
	mustWake := progress && l.unacked() >= maxUnacked/2
	l.mu.Unlock()
	if mustWake {
		l.wake()
	}
}

// readAcks consumes cumulative acks and keepalive pongs from one conn;
// any read error closes that conn and, if it is still the session's
// current one, flags the writer to redial.
func (l *peerLink) readAcks(conn net.Conn) {
	defer l.h.wg.Done()
	br := bufio.NewReader(conn)
	scratch := getFrameBuf()
	defer func() { putFrameBuf(scratch) }() // scratch may be regrown by readFrame
	for {
		kind, body, err := readFrame(br, &scratch)
		if err == nil && kind == frameAck {
			var a uint64
			if a, _, err = decUvarint(body); err == nil {
				l.mu.Lock()
				if a > l.acked {
					l.acked = a
				}
				l.pings = 0
				l.mu.Unlock()
				l.h.counters.acksReceived.Add(1)
				l.wake()
				continue
			}
		}
		if err == nil && kind == framePong {
			l.mu.Lock()
			l.pings = 0
			l.mu.Unlock()
			l.h.counters.pongs.Add(1)
			continue
		}
		if err == nil {
			continue // tolerate unknown frame kinds from newer peers
		}
		l.mu.Lock()
		if l.conn == conn && l.readerErr == nil {
			l.readerErr = err
		}
		l.mu.Unlock()
		_ = conn.Close()
		l.wake()
		return
	}
}

// shutdown force-closes the session's current conn and releases any
// sender blocked on a full queue (host shutdown).
func (l *peerLink) shutdown() {
	l.mu.Lock()
	l.closed = true
	conn := l.conn
	l.broadcastSpace()
	l.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}
