package transport

import (
	"testing"
	"time"
)

// TestTCPPiggybackedAcksBidirectional soaks a two-node deployment with
// sustained request/response traffic and asserts the piggyback
// contract: standalone ack frames drop to ~0 (the reverse-direction
// data frames carry the acks instead), the retransmission queues drain
// to zero (piggybacked acks really trim them), and no conn is ever
// declared dead for ack silence.
func TestTCPPiggybackedAcksBidirectional(t *testing.T) {
	Register(int(0))
	c := newTCPCluster(t, 2)
	defer c.Close()

	const msgs = 4000
	// Node 1 echoes every payload back — the request/response shape of
	// the quorum protocols, and the worst case for count-triggered
	// acks: the piggybacked ack always trails delivery by one frame.
	go func() {
		for env := range c.nodes[1].Inbox() {
			c.nodes[1].Send(env.From, env.Payload)
		}
	}()
	for i := 0; i < msgs; i++ {
		c.nodes[0].Send(1, i)
		env := conformanceRecv(t, c.nodes[0])
		if env.Payload != i {
			t.Fatalf("echo %d = %v", i, env.Payload)
		}
	}

	// Ack quiescence: both retransmission queues must drain — growth
	// here would mean piggybacked acks are not trimming the queues.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s0, s1 := c.nodes[0].Stats(), c.nodes[1].Stats()
		if s0.Queued == 0 && s1.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queues never drained: node0 %d, node1 %d queued", s0.Queued, s1.Queued)
		}
		time.Sleep(time.Millisecond)
	}

	for id, s := range []TCPStats{c.nodes[0].Stats(), c.nodes[1].Stats()} {
		// Without piggybacking, count-triggered acks alone would emit
		// ~msgs/64 ≈ 62 standalone frames per side; with it only the
		// hello resume ack and the final quiet-window ack remain.
		if s.AcksSent > 20 {
			t.Errorf("node %d wrote %d standalone acks under two-way load, want ~0 (stats %+v)", id, s.AcksSent, s)
		}
		if s.AcksPiggybacked < msgs/2 {
			t.Errorf("node %d piggybacked only %d acks over %d frames", id, s.AcksPiggybacked, msgs)
		}
		if s.AckTimeouts != 0 || s.Redials != 0 {
			t.Errorf("node %d saw conn churn under piggybacked load: %+v", id, s)
		}
		if s.Drops != 0 {
			t.Errorf("node %d dropped %d messages", id, s.Drops)
		}
	}
}
