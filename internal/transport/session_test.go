package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// These tests pin the session layer's multiplexing contract: N logical
// nodes per process share ONE physical TCP session per process pair,
// and every reliable-channel property holds per *logical* link.

// twoHosts builds two hosts carrying k logical nodes each: ids
// 0..k-1 on host A, k..2k-1 on host B.
func twoHosts(t *testing.T, k int) (a, b *TCPHost, nodes map[core.ProcessID]*TCPNode) {
	t.Helper()
	Register("")
	Register(int(0))
	addrs := make(map[core.ProcessID]string, 2*k)
	a, err := NewTCPHost("127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewTCPHost("127.0.0.1:0", addrs)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	nodes = make(map[core.ProcessID]*TCPNode, 2*k)
	for i := 0; i < k; i++ {
		addrs[i] = a.Addr()
		addrs[k+i] = b.Addr()
		na, err := a.Node(i)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := b.Node(k + i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = na
		nodes[k+i] = nb
	}
	return a, b, nodes
}

// TestSessionSharedFIFO drives every (sender, receiver) logical link
// between two 4-node hosts concurrently and asserts per-logical-link
// FIFO at each receiver — 16 logical links multiplexed on one
// session per direction.
func TestSessionSharedFIFO(t *testing.T) {
	const k, msgs = 4, 200
	a, b, nodes := twoHosts(t, k)
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				for r := k; r < 2*k; r++ {
					nodes[s].Send(r, i)
				}
			}
		}(s)
	}
	var recvWG sync.WaitGroup
	errs := make(chan error, k)
	for r := k; r < 2*k; r++ {
		recvWG.Add(1)
		go func(r int) {
			defer recvWG.Done()
			next := make([]int, k)
			for got := 0; got < k*msgs; got++ {
				select {
				case env := <-nodes[r].Inbox():
					if env.Payload.(int) != next[env.From] {
						errs <- fmt.Errorf("receiver %d: sender %d delivered %v, want %d (per-logical-link FIFO broken)",
							r, env.From, env.Payload, next[env.From])
						return
					}
					next[env.From]++
				case <-time.After(10 * time.Second):
					errs <- fmt.Errorf("receiver %d: timeout at %d/%d", r, got, k*msgs)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	recvWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionSocketCountO1 is the acceptance criterion stated
// directly: no matter how many logical nodes each side hosts, the
// process pair shares exactly one outgoing session (and the receiving
// process holds exactly one accepted conn for it).
func TestSessionSocketCountO1(t *testing.T) {
	const k = 16
	a, b, nodes := twoHosts(t, k)
	defer a.Close()
	defer b.Close()

	// Every A node talks to every B node — k×k logical links.
	for s := 0; s < k; s++ {
		for r := k; r < 2*k; r++ {
			nodes[s].Send(r, "x")
		}
	}
	for r := k; r < 2*k; r++ {
		for i := 0; i < k; i++ {
			conformanceRecv(t, nodes[r])
		}
	}
	if s := a.Stats(); s.Sessions != 1 {
		t.Errorf("host A opened %d sessions for %d logical links to one process, want 1", s.Sessions, k*k)
	}
	if s := b.Stats(); s.AcceptedConns != 1 {
		t.Errorf("host B accepted %d conns from one process, want 1", s.AcceptedConns)
	}

	// The reverse direction opens the one reply session and reuses it
	// for every logical pair.
	for r := k; r < 2*k; r++ {
		for s := 0; s < k; s++ {
			nodes[r].Send(s, "y")
		}
	}
	for s := 0; s < k; s++ {
		for i := 0; i < k; i++ {
			conformanceRecv(t, nodes[s])
		}
	}
	if s := b.Stats(); s.Sessions != 1 {
		t.Errorf("host B opened %d sessions, want 1", s.Sessions)
	}
}

// TestSessionRedialRedeliversAllLogicalLinks restarts the receiving
// host while messages from several colocated senders are in flight:
// the ONE shared retransmission queue must redeliver every logical
// link's messages to the fresh process.
func TestSessionRedialRedeliversAllLogicalLinks(t *testing.T) {
	const k = 3
	Register("")
	addrs := make(map[core.ProcessID]string, k+1)
	a, err := NewTCPHost("127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	senders := make([]*TCPNode, k)
	for i := 0; i < k; i++ {
		addrs[i] = a.Addr()
		if senders[i], err = a.Node(i); err != nil {
			t.Fatal(err)
		}
	}
	addrs[k] = "127.0.0.1:0"
	rcv, err := NewTCPNode(k, addrs)
	if err != nil {
		t.Fatal(err)
	}
	addrs[k] = rcv.Addr()

	senders[0].Send(k, "prime")
	if env := conformanceRecv(t, rcv); env.Payload != "prime" {
		t.Fatalf("prime = %+v", env)
	}
	rcv.Close()
	// While the peer process is down, every colocated sender queues
	// messages onto the same shared session.
	for i := 0; i < k; i++ {
		senders[i].Send(k, fmt.Sprintf("down-from-%d", i))
	}
	rcv2, err := NewTCPNode(k, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv2.Close()
	want := map[string]bool{}
	for i := 0; i < k; i++ {
		want[fmt.Sprintf("down-from-%d", i)] = true
	}
	for len(want) > 0 {
		env := conformanceRecv(t, rcv2)
		s, _ := env.Payload.(string)
		if s == "prime" {
			continue // legal at-least-once redelivery across incarnations
		}
		if !want[s] {
			t.Fatalf("unexpected or duplicate payload %q (remaining %v)", s, want)
		}
		// The routing header must still carry the logical sender the
		// payload encodes, across the shared queue's redial.
		if s != fmt.Sprintf("down-from-%d", env.From) {
			t.Fatalf("payload %q delivered with From=%d", s, env.From)
		}
		delete(want, s)
	}
}

// TestSessionMixedTrafficSoak hammers one session pair with concurrent
// Send / SendBatch / Broadcast traffic from every logical node in both
// directions — the -race soak for the shared send path, receive-burst
// path, and piggybacked acks.
func TestSessionMixedTrafficSoak(t *testing.T) {
	const k, rounds = 4, 150
	a, b, nodes := twoHosts(t, k)
	defer a.Close()
	defer b.Close()

	allB := core.Set(0)
	for r := k; r < 2*k; r++ {
		allB = allB.Add(r)
	}
	allA := core.Set(0)
	for s := 0; s < k; s++ {
		allA = allA.Add(s)
	}

	perReceiverFromPeer := rounds * (1 + 3 + 1) * k // per sender: 1 send + batch of 3 + 1 broadcast copy
	var wg sync.WaitGroup
	startSide := func(ids []core.ProcessID, dst core.Set, first core.ProcessID) {
		for _, id := range ids {
			wg.Add(1)
			go func(id core.ProcessID) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					nodes[id].Send(first, i)
					nodes[id].SendBatch(first, []Message{i, i, i}, 0)
					nodes[id].Broadcast(dst, i, 1)
				}
			}(id)
		}
	}
	idsA := []core.ProcessID{0, 1, 2, 3}
	idsB := []core.ProcessID{k, k + 1, k + 2, k + 3}
	// Every sender aims its direct traffic at one receiver on the other
	// host and broadcasts to the whole other host.
	startSide(idsA, allB, k)
	startSide(idsB, allA, 0)

	counts := make(map[core.ProcessID]int)
	var mu sync.Mutex
	var rwg sync.WaitGroup
	drain := func(id core.ProcessID, expect int) {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			got := 0
			for got < expect {
				select {
				case <-nodes[id].Inbox():
					got++
				case <-time.After(15 * time.Second):
					mu.Lock()
					counts[id] = got
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			counts[id] = got
			mu.Unlock()
		}()
	}
	// Receiver k and 0 additionally get the direct+batch traffic of the
	// whole other side.
	drain(k, perReceiverFromPeer)
	drain(0, perReceiverFromPeer)
	for _, id := range []core.ProcessID{k + 1, k + 2, k + 3} {
		drain(id, rounds*k) // broadcast copies only
	}
	for _, id := range []core.ProcessID{1, 2, 3} {
		drain(id, rounds*k)
	}
	wg.Wait()
	rwg.Wait()
	if got := counts[k]; got != perReceiverFromPeer {
		t.Errorf("receiver %d got %d/%d envelopes", k, got, perReceiverFromPeer)
	}
	if got := counts[0]; got != perReceiverFromPeer {
		t.Errorf("receiver 0 got %d/%d envelopes", got, perReceiverFromPeer)
	}
	for _, id := range []core.ProcessID{1, 2, 3, k + 1, k + 2, k + 3} {
		if got := counts[id]; got != rounds*k {
			t.Errorf("receiver %d got %d/%d broadcast copies", id, got, rounds*k)
		}
	}
	for name, h := range map[string]*TCPHost{"A": a, "B": b} {
		if s := h.Stats(); s.Drops != 0 {
			t.Errorf("host %s dropped %d envelopes under mixed load (stats %+v)", name, s.Drops, s)
		}
	}
}

// TestSessionStalledNodeDoesNotWedgeSiblings pins the crash-stop
// isolation of the shared session: one colocated node whose consumer
// never drains (full inbox) must not wedge traffic to its siblings
// forever — the serve loop drops the stalled node's frames after the
// bounded stall instead of holding the session's dedup lock
// indefinitely (which would also deadlock the reverse path's
// piggyback snapshot).
func TestSessionStalledNodeDoesNotWedgeSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the delivery stall timeout")
	}
	const k = 2 // nodes per host: B hosts a drained node (2) and a stuck one (3)
	a, b, nodes := twoHosts(t, k)
	defer a.Close()
	defer b.Close()

	// Fill node 3's inbox with nobody draining it, plus one frame that
	// must hit the bounded stall.
	for i := 0; i < inboxCap+1; i++ {
		nodes[0].Send(3, i)
	}
	// Traffic to the sibling node 2 rides the same session, sequenced
	// behind the stalled frame; it must still arrive once the stall
	// bound drops the stuck frame — not never.
	nodes[0].Send(2, "alive")
	select {
	case env := <-nodes[2].Inbox():
		if env.Payload != "alive" {
			t.Fatalf("sibling received %+v, want alive", env)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("sibling traffic wedged behind a stalled colocated node (host B stats %+v)", b.Stats())
	}

	// The in-process path honors the same contract: a colocated send to
	// the stuck node must return with a counted drop after the bounded
	// stall, not wedge the sender's protocol goroutine.
	dropsBefore := b.Stats().Drops
	done := make(chan struct{})
	go func() {
		defer close(done)
		nodes[2].Send(3, "local-into-the-void")
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("local send to a stalled colocated node wedged past the stall timeout")
	}
	if got := b.Stats().Drops; got <= dropsBefore {
		t.Errorf("local stalled send not counted as a drop (drops %d -> %d)", dropsBefore, got)
	}
}

// TestSessionHostnameAddrsUnifyState pins address canonicalization:
// when the addrs map spells a peer as "localhost:PORT" but the host
// announces its bound "127.0.0.1:PORT" in hellos, sessions, dedup
// state and the piggyback rendezvous must still land on the same
// records. Without normalization the split state silently disables
// piggybacked acks (and in asymmetric cases drops them, re-creating
// the ack-loss stall class).
func TestSessionHostnameAddrsUnifyState(t *testing.T) {
	Register(int(0))
	addrs := make(map[core.ProcessID]string, 2)
	a, err := NewTCPHost("127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPHost("127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Spell both peers with a hostname the resolver must canonicalize.
	_, aport, _ := net.SplitHostPort(a.Addr())
	_, bport, _ := net.SplitHostPort(b.Addr())
	addrs[0] = "localhost:" + aport
	addrs[1] = "localhost:" + bport
	n0, err := a.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := b.Node(1)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		for env := range n1.Inbox() {
			n1.Send(env.From, env.Payload)
		}
	}()
	const msgs = 400
	for i := 0; i < msgs; i++ {
		n0.Send(1, i)
		if env := conformanceRecv(t, n0); env.Payload != i {
			t.Fatalf("echo %d = %v", i, env.Payload)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.Stats().Queued != 0 || b.Stats().Queued != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queues never drained: a %+v b %+v", a.Stats(), b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for name, h := range map[string]*TCPHost{"a": a, "b": b} {
		s := h.Stats()
		if s.Sessions != 1 {
			t.Errorf("host %s holds %d sessions, want 1 (state split by addr spelling?)", name, s.Sessions)
		}
		if s.AcksPiggybacked == 0 {
			t.Errorf("host %s piggybacked no acks under echo load — piggyback rendezvous split by addr spelling (stats %+v)", name, s)
		}
		if s.AckTimeouts != 0 || s.Redials != 0 {
			t.Errorf("host %s saw conn churn: %+v", name, s)
		}
	}
}

// TestKeepaliveDetectsSilentPartition pins the keepalive satellite: an
// established, fully idle session (nothing queued, so the ack-silence
// check can never fire) whose peer silently stops responding must be
// detected by heartbeat probing and surfaced in Stats().DeadPeers.
func TestKeepaliveDetectsSilentPartition(t *testing.T) {
	Register("")
	oldInterval, oldMiss := heartbeatInterval, heartbeatMiss
	heartbeatInterval, heartbeatMiss = 30*time.Millisecond, 3
	defer func() { heartbeatInterval, heartbeatMiss = oldInterval, oldMiss }()

	addrs := make(map[core.ProcessID]string, 2)
	receiver, err := NewTCPNode(1, map[core.ProcessID]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer receiver.Close()
	proxy, err := chaos.NewProxy(receiver.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	addrs[1] = proxy.Addr() // the sender dials through the proxy
	addrs[0] = "127.0.0.1:0"
	sender, err := NewTCPNode(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	sender.Send(1, "prime")
	if env := conformanceRecv(t, receiver); env.Payload != "prime" {
		t.Fatalf("prime = %+v", env)
	}
	// Wait for ack quiescence: with an empty queue the ack-silence
	// timeout is provably out of the picture.
	deadline := time.Now().Add(5 * time.Second)
	for sender.Stats().Queued != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if s := sender.Stats(); s.DeadPeers != 0 {
		t.Fatalf("DeadPeers = %d before the partition", s.DeadPeers)
	}

	proxy.Blackhole(true)
	// No data is sent from here on: only the heartbeat can notice.
	deadline = time.Now().Add(10 * time.Second)
	for sender.Stats().DeadPeers == 0 {
		if time.Now().After(deadline) {
			s := sender.Stats()
			t.Fatalf("silent partition never detected (stats %+v)", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ps := proxy.Stats(); ps.BytesBlackholed == 0 {
		t.Errorf("proxy swallowed the keepalive pings but counted nothing: %+v", ps)
	}
	if s := sender.Stats(); s.Pings == 0 {
		t.Errorf("expected keepalive pings to have been sent, stats %+v", s)
	}
	if s := sender.Stats(); s.AckTimeouts != 0 {
		t.Errorf("detection must not have come from ack silence (queue was empty), stats %+v", s)
	}
}

// TestKeepalivePongsKeepIdleSessionAlive is the false-positive guard:
// a healthy idle session must answer probes and never be declared
// dead.
func TestKeepalivePongsKeepIdleSessionAlive(t *testing.T) {
	Register("")
	oldInterval, oldMiss := heartbeatInterval, heartbeatMiss
	heartbeatInterval, heartbeatMiss = 20*time.Millisecond, 3
	defer func() { heartbeatInterval, heartbeatMiss = oldInterval, oldMiss }()

	c := newTCPCluster(t, 2)
	defer c.Close()
	c.nodes[0].Send(1, "prime")
	conformanceRecv(t, c.nodes[1])

	// Idle for many heartbeat intervals: probes must flow and be
	// answered, and the session must stay up.
	time.Sleep(300 * time.Millisecond)
	s := c.nodes[0].Stats()
	if s.DeadPeers != 0 {
		t.Errorf("healthy idle session declared dead: %+v", s)
	}
	if s.Pings == 0 || s.Pongs == 0 {
		t.Errorf("expected ping/pong traffic on the idle session, stats %+v", s)
	}
	if s.Redials != 0 {
		t.Errorf("healthy idle session redialed: %+v", s)
	}
}
