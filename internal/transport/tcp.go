package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// The TCP data plane is structured in two layers:
//
//   - TCPHost is one OS process's attachment to the fabric: one
//     listener plus ONE physical TCP session per remote process
//     (peerLink, keyed by the remote process's listen address). All
//     logical nodes hosted in the process share those sessions — the
//     retransmission queue, cumulative acks, piggybacking, keepalives
//     and redial machinery run once per process pair, and the logical
//     (from, to) pair already present in every envelope header does
//     the demultiplexing on the receive side.
//   - TCPNode is a light routing facade over its host: one logical
//     process with its own inbox. Creating many nodes on one host is
//     how a deployment colocates many logical clients per OS process
//     without opening O(clients × servers) sockets; socket count per
//     process pair stays O(1) no matter how many nodes either side
//     hosts.
//
// Envelopes travel as length-prefixed binary frames (codec.go);
// payload types must be registered with Register. Outgoing messages go
// through managed peer links (link.go) that redial and retransmit
// until the peer acknowledges delivery, giving the TCP path the
// reliable-channel semantics the paper's model assumes (§3.1) per
// *logical* link — a peer process may crash and restart at the same
// address without losing messages, and FIFO holds per (from, to) pair
// because each session is FIFO and assigns seqs under one lock.

// TCPHost is one process's shared TCP session layer: a listener, the
// per-remote-process links, and the logical nodes it hosts.
type TCPHost struct {
	addr  string // concrete listen address, announced in hellos
	ln    net.Listener
	addrs map[core.ProcessID]string // logical node → hosting process's address
	done  chan struct{}             // closed on Close; gates inbox delivery

	// stateDir, when non-empty, makes the dedup table durable: per-peer
	// (nonce, delivered) files persisted before delivery and reloaded
	// on construction (see dedup.go).
	stateDir string

	// nodes and routes are copy-on-write maps read lock-free on every
	// send: nodes resolves a local destination to its inbox, routes
	// memoizes the logical-destination → session resolution.
	nodes  atomic.Pointer[map[core.ProcessID]*TCPNode]
	routes atomic.Pointer[map[core.ProcessID]*peerLink]

	// inj, when non-nil, is the fault injector consulted on every send;
	// dialFn, when non-nil, replaces net.DialTimeout for every peerLink
	// dial (the chaos proxy interposes here). Both are read lock-free.
	inj    atomic.Pointer[Injector]
	dialFn atomic.Pointer[DialFunc]

	mu       sync.Mutex
	links    map[string]*peerLink // one session per remote process address (canonical ip:port)
	rcv      map[string]*rcvState // per-remote-process receive/dedup state
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	counters tcpCounters
}

// TCPNode is a Port hosted on a TCPHost: one logical process. All
// nodes of one host share the host's physical sessions; a node's
// only private state is its inbox.
type TCPNode struct {
	h     *TCPHost
	id    core.ProcessID
	inbox chan Envelope

	// closedMu guards inbox close against local-delivery senders (which
	// are not tracked by the host's WaitGroup, unlike serve loops).
	closedMu sync.Mutex
	closed   bool

	// stalledAtNS is when a delivery to this node last timed out on a
	// full inbox (0 = never). While a stall is fresh (within
	// sendStallTimeout), further deliveries drop immediately instead of
	// each re-paying the bounded wait — one crashed consumer costs one
	// stall per window, not one per frame.
	stalledAtNS atomic.Int64
}

// stalledRecently reports whether a delivery stall on this node is
// fresh enough that retrying the bounded wait would just re-pay it.
func (n *TCPNode) stalledRecently() bool {
	last := n.stalledAtNS.Load()
	return last != 0 && time.Now().UnixNano()-last < int64(sendStallTimeout)
}

// noteDelivered clears a recorded stall once any delivery succeeds, so
// a consumer that recovered mid-window stops shedding frames
// immediately (the load is a no-op nanosecond check on the fast path).
func (n *TCPNode) noteDelivered() {
	if n.stalledAtNS.Load() != 0 {
		n.stalledAtNS.Store(0)
	}
}

// awaitInbox is the bounded blocking delivery used once the fast
// non-blocking send failed: wait up to sendStallTimeout for space. A
// healthy consumer drains in microseconds, so hitting the bound means
// the node's consumer is gone (crash-stop) — the stall is recorded so
// subsequent deliveries short-circuit for a window. Time spent here is
// accounted as inbox-full time (InboxStallNS), distinct from the
// credit-stall time frames spend staged in per-link spools
// (CreditStallNS): the former measures a slow consumer, the latter
// head-of-line pressure on the shared session.
func (n *TCPNode) awaitInbox(env Envelope, done <-chan struct{}) deliverVerdict {
	start := time.Now()
	n.h.counters.inboxStalls.Add(1)
	defer func() { n.h.counters.inboxStallNS.Add(uint64(time.Since(start))) }()
	timer := time.NewTimer(sendStallTimeout)
	defer timer.Stop()
	select {
	case n.inbox <- env:
		n.stalledAtNS.Store(0)
		return deliverOK
	case <-done:
		return deliverClosed
	case <-timer.C:
		n.stalledAtNS.Store(time.Now().UnixNano())
		return deliverStalled
	}
}

// rcvState is the per-remote-process dedup state: the highest seq
// delivered for the peer process's current session incarnation. A
// reconnect from the same incarnation resumes it (retransmitted frames
// are dropped as dups); a new incarnation (peer process restarted)
// resets it. The record is also the piggyback rendezvous: the host's
// outgoing session to the same process stamps (nonce, delivered) into
// its data frames, and conveyed tracks how much of that made it onto
// the wire so the serve loop can suppress standalone acks the reverse
// traffic already carried.
type rcvState struct {
	mu        sync.Mutex
	nonce     uint64 // current peer incarnation (0 until the first hello)
	delivered uint64 // highest contiguously delivered seq of that incarnation
	conveyed  uint64 // highest delivered value piggybacked onto flushed reverse data

	// hasPeer flips once a hello arrives; outgoing links then switch to
	// dataAck frames (purely unidirectional traffic keeps the slimmer
	// data frames).
	hasPeer atomic.Bool

	// Persistence watermark (durable hosts only, see dedup.go): the
	// newest (nonce, delivered) pair written to the peer's state file.
	// saveMu serializes savers without holding mu across the file
	// write, so piggyback snapshots never wait on an fsync.
	saveMu         sync.Mutex
	savedNonce     uint64
	savedDelivered uint64

	// Session flow control (guarded by mu): per-logical-link staging
	// queues. A frame whose destination inbox is momentarily full is
	// staged on its (from, to) link's spool instead of making the whole
	// session block behind one hot link; spooled frames are already
	// acked, so the spools live here — on the per-remote-process record
	// that survives conn churn — and every serve loop for this session
	// drains them (round-robin across links) before returning, keeping
	// the cumulative-ack invariant: an acked frame is delivered exactly
	// once or sheds only via the crash-stop verdict.
	spools  map[uint64]*linkSpool
	order   []*linkSpool // round-robin drain order (all spools ever created)
	rrPos   int
	spooled int // total frames currently staged across all spools
}

// linkSpool is one logical link's staging queue (guarded by the owning
// rcvState's mu).
type linkSpool struct {
	node      *TCPNode
	q         []Envelope
	sinceNS   int64 // when the spool last became non-empty
	headNS    int64 // when the spool last made progress (pop or fill)
	highWater int
}

// linkCreditWindow bounds one logical link's staging queue: within the
// window a hot link absorbs its own backpressure without touching its
// session neighbors; at the window the serve loop falls back to the
// bounded blocking wait on that link alone, which re-applies sender
// backpressure through stalled acks.
const linkCreditWindow = 256

// spoolRetryDelay is how often an idle serve loop retries draining
// staged frames into their inboxes when no inbound frame arrives to
// trigger a drain pass.
const spoolRetryDelay = time.Millisecond

// ackSnapshot returns a consistent (incarnation, cumulative ack) pair
// for stamping into outgoing dataAck frames.
func (st *rcvState) ackSnapshot() (nonce, ack uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nonce, st.delivered
}

// noteConveyed records that a flushed reverse-direction write carried
// the ack value, so standalone acks up to it are redundant.
func (st *rcvState) noteConveyed(ack uint64) {
	st.mu.Lock()
	if ack > st.conveyed {
		st.conveyed = ack
	}
	st.mu.Unlock()
}

// conveyedWithin reports whether piggybacked conveyance trails the
// delivered seq d by at most lag frames. lag 0 is the exact "fully
// conveyed" check used at traffic quiescence; the in-load count
// trigger tolerates a small lag because request/response traffic
// always has the latest delivery's ack still in flight on the next
// reverse frame.
func (st *rcvState) conveyedWithin(d, lag uint64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.conveyed <= d && d-st.conveyed <= lag
}

// resetConveyed forgets piggyback conveyance when the carrier conn
// dies: a flush into a dead socket "succeeds" locally but the peer may
// never see the ack, and if the reverse queue has fully drained no
// retransmission will re-stamp it — the serve loop must fall back to
// standalone acks instead of suppressing against a value the peer
// never received. Queued frames re-sent on the next conn re-bump it.
func (st *rcvState) resetConveyed() {
	st.mu.Lock()
	st.conveyed = 0
	st.mu.Unlock()
}

// tcpCounters are the host's atomic stat counters (see TCPStats).
type tcpCounters struct {
	sent, delivered, dups, drops   atomic.Uint64
	resent, redials, ackTimeouts   atomic.Uint64
	acksSent, acksReceived, badEnv atomic.Uint64
	acksPiggybacked                atomic.Uint64
	pings, pongs, deadPeers        atomic.Uint64
	creditStalls, creditStallNS    atomic.Uint64
	inboxStalls, inboxStallNS      atomic.Uint64
	spoolHighWater                 atomic.Uint64
}

// maxUint64 raises a to at least v (monotonic high-water mark).
func maxUint64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// TCPStats is a snapshot of a host's transport counters, letting demos
// and tests assert that no message was lost across peer restarts and
// that the session layer multiplexes rather than multiplying sockets.
type TCPStats struct {
	Sent            uint64 // envelopes accepted into a session's queue or delivered locally
	Delivered       uint64 // envelopes handed to this host's inboxes
	Dups            uint64 // retransmitted frames dropped by dedup
	Drops           uint64 // envelopes dropped: unknown peer, closed host, full queue, encode error
	Resent          uint64 // frames rewritten on a fresh conn after a failure
	Redials         uint64 // conns re-established after an initial success
	AckTimeouts     uint64 // conns declared dead for ack silence
	AcksSent        uint64 // standalone cumulative ack frames written
	AcksReceived    uint64 // standalone cumulative ack frames read
	AcksPiggybacked uint64 // acks carried on outgoing data frames instead of standalone
	BadEnvelopes    uint64 // frames acked but not deliverable (unknown tag, decode error, unknown node)
	Pings           uint64 // keepalive probes written on idle sessions
	Pongs           uint64 // keepalive replies received
	DeadPeers       uint64 // idle conns declared dead by keepalive probing (no pong)
	CreditStalls    uint64 // logical links that exhausted delivery credit (empty→non-empty spool transitions)
	CreditStallNS   uint64 // cumulative ns links spent with frames staged in their spool
	InboxStalls     uint64 // bounded blocking waits on a full node inbox
	InboxStallNS    uint64 // cumulative ns spent in those waits
	SpoolHighWater  uint64 // deepest any logical link's staging queue has been
	Queued          int    // frames currently awaiting acknowledgement across all sessions
	Spooled         int    // frames currently staged in per-link flow-control spools
	Sessions        int    // live outgoing sessions (one per remote process dialed)
	AcceptedConns   int    // live accepted conns (one per remote process dialing in)
}

// Stats returns a snapshot of the host's transport counters.
func (h *TCPHost) Stats() TCPStats {
	queued, spooled := 0, 0
	h.mu.Lock()
	sessions := len(h.links)
	acceptedConns := len(h.accepted)
	for _, l := range h.links {
		l.mu.Lock()
		queued += l.unacked()
		l.mu.Unlock()
	}
	for _, st := range h.rcv {
		st.mu.Lock()
		spooled += st.spooled
		st.mu.Unlock()
	}
	h.mu.Unlock()
	return TCPStats{
		Queued:          queued,
		Spooled:         spooled,
		Sessions:        sessions,
		AcceptedConns:   acceptedConns,
		Sent:            h.counters.sent.Load(),
		Delivered:       h.counters.delivered.Load(),
		Dups:            h.counters.dups.Load(),
		Drops:           h.counters.drops.Load(),
		Resent:          h.counters.resent.Load(),
		Redials:         h.counters.redials.Load(),
		AckTimeouts:     h.counters.ackTimeouts.Load(),
		AcksSent:        h.counters.acksSent.Load(),
		AcksReceived:    h.counters.acksReceived.Load(),
		AcksPiggybacked: h.counters.acksPiggybacked.Load(),
		BadEnvelopes:    h.counters.badEnv.Load(),
		Pings:           h.counters.pings.Load(),
		Pongs:           h.counters.pongs.Load(),
		DeadPeers:       h.counters.deadPeers.Load(),
		CreditStalls:    h.counters.creditStalls.Load(),
		CreditStallNS:   h.counters.creditStallNS.Load(),
		InboxStalls:     h.counters.inboxStalls.Load(),
		InboxStallNS:    h.counters.inboxStallNS.Load(),
		SpoolHighWater:  h.counters.spoolHighWater.Load(),
	}
}

var _ Port = (*TCPNode)(nil)

// NewTCPHost starts a host listening on listenAddr. addrs maps every
// logical node of the deployment to its hosting process's address;
// many nodes may share one address (they are colocated). The host
// reads the map without copying it, so the deployment's SETUP phase
// owns it: finish every write (e.g. filling in ":0" binds) before any
// goroutine sends — a write racing any send's read is a plain map data
// race, not merely a missed route. Attach logical nodes with Node,
// likewise before peers start sending to them (see Node).
func NewTCPHost(listenAddr string, addrs map[core.ProcessID]string) (*TCPHost, error) {
	return NewTCPHostDir(listenAddr, addrs, "")
}

// NewTCPHostDir is NewTCPHost with a durable dedup table: stateDir
// (created if absent) holds one file per peer recording the highest
// delivered seq of the peer's current incarnation, persisted before
// delivery and reloaded here — so a kill -9'd receiver still drops the
// retransmitted duplicates when it comes back. Empty stateDir means
// volatile dedup (identical to NewTCPHost).
func NewTCPHostDir(listenAddr string, addrs map[core.ProcessID]string, stateDir string) (*TCPHost, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", listenAddr, err)
	}
	h := &TCPHost{
		addr:     ln.Addr().String(),
		ln:       ln,
		addrs:    addrs,
		done:     make(chan struct{}),
		stateDir: stateDir,
		links:    make(map[string]*peerLink),
		rcv:      make(map[string]*rcvState),
		accepted: make(map[net.Conn]struct{}),
	}
	if stateDir != "" {
		if err := h.loadDedupState(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	empty := make(map[core.ProcessID]*TCPNode)
	h.nodes.Store(&empty)
	noRoutes := make(map[core.ProcessID]*peerLink)
	h.routes.Store(&noRoutes)
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Node attaches logical process id to the host and returns its port.
// Attach every node before remote peers can address it: an inbound
// frame for an unattached node is acknowledged and dropped (counted in
// Stats().BadEnvelopes) — it must not wedge the session's cumulative
// ack stream — so the sender will not retransmit it after the node
// appears.
func (h *TCPHost) Node(id core.ProcessID) (*TCPNode, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errors.New("tcp: host closed")
	}
	old := *h.nodes.Load()
	if _, ok := old[id]; ok {
		return nil, fmt.Errorf("tcp: node %d already attached", id)
	}
	n := &TCPNode{h: h, id: id, inbox: make(chan Envelope, inboxCap)}
	next := make(map[core.ProcessID]*TCPNode, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = n
	h.nodes.Store(&next)
	return n, nil
}

// NewTCPNode starts a single-node host: one logical process per OS
// process, the pre-session-layer deployment shape. addrs must contain
// the node's own listen address. Closing the node closes its host.
func NewTCPNode(id core.ProcessID, addrs map[core.ProcessID]string) (*TCPNode, error) {
	return NewTCPNodeDir(id, addrs, "")
}

// NewTCPNodeDir is NewTCPNode over a host with a durable dedup table
// in stateDir (empty = volatile; see NewTCPHostDir).
func NewTCPNodeDir(id core.ProcessID, addrs map[core.ProcessID]string, stateDir string) (*TCPNode, error) {
	addr, ok := addrs[id]
	if !ok {
		return nil, fmt.Errorf("tcp: no address for process %d", id)
	}
	h, err := NewTCPHostDir(addr, addrs, stateDir)
	if err != nil {
		return nil, err
	}
	n, err := h.Node(id)
	if err != nil {
		h.Close()
		return nil, err
	}
	return n, nil
}

// Addr returns the host's bound listen address (useful with ":0").
func (h *TCPHost) Addr() string { return h.addr }

// DialFunc dials a remote host address; it has the shape of
// net.DialTimeout with the network fixed to "tcp".
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// SetDialer installs a custom dialer used by every peerLink (re)dial
// from now on — the hook a conn-level chaos proxy wraps every session
// through. Passing nil restores net.DialTimeout.
func (h *TCPHost) SetDialer(fn DialFunc) {
	if fn == nil {
		h.dialFn.Store(nil)
		return
	}
	h.dialFn.Store(&fn)
}

// dialPeer resolves the dialer hook and connects to addr.
func (h *TCPHost) dialPeer(addr string) (net.Conn, error) {
	if fn := h.dialFn.Load(); fn != nil {
		return (*fn)(addr, dialTimeout)
	}
	return net.DialTimeout("tcp", addr, dialTimeout)
}

// SetInjector installs a fault injector consulted on every send —
// including the in-process fast path between colocated nodes, so
// memory and TCP deployments see the same scripted faults. Passing nil
// removes it; the pass-through cost is one atomic nil check per send.
// Injection happens above the session layer: a delayed envelope is
// re-submitted whole after its delay, a dropped one never reaches the
// retransmission queue (the loss is permanent, unlike conn-level loss,
// which sessions repair).
func (h *TCPHost) SetInjector(inj Injector) {
	if inj == nil {
		h.inj.Store(nil)
		return
	}
	h.inj.Store(&inj)
}

// injectOne applies the installed injector to one send. It reports
// whether the caller should proceed with the normal immediate path;
// false means the envelope was consumed here (dropped, or rescheduled
// to run after a delay). Duplicate copies are dispatched here.
func (h *TCPHost) injectOne(inj Injector, from, to core.ProcessID, payload Message, hop int) bool {
	drop, delay, dup := inj.Decide(from, to)
	if drop {
		h.counters.drops.Add(1)
		return false
	}
	for i := 0; i < dup; i++ {
		h.sendMaybeAfter(delay, from, to, payload, hop)
	}
	if delay > 0 {
		h.sendMaybeAfter(delay, from, to, payload, hop)
		return false
	}
	return true
}

// sendMaybeAfter dispatches through the injector-free path, after a
// delay when d > 0. Deliveries racing Close are dropped by the normal
// closed checks in linkTo/deliverLocal.
func (h *TCPHost) sendMaybeAfter(d time.Duration, from, to core.ProcessID, payload Message, hop int) {
	if d <= 0 {
		h.sendDirect(from, to, payload, hop)
		return
	}
	time.AfterFunc(d, func() { h.sendDirect(from, to, payload, hop) })
}

// Addr returns the hosting process's listen address.
func (n *TCPNode) Addr() string { return n.h.addr }

// Host returns the session layer this node is attached to.
func (n *TCPNode) Host() *TCPHost { return n.h }

// ID returns the node's process ID.
func (n *TCPNode) ID() core.ProcessID { return n.id }

// Inbox returns incoming envelopes; closed when the host closes.
func (n *TCPNode) Inbox() <-chan Envelope { return n.inbox }

// Stats returns the hosting process's transport counters.
func (n *TCPNode) Stats() TCPStats { return n.h.Stats() }

// Close tears down the node's whole host: a logical node cannot
// outlive its process.
func (n *TCPNode) Close() { n.h.Close() }

// Send dispatches a payload with hop 0. Delivery is reliable as long as
// the peer process (or a restarted process at its address) eventually
// comes back: the session retransmits until acknowledged, and a full
// retransmission queue applies backpressure (bounded by the session's
// stall timeout) rather than dropping. Messages are dropped — and
// counted in Stats — only for unknown peers, unregistered payload
// types, a closed host, or a peer gone past the stall timeout.
func (n *TCPNode) Send(to core.ProcessID, payload Message) {
	n.h.sendHop(n.id, to, payload, 0)
}

// SendHop dispatches a payload with an explicit hop depth.
func (n *TCPNode) SendHop(to core.ProcessID, payload Message, hop int) {
	n.h.sendHop(n.id, to, payload, hop)
}

// SendBatch dispatches a burst of payloads to one logical destination
// as a single queue append on the shared session: the burst is encoded
// up front, appended under one session lock with contiguous seqs, and
// coalesced by the writer goroutine into one framed write on the wire.
// A colocated destination receives the burst under one inbox lock.
func (n *TCPNode) SendBatch(to core.ProcessID, payloads []Message, hop int) {
	n.h.sendBatch(n.id, to, payloads, hop)
}

// Broadcast fans payload out to every member of dst, encoding the
// tagged payload body once. Destinations colocated on one remote
// process share a session, and each run of them that is contiguous in
// the set's bit order coalesces into one queue append and one framed
// write (colocated IDs are contiguous in every deployment this repo
// builds; interleaved IDs still work, paying one append per run).
func (n *TCPNode) Broadcast(dst core.Set, payload Message, hop int) {
	n.h.broadcast(n.id, dst, payload, hop)
}

// localNode resolves a destination hosted on this process, nil if the
// destination is remote (or unknown).
func (h *TCPHost) localNode(to core.ProcessID) *TCPNode {
	return (*h.nodes.Load())[to]
}

// deliverLocal hands an envelope between two nodes of the same host —
// no socket, no codec, no session. A full inbox applies backpressure
// only up to the same bounded stall the remote paths use (Send's
// contract: a consumer gone for good gets a counted drop, it does not
// wedge the sending protocol goroutine). Reports whether the envelope
// was delivered.
func (n *TCPNode) deliverLocal(env Envelope) bool {
	n.closedMu.Lock()
	defer n.closedMu.Unlock()
	if n.closed {
		return false
	}
	select {
	case n.inbox <- env:
		n.noteDelivered()
		return true
	case <-n.h.done:
		return false
	default:
	}
	if n.stalledRecently() {
		return false
	}
	return n.awaitInbox(env, n.h.done) == deliverOK
}

func (h *TCPHost) sendHop(from, to core.ProcessID, payload Message, hop int) {
	if p := h.inj.Load(); p != nil && !h.injectOne(*p, from, to, payload, hop) {
		return
	}
	h.sendDirect(from, to, payload, hop)
}

// sendDirect is the injector-free single-envelope send path.
func (h *TCPHost) sendDirect(from, to core.ProcessID, payload Message, hop int) {
	env := Envelope{From: from, To: to, Hop: hop, Payload: payload}
	if ln := h.localNode(to); ln != nil {
		if ln.deliverLocal(env) {
			h.counters.sent.Add(1)
			h.counters.delivered.Add(1)
		} else {
			h.counters.drops.Add(1)
		}
		return
	}
	l := h.linkTo(to)
	if l == nil || !l.send(&env) {
		h.counters.drops.Add(1)
		return
	}
	h.counters.sent.Add(1)
}

func (h *TCPHost) sendBatch(from, to core.ProcessID, payloads []Message, hop int) {
	if len(payloads) == 0 {
		return
	}
	// An installed injector must decide every envelope individually, so
	// the burst degrades to per-envelope sends (same rule as the
	// in-memory network's batchable check).
	if p := h.inj.Load(); p != nil {
		inj := *p
		for _, pl := range payloads {
			if h.injectOne(inj, from, to, pl, hop) {
				h.sendDirect(from, to, pl, hop)
			}
		}
		return
	}
	if ln := h.localNode(to); ln != nil {
		// One inbox-lock acquisition for the whole burst, mirroring the
		// in-memory shard path. Close takes closedMu first, so the
		// closed flag cannot flip mid-burst: check it once.
		delivered, dropped := 0, 0
		ln.closedMu.Lock()
		if ln.closed {
			dropped = len(payloads)
		} else {
			for _, pl := range payloads {
				env := Envelope{From: from, To: to, Hop: hop, Payload: pl}
				select {
				case ln.inbox <- env:
					ln.noteDelivered()
					delivered++
					continue
				case <-h.done:
					dropped++
					continue
				default:
				}
				// Full inbox: same bounded, once-per-window stall as
				// every other delivery path.
				if !ln.stalledRecently() && ln.awaitInbox(env, h.done) == deliverOK {
					delivered++
				} else {
					dropped++
				}
			}
		}
		ln.closedMu.Unlock()
		if delivered > 0 {
			h.counters.sent.Add(uint64(delivered))
			h.counters.delivered.Add(uint64(delivered))
		}
		if dropped > 0 {
			h.counters.drops.Add(uint64(dropped))
		}
		return
	}
	if len(payloads) == 1 {
		h.sendHop(from, to, payloads[0], hop)
		return
	}
	l := h.linkTo(to)
	if l == nil {
		h.counters.drops.Add(uint64(len(payloads)))
		return
	}
	frames := getFrameSlice()
	dropped := 0
	env := Envelope{From: from, To: to, Hop: hop}
	for _, pl := range payloads {
		env.Payload = pl
		if buf := l.encodeData(&env); buf != nil {
			frames = append(frames, buf)
		} else {
			dropped++
		}
	}
	accepted := l.enqueueFrames(frames)
	dropped += len(frames) - accepted
	putFrameSlice(frames)
	if accepted > 0 {
		h.counters.sent.Add(uint64(accepted))
	}
	if dropped > 0 {
		h.counters.drops.Add(uint64(dropped))
	}
}

func (h *TCPHost) broadcast(from core.ProcessID, dst core.Set, payload Message, hop int) {
	if dst == 0 {
		return
	}
	// Per-envelope injection: the fan-out degrades to single sends so
	// each link gets its own Decide call.
	if p := h.inj.Load(); p != nil {
		inj := *p
		for v := uint64(dst); v != 0; v &= v - 1 {
			to := core.ProcessID(bits.TrailingZeros64(v))
			if h.injectOne(inj, from, to, payload, hop) {
				h.sendDirect(from, to, payload, hop)
			}
		}
		return
	}
	// Local destinations take the in-process path; remote destinations
	// sharing a session coalesce: the tagged payload body is encoded
	// exactly once, and each contiguous run of destinations on the same
	// session becomes one queue append handed to the writer goroutine
	// (see flushRun for why even single-frame runs skip the inline
	// write).
	var tagged []byte
	var runFrames [][]byte // lazily a pooled getFrameSlice
	var cur *peerLink
	encodeBroken := false
	sent, dropped, local := 0, 0, 0
	flushRun := func() {
		if cur == nil || len(runFrames) == 0 {
			return
		}
		// Even a single-frame run goes through the writer goroutine
		// (enqueueFrames) rather than the inline-write path: a
		// broadcast is never an isolated send — its sibling frames and
		// the replies they trigger are microseconds away — and routing
		// it through the writer lets concurrent clients' frames to the
		// same process coalesce into one syscall.
		accepted := cur.enqueueFrames(runFrames)
		sent += accepted
		dropped += len(runFrames) - accepted
		runFrames = runFrames[:0]
	}
	for v := uint64(dst); v != 0; v &= v - 1 {
		to := bits.TrailingZeros64(v)
		if ln := h.localNode(to); ln != nil {
			if ln.deliverLocal(Envelope{From: from, To: to, Hop: hop, Payload: payload}) {
				local++
			} else {
				dropped++
			}
			continue
		}
		l := h.linkTo(to)
		if l == nil {
			dropped++
			continue
		}
		if encodeBroken {
			// Encoding fails identically for every remote destination;
			// drop them one by one so later LOCAL destinations still
			// get their encoding-free delivery above.
			dropped++
			continue
		}
		if tagged == nil {
			scratch := getFrameBuf()
			var err error
			tagged, err = appendTaggedPayload(scratch, payload)
			if err != nil {
				putFrameBuf(scratch) // the failed append returns nil
				tagged = nil
				encodeBroken = true
				dropped++
				continue
			}
		}
		buf := l.encodeDataTagged(from, to, hop, tagged)
		if buf == nil {
			dropped++
			continue
		}
		if l != cur {
			flushRun()
			cur = l
		}
		if runFrames == nil {
			runFrames = getFrameSlice()
		}
		runFrames = append(runFrames, buf)
	}
	flushRun()
	if runFrames != nil {
		putFrameSlice(runFrames)
	}
	if tagged != nil {
		putFrameBuf(tagged)
	}
	if local > 0 {
		h.counters.delivered.Add(uint64(local))
	}
	if sent+local > 0 {
		h.counters.sent.Add(uint64(sent + local))
	}
	if dropped > 0 {
		h.counters.drops.Add(uint64(dropped))
	}
}

// linkTo returns the shared session carrying traffic to the process
// hosting logical node `to`, creating it (and its writer goroutine) on
// first use. The resolution is memoized in the lock-free routes map,
// so the canonicalization (which may hit the resolver) runs once per
// logical destination — and outside h.mu, so a slow resolver never
// stalls the accept loop, Stats, or sends to other peers.
func (h *TCPHost) linkTo(to core.ProcessID) *peerLink {
	if l := (*h.routes.Load())[to]; l != nil {
		return l
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	addr, ok := h.addrs[to]
	h.mu.Unlock()
	if !ok {
		return nil
	}
	key := canonicalAddr(addr)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	l, ok := h.links[key]
	if !ok {
		// The session is keyed by the canonical form but keeps dialing
		// the configured string, so every redial re-resolves it — a
		// peer restarting behind a DNS failover to a new IP stays
		// reachable.
		l = newPeerLink(h, addr, h.rcvPeerLocked(key))
		h.links[key] = l
		h.wg.Add(1)
		go l.run()
	}
	old := *h.routes.Load()
	next := make(map[core.ProcessID]*peerLink, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[to] = l
	h.routes.Store(&next)
	return l
}

// Close stops the listener, tears down sessions and accepted conns,
// and closes every node inbox once all I/O goroutines have drained.
func (h *TCPHost) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	links := make([]*peerLink, 0, len(h.links))
	for _, l := range h.links {
		links = append(links, l)
	}
	accepted := make([]net.Conn, 0, len(h.accepted))
	for c := range h.accepted {
		accepted = append(accepted, c)
	}
	h.mu.Unlock()
	close(h.done) // before closing conns: links re-check it after dial
	_ = h.ln.Close()
	for _, l := range links {
		l.shutdown()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	h.wg.Wait()
	for _, n := range *h.nodes.Load() {
		n.closedMu.Lock()
		n.closed = true
		close(n.inbox)
		n.closedMu.Unlock()
	}
}

func (h *TCPHost) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		setKeepAlive(conn)
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		h.accepted[conn] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go h.serveConn(conn)
	}
}

// canonicalAddr resolves a configured dial string to the canonical
// "ip:port" form — the form the remote host announces in its hellos
// (its bound ln.Addr()). Sessions, dedup state, and the piggyback
// rendezvous are all keyed by this string, so a deployment whose addrs
// map says "localhost:7700" must land on the same records as the
// peer's announced "127.0.0.1:7700"; without normalization the two
// spellings would silently split the session state (and with it the
// piggybacked-ack path). IPv4 resolution is preferred so that on
// dual-stack machines "localhost" keys as "127.0.0.1:p" — the form an
// IPv4-bound listener announces — rather than the resolver's RFC-6724
// pick of "[::1]:p". An unresolvable string falls back to itself (the
// dial, which uses the configured string and re-resolves every redial,
// will fail and retry anyway). A residual mismatch — a wildcard or
// IPv6-only bind whose announced form no dial string resolves to —
// degrades safely: state splits, piggybacked acks fall back to
// standalone acks, delivery stays reliable. Hosts should listen on
// concrete addresses.
func canonicalAddr(addr string) string {
	if ta, err := net.ResolveTCPAddr("tcp4", addr); err == nil {
		return ta.String()
	}
	if ta, err := net.ResolveTCPAddr("tcp", addr); err == nil {
		return ta.String()
	}
	return addr
}

// rcvPeer returns the stable receive-state record for a remote
// process, creating it on first use. Records are never replaced, so
// links can hold the pointer for the host's lifetime as their
// piggyback source.
func (h *TCPHost) rcvPeer(addr string) *rcvState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rcvPeerLocked(addr)
}

// rcvPeerLocked is rcvPeer for callers already holding h.mu (linkTo
// constructs links under it).
func (h *TCPHost) rcvPeerLocked(addr string) *rcvState {
	st := h.rcv[addr]
	if st == nil {
		st = &rcvState{}
		h.rcv[addr] = st
	}
	return st
}

// peekLink returns the existing outgoing session to a remote process
// address, nil if this host never sent to it (piggybacked acks then
// have nothing to trim).
func (h *TCPHost) peekLink(addr string) *peerLink {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.links[addr]
}

// stateFor resumes or resets the dedup state for a peer incarnation.
func (h *TCPHost) stateFor(addr string, nonce, firstSeq uint64) *rcvState {
	st := h.rcvPeer(addr)
	st.mu.Lock()
	if st.nonce != nonce {
		st.nonce = nonce
		st.delivered = firstSeq - 1
		st.conveyed = 0
	}
	st.mu.Unlock()
	st.hasPeer.Store(true)
	return st
}

// rcvFrame is one decoded data frame of a receive burst.
type rcvFrame struct {
	seq uint64
	env Envelope
	ok  bool // decoded successfully
}

// rcvBurstMax bounds how many buffered frames one read wakeup decodes
// before delivering; it mirrors the send side's coalescing and keeps
// the one-lock-per-burst critical section short.
const rcvBurstMax = 64

// frameBuffered reports whether br holds one complete frame, so a
// burst can keep decoding without ever blocking on the socket while
// decoded envelopes sit undelivered.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.LittleEndian.Uint32(hdr)
	return n <= maxFrame && uint32(br.Buffered()-4) >= n
}

// serveConn handles one accepted connection: parse the hello, then
// deliver data frames in seq order, acking cumulatively. Each read
// wakeup decodes a burst of buffered frames and delivers the whole
// burst under ONE dedup-lock acquisition (mirroring the send side's
// one-lock-per-burst queue append); piggybacked acks are applied once
// per burst. Standalone acks are coalesced off the latency path: one
// ack per ackEvery frames under load, or one after an ackDelay quiet
// window — both far inside the sender's retransmitTimeout — and
// suppressed entirely when this host's reverse-direction data frames
// already piggybacked the ack (rcvState.conveyed). Inbox delivery
// selects against the host's done channel, so a full inbox can never
// wedge shutdown.
func (h *TCPHost) serveConn(conn net.Conn) {
	defer h.wg.Done()
	defer func() {
		_ = conn.Close()
		h.mu.Lock()
		delete(h.accepted, conn)
		h.mu.Unlock()
	}()
	const (
		ackEvery = 64
		ackDelay = 25 * time.Millisecond
	)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	scratch := getFrameBuf()
	defer func() { putFrameBuf(scratch) }()

	kind, body, err := readFrame(br, &scratch)
	if err != nil || kind != frameHello {
		return
	}
	peerAddr, nonce, firstSeq, err := parseHello(body)
	if err != nil || firstSeq == 0 || peerAddr == "" {
		// Legitimate senders number frames from 1 and announce their
		// listen address; firstSeq 0 would underflow the dedup resume
		// point and blackhole the stream.
		return
	}
	st := h.stateFor(peerAddr, nonce, firstSeq)
	// Spooled frames are already acked: they must reach their inbox (or
	// shed via the crash-stop verdict) before this serve loop goes away,
	// because no retransmission will ever carry them again.
	defer h.flushSpools(st)
	st.mu.Lock()
	d := st.delivered
	st.mu.Unlock()
	// Immediate ack of the resume point lets the sender trim its queue
	// without waiting for data to flow.
	if writeAck(bw, d) != nil {
		return
	}
	h.counters.acksSent.Add(1)

	// revLink is this host's outgoing session to the same process, the
	// target of piggybacked acks read off the peer's dataAck frames.
	// Resolved lazily: it may not exist yet (or ever, for one-way
	// traffic).
	var revLink *peerLink

	burst := make([]rcvFrame, 0, rcvBurstMax)
	pendingAck := false
	spooled := false
	sinceAck := 0
	// The burst arena: frame bodies land in its chunk, payloads in its
	// slabs. The serve loop's reference rotates to a fresh arena after
	// each delivered burst (see the ownership contract in arena.go).
	a := getArena()
	defer func() { a.release() }()
	for {
		if (pendingAck || spooled) && br.Buffered() == 0 {
			// Wait for the next frame only up to the ack-delay window (or
			// the much shorter spool-retry tick while frames are staged);
			// Peek consumes nothing, so a timeout between frames is
			// safe, and the deadline is cleared before the frame read.
			wait := ackDelay
			if spooled {
				wait = spoolRetryDelay
			}
			_ = conn.SetReadDeadline(time.Now().Add(wait))
			_, err := br.Peek(1)
			_ = conn.SetReadDeadline(time.Time{})
			if err != nil {
				var ne net.Error
				if !errors.As(err, &ne) || !ne.Timeout() {
					return
				}
				if spooled {
					st.mu.Lock()
					spooled = h.drainSpools(st)
					st.mu.Unlock()
					if !pendingAck {
						continue
					}
				}
				st.mu.Lock()
				d := st.delivered
				conveyed := st.conveyed
				st.mu.Unlock()
				if conveyed >= d {
					// The reverse traffic already carried this ack in
					// full; nothing is owed.
					pendingAck, sinceAck = false, 0
					continue
				}
				if writeAck(bw, d) != nil {
					return
				}
				h.counters.acksSent.Add(1)
				pendingAck, sinceAck = false, 0
				continue
			}
		}
		// Collect a burst: one blocking read, then every complete frame
		// already buffered, decoded before any lock is taken.
		burst = burst[:0]
		pongOwed := false
		dead := false
		var pbNonce, pbAck uint64 // piggybacked ack, applied once per burst
		for {
			kind, body, err := readFrameArena(br, a)
			if err != nil {
				dead = true
				break
			}
			envOff := 8
			switch kind {
			case frameData:
				if len(body) < 8 {
					dead = true
				}
			case frameDataAck:
				if len(body) < dataAckEnvOff-dataSeqOff {
					dead = true
					break
				}
				if ackNonce := binary.LittleEndian.Uint64(body[8:]); ackNonce != 0 {
					ack := binary.LittleEndian.Uint64(body[16:])
					if ackNonce != pbNonce {
						// A nonce change mid-burst (reverse link
						// redialed) must not lose the earlier ack.
						if pbNonce != 0 && revLinkFor(&revLink, h, peerAddr) != nil {
							revLink.applyAck(pbNonce, pbAck)
						}
						pbNonce, pbAck = ackNonce, ack
					} else if ack > pbAck {
						pbAck = ack
					}
				}
				envOff = dataAckEnvOff - dataSeqOff
			case framePing:
				pongOwed = true
				if frameBuffered(br) && len(burst) < rcvBurstMax {
					continue
				}
				kind = 0 // nothing to append; fallthrough to burst end
			default:
				if frameBuffered(br) && len(burst) < rcvBurstMax {
					continue // tolerate unknown frame kinds
				}
				kind = 0
			}
			if dead {
				break
			}
			if kind == frameData || kind == frameDataAck {
				f := rcvFrame{seq: binary.LittleEndian.Uint64(body)}
				f.env, err = decodeEnvelopeArena(body[envOff:], a)
				f.ok = err == nil
				burst = append(burst, f)
			}
			if len(burst) >= rcvBurstMax || !frameBuffered(br) {
				break
			}
		}
		if pbNonce != 0 && revLinkFor(&revLink, h, peerAddr) != nil {
			revLink.applyAck(pbNonce, pbAck)
		}
		if len(burst) > 0 {
			// Durable dedup is write-ahead: the burst's resume point
			// must be on disk before any frame reaches an inbox, else a
			// crash between delivery and save would double-deliver the
			// retransmissions after restart. One atomic file write per
			// burst (frames within one conn arrive seq-ascending, so
			// the last frame's seq covers the burst).
			if h.stateDir != "" {
				if !h.persistDedup(peerAddr, st, nonce, burst[len(burst)-1].seq) {
					return
				}
			}
			// Deliver the burst under one dedup-lock acquisition. The
			// lock also serializes against an overlapping serve loop for
			// the same session (a redial racing the old conn's drain),
			// keeping within-incarnation delivery exactly-once and FIFO.
			nodes := *h.nodes.Load()
			var delivered, dups, bad, dropped uint64
			st.mu.Lock()
			for i := range burst {
				f := &burst[i]
				if f.seq <= st.delivered {
					dups++
					f.env.Release()
					continue
				}
				if f.ok {
					if ln := nodes[f.env.To]; ln != nil {
						switch h.deliverFlow(st, ln, f.env) {
						case deliverOK:
							delivered++
						case deliverSpooled:
							// The frame waits on its link's staging queue;
							// it is counted when the drain pops it.
						case deliverStalled:
							// This link's consumer stopped draining
							// (crash-stop): drop ITS frames after the
							// bounded stall — mirroring the send side's
							// sendStallTimeout — instead of wedging the
							// whole process-pair session behind st.mu.
							dropped++
							f.env.Release()
						case deliverClosed:
							st.mu.Unlock()
							return
						}
					} else {
						// Ack it anyway: a frame for a node this host
						// does not carry would otherwise be
						// retransmitted forever.
						bad++
						f.env.Release()
					}
				} else {
					bad++
				}
				st.delivered = f.seq
			}
			d = st.delivered
			spooled = h.drainSpools(st)
			st.mu.Unlock()
			if delivered > 0 {
				h.counters.delivered.Add(delivered)
			}
			if dups > 0 {
				h.counters.dups.Add(dups)
			}
			if bad > 0 {
				h.counters.badEnv.Add(bad)
			}
			if dropped > 0 {
				h.counters.drops.Add(dropped)
			}
			pendingAck = true
			sinceAck += len(burst)
			// Rotate the serve loop's arena reference: this burst's
			// arena recycles as soon as its last consumer releases, and
			// the next burst starts on a fresh (pooled) one.
			a.release()
			a = getArena()
		} else {
			// Nothing was decoded out of the chunk (ping/unknown-only
			// wakeup); reuse it in place instead of letting it grow.
			a.chunk = a.chunk[:0]
		}
		if pongOwed {
			if writePong(bw) != nil {
				return
			}
		}
		if dead {
			return
		}
		if pendingAck && sinceAck >= ackEvery {
			if st.conveyedWithin(d, uint64(sinceAck)) {
				// Piggybacked acks are keeping up (the sender's unacked
				// window stays small); skip the standalone ack but keep
				// the quiet-window one armed for the tail of the burst.
				sinceAck = 0
				continue
			}
			if writeAck(bw, d) != nil {
				return
			}
			h.counters.acksSent.Add(1)
			pendingAck, sinceAck = false, 0
		}
	}
}

// revLinkFor lazily resolves (and caches in *l) the host's outgoing
// session to addr.
func revLinkFor(l **peerLink, h *TCPHost, addr string) *peerLink {
	if *l == nil {
		*l = h.peekLink(addr)
	}
	return *l
}

// Delivery verdicts.
type deliverVerdict int

const (
	deliverOK      deliverVerdict = iota
	deliverStalled                // inbox full past the stall bound; frame dropped
	deliverClosed                 // host shutting down
	deliverSpooled                // staged on the link's flow-control spool
)

// linkKey packs a logical (from, to) pair into the spool map key.
func linkKey(from, to core.ProcessID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// deliverFlow hands one inbound envelope to node ln over the logical
// link (env.From → env.To), preserving per-link FIFO through the
// link's staging queue. The caller holds st.mu.
//
// The fast path is the old one: a non-blocking inbox send. What changed
// is the slow path — a full inbox used to make the serve loop block (or
// drop) with st.mu held, head-of-line-blocking every colocated link on
// the shared session. Now the frame is staged on ITS link's spool and
// the burst moves on; the session only falls back to the bounded
// blocking wait when that one link exhausts its credit window, and even
// then the wait charges only the hot link (its sender sees the stalled
// acks; colocated links keep flowing through the round-robin drain).
func (h *TCPHost) deliverFlow(st *rcvState, ln *TCPNode, env Envelope) deliverVerdict {
	key := linkKey(env.From, env.To)
	sp := st.spools[key]
	if sp == nil || len(sp.q) == 0 {
		select {
		case ln.inbox <- env:
			ln.noteDelivered()
			return deliverOK
		case <-h.done:
			return deliverClosed
		default:
		}
		if ln.stalledRecently() {
			return deliverStalled
		}
		if sp == nil {
			if st.spools == nil {
				st.spools = make(map[uint64]*linkSpool)
			}
			sp = &linkSpool{node: ln}
			st.spools[key] = sp
			st.order = append(st.order, sp)
		}
		st.stage(sp, env, &h.counters)
		return deliverSpooled
	}
	// The spool is non-empty: FIFO on this link means queueing behind it.
	if len(sp.q) >= linkCreditWindow {
		// Credit exhausted. The bounded blocking wait applies to the
		// spool head (oldest frame first); hitting the bound means the
		// consumer is gone — crash-stop — and the whole spool sheds.
		if ln.stalledRecently() {
			h.shedSpool(st, sp)
			return deliverStalled
		}
		head := sp.q[0]
		switch ln.awaitInbox(head, h.done) {
		case deliverOK:
			sp.pop(st, &h.counters)
			h.counters.delivered.Add(1)
		case deliverClosed:
			return deliverClosed
		default:
			h.shedSpool(st, sp)
			return deliverStalled
		}
	}
	st.stage(sp, env, &h.counters)
	return deliverSpooled
}

// stage appends env to sp's queue. Caller holds st.mu.
func (st *rcvState) stage(sp *linkSpool, env Envelope, c *tcpCounters) {
	if len(sp.q) == 0 {
		now := time.Now().UnixNano()
		sp.sinceNS, sp.headNS = now, now
		c.creditStalls.Add(1)
	}
	sp.q = append(sp.q, env)
	st.spooled++
	if len(sp.q) > sp.highWater {
		sp.highWater = len(sp.q)
		maxUint64(&c.spoolHighWater, uint64(sp.highWater))
	}
}

// pop removes sp's head (already delivered by the caller) and updates
// the progress clock. Caller holds st.mu.
func (sp *linkSpool) pop(st *rcvState, c *tcpCounters) {
	now := time.Now().UnixNano()
	sp.headNS = now
	sp.q[0] = Envelope{}
	sp.q = sp.q[1:]
	st.spooled--
	if len(sp.q) == 0 {
		sp.q = nil // let the drained backing array go
		c.creditStallNS.Add(uint64(now - sp.sinceNS))
	}
}

// drainSpools makes one round-robin pass over the staging queues,
// popping as many frames as each inbox accepts without blocking, and
// reports whether any staged frames remain. A spool that has made no
// progress for sendStallTimeout with frames waiting marks its node
// stalled (crash-stop) and sheds. Caller holds st.mu.
func (h *TCPHost) drainSpools(st *rcvState) bool {
	n := len(st.order)
	if n == 0 || st.spooled == 0 {
		return false
	}
	for i := 0; i < n; i++ {
		sp := st.order[(st.rrPos+i)%n]
		for len(sp.q) > 0 {
			select {
			case sp.node.inbox <- sp.q[0]:
				sp.node.noteDelivered()
				sp.pop(st, &h.counters)
				h.counters.delivered.Add(1)
				continue
			default:
			}
			if time.Now().UnixNano()-sp.headNS > int64(sendStallTimeout) {
				sp.node.stalledAtNS.Store(time.Now().UnixNano())
				h.shedSpool(st, sp)
			}
			break
		}
	}
	if n > 0 {
		st.rrPos = (st.rrPos + 1) % n
	}
	return st.spooled > 0
}

// shedSpool drops every staged frame of one link — the crash-stop
// verdict for its consumer, mirroring deliverStalled on the direct
// path. Caller holds st.mu.
func (h *TCPHost) shedSpool(st *rcvState, sp *linkSpool) {
	if len(sp.q) == 0 {
		return
	}
	h.counters.drops.Add(uint64(len(sp.q)))
	h.counters.creditStallNS.Add(uint64(time.Now().UnixNano() - sp.sinceNS))
	st.spooled -= len(sp.q)
	for i := range sp.q {
		sp.q[i].Release()
		sp.q[i] = Envelope{}
	}
	sp.q = nil
}

// flushSpools drains every staging queue before a serve loop returns:
// spooled frames are already acked, so they must reach their inbox (or
// shed via the crash-stop verdict) — they cannot ride a retransmission,
// and another serve loop for the session may never come.
func (h *TCPHost) flushSpools(st *rcvState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sp := range st.order {
		for len(sp.q) > 0 {
			select {
			case sp.node.inbox <- sp.q[0]:
				sp.node.noteDelivered()
				sp.pop(st, &h.counters)
				h.counters.delivered.Add(1)
				continue
			default:
			}
			if sp.node.stalledRecently() {
				h.shedSpool(st, sp)
				break
			}
			switch sp.node.awaitInbox(sp.q[0], h.done) {
			case deliverOK:
				sp.pop(st, &h.counters)
				h.counters.delivered.Add(1)
			default:
				// Stalled consumer or closing host: either way these
				// frames' delivery chance is gone.
				h.shedSpool(st, sp)
			}
		}
	}
}
