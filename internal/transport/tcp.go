package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// TCPNode is a Port backed by real TCP connections, used by the demo
// binaries to run the protocols across processes. Envelopes travel as
// length-prefixed binary frames (codec.go); payload types must be
// registered with Register. Outgoing messages go through managed peer
// links (link.go) that redial and retransmit until the peer
// acknowledges delivery, giving the TCP path the reliable-channel
// semantics the paper's model assumes (§3.1) — a peer process may
// crash and restart at the same address without losing messages.
type TCPNode struct {
	id    core.ProcessID
	addrs map[core.ProcessID]string
	ln    net.Listener
	inbox chan Envelope
	done  chan struct{} // closed on Close; gates inbox delivery

	mu       sync.Mutex
	links    map[core.ProcessID]*peerLink
	rcv      map[core.ProcessID]*rcvState
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	counters tcpCounters
}

// rcvState is the per-sender dedup state: the highest seq delivered for
// the sender's current link incarnation. A reconnect from the same
// incarnation resumes it (retransmitted frames are dropped as dups); a
// new incarnation (sender process restarted) resets it. The record is
// also the piggyback rendezvous: the node's outgoing link to the same
// peer stamps (nonce, delivered) into its data frames, and conveyed
// tracks how much of that made it onto the wire so the serve loop can
// suppress standalone acks the reverse traffic already carried.
type rcvState struct {
	mu        sync.Mutex
	nonce     uint64 // current sender incarnation (0 until the first hello)
	delivered uint64 // highest contiguously delivered seq of that incarnation
	conveyed  uint64 // highest delivered value piggybacked onto flushed reverse data

	// hasPeer flips once a hello arrives; outgoing links then switch to
	// dataAck frames (purely unidirectional traffic keeps the slimmer
	// data frames).
	hasPeer atomic.Bool
}

// ackSnapshot returns a consistent (incarnation, cumulative ack) pair
// for stamping into outgoing dataAck frames.
func (st *rcvState) ackSnapshot() (nonce, ack uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nonce, st.delivered
}

// noteConveyed records that a flushed reverse-direction write carried
// the ack value, so standalone acks up to it are redundant.
func (st *rcvState) noteConveyed(ack uint64) {
	st.mu.Lock()
	if ack > st.conveyed {
		st.conveyed = ack
	}
	st.mu.Unlock()
}

// conveyedWithin reports whether piggybacked conveyance trails the
// delivered seq d by at most lag frames. lag 0 is the exact "fully
// conveyed" check used at traffic quiescence; the in-load count
// trigger tolerates a small lag because request/response traffic
// always has the latest delivery's ack still in flight on the next
// reverse frame.
func (st *rcvState) conveyedWithin(d, lag uint64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.conveyed <= d && d-st.conveyed <= lag
}

// resetConveyed forgets piggyback conveyance when the carrier conn
// dies: a flush into a dead socket "succeeds" locally but the peer may
// never see the ack, and if the reverse queue has fully drained no
// retransmission will re-stamp it — the serve loop must fall back to
// standalone acks instead of suppressing against a value the peer
// never received. Queued frames re-sent on the next conn re-bump it.
func (st *rcvState) resetConveyed() {
	st.mu.Lock()
	st.conveyed = 0
	st.mu.Unlock()
}

// tcpCounters are the node's atomic stat counters (see TCPStats).
type tcpCounters struct {
	sent, delivered, dups, drops   atomic.Uint64
	resent, redials, ackTimeouts   atomic.Uint64
	acksSent, acksReceived, badEnv atomic.Uint64
	acksPiggybacked                atomic.Uint64
}

// TCPStats is a snapshot of a node's transport counters, letting demos
// and tests assert that no message was lost across peer restarts.
type TCPStats struct {
	Sent            uint64 // envelopes accepted into a link's queue
	Delivered       uint64 // envelopes handed to this node's inbox
	Dups            uint64 // retransmitted frames dropped by dedup
	Drops           uint64 // envelopes dropped: unknown peer, closed node, full queue, encode error
	Resent          uint64 // frames rewritten on a fresh conn after a failure
	Redials         uint64 // conns re-established after an initial success
	AckTimeouts     uint64 // conns declared dead for ack silence
	AcksSent        uint64 // standalone cumulative ack frames written
	AcksReceived    uint64 // standalone cumulative ack frames read
	AcksPiggybacked uint64 // acks carried on outgoing data frames instead of standalone
	BadEnvelopes    uint64 // frames acked but not deliverable (unknown tag, decode error)
	Queued          int    // frames currently awaiting acknowledgement across all links
}

// Stats returns a snapshot of the node's transport counters.
func (n *TCPNode) Stats() TCPStats {
	queued := 0
	n.mu.Lock()
	for _, l := range n.links {
		l.mu.Lock()
		queued += l.unacked()
		l.mu.Unlock()
	}
	n.mu.Unlock()
	return TCPStats{
		Queued:          queued,
		Sent:            n.counters.sent.Load(),
		Delivered:       n.counters.delivered.Load(),
		Dups:            n.counters.dups.Load(),
		Drops:           n.counters.drops.Load(),
		Resent:          n.counters.resent.Load(),
		Redials:         n.counters.redials.Load(),
		AckTimeouts:     n.counters.ackTimeouts.Load(),
		AcksSent:        n.counters.acksSent.Load(),
		AcksReceived:    n.counters.acksReceived.Load(),
		AcksPiggybacked: n.counters.acksPiggybacked.Load(),
		BadEnvelopes:    n.counters.badEnv.Load(),
	}
}

var _ Port = (*TCPNode)(nil)

// NewTCPNode starts a node listening on addrs[id] and able to dial every
// other address in addrs.
func NewTCPNode(id core.ProcessID, addrs map[core.ProcessID]string) (*TCPNode, error) {
	addr, ok := addrs[id]
	if !ok {
		return nil, fmt.Errorf("tcp: no address for process %d", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:       id,
		addrs:    addrs,
		ln:       ln,
		inbox:    make(chan Envelope, inboxCap),
		done:     make(chan struct{}),
		links:    make(map[core.ProcessID]*peerLink),
		rcv:      make(map[core.ProcessID]*rcvState),
		accepted: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID returns the node's process ID.
func (n *TCPNode) ID() core.ProcessID { return n.id }

// Inbox returns incoming envelopes; closed on Close.
func (n *TCPNode) Inbox() <-chan Envelope { return n.inbox }

// Send dispatches a payload with hop 0. Delivery is reliable as long as
// the peer (or a restarted process at its address) eventually comes
// back: the link retransmits until acknowledged, and a full
// retransmission queue applies backpressure (bounded by the link's
// stall timeout) rather than dropping. Messages are dropped — and
// counted in Stats — only for unknown peers, unregistered payload
// types, a closed node, or a peer gone past the stall timeout.
func (n *TCPNode) Send(to core.ProcessID, payload Message) {
	n.SendHop(to, payload, 0)
}

// SendHop dispatches a payload with an explicit hop depth.
func (n *TCPNode) SendHop(to core.ProcessID, payload Message, hop int) {
	env := Envelope{From: n.id, To: to, Hop: hop, Payload: payload}
	l := n.linkTo(to)
	if l == nil || !l.send(&env) {
		n.counters.drops.Add(1)
		return
	}
	n.counters.sent.Add(1)
}

// SendBatch dispatches a burst of payloads to one peer as a single
// queue append: the burst is encoded up front, appended under one link
// lock with contiguous seqs, and coalesced by the writer goroutine
// into one framed write on the wire.
func (n *TCPNode) SendBatch(to core.ProcessID, payloads []Message, hop int) {
	if len(payloads) == 0 {
		return
	}
	if len(payloads) == 1 {
		n.SendHop(to, payloads[0], hop)
		return
	}
	l := n.linkTo(to)
	if l == nil {
		n.counters.drops.Add(uint64(len(payloads)))
		return
	}
	frames := make([][]byte, 0, len(payloads))
	dropped := 0
	env := Envelope{From: n.id, To: to, Hop: hop}
	for _, pl := range payloads {
		env.Payload = pl
		if buf := l.encodeData(&env); buf != nil {
			frames = append(frames, buf)
		} else {
			dropped++
		}
	}
	accepted := l.enqueueFrames(frames)
	dropped += len(frames) - accepted
	if accepted > 0 {
		n.counters.sent.Add(uint64(accepted))
	}
	if dropped > 0 {
		n.counters.drops.Add(uint64(dropped))
	}
}

// Broadcast fans payload out to every member of dst. Destinations are
// distinct conns, so there is no cross-peer write to coalesce; the win
// is encoding the tagged payload body once and stamping each
// destination's routing header around it.
func (n *TCPNode) Broadcast(dst core.Set, payload Message, hop int) {
	targets := bits.OnesCount64(uint64(dst))
	if targets == 0 {
		return
	}
	scratch := getFrameBuf()
	tagged, err := appendTaggedPayload(scratch, payload)
	if err != nil {
		putFrameBuf(scratch)
		n.counters.drops.Add(uint64(targets))
		return
	}
	for v := uint64(dst); v != 0; v &= v - 1 {
		to := bits.TrailingZeros64(v)
		l := n.linkTo(to)
		if l == nil {
			n.counters.drops.Add(1)
			continue
		}
		buf := l.encodeDataTagged(n.id, to, hop, tagged)
		if buf == nil || !l.enqueue1(buf) {
			n.counters.drops.Add(1)
			continue
		}
		n.counters.sent.Add(1)
	}
	putFrameBuf(tagged)
}

// linkTo returns the managed link to a peer, creating it (and its
// writer goroutine) on first use.
func (n *TCPNode) linkTo(to core.ProcessID) *peerLink {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	if l, ok := n.links[to]; ok {
		return l
	}
	addr, ok := n.addrs[to]
	if !ok {
		return nil
	}
	l := newPeerLink(n, to, addr, n.rcvPeerLocked(to))
	n.links[to] = l
	n.wg.Add(1)
	go l.run()
	return l
}

// Close stops the listener, tears down links and accepted conns, and
// closes the inbox once every goroutine has drained.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*peerLink, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()
	close(n.done) // before closing conns: links re-check it after dial
	_ = n.ln.Close()
	for _, l := range links {
		l.shutdown()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.inbox)
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serveConn(conn)
	}
}

// rcvPeer returns the stable receive-state record for a peer, creating
// it on first use. Records are never replaced, so links can hold the
// pointer for the node's lifetime as their piggyback source.
func (n *TCPNode) rcvPeer(from core.ProcessID) *rcvState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rcvPeerLocked(from)
}

// rcvPeerLocked is rcvPeer for callers already holding n.mu (linkTo
// constructs links under it).
func (n *TCPNode) rcvPeerLocked(from core.ProcessID) *rcvState {
	st := n.rcv[from]
	if st == nil {
		st = &rcvState{}
		n.rcv[from] = st
	}
	return st
}

// peekLink returns the existing outgoing link to a peer, nil if this
// node never sent to it (piggybacked acks then have nothing to trim).
func (n *TCPNode) peekLink(to core.ProcessID) *peerLink {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[to]
}

// stateFor resumes or resets the dedup state for a sender incarnation.
func (n *TCPNode) stateFor(from core.ProcessID, nonce, firstSeq uint64) *rcvState {
	st := n.rcvPeer(from)
	st.mu.Lock()
	if st.nonce != nonce {
		st.nonce = nonce
		st.delivered = firstSeq - 1
		st.conveyed = 0
	}
	st.mu.Unlock()
	st.hasPeer.Store(true)
	return st
}

// serveConn handles one accepted connection: parse the hello, then
// deliver data frames in seq order, acking cumulatively. Acks are
// coalesced off the latency path: one ack per ackEvery frames under
// load, or one after an ackDelay quiet window — both far inside the
// sender's retransmitTimeout — and suppressed entirely when this
// node's reverse-direction data frames already piggybacked the ack
// (rcvState.conveyed). Inbox delivery selects against the node's done
// channel, so a full inbox can never wedge shutdown.
func (n *TCPNode) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	const (
		ackEvery = 64
		ackDelay = 25 * time.Millisecond
	)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	scratch := getFrameBuf()
	defer func() { putFrameBuf(scratch) }()

	kind, body, err := readFrame(br, &scratch)
	if err != nil || kind != frameHello {
		return
	}
	from, nonce, firstSeq, err := parseHello(body)
	if err != nil || firstSeq == 0 {
		// Legitimate senders number frames from 1; firstSeq 0 would
		// underflow the dedup resume point and blackhole the stream.
		return
	}
	st := n.stateFor(from, nonce, firstSeq)
	st.mu.Lock()
	d := st.delivered
	st.mu.Unlock()
	// Immediate ack of the resume point lets the sender trim its queue
	// without waiting for data to flow.
	if writeAck(bw, d) != nil {
		return
	}
	n.counters.acksSent.Add(1)

	// revLink is this node's outgoing link to the same peer, the target
	// of piggybacked acks read off the peer's dataAck frames. Resolved
	// lazily: it may not exist yet (or ever, for one-way traffic).
	var revLink *peerLink

	pendingAck := false
	sinceAck := 0
	for {
		if pendingAck && br.Buffered() == 0 {
			// Wait for the next frame only up to the ack-delay window;
			// Peek consumes nothing, so a timeout between frames is
			// safe, and the deadline is cleared before the frame read.
			_ = conn.SetReadDeadline(time.Now().Add(ackDelay))
			_, err := br.Peek(1)
			_ = conn.SetReadDeadline(time.Time{})
			if err != nil {
				var ne net.Error
				if !errors.As(err, &ne) || !ne.Timeout() {
					return
				}
				st.mu.Lock()
				d := st.delivered
				conveyed := st.conveyed
				st.mu.Unlock()
				if conveyed >= d {
					// The reverse traffic already carried this ack in
					// full; nothing is owed.
					pendingAck, sinceAck = false, 0
					continue
				}
				if writeAck(bw, d) != nil {
					return
				}
				n.counters.acksSent.Add(1)
				pendingAck, sinceAck = false, 0
				continue
			}
		}
		kind, body, err := readFrame(br, &scratch)
		if err != nil {
			return
		}
		envOff := 8
		switch kind {
		case frameData:
			if len(body) < 8 {
				return
			}
		case frameDataAck:
			if len(body) < dataAckEnvOff-dataSeqOff {
				return
			}
			if ackNonce := binary.LittleEndian.Uint64(body[8:]); ackNonce != 0 {
				if revLink == nil {
					revLink = n.peekLink(from)
				}
				if revLink != nil {
					revLink.applyAck(ackNonce, binary.LittleEndian.Uint64(body[16:]))
				}
			}
			envOff = dataAckEnvOff - dataSeqOff
		default:
			continue // tolerate unknown frame kinds
		}
		seq := binary.LittleEndian.Uint64(body)
		env, decErr := decodeEnvelope(body[envOff:])
		st.mu.Lock()
		if seq > st.delivered {
			if decErr == nil {
				select {
				case n.inbox <- env:
					n.counters.delivered.Add(1)
				case <-n.done:
					st.mu.Unlock()
					return
				}
			} else {
				// Ack it anyway: an undecodable envelope would
				// otherwise be retransmitted forever.
				n.counters.badEnv.Add(1)
			}
			st.delivered = seq
		} else {
			n.counters.dups.Add(1)
		}
		d := st.delivered
		st.mu.Unlock()
		pendingAck = true
		sinceAck++
		if sinceAck >= ackEvery {
			if st.conveyedWithin(d, ackEvery) {
				// Piggybacked acks are keeping up (the sender's unacked
				// window stays small); skip the standalone ack but keep
				// the quiet-window one armed for the tail of the burst.
				sinceAck = 0
				continue
			}
			if writeAck(bw, d) != nil {
				return
			}
			n.counters.acksSent.Add(1)
			pendingAck, sinceAck = false, 0
		}
	}
}
