package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
)

// Register makes a concrete payload type encodable over the TCP transport.
// Protocol packages call this for each of their message types.
func Register(v Message) { gob.Register(v) }

// TCPNode is a Port backed by real TCP connections, used by the demo
// binaries to run the protocols across processes. Envelopes are
// gob-encoded; payload types must be registered with Register.
type TCPNode struct {
	id    core.ProcessID
	addrs map[core.ProcessID]string
	ln    net.Listener
	inbox chan Envelope

	mu       sync.Mutex
	conns    map[core.ProcessID]*tcpConn
	accepted []net.Conn
	closed   bool
	wg       sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

var _ Port = (*TCPNode)(nil)

// NewTCPNode starts a node listening on addrs[id] and able to dial every
// other address in addrs.
func NewTCPNode(id core.ProcessID, addrs map[core.ProcessID]string) (*TCPNode, error) {
	addr, ok := addrs[id]
	if !ok {
		return nil, fmt.Errorf("tcp: no address for process %d", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:    id,
		addrs: addrs,
		ln:    ln,
		inbox: make(chan Envelope, inboxCap),
		conns: make(map[core.ProcessID]*tcpConn),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID returns the node's process ID.
func (n *TCPNode) ID() core.ProcessID { return n.id }

// Inbox returns incoming envelopes; closed on Close.
func (n *TCPNode) Inbox() <-chan Envelope { return n.inbox }

// Send dispatches a payload with hop 0. Errors (unreachable peer) are
// swallowed: the model's channels may be slow, and protocol correctness
// never depends on detecting send failure.
func (n *TCPNode) Send(to core.ProcessID, payload Message) {
	n.SendHop(to, payload, 0)
}

// SendHop dispatches a payload with an explicit hop depth.
func (n *TCPNode) SendHop(to core.ProcessID, payload Message, hop int) {
	env := Envelope{From: n.id, To: to, Hop: hop, Payload: payload}
	c, err := n.connTo(to)
	if err != nil {
		return
	}
	c.mu.Lock()
	err = c.enc.Encode(&env)
	c.mu.Unlock()
	if err != nil {
		n.dropConn(to, c)
	}
}

// Close stops the listener, drops connections, and closes the inbox.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := n.conns
	accepted := n.accepted
	n.conns = map[core.ProcessID]*tcpConn{}
	n.accepted = nil
	n.mu.Unlock()
	_ = n.ln.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.inbox)
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted = append(n.accepted, conn)
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		n.inbox <- env
	}
}

func (n *TCPNode) connTo(to core.ProcessID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("tcp: node closed")
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcp: unknown process %d", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", addr, err)
	}
	c := &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.conns[to]; ok {
		_ = conn.Close()
		return existing, nil
	}
	if n.closed {
		_ = conn.Close()
		return nil, fmt.Errorf("tcp: node closed")
	}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) dropConn(to core.ProcessID, c *tcpConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.conns[to] == c {
		delete(n.conns, to)
		_ = c.conn.Close()
	}
}
