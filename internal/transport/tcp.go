package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// TCPNode is a Port backed by real TCP connections, used by the demo
// binaries to run the protocols across processes. Envelopes travel as
// length-prefixed binary frames (codec.go); payload types must be
// registered with Register. Outgoing messages go through managed peer
// links (link.go) that redial and retransmit until the peer
// acknowledges delivery, giving the TCP path the reliable-channel
// semantics the paper's model assumes (§3.1) — a peer process may
// crash and restart at the same address without losing messages.
type TCPNode struct {
	id    core.ProcessID
	addrs map[core.ProcessID]string
	ln    net.Listener
	inbox chan Envelope
	done  chan struct{} // closed on Close; gates inbox delivery

	mu       sync.Mutex
	links    map[core.ProcessID]*peerLink
	rcv      map[core.ProcessID]*rcvState
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	counters tcpCounters
}

// rcvState is the per-sender dedup state: the highest seq delivered for
// the sender's current link incarnation. A reconnect from the same
// incarnation resumes it (retransmitted frames are dropped as dups); a
// new incarnation (sender process restarted) resets it.
type rcvState struct {
	mu        sync.Mutex
	nonce     uint64
	delivered uint64
}

// tcpCounters are the node's atomic stat counters (see TCPStats).
type tcpCounters struct {
	sent, delivered, dups, drops   atomic.Uint64
	resent, redials, ackTimeouts   atomic.Uint64
	acksSent, acksReceived, badEnv atomic.Uint64
}

// TCPStats is a snapshot of a node's transport counters, letting demos
// and tests assert that no message was lost across peer restarts.
type TCPStats struct {
	Sent         uint64 // envelopes accepted into a link's queue
	Delivered    uint64 // envelopes handed to this node's inbox
	Dups         uint64 // retransmitted frames dropped by dedup
	Drops        uint64 // envelopes dropped: unknown peer, closed node, full queue, encode error
	Resent       uint64 // frames rewritten on a fresh conn after a failure
	Redials      uint64 // conns re-established after an initial success
	AckTimeouts  uint64 // conns declared dead for ack silence
	AcksSent     uint64 // cumulative ack frames written
	AcksReceived uint64 // cumulative ack frames read
	BadEnvelopes uint64 // frames acked but not deliverable (unknown tag, decode error)
	Queued       int    // frames currently awaiting acknowledgement across all links
}

// Stats returns a snapshot of the node's transport counters.
func (n *TCPNode) Stats() TCPStats {
	queued := 0
	n.mu.Lock()
	for _, l := range n.links {
		l.mu.Lock()
		queued += l.unacked()
		l.mu.Unlock()
	}
	n.mu.Unlock()
	return TCPStats{
		Queued:       queued,
		Sent:         n.counters.sent.Load(),
		Delivered:    n.counters.delivered.Load(),
		Dups:         n.counters.dups.Load(),
		Drops:        n.counters.drops.Load(),
		Resent:       n.counters.resent.Load(),
		Redials:      n.counters.redials.Load(),
		AckTimeouts:  n.counters.ackTimeouts.Load(),
		AcksSent:     n.counters.acksSent.Load(),
		AcksReceived: n.counters.acksReceived.Load(),
		BadEnvelopes: n.counters.badEnv.Load(),
	}
}

var _ Port = (*TCPNode)(nil)

// NewTCPNode starts a node listening on addrs[id] and able to dial every
// other address in addrs.
func NewTCPNode(id core.ProcessID, addrs map[core.ProcessID]string) (*TCPNode, error) {
	addr, ok := addrs[id]
	if !ok {
		return nil, fmt.Errorf("tcp: no address for process %d", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:       id,
		addrs:    addrs,
		ln:       ln,
		inbox:    make(chan Envelope, inboxCap),
		done:     make(chan struct{}),
		links:    make(map[core.ProcessID]*peerLink),
		rcv:      make(map[core.ProcessID]*rcvState),
		accepted: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID returns the node's process ID.
func (n *TCPNode) ID() core.ProcessID { return n.id }

// Inbox returns incoming envelopes; closed on Close.
func (n *TCPNode) Inbox() <-chan Envelope { return n.inbox }

// Send dispatches a payload with hop 0. Delivery is reliable as long as
// the peer (or a restarted process at its address) eventually comes
// back: the link retransmits until acknowledged, and a full
// retransmission queue applies backpressure (bounded by the link's
// stall timeout) rather than dropping. Messages are dropped — and
// counted in Stats — only for unknown peers, unregistered payload
// types, a closed node, or a peer gone past the stall timeout.
func (n *TCPNode) Send(to core.ProcessID, payload Message) {
	n.SendHop(to, payload, 0)
}

// SendHop dispatches a payload with an explicit hop depth.
func (n *TCPNode) SendHop(to core.ProcessID, payload Message, hop int) {
	env := Envelope{From: n.id, To: to, Hop: hop, Payload: payload}
	l := n.linkTo(to)
	if l == nil || !l.send(&env) {
		n.counters.drops.Add(1)
		return
	}
	n.counters.sent.Add(1)
}

// linkTo returns the managed link to a peer, creating it (and its
// writer goroutine) on first use.
func (n *TCPNode) linkTo(to core.ProcessID) *peerLink {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	if l, ok := n.links[to]; ok {
		return l
	}
	addr, ok := n.addrs[to]
	if !ok {
		return nil
	}
	l := newPeerLink(n, to, addr)
	n.links[to] = l
	n.wg.Add(1)
	go l.run()
	return l
}

// Close stops the listener, tears down links and accepted conns, and
// closes the inbox once every goroutine has drained.
func (n *TCPNode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*peerLink, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()
	close(n.done) // before closing conns: links re-check it after dial
	_ = n.ln.Close()
	for _, l := range links {
		l.shutdown()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.inbox)
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serveConn(conn)
	}
}

// stateFor resumes or resets the dedup state for a sender incarnation.
func (n *TCPNode) stateFor(from core.ProcessID, nonce, firstSeq uint64) *rcvState {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.rcv[from]
	if st == nil || st.nonce != nonce {
		st = &rcvState{nonce: nonce, delivered: firstSeq - 1}
		n.rcv[from] = st
	}
	return st
}

// serveConn handles one accepted connection: parse the hello, then
// deliver data frames in seq order, acking cumulatively. Acks are
// coalesced off the latency path: one ack per ackEvery frames under
// load, or one after an ackDelay quiet window — both far inside the
// sender's retransmitTimeout. Inbox delivery selects against the
// node's done channel, so a full inbox can never wedge shutdown.
func (n *TCPNode) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	const (
		ackEvery = 64
		ackDelay = 25 * time.Millisecond
	)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	scratch := getFrameBuf()
	defer func() { putFrameBuf(scratch) }()

	kind, body, err := readFrame(br, &scratch)
	if err != nil || kind != frameHello {
		return
	}
	from, nonce, firstSeq, err := parseHello(body)
	if err != nil || firstSeq == 0 {
		// Legitimate senders number frames from 1; firstSeq 0 would
		// underflow the dedup resume point and blackhole the stream.
		return
	}
	st := n.stateFor(from, nonce, firstSeq)
	st.mu.Lock()
	d := st.delivered
	st.mu.Unlock()
	// Immediate ack of the resume point lets the sender trim its queue
	// without waiting for data to flow.
	if writeAck(bw, d) != nil {
		return
	}
	n.counters.acksSent.Add(1)

	pendingAck := false
	sinceAck := 0
	for {
		if pendingAck && br.Buffered() == 0 {
			// Wait for the next frame only up to the ack-delay window;
			// Peek consumes nothing, so a timeout between frames is
			// safe, and the deadline is cleared before the frame read.
			_ = conn.SetReadDeadline(time.Now().Add(ackDelay))
			_, err := br.Peek(1)
			_ = conn.SetReadDeadline(time.Time{})
			if err != nil {
				var ne net.Error
				if !errors.As(err, &ne) || !ne.Timeout() {
					return
				}
				st.mu.Lock()
				d := st.delivered
				st.mu.Unlock()
				if writeAck(bw, d) != nil {
					return
				}
				n.counters.acksSent.Add(1)
				pendingAck, sinceAck = false, 0
				continue
			}
		}
		kind, body, err := readFrame(br, &scratch)
		if err != nil {
			return
		}
		if kind != frameData {
			continue // tolerate unknown frame kinds
		}
		if len(body) < 8 {
			return
		}
		seq := binary.LittleEndian.Uint64(body)
		env, decErr := decodeEnvelope(body[8:])
		st.mu.Lock()
		if seq > st.delivered {
			if decErr == nil {
				select {
				case n.inbox <- env:
					n.counters.delivered.Add(1)
				case <-n.done:
					st.mu.Unlock()
					return
				}
			} else {
				// Ack it anyway: an undecodable envelope would
				// otherwise be retransmitted forever.
				n.counters.badEnv.Add(1)
			}
			st.delivered = seq
		} else {
			n.counters.dups.Add(1)
		}
		d := st.delivered
		st.mu.Unlock()
		pendingAck = true
		sinceAck++
		if sinceAck >= ackEvery {
			if writeAck(bw, d) != nil {
				return
			}
			n.counters.acksSent.Add(1)
			pendingAck, sinceAck = false, 0
		}
	}
}
