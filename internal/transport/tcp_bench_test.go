package transport_test

import (
	"bytes"
	"encoding/gob"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/transport"
)

// benchPayload is the protocols' hot message shape (a round-2 WriteReq
// with its class-2 quorum certificate).
func benchPayload() storage.WriteReq {
	return storage.WriteReq{
		TS:    12345,
		Val:   "benchmark-value",
		Sets:  []core.Set{core.NewSet(0, 1, 2, 3), core.NewSet(1, 2, 4, 5)},
		Round: 2,
	}
}

func benchTCPPair(b *testing.B) (*transport.TCPNode, *transport.TCPNode) {
	b.Helper()
	transport.Register(storage.WriteReq{})
	addrs := map[core.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	n0, err := transport.NewTCPNode(0, addrs)
	if err != nil {
		b.Fatal(err)
	}
	addrs[0] = n0.Addr()
	n1, err := transport.NewTCPNode(1, addrs)
	if err != nil {
		n0.Close()
		b.Fatal(err)
	}
	addrs[1] = n1.Addr()
	return n0, n1
}

// BenchmarkTCPVsMemory compares the framed TCP transport against the
// in-memory Network and against the seed's gob-over-TCP codec on the
// same payload: one round trip per op (latency) and one one-way
// message per op (throughput). Results feed `rqs-bench -json` and the
// BENCH_RESULTS.json regression gate.
func BenchmarkTCPVsMemory(b *testing.B) {
	payload := benchPayload()

	b.Run("roundtrip/tcp", func(b *testing.B) {
		n0, n1 := benchTCPPair(b)
		defer n0.Close()
		defer n1.Close()
		go func() {
			// Reply with an echoer-owned payload: the received one
			// aliases a receive arena that recycles on Release, and the
			// send path encodes asynchronously.
			reply := benchPayload()
			for env := range n1.Inbox() {
				env.Release()
				n1.Send(env.From, reply)
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n0.Send(1, payload)
			env := <-n0.Inbox()
			env.Release()
		}
	})

	b.Run("roundtrip/memory", func(b *testing.B) {
		net := transport.NewNetwork(2)
		defer net.Close()
		p0, p1 := net.Port(0), net.Port(1)
		go func() {
			for env := range p1.Inbox() {
				p1.Send(env.From, env.Payload)
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p0.Send(1, payload)
			<-p0.Inbox()
		}
	})

	b.Run("roundtrip/gob-baseline", func(b *testing.B) {
		benchGobRoundTrip(b, payload)
	})

	b.Run("throughput/tcp", func(b *testing.B) {
		n0, n1 := benchTCPPair(b)
		defer n0.Close()
		defer n1.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				env := <-n1.Inbox()
				env.Release()
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n0.Send(1, payload)
		}
		<-done
	})

	b.Run("throughput/gob-baseline", func(b *testing.B) {
		benchGobThroughput(b, payload)
	})

	b.Run("throughput/memory", func(b *testing.B) {
		net := transport.NewNetwork(2)
		defer net.Close()
		p0, p1 := net.Port(0), net.Port(1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				<-p1.Inbox()
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p0.Send(1, payload)
		}
		<-done
	})
}

// gobNode reproduces the seed TCPNode's architecture faithfully — a
// mutex-guarded gob.Encoder per outgoing conn, a read goroutine
// decoding into an inbox channel — so the baseline differs from the
// framed transport only in codec and conn management, not in shape.
type gobNode struct {
	mu    sync.Mutex
	enc   *gob.Encoder
	inbox chan transport.Envelope
}

func (g *gobNode) send(env *transport.Envelope) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.enc.Encode(env)
}

// newGobPair wires two gobNodes with one TCP conn per direction, as
// the seed's dial-per-destination scheme did.
func newGobPair(b *testing.B) (*gobNode, *gobNode, func()) {
	b.Helper()
	gob.Register(storage.WriteReq{})
	nodes := [2]*gobNode{
		{inbox: make(chan transport.Envelope, 4096)},
		{inbox: make(chan transport.Envelope, 4096)},
	}
	var lns [2]net.Listener
	var conns []net.Conn
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
	}
	for i := range lns {
		i := i
		go func() {
			conn, err := lns[i].Accept()
			if err != nil {
				return
			}
			dec := gob.NewDecoder(conn)
			for {
				var env transport.Envelope
				if dec.Decode(&env) != nil {
					return
				}
				nodes[i].inbox <- env
			}
		}()
		conn, err := net.Dial("tcp", lns[1-i].Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		conns = append(conns, conn)
		nodes[i].enc = gob.NewEncoder(conn)
	}
	cleanup := func() {
		for _, c := range conns {
			_ = c.Close()
		}
		for _, ln := range lns {
			_ = ln.Close()
		}
	}
	return nodes[0], nodes[1], cleanup
}

func benchGobRoundTrip(b *testing.B, payload storage.WriteReq) {
	n0, n1, cleanup := newGobPair(b)
	defer cleanup()
	go func() {
		for env := range n1.inbox {
			if n1.send(&env) != nil {
				return
			}
		}
	}()
	env := transport.Envelope{From: 0, To: 1, Payload: payload}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n0.send(&env); err != nil {
			b.Fatal(err)
		}
		<-n0.inbox
	}
}

func benchGobThroughput(b *testing.B, payload storage.WriteReq) {
	n0, n1, cleanup := newGobPair(b)
	defer cleanup()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-n1.inbox
		}
	}()
	env := transport.Envelope{From: 0, To: 1, Payload: payload}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n0.send(&env); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

// BenchmarkCodecVsGob isolates the codec cost (no sockets): encode one
// envelope and decode it back, framed codec versus gob.
func BenchmarkCodecVsGob(b *testing.B) {
	payload := benchPayload()
	b.Run("framed", func(b *testing.B) {
		transport.Register(storage.WriteReq{})
		env := transport.Envelope{From: 0, To: 1, Payload: payload}
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if buf, err = transport.EncodeEnvelope(buf[:0], env); err != nil {
				b.Fatal(err)
			}
			if _, err := transport.DecodeEnvelope(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		gob.Register(storage.WriteReq{})
		// Persistent encoder/decoder over one stream, so gob's
		// per-connection type dictionary is amortized as in the seed.
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		env := transport.Envelope{From: 0, To: 1, Payload: payload}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&env); err != nil {
				b.Fatal(err)
			}
			var back transport.Envelope
			if err := dec.Decode(&back); err != nil {
				b.Fatal(err)
			}
		}
	})
}
