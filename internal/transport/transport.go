// Package transport provides the message-passing substrate of the paper's
// model (Sections 3.1 and 4.1): point-to-point channels between processes,
// with controllable synchrony.
//
// The in-memory Network supports per-link delays, message drops, holds and
// releases, and process crashes. Holds and releases are what let the test
// suite and the lower-bound experiments replay the paper's proof schedules
// (Figures 8 and 16) deterministically. A TCP transport with the same Port
// interface backs the demo binaries.
package transport

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Message is a protocol payload. Protocol packages define concrete types.
type Message any

// Envelope carries a payload between two processes. Hop is the logical
// message-delay depth used to measure consensus latency exactly: a message
// sent in reaction to an envelope with hop h carries hop h+1.
type Envelope struct {
	From    core.ProcessID
	To      core.ProcessID
	Hop     int
	Payload Message
}

// Verdict is a filter's decision about an in-flight envelope.
type Verdict int

// Filter verdicts.
const (
	Deliver Verdict = iota // deliver normally
	Drop                   // silently discard (lossy channels, §4.1)
	Hold                   // park until released (asynchrony scripting)
)

// Filter inspects an envelope before delivery.
type Filter func(Envelope) Verdict

// Port is one process's attachment to a network.
type Port interface {
	// ID returns the process ID this port belongs to.
	ID() core.ProcessID
	// Send dispatches a payload to another process with hop depth 0.
	Send(to core.ProcessID, payload Message)
	// SendHop dispatches a payload with an explicit hop depth.
	SendHop(to core.ProcessID, payload Message, hop int)
	// Inbox returns the channel of incoming envelopes. It is closed when
	// the network shuts down.
	Inbox() <-chan Envelope
}

// inboxCap bounds each inbox. Protocol loops drain promptly; the capacity
// only smooths bursts (e.g. a broadcast landing on one process).
const inboxCap = 4096

// Network is an in-memory network connecting n processes.
// The zero value is not usable; use NewNetwork.
type Network struct {
	n int

	mu       sync.Mutex
	closed   bool
	filter   Filter
	delay    time.Duration
	linkDly  map[[2]core.ProcessID]time.Duration
	crashed  core.Set
	held     []Envelope
	inboxes  []chan Envelope
	inflight sync.WaitGroup
}

// NewNetwork creates a network for processes 0..n-1 with instant delivery
// and no faults.
func NewNetwork(n int) *Network {
	net := &Network{
		n:       n,
		inboxes: make([]chan Envelope, n),
		linkDly: make(map[[2]core.ProcessID]time.Duration),
	}
	for i := range net.inboxes {
		net.inboxes[i] = make(chan Envelope, inboxCap)
	}
	return net
}

// N returns the number of attached processes.
func (net *Network) N() int { return net.n }

// Port returns the port of process id.
func (net *Network) Port(id core.ProcessID) Port {
	return &memPort{net: net, id: id}
}

// SetFilter installs a delivery filter. Passing nil restores plain
// delivery. The filter runs under the network lock: it must not call back
// into the network.
func (net *Network) SetFilter(f Filter) {
	net.mu.Lock()
	defer net.mu.Unlock()
	net.filter = f
}

// SetDelay sets the uniform link delay; per-link delays take precedence.
func (net *Network) SetDelay(d time.Duration) {
	net.mu.Lock()
	defer net.mu.Unlock()
	net.delay = d
}

// SetLinkDelay overrides the delay of the from→to link.
func (net *Network) SetLinkDelay(from, to core.ProcessID, d time.Duration) {
	net.mu.Lock()
	defer net.mu.Unlock()
	net.linkDly[[2]core.ProcessID{from, to}] = d
}

// Crash disconnects a process: all messages to and from it are dropped
// from now on. This models a crash at the network boundary; the process's
// goroutine may keep running but becomes invisible.
func (net *Network) Crash(id core.ProcessID) {
	net.mu.Lock()
	defer net.mu.Unlock()
	net.crashed = net.crashed.Add(id)
}

// Crashed returns the set of crashed processes.
func (net *Network) Crashed() core.Set {
	net.mu.Lock()
	defer net.mu.Unlock()
	return net.crashed
}

// ReleaseHeld re-injects every held envelope matching the predicate
// (nil matches all). Released envelopes are re-filtered, so a filter that
// still says Hold will park them again.
func (net *Network) ReleaseHeld(match func(Envelope) bool) {
	net.mu.Lock()
	var release []Envelope
	var keep []Envelope
	for _, env := range net.held {
		if match == nil || match(env) {
			release = append(release, env)
		} else {
			keep = append(keep, env)
		}
	}
	net.held = keep
	net.mu.Unlock()
	for _, env := range release {
		net.dispatch(env)
	}
}

// HeldCount returns the number of parked envelopes.
func (net *Network) HeldCount() int {
	net.mu.Lock()
	defer net.mu.Unlock()
	return len(net.held)
}

// Close shuts the network down: in-flight deliveries finish, inboxes are
// closed, later sends are dropped.
func (net *Network) Close() {
	net.mu.Lock()
	if net.closed {
		net.mu.Unlock()
		return
	}
	net.closed = true
	net.mu.Unlock()
	net.inflight.Wait()
	net.mu.Lock()
	defer net.mu.Unlock()
	for _, ch := range net.inboxes {
		close(ch)
	}
}

// dispatch routes an envelope through crash state, the filter and delays.
func (net *Network) dispatch(env Envelope) {
	net.mu.Lock()
	if net.closed || env.To < 0 || env.To >= net.n {
		net.mu.Unlock()
		return
	}
	if net.crashed.Contains(env.From) || net.crashed.Contains(env.To) {
		net.mu.Unlock()
		return
	}
	if net.filter != nil {
		switch net.filter(env) {
		case Drop:
			net.mu.Unlock()
			return
		case Hold:
			net.held = append(net.held, env)
			net.mu.Unlock()
			return
		}
	}
	d := net.delay
	if ld, ok := net.linkDly[[2]core.ProcessID{env.From, env.To}]; ok {
		d = ld
	}
	ch := net.inboxes[env.To]
	net.inflight.Add(1)
	net.mu.Unlock()

	if d <= 0 {
		net.deliver(ch, env)
		return
	}
	go func() {
		timer := time.NewTimer(d)
		defer timer.Stop()
		<-timer.C
		net.deliver(ch, env)
	}()
}

func (net *Network) deliver(ch chan Envelope, env Envelope) {
	defer net.inflight.Done()
	// Close waits for in-flight deliveries before closing inboxes, so the
	// channel is guaranteed open here. Delivery blocks if the inbox is
	// full: channels are reliable in the model (§3.1), never lossy.
	ch <- env
}

type memPort struct {
	net *Network
	id  core.ProcessID
}

var _ Port = (*memPort)(nil)

func (p *memPort) ID() core.ProcessID { return p.id }

func (p *memPort) Send(to core.ProcessID, payload Message) {
	p.SendHop(to, payload, 0)
}

func (p *memPort) SendHop(to core.ProcessID, payload Message, hop int) {
	p.net.dispatch(Envelope{From: p.id, To: to, Hop: hop, Payload: payload})
}

func (p *memPort) Inbox() <-chan Envelope {
	return p.net.inboxes[p.id]
}

// Broadcast sends payload from port to each process in dst.
func Broadcast(p Port, dst core.Set, payload Message) {
	for _, id := range dst.Members() {
		p.Send(id, payload)
	}
}

// BroadcastHop sends payload with an explicit hop depth to each process in
// dst.
func BroadcastHop(p Port, dst core.Set, payload Message, hop int) {
	for _, id := range dst.Members() {
		p.SendHop(id, payload, hop)
	}
}
