// Package transport provides the message-passing substrate of the paper's
// model (Sections 3.1 and 4.1): point-to-point channels between processes,
// with controllable synchrony.
//
// The in-memory Network supports per-link delays, message drops, holds and
// releases, and process crashes. Holds and releases are what let the test
// suite and the lower-bound experiments replay the paper's proof schedules
// (Figures 8 and 16) deterministically. A TCP transport with the same Port
// interface backs the demo binaries.
//
// The data plane is built for contention: routing state (delays, crashes,
// filter) lives in an immutable snapshot read without locking, delivery
// serializes only on a per-destination inbox lock, and delayed messages
// share one timer queue instead of a goroutine each. Zero-delay sends —
// the protocols' common case — touch no global mutex at all.
package transport

import (
	"container/heap"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/core"
)

// Message is a protocol payload. Protocol packages define concrete types.
type Message any

// Envelope carries a payload between two processes. Hop is the logical
// message-delay depth used to measure consensus latency exactly: a message
// sent in reaction to an envelope with hop h carries hop h+1.
type Envelope struct {
	From    core.ProcessID
	To      core.ProcessID
	Hop     int
	Payload Message

	// arena, when non-nil, is the receive arena the payload was decoded
	// into (TCP zero-copy path); the envelope holds one reference on it.
	arena *recvArena
}

// Release hands the envelope's share of its decode arena back to the
// transport. Consumers call it once they are done with the payload —
// including any string or []byte reachable from it, which may alias
// arena memory that is recycled for later frames. Releasing is
// idempotent per envelope (the handle is cleared), optional (an
// unreleased arena is simply garbage collected instead of recycled),
// and a no-op for envelopes from paths that don't use arenas.
func (e *Envelope) Release() {
	if a := e.arena; a != nil {
		e.arena = nil
		a.release()
	}
}

// Aliased reports whether the payload may alias transport-owned memory
// that is recycled on Release. A consumer retaining any string or byte
// slice from such a payload beyond Release must copy it first.
func (e *Envelope) Aliased() bool { return e.arena != nil }

// Verdict is a filter's decision about an in-flight envelope.
type Verdict int

// Filter verdicts.
const (
	Deliver Verdict = iota // deliver normally
	Drop                   // silently discard (lossy channels, §4.1)
	Hold                   // park until released (asynchrony scripting)
)

// Filter inspects an envelope before delivery.
type Filter func(Envelope) Verdict

// Injector is a per-link fault-injection hook consulted on every send.
// Decide returns the fate of one envelope travelling from→to: drop it,
// delay it by some duration, and/or deliver dup extra copies (each copy
// subject to the same delay). Both transports accept the same interface,
// so one scripted fault plan drives the in-memory Network and the TCP
// session layer identically.
//
// Implementations must be safe for concurrent use: transports invoke
// Decide from arbitrary sender goroutines without serialization. The
// canonical implementation is internal/chaos.Script, which matches this
// interface structurally so that neither package imports the other.
type Injector interface {
	Decide(from, to core.ProcessID) (drop bool, delay time.Duration, dup int)
}

// Port is one process's attachment to a network.
type Port interface {
	// ID returns the process ID this port belongs to.
	ID() core.ProcessID
	// Send dispatches a payload to another process with hop depth 0.
	Send(to core.ProcessID, payload Message)
	// SendHop dispatches a payload with an explicit hop depth.
	SendHop(to core.ProcessID, payload Message, hop int)
	// SendBatch dispatches a burst of payloads to one destination, all
	// with the same hop depth, preserving order. Semantically it equals
	// len(payloads) SendHop calls; transports amortize per-message
	// overhead across the burst (the in-memory network takes its accept
	// gate and the destination's shard lock once, the TCP transport
	// coalesces the burst into one framed write).
	SendBatch(to core.ProcessID, payloads []Message, hop int)
	// Broadcast dispatches payload to every process in dst with the
	// given hop depth. Semantically it equals one SendHop per member;
	// transports amortize the per-message acceptance overhead across
	// the fan-out.
	Broadcast(dst core.Set, payload Message, hop int)
	// Inbox returns the channel of incoming envelopes. It is closed when
	// the network shuts down.
	Inbox() <-chan Envelope
}

// inboxCap bounds each inbox. Protocol loops drain promptly; the capacity
// only smooths bursts (e.g. a broadcast landing on one process).
const inboxCap = 4096

// netConfig is the immutable routing snapshot read lock-free on every
// dispatch. Mutators copy it, change the copy, and swap the pointer.
type netConfig struct {
	filter  Filter
	inj     Injector
	delay   time.Duration
	linkDly []time.Duration // flat n×n, -1 = no override; nil when unused
	crashed core.Set
}

// inboxShardHot is the state a delivery actually touches: the inbox
// channel and the lock that serializes sends against Close, laid out
// contiguously so one shard's hot path stays within one cache line.
type inboxShardHot struct {
	mu      sync.Mutex
	closed  bool
	pumping bool // a pump goroutine owns the spill queue
	ch      chan Envelope
	spill   []Envelope // FIFO overflow past inboxCap, drained by pump
}

// inboxShard is one destination's delivery endpoint. The computed
// padding rounds each shard up to 128 bytes — a cache-line pair, so
// neighboring shards stay out of each other's line even with the
// adjacent-line prefetcher pulling pairs — and cannot go stale if the
// hot struct grows.
type inboxShard struct {
	inboxShardHot
	_ [(128 - unsafe.Sizeof(inboxShardHot{})%128) % 128]byte
}

// Network is an in-memory network connecting n processes.
// The zero value is not usable; use NewNetwork.
type Network struct {
	n      int
	closed atomic.Bool
	cfg    atomic.Pointer[netConfig]
	shards []inboxShard

	// sendMu gates message acceptance: dispatch holds it shared while
	// checking closed and registering with inflight, Close holds it
	// exclusively once to flush in-progress accepts. Senders never
	// contend with each other on it.
	sendMu sync.RWMutex

	// mu guards configuration writes and the held list; it is never
	// taken on the delivery fast path.
	mu   sync.Mutex
	held []Envelope

	// filterMu serializes filter invocations, preserving the old
	// guarantee that a stateful filter closure never runs concurrently.
	filterMu sync.Mutex

	inflight sync.WaitGroup
	timers   timerQueue
}

// NewNetwork creates a network for processes 0..n-1 with instant delivery
// and no faults.
func NewNetwork(n int) *Network {
	net := &Network{
		n:      n,
		shards: make([]inboxShard, n),
	}
	for i := range net.shards {
		net.shards[i].ch = make(chan Envelope, inboxCap)
	}
	net.cfg.Store(&netConfig{})
	net.timers.start(net)
	return net
}

// N returns the number of attached processes.
func (net *Network) N() int { return net.n }

// Port returns the port of process id.
func (net *Network) Port(id core.ProcessID) Port {
	return &memPort{net: net, id: id}
}

// updateCfg applies f to a copy of the routing snapshot and publishes it.
func (net *Network) updateCfg(f func(*netConfig)) {
	net.mu.Lock()
	defer net.mu.Unlock()
	c := *net.cfg.Load()
	if c.linkDly != nil {
		c.linkDly = append([]time.Duration(nil), c.linkDly...)
	}
	f(&c)
	net.cfg.Store(&c)
}

// SetFilter installs a delivery filter. Passing nil restores plain
// delivery. Filter invocations are serialized, but the filter must not
// call back into the network.
func (net *Network) SetFilter(f Filter) {
	net.updateCfg(func(c *netConfig) { c.filter = f })
}

// SetInjector installs a fault injector consulted on every send, after
// the filter and on top of any configured delays. Passing nil removes
// it; with no injector installed the dispatch paths are unchanged (the
// nil check rides on the routing snapshot that is loaded anyway).
func (net *Network) SetInjector(inj Injector) {
	net.updateCfg(func(c *netConfig) { c.inj = inj })
}

// SetDelay sets the uniform link delay; per-link delays take precedence.
func (net *Network) SetDelay(d time.Duration) {
	net.updateCfg(func(c *netConfig) { c.delay = d })
}

// SetLinkDelay overrides the delay of the from→to link.
func (net *Network) SetLinkDelay(from, to core.ProcessID, d time.Duration) {
	if from < 0 || from >= net.n || to < 0 || to >= net.n {
		return
	}
	net.updateCfg(func(c *netConfig) {
		if c.linkDly == nil {
			c.linkDly = make([]time.Duration, net.n*net.n)
			for i := range c.linkDly {
				c.linkDly[i] = -1
			}
		}
		c.linkDly[from*net.n+to] = d
	})
}

// Crash disconnects a process: all messages to and from it are dropped
// from now on. This models a crash at the network boundary; the process's
// goroutine may keep running but becomes invisible.
func (net *Network) Crash(id core.ProcessID) {
	net.updateCfg(func(c *netConfig) { c.crashed = c.crashed.Add(id) })
}

// Restart reconnects a previously crashed process: messages to and from
// it flow again. It models the recovered process rejoining at the
// network boundary; envelopes dropped while it was crashed stay dropped.
func (net *Network) Restart(id core.ProcessID) {
	net.updateCfg(func(c *netConfig) { c.crashed = c.crashed.Remove(id) })
}

// Crashed returns the set of crashed processes.
func (net *Network) Crashed() core.Set {
	return net.cfg.Load().crashed
}

// ReleaseHeld re-injects every held envelope matching the predicate
// (nil matches all). Released envelopes are re-filtered, so a filter that
// still says Hold will park them again.
func (net *Network) ReleaseHeld(match func(Envelope) bool) {
	net.mu.Lock()
	var release []Envelope
	var keep []Envelope
	for _, env := range net.held {
		if match == nil || match(env) {
			release = append(release, env)
		} else {
			keep = append(keep, env)
		}
	}
	net.held = keep
	net.mu.Unlock()
	for _, env := range release {
		net.dispatch(env)
	}
}

// HeldCount returns the number of parked envelopes.
func (net *Network) HeldCount() int {
	net.mu.Lock()
	defer net.mu.Unlock()
	return len(net.held)
}

// Close shuts the network down: in-flight deliveries (including delayed
// ones) finish, inboxes are closed, later sends are dropped.
func (net *Network) Close() {
	if net.closed.Swap(true) {
		return
	}
	// Exclude in-progress accept sections: any dispatch that saw the
	// network open has registered with inflight (and scheduled its
	// timer entry) by the time the exclusive lock is granted; any later
	// dispatch observes closed and bails.
	net.sendMu.Lock()
	net.sendMu.Unlock() //nolint:staticcheck // empty critical section is the point
	net.inflight.Wait()
	for i := range net.shards {
		s := &net.shards[i]
		s.mu.Lock()
		s.closed = true
		close(s.ch)
		s.mu.Unlock()
	}
	net.timers.stop()
}

// dispatch routes an envelope through crash state, the filter and delays.
// The common path — no filter, no delay, network open — reads one atomic
// snapshot and takes only the destination shard's lock.
func (net *Network) dispatch(env Envelope) {
	if env.To < 0 || env.To >= net.n {
		return
	}
	net.sendMu.RLock()
	if net.closed.Load() {
		net.sendMu.RUnlock()
		return
	}
	cfg := net.cfg.Load()
	if cfg.crashed.Contains(env.From) || cfg.crashed.Contains(env.To) {
		net.sendMu.RUnlock()
		return
	}
	if cfg.filter != nil {
		net.filterMu.Lock()
		v := cfg.filter(env)
		net.filterMu.Unlock()
		switch v {
		case Drop:
			net.sendMu.RUnlock()
			return
		case Hold:
			net.mu.Lock()
			net.held = append(net.held, env)
			net.mu.Unlock()
			net.sendMu.RUnlock()
			return
		}
	}
	d := cfg.delay
	if cfg.linkDly != nil && env.From >= 0 && env.From < net.n {
		if ld := cfg.linkDly[env.From*net.n+env.To]; ld >= 0 {
			d = ld
		}
	}
	copies := 1
	if cfg.inj != nil {
		drop, extra, dup := cfg.inj.Decide(env.From, env.To)
		if drop {
			net.sendMu.RUnlock()
			return
		}
		d += extra
		if dup > 0 {
			copies += dup
		}
	}
	// Register with inflight (and the timer heap) before releasing the
	// accept gate, so Close's Wait provably covers this message.
	net.inflight.Add(copies)
	if d <= 0 {
		net.sendMu.RUnlock()
		for i := 0; i < copies; i++ {
			net.deliver(env) // never blocks: a full inbox spills to the pump
		}
		return
	}
	when := time.Now().Add(d)
	for i := 0; i < copies; i++ {
		net.timers.schedule(when, env)
	}
	net.sendMu.RUnlock()
}

// batchable reports whether the routing snapshot lets a whole burst
// take the batched fast path: plain delivery only. Filters and
// injectors must see envelopes one at a time, delays schedule per
// envelope, and crashes need the per-envelope from/to check, so any of
// those falls back to dispatch.
func batchable(cfg *netConfig) bool {
	return cfg.filter == nil && cfg.inj == nil && cfg.delay <= 0 && cfg.linkDly == nil && cfg.crashed == 0
}

// dispatchBatch routes a same-destination burst: one accept-gate
// acquisition and one shard-lock acquisition for the whole burst. With
// scripting state installed (filter, delays, crashes) it degrades to
// per-envelope dispatch, preserving exact single-send semantics.
func (net *Network) dispatchBatch(from, to core.ProcessID, payloads []Message, hop int) {
	if to < 0 || to >= net.n || len(payloads) == 0 {
		return
	}
	net.sendMu.RLock()
	if net.closed.Load() {
		net.sendMu.RUnlock()
		return
	}
	cfg := net.cfg.Load()
	if !batchable(cfg) {
		net.sendMu.RUnlock()
		for _, pl := range payloads {
			net.dispatch(Envelope{From: from, To: to, Hop: hop, Payload: pl})
		}
		return
	}
	// Register the whole burst with inflight before releasing the
	// accept gate, exactly as dispatch does per message.
	net.inflight.Add(len(payloads))
	net.sendMu.RUnlock()
	s := &net.shards[to]
	retained := len(payloads) // inflight refs this call still owns
	s.mu.Lock()
	if !s.closed {
		for _, pl := range payloads {
			if net.put(s, Envelope{From: from, To: to, Hop: hop, Payload: pl}) {
				retained--
			}
		}
	}
	s.mu.Unlock()
	if retained > 0 {
		net.inflight.Add(-retained)
	}
}

// dispatchBroadcast routes one payload to every member of dst under a
// single accept-gate acquisition (the per-destination shard lock is
// taken once each — every destination receives exactly one envelope).
// Scripting state degrades to per-envelope dispatch.
func (net *Network) dispatchBroadcast(from core.ProcessID, dst core.Set, payload Message, hop int) {
	net.sendMu.RLock()
	if net.closed.Load() {
		net.sendMu.RUnlock()
		return
	}
	cfg := net.cfg.Load()
	if !batchable(cfg) {
		net.sendMu.RUnlock()
		for v := uint64(dst); v != 0; v &= v - 1 {
			net.dispatch(Envelope{From: from, To: bits.TrailingZeros64(v), Hop: hop, Payload: payload})
		}
		return
	}
	// Mask off out-of-range destinations once, so the count and the
	// delivery loop iterate exactly the same bits.
	m := uint64(dst)
	if net.n < 64 {
		m &= 1<<uint(net.n) - 1
	}
	targets := bits.OnesCount64(m)
	if targets == 0 {
		net.sendMu.RUnlock()
		return
	}
	net.inflight.Add(targets)
	net.sendMu.RUnlock()
	for v := m; v != 0; v &= v - 1 {
		to := bits.TrailingZeros64(v)
		s := &net.shards[to]
		s.mu.Lock()
		transferred := false
		if !s.closed {
			transferred = net.put(s, Envelope{From: from, To: to, Hop: hop, Payload: payload})
		}
		s.mu.Unlock()
		if !transferred {
			net.inflight.Done()
		}
	}
}

// put hands env to a shard's inbox without ever blocking the sender.
// The fast path is the buffered channel; a full inbox — or one
// already spilling, which is what keeps per-link FIFO — appends to
// the spill queue, delivered in order by a pump goroutine. The
// model's channels are reliable and unbounded (§3.1); a bounded
// channel plus an unbounded spill implements exactly that, and never
// blocking is what makes self-delivery safe: a protocol loop that
// broadcasts to a set including itself would otherwise deadlock
// against its own full inbox while holding this shard's lock,
// convoying every other sender to the same shard behind it. Callers
// hold s.mu; the return value reports that the envelope's inflight
// reference was transferred to the pump.
func (net *Network) put(s *inboxShard, env Envelope) bool {
	if len(s.spill) == 0 {
		select {
		case s.ch <- env:
			return false
		default:
		}
	}
	s.spill = append(s.spill, env)
	if !s.pumping {
		s.pumping = true
		go net.pump(s)
	}
	return true
}

// pump drains a shard's spill queue into its inbox channel in FIFO
// order. The head stays in the queue while the pump blocks on the
// channel, so concurrent put calls keep appending behind it instead
// of racing past it through the fast path. Blocking without the lock
// is safe: the pump holds the spilled envelopes' inflight references,
// and Close closes inbox channels only after inflight drains — which
// also means the queue cannot be abandoned non-empty by a close.
func (net *Network) pump(s *inboxShard) {
	s.mu.Lock()
	for len(s.spill) > 0 && !s.closed {
		env := s.spill[0]
		select {
		case s.ch <- env:
		default:
			s.mu.Unlock()
			s.ch <- env
			s.mu.Lock()
		}
		s.spill[0] = Envelope{}
		s.spill = s.spill[1:]
		net.inflight.Done()
	}
	for i := range s.spill { // only reachable if closed raced in
		s.spill[i] = Envelope{}
		net.inflight.Done()
	}
	s.spill = nil
	s.pumping = false
	s.mu.Unlock()
}

// deliver hands the envelope to its destination inbox via put;
// channels are reliable in the model (§3.1), never lossy. A shard
// that closed while the message was in flight drops it silently.
func (net *Network) deliver(env Envelope) {
	s := &net.shards[env.To]
	s.mu.Lock()
	transferred := false
	if !s.closed {
		transferred = net.put(s, env)
	}
	s.mu.Unlock()
	if !transferred {
		net.inflight.Done()
	}
}

// timerQueue delivers delayed envelopes from a single goroutine fed by a
// deadline min-heap, replacing the previous goroutine-per-message
// scheme. Ties on the deadline preserve enqueue order.
type timerQueue struct {
	mu     sync.Mutex
	h      delayHeap
	seq    uint64
	wake   chan struct{}
	stopCh chan struct{}
}

type delayedEnv struct {
	when time.Time
	seq  uint64
	env  Envelope
}

type delayHeap []delayedEnv

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(delayedEnv)) }
func (h *delayHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func (tq *timerQueue) start(net *Network) {
	tq.wake = make(chan struct{}, 1)
	tq.stopCh = make(chan struct{})
	go tq.run(net)
}

func (tq *timerQueue) schedule(when time.Time, env Envelope) {
	tq.mu.Lock()
	tq.seq++
	heap.Push(&tq.h, delayedEnv{when: when, seq: tq.seq, env: env})
	earliest := tq.h[0].when == when && tq.h[0].seq == tq.seq
	tq.mu.Unlock()
	if earliest {
		select {
		case tq.wake <- struct{}{}:
		default:
		}
	}
}

func (tq *timerQueue) stop() { close(tq.stopCh) }

func (tq *timerQueue) run(net *Network) {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		tq.mu.Lock()
		now := time.Now()
		var due []Envelope
		for len(tq.h) > 0 && !tq.h[0].when.After(now) {
			due = append(due, heap.Pop(&tq.h).(delayedEnv).env)
		}
		var next time.Duration = time.Hour
		if len(tq.h) > 0 {
			next = tq.h[0].when.Sub(now)
		}
		tq.mu.Unlock()
		for _, env := range due {
			// deliver never blocks the queue on one slow destination:
			// a full inbox spills to the shard's pump instead of
			// head-of-line-blocking every other delayed message.
			net.deliver(env)
		}
		if len(due) > 0 {
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(next)
		select {
		case <-tq.wake:
		case <-timer.C:
		case <-tq.stopCh:
			return
		}
	}
}

type memPort struct {
	net *Network
	id  core.ProcessID
}

var _ Port = (*memPort)(nil)

func (p *memPort) ID() core.ProcessID { return p.id }

func (p *memPort) Send(to core.ProcessID, payload Message) {
	p.SendHop(to, payload, 0)
}

func (p *memPort) SendHop(to core.ProcessID, payload Message, hop int) {
	p.net.dispatch(Envelope{From: p.id, To: to, Hop: hop, Payload: payload})
}

func (p *memPort) SendBatch(to core.ProcessID, payloads []Message, hop int) {
	p.net.dispatchBatch(p.id, to, payloads, hop)
}

func (p *memPort) Broadcast(dst core.Set, payload Message, hop int) {
	p.net.dispatchBroadcast(p.id, dst, payload, hop)
}

func (p *memPort) Inbox() <-chan Envelope {
	return p.net.shards[p.id].ch
}

// Broadcast sends payload from port to each process in dst with hop
// depth 0, through the transport's batched fan-out path.
func Broadcast(p Port, dst core.Set, payload Message) {
	p.Broadcast(dst, payload, 0)
}

// BroadcastHop sends payload with an explicit hop depth to each process
// in dst, through the transport's batched fan-out path.
func BroadcastHop(p Port, dst core.Set, payload Message, hop int) {
	p.Broadcast(dst, payload, hop)
}
