package transport

import (
	"testing"
	"time"

	"repro/internal/core"
)

func recvOne(t *testing.T, p Port) Envelope {
	t.Helper()
	select {
	case env, ok := <-p.Inbox():
		if !ok {
			t.Fatal("inbox closed")
		}
		return env
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for envelope")
	}
	return Envelope{}
}

func TestNetworkBasicDelivery(t *testing.T) {
	net := NewNetwork(3)
	defer net.Close()
	a, b := net.Port(0), net.Port(1)
	a.Send(1, "hello")
	env := recvOne(t, b)
	if env.From != 0 || env.To != 1 || env.Payload != "hello" || env.Hop != 0 {
		t.Errorf("unexpected envelope %+v", env)
	}
}

func TestNetworkHopPropagation(t *testing.T) {
	net := NewNetwork(2)
	defer net.Close()
	net.Port(0).SendHop(1, "x", 3)
	if env := recvOne(t, net.Port(1)); env.Hop != 3 {
		t.Errorf("hop = %d, want 3", env.Hop)
	}
}

func TestNetworkCrashSilencesBothDirections(t *testing.T) {
	net := NewNetwork(2)
	defer net.Close()
	net.Crash(1)
	net.Port(0).Send(1, "to crashed")
	net.Port(1).Send(0, "from crashed")
	select {
	case env := <-net.Port(0).Inbox():
		t.Errorf("received %+v from crashed process", env)
	case <-time.After(30 * time.Millisecond):
	}
	if !net.Crashed().Contains(1) || net.Crashed().Contains(0) {
		t.Error("Crashed() set wrong")
	}
}

func TestNetworkFilterDropAndHold(t *testing.T) {
	net := NewNetwork(2)
	defer net.Close()
	net.SetFilter(func(env Envelope) Verdict {
		s, _ := env.Payload.(string)
		switch s {
		case "drop":
			return Drop
		case "hold":
			return Hold
		}
		return Deliver
	})
	p0 := net.Port(0)
	p0.Send(1, "drop")
	p0.Send(1, "hold")
	p0.Send(1, "pass")
	if env := recvOne(t, net.Port(1)); env.Payload != "pass" {
		t.Errorf("got %v, want pass", env.Payload)
	}
	if net.HeldCount() != 1 {
		t.Errorf("held = %d, want 1", net.HeldCount())
	}
	// Releasing re-filters; clear the filter first.
	net.SetFilter(nil)
	net.ReleaseHeld(nil)
	if env := recvOne(t, net.Port(1)); env.Payload != "hold" {
		t.Errorf("got %v, want hold", env.Payload)
	}
	if net.HeldCount() != 0 {
		t.Errorf("held = %d, want 0", net.HeldCount())
	}
}

func TestNetworkReleaseHeldSelective(t *testing.T) {
	net := NewNetwork(3)
	defer net.Close()
	net.SetFilter(func(Envelope) Verdict { return Hold })
	net.Port(0).Send(1, "a")
	net.Port(0).Send(2, "b")
	net.SetFilter(nil)
	net.ReleaseHeld(func(env Envelope) bool { return env.To == 2 })
	if env := recvOne(t, net.Port(2)); env.Payload != "b" {
		t.Errorf("got %v", env.Payload)
	}
	if net.HeldCount() != 1 {
		t.Errorf("held = %d, want 1", net.HeldCount())
	}
}

func TestNetworkReleasedMessagesAreRefiltered(t *testing.T) {
	net := NewNetwork(2)
	defer net.Close()
	net.SetFilter(func(Envelope) Verdict { return Hold })
	net.Port(0).Send(1, "x")
	net.ReleaseHeld(nil) // filter still holds: parked again
	if net.HeldCount() != 1 {
		t.Errorf("held = %d, want 1 after re-filtering", net.HeldCount())
	}
}

func TestNetworkDelays(t *testing.T) {
	net := NewNetwork(2)
	defer net.Close()
	net.SetDelay(20 * time.Millisecond)
	net.SetLinkDelay(0, 1, 1*time.Millisecond)
	start := time.Now()
	net.Port(0).Send(1, "fast link")
	recvOne(t, net.Port(1))
	if d := time.Since(start); d > 15*time.Millisecond {
		t.Errorf("per-link delay not applied: %v", d)
	}
	start = time.Now()
	net.Port(1).Send(0, "slow default")
	recvOne(t, net.Port(0))
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("default delay not applied: %v", d)
	}
}

func TestNetworkCloseIdempotentAndClosesInboxes(t *testing.T) {
	net := NewNetwork(1)
	net.Close()
	net.Close() // must not panic
	if _, ok := <-net.Port(0).Inbox(); ok {
		t.Error("inbox should be closed")
	}
	net.Port(0).Send(0, "late") // dropped, no panic
}

func TestNetworkOutOfRangeDestination(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	net.Port(0).Send(5, "nowhere")  // dropped
	net.Port(0).Send(-1, "nowhere") // dropped
}

func TestBroadcastHelpers(t *testing.T) {
	net := NewNetwork(4)
	defer net.Close()
	dst := core.NewSet(1, 2, 3)
	Broadcast(net.Port(0), dst, "hi")
	BroadcastHop(net.Port(0), dst, "hop", 2)
	for _, id := range dst.Members() {
		if env := recvOne(t, net.Port(id)); env.Payload != "hi" {
			t.Errorf("proc %d: got %v", id, env.Payload)
		}
		if env := recvOne(t, net.Port(id)); env.Hop != 2 {
			t.Errorf("proc %d: hop %d", id, env.Hop)
		}
	}
}

func TestTCPNodeRoundTrip(t *testing.T) {
	Register("")
	addrs := map[core.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	n0, err := NewTCPNode(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	addrs[0] = n0.Addr()
	n1, err := NewTCPNode(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	addrs[1] = n1.Addr()
	// Both hosts share the addrs map, so node 0's dial table already
	// points at node 1's real address (links resolve lazily on first
	// send).

	n0.SendHop(1, "over tcp", 7)
	env := recvOne(t, n1)
	if env.Payload != "over tcp" || env.From != 0 || env.Hop != 7 {
		t.Errorf("unexpected envelope %+v", env)
	}
	n1.Send(0, "reply")
	if env := recvOne(t, n0); env.Payload != "reply" {
		t.Errorf("unexpected reply %+v", env)
	}
}

func TestTCPNodeErrors(t *testing.T) {
	if _, err := NewTCPNode(0, map[core.ProcessID]string{1: "x"}); err == nil {
		t.Error("missing own address should error")
	}
	n, err := NewTCPNode(0, map[core.ProcessID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	n.Send(9, "unknown peer") // swallowed
	n.Close()
	n.Send(0, "after close") // swallowed
	n.Close()                // idempotent
}

// TestNetworkSelfBroadcastFullInboxNoDeadlock pins the spill path: a
// protocol loop that broadcasts to a set including itself while its
// own inbox is full must not deadlock (the sender used to block on
// its own channel holding the shard lock — with itself as the only
// consumer — convoying every other sender to that shard behind it;
// the SMR inline replicas hit exactly this under the pipelined
// bench). Sends past inboxCap spill and must still arrive in FIFO
// order per link.
func TestNetworkSelfBroadcastFullInboxNoDeadlock(t *testing.T) {
	net := NewNetwork(2)
	defer net.Close()
	p := net.Port(0)
	self := core.NewSet(0, 1)
	total := inboxCap + 512
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			p.Broadcast(self, i, 0) // includes self; nobody draining yet
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("self-broadcast deadlocked on a full inbox")
	}
	for i := 0; i < total; i++ {
		if env := recvOne(t, p); env.Payload != i {
			t.Fatalf("port 0 envelope %d: got payload %v, want %d (FIFO across spill)", i, env.Payload, i)
		}
	}
	other := net.Port(1)
	for i := 0; i < total; i++ {
		if env := recvOne(t, other); env.Payload != i {
			t.Fatalf("port 1 envelope %d: got payload %v, want %d", i, env.Payload, i)
		}
	}
}

// TestNetworkSpillOrderAgainstFastPath drives one link through a
// spill episode and back to the fast path, checking no envelope
// overtakes the draining spill head: once a shard is spilling, later
// sends must queue behind it until the pump has emptied the queue.
func TestNetworkSpillOrderAgainstFastPath(t *testing.T) {
	net := NewNetwork(2)
	defer net.Close()
	src, dst := net.Port(0), net.Port(1)
	total := inboxCap + 256
	for i := 0; i < total; i++ { // fill past capacity: tail spills
		src.Send(1, i)
	}
	got := 0
	for ; got < total/2; got++ { // drain half, letting the pump run
		if env := recvOne(t, dst); env.Payload != got {
			t.Fatalf("envelope %d: got %v", got, env.Payload)
		}
	}
	for i := total; i < total+64; i++ { // more sends race the pump
		src.Send(1, i)
	}
	for ; got < total+64; got++ {
		if env := recvOne(t, dst); env.Payload != got {
			t.Fatalf("envelope %d: got %v (fast path overtook the spill)", got, env.Payload)
		}
	}
}
