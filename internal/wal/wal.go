// Package wal implements a write-ahead segment log with CRC-framed
// records, size-bounded segment rotation, and snapshot-based
// compaction. It is the durability layer under the storage server
// keyspace and the consensus acceptor: callers buffer one record per
// state mutation with Append and make a whole burst durable with one
// Sync (group commit — one fdatasync per 64-envelope burst, not one
// per op). On restart, Replay streams the latest snapshot plus the
// log suffix past it, truncating a torn tail so recovery always lands
// on a past-perfect prefix of what was acknowledged.
//
// On-disk layout (all inside one directory, one Log per directory):
//
//	seg-00000042.wal   append-only record segments, 8-byte magic header
//	snap-00000041.snap wal.Snapshot covering every segment <= 41
//
// Record framing inside a segment:
//
//	u32 length | u32 crc32(IEEE, body) | body
//
// Snapshots are written atomically (temp file + fsync + rename + dir
// fsync), so a crash anywhere during compaction leaves either the old
// or the new snapshot visible, never a partial one. Old segments are
// deleted only after the covering snapshot is durable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"

	segMagic  = "RQSWAL01"
	snapMagic = "RQSSNP01"

	recordHeader = 8 // u32 length + u32 crc32

	// maxRecordBytes bounds a single record so a corrupt length field
	// cannot ask replay to allocate gigabytes.
	maxRecordBytes = 1 << 30

	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 1 << 20
)

// ErrSimulatedCrash is returned by writes once Hooks.FailAfterNBytes
// bytes have been written. It marks the Log permanently failed, the
// same way a real I/O error would.
var ErrSimulatedCrash = errors.New("wal: simulated crash (FailAfterNBytes)")

// errBadMagic marks a segment whose header bytes are present but
// wrong. Unlike a torn tail it cannot be produced by a crash —
// createSegment fsyncs the header before any record is acknowledged,
// and a torn header write leaves a short file, not eight wrong bytes —
// so Open refuses the directory instead of silently truncating.
var errBadMagic = errors.New("bad segment magic")

// Hooks are test-only fault injection points.
type Hooks struct {
	// FailAfterNBytes, when > 0, simulates a kill -9 mid-write: after
	// N cumulative bytes have reached segment files, the write that
	// crosses the boundary persists only its allowed prefix (a torn
	// write) and fails with ErrSimulatedCrash, as do all later writes.
	// Crash-safety sweeps open a fresh Log with every value of N and
	// assert replay recovers a clean prefix from each torn state.
	FailAfterNBytes int64
}

// Options configure a Log.
type Options struct {
	// SegmentBytes is the size threshold past which Sync rotates to a
	// fresh segment. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the fdatasync in Sync and Compact. Benchmark-only:
	// it isolates the fsync tax from the framing/replay cost. Never
	// set it on a deployment whose acks promise durability.
	NoSync bool
	// Hooks inject test-only faults.
	Hooks Hooks
}

// Log is a write-ahead segment log. All methods are safe for
// concurrent use, though the intended shape is a single owning
// goroutine (the server burst loop) plus Close from the stopper.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	active   *os.File // current append segment
	activeN  int      // its number
	firstN   int      // lowest live segment number
	size     int64    // bytes in active segment (valid prefix + pending flushed)
	pending  []byte   // framed records not yet written to the file
	snapN    int      // number of the newest valid snapshot, -1 if none
	written  int64    // cumulative bytes written (Hooks.FailAfterNBytes)
	dirty    bool     // bytes written to active since the last fdatasync
	replayed bool
	closed   bool
	failed   error // first write/sync error; latches the Log dead

	stats Stats
}

// Stats counts the Log's append/sync activity. The Fsyncs/Appends
// ratio is the group-commit amortization factor: how many mutations
// each fdatasync covered on average.
type Stats struct {
	// Appends is the number of records buffered via Append.
	Appends int64
	// Syncs is the number of Sync calls (clean Syncs with no new bytes
	// skip the fdatasync and count only here).
	Syncs int64
	// Fsyncs is the number of fdatasyncs actually issued (0 with
	// NoSync).
	Fsyncs int64
	// FsyncNanos is the cumulative wall time spent inside those
	// fdatasyncs — FsyncNanos/Fsyncs is the mean disk-flush latency
	// the group commit pays.
	FsyncNanos int64
}

// Stats returns a snapshot of the Log's activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Open scans dir (creating it if absent), validates every live
// segment, truncates a torn tail on the final one, and positions the
// log for appends. Call Replay before the first Append to rebuild
// state; a fresh directory replays nothing.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, snapN: -1}

	segs, snaps, err := l.scanDir()
	if err != nil {
		return nil, err
	}
	// Newest snapshot wins; older ones are leftovers from a crash
	// between snapshot write and cleanup.
	if len(snaps) > 0 {
		l.snapN = snaps[len(snaps)-1]
	}
	// Segments at or below the snapshot are already covered by it;
	// they survive only if a crash interrupted compaction cleanup.
	var live []int
	for _, n := range segs {
		if n > l.snapN {
			live = append(live, n)
		}
	}
	// Deletion runs oldest-first, so a crash mid-cleanup leaves a
	// contiguous suffix. A gap means the directory was tampered with.
	for i := 1; i < len(live); i++ {
		if live[i] != live[i-1]+1 {
			return nil, fmt.Errorf("wal: segment gap: seg-%d follows seg-%d", live[i], live[i-1])
		}
	}
	// Validate every live segment; only the final one may be torn.
	for i, n := range live {
		final := i == len(live)-1
		if err := l.validateSegment(n, final); err != nil {
			return nil, err
		}
	}
	if len(live) == 0 {
		n := l.snapN + 1
		if err := l.createSegment(n); err != nil {
			return nil, err
		}
		l.firstN = n
	} else {
		l.firstN = live[0]
		l.activeN = live[len(live)-1]
		if err := l.openActive(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// scanDir lists live segment and snapshot numbers, sorted ascending.
// Stray temp files from interrupted atomic writes are removed.
func (l *Log) scanDir() (segs, snaps []int, err error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case parseNumbered(name, segPrefix, segSuffix) >= 0:
			segs = append(segs, parseNumbered(name, segPrefix, segSuffix))
		case parseNumbered(name, snapPrefix, snapSuffix) >= 0:
			n := parseNumbered(name, snapPrefix, snapSuffix)
			if snapValid(filepath.Join(l.dir, name)) {
				snaps = append(snaps, n)
			}
		case len(name) > 4 && name[:4] == ".tmp":
			os.Remove(filepath.Join(l.dir, name))
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)
	return segs, snaps, nil
}

func parseNumbered(name, prefix, suffix string) int {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return -1
	}
	n := 0
	for _, c := range name[len(prefix) : len(name)-len(suffix)] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func (l *Log) segPath(n int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix))
}

func (l *Log) snapPath(n int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", snapPrefix, n, snapSuffix))
}

// validateSegment walks the records of segment n. A malformed record
// header, short body, or CRC mismatch in the final segment is a torn
// tail: the file is truncated back to the last whole record. The same
// state in an interior segment cannot be explained by a crash (later
// segments were created after it was sealed) and is rejected as
// corruption. Bad segment magic is rejected even on the final segment:
// no crash produces eight wrong header bytes (a torn header write
// leaves a short file, which IS truncate-recoverable), so truncating
// here would silently discard every acknowledged record in the segment
// instead of surfacing the external corruption to the operator.
func (l *Log) validateSegment(n int, final bool) error {
	valid, _, err := scanSegment(l.segPath(n), nil)
	if err != nil {
		if !final || errors.Is(err, errBadMagic) {
			return fmt.Errorf("wal: seg-%d: %w", n, err)
		}
		return os.Truncate(l.segPath(n), valid)
	}
	return nil
}

// scanSegment reads the segment at path, calling deliver (when
// non-nil) with each record body in order. It returns the byte length
// of the valid prefix and a non-nil error if anything past that
// prefix remains (torn tail or corruption).
func scanSegment(path string, deliver func([]byte) error) (validLen int64, n int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < len(segMagic) {
		if len(data) == 0 {
			return 0, 0, nil
		}
		return 0, 0, errors.New("torn segment header")
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, 0, errBadMagic
	}
	off := int64(len(segMagic))
	for int64(len(data))-off >= recordHeader {
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxRecordBytes {
			return off, n, errors.New("record length out of range")
		}
		end := off + recordHeader + int64(length)
		if end > int64(len(data)) {
			return off, n, errors.New("torn record body")
		}
		body := data[off+recordHeader : end]
		if crc32.ChecksumIEEE(body) != crc {
			return off, n, errors.New("record crc mismatch")
		}
		if deliver != nil {
			if derr := deliver(body); derr != nil {
				return off, n, derr
			}
		}
		off = end
		n++
	}
	if off != int64(len(data)) {
		return off, n, errors.New("torn record header")
	}
	return off, n, nil
}

// snapValid reports whether the snapshot file at path frames a body
// whose CRC matches. Snapshots are written atomically, so an invalid
// one means tampering, not a crash — it is simply ignored.
func snapValid(path string) bool {
	_, err := readSnap(path)
	return err == nil
}

func readSnap(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+recordHeader || string(data[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("wal: bad snapshot framing")
	}
	length := binary.LittleEndian.Uint32(data[len(snapMagic):])
	crc := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	body := data[len(snapMagic)+recordHeader:]
	if int(length) != len(body) || crc32.ChecksumIEEE(body) != crc {
		return nil, errors.New("wal: snapshot crc mismatch")
	}
	return body, nil
}

// createSegment makes a fresh segment file with its magic header and
// durably records its existence in the directory.
func (l *Log) createSegment(n int) error {
	f, err := os.OpenFile(l.segPath(n), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := l.hookWrite(f, []byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.active = f
	l.activeN = n
	l.size = int64(len(segMagic))
	return nil
}

// openActive opens the (already validated and truncated) final
// segment for appends.
func (l *Log) openActive() error {
	f, err := os.OpenFile(l.segPath(l.activeN), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.size = info.Size()
	if l.size == 0 {
		// The crash tore even the magic header off; rewrite it.
		if _, err := l.hookWrite(f, []byte(segMagic)); err != nil {
			f.Close()
			return err
		}
		l.size = int64(len(segMagic))
	}
	if _, err := f.Seek(l.size, 0); err != nil {
		f.Close()
		return err
	}
	l.active = f
	return nil
}

// Replay streams the recovery sequence: the newest snapshot body (if
// any) to onSnapshot, then every record past it in append order to
// onRecord. It must run before the first Append. Either callback may
// be nil to skip that stream.
func (l *Log) Replay(onSnapshot func([]byte) error, onRecord func([]byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.replayed || len(l.pending) > 0 {
		return errors.New("wal: Replay must precede Append")
	}
	l.replayed = true
	if l.snapN >= 0 && onSnapshot != nil {
		body, err := readSnap(l.snapPath(l.snapN))
		if err != nil {
			return err
		}
		if err := onSnapshot(body); err != nil {
			return err
		}
	}
	for n := l.firstN; n <= l.activeN; n++ {
		if _, _, err := scanSegment(l.segPath(n), onRecord); err != nil {
			return fmt.Errorf("wal: replay seg-%d: %w", n, err)
		}
	}
	return nil
}

// Append buffers one framed record. Nothing reaches the file (or the
// kernel) until Sync; callers must not acknowledge the mutation
// before Sync returns nil.
func (l *Log) Append(body []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil || l.closed {
		return
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, body...)
	l.stats.Appends++
}

// Sync makes every buffered record durable: one write plus one
// fdatasync for the whole burst (group commit). When the active
// segment has outgrown SegmentBytes it rotates to a fresh one, so a
// single Sync never splits a record across segments.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return errors.New("wal: closed")
	}
	l.stats.Syncs++
	if len(l.pending) > 0 {
		n, err := l.hookWrite(l.active, l.pending)
		l.size += int64(n)
		l.dirty = l.dirty || n > 0
		if err != nil {
			l.failed = err
			return err
		}
		l.pending = l.pending[:0]
	}
	// A clean Sync (no bytes since the last fdatasync) is free: read-only
	// bursts must not pay the fsync tax for records already durable.
	if l.dirty && !l.opts.NoSync {
		t0 := time.Now()
		if err := l.active.Sync(); err != nil {
			l.failed = err
			return err
		}
		l.stats.FsyncNanos += time.Since(t0).Nanoseconds()
		l.stats.Fsyncs++
		l.dirty = false
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.active.Close(); err != nil {
		return err
	}
	l.active = nil
	if err := l.createSegment(l.activeN + 1); err != nil {
		return err
	}
	// Every byte of the new active file is the fsynced header; no
	// pending fdatasync debt carries over from the sealed segment.
	l.dirty = false
	return nil
}

// Compact makes snapshot the new replay base: it seals the current
// segment, starts a fresh one, atomically publishes the snapshot
// covering everything sealed, and only then deletes the segments and
// snapshots it supersedes. A crash at any step leaves a recoverable
// directory (at worst with superseded files that the next Open
// skips).
//
// Contract: snapshot must cover every record a completed Sync has
// flushed, but NOT necessarily records still buffered via Append —
// under group commit the owning goroutine keeps appending while the
// syncer captures state and compacts, so a buffered record may
// postdate the snapshot. Compact therefore rotates BEFORE flushing:
// buffered records land in the fresh segment, which the snapshot does
// not supersede, and replay applies them idempotently on top of it.
// Flushing them first would seal them into a segment the snapshot
// deletes below — a lost acknowledged write once the next Sync acks
// them.
func (l *Log) Compact(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.closed {
		return errors.New("wal: closed")
	}
	sealed := l.activeN
	if err := l.rotateLocked(); err != nil {
		l.failed = err
		return err
	}
	buf := make([]byte, 0, len(snapMagic)+recordHeader+len(snapshot))
	buf = append(buf, snapMagic...)
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(snapshot)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(snapshot))
	buf = append(buf, hdr[:]...)
	buf = append(buf, snapshot...)
	if err := writeFileAtomic(l.snapPath(sealed), buf, !l.opts.NoSync); err != nil {
		l.failed = err
		return err
	}
	oldSnap := l.snapN
	l.snapN = sealed
	// Cleanup, oldest-first so a crash leaves a contiguous suffix.
	for n := l.firstN; n <= sealed; n++ {
		os.Remove(l.segPath(n))
	}
	if oldSnap >= 0 && oldSnap != sealed {
		os.Remove(l.snapPath(oldSnap))
	}
	l.firstN = sealed + 1
	if !l.opts.NoSync {
		if err := syncDir(l.dir); err != nil {
			l.failed = err
			return err
		}
	}
	return nil
}

// Segments reports how many live segment files the log spans — the
// compaction trigger for callers.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.activeN - l.firstN + 1
}

// SnapshotSeq returns the number of the newest snapshot, or -1. Test
// hook for compaction round-trips.
func (l *Log) SnapshotSeq() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapN
}

// Close flushes buffered records (without forcing an extra fsync
// beyond the Sync policy) and releases the segment file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	return err
}

// hookWrite writes b to f, honoring Hooks.FailAfterNBytes: the write
// that crosses the boundary lands only its allowed prefix — a torn
// write, exactly what a power cut leaves behind.
func (l *Log) hookWrite(f *os.File, b []byte) (int, error) {
	if limit := l.opts.Hooks.FailAfterNBytes; limit > 0 {
		remain := limit - l.written
		if remain <= 0 {
			return 0, ErrSimulatedCrash
		}
		if int64(len(b)) > remain {
			n, _ := f.Write(b[:remain])
			l.written += int64(n)
			return n, ErrSimulatedCrash
		}
	}
	n, err := f.Write(b)
	l.written += int64(n)
	return n, err
}

// WriteFileAtomic durably replaces path with data: temp file in the
// same directory, write, fsync, rename over path, fsync the
// directory. Readers see either the old or the new content, never a
// mix. It is the write-rename idiom shared by WAL snapshots and the
// transport's persistent dedup state.
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, data, true)
}

func writeFileAtomic(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
