package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func record(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, "payload-padding-to-make-it-nontrivial"))
}

// appendN appends and group-commits n records, returning the count
// whose Sync succeeded.
func appendN(t *testing.T, l *Log, n int) int {
	t.Helper()
	synced := 0
	for i := 0; i < n; i++ {
		l.Append(record(i))
		if err := l.Sync(); err != nil {
			return synced
		}
		synced = i + 1
	}
	return synced
}

// replayAll opens dir fresh and returns every replayed record plus
// the snapshot body (nil if none).
func replayAll(t *testing.T, dir string) (snap []byte, recs [][]byte) {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	err = l.Replay(
		func(b []byte) error { snap = append([]byte(nil), b...); return nil },
		func(b []byte) error { recs = append(recs, append([]byte(nil), b...)); return nil },
	)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return snap, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := appendN(t, l, 10); n != 10 {
		t.Fatalf("synced %d of 10", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snap, recs := replayAll(t, dir)
	if snap != nil {
		t.Fatalf("unexpected snapshot %q", snap)
	}
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(r, record(i)) {
			t.Fatalf("record %d = %q, want %q", i, r, record(i))
		}
	}
}

// TestTornTailRecovery chops bytes off the end of the final segment —
// the state a kill -9 mid-write leaves — and requires replay to stop
// cleanly at the last whole record, for every possible cut point.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()
	seg := filepath.Join(dir, "seg-00000000.wal")
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(full) - 1; cut >= 0; cut-- {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, recs := replayAll(t, dir)
		// Every surviving record must be an exact prefix of what was
		// appended; the torn suffix must never surface.
		for i, r := range recs {
			if !bytes.Equal(r, record(i)) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, r, record(i))
			}
		}
		if len(recs) > 5 {
			t.Fatalf("cut %d: %d records from a 5-record log", cut, len(recs))
		}
		// replayAll's Open truncated the torn tail, so restore the
		// full image before the next, shorter cut.
		if err := os.WriteFile(seg, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCRCMismatchRejected flips one body byte. In the final segment
// that reads as a torn tail (the record and everything after it is
// dropped); in an interior segment it cannot be crash damage, so Open
// must refuse the directory.
func TestCRCMismatchRejected(t *testing.T) {
	t.Run("final-segment-truncates", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := Open(dir, Options{})
		appendN(t, l, 3)
		l.Close()
		seg := filepath.Join(dir, "seg-00000000.wal")
		data, _ := os.ReadFile(seg)
		data[len(data)-1] ^= 0xff // corrupt the last record's body
		os.WriteFile(seg, data, 0o644)
		_, recs := replayAll(t, dir)
		if len(recs) != 2 {
			t.Fatalf("replayed %d records past a corrupt tail, want 2", len(recs))
		}
	})
	t.Run("final-segment-bad-magic-rejects", func(t *testing.T) {
		// Wrong magic bytes cannot be crash damage (a torn header write
		// leaves a short file; createSegment fsyncs the header before
		// any record is acked), so truncate-to-valid-prefix would
		// silently discard every acknowledged record in the segment.
		// Open must surface the corruption instead.
		dir := t.TempDir()
		l, _ := Open(dir, Options{})
		appendN(t, l, 3)
		l.Close()
		seg := filepath.Join(dir, "seg-00000000.wal")
		data, _ := os.ReadFile(seg)
		copy(data, "XXXXXXXX")
		os.WriteFile(seg, data, 0o644)
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("Open truncated a bad-magic final segment instead of failing")
		}
	})
	t.Run("interior-segment-rejects", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := Open(dir, Options{SegmentBytes: 64}) // force rotation
		appendN(t, l, 6)
		l.Close()
		if got := countSegments(t, dir); got < 2 {
			t.Fatalf("test needs >=2 segments, got %d", got)
		}
		seg := filepath.Join(dir, "seg-00000000.wal")
		data, _ := os.ReadFile(seg)
		data[len(data)-1] ^= 0xff
		os.WriteFile(seg, data, 0o644)
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("Open accepted a corrupt interior segment")
		}
	})
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if parseNumbered(e.Name(), segPrefix, segSuffix) >= 0 {
			n++
		}
	}
	return n
}

// TestRotationCompactionRoundTrip drives the log across several
// rotations, compacts, appends more, and checks the reopened log
// replays snapshot + suffix exactly — with the superseded segments
// actually gone from disk.
func TestRotationCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20)
	if l.Segments() < 2 {
		t.Fatalf("expected rotation, have %d segment(s)", l.Segments())
	}
	state := []byte("state-after-20")
	if err := l.Compact(state); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Fatalf("post-compact segments = %d, want 1", l.Segments())
	}
	if countSegments(t, dir) != 1 {
		t.Fatalf("superseded segments still on disk: %d files", countSegments(t, dir))
	}
	// Records appended after the compaction form the replay suffix.
	for i := 0; i < 3; i++ {
		l.Append([]byte(fmt.Sprintf("post-%d", i)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snap, recs := replayAll(t, dir)
	if !bytes.Equal(snap, state) {
		t.Fatalf("snapshot = %q, want %q", snap, state)
	}
	if len(recs) != 3 {
		t.Fatalf("suffix length %d, want 3", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("post-%d", i); string(r) != want {
			t.Fatalf("suffix[%d] = %q, want %q", i, r, want)
		}
	}
}

// TestCompactPreservesPendingRecords pins the group-commit/compaction
// race: under group commit the owning goroutine keeps appending while
// the syncer captures a state snapshot and compacts, so a buffered
// record can postdate the snapshot handed to Compact. That record must
// land in the fresh segment (outside the snapshot's coverage) and
// survive to replay — flushing it into the segment the snapshot
// supersedes would delete an acknowledged write.
func TestCompactPreservesPendingRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	snapshot := []byte("covers-first-4-only")
	// The racing append: buffered after the snapshot was captured,
	// before Compact runs.
	l.Append([]byte("post-snapshot"))
	if err := l.Compact(snapshot); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // the ack-covering group commit
		t.Fatal(err)
	}
	l.Close()
	snap, recs := replayAll(t, dir)
	if !bytes.Equal(snap, snapshot) {
		t.Fatalf("snapshot = %q, want %q", snap, snapshot)
	}
	if len(recs) != 1 || string(recs[0]) != "post-snapshot" {
		t.Fatalf("post-snapshot record lost across compaction: suffix = %q", recs)
	}
}

// TestReplayIdempotence recovers the same directory twice and demands
// byte-identical results — restarting a restarted server must not
// drift.
func TestReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentBytes: 128})
	appendN(t, l, 8)
	l.Compact([]byte("base"))
	appendN(t, l, 4)
	l.Close()
	snap1, recs1 := replayAll(t, dir)
	snap2, recs2 := replayAll(t, dir)
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("snapshots differ: %q vs %q", snap1, snap2)
	}
	if len(recs1) != len(recs2) {
		t.Fatalf("record counts differ: %d vs %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if !bytes.Equal(recs1[i], recs2[i]) {
			t.Fatalf("record %d differs across replays", i)
		}
	}
}

// TestStrayFilesIgnored covers the crash windows of atomic writes and
// compaction cleanup: leftover temp files and superseded segments
// must not confuse a reopen.
func TestStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentBytes: 96})
	appendN(t, l, 12)
	if err := l.Compact([]byte("base")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	l.Close()
	// A crash between CreateTemp and rename leaves a temp file.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A crash between snapshot publish and cleanup leaves superseded
	// segments (covered by the snapshot) behind.
	if err := os.WriteFile(filepath.Join(dir, "seg-00000000.wal"),
		[]byte(segMagic+"garbage-not-even-a-record"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, recs := replayAll(t, dir)
	if string(snap) != "base" {
		t.Fatalf("snapshot = %q, want base", snap)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (superseded segment leaked in?)", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-123")); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived reopen")
	}
}

// TestFailAfterNBytesSweep is the dedis/tlc-style crash-safety sweep:
// simulate a kill -9 after every possible byte count written to the
// segment files, then recover. The invariant at every crash point:
// replay yields an exact prefix of the append sequence that includes
// every record whose Sync had returned nil before the crash.
func TestFailAfterNBytesSweep(t *testing.T) {
	const nRecords = 12
	reachedEnd := false
	for limit := int64(1); !reachedEnd && limit < 1<<14; limit++ {
		dir := t.TempDir()
		synced := 0
		l, err := Open(dir, Options{SegmentBytes: 80, NoSync: true,
			Hooks: Hooks{FailAfterNBytes: limit}})
		if err == nil {
			synced = appendN(t, l, nRecords)
			l.Close()
		}
		// else: the crash hit the very first segment header — the
		// directory holds a torn header and nothing was acknowledged.
		if synced == nRecords {
			reachedEnd = true // limit exceeded total bytes; sweep done
		}
		_, recs := replayAll(t, dir)
		if len(recs) < synced {
			t.Fatalf("limit %d: lost acknowledged records: replayed %d, synced %d",
				limit, len(recs), synced)
		}
		for i, r := range recs {
			if !bytes.Equal(r, record(i)) {
				t.Fatalf("limit %d: record %d = %q, want %q", limit, i, r, record(i))
			}
		}
	}
	if !reachedEnd {
		t.Fatal("sweep never reached a crash-free run; raise the limit bound")
	}
}

// TestWriteFileAtomic checks the write-rename helper replaces content
// wholesale.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("content = %q, want two", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %d entries", len(entries))
	}
}
